// Ablation: vector width (parvec) vs temporal parallelism (partime) under
// the fixed DSP budget of eq. (5). Wider vectors demand wider memory
// accesses, which the controller splits (the paper's 3D loss); deeper
// chains add halo redundancy. The sweep shows why the paper picks
// parvec=4..8 for 2D but parvec=16 for 3D.
#include <iostream>

#include "bench_util.hpp"
#include "fpga/fmax_model.hpp"
#include "fpga/resource_model.hpp"
#include "harness/experiments.hpp"
#include "model/performance_model.hpp"

using namespace fpga_stencil;

namespace {

void sweep(int dims, int rad, std::int64_t bx, std::int64_t by,
           std::int64_t nx, std::int64_t ny, std::int64_t nz) {
  const DeviceSpec dev = arria10_gx1150();
  const std::int64_t partotal = max_total_parallelism(dev, dims, rad);
  std::cout << "\n" << dims << "D radius " << rad << " (partotal "
            << partotal << "):\n";
  TextTable t({"parvec", "partime", "fits", "demand GB/s", "eff BW GB/s",
               "pipe eff", "GB/s (meas)", "GFLOP/s"});
  for (int pv = 2; pv <= 32; pv *= 2) {
    // Deepest aligned chain within the DSP budget.
    int pt = static_cast<int>(partotal / pv);
    while (pt > 0 && (pt * rad) % 4 != 0) --pt;
    if (pt == 0) continue;
    AcceleratorConfig cfg;
    cfg.dims = dims;
    cfg.radius = rad;
    cfg.bsize_x = bx;
    cfg.bsize_y = by;
    cfg.parvec = pv;
    cfg.partime = pt;
    if (bx % pv != 0 || cfg.csize_x() <= 0 ||
        (dims == 3 && cfg.csize_y() <= 0)) {
      continue;
    }
    ResourceUsage u = estimate_resources(cfg, dev);
    while (pt > 1 && !u.fits()) {  // shrink until it fits
      --pt;
      while (pt > 1 && (pt * rad) % 4 != 0) --pt;
      cfg.partime = pt;
      u = estimate_resources(cfg, dev);
    }
    if (!u.fits()) continue;
    const double fmax = estimate_fmax_mhz(cfg, dev);
    const PerformanceEstimate e =
        estimate_performance(cfg, dev, fmax, nx, ny, nz);
    t.add_row({std::to_string(pv), std::to_string(cfg.partime), "yes",
               format_fixed(memory_demand_gbps(cfg, fmax), 1),
               format_fixed(effective_bandwidth_gbps(cfg, dev, fmax), 1),
               format_percent(e.pipeline_efficiency),
               format_fixed(e.measured_gbps, 1),
               format_fixed(e.measured_gflops, 1)});
  }
  t.render(std::cout);
}

}  // namespace

int main() {
  bench::print_header(
      "ABLATION: VECTOR WIDTH vs TEMPORAL DEPTH",
      "For a fixed DSP budget, parvec*partime is capped (eq. 5): wide "
      "vectors trade\ntemporal reuse for memory pressure.");
  sweep(2, 2, 4096, 1, 15712, 15712, 1);
  sweep(3, 2, 256, 128, 696, 728, 696);
  std::cout << "\n2D favors narrow vectors + deep chains; for 3D the Block "
               "RAM cost of each PE's\nplane-sized shift register pushes "
               "the optimum to wide vectors + short chains,\neven though "
               "64-byte accesses lose ~40% to controller splitting -- the "
               "paper's choice.\n";
  return 0;
}
