// Regenerates the paper's Table IV: 2D stencil comparison across the Arria
// 10 FPGA (calibrated models), Xeon and Xeon Phi (YASK sustained-bandwidth
// model), and additionally runs the YASK-like baseline on THIS host to
// demonstrate the memory-bound flat-GCell/s shape on real hardware.
#include <iostream>

#include "bench_util.hpp"
#include "harness/csv.hpp"
#include "cpu/yask_like.hpp"
#include "harness/experiments.hpp"

using namespace fpga_stencil;

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--csv") {
    write_comparison_csv(comparison_table(2), std::cout);
    return 0;
  }
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  bench::print_header(
      "TABLE IV: 2D STENCIL PERFORMANCE",
      "Roofline ratio = achieved GB/s over theoretical peak bandwidth; only "
      "temporal\nblocking (the FPGA) exceeds 1.0.");

  TextTable t({"Device", "rad", "GFLOP/s", "GCell/s", "GFLOP/s/W",
               "Roofline"});
  std::string last;
  for (const ComparisonRow& r : comparison_table(2)) {
    if (r.device != last) t.add_rule();
    last = r.device;
    const auto& refs = paper::table4();
    double pg = 0, pc = 0, pe = 0, pr = 0;
    for (const auto& p : refs) {
      if (r.device == p.device && r.radius == p.radius) {
        pg = p.gflops;
        pc = p.gcells;
        pe = p.power_efficiency;
        pr = p.roofline_ratio;
      }
    }
    t.add_row({r.device, std::to_string(r.radius),
               bench::vs_paper(r.gflops, pg, 1),
               bench::vs_paper(r.gcells, pc, 2),
               bench::vs_paper(r.power_efficiency, pe, 2),
               bench::vs_paper(r.roofline_ratio, pr, 2)});
  }
  t.render(std::cout);

  std::cout << "\nFindings reproduced: FPGA fastest for radius 1-3, Xeon Phi "
               "overtakes at radius 4;\nFPGA best GFLOP/s/W everywhere by a "
               "clear margin; CPU roofline ratio ~0.5.\n";

  // Host-measured shape demonstration.
  std::cout << "\nYASK-like baseline on THIS host ("
            << (quick ? "quick mode" : "full") << "): GCell/s should be "
               "roughly flat in the radius\n(memory-bound), GFLOP/s rising "
               "~linearly -- the paper's CPU shape:\n";
  TextTable h({"rad", "block", "GCell/s", "GFLOP/s"});
  const std::int64_t nx = quick ? 512 : 2048;
  const std::int64_t ny = quick ? 256 : 2048;
  const int iters = quick ? 4 : 8;
  for (int rad = 1; rad <= 4; ++rad) {
    const StarStencil s = StarStencil::make_benchmark(2, rad);
    YaskLikeStencil2D exec(s);
    const CpuBlockSize block = exec.auto_tune(nx, ny);
    Grid2D<float> g(nx, ny);
    g.fill_random(1);
    const CpuRunResult r = exec.run(g, iters, block);
    h.add_row({std::to_string(rad),
               std::to_string(block.bx) + "x" + std::to_string(block.by),
               format_fixed(r.gcells, 3), format_fixed(r.gflops, 2)});
  }
  h.render(std::cout);
  return 0;
}
