// Ablation: the paper's padding optimization and alignment rule (eq. 6).
//
// Overlapped blocking shifts each block's origin by csize, so without
// padding the streamed accesses land at arbitrary byte offsets. The paper
// (a) pads the input relative to partime so block origins stay aligned and
// (b) restricts (partime * rad) mod 4 == 0 so the halo is a multiple of 16
// bytes. This bench sweeps block-origin offsets through the cycle-level
// simulator and shows the bandwidth cost of ignoring both.
#include <iostream>

#include "bench_util.hpp"
#include "model/cycle_simulator.hpp"

using namespace fpga_stencil;

int main() {
  bench::print_header(
      "ABLATION: PADDING & ALIGNMENT (eq. 6)",
      "Cycle-level simulation of a 3D block pass (parvec 16 = 64 B "
      "accesses) with the\nblock origin at different byte offsets. Aligned "
      "origins (what padding buys) avoid\nburst splitting entirely.");

  const DeviceSpec dev = arria10_gx1150();
  TextTable t({"origin offset", "bytes", "mod 64B", "splits", "sim eff"});
  for (std::int64_t origin_cells : {0, 2, 4, 8, 12, 16, 24, 32}) {
    CycleSimConfig sim;
    sim.accel.dims = 3;
    sim.accel.radius = 2;
    sim.accel.bsize_x = 64;
    sim.accel.bsize_y = 32;
    sim.accel.parvec = 16;
    sim.accel.partime = 2;
    sim.nx = 4096;
    sim.stream_extent = 48;
    sim.fmax_mhz = 280.0;
    sim.block_x0 = origin_cells;
    const CycleStats st = simulate_block_pass(sim, dev);
    const std::int64_t bytes = origin_cells * 4;
    t.add_row({std::to_string(origin_cells) + " cells",
               std::to_string(bytes) + " B",
               bytes % 64 == 0 ? "aligned" : "unaligned",
               std::to_string(st.split_accesses),
               format_percent(st.efficiency())});
  }
  t.render(std::cout);

  std::cout
      << "\nOnly origins that are multiples of 16 cells (64 B) avoid "
         "splits: with parvec=16\nand eq. (6) keeping partime*rad a "
         "multiple of 4, padding can place every block\norigin on a burst "
         "boundary -- the optimization's entire point.\n";
  return 0;
}
