// Ablation: radius scaling beyond the paper's Table III, covering the
// Section VI.A projection -- 2D stays effective past radius 4, while 3D
// degrades to partime <= 2 at radius 5-6 (Block RAM) and temporal blocking
// stops paying.
#include <iostream>

#include "bench_util.hpp"
#include "fpga/fmax_model.hpp"
#include "fpga/resource_model.hpp"
#include "harness/experiments.hpp"
#include "model/performance_model.hpp"
#include "tune/tuner.hpp"

using namespace fpga_stencil;

int main() {
  bench::print_header(
      "ABLATION: RADIUS SCALING (tuned configs, radius 1..8)",
      "Tuner output per radius with the paper's block-size candidates; "
      "watch partime\ncollapse for 3D at radius >= 5 (Section VI.A).");

  const DeviceSpec dev = arria10_gx1150();
  for (int dims : {2, 3}) {
    std::cout << "\n" << dims << "D:\n";
    TextTable t({"rad", "best config", "aligned", "GB/s (meas)", "GFLOP/s",
                 "GCell/s", "Roofline"});
    for (int rad = 1; rad <= 8; ++rad) {
      TunerOptions o;
      o.dims = dims;
      o.radius = rad;
      o.alignment = AlignmentRule::kPrefer;
      if (dims == 2) {
        o.nx = 15712;
        o.ny = 15712;
        o.nz = 1;
      } else {
        o.nx = 696;
        o.ny = 728;
        o.nz = 696;  // defaults explore the paper's 256/128 block shapes
      }
      try {
        const TunedConfig best = best_config(dev, o);
        t.add_row({std::to_string(rad), best.config.describe(),
                   best.meets_alignment ? "yes" : "no",
                   format_fixed(best.perf.measured_gbps, 1),
                   format_fixed(best.perf.measured_gflops, 1),
                   format_fixed(best.perf.measured_gcells, 2),
                   format_fixed(best.perf.roofline_ratio, 2)});
      } catch (const ResourceError&) {
        t.add_row({std::to_string(rad), "no feasible configuration", "-",
                   "-", "-", "-", "-"});
      }
    }
    t.render(std::cout);
  }
  std::cout << "\n2D keeps GFLOP/s near 700 through radius 4 and degrades "
               "gently after; 3D GFLOP/s\nfalls once partime hits the Block "
               "RAM wall -- 'further accelerating such stencils\nwill only "
               "be possible with faster external memory' (paper, Section "
               "VI.A).\n";
  return 0;
}
