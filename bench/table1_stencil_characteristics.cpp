// Regenerates the paper's Table I: computational characteristics of 2D and
// 3D star stencils of radius 1..4 (extended to 8 to cover the Section VI.A
// projection), assuming distinct coefficients and full spatial reuse.
#include <iostream>

#include "bench_util.hpp"
#include "stencil/characteristics.hpp"

using namespace fpga_stencil;

int main() {
  bench::print_header(
      "TABLE I: STENCIL CHARACTERISTICS",
      "FLOP per cell update (8r+1 in 2D, 12r+1 in 3D), bytes per cell with "
      "full reuse,\nand arithmetic intensity; radii beyond 4 extend the "
      "paper's table.");

  TextTable t({"", "Radius", "FLOP/Cell", "FMUL", "FADD", "Byte/Cell",
               "FLOP/Byte", "DSP/Cell", "DSP/Cell (shared)"});
  for (int dims : {2, 3}) {
    t.add_rule();
    for (int rad = 1; rad <= 8; ++rad) {
      const StencilCharacteristics c = stencil_characteristics(dims, rad);
      t.add_row({rad == 1 ? (dims == 2 ? "2D" : "3D") : "",
                 std::to_string(rad), std::to_string(c.flop_per_cell),
                 std::to_string(c.fmul_per_cell),
                 std::to_string(c.fadd_per_cell),
                 std::to_string(c.bytes_per_cell),
                 format_fixed(c.flop_per_byte, 3),
                 std::to_string(c.dsp_per_cell),
                 std::to_string(c.dsp_per_cell_shared)});
    }
  }
  t.render(std::cout);

  std::cout << "\nPaper check (radius 1..4): 2D FLOP/Byte 1.125/2.125/3.125/"
               "4.125, 3D 1.625/3.125/4.625/6.125 -- regenerated exactly.\n";
  return 0;
}
