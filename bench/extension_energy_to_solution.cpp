// Extension bench: energy to solution.
//
// The paper reports GFLOP/s/W; HPC procurement increasingly asks the dual
// question -- joules per cell update for a fixed job. This bench derives
// nJ/cell for every Table IV/V row and for a reference job (one time step
// of a 768^3 grid), making the FPGA's efficiency edge concrete.
#include <iostream>

#include "bench_util.hpp"
#include "harness/experiments.hpp"

using namespace fpga_stencil;

int main() {
  const double job_cells = 768.0 * 768.0 * 768.0;  // one 3D time step

  for (int dims : {2, 3}) {
    bench::print_header(
        dims == 2 ? "EXTENSION: ENERGY TO SOLUTION (2D stencils)"
                  : "EXTENSION: ENERGY TO SOLUTION (3D stencils)",
        "nJ per cell update = power / cell rate; job = one time step of a "
        "768^3 grid\n(3D) or 16384^2 (2D). Derived from the Table IV/V "
        "rows.");
    const double cells =
        dims == 2 ? 16384.0 * 16384.0 : job_cells;
    TextTable t({"Device", "rad", "nJ/cell", "job energy (J)",
                 "job time (ms)", ""});
    std::string last;
    for (const ComparisonRow& r : comparison_table(dims)) {
      if (r.device != last) t.add_rule();
      last = r.device;
      const double nj_per_cell = r.power_watts / r.gcells;  // W / (G/s) = nJ
      const double job_seconds = cells / (r.gcells * 1e9);
      t.add_row({r.device, std::to_string(r.radius),
                 format_fixed(nj_per_cell, 3),
                 format_fixed(nj_per_cell * cells * 1e-9, 2),
                 format_fixed(job_seconds * 1e3, 2),
                 r.extrapolated ? "[extrapolated]" : ""});
    }
    t.render(std::cout);
  }

  std::cout << "\nReading: per joule, the Arria 10 updates ~10x more 2D "
               "cells than the Xeon Phi and\n~20x more than the Xeon; only "
               "the (extrapolated) Tesla P100 closes the 3D gap --\nthe "
               "power-efficiency story of the paper's Tables IV/V, restated "
               "as energy.\n";
  return 0;
}
