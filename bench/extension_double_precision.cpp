// Extension bench: double-precision what-if.
//
// The paper evaluates float32. Scientific stencils often need float64;
// on Arria-10-class devices a double-precision FMA costs ~4 DSPs and every
// cell moves twice the bytes, so eq. (4)'s partotal shrinks 4x and the
// memory-controller demand doubles. This bench re-tunes Table III's 3D
// experiment for float64 and prints the projected cost.
#include <iostream>

#include "bench_util.hpp"
#include "fpga/fmax_model.hpp"
#include "fpga/resource_model.hpp"
#include "harness/experiments.hpp"
#include "model/performance_model.hpp"
#include "stencil/characteristics.hpp"

using namespace fpga_stencil;

int main() {
  bench::print_header(
      "EXTENSION: DOUBLE PRECISION (3D stencils)",
      "partotal = floor(1518 / dsp_per_cell(fp64)); configurations re-tuned "
      "by scanning\npartime at the paper's parvec=16 under the fp64 DSP "
      "budget. BRAM per PE doubles\n(64-bit cells), modeled via the eq.-(7) "
      "bit count.");

  const DeviceSpec dev = arria10_gx1150();
  TextTable t({"rad", "fp32 DSP/cell", "fp64 DSP/cell", "fp32 partotal",
               "fp64 partotal", "fp64 config", "GB/s", "GFLOP/s",
               "vs fp32 GFLOP/s"});
  for (int rad = 1; rad <= 4; ++rad) {
    const StencilCharacteristics f32 =
        stencil_characteristics(3, rad, ValuePrecision::kFloat32);
    const StencilCharacteristics f64 =
        stencil_characteristics(3, rad, ValuePrecision::kFloat64);
    const std::int64_t partotal32 = dev.dsps / f32.dsp_per_cell;
    const std::int64_t partotal64 = dev.dsps / f64.dsp_per_cell;

    // Deepest fp64 chain at parvec 16 that fits DSPs and doubled BRAM.
    AcceleratorConfig cfg;
    cfg.dims = 3;
    cfg.radius = rad;
    cfg.bsize_x = 256;
    cfg.bsize_y = 128;
    cfg.parvec = 16;
    int pt = static_cast<int>(partotal64 / cfg.parvec);
    const auto fits_fp64 = [&](int partime) {
      if (partime < 1) return false;
      AcceleratorConfig c = cfg;
      c.partime = partime;
      if (c.csize_x() <= 0 || c.csize_y() <= 0) return false;
      ResourceUsage u = estimate_resources(c, dev);
      // 64-bit cells double every shift-register bit and block.
      return u.bram_bits_fraction * 2.0 <= 1.0 &&
             u.bram_block_fraction * 2.0 <= 1.0 &&
             dsp_usage(c) * dsps_per_fma(ValuePrecision::kFloat64) <=
                 dev.dsps;
    };
    while (pt > 0 && !fits_fp64(pt)) --pt;

    if (pt == 0) {
      t.add_row({std::to_string(rad), std::to_string(f32.dsp_per_cell),
                 std::to_string(f64.dsp_per_cell),
                 std::to_string(partotal32), std::to_string(partotal64),
                 "no feasible configuration"});
      continue;
    }
    cfg.partime = pt;
    const double fmax = estimate_fmax_mhz(cfg, dev);
    const PerformanceEstimate e =
        estimate_performance(cfg, dev, fmax, 696, 728, 696,
                             ValuePrecision::kFloat64);
    const FpgaResultRow fp32_row = fpga_result_row(3, rad, dev);
    t.add_row({std::to_string(rad), std::to_string(f32.dsp_per_cell),
               std::to_string(f64.dsp_per_cell), std::to_string(partotal32),
               std::to_string(partotal64), cfg.describe(),
               format_fixed(e.measured_gbps, 1),
               format_fixed(e.measured_gflops, 1),
               format_fixed(
                   e.measured_gflops / fp32_row.perf.measured_gflops, 2) +
                   "x"});
  }
  t.render(std::cout);
  std::cout << "\nfloat64 pays twice: 4x fewer parallel updates from the "
               "DSP budget and double the\nbytes per update against the "
               "same 34.1 GB/s -- high-order 3D float64 stencils on\nthis "
               "class of FPGA are firmly memory- and DSP-bound.\n";
  return 0;
}
