// One-stop reproduction scorecard: every paper number this repository
// regenerates, with its deviation, plus worst-case deviations per table.
// This is the machine-checkable backbone of EXPERIMENTS.md.
//
// With --json FILE the scorecard is also emitted as a machine-readable
// artifact (BENCH_PR2.json convention): one entry per Table III
// configuration with the modeled GFLOP/s / GCell/s / GB/s numbers plus a
// measured wall-clock simulation sample, and the telemetry snapshot of
// those instrumented runs. tools/check_bench_json.py validates the shape.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "common/stopwatch.hpp"
#include "core/stencil_accelerator.hpp"
#include "harness/experiments.hpp"
#include "telemetry/telemetry.hpp"

using namespace fpga_stencil;

namespace {

struct WorstCase {
  double dev = 0.0;
  std::string where;
  void update(double d, const std::string& w) {
    if (d > dev) {
      dev = d;
      where = w;
    }
  }
};

/// Measured wall-clock sample of one Table III configuration: the
/// bit-exact simulator on a scaled-down grid (the paper input sizes are
/// synthesis targets, not host-simulation targets), one fused pass.
struct SimSample {
  std::int64_t nx = 0, ny = 0, nz = 1;
  int iters = 0;
  double wall_seconds = 0.0;
  double cells_per_s = 0.0;
};

SimSample simulate_config(const AcceleratorConfig& paper_cfg,
                          Telemetry& telemetry) {
  AcceleratorConfig cfg = paper_cfg;
  cfg.telemetry = &telemetry;
  const StarStencil stencil =
      StarStencil::make_benchmark(cfg.dims, cfg.radius);
  StencilAccelerator accel(stencil, cfg);

  SimSample s;
  s.iters = cfg.partime;  // exactly one fused pass
  const Stopwatch wall;
  if (cfg.dims == 2) {
    s.nx = 512;
    s.ny = 256;
    Grid2D<float> g(s.nx, s.ny);
    g.fill_random(3);
    accel.run(g, s.iters);
  } else {
    s.nx = 96;
    s.ny = 96;
    s.nz = 48;
    Grid3D<float> g(s.nx, s.ny, s.nz);
    g.fill_random(3);
    accel.run(g, s.iters);
  }
  s.wall_seconds = wall.seconds();
  if (s.wall_seconds > 0) {
    s.cells_per_s =
        double(s.nx * s.ny * s.nz) * double(s.iters) / s.wall_seconds;
  }
  return s;
}

/// Emits the machine-readable scorecard (see tools/check_bench_json.py
/// for the schema this must satisfy).
int write_bench_json(const std::string& path, const DeviceSpec& dev) {
  Telemetry telemetry;
  std::ostringstream body;
  JsonWriter w(body);
  w.begin_object();
  w.key("schema_version").value(2);
  w.key("bench").value("experiments_summary");
  bench::write_host_block(w);
  w.key("paper").value(
      "High-Performance High-Order Stencil Computation on FPGAs Using "
      "OpenCL");
  w.key("device").value(dev.name);
  w.key("configs").begin_array();
  for (int dims : {2, 3}) {
    for (int rad = 1; rad <= 4; ++rad) {
      const FpgaResultRow r = fpga_result_row(dims, rad, dev);
      const SimSample sim = simulate_config(r.config, telemetry);
      w.begin_object();
      w.key("name").value(std::to_string(dims) + "D_r" +
                          std::to_string(rad));
      w.key("dims").value(dims);
      w.key("radius").value(rad);
      w.key("config").value(r.config.describe());
      w.key("bsize_x").value(r.config.bsize_x);
      w.key("bsize_y").value(r.config.bsize_y);
      w.key("parvec").value(r.config.parvec);
      w.key("partime").value(r.config.partime);
      w.key("input").begin_object();
      w.key("nx").value(r.input_x);
      w.key("ny").value(r.input_y);
      w.key("nz").value(r.input_z);
      w.end_object();
      w.key("model").begin_object();
      w.key("fmax_mhz").value(r.fmax_mhz);
      w.key("gbps").value(r.perf.measured_gbps);
      w.key("gflops").value(r.perf.measured_gflops);
      w.key("gcells").value(r.perf.measured_gcells);
      w.key("power_watts").value(r.power_watts);
      w.key("roofline_ratio").value(r.perf.roofline_ratio);
      w.end_object();
      w.key("simulation").begin_object();
      w.key("nx").value(sim.nx);
      w.key("ny").value(sim.ny);
      w.key("nz").value(sim.nz);
      w.key("iters").value(sim.iters);
      w.key("wall_seconds").value(sim.wall_seconds);
      w.key("cells_per_s").value(sim.cells_per_s);
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.key("telemetry").begin_object();
  w.key("metrics").begin_array();
  for (const MetricSample& s : telemetry.metrics().snapshot().samples) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("kind").value(metric_kind_name(s.kind));
    w.key("value").value(s.value);
    w.key("sum").value(s.sum);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();

  if (!json_is_valid(body.str())) {
    std::cerr << "experiments_summary: emitted JSON failed validation\n";
    return 1;
  }
  std::ofstream file(path);
  if (!file) {
    std::cerr << "experiments_summary: cannot open `" << path << "`\n";
    return 1;
  }
  file << body.str() << "\n";
  std::cout << "\nmachine-readable scorecard written to " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: experiments_summary [--json FILE]\n";
      return 2;
    }
  }
  bench::print_header("REPRODUCTION SCORECARD",
                      "Every regenerated value vs the paper, worst "
                      "deviations highlighted.");
  const DeviceSpec dev = arria10_gx1150();

  // ---- Table III ----
  WorstCase w3_meas, w3_fmax, w3_power;
  for (int dims : {2, 3}) {
    for (int rad = 1; rad <= 4; ++rad) {
      const FpgaResultRow r = fpga_result_row(dims, rad, dev);
      const paper::Table3Row& p = paper::table3_row(dims, rad);
      const std::string where =
          std::to_string(dims) + "D r" + std::to_string(rad);
      w3_meas.update(paper::deviation(r.perf.measured_gbps, p.measured_gbps),
                     where);
      w3_fmax.update(paper::deviation(r.fmax_mhz, p.fmax_mhz), where);
      w3_power.update(paper::deviation(r.power_watts, p.power_watts), where);
    }
  }
  std::cout << "\nTable III (8 rows):\n"
            << "  measured GB/s   worst dev "
            << format_percent(w3_meas.dev) << " (" << w3_meas.where << ")\n"
            << "  fmax            worst dev "
            << format_percent(w3_fmax.dev) << " (" << w3_fmax.where << ")\n"
            << "  power           worst dev "
            << format_percent(w3_power.dev) << " (" << w3_power.where
            << ")\n";

  // ---- Tables IV & V ----
  for (int dims : {2, 3}) {
    const auto ours = comparison_table(dims);
    const auto& ref = dims == 2 ? paper::table4() : paper::table5();
    WorstCase wg, wc, we;
    for (const paper::ComparisonRefRow& p : ref) {
      const auto it = std::find_if(
          ours.begin(), ours.end(), [&](const ComparisonRow& r) {
            return r.radius == p.radius && r.device == p.device;
          });
      if (it == ours.end()) {
        std::cout << "MISSING ROW: " << p.device << "\n";
        return 1;
      }
      const std::string where =
          std::string(p.device) + " r" + std::to_string(p.radius);
      wg.update(paper::deviation(it->gflops, p.gflops), where);
      wc.update(paper::deviation(it->gcells, p.gcells), where);
      we.update(paper::deviation(it->power_efficiency, p.power_efficiency),
                where);
    }
    std::cout << "\nTable " << (dims == 2 ? "IV" : "V") << " ("
              << ref.size() << " rows):\n"
              << "  GFLOP/s    worst dev " << format_percent(wg.dev) << " ("
              << wg.where << ")\n"
              << "  GCell/s    worst dev " << format_percent(wc.dev) << " ("
              << wc.where << ")\n"
              << "  GFLOP/s/W  worst dev " << format_percent(we.dev) << " ("
              << we.where << ")\n";
  }

  // ---- headline claims ----
  std::cout << "\nHeadline claims:\n";
  const bool h2d = [&] {
    for (int rad = 1; rad <= 4; ++rad) {
      if (fpga_result_row(2, rad, dev).perf.measured_gflops < 650) {
        return false;
      }
    }
    return true;
  }();
  const bool h3d = [&] {
    for (int rad = 1; rad <= 4; ++rad) {
      if (fpga_result_row(3, rad, dev).perf.measured_gflops < 270) {
        return false;
      }
    }
    return true;
  }();
  std::cout << "  2D > ~700 GFLOP/s through radius 4: "
            << (h2d ? "reproduced" : "MISSED") << "\n"
            << "  3D > 270 GFLOP/s through radius 4: "
            << (h3d ? "reproduced" : "MISSED") << "\n";
  const double ratio_r1 =
      fpga_result_row(2, 1, dev).perf.roofline_ratio;
  std::cout << "  temporal blocking beats memory bandwidth: roofline ratio "
            << format_fixed(ratio_r1, 1) << "x at 2D r1 (paper 19.8x)\n";

  if (!json_path.empty() && write_bench_json(json_path, dev) != 0) return 1;
  return h2d && h3d ? 0 : 1;
}
