// One-stop reproduction scorecard: every paper number this repository
// regenerates, with its deviation, plus worst-case deviations per table.
// This is the machine-checkable backbone of EXPERIMENTS.md.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "harness/experiments.hpp"

using namespace fpga_stencil;

namespace {

struct WorstCase {
  double dev = 0.0;
  std::string where;
  void update(double d, const std::string& w) {
    if (d > dev) {
      dev = d;
      where = w;
    }
  }
};

}  // namespace

int main() {
  bench::print_header("REPRODUCTION SCORECARD",
                      "Every regenerated value vs the paper, worst "
                      "deviations highlighted.");
  const DeviceSpec dev = arria10_gx1150();

  // ---- Table III ----
  WorstCase w3_meas, w3_fmax, w3_power;
  for (int dims : {2, 3}) {
    for (int rad = 1; rad <= 4; ++rad) {
      const FpgaResultRow r = fpga_result_row(dims, rad, dev);
      const paper::Table3Row& p = paper::table3_row(dims, rad);
      const std::string where =
          std::to_string(dims) + "D r" + std::to_string(rad);
      w3_meas.update(paper::deviation(r.perf.measured_gbps, p.measured_gbps),
                     where);
      w3_fmax.update(paper::deviation(r.fmax_mhz, p.fmax_mhz), where);
      w3_power.update(paper::deviation(r.power_watts, p.power_watts), where);
    }
  }
  std::cout << "\nTable III (8 rows):\n"
            << "  measured GB/s   worst dev "
            << format_percent(w3_meas.dev) << " (" << w3_meas.where << ")\n"
            << "  fmax            worst dev "
            << format_percent(w3_fmax.dev) << " (" << w3_fmax.where << ")\n"
            << "  power           worst dev "
            << format_percent(w3_power.dev) << " (" << w3_power.where
            << ")\n";

  // ---- Tables IV & V ----
  for (int dims : {2, 3}) {
    const auto ours = comparison_table(dims);
    const auto& ref = dims == 2 ? paper::table4() : paper::table5();
    WorstCase wg, wc, we;
    for (const paper::ComparisonRefRow& p : ref) {
      const auto it = std::find_if(
          ours.begin(), ours.end(), [&](const ComparisonRow& r) {
            return r.radius == p.radius && r.device == p.device;
          });
      if (it == ours.end()) {
        std::cout << "MISSING ROW: " << p.device << "\n";
        return 1;
      }
      const std::string where =
          std::string(p.device) + " r" + std::to_string(p.radius);
      wg.update(paper::deviation(it->gflops, p.gflops), where);
      wc.update(paper::deviation(it->gcells, p.gcells), where);
      we.update(paper::deviation(it->power_efficiency, p.power_efficiency),
                where);
    }
    std::cout << "\nTable " << (dims == 2 ? "IV" : "V") << " ("
              << ref.size() << " rows):\n"
              << "  GFLOP/s    worst dev " << format_percent(wg.dev) << " ("
              << wg.where << ")\n"
              << "  GCell/s    worst dev " << format_percent(wc.dev) << " ("
              << wc.where << ")\n"
              << "  GFLOP/s/W  worst dev " << format_percent(we.dev) << " ("
              << we.where << ")\n";
  }

  // ---- headline claims ----
  std::cout << "\nHeadline claims:\n";
  const bool h2d = [&] {
    for (int rad = 1; rad <= 4; ++rad) {
      if (fpga_result_row(2, rad, dev).perf.measured_gflops < 650) {
        return false;
      }
    }
    return true;
  }();
  const bool h3d = [&] {
    for (int rad = 1; rad <= 4; ++rad) {
      if (fpga_result_row(3, rad, dev).perf.measured_gflops < 270) {
        return false;
      }
    }
    return true;
  }();
  std::cout << "  2D > ~700 GFLOP/s through radius 4: "
            << (h2d ? "reproduced" : "MISSED") << "\n"
            << "  3D > 270 GFLOP/s through radius 4: "
            << (h3d ? "reproduced" : "MISSED") << "\n";
  const double ratio_r1 =
      fpga_result_row(2, 1, dev).perf.roofline_ratio;
  std::cout << "  temporal blocking beats memory bandwidth: roofline ratio "
            << format_fixed(ratio_r1, 1) << "x at 2D r1 (paper 19.8x)\n";
  return h2d && h3d ? 0 : 1;
}
