// google-benchmark microbenchmarks of the StencilEngine session overhead:
// what a job pays on top of the raw simulator for planning, admission, and
// buffer management -- and what the plan cache / buffer pool give back.
//
// Two granularities:
//   * PlanCache cold vs hit: the isolated cost of validating a config,
//     building a BlockingPlan, and fingerprinting the generated kernel
//     source, against the cost of an LRU lookup.
//   * Engine end-to-end cold vs cached: submit-to-completion latency of a
//     small job with caches cleared every iteration vs a warm session.
//     The grid is deliberately tiny so session overhead is not drowned by
//     simulation time.
//   * Cluster submit vs bare engine: what the serving tier's front door
//     (quota admission + fingerprint routing + terminal-hook wrapping)
//     adds per job on top of a single engine.
#include <benchmark/benchmark.h>

#include <utility>

#include "engine/engine_cluster.hpp"
#include "engine/plan_cache.hpp"
#include "engine/stencil_engine.hpp"
#include "stencil/star_stencil.hpp"

namespace fpga_stencil {
namespace {

AcceleratorConfig small2d() {
  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = 1;
  cfg.bsize_x = 32;
  cfg.parvec = 4;
  cfg.partime = 2;
  return cfg;
}

Grid2D<float> small_grid() {
  Grid2D<float> g(48, 20);
  g.fill_random(3);
  return g;
}

void BM_PlanCacheCold(benchmark::State& state) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 7).to_taps();
  const AcceleratorConfig cfg = small2d();
  PlanCache cache(8);
  for (auto _ : state) {
    cache.clear();
    auto plan = cache.lookup_or_build(taps, cfg, 48, 20);
    benchmark::DoNotOptimize(plan);
  }
  state.counters["misses"] = double(cache.misses());
}
BENCHMARK(BM_PlanCacheCold);

void BM_PlanCacheHit(benchmark::State& state) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 7).to_taps();
  const AcceleratorConfig cfg = small2d();
  PlanCache cache(8);
  (void)cache.lookup_or_build(taps, cfg, 48, 20);  // warm
  for (auto _ : state) {
    auto plan = cache.lookup_or_build(taps, cfg, 48, 20);
    benchmark::DoNotOptimize(plan);
  }
  state.counters["hit_rate"] =
      double(cache.hits()) / double(cache.hits() + cache.misses());
}
BENCHMARK(BM_PlanCacheHit);

// One small job, caches dumped each iteration: plan build + fresh scratch
// allocation on every run. This is the first-job latency of a session.
void BM_EngineRunColdPlan(benchmark::State& state) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 7).to_taps();
  const AcceleratorConfig cfg = small2d();
  StencilEngine engine({.workers = 1});
  const Grid2D<float> input = small_grid();
  for (auto _ : state) {
    engine.clear_caches();
    JobResult r = engine.run(JobSpec(taps, cfg, input, 3));
    benchmark::DoNotOptimize(r.grid2d().data());
  }
  state.counters["cache_hit_rate"] = engine.stats().cache_hit_rate();
}
BENCHMARK(BM_EngineRunColdPlan);

// Same job against a warm session: plan served from the LRU cache and
// scratch from the buffer pool. The delta to ColdPlan is the amortizable
// per-session setup cost.
void BM_EngineRunCachedPlan(benchmark::State& state) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 7).to_taps();
  const AcceleratorConfig cfg = small2d();
  StencilEngine engine({.workers = 1});
  const Grid2D<float> input = small_grid();
  (void)engine.run(JobSpec(taps, cfg, input, 3));  // warm plan + pool
  for (auto _ : state) {
    JobResult r = engine.run(JobSpec(taps, cfg, input, 3));
    benchmark::DoNotOptimize(r.grid2d().data());
  }
  state.counters["cache_hit_rate"] = engine.stats().cache_hit_rate();
  state.counters["pool_reuses"] = double(engine.stats().pool_reuses);
}
BENCHMARK(BM_EngineRunCachedPlan);

// Same warm job with empirical autotuning on (PR 9): the one-time plan
// search happened on the warm-up submit, so the steady-state delta to
// BM_EngineRunCachedPlan is the autotuner's warm-path cost -- which must
// be nothing beyond the same LRU lookup (the tuned geometry lives inside
// the cached plan; no tuner code runs on the job hot path).
void BM_EngineRunCachedTunedPlan(benchmark::State& state) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 7).to_taps();
  const AcceleratorConfig cfg = small2d();
  StencilEngine engine({.workers = 1,
                        .autotune = AutotuneMode::search,
                        .tuning_cache_path = "",
                        .autotune_probe_cells = 4 * 1024});
  const Grid2D<float> input = small_grid();
  (void)engine.run(JobSpec(taps, cfg, input, 3));  // warm plan (+ search)
  for (auto _ : state) {
    JobResult r = engine.run(JobSpec(taps, cfg, input, 3));
    benchmark::DoNotOptimize(r.grid2d().data());
  }
  state.counters["cache_hit_rate"] = engine.stats().cache_hit_rate();
  state.counters["tuner_searches"] = double(engine.stats().tuner_search_runs);
  state.counters["tuner_cache_hits"] =
      double(engine.stats().tuner_cache_hits);
}
BENCHMARK(BM_EngineRunCachedTunedPlan);

// submit + wait through the one front door (EngineCluster::run is a
// deprecated one-release shim).
JobResult cluster_run(EngineCluster& cluster, JobSpec spec) {
  JobHandle h = cluster.submit(std::move(spec));
  return std::move(h.wait());
}

// The same warm small job through the cluster front door. The delta to
// BM_EngineRunCachedPlan is the serving tier's per-job cost: tenant
// lookup + quota bookkeeping (unlimited quota here, the common case),
// route_key hashing, ring lookup, and the quota-release terminal hook.
void BM_ClusterRunCachedPlan(benchmark::State& state) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 7).to_taps();
  const AcceleratorConfig cfg = small2d();
  EngineCluster cluster({.shards = 2, .engine = {.workers = 1}});
  const Grid2D<float> input = small_grid();
  (void)cluster_run(cluster, JobSpec(taps, cfg, input, 3));  // warm owning shard
  for (auto _ : state) {
    JobSpec spec(taps, cfg, input, 3);
    spec.tenant = "bench";
    JobResult r = cluster_run(cluster, std::move(spec));
    benchmark::DoNotOptimize(r.grid2d().data());
  }
  const int owner =
      cluster.route_shard(JobSpec(taps, cfg, small_grid(), 3));
  state.counters["owner_hit_rate"] =
      cluster.shard(owner).stats().cache_hit_rate();
}
BENCHMARK(BM_ClusterRunCachedPlan);

// Quota-metered variant: a tight inflight cap plus a token bucket wide
// enough never to reject, isolating pure admission bookkeeping cost.
void BM_ClusterRunMeteredTenant(benchmark::State& state) {
  const TapSet taps = StarStencil::make_benchmark(2, 1, 7).to_taps();
  const AcceleratorConfig cfg = small2d();
  EngineCluster cluster(
      {.shards = 2,
       .engine = {.workers = 1},
       .quotas = {{"metered",
                   {.max_inflight = 4, .rate_per_s = 1e9, .burst = 1e9}}}});
  const Grid2D<float> input = small_grid();
  (void)cluster_run(cluster, JobSpec(taps, cfg, input, 3));
  for (auto _ : state) {
    JobSpec spec(taps, cfg, input, 3);
    spec.tenant = "metered";
    JobResult r = cluster_run(cluster, std::move(spec));
    benchmark::DoNotOptimize(r.grid2d().data());
  }
}
BENCHMARK(BM_ClusterRunMeteredTenant);

}  // namespace
}  // namespace fpga_stencil
