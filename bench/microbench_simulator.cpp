// google-benchmark microbenchmarks of the functional architecture simulator
// (host-side throughput of the PE-chain emulation, not modeled FPGA
// performance).
#include <benchmark/benchmark.h>

#include "core/stencil_accelerator.hpp"
#include "stencil/reference.hpp"

namespace fpga_stencil {
namespace {

void BM_Accelerator2D(benchmark::State& state) {
  const int rad = static_cast<int>(state.range(0));
  const int partime = static_cast<int>(state.range(1));
  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = rad;
  cfg.bsize_x = 128;
  cfg.parvec = 4;
  cfg.partime = partime;
  const StarStencil s = StarStencil::make_benchmark(2, rad);
  StencilAccelerator accel(s, cfg);
  Grid2D<float> g(256, 64);
  g.fill_random(1);
  std::int64_t updates = 0;
  for (auto _ : state) {
    accel.run(g, partime);
    updates += 256 * 64 * partime;
  }
  state.counters["cell_updates/s"] =
      benchmark::Counter(double(updates), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Accelerator2D)
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({2, 2})
    ->Args({4, 2});

void BM_Accelerator3D(benchmark::State& state) {
  const int rad = static_cast<int>(state.range(0));
  AcceleratorConfig cfg;
  cfg.dims = 3;
  cfg.radius = rad;
  cfg.bsize_x = 32;
  cfg.bsize_y = 32;
  cfg.parvec = 4;
  cfg.partime = 2;
  const StarStencil s = StarStencil::make_benchmark(3, rad);
  StencilAccelerator accel(s, cfg);
  Grid3D<float> g(48, 48, 16);
  g.fill_random(1);
  std::int64_t updates = 0;
  for (auto _ : state) {
    accel.run(g, 2);
    updates += 48 * 48 * 16 * 2;
  }
  state.counters["cell_updates/s"] =
      benchmark::Counter(double(updates), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Accelerator3D)->Arg(1)->Arg(2)->Arg(4);

void BM_ReferenceStep2D(benchmark::State& state) {
  const int rad = static_cast<int>(state.range(0));
  const StarStencil s = StarStencil::make_benchmark(2, rad);
  Grid2D<float> in(256, 64), out(256, 64);
  in.fill_random(1);
  for (auto _ : state) {
    reference_step(s, in, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ReferenceStep2D)->Arg(1)->Arg(4);

}  // namespace
}  // namespace fpga_stencil
