// Ablation: does temporal blocking help on a CPU? (paper Section V.B)
//
// The paper could not get a meaningful win from YASK's temporal blocking on
// Xeon or Xeon Phi (flat mode); Yount & Duran [22] report it only pays when
// a huge working set spills out of MCDRAM. This bench runs the FPGA
// scheme's CPU analogue (overlapped temporal cache blocking, bit-exact)
// against the plain spatially blocked executor on THIS host and reports
// the speedup and the recompute overhead.
#include <iostream>

#include "bench_util.hpp"
#include "cpu/temporal_cpu.hpp"
#include "cpu/yask_like.hpp"

using namespace fpga_stencil;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  bench::print_header(
      "ABLATION: CPU TEMPORAL BLOCKING (Section V.B)",
      "Plain spatial blocking vs overlapped temporal cache blocking, both "
      "bit-exact with\nthe reference. The paper found no meaningful win on "
      "Xeon-class hardware; a large\nrecompute overhead for little latency "
      "hiding is the usual outcome.");

  const std::int64_t nx = quick ? 512 : 2048;
  const std::int64_t ny = quick ? 384 : 2048;
  const int iters = quick ? 8 : 16;

  std::cout << "\n2D grid " << nx << "x" << ny << ", " << iters
            << " iterations:\n";
  TextTable t({"rad", "plain GCell/s", "T=2 GCell/s", "T=4 GCell/s",
               "T=8 GCell/s", "T=8 recompute", "best T speedup"});
  for (int rad : {1, 2, 4}) {
    const TapSet taps = StarStencil::make_benchmark(2, rad).to_taps();
    const YaskLikeStencil2D plain(taps);

    Grid2D<float> g(nx, ny);
    g.fill_random(1);
    const CpuRunResult base = plain.run(g, iters, CpuBlockSize{nx, 32, 1});

    std::vector<std::string> cells = {std::to_string(rad),
                                      format_fixed(base.gcells, 3)};
    double best = 0.0;
    double t8_redundancy = 0.0;
    for (int t_block : {2, 4, 8}) {
      Grid2D<float> work(nx, ny);
      work.fill_random(1);
      const TemporalCpuResult r =
          temporal_blocked_run_2d(taps, work, iters, 64, t_block);
      cells.push_back(format_fixed(r.run.gcells, 3));
      best = std::max(best, r.run.gcells);
      if (t_block == 8) t8_redundancy = r.redundancy();
    }
    cells.push_back(format_fixed(t8_redundancy, 2) + "x");
    cells.push_back(format_fixed(best / base.gcells, 2) + "x");
    t.add_row(std::move(cells));
  }
  t.render(std::cout);

  std::cout
      << "\nOn the FPGA the same trade buys ~partime x reuse because the "
         "halo recompute is\nfree (idle DSPs) and intermediate steps never "
         "touch memory; on a CPU the recompute\ncompetes with useful work "
         "on the same cores -- the paper's Section V.B outcome.\n";
  return 0;
}
