// Regenerates the paper's Table III: FPGA results for 2D and 3D stencils of
// radius 1..4 on the Arria 10 GX 1150, from the calibrated resource, fmax,
// power and performance models, annotated with paper-vs-ours deviations.
//
// Additionally runs the *functional* architecture simulator on a scaled-down
// replica of each configuration to certify that the design computing these
// numbers is the bit-exact one (the paper-scale grids of 10^8..10^9 cells x
// 1000 iterations are modeled, not executed, on a laptop).
#include <iostream>

#include "bench_util.hpp"
#include "harness/csv.hpp"
#include "core/stencil_accelerator.hpp"
#include "grid/grid_compare.hpp"
#include "harness/experiments.hpp"
#include "stencil/reference.hpp"

using namespace fpga_stencil;

namespace {

/// Scaled-down functional replica: same radius/parvec, reduced bsize and
/// partime, small grid; returns true when bit-exact vs the reference.
bool verify_functional(int dims, int rad) {
  AcceleratorConfig cfg = paper_config(dims, rad);
  cfg.bsize_x = 64;
  cfg.bsize_y = dims == 3 ? 32 : 1;
  cfg.parvec = 4;
  cfg.partime = 2;
  const StarStencil s = StarStencil::make_benchmark(dims, rad);
  StencilAccelerator accel(s, cfg);
  if (dims == 2) {
    Grid2D<float> g(150, 40);
    g.fill_random(99);
    Grid2D<float> want = g;
    accel.run(g, 5);
    reference_run(s, want, 5);
    return compare_exact(g, want).identical();
  }
  Grid3D<float> g(40, 36, 10);
  g.fill_random(99);
  Grid3D<float> want = g;
  accel.run(g, 5);
  reference_run(s, want, 5);
  return compare_exact(g, want).identical();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--csv") {
    write_table3_csv(arria10_gx1150(), std::cout);
    return 0;
  }

  bench::print_header(
      "TABLE III: FPGA RESULTS (Arria 10 GX 1150)",
      "Every cell shows ours vs the paper's measurement. 'Measured' columns "
      "come from the\ncalibrated pipeline model; 'accuracy' = measured / "
      "estimated = pipeline efficiency.\nNote: our estimate charges y-halo "
      "and stream-drain redundancy exactly, so it runs\nbelow the paper's "
      "(less detailed) model for 3D; see EXPERIMENTS.md.");

  const DeviceSpec dev = arria10_gx1150();
  TextTable t({"", "rad", "bsize", "pv", "pt", "Input", "Est GB/s",
               "Meas GB/s", "GFLOP/s", "GCell/s", "fmax MHz", "Logic",
               "Mem bits|blocks", "DSP", "Power W", "Acc"});

  bool all_exact = true;
  for (int dims : {2, 3}) {
    t.add_rule();
    for (int rad = 1; rad <= 4; ++rad) {
      const FpgaResultRow r = fpga_result_row(dims, rad, dev);
      const paper::Table3Row& p = paper::table3_row(dims, rad);
      const std::string bsize =
          dims == 2 ? std::to_string(r.config.bsize_x)
                    : format_dims2(std::uint64_t(r.config.bsize_x),
                                   std::uint64_t(r.config.bsize_y));
      const std::string input =
          dims == 2 ? format_dims2(std::uint64_t(r.input_x),
                                   std::uint64_t(r.input_y))
                    : format_dims3(std::uint64_t(r.input_x),
                                   std::uint64_t(r.input_y),
                                   std::uint64_t(r.input_z));
      t.add_row({rad == 1 ? (dims == 2 ? "2D" : "3D") : "",
                 std::to_string(rad), bsize, std::to_string(r.config.parvec),
                 std::to_string(r.config.partime), input,
                 bench::vs_paper(r.perf.estimated_gbps, p.estimated_gbps, 1),
                 bench::vs_paper(r.perf.measured_gbps, p.measured_gbps, 1),
                 bench::vs_paper(r.perf.measured_gflops, p.measured_gflops, 1),
                 bench::vs_paper(r.perf.measured_gcells, p.measured_gcells, 2),
                 bench::vs_paper(r.fmax_mhz, p.fmax_mhz, 1),
                 format_percent(r.usage.logic_fraction),
                 format_percent(r.usage.bram_bits_fraction) + "|" +
                     format_percent(r.usage.bram_block_fraction),
                 format_percent(r.usage.dsp_fraction),
                 bench::vs_paper(r.power_watts, p.power_watts, 1),
                 format_percent(r.perf.pipeline_efficiency) + " (paper " +
                     format_percent(p.model_accuracy) + ")"});
      const bool exact = verify_functional(dims, rad);
      all_exact &= exact;
    }
  }
  t.render(std::cout);

  std::cout << "\nFunctional certification: scaled-down replica of every "
               "configuration is\nbit-exact against the naive reference: "
            << (all_exact ? "PASS" : "FAIL") << "\n";

  std::cout << "\nHeadline (paper abstract): >700 GFLOP/s for 2D and >270 "
               "GFLOP/s for 3D up to radius 4:\n";
  bool headline = true;
  for (int rad = 1; rad <= 4; ++rad) {
    headline &= fpga_result_row(2, rad, dev).perf.measured_gflops > 650.0;
    headline &= fpga_result_row(3, rad, dev).perf.measured_gflops > 270.0;
  }
  std::cout << (headline ? "  reproduced (2D > 650, 3D > 270 in our models)."
                         : "  NOT reproduced.")
            << "\n";
  return all_exact ? 0 : 1;
}
