// Ablation: spatial block size. Larger blocks amortize the overlapped halo
// (less redundant computation) but cost Block RAM proportional to the
// shift-register size (eq. 7) -- the tension that forced the paper from
// 256x256 to 256x128 blocks for high-order 3D stencils.
#include <iostream>

#include "bench_util.hpp"
#include "fpga/fmax_model.hpp"
#include "fpga/resource_model.hpp"
#include "harness/experiments.hpp"
#include "model/performance_model.hpp"

using namespace fpga_stencil;

int main() {
  bench::print_header(
      "ABLATION: 3D SPATIAL BLOCK SIZE (radius 2, parvec 16, partime 6)",
      "valid fraction = 1 / redundancy; Block RAM grows with bsize_x * "
      "bsize_y.");

  const DeviceSpec dev = arria10_gx1150();
  TextTable t({"bsize", "fits", "BRAM bits", "BRAM blocks", "Valid frac",
               "GB/s (meas)", "GCell/s"});
  for (const auto& [bx, by] :
       {std::pair<std::int64_t, std::int64_t>{64, 64},
        {128, 64},
        {128, 128},
        {256, 128},
        {256, 256},
        {512, 256},
        {512, 512}}) {
    AcceleratorConfig cfg;
    cfg.dims = 3;
    cfg.radius = 2;
    cfg.bsize_x = bx;
    cfg.bsize_y = by;
    cfg.parvec = 16;
    cfg.partime = 6;
    if (cfg.csize_x() <= 0 || cfg.csize_y() <= 0) continue;
    const ResourceUsage u = estimate_resources(cfg, dev);
    const std::string bsize = format_dims2(std::uint64_t(bx), std::uint64_t(by));
    if (!u.fits()) {
      t.add_row({bsize, "no", format_percent(u.bram_bits_fraction),
                 format_percent(u.bram_block_fraction), "-", "-", "-"});
      continue;
    }
    const double fmax = estimate_fmax_mhz(cfg, dev);
    const PerformanceEstimate e =
        estimate_performance(cfg, dev, fmax, 696, 728, 696);
    t.add_row({bsize, "yes", format_percent(u.bram_bits_fraction),
               format_percent(u.bram_block_fraction),
               format_percent(e.valid_fraction),
               format_fixed(e.measured_gbps, 1),
               format_fixed(e.measured_gcells, 2)});
  }
  t.render(std::cout);
  std::cout << "\n256x128 is the largest block that fits at partime 6 -- "
               "exactly the paper's pick\nfor high-order 3D stencils.\n";
  return 0;
}
