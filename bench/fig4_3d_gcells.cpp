// Regenerates the paper's Fig. 4: 3D stencil performance in GCell/s per
// device and stencil order.
//
// Trend to reproduce (Section VI.B): FPGA GCell/s falls ~proportional to
// the order (first order >2x second order); Xeon/Xeon Phi are flat; GPUs
// fall slower than the radius grows.
#include <iostream>

#include "bench_util.hpp"
#include "fig_util.hpp"
#include "harness/experiments.hpp"

using namespace fpga_stencil;

int main() {
  bench::print_header("FIG. 4: 3D STENCIL PERFORMANCE (GCell/s)",
                      "Same data as Table V, in the paper's series form.");
  const auto rows = comparison_table(3);
  bench::render_series(
      rows, [](const ComparisonRow& r) { return r.gcells; }, "GCell/s",
      std::cout);

  auto val = [&](const char* dev, int rad) {
    for (const auto& r : rows) {
      if (r.device.find(dev) != std::string::npos && r.radius == rad) {
        return r.gcells;
      }
    }
    return 0.0;
  };
  const double fpga_drop = val("Arria", 1) / val("Arria", 4);
  const double phi_drop = val("Phi", 1) / val("Phi", 4);
  const double gpu_drop = val("GTX 580", 1) / val("GTX 580", 4);
  std::cout << "\ntrends (r1/r4 GCell/s ratio): FPGA "
            << format_fixed(fpga_drop, 2)
            << " (paper ~5.2, ~proportional to order), Xeon Phi "
            << format_fixed(phi_drop, 2) << " (paper ~1.0, flat), GPU "
            << format_fixed(gpu_drop, 2) << " (paper ~1.9, sub-linear)\n";
  std::cout << "first-order vs second-order on the FPGA: "
            << format_fixed(val("Arria", 1) / val("Arria", 2), 2)
            << "x (paper: 'more than 2x')\n";
  const bool ok = fpga_drop > 3.5 && phi_drop < 1.15 && gpu_drop < 2.5 &&
                  val("Arria", 1) / val("Arria", 2) > 2.0;
  std::cout << (ok ? "shape reproduced.\n" : "SHAPE MISMATCH!\n");
  return ok ? 0 : 1;
}
