// Extension bench: multi-FPGA strong scaling of the paper's 3D experiment.
//
// Related work [19] already paired two FPGAs; this bench scales the
// Table III radius-2 3D configuration across 1..8 Arria 10 boards slicing
// z, with the temporal-blocking halo (partime*rad planes) exchanged per
// pass. Two interconnects are modeled: PCIe-class (8 GB/s, 5 us) and a
// 100G serial link (12.5 GB/s, 1 us). A small-scale run certifies the
// partitioned computation stays bit-exact.
#include <iostream>

#include "bench_util.hpp"
#include "cluster/multi_fpga.hpp"
#include "grid/grid_compare.hpp"
#include "harness/experiments.hpp"
#include "stencil/reference.hpp"

using namespace fpga_stencil;

int main() {
  bench::print_header(
      "EXTENSION: MULTI-FPGA STRONG SCALING (3D radius 2, Table III config)",
      "696x728x696 grid, 1000 iterations, modeled wall time per board "
      "count. Halo per\npass = partime*rad = 12 planes = ~24 MB per "
      "neighbor exchange.");

  const DeviceSpec dev = arria10_gx1150();
  const AcceleratorConfig cfg = paper_config(3, 2);
  const LinkSpec pcie{8.0, 5.0};
  const LinkSpec serial{12.5, 1.0};

  const ClusterStats base =
      model_cluster_run(1, cfg, dev, pcie, 696, 728, 696, 1000);

  TextTable t({"boards", "PCIe time (s)", "PCIe speedup", "PCIe exch%",
               "100G time (s)", "100G speedup", "100G exch%"});
  for (int boards : {1, 2, 4, 8}) {
    const ClusterStats p =
        model_cluster_run(boards, cfg, dev, pcie, 696, 728, 696, 1000);
    const ClusterStats s =
        model_cluster_run(boards, cfg, dev, serial, 696, 728, 696, 1000);
    t.add_row({std::to_string(boards), format_fixed(p.total_seconds, 2),
               format_fixed(base.total_seconds / p.total_seconds, 2) + "x",
               format_percent(p.exchange_fraction()),
               format_fixed(s.total_seconds, 2),
               format_fixed(base.total_seconds / s.total_seconds, 2) + "x",
               format_percent(s.exchange_fraction())});
  }
  t.render(std::cout);

  // Alternative arrangement: temporal chaining (related work [19] with two
  // boards): no halos, no redundant computation -- the whole grid streams
  // board to board, each advancing it a further partime time steps.
  std::cout << "\nTemporal chaining (steady state, many grid passes in "
               "flight):\n";
  TextTable tc({"boards", "PCIe time (s)", "PCIe speedup", "100G time (s)",
                "100G speedup", "PCIe exch%"});
  const ClusterStats chain_base =
      model_temporal_chain(1, cfg, dev, pcie, 696, 728, 696, 1000);
  for (int boards : {1, 2, 4, 8}) {
    const ClusterStats p =
        model_temporal_chain(boards, cfg, dev, pcie, 696, 728, 696, 1000);
    const ClusterStats se =
        model_temporal_chain(boards, cfg, dev, serial, 696, 728, 696, 1000);
    tc.add_row({std::to_string(boards), format_fixed(p.total_seconds, 2),
                format_fixed(chain_base.total_seconds / p.total_seconds, 2) +
                    "x",
                format_fixed(se.total_seconds, 2),
                format_fixed(chain_base.total_seconds / se.total_seconds, 2) +
                    "x",
                format_percent(p.exchange_fraction())});
  }
  tc.render(std::cout);

  // Certify the chain's functional equivalence at reduced scale.
  {
    AcceleratorConfig small = cfg;
    small.bsize_x = 32;
    small.bsize_y = 16;
    small.parvec = 4;
    small.partime = 2;
    const StarStencil st = StarStencil::make_benchmark(3, 2);
    Grid3D<float> g(30, 26, 14);
    g.fill_random(2);
    Grid3D<float> want = g;
    run_temporal_chain(3, st.to_taps(), small, dev, pcie, g, 9);
    reference_run(st, want, 9);
    std::cout << "3-board temporal chain, bit-exact vs reference: "
              << (compare_exact(g, want).identical() ? "PASS" : "FAIL")
              << "\n";
  }

  // Bit-exactness certification at reduced scale.
  AcceleratorConfig small = cfg;
  small.bsize_x = 32;
  small.bsize_y = 16;
  small.parvec = 4;
  small.partime = 3;
  const StarStencil s = StarStencil::make_benchmark(3, 2);
  MultiFpgaCluster cluster(4, s.to_taps(), small, dev, pcie);
  Grid3D<float> g(40, 30, 21);
  g.fill_random(1);
  Grid3D<float> want = g;
  cluster.run(g, 7);
  reference_run(s, want, 7);
  const bool exact = compare_exact(g, want).identical();
  std::cout << "\n4-board partitioned run, bit-exact vs reference: "
            << (exact ? "PASS" : "FAIL") << "\n";
  std::cout << "\nReading: spatial partitioning is capped by the per-board "
               "halo recompute (the\ntemporal-blocking halo is partime*rad "
               "planes per pass), not the link; temporal\nchaining scales "
               "better (no redundant work) but only in steady state with "
               "many\ngrid passes in flight, and each extra board deepens "
               "the result latency --\nthe same fill/throughput trade the "
               "paper makes inside one device with partime.\n";
  return exact ? 0 : 1;
}
