// Single-thread throughput of the specialized kernel library vs the
// scalar interpreter, per envelope point, plus the PR 7 acceptance
// workload (3D star, radius 4, partime 4) and a block-parallel scaling
// rerun on top of the specialized kernels.
//
// Every measured pair is also an exactness check: the specialized run
// must match the interpreter bit-for-bit (and the block-parallel runs
// must match the sync run), so the benchmark doubles as a self-test and
// exits nonzero on any mismatch or missing dispatch.
//
// With --json FILE the scorecard is exported in the BENCH_PR7.json
// convention ("bench": "kernel_dispatch"); tools/check_bench_json.py
// validates the shape as a ctest fixture. Default sizes are CI-small;
// --full selects the acceptance sizes (512^3) used for the committed
// artifact:
//   microbench_kernel_dispatch --full --json BENCH_PR7.json
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "common/stopwatch.hpp"
#include "core/block_parallel_accelerator.hpp"
#include "core/stencil_accelerator.hpp"
#include "grid/grid_compare.hpp"
#include "kernels/kernel_registry.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/star_stencil.hpp"
#include "telemetry/telemetry.hpp"

using namespace fpga_stencil;

namespace {

struct Options {
  std::string json_path;
  bool full = false;           // acceptance sizes instead of CI-small
  std::int64_t n2d = 64;       // envelope 2D grid: n2d x (n2d * 5 / 8)
  std::int64_t n3d = 28;       // envelope 3D grid: n3d x (n3d-4) x (n3d/2)
  std::int64_t accept_n = 64;  // acceptance grid: accept_n^3
  int iters = 2;               // envelope iterations (partime 2)
  std::vector<int> workers = {1, 2, 4};
};

struct PointResult {
  std::string name;
  StencilShape shape = StencilShape::kStar;
  int dims = 2, radius = 1, parvec = 1;
  std::int64_t nx = 0, ny = 0, nz = 1;
  int iters = 0;
  double generic_mcells = 0.0;
  double specialized_mcells = 0.0;
  bool exact = false;
  bool dispatched = false;
  [[nodiscard]] double speedup() const {
    return generic_mcells > 0.0 ? specialized_mcells / generic_mcells : 0.0;
  }
};

TapSet envelope_taps(StencilShape shape, int dims, int radius) {
  if (shape == StencilShape::kStar) {
    return StarStencil::make_benchmark(dims, radius, 99).to_taps();
  }
  return make_box_stencil(dims, radius, 99);
}

AcceleratorConfig envelope_config(int dims, int radius, int parvec,
                                  int partime = 2) {
  AcceleratorConfig cfg;
  cfg.dims = dims;
  cfg.radius = radius;
  cfg.parvec = parvec;
  cfg.partime = partime;
  cfg.bsize_x = 32;
  cfg.bsize_y = dims == 3 ? 2 * partime * radius + 5 : 1;
  return cfg;
}

/// The PR 7 acceptance workload: 3D star, radius 4, partime 4, parvec 16
/// (paper-sized knobs; bsize 144 is the smallest multiple of 16 that
/// leaves a healthy csize at halo 16).
AcceleratorConfig acceptance_config() {
  AcceleratorConfig cfg;
  cfg.dims = 3;
  cfg.radius = 4;
  cfg.parvec = 16;
  cfg.partime = 4;
  cfg.bsize_x = 144;
  cfg.bsize_y = 144;
  return cfg;
}

template <typename GridT>
double time_run(const TapSet& taps, AcceleratorConfig cfg, GridT& grid,
                int iters, bool specialized) {
  cfg.use_specialized_kernels = specialized;
  StencilAccelerator accel(taps, cfg);
  const Stopwatch clock;
  (void)accel.run(grid, iters);
  return double(clock.nanoseconds()) / 1e9;
}

double mcells_per_s(std::int64_t cells, int iters, double seconds) {
  return seconds > 0.0 ? double(cells) * iters / seconds / 1e6 : 0.0;
}

template <typename GridT>
PointResult measure_point(StencilShape shape, int radius, int parvec,
                          GridT& work, const GridT& init, int iters) {
  constexpr int dims = std::is_same_v<GridT, Grid3D<float>> ? 3 : 2;
  const TapSet taps = envelope_taps(shape, dims, radius);
  const AcceleratorConfig cfg = envelope_config(dims, radius, parvec);

  PointResult r;
  r.shape = shape;
  r.dims = dims;
  r.radius = radius;
  r.parvec = parvec;
  r.nx = init.nx();
  r.ny = init.ny();
  if constexpr (dims == 3) r.nz = init.nz();
  r.iters = iters;
  const SpecializedKernel* k = KernelRegistry::instance().find(taps, cfg);
  r.dispatched = k != nullptr;
  r.name = k ? k->name
             : std::string(stencil_shape_name(shape)) + "_" +
                   std::to_string(dims) + "d_r" + std::to_string(radius) +
                   "_v" + std::to_string(parvec);

  const std::int64_t cells = init.nx() * init.ny() * r.nz;
  work = init;
  const double t_gen = time_run(taps, cfg, work, iters, /*specialized=*/false);
  GridT reference = std::move(work);
  work = init;
  const double t_spec = time_run(taps, cfg, work, iters, /*specialized=*/true);
  r.generic_mcells = mcells_per_s(cells, iters, t_gen);
  r.specialized_mcells = mcells_per_s(cells, iters, t_spec);
  r.exact = compare_exact(work, reference).identical();
  return r;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--json") {
      const char* v = next();
      if (!v) return false;
      opt.json_path = v;
    } else if (a == "--full") {
      opt.full = true;
      opt.n2d = 512;
      opt.n3d = 96;
      opt.accept_n = 512;
      opt.iters = 4;
      opt.workers = {1, 2, 4, 8};
    } else if (a == "--n2d") {
      const char* v = next();
      if (!v) return false;
      opt.n2d = std::atoll(v);
    } else if (a == "--n3d") {
      const char* v = next();
      if (!v) return false;
      opt.n3d = std::atoll(v);
    } else if (a == "--accept-n") {
      const char* v = next();
      if (!v) return false;
      opt.accept_n = std::atoll(v);
    } else if (a == "--iters") {
      const char* v = next();
      if (!v) return false;
      opt.iters = std::atoi(v);
    } else if (a == "--workers") {
      const char* v = next();
      if (!v) return false;
      opt.workers.clear();
      std::stringstream ss(v);
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        opt.workers.push_back(std::atoi(tok.c_str()));
      }
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    std::cerr << "usage: microbench_kernel_dispatch [--json FILE] [--full]\n"
              << "         [--n2d N] [--n3d N] [--accept-n N] [--iters I]\n"
              << "         [--workers 1,2,4]\n";
    return 2;
  }

  bool ok = true;

  // ---- envelope sweep: generic vs specialized per registry entry ----
  Grid2D<float> init2(opt.n2d, opt.n2d * 5 / 8);
  init2.fill_random(21, -1.0f, 1.0f);
  Grid2D<float> work2(init2.nx(), init2.ny());
  Grid3D<float> init3(opt.n3d, opt.n3d - 4, std::max<std::int64_t>(
                                                opt.n3d / 2, 8));
  init3.fill_random(22, -1.0f, 1.0f);
  Grid3D<float> work3(init3.nx(), init3.ny(), init3.nz());

  std::vector<PointResult> envelope;
  std::cout << "kernel            grid            generic   specialized  "
               "speedup  exact\n";
  for (StencilShape shape : {StencilShape::kStar, StencilShape::kBox}) {
    for (int dims : {2, 3}) {
      for (int rad = 1; rad <= 4; ++rad) {
        for (int pv : {1, 4, 8, 16}) {
          const PointResult r =
              dims == 2 ? measure_point(shape, rad, pv, work2, init2,
                                        opt.iters)
                        : measure_point(shape, rad, pv, work3, init3,
                                        opt.iters);
          ok = ok && r.exact && r.dispatched;
          std::ostringstream grid;
          grid << r.nx << "x" << r.ny;
          if (r.dims == 3) grid << "x" << r.nz;
          std::cout << r.name << std::string(18 - std::min<std::size_t>(
                                                 17, r.name.size()), ' ')
                    << grid.str() << "\t" << r.generic_mcells << "\t"
                    << r.specialized_mcells << "\tx" << r.speedup() << "\t"
                    << (r.exact ? "yes" : "NO") << "\n";
          envelope.push_back(r);
        }
      }
    }
  }

  // ---- acceptance point: 3D star r4 partime 4, telemetry-audited ----
  const AcceleratorConfig acfg = acceptance_config();
  const TapSet ataps = envelope_taps(StencilShape::kStar, 3, 4);
  Grid3D<float> ainit(opt.accept_n, opt.accept_n, opt.accept_n);
  ainit.fill_random(23, -1.0f, 1.0f);
  const int aiters = acfg.partime;
  const std::int64_t acells = ainit.nx() * ainit.ny() * ainit.nz();

  Telemetry atel;
  AcceleratorConfig acfg_tel = acfg;
  acfg_tel.telemetry = &atel;
  Grid3D<float> awork = ainit;
  const double at_gen = time_run(ataps, acfg, awork, aiters, false);
  Grid3D<float> areference = std::move(awork);
  awork = ainit;
  const double at_spec = time_run(ataps, acfg_tel, awork, aiters, true);
  const bool accept_exact = compare_exact(awork, areference).identical();
  const bool accept_dispatched =
      atel.metrics().counter("kernels.dispatch_specialized").value() > 0 &&
      atel.metrics().counter("kernels.dispatch_fallback").value() == 0;
  ok = ok && accept_exact && accept_dispatched;
  const double accept_gen_mc = mcells_per_s(acells, aiters, at_gen);
  const double accept_spec_mc = mcells_per_s(acells, aiters, at_spec);
  const double accept_speedup =
      accept_gen_mc > 0.0 ? accept_spec_mc / accept_gen_mc : 0.0;
  std::cout << "\nacceptance " << acfg.describe() << " grid " << opt.accept_n
            << "^3: generic " << accept_gen_mc << " Mcell/s, specialized "
            << accept_spec_mc << " Mcell/s, speedup x" << accept_speedup
            << ", exact " << (accept_exact ? "yes" : "NO") << "\n";

  // ---- block-parallel scaling rerun on the specialized kernels ----
  struct ScaleRun {
    int workers = 0;
    double mcells = 0.0;
    double speedup_vs_sync = 0.0;
    bool exact = false;
  };
  std::vector<ScaleRun> scale;
  const double sync_mc = accept_spec_mc;  // sync specialized baseline
  const unsigned hc = std::thread::hardware_concurrency();
  int max_workers = 1;
  double best_speedup = 0.0;
  for (int wkr : opt.workers) {
    max_workers = std::max(max_workers, wkr);
    RunOptions ropt;
    ropt.workers = wkr;
    Grid3D<float> pwork = ainit;
    const Stopwatch clock;
    (void)run_block_parallel(ataps, acfg, pwork, aiters, ropt);
    const double secs = double(clock.nanoseconds()) / 1e9;
    ScaleRun s;
    s.workers = wkr;
    s.mcells = mcells_per_s(acells, aiters, secs);
    s.speedup_vs_sync = sync_mc > 0.0 ? s.mcells / sync_mc : 0.0;
    s.exact = compare_exact(pwork, areference).identical();
    best_speedup = std::max(best_speedup, s.speedup_vs_sync);
    ok = ok && s.exact;
    std::cout << "blockpar workers=" << wkr << ": " << s.mcells
              << " Mcell/s, x" << s.speedup_vs_sync << " vs sync, exact "
              << (s.exact ? "yes" : "NO") << "\n";
    scale.push_back(s);
  }
  // As in stencilctl blockpar: the scaling gate only binds on hosts with
  // enough cores; exactness binds everywhere.
  const bool gate_checked = hc >= unsigned(max_workers);

  double min_sp = 1e300, max_sp = 0.0;
  std::vector<double> sps;
  for (const PointResult& r : envelope) {
    min_sp = std::min(min_sp, r.speedup());
    max_sp = std::max(max_sp, r.speedup());
    sps.push_back(r.speedup());
  }
  std::sort(sps.begin(), sps.end());
  const double med_sp = sps.empty() ? 0.0 : sps[sps.size() / 2];
  std::cout << "\nenvelope speedups: min x" << min_sp << ", median x"
            << med_sp << ", max x" << max_sp << "\n";

  if (!opt.json_path.empty()) {
    std::ostringstream body;
    JsonWriter w(body);
    w.begin_object();
    w.key("schema_version").value(2);
    w.key("bench").value("kernel_dispatch");
    bench::write_host_block(w);
    w.key("paper").value(
        "High-Performance High-Order Stencil Computation on FPGAs Using "
        "OpenCL");
    w.key("mode").value(opt.full ? "full" : "reduced");
    w.key("hardware_concurrency").value(std::int64_t(hc));
    w.key("envelope").begin_array();
    for (const PointResult& r : envelope) {
      w.begin_object();
      w.key("name").value(r.name);
      w.key("shape").value(stencil_shape_name(r.shape));
      w.key("dims").value(r.dims);
      w.key("radius").value(r.radius);
      w.key("parvec").value(r.parvec);
      w.key("nx").value(r.nx);
      w.key("ny").value(r.ny);
      w.key("nz").value(r.nz);
      w.key("iters").value(r.iters);
      w.key("generic_mcells_per_s").value(r.generic_mcells);
      w.key("specialized_mcells_per_s").value(r.specialized_mcells);
      w.key("speedup").value(r.speedup());
      w.key("exact").value(r.exact);
      w.key("dispatched").value(r.dispatched);
      w.end_object();
    }
    w.end_array();
    w.key("acceptance").begin_object();
    w.key("config").value(acfg.describe());
    w.key("nx").value(ainit.nx());
    w.key("ny").value(ainit.ny());
    w.key("nz").value(ainit.nz());
    w.key("iters").value(aiters);
    w.key("generic_mcells_per_s").value(accept_gen_mc);
    w.key("specialized_mcells_per_s").value(accept_spec_mc);
    w.key("speedup").value(accept_speedup);
    w.key("exact").value(accept_exact);
    w.key("dispatched").value(accept_dispatched);
    w.end_object();
    w.key("blockpar").begin_object();
    w.key("baseline_mcells_per_s").value(sync_mc);
    w.key("speedup_gate_checked").value(gate_checked);
    w.key("best_speedup").value(best_speedup);
    w.key("runs").begin_array();
    for (const ScaleRun& s : scale) {
      w.begin_object();
      w.key("workers").value(s.workers);
      w.key("mcells_per_s").value(s.mcells);
      w.key("speedup_vs_sync").value(s.speedup_vs_sync);
      w.key("exact").value(s.exact);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.key("summary").begin_object();
    w.key("points").value(std::int64_t(envelope.size()));
    w.key("exact_points")
        .value(std::int64_t(std::count_if(envelope.begin(), envelope.end(),
                                          [](const PointResult& r) {
                                            return r.exact;
                                          })));
    w.key("min_speedup").value(min_sp);
    w.key("median_speedup").value(med_sp);
    w.key("max_speedup").value(max_sp);
    w.end_object();
    w.end_object();

    std::ofstream out(opt.json_path);
    if (!out) {
      std::cerr << "cannot write " << opt.json_path << "\n";
      return 1;
    }
    out << body.str() << "\n";
    std::cout << "wrote " << opt.json_path << "\n";
  }

  if (!ok) {
    std::cerr << "SELF-CHECK FAILED: a specialized run diverged from the "
                 "interpreter or failed to dispatch\n";
    return 1;
  }
  return 0;
}
