// Ablation: the value of temporal blocking (the paper's core design
// choice). Sweeps partime at fixed parvec and reports modeled throughput,
// halo redundancy, and the roofline ratio -- without temporal blocking
// (partime = 1) the FPGA is capped by its 34.1 GB/s of memory bandwidth;
// with it, throughput scales until DSPs/Block RAM run out.
#include <iostream>

#include "bench_util.hpp"
#include "fpga/fmax_model.hpp"
#include "fpga/resource_model.hpp"
#include "harness/experiments.hpp"
#include "model/performance_model.hpp"

using namespace fpga_stencil;

int main() {
  bench::print_header(
      "ABLATION: TEMPORAL BLOCKING (partime sweep)",
      "2D radius 2, bsize 4096, parvec 4, input 15712^2. Roofline ratio > 1 "
      "is only\npossible because intermediate time steps never touch "
      "external memory.");

  const DeviceSpec dev = arria10_gx1150();
  TextTable t({"partime", "fits", "GB/s (meas)", "GFLOP/s", "Roofline",
               "Redundancy", "DSP", "BRAM blk"});
  for (int pt : {1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 42, 44, 48}) {
    AcceleratorConfig cfg;
    cfg.dims = 2;
    cfg.radius = 2;
    cfg.bsize_x = 4096;
    cfg.parvec = 4;
    cfg.partime = pt;
    const ResourceUsage u = estimate_resources(cfg, dev);
    if (!u.fits()) {
      t.add_row({std::to_string(pt), "no", "-", "-", "-", "-",
                 format_percent(u.dsp_fraction),
                 format_percent(u.bram_block_fraction)});
      continue;
    }
    const double fmax = estimate_fmax_mhz(cfg, dev);
    const PerformanceEstimate e =
        estimate_performance(cfg, dev, fmax, 15712, 15712);
    const BlockingPlan plan = make_blocking_plan(cfg, 15712, 15712);
    t.add_row({std::to_string(pt), "yes",
               format_fixed(e.measured_gbps, 1),
               format_fixed(e.measured_gflops, 1),
               format_fixed(e.roofline_ratio, 2),
               format_fixed(plan.redundancy(), 3),
               format_percent(u.dsp_fraction),
               format_percent(u.bram_block_fraction)});
  }
  t.render(std::cout);
  std::cout << "\npartime=1 is bandwidth-bound (<= 34.1 GB/s after "
               "efficiency); the paper's partime=42\nreaches ~360 GB/s "
               "effective -- >10x the external memory bandwidth.\n";
  return 0;
}
