// Shared rendering for the Fig. 3 / Fig. 4 benches: per-device series over
// stencil order, as a table plus an ASCII bar chart (the paper's grouped
// bar figures).
#pragma once

#include <algorithm>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/format.hpp"
#include "common/table.hpp"
#include "model/comparison_row.hpp"

namespace fpga_stencil::bench {

inline void render_series(
    const std::vector<ComparisonRow>& rows,
    const std::function<double(const ComparisonRow&)>& metric,
    const std::string& unit, std::ostream& os) {
  // Preserve the paper's device order (first appearance in `rows`).
  std::vector<std::string> devices;
  for (const ComparisonRow& r : rows) {
    if (std::find(devices.begin(), devices.end(), r.device) ==
        devices.end()) {
      devices.push_back(r.device);
    }
  }
  auto value = [&](const std::string& dev, int rad) {
    for (const ComparisonRow& r : rows) {
      if (r.device == dev && r.radius == rad) return metric(r);
    }
    return 0.0;
  };
  auto extrapolated = [&](const std::string& dev) {
    for (const ComparisonRow& r : rows) {
      if (r.device == dev) return r.extrapolated;
    }
    return false;
  };

  os << "\nseries (" << unit << "; * = extrapolated):\n";
  TextTable t({"Device", "r=1", "r=2", "r=3", "r=4"});
  double maxv = 0.0;
  for (const std::string& dev : devices) {
    std::vector<std::string> cells{dev + (extrapolated(dev) ? " *" : "")};
    for (int rad = 1; rad <= 4; ++rad) {
      const double v = value(dev, rad);
      maxv = std::max(maxv, v);
      cells.push_back(format_fixed(v, 3));
    }
    t.add_row(std::move(cells));
  }
  t.render(os);

  os << "\nASCII chart (each # = " << format_fixed(maxv / 60.0, 2) << " "
     << unit << "):\n";
  for (const std::string& dev : devices) {
    os << dev << (extrapolated(dev) ? " *" : "") << "\n";
    for (int rad = 1; rad <= 4; ++rad) {
      const double v = value(dev, rad);
      const int bars =
          maxv > 0 ? static_cast<int>(v / maxv * 60.0 + 0.5) : 0;
      os << "  r" << rad << " |" << std::string(std::size_t(bars), '#')
         << " " << format_fixed(v, 2) << "\n";
    }
  }
}

}  // namespace fpga_stencil::bench
