// Block-size sensitivity of the host stream_block path: paper-default
// geometry vs the cache-model-seeded candidate vs the empirically
// searched plan, per envelope point (star/box x 2D/3D x radius 1-4),
// single-thread.
//
// Every point is also an exactness check -- the tuned and model-seeded
// geometries must reproduce the paper-default result bit-for-bit (the
// whole premise of tuning is that block geometry is performance-only) --
// and the benchmark exits nonzero on any mismatch.
//
// The searched plan is measured twice: once by the tuner's own short
// probes (what plan selection sees) and once with a real run on the
// target grid (what the user gets). The exported gains come from the
// real runs; when the search returns the paper-default geometry the
// default measurement is reused so the gain is exactly 1.0, which is
// what "the default was already optimal" should report.
//
// With --json FILE the scorecard is exported in the BENCH_PR9.json
// convention ("bench": "autotune"); tools/check_bench_json.py validates
// the shape and gates (median gain >= 1.0; acceptance gain >= 1.15 in
// --full mode) as a ctest fixture. Default sizes are CI-small; the
// committed artifact comes from:
//   microbench_autotune --full --json BENCH_PR9.json
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "common/stopwatch.hpp"
#include "core/plan_candidates.hpp"
#include "core/stencil_accelerator.hpp"
#include "grid/grid_compare.hpp"
#include "kernels/kernel_registry.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/star_stencil.hpp"
#include "tune/host_autotuner.hpp"

using namespace fpga_stencil;

namespace {

struct Options {
  std::string json_path;
  bool full = false;            // acceptance sizes instead of CI-small
  std::int64_t n2d = 512;       // envelope 2D grid: n2d x (n2d / 2)
  std::int64_t n3d = 64;        // envelope 3D grid: n3d^3
  std::int64_t accept_n = 96;   // acceptance grid: accept_n^3
  std::int64_t probe_cells = 64 * 1024;
  int probe_repeats = 1;
};

struct PointResult {
  std::string name;
  StencilShape shape = StencilShape::kStar;
  int dims = 2, radius = 1, parvec = 1;
  std::int64_t nx = 0, ny = 0, nz = 1;
  int iters = 0;
  std::string default_config, model_config, tuned_config;
  double default_mcells = 0.0;  ///< paper-default geometry, real run
  double model_mcells = 0.0;    ///< lowest-model-cost candidate, real run
  double tuned_mcells = 0.0;    ///< searched winner, real run
  double probe_tuned_mcells = 0.0;     ///< what the search measured
  double probe_baseline_mcells = 0.0;  ///< ... for the default
  std::int64_t candidates_probed = 0;
  std::int64_t search_ns = 0;
  bool exact = true;
  [[nodiscard]] double gain() const {
    return default_mcells > 0.0 ? tuned_mcells / default_mcells : 0.0;
  }
  [[nodiscard]] double model_gain() const {
    return default_mcells > 0.0 ? model_mcells / default_mcells : 0.0;
  }
};

TapSet envelope_taps(StencilShape shape, int dims, int radius) {
  if (shape == StencilShape::kStar) {
    return StarStencil::make_benchmark(dims, radius, 99).to_taps();
  }
  return make_box_stencil(dims, radius, 99);
}

/// The "paper default" geometry: the knobs stencilctl and the PR 5/7
/// benches run with when the user does not choose (2D 4096-wide blocks,
/// 3D 256x128, four chained PEs).
AcceleratorConfig paper_default_config(int dims, int radius, int parvec) {
  AcceleratorConfig cfg;
  cfg.dims = dims;
  cfg.radius = radius;
  cfg.parvec = parvec;
  cfg.partime = 4;
  cfg.bsize_x = dims == 2 ? 4096 : 256;
  cfg.bsize_y = dims == 3 ? 128 : 1;
  return cfg;
}

/// The PR 7 acceptance workload (3D star r4, parvec 16, partime 4,
/// bsize 144x144) -- the geometry the tuned plan must beat by >= 1.15x
/// at 512^3 for the committed artifact.
AcceleratorConfig acceptance_config() {
  AcceleratorConfig cfg;
  cfg.dims = 3;
  cfg.radius = 4;
  cfg.parvec = 16;
  cfg.partime = 4;
  cfg.bsize_x = 144;
  cfg.bsize_y = 144;
  return cfg;
}

double mcells_per_s(std::int64_t cells, int iters, double seconds) {
  return seconds > 0.0 ? double(cells) * iters / seconds / 1e6 : 0.0;
}

template <typename GridT>
double time_run(const TapSet& taps, const AcceleratorConfig& cfg, GridT& grid,
                int iters) {
  StencilAccelerator accel(taps, cfg);
  const Stopwatch clock;
  (void)accel.run(grid, iters);
  return double(clock.nanoseconds()) / 1e9;
}

std::string geometry(const AcceleratorConfig& cfg) {
  std::ostringstream os;
  os << "b" << cfg.bsize_x;
  if (cfg.dims == 3) os << "x" << cfg.bsize_y;
  os << ",t" << cfg.partime;
  return os.str();
}

bool same_geometry(const AcceleratorConfig& a, const AcceleratorConfig& b) {
  return a.bsize_x == b.bsize_x && a.bsize_y == b.bsize_y &&
         a.partime == b.partime;
}

template <typename GridT>
PointResult measure_point(HostAutotuner& tuner, StencilShape shape, int radius,
                          const GridT& init, GridT& work) {
  constexpr int dims = std::is_same_v<GridT, Grid3D<float>> ? 3 : 2;
  const int parvec = 4;
  const TapSet taps = envelope_taps(shape, dims, radius);
  const AcceleratorConfig base = paper_default_config(dims, radius, parvec);

  PointResult r;
  r.shape = shape;
  r.dims = dims;
  r.radius = radius;
  r.parvec = parvec;
  r.nx = init.nx();
  r.ny = init.ny();
  if constexpr (dims == 3) r.nz = init.nz();
  r.iters = base.partime;
  r.name = std::string(stencil_shape_name(shape)) + "_" +
           std::to_string(dims) + "d_r" + std::to_string(radius);
  const std::int64_t cells = r.nx * r.ny * r.nz;

  // Search first (its probes never touch `work`), then measure for real.
  const AutotuneOutcome found = tuner.search(taps, base, r.nx, r.ny, r.nz);
  r.probe_tuned_mcells = found.tuned_mcells;
  r.probe_baseline_mcells = found.baseline_mcells;
  r.candidates_probed = found.candidates_probed;
  r.search_ns = found.search_ns;

  // The cache-model-seeded plan: the lowest-cost non-default candidate
  // (what a model-only tuner would pick without measuring anything).
  const std::vector<AcceleratorConfig> candidates =
      enumerate_plan_candidates(base, r.nx, r.ny, r.nz);
  const AcceleratorConfig model_cfg =
      candidates.size() > 1 ? candidates[1] : base;

  r.default_config = geometry(base);
  r.model_config = geometry(model_cfg);
  r.tuned_config = geometry(found.config);

  work = init;
  r.default_mcells =
      mcells_per_s(cells, r.iters, time_run(taps, base, work, r.iters));
  const GridT reference = std::move(work);
  work = GridT();

  const auto measure_vs_reference = [&](const AcceleratorConfig& cfg,
                                        double& out_mcells) {
    if (same_geometry(cfg, base)) {
      out_mcells = r.default_mcells;  // same plan: same bits, same speed
      return;
    }
    GridT alt = init;
    out_mcells =
        mcells_per_s(cells, r.iters, time_run(taps, cfg, alt, r.iters));
    r.exact = r.exact && compare_exact(alt, reference).identical();
  };
  measure_vs_reference(model_cfg, r.model_mcells);
  measure_vs_reference(found.config, r.tuned_mcells);
  return r;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--json") {
      const char* v = next();
      if (!v) return false;
      opt.json_path = v;
    } else if (a == "--full") {
      opt.full = true;
      opt.n2d = 4096;
      opt.n3d = 160;
      opt.accept_n = 512;
      opt.probe_cells = 512 * 1024;
      opt.probe_repeats = 2;
    } else if (a == "--n2d") {
      const char* v = next();
      if (!v) return false;
      opt.n2d = std::atoll(v);
    } else if (a == "--n3d") {
      const char* v = next();
      if (!v) return false;
      opt.n3d = std::atoll(v);
    } else if (a == "--accept-n") {
      const char* v = next();
      if (!v) return false;
      opt.accept_n = std::atoll(v);
    } else if (a == "--probe-cells") {
      const char* v = next();
      if (!v) return false;
      opt.probe_cells = std::atoll(v);
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    std::cerr << "usage: microbench_autotune [--json FILE] [--full]\n"
              << "         [--n2d N] [--n3d N] [--accept-n N] "
                 "[--probe-cells C]\n";
    return 2;
  }

  HostAutotunerOptions topts;
  topts.cache_path = "";  // in-memory: every run searches from scratch
  topts.probe_cells = opt.probe_cells;
  topts.probe_repeats = opt.probe_repeats;
  HostAutotuner tuner(topts);

  bool ok = true;

  Grid2D<float> init2(opt.n2d, opt.n2d / 2);
  init2.fill_random(31, -1.0f, 1.0f);
  Grid2D<float> work2;
  Grid3D<float> init3(opt.n3d, opt.n3d, opt.n3d);
  init3.fill_random(32, -1.0f, 1.0f);
  Grid3D<float> work3;

  std::vector<PointResult> envelope;
  std::cout << "point          default(" << "geom)      model(geom)       "
               "tuned(geom)       gain   exact\n";
  for (StencilShape shape : {StencilShape::kStar, StencilShape::kBox}) {
    for (int dims : {2, 3}) {
      for (int rad = 1; rad <= 4; ++rad) {
        const PointResult r =
            dims == 2 ? measure_point(tuner, shape, rad, init2, work2)
                      : measure_point(tuner, shape, rad, init3, work3);
        ok = ok && r.exact;
        std::cout << r.name << std::string(
                         15 - std::min<std::size_t>(14, r.name.size()), ' ')
                  << int(r.default_mcells) << " (" << r.default_config
                  << ")  " << int(r.model_mcells) << " (" << r.model_config
                  << ")  " << int(r.tuned_mcells) << " (" << r.tuned_config
                  << ")  x" << r.gain() << "  "
                  << (r.exact ? "yes" : "NO") << "\n";
        envelope.push_back(r);
      }
    }
  }

  // ---- acceptance point: tuned vs the PR 7 acceptance geometry ----
  const AcceleratorConfig acfg = acceptance_config();
  const TapSet ataps = envelope_taps(StencilShape::kStar, 3, 4);
  Grid3D<float> ainit(opt.accept_n, opt.accept_n, opt.accept_n);
  ainit.fill_random(33, -1.0f, 1.0f);
  const int aiters = acfg.partime;
  const std::int64_t acells = ainit.nx() * ainit.ny() * ainit.nz();

  const AutotuneOutcome afound =
      tuner.search(ataps, acfg, ainit.nx(), ainit.ny(), ainit.nz());
  Grid3D<float> awork = ainit;
  const double a_default = mcells_per_s(
      acells, aiters, time_run(ataps, acfg, awork, aiters));
  const Grid3D<float> areference = std::move(awork);
  double a_tuned = a_default;
  bool a_exact = true;
  if (!same_geometry(afound.config, acfg)) {
    Grid3D<float> alt = ainit;
    a_tuned = mcells_per_s(acells, aiters,
                           time_run(ataps, afound.config, alt, aiters));
    a_exact = compare_exact(alt, areference).identical();
  }
  ok = ok && a_exact;
  const double a_gain = a_default > 0.0 ? a_tuned / a_default : 0.0;
  std::cout << "\nacceptance " << acfg.describe() << " grid " << opt.accept_n
            << "^3: default " << a_default << " Mcell/s, tuned " << a_tuned
            << " Mcell/s (" << geometry(afound.config) << "), gain x"
            << a_gain << ", exact " << (a_exact ? "yes" : "NO") << "\n";

  std::vector<double> gains;
  for (const PointResult& r : envelope) gains.push_back(r.gain());
  std::sort(gains.begin(), gains.end());
  const double min_gain = gains.empty() ? 0.0 : gains.front();
  const double max_gain = gains.empty() ? 0.0 : gains.back();
  const double med_gain = gains.empty() ? 0.0 : gains[gains.size() / 2];
  std::cout << "envelope gains: min x" << min_gain << ", median x" << med_gain
            << ", max x" << max_gain << "\n";

  if (!opt.json_path.empty()) {
    std::ostringstream body;
    JsonWriter w(body);
    w.begin_object();
    w.key("schema_version").value(2);
    w.key("bench").value("autotune");
    bench::write_host_block(w);
    w.key("paper").value(
        "High-Performance High-Order Stencil Computation on FPGAs Using "
        "OpenCL");
    w.key("mode").value(opt.full ? "full" : "reduced");
    w.key("probe_cells").value(opt.probe_cells);
    w.key("envelope").begin_array();
    for (const PointResult& r : envelope) {
      w.begin_object();
      w.key("name").value(r.name);
      w.key("shape").value(stencil_shape_name(r.shape));
      w.key("dims").value(r.dims);
      w.key("radius").value(r.radius);
      w.key("parvec").value(r.parvec);
      w.key("nx").value(r.nx);
      w.key("ny").value(r.ny);
      w.key("nz").value(r.nz);
      w.key("iters").value(r.iters);
      w.key("default_config").value(r.default_config);
      w.key("model_config").value(r.model_config);
      w.key("tuned_config").value(r.tuned_config);
      w.key("default_mcells_per_s").value(r.default_mcells);
      w.key("model_mcells_per_s").value(r.model_mcells);
      w.key("tuned_mcells_per_s").value(r.tuned_mcells);
      w.key("probe_tuned_mcells_per_s").value(r.probe_tuned_mcells);
      w.key("probe_baseline_mcells_per_s").value(r.probe_baseline_mcells);
      w.key("gain").value(r.gain());
      w.key("model_gain").value(r.model_gain());
      w.key("candidates_probed").value(r.candidates_probed);
      w.key("search_ns").value(r.search_ns);
      w.key("exact").value(r.exact);
      w.end_object();
    }
    w.end_array();
    w.key("acceptance").begin_object();
    w.key("config").value(acfg.describe());
    w.key("tuned_config").value(geometry(afound.config));
    w.key("nx").value(ainit.nx());
    w.key("ny").value(ainit.ny());
    w.key("nz").value(ainit.nz());
    w.key("iters").value(aiters);
    w.key("default_mcells_per_s").value(a_default);
    w.key("tuned_mcells_per_s").value(a_tuned);
    w.key("gain").value(a_gain);
    w.key("candidates_probed").value(afound.candidates_probed);
    w.key("search_ns").value(afound.search_ns);
    w.key("exact").value(a_exact);
    w.end_object();
    w.key("summary").begin_object();
    w.key("points").value(std::int64_t(envelope.size()));
    w.key("exact_points")
        .value(std::int64_t(std::count_if(
            envelope.begin(), envelope.end(),
            [](const PointResult& r) { return r.exact; })));
    w.key("min_gain").value(min_gain);
    w.key("median_gain").value(med_gain);
    w.key("max_gain").value(max_gain);
    w.end_object();
    w.end_object();

    std::ofstream out(opt.json_path);
    if (!out) {
      std::cerr << "cannot write " << opt.json_path << "\n";
      return 1;
    }
    out << body.str() << "\n";
    std::cout << "wrote " << opt.json_path << "\n";
  }

  if (!ok) {
    std::cerr << "SELF-CHECK FAILED: a tuned or model-seeded geometry "
                 "diverged from the paper-default result\n";
    return 1;
  }
  return 0;
}
