// Shared helpers for the table-regeneration benches: paper-vs-ours
// annotation and common formatting.
#pragma once

#include <iostream>
#include <string>

#include "common/format.hpp"
#include "common/table.hpp"
#include "harness/paper_reference.hpp"

namespace fpga_stencil::bench {

/// "ours (paper: ref, dev +x%)" cell content.
inline std::string vs_paper(double ours, double paper_value, int prec = 3) {
  const double dev = (ours - paper_value) / paper_value;
  std::string sign = dev >= 0 ? "+" : "-";
  return format_fixed(ours, prec) + " (paper " +
         format_fixed(paper_value, prec) + ", " + sign +
         format_fixed(std::abs(dev) * 100.0, 1) + "%)";
}

inline void print_header(const std::string& title, const std::string& note) {
  std::cout << "\n================================================================\n"
            << title << "\n";
  if (!note.empty()) std::cout << note << "\n";
  std::cout << "================================================================\n";
}

}  // namespace fpga_stencil::bench
