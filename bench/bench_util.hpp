// Shared helpers for the table-regeneration benches: paper-vs-ours
// annotation, common formatting, and the host-fingerprint block every
// BENCH_*.json exporter records (schema_version >= 2).
#pragma once

#include <iostream>
#include <string>

#include "common/format.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "core/host_profile.hpp"
#include "harness/paper_reference.hpp"

namespace fpga_stencil::bench {

/// Numbers without provenance are unreproducible: every exported document
/// carries a "host" object (cores, cache sizes, -march mode, compiler,
/// and the same fingerprint string the TuningCache keys on) so two
/// BENCH files are comparable only when their fingerprints agree.
/// check_bench_json.py rejects documents that omit it.
inline void write_host_block(JsonWriter& w) { write_host_profile(w); }

/// "ours (paper: ref, dev +x%)" cell content.
inline std::string vs_paper(double ours, double paper_value, int prec = 3) {
  const double dev = (ours - paper_value) / paper_value;
  std::string sign = dev >= 0 ? "+" : "-";
  return format_fixed(ours, prec) + " (paper " +
         format_fixed(paper_value, prec) + ", " + sign +
         format_fixed(std::abs(dev) * 100.0, 1) + "%)";
}

inline void print_header(const std::string& title, const std::string& note) {
  std::cout << "\n================================================================\n"
            << title << "\n";
  if (!note.empty()) std::cout << note << "\n";
  std::cout << "================================================================\n";
}

}  // namespace fpga_stencil::bench
