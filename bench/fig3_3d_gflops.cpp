// Regenerates the paper's Fig. 3: 3D stencil compute performance (GFLOP/s)
// per device and stencil order.
//
// Trend to reproduce (Section VI.B): on the FPGA GFLOP/s stays roughly
// flat with order (compute-bound-like); on Xeon/Xeon Phi it rises
// proportionally to the order (memory-bound, flat GCell/s); on GPUs it
// rises sub-linearly.
#include <iostream>

#include "bench_util.hpp"
#include "fig_util.hpp"
#include "harness/experiments.hpp"

using namespace fpga_stencil;

int main() {
  bench::print_header("FIG. 3: 3D STENCIL PERFORMANCE (GFLOP/s)",
                      "Same data as Table V, in the paper's series form.");
  const auto rows = comparison_table(3);
  bench::render_series(
      rows, [](const ComparisonRow& r) { return r.gflops; }, "GFLOP/s",
      std::cout);

  // Trend checks.
  auto val = [&](const char* dev, int rad) {
    for (const auto& r : rows) {
      if (r.device.find(dev) != std::string::npos && r.radius == rad) {
        return r.gflops;
      }
    }
    return 0.0;
  };
  const double fpga_ratio = val("Arria", 4) / val("Arria", 1);
  const double phi_ratio = val("Phi", 4) / val("Phi", 1);
  const double gpu_ratio = val("GTX 580", 4) / val("GTX 580", 1);
  std::cout << "\ntrends (r4/r1 GFLOP/s ratio): FPGA "
            << format_fixed(fpga_ratio, 2) << " (paper ~0.73, flat-ish), "
            << "Xeon Phi " << format_fixed(phi_ratio, 2)
            << " (paper ~3.7, linear in FLOP/cell), GPU "
            << format_fixed(gpu_ratio, 2) << " (paper ~2.0, sub-linear)\n";
  const bool ok = fpga_ratio > 0.6 && fpga_ratio < 1.1 && phi_ratio > 3.0 &&
                  gpu_ratio > 1.5 && gpu_ratio < 3.0;
  std::cout << (ok ? "shape reproduced.\n" : "SHAPE MISMATCH!\n");
  return ok ? 0 : 1;
}
