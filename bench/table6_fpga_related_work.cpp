// Regenerates the paper's Section VI.C comparison with other FPGA stencil
// work (Shafiq et al. [18], Fu and Clapp [19]) in GCell/s.
#include <iostream>

#include "bench_util.hpp"
#include "harness/experiments.hpp"

using namespace fpga_stencil;

int main() {
  bench::print_header(
      "SECTION VI.C: COMPARISON WITH OTHER FPGA WORK",
      "GCell/s is used because those works share coefficients (lower FLOP "
      "per cell).");

  const DeviceSpec dev = arria10_gx1150();
  TextTable t({"Work", "Device", "Stencil", "Their GCell/s", "Ours GCell/s",
               "Speedup", "Paper claims"});
  bool ok = true;
  for (const paper::RelatedFpgaWork& w : paper::related_fpga_work()) {
    const FpgaResultRow r = fpga_result_row(3, w.radius, dev);
    const double speedup = r.perf.measured_gcells / w.reported_gcells;
    const double paper_speedup = w.paper_gcells / w.reported_gcells;
    t.add_row({w.citation, w.device,
               "3D radius " + std::to_string(w.radius),
               format_fixed(w.reported_gcells, 3),
               format_fixed(r.perf.measured_gcells, 3),
               format_fixed(speedup, 2) + "x",
               format_fixed(paper_speedup, 2) + "x"});
    ok &= speedup > 0.9 * paper_speedup;
  }
  t.render(std::cout);

  std::cout << "\nNote [18] assumed 22.24 GB/s streaming bandwidth on a "
               "system providing 6.4 GB/s;\nwithout temporal blocking their "
               "practical roofline is ~0.8 GCell/s (paper's remark).\n";
  std::cout << (ok ? "speedups reproduced.\n" : "SPEEDUP MISMATCH!\n");
  return ok ? 0 : 1;
}
