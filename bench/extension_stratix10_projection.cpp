// Extension bench: the paper's conclusion, quantified.
//
// "This issue will become even more pronounced for the next-generation
// Stratix 10 GX 2800 FPGA since the FLOP to byte ratio goes beyond 100
// (with 4 banks of DDR4-2400 memory), but the Stratix 10 MX series with HBM
// memory will likely not suffer from this problem."
//
// We project the 3D Table III experiment onto both devices with the same
// tuner and models (device-scaled fmax): the GX has ~3.8x the DSPs but only
// 2.3x the bandwidth of the Arria 10, so for high-order 3D stencils the
// memory wall caps it; the MX's HBM removes the stall entirely.
#include <iostream>

#include "bench_util.hpp"
#include "tune/tuner.hpp"

using namespace fpga_stencil;

int main() {
  bench::print_header(
      "EXTENSION: STRATIX 10 PROJECTION (3D stencils, conclusion's what-if)",
      "Same tuner, same models, device-scaled fmax. 'pipe eff' is the "
      "memory-controller\npipeline efficiency -- the GX stalls where the MX "
      "does not.");

  for (const DeviceSpec& dev :
       {arria10_gx1150(), stratix10_gx2800(), stratix10_mx2100()}) {
    std::cout << "\n" << dev.name << " (" << dev.dsps << " DSPs, "
              << format_fixed(dev.peak_bw_gbps, 1) << " GB/s, FLOP/Byte "
              << format_fixed(dev.flop_per_byte(), 1) << "):\n";
    TextTable t({"rad", "best config", "fmax", "pipe eff", "GB/s (meas)",
                 "GFLOP/s", "GCell/s", "Roofline"});
    for (int rad = 1; rad <= 4; ++rad) {
      TunerOptions o;
      o.dims = 3;
      o.radius = rad;
      o.nx = 696;
      o.ny = 728;
      o.nz = 696;
      o.max_parvec = 64;
      try {
        const TunedConfig best = best_config(dev, o);
        t.add_row({std::to_string(rad), best.config.describe(),
                   format_fixed(best.fmax_mhz, 0),
                   format_percent(best.perf.pipeline_efficiency),
                   format_fixed(best.perf.measured_gbps, 1),
                   format_fixed(best.perf.measured_gflops, 1),
                   format_fixed(best.perf.measured_gcells, 2),
                   format_fixed(best.perf.roofline_ratio, 2)});
      } catch (const ResourceError&) {
        t.add_row({std::to_string(rad), "no feasible configuration"});
      }
    }
    t.render(std::cout);
  }

  std::cout << "\nReading: the GX 2800 improves on the Arria 10 but its "
               "GFLOP/s gains trail its DSP\ngains (memory-starved, as the "
               "conclusion predicts); the MX 2100's HBM lifts the\nmemory "
               "wall and 3D performance scales with compute again.\n";
  return 0;
}
