// google-benchmark microbenchmarks of the YASK-like CPU baseline on this
// host: per-radius throughput (expect roughly flat GCell/s once
// memory-bound, the paper's CPU shape) and block-size sensitivity.
#include <benchmark/benchmark.h>

#include "cpu/yask_like.hpp"

namespace fpga_stencil {
namespace {

void BM_YaskLike2D(benchmark::State& state) {
  const int rad = static_cast<int>(state.range(0));
  const StarStencil s = StarStencil::make_benchmark(2, rad);
  YaskLikeStencil2D exec(s);
  Grid2D<float> g(1024, 512);
  g.fill_random(1);
  std::int64_t updates = 0;
  for (auto _ : state) {
    exec.run(g, 1, CpuBlockSize{1024, 32, 1});
    updates += 1024 * 512;
  }
  state.counters["cell_updates/s"] =
      benchmark::Counter(double(updates), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_YaskLike2D)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_YaskLike3D(benchmark::State& state) {
  const int rad = static_cast<int>(state.range(0));
  const StarStencil s = StarStencil::make_benchmark(3, rad);
  YaskLikeStencil3D exec(s);
  Grid3D<float> g(128, 128, 64);
  g.fill_random(1);
  std::int64_t updates = 0;
  for (auto _ : state) {
    exec.run(g, 1, CpuBlockSize{128, 16, 8});
    updates += 128 * 128 * 64;
  }
  state.counters["cell_updates/s"] =
      benchmark::Counter(double(updates), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_YaskLike3D)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_YaskLike2D_BlockSize(benchmark::State& state) {
  const std::int64_t by = state.range(0);
  const StarStencil s = StarStencil::make_benchmark(2, 2);
  YaskLikeStencil2D exec(s);
  Grid2D<float> g(1024, 512);
  g.fill_random(1);
  for (auto _ : state) {
    exec.run(g, 1, CpuBlockSize{1024, by, 1});
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_YaskLike2D_BlockSize)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace fpga_stencil
