// google-benchmark microbenchmarks of the block-parallel backend: host
// threads work-stealing overlapped blocks of one pass chain. The scaling
// question is blocks/s versus worker count at a fixed decomposition; the
// acceptance-grade 512^3 campaign (with exactness oracle and JSON export)
// lives in `stencilctl blockpar`, this file is for quick comparative runs.
#include <benchmark/benchmark.h>

#include <thread>

#include "core/block_parallel_accelerator.hpp"
#include "core/stencil_accelerator.hpp"

namespace fpga_stencil {
namespace {

AcceleratorConfig bench_config(int dims, int radius, int partime) {
  AcceleratorConfig cfg;
  cfg.dims = dims;
  cfg.radius = radius;
  cfg.parvec = 4;
  cfg.partime = partime;
  cfg.bsize_x = 2 * partime * radius + 32;  // csize 32 per dimension
  cfg.bsize_y = dims == 3 ? cfg.bsize_x : 1;
  return cfg;
}

void BM_BlockParallel2D(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  const AcceleratorConfig cfg = bench_config(2, 2, 4);
  const TapSet taps = StarStencil::make_benchmark(2, 2).to_taps();
  Grid2D<float> g(n, n);
  g.fill_random(1);
  RunOptions opts;
  opts.workers = workers;
  std::vector<float> scratch;
  opts.scratch = &scratch;
  std::int64_t updates = 0;
  for (auto _ : state) {
    run_block_parallel(taps, cfg, g, cfg.partime, opts);
    updates += std::int64_t(n) * n * cfg.partime;
  }
  state.counters["cell_updates/s"] =
      benchmark::Counter(double(updates), benchmark::Counter::kIsRate);
  state.counters["workers"] = double(workers);
}
BENCHMARK(BM_BlockParallel2D)
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->Args({512, 8});

void BM_BlockParallel3D(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  const AcceleratorConfig cfg = bench_config(3, 2, 2);
  const TapSet taps = StarStencil::make_benchmark(3, 2).to_taps();
  Grid3D<float> g(n, n, 16);
  g.fill_random(1);
  RunOptions opts;
  opts.workers = workers;
  std::vector<float> scratch;
  opts.scratch = &scratch;
  std::int64_t updates = 0;
  for (auto _ : state) {
    run_block_parallel(taps, cfg, g, cfg.partime, opts);
    updates += std::int64_t(n) * n * 16 * cfg.partime;
  }
  state.counters["cell_updates/s"] =
      benchmark::Counter(double(updates), benchmark::Counter::kIsRate);
  state.counters["workers"] = double(workers);
}
BENCHMARK(BM_BlockParallel3D)
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 4})
    ->Args({128, 8});

/// Same workload through the sequential block sweep, as the speedup
/// denominator for the runs above.
void BM_SyncBaseline2D(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const AcceleratorConfig cfg = bench_config(2, 2, 4);
  const StarStencil s = StarStencil::make_benchmark(2, 2);
  StencilAccelerator accel(s, cfg);
  Grid2D<float> g(n, n);
  g.fill_random(1);
  std::int64_t updates = 0;
  for (auto _ : state) {
    accel.run(g, cfg.partime);
    updates += std::int64_t(n) * n * cfg.partime;
  }
  state.counters["cell_updates/s"] =
      benchmark::Counter(double(updates), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SyncBaseline2D)->Arg(512);

void BM_SyncBaseline3D(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const AcceleratorConfig cfg = bench_config(3, 2, 2);
  const StarStencil s = StarStencil::make_benchmark(3, 2);
  StencilAccelerator accel(s, cfg);
  Grid3D<float> g(n, n, 16);
  g.fill_random(1);
  std::int64_t updates = 0;
  for (auto _ : state) {
    accel.run(g, cfg.partime);
    updates += std::int64_t(n) * n * 16 * cfg.partime;
  }
  state.counters["cell_updates/s"] =
      benchmark::Counter(double(updates), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SyncBaseline3D)->Arg(128);

}  // namespace
}  // namespace fpga_stencil
