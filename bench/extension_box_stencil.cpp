// Extension bench: box (cubic) stencils on the paper's architecture.
//
// The related work the paper compares against ([19], Fu & Clapp) runs a
// first-order 3D cubic stencil on a comparable pipeline. This bench shows
// why the paper focuses on star stencils: box tap counts grow as
// (2r+1)^dims, so the DSP budget (eq. 4 generalized: partotal = floor(DSPs
// / taps)) collapses the feasible parvec*partime almost immediately, and
// the larger shift-register window (corner reach) adds a row of lag per
// stage.
#include <iostream>

#include "bench_util.hpp"
#include "core/stencil_accelerator.hpp"
#include "fpga/device_spec.hpp"
#include "grid/grid_compare.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/characteristics.hpp"
#include "stencil/reference.hpp"

using namespace fpga_stencil;

int main() {
  bench::print_header(
      "EXTENSION: BOX (CUBIC) STENCILS",
      "Generalized eq. (4): partotal = floor(1518 DSPs / taps). Star counts "
      "shown for\ncontrast. Functional column: bit-exact check of the "
      "box-stencil pipeline at small scale.");

  const DeviceSpec dev = arria10_gx1150();
  TextTable t({"shape", "dims", "rad", "taps=DSP/cell", "FLOP/cell",
               "partotal", "max GFLOP/s @300MHz", "functional"});

  for (int dims : {2, 3}) {
    t.add_rule();
    for (int rad = 1; rad <= 3; ++rad) {
      // star row
      const StencilCharacteristics sc = stencil_characteristics(dims, rad);
      const std::int64_t star_partotal = dev.dsps / sc.dsp_per_cell;
      t.add_row({"star", std::to_string(dims), std::to_string(rad),
                 std::to_string(sc.dsp_per_cell),
                 std::to_string(sc.flop_per_cell),
                 std::to_string(star_partotal),
                 format_fixed(double(star_partotal) * sc.flop_per_cell * 0.3,
                              0),
                 "-"});
      // box row, with a scaled-down functional certification
      const TapSet box = make_box_stencil(dims, rad);
      const std::int64_t box_partotal = dev.dsps / box.dsps_per_cell();

      AcceleratorConfig cfg;
      cfg.dims = dims;
      cfg.radius = rad;
      cfg.bsize_x = 48;
      cfg.bsize_y = dims == 3 ? 24 : 1;
      cfg.parvec = 4;
      cfg.partime = 2;
      bool exact = false;
      if (cfg.csize_x() > 0 && (dims == 2 || cfg.csize_y() > 0)) {
        StencilAccelerator accel(box, cfg);
        if (dims == 2) {
          Grid2D<float> g(70, 20);
          g.fill_random(1);
          Grid2D<float> want = g;
          accel.run(g, 3);
          reference_run(box, want, 3);
          exact = compare_exact(g, want).identical();
        } else {
          Grid3D<float> g(40, 30, 8);
          g.fill_random(1);
          Grid3D<float> want = g;
          accel.run(g, 3);
          reference_run(box, want, 3);
          exact = compare_exact(g, want).identical();
        }
      }
      t.add_row({"box", std::to_string(dims), std::to_string(rad),
                 std::to_string(box.dsps_per_cell()),
                 std::to_string(box.flops_per_cell()),
                 std::to_string(box_partotal),
                 format_fixed(double(box_partotal) * box.flops_per_cell() * 0.3,
                              0),
                 exact ? "bit-exact" : "FAIL"});
      if (!exact) return 1;
    }
  }
  t.render(std::cout);

  std::cout
      << "\nA radius-2 3D box stencil (125 taps) leaves only partotal = "
      << dev.dsps / make_box_stencil(3, 2).dsps_per_cell()
      << " parallel updates -- temporal blocking barely fits, which is why "
         "high-order\nFPGA stencil work (this paper included) targets star "
         "shapes.\n";
  return 0;
}
