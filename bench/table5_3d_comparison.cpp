// Regenerates the paper's Table V: 3D stencil comparison across Arria 10,
// Xeon, Xeon Phi, GTX 580 (Tang et al. dataset) and the bandwidth-ratio
// extrapolated GTX 980 Ti / Tesla P100 (hachured in the paper), plus a
// host-measured YASK-like run demonstrating the CPU shape.
#include <iostream>

#include "bench_util.hpp"
#include "harness/csv.hpp"
#include "cpu/yask_like.hpp"
#include "harness/experiments.hpp"

using namespace fpga_stencil;

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--csv") {
    write_comparison_csv(comparison_table(3), std::cout);
    return 0;
  }
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  bench::print_header(
      "TABLE V: 3D STENCIL PERFORMANCE",
      "Rows marked [extrapolated] are the paper's hachured rows: GTX 580 "
      "results scaled\nby peak-bandwidth ratio, power = 75% of TDP.");

  TextTable t({"Device", "rad", "GFLOP/s", "GCell/s", "GFLOP/s/W",
               "Roofline", ""});
  std::string last;
  for (const ComparisonRow& r : comparison_table(3)) {
    if (r.device != last) t.add_rule();
    last = r.device;
    double pg = 0, pc = 0, pe = 0, pr = 0;
    for (const auto& p : paper::table5()) {
      if (r.device == p.device && r.radius == p.radius) {
        pg = p.gflops;
        pc = p.gcells;
        pe = p.power_efficiency;
        pr = p.roofline_ratio;
      }
    }
    t.add_row({r.device, std::to_string(r.radius),
               bench::vs_paper(r.gflops, pg, 1),
               bench::vs_paper(r.gcells, pc, 2),
               bench::vs_paper(r.power_efficiency, pe, 2),
               bench::vs_paper(r.roofline_ratio, pr, 2),
               r.extrapolated ? "[extrapolated]" : ""});
  }
  t.render(std::cout);

  std::cout
      << "\nFindings reproduced: FPGA fastest at radius 1 (excluding "
         "extrapolated rows),\nXeon Phi fastest for radius 2-4; FPGA best "
         "GFLOP/s/W except radius 4; Tesla P100\nwins everything once "
         "extrapolated rows are included.\n";

  std::cout << "\nYASK-like baseline on THIS host ("
            << (quick ? "quick mode" : "full")
            << "): flat GCell/s vs radius expected:\n";
  TextTable h({"rad", "block", "GCell/s", "GFLOP/s"});
  const std::int64_t n = quick ? 64 : 160;
  const int iters = quick ? 2 : 4;
  for (int rad = 1; rad <= 4; ++rad) {
    const StarStencil s = StarStencil::make_benchmark(3, rad);
    YaskLikeStencil3D exec(s);
    const CpuBlockSize block = exec.auto_tune(n, n, n);
    Grid3D<float> g(n, n, n);
    g.fill_random(1);
    const CpuRunResult r = exec.run(g, iters, block);
    h.add_row({std::to_string(rad),
               std::to_string(block.bx) + "x" + std::to_string(block.by) +
                   "x" + std::to_string(block.bz),
               format_fixed(r.gcells, 3), format_fixed(r.gflops, 2)});
  }
  h.render(std::cout);
  return 0;
}
