// Ablation: the memory-controller splitting mechanism, demonstrated from
// first principles with the cycle-level simulator. Sweeps access width and
// block-origin alignment and reports simulated pipeline efficiency next to
// the calibrated analytic model -- the mechanism behind Table III's 2D ~85%
// vs 3D ~55% model accuracy.
#include <iostream>

#include "bench_util.hpp"
#include "model/cycle_simulator.hpp"
#include "model/performance_model.hpp"

using namespace fpga_stencil;

int main() {
  bench::print_header(
      "ABLATION: MEMORY CONTROLLER ACCESS SPLITTING",
      "Cycle-level simulation of one 3D block pass (64x32 block, 64 "
      "planes). Unaligned\nwide accesses split into two DDR bursts; when "
      "post-split demand exceeds the\ncontroller's rate the pipeline "
      "starves.");

  const DeviceSpec dev = arria10_gx1150();
  TextTable t({"parvec", "access B", "origin", "fmax", "splits",
               "sim eff", "analytic bw ratio"});
  for (int pv : {4, 8, 16}) {
    for (std::int64_t origin : {0, 4}) {
      for (double fmax : {280.0, 200.0}) {
        CycleSimConfig sim;
        sim.accel.dims = 3;
        sim.accel.radius = 2;
        sim.accel.bsize_x = 64;
        sim.accel.bsize_y = 32;
        sim.accel.parvec = pv;
        sim.accel.partime = 2;
        sim.nx = 4096;
        sim.stream_extent = 64;
        sim.fmax_mhz = fmax;
        sim.block_x0 = origin;
        const CycleStats st = simulate_block_pass(sim, dev);
        const double analytic =
            std::min(1.0, effective_bandwidth_gbps(sim.accel, dev, fmax) /
                              memory_demand_gbps(sim.accel, fmax));
        t.add_row({std::to_string(pv), std::to_string(pv * 4),
                   origin == 0 ? "aligned" : "offset 16B",
                   format_fixed(fmax, 0), std::to_string(st.split_accesses),
                   format_percent(st.efficiency()),
                   format_percent(analytic)});
      }
    }
  }
  t.render(std::cout);
  std::cout << "\n16-byte accesses never split; 64-byte accesses from "
               "overlapped (unaligned) block\norigins split almost always, "
               "reproducing the paper's 40-45% 3D loss.\n";
  return 0;
}
