// Extension bench: the Quartus v17 regression the paper dodged.
//
// Section IV.B: v17.0/17.1 "reliably resulted in lower performance (20-30%
// lower) and higher area utilization (5-10% more Block RAMs) for the same
// kernel". This bench shows Table III's configurations under that
// regression -- several stop fitting outright, and the rest lose a quarter
// of their throughput.
#include <iostream>

#include "bench_util.hpp"
#include "fpga/toolchain.hpp"
#include "harness/experiments.hpp"
#include "model/performance_model.hpp"

using namespace fpga_stencil;

int main() {
  bench::print_header(
      "EXTENSION: QUARTUS v16.1 vs v17 (Table III configurations)",
      "The regression the paper reports and avoided; 'fits' applies the "
      "+7.5% Block-RAM\ninflation to the calibrated model.");

  const DeviceSpec dev = arria10_gx1150();
  TextTable t({"", "rad", "v16.1 GB/s", "v16.1 BRAM blk", "v17 GB/s",
               "v17 BRAM blk", "v17 fits", "loss"});
  for (int dims : {2, 3}) {
    t.add_rule();
    for (int rad = 1; rad <= 4; ++rad) {
      const AcceleratorConfig cfg = paper_config(dims, rad);
      std::int64_t nx, ny, nz;
      paper_input_size(dims, rad, nx, ny, nz);

      const ResourceUsage u16 = estimate_resources_with_toolchain(
          cfg, dev, ToolchainVersion::kQuartus16_1);
      const double f16 =
          estimate_fmax_with_toolchain(cfg, dev,
                                       ToolchainVersion::kQuartus16_1);
      const PerformanceEstimate e16 =
          estimate_performance(cfg, dev, f16, nx, ny, nz);

      const ResourceUsage u17 = estimate_resources_with_toolchain(
          cfg, dev, ToolchainVersion::kQuartus17);
      const double f17 = estimate_fmax_with_toolchain(
          cfg, dev, ToolchainVersion::kQuartus17);
      const PerformanceEstimate e17 =
          estimate_performance(cfg, dev, f17, nx, ny, nz);

      t.add_row({rad == 1 ? (dims == 2 ? "2D" : "3D") : "",
                 std::to_string(rad), format_fixed(e16.measured_gbps, 1),
                 format_percent(u16.bram_block_fraction),
                 format_fixed(e17.measured_gbps, 1),
                 format_percent(u17.bram_block_fraction),
                 u17.fits() ? "yes" : "NO",
                 format_percent(1.0 - e17.measured_gbps /
                                          e16.measured_gbps)});
    }
  }
  t.render(std::cout);
  std::cout << "\nEvery configuration already at ~100% Block RAM under "
               "v16.1 fails to fit under v17,\nand the survivors lose "
               "20-30% -- the paper's stated reason for pinning v16.1.2.\n";
  return 0;
}
