// Regenerates the paper's Table II: hardware characteristics of every
// device in the evaluation, plus the conclusion's Stratix 10 devices.
#include <iostream>

#include "bench_util.hpp"
#include "fpga/device_spec.hpp"
#include "model/roofline.hpp"
#include "stencil/characteristics.hpp"

using namespace fpga_stencil;

int main() {
  bench::print_header(
      "TABLE II: HARDWARE CHARACTERISTICS",
      "Peak single-precision compute, theoretical memory bandwidth, and the "
      "FLOP/Byte\nbalance point. The FPGA is the most bandwidth-starved "
      "device -- the motivation for\ntemporal blocking.");

  TextTable t({"Device", "Peak GFLOP/s", "Peak BW (GB/s)", "TDP (W)",
               "Node (nm)", "FLOP/Byte", "Year"});
  const DeviceSpec devices[] = {arria10_gx1150(), xeon_e5_2650v4(),
                                xeon_phi_7210f(), gtx_580(),
                                gtx_980ti(),      tesla_p100()};
  for (const DeviceSpec& d : devices) {
    t.add_row({d.name, format_fixed(d.peak_gflops, 0),
               format_fixed(d.peak_bw_gbps, 1), format_fixed(d.tdp_watts, 0),
               std::to_string(d.process_nm),
               format_fixed(d.flop_per_byte(), 3), std::to_string(d.year)});
  }
  t.add_rule();
  for (const DeviceSpec& d : {stratix10_gx2800(), stratix10_mx2100()}) {
    t.add_row({d.name + " (conclusion)", format_fixed(d.peak_gflops, 0),
               format_fixed(d.peak_bw_gbps, 1), format_fixed(d.tdp_watts, 0),
               std::to_string(d.process_nm),
               format_fixed(d.flop_per_byte(), 3), std::to_string(d.year)});
  }
  t.render(std::cout);

  std::cout << "\nMemory-bound check (Section IV.B): every radius 1..4 "
               "stencil vs every device:\n";
  bool all_bound = true;
  for (const DeviceSpec& d : devices) {
    for (int dims : {2, 3}) {
      for (int rad = 1; rad <= 4; ++rad) {
        all_bound &= is_memory_bound(d, stencil_characteristics(dims, rad));
      }
    }
  }
  std::cout << (all_bound ? "  all memory-bound, as the paper states.\n"
                          : "  MISMATCH with the paper!\n");
  return all_bound ? 0 : 1;
}
