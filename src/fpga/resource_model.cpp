#include "fpga/resource_model.hpp"

#include <array>
#include <cmath>
#include <sstream>

#include "stencil/characteristics.hpp"

namespace fpga_stencil {
namespace resource_detail {

// Calibration tables: factors fitted to the eight configurations of the
// paper's Table III (2D/3D, radius 1..4). Radii beyond 4 extrapolate from
// the radius-4 value; the paper's Section VI.A projection for 5th/6th-order
// 3D stencils (partime limited to 2) emerges from these factors.

double bram_bits_replication(int dims, int radius) {
  if (dims == 2) return radius == 1 ? 2.24 : 1.89;
  static constexpr std::array<double, 4> k3d = {1.04, 1.61, 1.79, 1.88};
  if (radius <= 4) return k3d[static_cast<std::size_t>(radius - 1)];
  return std::min(2.0, 1.88 + 0.02 * (radius - 4));
}

double bram_block_replication(int dims, int radius, int parvec) {
  if (dims == 2) {
    // Scales with the number of parallel read lanes; fitted slope 0.59.
    return std::max(1.0, 0.59 * parvec);
  }
  static constexpr std::array<double, 4> k3d = {1.10, 1.92, 2.18, 2.20};
  const double base =
      radius <= 4 ? k3d[static_cast<std::size_t>(radius - 1)] : 2.25;
  return std::max(1.0, base * (parvec / 16.0));
}

}  // namespace resource_detail

std::int64_t dsps_per_cell_update(int dims, int radius,
                                  bool shared_coefficients) {
  const StencilCharacteristics c = stencil_characteristics(dims, radius);
  return shared_coefficients ? c.dsp_per_cell_shared : c.dsp_per_cell;
}

std::int64_t dsp_usage(const AcceleratorConfig& cfg, bool shared_coefficients) {
  return dsps_per_cell_update(cfg.dims, cfg.radius, shared_coefficients) *
         cfg.updates_per_cycle();
}

std::int64_t max_total_parallelism(const DeviceSpec& device, int dims,
                                   int radius) {
  FPGASTENCIL_EXPECT(device.is_fpga(), "device has no DSP budget");
  return device.dsps / dsps_per_cell_update(dims, radius);
}

ResourceUsage estimate_resources(const AcceleratorConfig& cfg,
                                 const DeviceSpec& device,
                                 bool shared_coefficients) {
  FPGASTENCIL_EXPECT(device.is_fpga(), "resource estimate needs an FPGA");
  cfg.validate();

  ResourceUsage u;
  u.dsps = dsp_usage(cfg, shared_coefficients);

  // Shift-register storage: eq. (7) cells * 32 bits, one register per PE.
  constexpr std::int64_t kM20kBits = 20480;
  const std::int64_t raw_bits_per_pe = cfg.shift_register_cells() * 32;
  const double bits_repl =
      resource_detail::bram_bits_replication(cfg.dims, cfg.radius);
  const double block_repl = resource_detail::bram_block_replication(
      cfg.dims, cfg.radius, cfg.parvec);

  u.bram_bits = static_cast<std::int64_t>(
      std::llround(double(raw_bits_per_pe) * cfg.partime * bits_repl));
  const std::int64_t raw_blocks_per_pe = ceil_div(raw_bits_per_pe, kM20kBits);
  u.bram_blocks = static_cast<std::int64_t>(
      std::llround(double(raw_blocks_per_pe * cfg.partime) * block_repl));

  // Logic: affine in the FLOPs instantiated per cycle. Calibrated on the
  // Arria 10 GX 1150 (427,200 ALMs): fraction = 0.12 + 1.6e-4 * flops,
  // i.e. ~51k ALMs of base infrastructure (BSP, read/write kernels) plus
  // ~68 ALMs per parallel FLOP; expressed absolutely so larger devices get
  // proportionally more headroom.
  const StencilCharacteristics sc =
      stencil_characteristics(cfg.dims, cfg.radius);
  const double flops_per_cycle =
      double(sc.flop_per_cell) * double(cfg.updates_per_cycle());
  const double alms_used = 51264.0 + 68.352 * flops_per_cycle;
  u.logic_fraction = alms_used / double(device.alms);

  u.dsp_fraction = double(u.dsps) / device.dsps;
  u.bram_bits_fraction =
      double(u.bram_bits) / double(device.m20k_bits_total());
  u.bram_block_fraction = double(u.bram_blocks) / device.m20k_blocks;
  return u;
}

void check_fit(const AcceleratorConfig& cfg, const DeviceSpec& device) {
  const ResourceUsage u = estimate_resources(cfg, device);
  if (u.fits()) return;
  std::ostringstream os;
  os << "configuration [" << cfg.describe() << "] does not fit on "
     << device.name << ":";
  if (u.dsp_fraction > 1.0) {
    os << " DSPs " << u.dsps << "/" << device.dsps;
  }
  if (u.bram_block_fraction > 1.0) {
    os << " M20K blocks " << u.bram_blocks << "/" << device.m20k_blocks;
  }
  if (u.bram_bits_fraction > 1.0) {
    os << " M20K bits " << u.bram_bits << "/" << device.m20k_bits_total();
  }
  if (u.logic_fraction > 1.0) {
    os << " logic " << static_cast<int>(u.logic_fraction * 100) << "%";
  }
  throw ResourceError(os.str());
}

}  // namespace fpga_stencil
