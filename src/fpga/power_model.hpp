// Board power model.
//
// The paper reads the Nallatech 385A's on-board power sensor; we model the
// reading as an affine function of clock frequency and Block-RAM activity,
// the two factors the paper identifies as dominant (Section VI.A: "The main
// factor contributing to this difference is the difference in fmax. The
// next contributing factor to power usage is area utilization", with the
// 3rd-order 3D stencil drawing more than the 2nd-order one due to higher
// Block RAM usage despite lower fmax). Calibrated against Table III.
#pragma once

#include "stencil/accel_config.hpp"
#include "fpga/device_spec.hpp"

namespace fpga_stencil {

/// Estimated board power in watts while running `cfg` at `fmax_mhz`.
double estimate_power_watts(const AcceleratorConfig& cfg,
                            const DeviceSpec& device, double fmax_mhz);

}  // namespace fpga_stencil
