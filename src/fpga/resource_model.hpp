// Resource-usage model for the stencil accelerator on Intel FPGAs.
//
// DSP usage is exact arithmetic from Section V.A of the paper: one Arria 10
// DSP performs one single-precision FMA, every multiply fuses with the
// following add except the last, so one cell update costs 4*rad+1 (2D) or
// 6*rad+1 (3D) DSPs, times parvec*partime parallel updates.
//
// Block RAM usage is a *calibrated* model. The shift-register bit count is
// exact (eq. 7 times 32 bits times partime PEs); the mapping from bits to
// consumed bits/blocks applies replication factors calibrated against the
// paper's Table III. The paper itself observes the overshoot ("2.5-3x when
// doubling the radius" for 3D) and attributes it to the OpenCL compiler's
// shift-register inference / port replication, so an empirical factor is
// the honest model.
//
// Logic (ALM) usage is likewise a calibrated affine model in the number of
// parallel FLOPs instantiated per cycle.
#pragma once

#include "stencil/accel_config.hpp"
#include "fpga/device_spec.hpp"

namespace fpga_stencil {

/// Estimated utilization of one accelerator configuration on one device.
struct ResourceUsage {
  std::int64_t dsps = 0;            ///< DSP blocks consumed
  std::int64_t bram_bits = 0;       ///< Block RAM bits consumed
  std::int64_t bram_blocks = 0;     ///< M20K blocks consumed
  double logic_fraction = 0.0;      ///< ALM utilization fraction

  double dsp_fraction = 0.0;        ///< of device DSPs
  double bram_bits_fraction = 0.0;  ///< of device M20K bits
  double bram_block_fraction = 0.0; ///< of device M20K blocks

  /// True if every resource fits on the device ("place-and-route closes").
  [[nodiscard]] bool fits() const {
    return dsp_fraction <= 1.0 && bram_bits_fraction <= 1.0 &&
           bram_block_fraction <= 1.0 && logic_fraction <= 1.0;
  }
};

/// DSPs needed for one cell update: 4*rad+1 (2D) / 6*rad+1 (3D), or one
/// fewer when coefficients are shared per direction (Section V.A).
std::int64_t dsps_per_cell_update(int dims, int radius,
                                  bool shared_coefficients = false);

/// Total DSPs for a configuration: dsps_per_cell_update * parvec * partime.
std::int64_t dsp_usage(const AcceleratorConfig& cfg,
                       bool shared_coefficients = false);

/// Paper eq. (4): the maximum total parallelism partime*parvec the DSP
/// budget allows: floor(dsps / dsps_per_cell_update).
std::int64_t max_total_parallelism(const DeviceSpec& device, int dims,
                                   int radius);

/// Full utilization estimate for `cfg` on `device` (device must be an FPGA).
ResourceUsage estimate_resources(const AcceleratorConfig& cfg,
                                 const DeviceSpec& device,
                                 bool shared_coefficients = false);

/// Throws ResourceError with a diagnostic if `cfg` does not fit on `device`.
void check_fit(const AcceleratorConfig& cfg, const DeviceSpec& device);

namespace resource_detail {

/// Calibrated replication factor applied to raw shift-register bits.
/// 2D designs replicate ~2x; large 3D shift registers are near-optimal at
/// radius 1 but replicate ~1.85x beyond (paper Section VI.A observation).
double bram_bits_replication(int dims, int radius);

/// Calibrated block-count replication over ceil(bits / 20480), capturing
/// port replication for parallel tap reads. Grows with parvec (more lanes
/// reading per cycle) and with radius in 3D.
double bram_block_replication(int dims, int radius, int parvec);

}  // namespace resource_detail

}  // namespace fpga_stencil
