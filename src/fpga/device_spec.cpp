#include "fpga/device_spec.hpp"

namespace fpga_stencil {

DeviceSpec arria10_gx1150() {
  DeviceSpec d;
  d.name = "Arria 10 GX 1150";
  d.kind = DeviceKind::kFpga;
  d.peak_gflops = 1450.0;
  d.peak_bw_gbps = 34.1;  // 2 banks of DDR4-2133
  d.tdp_watts = 70.0;
  d.process_nm = 20;
  d.year = 2014;
  d.dsps = 1518;
  d.m20k_blocks = 2713;
  d.alms = 427200;
  d.mem_controller_mhz = 266.0;
  d.ddr_banks = 2;
  return d;
}

DeviceSpec stratix_v_gxa7() {
  DeviceSpec d;
  d.name = "Stratix V GX A7";
  d.kind = DeviceKind::kFpga;
  d.peak_gflops = 200.0;  // DSPs are 27x27 multipliers; FP adds use logic
  d.peak_bw_gbps = 25.6;  // 2 banks of DDR3-1600
  d.tdp_watts = 40.0;
  d.process_nm = 28;
  d.year = 2011;
  d.dsps = 256;
  d.m20k_blocks = 2560;
  d.alms = 234720;
  d.mem_controller_mhz = 200.0;
  d.ddr_banks = 2;
  return d;
}

DeviceSpec stratix10_gx2800() {
  DeviceSpec d;
  d.name = "Stratix 10 GX 2800";
  d.kind = DeviceKind::kFpga;
  d.peak_gflops = 9200.0;
  d.peak_bw_gbps = 76.8;  // 4 banks of DDR4-2400 (conclusion's scenario)
  d.tdp_watts = 225.0;
  d.process_nm = 14;
  d.year = 2017;
  d.dsps = 5760;
  d.m20k_blocks = 11721;
  d.alms = 933120;
  d.mem_controller_mhz = 300.0;
  d.ddr_banks = 4;
  return d;
}

DeviceSpec stratix10_mx2100() {
  DeviceSpec d;
  d.name = "Stratix 10 MX 2100";
  d.kind = DeviceKind::kFpga;
  d.peak_gflops = 6660.0;
  d.peak_bw_gbps = 512.0;  // HBM2
  d.tdp_watts = 225.0;
  d.process_nm = 14;
  d.year = 2018;
  d.dsps = 3960;
  d.m20k_blocks = 6847;
  d.alms = 702720;
  d.mem_controller_mhz = 300.0;
  d.ddr_banks = 32;  // HBM pseudo-channels
  return d;
}

DeviceSpec xeon_e5_2650v4() {
  DeviceSpec d;
  d.name = "Xeon E5-2650 v4";
  d.kind = DeviceKind::kCpu;
  d.peak_gflops = 700.0;
  d.peak_bw_gbps = 76.8;  // quad-channel DDR4-2400
  d.tdp_watts = 105.0;
  d.process_nm = 14;
  d.year = 2016;
  return d;
}

DeviceSpec xeon_phi_7210f() {
  DeviceSpec d;
  d.name = "Xeon Phi 7210F";
  d.kind = DeviceKind::kManycore;
  d.peak_gflops = 5325.0;
  d.peak_bw_gbps = 400.0;  // MCDRAM in flat mode
  d.tdp_watts = 235.0;
  d.process_nm = 14;
  d.year = 2016;
  return d;
}

DeviceSpec gtx_580() {
  DeviceSpec d;
  d.name = "GTX 580";
  d.kind = DeviceKind::kGpu;
  d.peak_gflops = 1580.0;
  d.peak_bw_gbps = 192.4;
  d.tdp_watts = 244.0;
  d.process_nm = 40;
  d.year = 2010;
  return d;
}

DeviceSpec gtx_980ti() {
  DeviceSpec d;
  d.name = "GTX 980 Ti";
  d.kind = DeviceKind::kGpu;
  d.peak_gflops = 6900.0;
  d.peak_bw_gbps = 336.6;
  d.tdp_watts = 275.0;
  d.process_nm = 28;
  d.year = 2015;
  return d;
}

DeviceSpec tesla_p100() {
  DeviceSpec d;
  d.name = "Tesla P100";
  d.kind = DeviceKind::kGpu;
  d.peak_gflops = 9300.0;
  d.peak_bw_gbps = 720.9;
  d.tdp_watts = 250.0;
  d.process_nm = 16;
  d.year = 2016;
  return d;
}

}  // namespace fpga_stencil
