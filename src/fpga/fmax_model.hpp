// Operating-frequency model.
//
// The OpenCL flow picks the highest PLL frequency that closes timing, so
// fmax is an emergent property of place-and-route. The paper observes
// (Section VI.A):
//   * fmax falls as the radius grows -- but only at large parvec/partime on
//     the heavily-utilized Arria 10; on a Stratix V with small parameters
//     the same fmax is reached regardless of radius,
//   * 2D designs close timing near 300-344 MHz, 3D designs near 243-287,
//   * for high-order 3D stencils fmax falls below the 266 MHz memory
//     controller clock, derating peak memory bandwidth.
//
// We model this with a per-dimensionality base and radius slope, gated by
// resource pressure (so lightly-utilized designs show no radius penalty),
// with a floor. Constants are calibrated against Table III; deviations are
// recorded in EXPERIMENTS.md.
#pragma once

#include "stencil/accel_config.hpp"
#include "fpga/device_spec.hpp"

namespace fpga_stencil {

/// Estimated kernel fmax in MHz for `cfg` synthesized on `device`.
double estimate_fmax_mhz(const AcceleratorConfig& cfg,
                         const DeviceSpec& device);

namespace fmax_detail {
/// Device speed relative to the Arria 10 calibration point.
double device_speed_scale(const DeviceSpec& device);
}  // namespace fmax_detail

}  // namespace fpga_stencil
