#include "fpga/toolchain.hpp"

#include <cmath>

#include "fpga/fmax_model.hpp"

namespace fpga_stencil {

ToolchainRegression toolchain_regression(ToolchainVersion version) {
  switch (version) {
    case ToolchainVersion::kQuartus16_1:
      return {1.0, 1.0};
    case ToolchainVersion::kQuartus17:
      // Mid-points of the paper's observed ranges: 20-30% lower
      // performance, 5-10% more Block RAMs.
      return {0.75, 1.075};
  }
  FPGASTENCIL_ASSERT(false, "unknown toolchain version");
}

ResourceUsage estimate_resources_with_toolchain(const AcceleratorConfig& cfg,
                                                const DeviceSpec& device,
                                                ToolchainVersion version) {
  ResourceUsage u = estimate_resources(cfg, device);
  const ToolchainRegression r = toolchain_regression(version);
  u.bram_bits = std::llround(double(u.bram_bits) * r.bram_scale);
  u.bram_blocks = std::llround(double(u.bram_blocks) * r.bram_scale);
  u.bram_bits_fraction =
      double(u.bram_bits) / double(device.m20k_bits_total());
  u.bram_block_fraction = double(u.bram_blocks) / device.m20k_blocks;
  return u;
}

double estimate_fmax_with_toolchain(const AcceleratorConfig& cfg,
                                    const DeviceSpec& device,
                                    ToolchainVersion version) {
  return estimate_fmax_mhz(cfg, device) *
         toolchain_regression(version).fmax_scale;
}

}  // namespace fpga_stencil
