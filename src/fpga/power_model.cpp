#include "fpga/power_model.hpp"

#include <algorithm>

#include "fpga/resource_model.hpp"

namespace fpga_stencil {

double estimate_power_watts(const AcceleratorConfig& cfg,
                            const DeviceSpec& device, double fmax_mhz) {
  FPGASTENCIL_EXPECT(device.is_fpga(), "power model needs an FPGA");
  FPGASTENCIL_EXPECT(fmax_mhz > 0, "fmax must be positive");
  const ResourceUsage u = estimate_resources(cfg, device);

  // Affine fit against Table III (see header). The idle floor keeps the
  // model sane for tiny designs; the TDP cap keeps it sane for huge ones.
  constexpr double kBase = -14.0;
  constexpr double kPerMhz = 0.2;
  constexpr double kPerBramFraction = 30.0;
  const double p =
      kBase + kPerMhz * fmax_mhz + kPerBramFraction * u.bram_bits_fraction;
  return std::clamp(p, 25.0, device.tdp_watts * 1.2);
}

}  // namespace fpga_stencil
