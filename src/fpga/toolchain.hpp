// Toolchain-version effects.
//
// Section IV.B of the paper: "We avoided newer versions of Quartus (v17.0
// and v17.1) since they reliably resulted in lower performance (20-30%
// lower) and higher area utilization (5-10% more Block RAMs) for the same
// kernel." This module models that regression so what-if studies can ask
// "what would Table III look like if we had to use v17".
#pragma once

#include "fpga/device_spec.hpp"
#include "fpga/resource_model.hpp"

namespace fpga_stencil {

enum class ToolchainVersion : std::uint8_t {
  kQuartus16_1,  ///< the paper's toolchain (baseline)
  kQuartus17,    ///< the regressed versions the paper avoided
};

/// Multipliers relative to the v16.1 baseline.
struct ToolchainRegression {
  double fmax_scale = 1.0;        ///< achieved-performance proxy
  double bram_scale = 1.0;        ///< Block-RAM bits and blocks
};

ToolchainRegression toolchain_regression(ToolchainVersion version);

/// Resource usage of `cfg` on `device` as version `version` would report.
ResourceUsage estimate_resources_with_toolchain(const AcceleratorConfig& cfg,
                                                const DeviceSpec& device,
                                                ToolchainVersion version);

/// Achievable fmax under the toolchain regression.
double estimate_fmax_with_toolchain(const AcceleratorConfig& cfg,
                                    const DeviceSpec& device,
                                    ToolchainVersion version);

}  // namespace fpga_stencil
