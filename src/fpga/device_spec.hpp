// Hardware catalog for every device in the paper's Table II, plus the two
// extra FPGAs discussed in the text (Stratix V for the fmax cross-check,
// Stratix 10 for the conclusion's bandwidth argument).
#pragma once

#include <cstdint>
#include <string>

namespace fpga_stencil {

enum class DeviceKind : std::uint8_t { kFpga, kCpu, kManycore, kGpu };

/// Static device characteristics (paper Table II) plus FPGA resource counts
/// used by the fitting / tuning machinery.
struct DeviceSpec {
  std::string name;
  DeviceKind kind = DeviceKind::kFpga;
  double peak_gflops = 0.0;   ///< single-precision peak
  double peak_bw_gbps = 0.0;  ///< theoretical external memory bandwidth
  double tdp_watts = 0.0;
  int process_nm = 0;
  int year = 0;

  // --- FPGA-only resources (zero for non-FPGA devices) ---
  int dsps = 0;          ///< DSP blocks; on Arria 10 one DSP = one SP FMA
  int m20k_blocks = 0;   ///< 20 Kb Block RAMs
  std::int64_t alms = 0; ///< adaptive logic modules
  double mem_controller_mhz = 0.0;  ///< external memory controller clock
  int ddr_banks = 0;

  /// Table II's FLOP/Byte column: compute-to-bandwidth ratio.
  [[nodiscard]] double flop_per_byte() const {
    return peak_bw_gbps > 0 ? peak_gflops / peak_bw_gbps : 0.0;
  }

  [[nodiscard]] std::int64_t m20k_bits_total() const {
    return static_cast<std::int64_t>(m20k_blocks) * 20480;
  }

  [[nodiscard]] bool is_fpga() const { return kind == DeviceKind::kFpga; }
};

/// The paper's evaluation platform: Nallatech 385A with Arria 10 GX 1150
/// and two banks of DDR4-2133.
DeviceSpec arria10_gx1150();

/// The authors' previous-generation platform, used in the paper only for
/// the "fmax is radius-independent at small parameters" cross-check.
DeviceSpec stratix_v_gxa7();

/// Next-generation devices from the conclusion's discussion.
DeviceSpec stratix10_gx2800();
DeviceSpec stratix10_mx2100();

// Table II comparison devices.
DeviceSpec xeon_e5_2650v4();
DeviceSpec xeon_phi_7210f();
DeviceSpec gtx_580();
DeviceSpec gtx_980ti();
DeviceSpec tesla_p100();

}  // namespace fpga_stencil
