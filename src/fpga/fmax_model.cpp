#include "fpga/fmax_model.hpp"

#include <algorithm>

#include "fpga/resource_model.hpp"

namespace fpga_stencil {
namespace fmax_detail {

double device_speed_scale(const DeviceSpec& device) {
  if (device.name.find("Arria 10") != std::string::npos) return 1.0;
  if (device.name.find("Stratix V") != std::string::npos) return 0.78;
  if (device.name.find("Stratix 10") != std::string::npos) return 1.35;
  return 0.9;
}

}  // namespace fmax_detail

double estimate_fmax_mhz(const AcceleratorConfig& cfg,
                         const DeviceSpec& device) {
  FPGASTENCIL_EXPECT(device.is_fpga(), "fmax model needs an FPGA");
  const ResourceUsage u = estimate_resources(cfg, device);

  // Radius-dependent critical paths only appear once the device fills up
  // (paper: Stratix V at small parameters shows no radius penalty).
  const double util = std::max(u.dsp_fraction, u.bram_block_fraction);
  const double pressure = std::clamp((util - 0.3) / 0.3, 0.0, 1.0);

  const bool is2d = cfg.dims == 2;
  const double base = is2d ? 343.8 : 286.6;
  const double slope = is2d ? 21.3 : 15.0;
  const double floor = is2d ? 301.0 : 200.0;

  const double f =
      std::max(base - slope * (cfg.radius - 1) * pressure, floor);
  return f * fmax_detail::device_speed_scale(device);
}

}  // namespace fpga_stencil
