// OpenCL-C kernel source generator.
//
// The paper parameterizes one OpenCL kernel by radius and performance knobs
// and, because clamped boundary handling "could not be efficiently realized
// using unrolled loops and branches", uses a code generator that emits the
// boundary-condition select chains into the kernel source (Section III.B).
//
// This module reproduces that generator: given an AcceleratorConfig it
// emits a complete Intel-FPGA-OpenCL kernel file -- read kernel, an autorun
// array of PAR_TIME compute PEs connected by channels, write kernel, the
// eq.-(7) shift register, fully unrolled vector lanes, and one generated
// clamping select per (direction, distance, lane) neighbor access.
//
// The emitted source is what would be handed to `aoc` on a real system; the
// test suite checks its structural invariants (select counts as a function
// of radius, balanced delimiters, pragma placement, determinism).
#pragma once

#include <string>

#include "stencil/accel_config.hpp"
#include "stencil/tap_set.hpp"

namespace fpga_stencil {

struct CodegenOptions {
  AcceleratorConfig config;
  bool emit_comments = true;  ///< keep explanatory comments in the source
};

/// Full kernel file for the configuration (star stencil; coefficients as
/// overridable COEF_* macros, as the paper's generator produces).
std::string generate_kernel_source(const CodegenOptions& options);

/// Full kernel file for an arbitrary tap set (box stencils, custom
/// shapes): coefficients are baked in as literals, each tap gets its own
/// generated per-axis clamping select chain, and the stage lag follows the
/// tap set's forward reach.
std::string generate_tap_kernel_source(const TapSet& taps,
                                       const CodegenOptions& options);

/// Just the boundary-handled accumulation statements for one lane
/// (exposed for unit tests): one `+=` with a clamping select chain per
/// (direction, distance) neighbor.
std::string generate_lane_body(const AcceleratorConfig& cfg, int lane);

/// Structural metrics of generated source, for validation.
struct SourceMetrics {
  std::int64_t lines = 0;
  std::int64_t selects = 0;          ///< ternary operators emitted
  std::int64_t accumulations = 0;    ///< `acc +=` statements
  std::int64_t unroll_pragmas = 0;
  bool balanced = false;             ///< (), {}, [] all balanced
};

SourceMetrics analyze_source(const std::string& source);

}  // namespace fpga_stencil
