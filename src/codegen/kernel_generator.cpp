#include "codegen/kernel_generator.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <span>
#include <sstream>
#include <vector>

#include "stencil/star_stencil.hpp"

namespace fpga_stencil {
namespace {

/// Tiny indented-source writer.
class SourceWriter {
 public:
  void line(const std::string& text = "") {
    for (int i = 0; i < indent_; ++i) os_ << "  ";
    os_ << text << "\n";
  }
  void open(const std::string& text) {
    line(text + " {");
    ++indent_;
  }
  void close(const std::string& suffix = "") {
    --indent_;
    line("}" + suffix);
  }
  [[nodiscard]] std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
  int indent_ = 0;
};

const char* direction_token(Direction d) {
  switch (d) {
    case Direction::kWest:  return "W";
    case Direction::kEast:  return "E";
    case Direction::kSouth: return "S";
    case Direction::kNorth: return "N";
    case Direction::kBelow: return "B";
    case Direction::kAbove: return "A";
  }
  return "?";
}

/// Clamping select for one neighbor: the offset expression the paper's
/// boundary-condition generator inserts. `coord` is the center's global
/// coordinate variable, `limit` the grid-extent-minus-one variable, and
/// `stride` the shift-register cells per coordinate unit.
std::string neighbor_select(Direction d, int i, const std::string& coord,
                            const std::string& limit,
                            const std::string& stride) {
  const std::string dist = std::to_string(i);
  std::string offset;
  switch (d) {
    case Direction::kWest:
    case Direction::kSouth:
    case Direction::kBelow:
      // negative direction: clamp at 0 -> fall back on the border cell
      offset = "((" + coord + " - " + dist + " < 0) ? (0 - " + coord +
               ") : -" + dist + ")";
      break;
    case Direction::kEast:
    case Direction::kNorth:
    case Direction::kAbove:
      offset = "((" + coord + " + " + dist + " > " + limit + ") ? (" + limit +
               " - " + coord + ") : " + dist + ")";
      break;
  }
  if (stride != "1") offset = "(" + offset + ") * " + stride;
  return offset;
}

void emit_lane_body(SourceWriter& w, const AcceleratorConfig& cfg, int lane,
                    bool comments) {
  const std::string l = std::to_string(lane);
  w.open("");  // lane scope
  if (comments) w.line("// ---- lane " + l + " ----");
  w.line("const long flat = flat0 + " + l + ";");
  w.line("const long center = (long)RAD * ROW_CELLS + " + l + ";");
  if (cfg.dims == 2) {
    w.line("const long row = flat / BSIZE_X;");
    w.line("const long xg = c.block_x0 + flat % BSIZE_X;");
    w.line("const long yg = row - (long)stage * RAD;");
    w.line("const int in_grid = flat >= 0 && xg >= 0 && xg < c.nx && "
           "yg >= 0 && yg < c.ny;");
  } else {
    w.line("const long plane = flat / ROW_CELLS;");
    w.line("const long rem = flat % ROW_CELLS;");
    w.line("const long xg = c.block_x0 + rem % BSIZE_X;");
    w.line("const long yg = c.block_y0 + rem / BSIZE_X;");
    w.line("const long zg = plane - (long)stage * RAD;");
    w.line("const int in_grid = flat >= 0 && xg >= 0 && xg < c.nx && "
           "yg >= 0 && yg < c.ny && zg >= 0 && zg < c.nz;");
  }
  w.line("const long nxm1 = c.nx - 1;");
  w.line("const long nym1 = c.ny - 1;");
  if (cfg.dims == 3) w.line("const long nzm1 = c.nz - 1;");
  w.line("float acc = COEF_C * sr[center];");
  if (comments) {
    w.line("// generated boundary conditions: every out-of-bound neighbor");
    w.line("// falls back on the border cell (clamping selects)");
  }
  for (int i = 1; i <= cfg.radius; ++i) {
    const auto dirs2 = kDirections2D;
    const auto dirs3 = kDirections3D;
    const std::span<const Direction> dirs =
        cfg.dims == 2 ? std::span<const Direction>(dirs2)
                      : std::span<const Direction>(dirs3);
    for (Direction d : dirs) {
      std::string coord, limit, stride;
      switch (d) {
        case Direction::kWest:
        case Direction::kEast:
          coord = "xg"; limit = "nxm1"; stride = "1";
          break;
        case Direction::kSouth:
        case Direction::kNorth:
          coord = "yg"; limit = "nym1"; stride = "BSIZE_X";
          break;
        case Direction::kBelow:
        case Direction::kAbove:
          coord = "zg"; limit = "nzm1"; stride = "ROW_CELLS";
          break;
      }
      w.line(std::string("acc += COEF_") + direction_token(d) + "_" +
             std::to_string(i) + " * sr[center + " +
             neighbor_select(d, i, coord, limit, stride) + "];");
    }
  }
  w.line("out.d[" + l + "] = in_grid ? acc : 0.0f;");
  w.close();
}

void emit_coefficient_macros(SourceWriter& w, const AcceleratorConfig& cfg) {
  auto guard = [&w](const std::string& name, const std::string& value) {
    w.line("#ifndef " + name);
    w.line("#define " + name + " " + value);
    w.line("#endif");
  };
  guard("COEF_C", "(0.5f)");
  const auto dirs2 = kDirections2D;
  const auto dirs3 = kDirections3D;
  const std::span<const Direction> dirs =
      cfg.dims == 2 ? std::span<const Direction>(dirs2)
                    : std::span<const Direction>(dirs3);
  for (int i = 1; i <= cfg.radius; ++i) {
    for (Direction d : dirs) {
      guard(std::string("COEF_") + direction_token(d) + "_" +
                std::to_string(i),
            "(0.5f / (2.0f * DIM * RAD))");
    }
  }
}

}  // namespace

std::string generate_lane_body(const AcceleratorConfig& cfg, int lane) {
  cfg.validate();
  FPGASTENCIL_EXPECT(lane >= 0 && lane < cfg.parvec, "lane out of range");
  SourceWriter w;
  emit_lane_body(w, cfg, lane, /*comments=*/false);
  return w.str();
}

std::string generate_kernel_source(const CodegenOptions& options) {
  const AcceleratorConfig& cfg = options.config;
  cfg.validate();
  const bool cm = options.emit_comments;

  SourceWriter w;
  if (cm) {
    w.line("// Auto-generated high-order stencil kernel.");
    w.line("// Configuration: " + cfg.describe());
    w.line("// Deep-pipeline design: read kernel -> " +
           std::to_string(cfg.partime) +
           " autorun compute PEs -> write kernel, connected by channels.");
  }
  w.line("#pragma OPENCL EXTENSION cl_intel_channels : enable");
  w.line();
  w.line("#define DIM " + std::to_string(cfg.dims));
  w.line("#define RAD " + std::to_string(cfg.radius));
  w.line("#define BSIZE_X " + std::to_string(cfg.bsize_x));
  if (cfg.dims == 3) w.line("#define BSIZE_Y " + std::to_string(cfg.bsize_y));
  w.line("#define PAR_VEC " + std::to_string(cfg.parvec));
  w.line("#define PAR_TIME " + std::to_string(cfg.partime));
  w.line("#define HALO (PAR_TIME * RAD)");
  w.line(cfg.dims == 2 ? "#define ROW_CELLS (BSIZE_X)"
                       : "#define ROW_CELLS (BSIZE_X * BSIZE_Y)");
  w.line("#define SR_SIZE (2 * RAD * ROW_CELLS + PAR_VEC)");
  w.line();
  emit_coefficient_macros(w, cfg);
  w.line();
  w.line("typedef struct { float d[PAR_VEC]; } vec_t;");
  w.open("typedef struct");
  w.line("long block_x0;");
  if (cfg.dims == 3) w.line("long block_y0;");
  w.line("long nx;");
  w.line("long ny;");
  if (cfg.dims == 3) w.line("long nz;");
  w.line("long vec_count;");
  w.close(" ctrl_t;");
  w.line();
  w.line("channel vec_t ch_data[PAR_TIME + 1] __attribute__((depth(64)));");
  w.line("channel ctrl_t ch_ctrl[PAR_TIME + 1] __attribute__((depth(4)));");
  w.line();

  // ------------------------------------------------------------- read
  if (cm) {
    w.line("// Read kernel: streams one overlapped block per invocation,");
    w.line("// zero-padding cells that fall outside the grid.");
  }
  if (cfg.dims == 2) {
    w.open("__kernel void stencil_read(__global const float * restrict grid,"
           " const long block_x0, const long nx, const long ny,"
           " const long vec_count)");
    w.line("ctrl_t c = {block_x0, nx, ny, vec_count};");
  } else {
    w.open("__kernel void stencil_read(__global const float * restrict grid,"
           " const long block_x0, const long block_y0, const long nx,"
           " const long ny, const long nz, const long vec_count)");
    w.line("ctrl_t c = {block_x0, block_y0, nx, ny, nz, vec_count};");
  }
  w.line("write_channel_intel(ch_ctrl[0], c);");
  if (cm) w.line("// collapsed loop: a single global vector index (exit");
  if (cm) w.line("// condition optimization -- one accumulate-and-compare)");
  w.open("for (long q = 0; q < vec_count; ++q)");
  w.line("vec_t v;");
  w.line("const long flat = q * PAR_VEC;");
  if (cfg.dims == 2) {
    w.line("const long row = flat / BSIZE_X;");
    w.line("const long xr = flat % BSIZE_X;");
    w.line("#pragma unroll");
    w.open("for (int l = 0; l < PAR_VEC; ++l)");
    w.line("const long xg = block_x0 + xr + l;");
    w.line("const int ok = xg >= 0 && xg < nx && row < ny;");
    w.line("v.d[l] = ok ? grid[row * nx + xg] : 0.0f;");
    w.close();
  } else {
    w.line("const long plane = flat / ROW_CELLS;");
    w.line("const long rem = flat % ROW_CELLS;");
    w.line("const long yg = block_y0 + rem / BSIZE_X;");
    w.line("const long xr = rem % BSIZE_X;");
    w.line("#pragma unroll");
    w.open("for (int l = 0; l < PAR_VEC; ++l)");
    w.line("const long xg = block_x0 + xr + l;");
    w.line("const int ok = xg >= 0 && xg < nx && yg >= 0 && yg < ny &&"
           " plane < nz;");
    w.line("v.d[l] = ok ? grid[(plane * ny + yg) * nx + xg] : 0.0f;");
    w.close();
  }
  w.line("write_channel_intel(ch_data[0], v);");
  w.close();
  w.close();
  w.line();

  // ---------------------------------------------------------- compute
  if (cm) {
    w.line("// Compute PE: autorun, replicated PAR_TIME times; each replica");
    w.line("// advances the block one time step (temporal blocking).");
  }
  w.line("__attribute__((max_global_work_dim(0)))");
  w.line("__attribute__((autorun))");
  w.line("__attribute__((num_compute_units(PAR_TIME)))");
  w.open("__kernel void stencil_compute(void)");
  w.line("const int stage = get_compute_id(0);");
  w.line("float sr[SR_SIZE];");
  w.open("while (1)");
  w.line("const ctrl_t c = read_channel_intel(ch_ctrl[stage]);");
  w.line("write_channel_intel(ch_ctrl[stage + 1], c);");
  w.open("for (long q = 0; q < c.vec_count; ++q)");
  if (cm) w.line("// shift register advances by PAR_VEC cells per cycle");
  w.line("#pragma unroll");
  w.open("for (int s = 0; s < SR_SIZE - PAR_VEC; ++s)");
  w.line("sr[s] = sr[s + PAR_VEC];");
  w.close();
  w.line("const vec_t in = read_channel_intel(ch_data[stage]);");
  w.line("#pragma unroll");
  w.open("for (int l = 0; l < PAR_VEC; ++l)");
  w.line("sr[SR_SIZE - PAR_VEC + l] = in.d[l];");
  w.close();
  w.line("vec_t out;");
  w.line("const long flat0 = q * PAR_VEC - (long)RAD * ROW_CELLS;");
  for (int lane = 0; lane < cfg.parvec; ++lane) {
    emit_lane_body(w, cfg, lane, cm);
  }
  w.line("write_channel_intel(ch_data[stage + 1], out);");
  w.close();
  w.close();
  w.close();
  w.line();

  // ------------------------------------------------------------ write
  if (cm) {
    w.line("// Write kernel: retires the valid (non-halo) cells of each");
    w.line("// output vector to external memory.");
  }
  if (cfg.dims == 2) {
    w.open("__kernel void stencil_write(__global float * restrict grid,"
           " const long valid_x_end)");
  } else {
    w.open("__kernel void stencil_write(__global float * restrict grid,"
           " const long valid_x_end, const long valid_y_end)");
  }
  w.line("const ctrl_t c = read_channel_intel(ch_ctrl[PAR_TIME]);");
  w.open("for (long q = 0; q < c.vec_count; ++q)");
  w.line("const vec_t v = read_channel_intel(ch_data[PAR_TIME]);");
  w.line("const long flat = q * PAR_VEC;");
  if (cfg.dims == 2) {
    w.line("const long yg = flat / BSIZE_X - HALO;");
    w.line("const long xr0 = flat % BSIZE_X;");
    w.line("if (yg < 0 || yg >= c.ny) continue;");
    w.line("#pragma unroll");
    w.open("for (int l = 0; l < PAR_VEC; ++l)");
    w.line("const long xr = xr0 + l;");
    w.line("const long xg = c.block_x0 + xr;");
    w.line("const int ok = xr >= HALO && xr < HALO + (BSIZE_X - 2 * HALO) &&"
           " xg < valid_x_end;");
    w.line("if (ok) grid[yg * c.nx + xg] = v.d[l];");
    w.close();
  } else {
    w.line("const long zg = flat / ROW_CELLS - HALO;");
    w.line("const long rem = flat % ROW_CELLS;");
    w.line("const long yr = rem / BSIZE_X;");
    w.line("const long yg = c.block_y0 + yr;");
    w.line("const long xr0 = rem % BSIZE_X;");
    w.line("if (zg < 0 || zg >= c.nz) continue;");
    w.line("if (yr < HALO || yr >= HALO + (BSIZE_Y - 2 * HALO) ||"
           " yg >= valid_y_end) continue;");
    w.line("#pragma unroll");
    w.open("for (int l = 0; l < PAR_VEC; ++l)");
    w.line("const long xr = xr0 + l;");
    w.line("const long xg = c.block_x0 + xr;");
    w.line("const int ok = xr >= HALO && xr < HALO + (BSIZE_X - 2 * HALO) &&"
           " xg < valid_x_end;");
    w.line("if (ok) grid[(zg * c.ny + yg) * c.nx + xg] = v.d[l];");
    w.close();
  }
  w.close();
  w.close();

  return w.str();
}

namespace {

/// Per-axis clamping select for a tap component; empty for 0 offsets.
std::string axis_select(std::int64_t d, const std::string& coord,
                        const std::string& limit, const std::string& stride) {
  if (d == 0) return "";
  std::string off;
  if (d < 0) {
    const std::string a = std::to_string(-d);
    off = "((" + coord + " - " + a + " < 0) ? (0 - " + coord + ") : -" + a +
          ")";
  } else {
    const std::string a = std::to_string(d);
    off = "((" + coord + " + " + a + " > " + limit + ") ? (" + limit +
          " - " + coord + ") : " + a + ")";
  }
  if (stride != "1") off = "(" + off + ") * " + stride;
  return off;
}

std::string format_coeff(float c) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%.9gf", double(c));
  return std::string(buf.data());
}

}  // namespace

std::string generate_tap_kernel_source(const TapSet& taps,
                                       const CodegenOptions& options) {
  AcceleratorConfig cfg = options.config;
  cfg.validate();
  FPGASTENCIL_EXPECT(taps.dims() == cfg.dims && taps.radius() <= cfg.radius,
                     "tap set and configuration disagree");
  const bool cm = options.emit_comments;
  const std::int64_t row_cells = cfg.row_cells();
  const std::int64_t max_flat = taps.max_flat_offset(cfg.bsize_x, row_cells);
  const std::int64_t min_flat = taps.min_flat_offset(cfg.bsize_x, row_cells);
  const std::int64_t stage_lag = std::max<std::int64_t>(
      ceil_div(std::max<std::int64_t>(max_flat, 1), row_cells), 1);
  const std::int64_t sr_size = stage_lag * row_cells - min_flat + cfg.parvec;
  const std::int64_t center_base = -min_flat;

  SourceWriter w;
  if (cm) {
    w.line("// Auto-generated tap-set stencil kernel (" +
           std::to_string(taps.size()) + " taps).");
    w.line("// Configuration: " + cfg.describe());
  }
  w.line("#pragma OPENCL EXTENSION cl_intel_channels : enable");
  w.line();
  w.line("#define DIM " + std::to_string(cfg.dims));
  w.line("#define RAD " + std::to_string(cfg.radius));
  w.line("#define BSIZE_X " + std::to_string(cfg.bsize_x));
  if (cfg.dims == 3) w.line("#define BSIZE_Y " + std::to_string(cfg.bsize_y));
  w.line("#define PAR_VEC " + std::to_string(cfg.parvec));
  w.line("#define PAR_TIME " + std::to_string(cfg.partime));
  w.line("#define HALO (PAR_TIME * RAD)");
  w.line("#define STAGE_LAG " + std::to_string(stage_lag));
  w.line("#define DRAIN (PAR_TIME * STAGE_LAG)");
  w.line(cfg.dims == 2 ? "#define ROW_CELLS (BSIZE_X)"
                       : "#define ROW_CELLS (BSIZE_X * BSIZE_Y)");
  w.line("#define SR_SIZE " + std::to_string(sr_size));
  w.line("#define CENTER_BASE " + std::to_string(center_base));
  w.line();
  if (cm) w.line("// coefficients baked in, in accumulation order");
  {
    std::string init = "__constant float COEFS[" +
                       std::to_string(taps.size()) + "] = {";
    for (std::size_t t = 0; t < taps.size(); ++t) {
      if (t) init += ", ";
      init += format_coeff(taps.taps()[t].coeff);
    }
    init += "};";
    w.line(init);
  }
  w.line();
  w.line("typedef struct { float d[PAR_VEC]; } vec_t;");
  w.open("typedef struct");
  w.line("long block_x0;");
  if (cfg.dims == 3) w.line("long block_y0;");
  w.line("long nx;");
  w.line("long ny;");
  if (cfg.dims == 3) w.line("long nz;");
  w.line("long vec_count;");
  w.close(" ctrl_t;");
  w.line();
  w.line("channel vec_t ch_data[PAR_TIME + 1] __attribute__((depth(64)));");
  w.line("channel ctrl_t ch_ctrl[PAR_TIME + 1] __attribute__((depth(4)));");
  w.line();

  // Compute PE only: the read/write kernels of the star dialect apply
  // unchanged except for DRAIN; emit the full trio for self-containment.
  w.line("__attribute__((max_global_work_dim(0)))");
  w.line("__attribute__((autorun))");
  w.line("__attribute__((num_compute_units(PAR_TIME)))");
  w.open("__kernel void stencil_compute(void)");
  w.line("const int stage = get_compute_id(0);");
  w.line("float sr[SR_SIZE];");
  w.open("while (1)");
  w.line("const ctrl_t c = read_channel_intel(ch_ctrl[stage]);");
  w.line("write_channel_intel(ch_ctrl[stage + 1], c);");
  w.open("for (long q = 0; q < c.vec_count; ++q)");
  w.line("#pragma unroll");
  w.open("for (int s = 0; s < SR_SIZE - PAR_VEC; ++s)");
  w.line("sr[s] = sr[s + PAR_VEC];");
  w.close();
  w.line("const vec_t in = read_channel_intel(ch_data[stage]);");
  w.line("#pragma unroll");
  w.open("for (int l = 0; l < PAR_VEC; ++l)");
  w.line("sr[SR_SIZE - PAR_VEC + l] = in.d[l];");
  w.close();
  w.line("vec_t out;");
  w.line("const long flat0 = q * PAR_VEC - (long)STAGE_LAG * ROW_CELLS;");
  for (int lane = 0; lane < cfg.parvec; ++lane) {
    const std::string l = std::to_string(lane);
    w.open("");
    if (cm) w.line("// ---- lane " + l + " ----");
    w.line("const long flat = flat0 + " + l + ";");
    w.line("const long center = CENTER_BASE + " + l + ";");
    if (cfg.dims == 2) {
      w.line("const long row = flat / BSIZE_X;");
      w.line("const long xg = c.block_x0 + flat % BSIZE_X;");
      w.line("const long yg = row - (long)stage * STAGE_LAG;");
      w.line("const int in_grid = flat >= 0 && xg >= 0 && xg < c.nx && "
             "yg >= 0 && yg < c.ny;");
    } else {
      w.line("const long plane = flat / ROW_CELLS;");
      w.line("const long rem = flat % ROW_CELLS;");
      w.line("const long xg = c.block_x0 + rem % BSIZE_X;");
      w.line("const long yg = c.block_y0 + rem / BSIZE_X;");
      w.line("const long zg = plane - (long)stage * STAGE_LAG;");
      w.line("const int in_grid = flat >= 0 && xg >= 0 && xg < c.nx && "
             "yg >= 0 && yg < c.ny && zg >= 0 && zg < c.nz;");
    }
    w.line("const long nxm1 = c.nx - 1;");
    w.line("const long nym1 = c.ny - 1;");
    if (cfg.dims == 3) w.line("const long nzm1 = c.nz - 1;");
    for (std::size_t t = 0; t < taps.size(); ++t) {
      const Tap& tap = taps.taps()[t];
      std::vector<std::string> parts;
      const std::string sx = axis_select(tap.dx, "xg", "nxm1", "1");
      const std::string sy = axis_select(tap.dy, "yg", "nym1", "BSIZE_X");
      const std::string sz =
          cfg.dims == 3 ? axis_select(tap.dz, "zg", "nzm1", "ROW_CELLS")
                        : std::string();
      std::string off;
      for (const std::string& s : {sx, sy, sz}) {
        if (s.empty()) continue;
        if (!off.empty()) off += " + ";
        off += s;
      }
      if (off.empty()) off = "0";
      const std::string idx = "sr[center + " + off + "]";
      if (t == 0) {
        w.line("float acc = COEFS[0] * " + idx + ";");
      } else {
        w.line("acc += COEFS[" + std::to_string(t) + "] * " + idx + ";");
      }
    }
    w.line("out.d[" + l + "] = in_grid ? acc : 0.0f;");
    w.close();
  }
  w.line("write_channel_intel(ch_data[stage + 1], out);");
  w.close();
  w.close();
  w.close();
  w.line();

  // Read and write kernels: identical structure to the star dialect, with
  // the write kernel lagging DRAIN stream rows.
  if (cfg.dims == 2) {
    w.open("__kernel void stencil_read(__global const float * restrict grid,"
           " const long block_x0, const long nx, const long ny,"
           " const long vec_count)");
    w.line("ctrl_t c = {block_x0, nx, ny, vec_count};");
  } else {
    w.open("__kernel void stencil_read(__global const float * restrict grid,"
           " const long block_x0, const long block_y0, const long nx,"
           " const long ny, const long nz, const long vec_count)");
    w.line("ctrl_t c = {block_x0, block_y0, nx, ny, nz, vec_count};");
  }
  w.line("write_channel_intel(ch_ctrl[0], c);");
  w.open("for (long q = 0; q < vec_count; ++q)");
  w.line("vec_t v;");
  w.line("const long flat = q * PAR_VEC;");
  if (cfg.dims == 2) {
    w.line("const long row = flat / BSIZE_X;");
    w.line("const long xr = flat % BSIZE_X;");
    w.line("#pragma unroll");
    w.open("for (int l = 0; l < PAR_VEC; ++l)");
    w.line("const long xg = block_x0 + xr + l;");
    w.line("const int ok = xg >= 0 && xg < nx && row < ny;");
    w.line("v.d[l] = ok ? grid[row * nx + xg] : 0.0f;");
    w.close();
  } else {
    w.line("const long plane = flat / ROW_CELLS;");
    w.line("const long rem = flat % ROW_CELLS;");
    w.line("const long yg = block_y0 + rem / BSIZE_X;");
    w.line("const long xr = rem % BSIZE_X;");
    w.line("#pragma unroll");
    w.open("for (int l = 0; l < PAR_VEC; ++l)");
    w.line("const long xg = block_x0 + xr + l;");
    w.line("const int ok = xg >= 0 && xg < nx && yg >= 0 && yg < ny &&"
           " plane < nz;");
    w.line("v.d[l] = ok ? grid[(plane * ny + yg) * nx + xg] : 0.0f;");
    w.close();
  }
  w.line("write_channel_intel(ch_data[0], v);");
  w.close();
  w.close();
  w.line();

  if (cfg.dims == 2) {
    w.open("__kernel void stencil_write(__global float * restrict grid,"
           " const long valid_x_end)");
  } else {
    w.open("__kernel void stencil_write(__global float * restrict grid,"
           " const long valid_x_end, const long valid_y_end)");
  }
  w.line("const ctrl_t c = read_channel_intel(ch_ctrl[PAR_TIME]);");
  w.open("for (long q = 0; q < c.vec_count; ++q)");
  w.line("const vec_t v = read_channel_intel(ch_data[PAR_TIME]);");
  w.line("const long flat = q * PAR_VEC;");
  if (cfg.dims == 2) {
    w.line("const long yg = flat / BSIZE_X - DRAIN;");
    w.line("const long xr0 = flat % BSIZE_X;");
    w.line("if (yg < 0 || yg >= c.ny) continue;");
  } else {
    w.line("const long zg = flat / ROW_CELLS - DRAIN;");
    w.line("const long rem = flat % ROW_CELLS;");
    w.line("const long yr = rem / BSIZE_X;");
    w.line("const long yg = c.block_y0 + yr;");
    w.line("const long xr0 = rem % BSIZE_X;");
    w.line("if (zg < 0 || zg >= c.nz) continue;");
    w.line("if (yr < HALO || yr >= HALO + (BSIZE_Y - 2 * HALO) ||"
           " yg >= valid_y_end) continue;");
  }
  w.line("#pragma unroll");
  w.open("for (int l = 0; l < PAR_VEC; ++l)");
  w.line("const long xr = xr0 + l;");
  w.line("const long xg = c.block_x0 + xr;");
  w.line("const int ok = xr >= HALO && xr < HALO + (BSIZE_X - 2 * HALO) &&"
         " xg < valid_x_end;");
  if (cfg.dims == 2) {
    w.line("if (ok) grid[yg * c.nx + xg] = v.d[l];");
  } else {
    w.line("if (ok) grid[(zg * c.ny + yg) * c.nx + xg] = v.d[l];");
  }
  w.close();
  w.close();
  w.close();

  return w.str();
}

SourceMetrics analyze_source(const std::string& source) {
  SourceMetrics m;
  std::int64_t paren = 0, brace = 0, bracket = 0;
  bool bad = false;
  for (char ch : source) {
    switch (ch) {
      case '(': ++paren; break;
      case ')': --paren; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case '[': ++bracket; break;
      case ']': --bracket; break;
      case '?': ++m.selects; break;
      case '\n': ++m.lines; break;
      default: break;
    }
    if (paren < 0 || brace < 0 || bracket < 0) bad = true;
  }
  m.balanced = !bad && paren == 0 && brace == 0 && bracket == 0;

  for (std::size_t pos = source.find("acc +="); pos != std::string::npos;
       pos = source.find("acc +=", pos + 1)) {
    ++m.accumulations;
  }
  for (std::size_t pos = source.find("#pragma unroll");
       pos != std::string::npos;
       pos = source.find("#pragma unroll", pos + 1)) {
    ++m.unroll_pragmas;
  }
  return m;
}

}  // namespace fpga_stencil
