// Static dispatch table of compile-time-specialized stencil kernels.
//
// The paper's throughput comes from baking the stencil shape, radius, and
// vector width into the generated OpenCL pipeline at synthesis time; the
// host-side analogue is a C++ template (`run_specialized`, kernels/
// run_specialized.hpp) instantiated over the supported envelope
//
//   shape  in {star, box}  x  dims in {2, 3}  x  radius in {1..4}
//                          x  parvec in {1, 4, 8, 16}
//
// = 64 entries, registered here in a process-lifetime table. `find`
// resolves a (TapSet, AcceleratorConfig) pair to an entry by structural
// match: the tap offsets must be exactly the canonical star or box order
// (the accumulation order the specialized loops hard-code), and the
// config's parvec must be an envelope point. Anything else -- custom tap
// orders, parvec 2, radius 5+ -- returns null and the caller falls back to
// the scalar interpreter (`stream_block_generic`), which remains the
// semantic reference.
//
// Matching is structural, not fingerprint-equality: coefficients are
// runtime data (passed to the kernel in tap order), so one instantiation
// serves every coefficient set of its shape point. The PlanCache still
// keys plans by the full tap fingerprint and caches the resolved
// `SpecializedKernel*` alongside the BlockingPlan, so steady-state jobs
// skip even this structural match.
//
// Every kernel is bit-exact with the interpreter by construction (same
// clamping, same per-cell accumulation order; see docs/KERNELS.md) and
// tests/kernels_test.cpp verifies each entry exhaustively.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "kernels/run_specialized.hpp"

namespace fpga_stencil {

/// One registered instantiation point of `run_specialized`.
struct SpecializedKernel {
  StencilShape shape = StencilShape::kStar;
  int dims = 2;
  int radius = 1;
  int parvec = 1;
  SpecializedKernel2DFn run_2d = nullptr;  ///< set when dims == 2
  SpecializedKernel3DFn run_3d = nullptr;  ///< set when dims == 3
  const char* name = "";                   ///< e.g. "star_3d_r4_v16"
};

/// True when `taps` is exactly the canonical star order for its (dims,
/// radius): center first, then per ring i = 1..radius the axis pairs
/// W(-i), E(+i), S(-i), N(+i) [, B(-i), A(+i) in 3D] -- the order
/// StarStencil::to_taps emits.
[[nodiscard]] bool matches_canonical_star(const TapSet& taps);

/// True when `taps` is exactly the canonical box order: all (2r+1)^dims
/// offsets in row-major (dz, dy, dx) ascending order, as make_box_stencil
/// emits.
[[nodiscard]] bool matches_canonical_box(const TapSet& taps);

class KernelRegistry {
 public:
  KernelRegistry(const KernelRegistry&) = delete;
  KernelRegistry& operator=(const KernelRegistry&) = delete;

  /// The process-wide table. Construction is thread-safe (C++ static
  /// local) and the table is immutable afterwards, so handles can be
  /// shared freely across threads and cached in plans.
  [[nodiscard]] static const KernelRegistry& instance();

  /// Resolves the specialized kernel for a (taps, config) pair, or null
  /// when the pair is off-envelope and must run on the interpreter.
  /// Structural match only -- never inspects coefficients, grid extents,
  /// or block sizes.
  [[nodiscard]] const SpecializedKernel* find(
      const TapSet& taps, const AcceleratorConfig& cfg) const;

  /// Exact envelope lookup (tests, benches).
  [[nodiscard]] const SpecializedKernel* lookup(StencilShape shape, int dims,
                                                int radius, int parvec) const;

  [[nodiscard]] std::span<const SpecializedKernel> entries() const {
    return entries_;
  }

 private:
  KernelRegistry();

  template <StencilShape Shape, int Rad, int Dims, int ParVec>
  void add_entry();

  std::vector<SpecializedKernel> entries_;
  std::vector<std::string> names_;  ///< owns SpecializedKernel::name storage
};

}  // namespace fpga_stencil
