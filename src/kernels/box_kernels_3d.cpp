// Explicit instantiations: box stencils, 3D, radius 1-4 x parvec
// {1,4,8,16}. Radius 4 has 729 taps; the tap loop stays a runtime loop
// over the constexpr pattern precisely so this TU does not explode.
#include "kernels/run_specialized_impl.hpp"

namespace fpga_stencil {

#define FPGASTENCIL_INSTANTIATE_KERNEL(SHAPE, RAD, DIMS, PARVEC)        \
  template void run_specialized<StencilShape::SHAPE, RAD, DIMS, PARVEC>( \
      const BlockingPlan&, const BlockExtent&, const GridOf<DIMS>&,     \
      GridOf<DIMS>&, int, const float*, RunStats&,                      \
      const CancellationToken*);

FPGASTENCIL_FOR_EACH_RADIUS_PARVEC(FPGASTENCIL_INSTANTIATE_KERNEL, kBox, 3)

#undef FPGASTENCIL_INSTANTIATE_KERNEL

}  // namespace fpga_stencil
