// Explicit instantiations: box stencils, 2D, radius 1-4 x parvec
// {1,4,8,16}. Box tap counts grow as (2r+1)^2; the tap loop in
// compute_row is a runtime loop over the constexpr pattern, so these
// instantiations stay compact.
#include "kernels/run_specialized_impl.hpp"

namespace fpga_stencil {

#define FPGASTENCIL_INSTANTIATE_KERNEL(SHAPE, RAD, DIMS, PARVEC)        \
  template void run_specialized<StencilShape::SHAPE, RAD, DIMS, PARVEC>( \
      const BlockingPlan&, const BlockExtent&, const GridOf<DIMS>&,     \
      GridOf<DIMS>&, int, const float*, RunStats&,                      \
      const CancellationToken*);

FPGASTENCIL_FOR_EACH_RADIUS_PARVEC(FPGASTENCIL_INSTANTIATE_KERNEL, kBox, 2)

#undef FPGASTENCIL_INSTANTIATE_KERNEL

}  // namespace fpga_stencil
