// Thread-local scratch for specialized kernels.
//
// A specialized block pass needs one slab of (steps + 1) rolling windows
// of 2*Rad + 1 planes each, plus the coefficient array in tap order.
// Allocating per block would dominate small blocks and show up as malloc
// contention under the block-parallel pool, so each worker thread keeps
// one workspace that grows monotonically to the largest block it has
// seen -- the same lifetime discipline as the pool workers' lane buffers,
// but fully internal to the kernels library (callers never thread it
// through).
#pragma once

#include <cstddef>
#include <vector>

namespace fpga_stencil {

class KernelWorkspace {
 public:
  /// A slab of at least `cells` floats (contents unspecified; kernels
  /// fully overwrite the planes they read). The pointer is invalidated by
  /// the next ensure() call with a larger size.
  [[nodiscard]] float* ensure(std::size_t cells) {
    if (slab_.size() < cells) slab_.resize(cells);
    return slab_.data();
  }

  /// Reusable coefficient staging buffer (dispatch copies TapSet
  /// coefficients here in accumulation order).
  [[nodiscard]] std::vector<float>& coefficients() { return coefficients_; }

  [[nodiscard]] std::size_t slab_cells() const { return slab_.size(); }

 private:
  std::vector<float> slab_;
  std::vector<float> coefficients_;
};

/// The calling thread's workspace (function-local thread_local, so the
/// buffer dies with the thread, not the process).
[[nodiscard]] KernelWorkspace& tls_kernel_workspace();

}  // namespace fpga_stencil
