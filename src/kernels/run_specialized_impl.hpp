// Definition of run_specialized (declared in run_specialized.hpp).
//
// Included only by the explicit-instantiation TUs (star_kernels_*.cpp,
// box_kernels_*.cpp); everything else links against those instantiations
// through the extern templates.
//
// Specialized kernels are the clamp fast path: the border select-chains
// below hard-code clamp-toward-grid per axis. Tap sets carrying any other
// BoundaryCondition never dispatch here -- block_streamer::try_specialized
// and PlanCache's specialized-kernel resolution both gate on
// taps.boundary().is_clamp(), routing the generic interpreter instead
// (docs/PROGRAMS.md).
//
// ## Algorithm: array-form rolling window
//
// The interpreter emulates the FPGA datapath literally: one flat
// shift register per PE, one parvec-wide vector per cycle, per-tap
// bounds-checked ring reads. A specialized kernel computes the same
// mathematical recurrence in array form: per temporal stage a rolling
// window (PlanarShiftRegister) of the last 2*Rad + 1 stream planes
// (z-planes in 3D, x-rows in 2D), advanced one stream index per outer
// iteration:
//
//   for z in [0, nz + steps*Rad):          // streamed dim + pipeline drain
//     read  : load input plane z into stage 0's window (zero off-grid)
//     update: for k = 1..steps, plane p = z - k*Rad of stage k becomes
//             computable (its +Rad source in stage k-1 just landed);
//             compute it row by row from stage k-1's window
//     write : plane z - steps*Rad of stage `steps` is final; retire its
//             valid compute region into `out`
//
// Per cell the arithmetic is the interpreter's exactly: taps accumulate
// in canonical order (acc = c0*t0; acc += ct*tt), every tap clamps toward
// the grid per axis, out-of-grid centers yield zero. Stream-dim and row
// clamping are uniform over a row, so they are hoisted: per plane a table
// of z-clamped source-plane pointers, per row a table of y-clamped row
// deltas, leaving only x-clamping in the lane loop -- and only in the
// border segment. The interior segment (no tap can clamp) runs in
// ParVec-wide chunks with tap-outer/lane-inner loops whose trip counts
// are constexpr; each lane carries an independent dependency chain in the
// interpreter's op order, so vectorization cannot change results.
//
// ## Why block-edge divergence is sound (influence cone)
//
// Windows are padded by Rad zero cells per side of each blocked axis, so
// a computed cell near the block edge may read zeros where the
// interpreter's ring reads wrapped rows. Neither value can reach a valid
// output: by induction, the stage-k cells any retired cell depends on lie
// within halo - (steps - k)*Rad .. halo + csize + (steps - k)*Rad of the
// block-local blocked axes (each stage widens the cone by at most Rad,
// clamping only pulls reads inward), which for k >= 1 stays at least Rad
// away from the block edge since halo = partime*radius >= steps*Rad. All
// cells inside that cone are computed from genuinely loaded input with
// the exact interpreter arithmetic; everything outside is don't-care for
// both implementations. tests/kernels_test.cpp verifies the retired
// output bit-for-bit against the interpreter for every envelope entry.
#pragma once

#include <algorithm>
#include <array>
#include <cstring>

#include "common/cancellation.hpp"
#include "common/math_util.hpp"
#include "core/stencil_accelerator.hpp"
#include "grid/grid.hpp"
#include "kernels/kernel_workspace.hpp"
#include "kernels/run_specialized.hpp"
#include "pipeline/shift_register.hpp"

// The lane loops vectorize at -O3 as-is (constexpr trip count, no
// cross-lane dependencies); FPGASTENCIL_NATIVE_ARCH additionally compiles
// this library with -fopenmp-simd and defines FPGASTENCIL_OMP_SIMD so the
// pragma asserts the independence explicitly.
#if defined(FPGASTENCIL_OMP_SIMD)
#define FPGASTENCIL_SIMD_LOOP _Pragma("omp simd")
#else
#define FPGASTENCIL_SIMD_LOOP
#endif

namespace fpga_stencil {
namespace kernels_detail {

/// Canonical tap offsets for <Shape, Rad, Dims>, split per axis. Must
/// stay in lockstep with StarStencil::to_taps / make_box_stencil (the
/// registry's structural match guarantees a dispatched TapSet has exactly
/// these offsets in this order, so `coeffs[t]` belongs to offset t).
template <StencilShape Shape, int Rad, int Dims>
struct TapPattern {
  static constexpr int kSide = 2 * Rad + 1;
  static constexpr int kCount =
      Shape == StencilShape::kStar
          ? 1 + 2 * Dims * Rad
          : (Dims == 3 ? kSide * kSide * kSide : kSide * kSide);

  struct Offsets {
    std::array<int, kCount> dx{}, dy{}, dz{};
  };

  static constexpr Offsets make_offsets() {
    Offsets o{};
    int t = 0;
    if constexpr (Shape == StencilShape::kStar) {
      o.dx[t] = 0;
      ++t;  // center
      for (int i = 1; i <= Rad; ++i) {
        o.dx[t++] = -i;                  // West
        o.dx[t++] = +i;                  // East
        o.dy[t++] = -i;                  // South
        o.dy[t++] = +i;                  // North
        if constexpr (Dims == 3) {
          o.dz[t++] = -i;                // Below
          o.dz[t++] = +i;                // Above
        }
      }
    } else {
      const int zr = Dims == 3 ? Rad : 0;
      for (int dz = -zr; dz <= zr; ++dz) {
        for (int dy = -Rad; dy <= Rad; ++dy) {
          for (int dx = -Rad; dx <= Rad; ++dx) {
            o.dx[t] = dx;
            o.dy[t] = dy;
            o.dz[t] = dz;
            ++t;
          }
        }
      }
    }
    return o;
  }

  static constexpr Offsets kOffsets = make_offsets();
};

/// One cell with per-tap x-clamping (grid-boundary columns); y/z
/// clamping is already folded into the `rows` pointers.
template <int NTaps>
[[nodiscard]] inline float compute_border_cell(std::int64_t x, std::int64_t xg,
                                               std::int64_t nx,
                                               const float* const* rows,
                                               const int* dxs,
                                               const float* cf) {
  std::int64_t d = clamp_index(xg + dxs[0], 0, nx - 1) - xg;
  float acc = cf[0] * rows[0][x + d];
  for (int t = 1; t < NTaps; ++t) {
    d = clamp_index(xg + dxs[t], 0, nx - 1) - xg;
    acc += cf[t] * rows[t][x + d];
  }
  return acc;
}

/// One output row (block-local x in [0, bx)) of one stage: zero segments
/// where the center is off-grid, x-clamped scalar cells at the grid's x
/// boundaries, ParVec-wide vectorized chunks in the interior. `dst` and
/// each `rows[t]` point at block-local x == 0 of rows padded by >= Rad
/// cells per side.
template <int NTaps, int ParVec>
inline void compute_row(float* dst, std::int64_t bx, std::int64_t x0,
                        std::int64_t nx, std::int64_t rad,
                        const float* const* rows, const int* dxs,
                        const float* cf) {
  const std::int64_t grid_lo = std::clamp<std::int64_t>(-x0, 0, bx);
  const std::int64_t grid_hi = std::clamp<std::int64_t>(nx - x0, grid_lo, bx);
  std::fill(dst, dst + grid_lo, 0.0f);
  std::fill(dst + grid_hi, dst + bx, 0.0f);
  // Columns where some tap could cross the grid's x boundary.
  const std::int64_t il = std::clamp<std::int64_t>(rad - x0, grid_lo, grid_hi);
  const std::int64_t ih =
      std::clamp<std::int64_t>(nx - rad - x0, il, grid_hi);
  std::int64_t x = grid_lo;
  for (; x < il; ++x) {
    dst[x] = compute_border_cell<NTaps>(x, x0 + x, nx, rows, dxs, cf);
  }
  for (; x + ParVec <= ih; x += ParVec) {
    float acc[ParVec];
    const float* r0 = rows[0] + x + dxs[0];
    FPGASTENCIL_SIMD_LOOP
    for (int l = 0; l < ParVec; ++l) acc[l] = cf[0] * r0[l];
    for (int t = 1; t < NTaps; ++t) {
      const float* rt = rows[t] + x + dxs[t];
      const float ct = cf[t];
      FPGASTENCIL_SIMD_LOOP
      for (int l = 0; l < ParVec; ++l) acc[l] += ct * rt[l];
    }
    for (int l = 0; l < ParVec; ++l) dst[x + l] = acc[l];
  }
  // Chunk remainder: interior columns never clamp, so the border form
  // degenerates to the identical operation sequence.
  for (; x < grid_hi; ++x) {
    dst[x] = compute_border_cell<NTaps>(x, x0 + x, nx, rows, dxs, cf);
  }
}

/// 2D block pass: x blocked, y streamed; window planes are single rows.
template <StencilShape Shape, int Rad, int ParVec>
void run_block(const BlockingPlan& plan, const BlockExtent& blk,
               const Grid2D<float>& in, Grid2D<float>& out, int steps,
               const float* cf, RunStats& stats,
               const CancellationToken* cancel) {
  using Pattern = TapPattern<Shape, Rad, 2>;
  constexpr int N = Pattern::kCount;
  constexpr auto& offs = Pattern::kOffsets;
  constexpr std::int64_t W = 2 * Rad + 1;

  const AcceleratorConfig& cfg = plan.config;
  const std::int64_t bx = cfg.bsize_x;
  const std::int64_t nx = in.nx(), ny = in.ny();
  const std::int64_t x0 = blk.x0;
  const std::int64_t prow = bx + 2 * Rad;  // padded row stride

  KernelWorkspace& ws = tls_kernel_workspace();
  const std::size_t slab =
      std::size_t(steps + 1) * std::size_t(W) * std::size_t(prow);
  float* base = ws.ensure(slab);
  std::fill(base, base + slab, 0.0f);  // margins must read as zero
  const auto window = [&](int stage) {
    return PlanarShiftRegister<float>(base + std::size_t(stage) * W * prow, W,
                                      prow);
  };
  // Block-local x == 0 of the window row holding stream row `r`.
  const auto content = [&](int stage, std::int64_t r) {
    return window(stage).plane(r) + Rad;
  };

  const std::int64_t grid_lo = std::clamp<std::int64_t>(-x0, 0, bx);
  const std::int64_t grid_hi = std::clamp<std::int64_t>(nx - x0, grid_lo, bx);

  const std::int64_t halo = cfg.halo();
  const std::int64_t wx_lo = halo;
  const std::int64_t wx_hi =
      std::min(halo + cfg.csize_x(), blk.valid_x_end - x0);

  const std::int64_t ymax = ny + std::int64_t(steps) * Rad;
  for (std::int64_t y = 0; y < ymax; ++y) {
    if (cancel) cancel->throw_if_cancelled();
    // --- read: load input row y (zero outside the grid) ---
    float* in_row = content(0, y);
    if (y >= ny) {
      std::fill(in_row, in_row + bx, 0.0f);
    } else {
      std::fill(in_row, in_row + grid_lo, 0.0f);
      if (grid_hi > grid_lo) {
        std::memcpy(in_row + grid_lo, &in.at(x0 + grid_lo, y),
                    std::size_t(grid_hi - grid_lo) * sizeof(float));
      }
      std::fill(in_row + grid_hi, in_row + bx, 0.0f);
    }

    // --- update: stage-k rows that just became computable ---
    for (int k = 1; k <= steps; ++k) {
      const std::int64_t r = y - std::int64_t(k) * Rad;
      if (r < 0) break;  // deeper stages lag even further
      float* dst = content(k, r);
      if (r >= ny) {  // off-grid center row: zeros, overwriting the slot
        std::fill(dst, dst + bx, 0.0f);
        continue;
      }
      const float* rows[N];
      for (int t = 0; t < N; ++t) {
        const std::int64_t src =
            clamp_index(r + offs.dy[t], 0, ny - 1);
        rows[t] = content(k - 1, src);
      }
      compute_row<N, ParVec>(dst, bx, x0, nx, Rad, rows, offs.dx.data(), cf);
    }

    // --- write: retire the finished row ---
    const std::int64_t wout = y - std::int64_t(steps) * Rad;
    if (wout < 0 || wout >= ny || wx_hi <= wx_lo) continue;
    std::memcpy(&out.at(x0 + wx_lo, wout), content(steps, wout) + wx_lo,
                std::size_t(wx_hi - wx_lo) * sizeof(float));
    stats.cells_written += wx_hi - wx_lo;
  }

  stats.cells_streamed += plan.cells_streamed_per_pass;
  stats.vectors_processed += plan.cells_streamed_per_pass / cfg.parvec;
  ++stats.block_passes;
}

/// 3D block pass: x/y blocked, z streamed; window planes are padded
/// (bsize_y + 2*Rad) x (bsize_x + 2*Rad) tiles.
template <StencilShape Shape, int Rad, int ParVec>
void run_block(const BlockingPlan& plan, const BlockExtent& blk,
               const Grid3D<float>& in, Grid3D<float>& out, int steps,
               const float* cf, RunStats& stats,
               const CancellationToken* cancel) {
  using Pattern = TapPattern<Shape, Rad, 3>;
  constexpr int N = Pattern::kCount;
  constexpr auto& offs = Pattern::kOffsets;
  constexpr std::int64_t W = 2 * Rad + 1;

  const AcceleratorConfig& cfg = plan.config;
  const std::int64_t bx = cfg.bsize_x, by = cfg.bsize_y;
  const std::int64_t nx = in.nx(), ny = in.ny(), nz = in.nz();
  const std::int64_t x0 = blk.x0, y0 = blk.y0;
  const std::int64_t prow = bx + 2 * Rad;
  const std::int64_t plane_cells = prow * (by + 2 * Rad);

  KernelWorkspace& ws = tls_kernel_workspace();
  const std::size_t slab =
      std::size_t(steps + 1) * std::size_t(W) * std::size_t(plane_cells);
  float* base = ws.ensure(slab);
  std::fill(base, base + slab, 0.0f);
  const auto window = [&](int stage) {
    return PlanarShiftRegister<float>(
        base + std::size_t(stage) * W * plane_cells, W, plane_cells);
  };
  // Block-local (0, y_rel) of the window plane holding stream plane `p`.
  const auto content = [&](int stage, std::int64_t p, std::int64_t y_rel) {
    return window(stage).plane(p) + (y_rel + Rad) * prow + Rad;
  };

  const std::int64_t grid_lo = std::clamp<std::int64_t>(-x0, 0, bx);
  const std::int64_t grid_hi = std::clamp<std::int64_t>(nx - x0, grid_lo, bx);

  const std::int64_t halo = cfg.halo();
  const std::int64_t wx_lo = halo;
  const std::int64_t wx_hi =
      std::min(halo + cfg.csize_x(), blk.valid_x_end - x0);
  const std::int64_t wy_lo = halo;
  const std::int64_t wy_hi =
      std::min(halo + cfg.csize_y(), blk.valid_y_end - y0);

  const std::int64_t zmax = nz + std::int64_t(steps) * Rad;
  for (std::int64_t z = 0; z < zmax; ++z) {
    if (cancel) cancel->throw_if_cancelled();
    // --- read: load input plane z (zero outside the grid) ---
    for (std::int64_t y_rel = 0; y_rel < by; ++y_rel) {
      float* row = content(0, z, y_rel);
      const std::int64_t yg = y0 + y_rel;
      if (z >= nz || yg < 0 || yg >= ny) {
        std::fill(row, row + bx, 0.0f);
        continue;
      }
      std::fill(row, row + grid_lo, 0.0f);
      if (grid_hi > grid_lo) {
        std::memcpy(row + grid_lo, &in.at(x0 + grid_lo, yg, z),
                    std::size_t(grid_hi - grid_lo) * sizeof(float));
      }
      std::fill(row + grid_hi, row + bx, 0.0f);
    }

    // --- update: stage-k planes that just became computable ---
    for (int k = 1; k <= steps; ++k) {
      const std::int64_t p = z - std::int64_t(k) * Rad;
      if (p < 0) break;
      if (p >= nz) {  // off-grid center plane: zeros, overwriting the slot
        for (std::int64_t y_rel = 0; y_rel < by; ++y_rel) {
          float* row = content(k, p, y_rel);
          std::fill(row, row + bx, 0.0f);
        }
        continue;
      }
      // z-clamped source planes of stage k-1; the window provably still
      // holds every clamped index (clamping pulls toward the interior).
      std::array<std::int64_t, W> zsel;
      for (std::int64_t j = 0; j < W; ++j) {
        zsel[std::size_t(j)] = clamp_index(p + j - Rad, 0, nz - 1);
      }
      for (std::int64_t y_rel = 0; y_rel < by; ++y_rel) {
        float* dst = content(k, p, y_rel);
        const std::int64_t yg = y0 + y_rel;
        if (yg < 0 || yg >= ny) {
          std::fill(dst, dst + bx, 0.0f);
          continue;
        }
        std::array<std::int64_t, W> ydel;
        for (std::int64_t j = 0; j < W; ++j) {
          ydel[std::size_t(j)] = clamp_index(yg + j - Rad, 0, ny - 1) - yg;
        }
        const float* rows[N];
        for (int t = 0; t < N; ++t) {
          rows[t] = content(k - 1, zsel[std::size_t(offs.dz[t] + Rad)],
                            y_rel + ydel[std::size_t(offs.dy[t] + Rad)]);
        }
        compute_row<N, ParVec>(dst, bx, x0, nx, Rad, rows, offs.dx.data(), cf);
      }
    }

    // --- write: retire the finished plane ---
    const std::int64_t pout = z - std::int64_t(steps) * Rad;
    if (pout < 0 || pout >= nz || wx_hi <= wx_lo) continue;
    for (std::int64_t y_rel = wy_lo; y_rel < wy_hi; ++y_rel) {
      std::memcpy(&out.at(x0 + wx_lo, y0 + y_rel, pout),
                  content(steps, pout, y_rel) + wx_lo,
                  std::size_t(wx_hi - wx_lo) * sizeof(float));
      stats.cells_written += wx_hi - wx_lo;
    }
  }

  stats.cells_streamed += plan.cells_streamed_per_pass;
  stats.vectors_processed += plan.cells_streamed_per_pass / cfg.parvec;
  ++stats.block_passes;
}

}  // namespace kernels_detail

template <StencilShape Shape, int Rad, int Dims, int ParVec>
void run_specialized(const BlockingPlan& plan, const BlockExtent& blk,
                     const GridOf<Dims>& in, GridOf<Dims>& out, int steps,
                     const float* coeffs, RunStats& stats,
                     const CancellationToken* cancel) {
  kernels_detail::run_block<Shape, Rad, ParVec>(plan, blk, in, out, steps,
                                                coeffs, stats, cancel);
}

}  // namespace fpga_stencil
