// `run_specialized<Shape, Rad, Dims, ParVec>`: one overlapped block pass,
// with the stencil shape, radius, dimensionality, and vector width baked
// in at compile time.
//
// This is the host-side analogue of the paper's synthesized pipeline. The
// scalar interpreter (`stream_block_generic`) walks a ring-buffer shift
// register cell by cell with per-tap bounds checks; a specialized kernel
// instead keeps a structure-of-arrays rolling window of planes (3D) /
// rows (2D) per temporal stage (PlanarShiftRegister) and updates each
// output row with tap-outer / lane-inner loops whose trip counts are
// constexpr, so the compiler fully vectorizes the interior.
//
// Bit-exactness contract (verified per entry by tests/kernels_test.cpp):
// for every cell the accumulation is `acc = c[0]*tap0; acc += c[t]*tapt`
// in canonical tap order, with every tap clamped toward the grid per axis
// and out-of-grid centers producing zero -- exactly the interpreter's
// arithmetic, in the same order. The only intentional divergence is in
// cells no valid output can observe: block-edge lanes within `radius` of
// the block boundary in computed stages read wrapped shift-register rows
// in the interpreter; the specialized kernels zero them (see
// docs/KERNELS.md for the influence-cone argument that this is sound).
//
// Instantiations for the supported envelope live in star_kernels_*.cpp /
// box_kernels_*.cpp and are reachable through the KernelRegistry; this
// header only declares the template and the envelope's extern templates,
// so including it never re-instantiates kernel code.
#pragma once

#include <cstdint>
#include <type_traits>

#include "stencil/accel_config.hpp"
#include "stencil/tap_set.hpp"

namespace fpga_stencil {

template <typename T>
class Grid2D;
template <typename T>
class Grid3D;
class CancellationToken;
struct RunStats;

/// The two tap layouts with canonical orders the kernels hard-code.
enum class StencilShape { kStar, kBox };

[[nodiscard]] constexpr const char* stencil_shape_name(StencilShape s) {
  return s == StencilShape::kStar ? "star" : "box";
}

template <int Dims>
using GridOf = std::conditional_t<Dims == 3, Grid3D<float>, Grid2D<float>>;

/// Runs one block pass of `steps` (<= cfg.partime) time steps over `blk`,
/// retiring the block's valid compute region into `out`. `coeffs` holds
/// the tap coefficients in canonical order for <Shape, Rad, Dims> (the
/// caller extracts them from its TapSet). Stats accounting matches the
/// interpreter field for field (cells_streamed, vectors_processed,
/// block_passes, cells_written), and a non-null `cancel` token is polled
/// once per streamed plane/row -- at least as often as the interpreter's
/// one-block-time cancellation bound requires.
template <StencilShape Shape, int Rad, int Dims, int ParVec>
void run_specialized(const BlockingPlan& plan, const BlockExtent& blk,
                     const GridOf<Dims>& in, GridOf<Dims>& out, int steps,
                     const float* coeffs, RunStats& stats,
                     const CancellationToken* cancel);

using SpecializedKernel2DFn = void (*)(const BlockingPlan&, const BlockExtent&,
                                       const Grid2D<float>&, Grid2D<float>&,
                                       int, const float*, RunStats&,
                                       const CancellationToken*);
using SpecializedKernel3DFn = void (*)(const BlockingPlan&, const BlockExtent&,
                                       const Grid3D<float>&, Grid3D<float>&,
                                       int, const float*, RunStats&,
                                       const CancellationToken*);

// The envelope's explicit instantiations (one TU per shape x dims so a
// change to one family recompiles only that file).
#define FPGASTENCIL_FOR_EACH_RADIUS_PARVEC(X, SHAPE, DIMS) \
  X(SHAPE, 1, DIMS, 1)                                     \
  X(SHAPE, 1, DIMS, 4)                                     \
  X(SHAPE, 1, DIMS, 8)                                     \
  X(SHAPE, 1, DIMS, 16)                                    \
  X(SHAPE, 2, DIMS, 1)                                     \
  X(SHAPE, 2, DIMS, 4)                                     \
  X(SHAPE, 2, DIMS, 8)                                     \
  X(SHAPE, 2, DIMS, 16)                                    \
  X(SHAPE, 3, DIMS, 1)                                     \
  X(SHAPE, 3, DIMS, 4)                                     \
  X(SHAPE, 3, DIMS, 8)                                     \
  X(SHAPE, 3, DIMS, 16)                                    \
  X(SHAPE, 4, DIMS, 1)                                     \
  X(SHAPE, 4, DIMS, 4)                                     \
  X(SHAPE, 4, DIMS, 8)                                     \
  X(SHAPE, 4, DIMS, 16)

#define FPGASTENCIL_EXTERN_KERNEL(SHAPE, RAD, DIMS, PARVEC)             \
  extern template void                                                  \
  run_specialized<StencilShape::SHAPE, RAD, DIMS, PARVEC>(              \
      const BlockingPlan&, const BlockExtent&, const GridOf<DIMS>&,     \
      GridOf<DIMS>&, int, const float*, RunStats&,                      \
      const CancellationToken*);

FPGASTENCIL_FOR_EACH_RADIUS_PARVEC(FPGASTENCIL_EXTERN_KERNEL, kStar, 2)
FPGASTENCIL_FOR_EACH_RADIUS_PARVEC(FPGASTENCIL_EXTERN_KERNEL, kStar, 3)
FPGASTENCIL_FOR_EACH_RADIUS_PARVEC(FPGASTENCIL_EXTERN_KERNEL, kBox, 2)
FPGASTENCIL_FOR_EACH_RADIUS_PARVEC(FPGASTENCIL_EXTERN_KERNEL, kBox, 3)

#undef FPGASTENCIL_EXTERN_KERNEL

}  // namespace fpga_stencil
