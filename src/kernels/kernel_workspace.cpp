#include "kernels/kernel_workspace.hpp"

namespace fpga_stencil {

KernelWorkspace& tls_kernel_workspace() {
  thread_local KernelWorkspace ws;
  return ws;
}

}  // namespace fpga_stencil
