// Explicit instantiations: star stencils, 3D, radius 1-4 x parvec
// {1,4,8,16}.
#include "kernels/run_specialized_impl.hpp"

namespace fpga_stencil {

#define FPGASTENCIL_INSTANTIATE_KERNEL(SHAPE, RAD, DIMS, PARVEC)        \
  template void run_specialized<StencilShape::SHAPE, RAD, DIMS, PARVEC>( \
      const BlockingPlan&, const BlockExtent&, const GridOf<DIMS>&,     \
      GridOf<DIMS>&, int, const float*, RunStats&,                      \
      const CancellationToken*);

FPGASTENCIL_FOR_EACH_RADIUS_PARVEC(FPGASTENCIL_INSTANTIATE_KERNEL, kStar, 3)

#undef FPGASTENCIL_INSTANTIATE_KERNEL

}  // namespace fpga_stencil
