#include "kernels/kernel_registry.hpp"

#include <string>

namespace fpga_stencil {

bool matches_canonical_star(const TapSet& taps) {
  const int dims = taps.dims();
  const int rad = taps.radius();
  const std::vector<Tap>& ts = taps.taps();
  if (ts.size() != std::size_t(1 + 2 * dims * rad)) return false;
  std::size_t t = 0;
  const auto next_is = [&](std::int64_t dx, std::int64_t dy, std::int64_t dz) {
    const Tap& tap = ts[t++];
    return tap.dx == dx && tap.dy == dy && tap.dz == dz;
  };
  if (!next_is(0, 0, 0)) return false;
  for (int i = 1; i <= rad; ++i) {
    if (!next_is(-i, 0, 0) || !next_is(i, 0, 0) || !next_is(0, -i, 0) ||
        !next_is(0, i, 0)) {
      return false;
    }
    if (dims == 3 && (!next_is(0, 0, -i) || !next_is(0, 0, i))) return false;
  }
  return true;
}

bool matches_canonical_box(const TapSet& taps) {
  const int dims = taps.dims();
  const int rad = taps.radius();
  const std::vector<Tap>& ts = taps.taps();
  const std::int64_t side = 2 * std::int64_t(rad) + 1;
  std::int64_t expect = side * side;
  if (dims == 3) expect *= side;
  if (std::int64_t(ts.size()) != expect) return false;
  std::size_t t = 0;
  const int zr = dims == 3 ? rad : 0;
  for (int dz = -zr; dz <= zr; ++dz) {
    for (int dy = -rad; dy <= rad; ++dy) {
      for (int dx = -rad; dx <= rad; ++dx) {
        const Tap& tap = ts[t++];
        if (tap.dx != dx || tap.dy != dy || tap.dz != dz) return false;
      }
    }
  }
  return true;
}

template <StencilShape Shape, int Rad, int Dims, int ParVec>
void KernelRegistry::add_entry() {
  SpecializedKernel k;
  k.shape = Shape;
  k.dims = Dims;
  k.radius = Rad;
  k.parvec = ParVec;
  if constexpr (Dims == 2) {
    k.run_2d = &run_specialized<Shape, Rad, 2, ParVec>;
  } else {
    k.run_3d = &run_specialized<Shape, Rad, 3, ParVec>;
  }
  // names_ is reserved to the envelope size up front, so the c_str()
  // stays stable for the registry's (process) lifetime.
  names_.push_back(std::string(stencil_shape_name(Shape)) + "_" +
                   std::to_string(Dims) + "d_r" + std::to_string(Rad) + "_v" +
                   std::to_string(ParVec));
  k.name = names_.back().c_str();
  entries_.push_back(k);
}

KernelRegistry::KernelRegistry() {
  constexpr std::size_t kEnvelopePoints = 64;
  entries_.reserve(kEnvelopePoints);
  names_.reserve(kEnvelopePoints);
#define FPGASTENCIL_REGISTER_KERNEL(SHAPE, RAD, DIMS, PARVEC) \
  add_entry<StencilShape::SHAPE, RAD, DIMS, PARVEC>();
  FPGASTENCIL_FOR_EACH_RADIUS_PARVEC(FPGASTENCIL_REGISTER_KERNEL, kStar, 2)
  FPGASTENCIL_FOR_EACH_RADIUS_PARVEC(FPGASTENCIL_REGISTER_KERNEL, kStar, 3)
  FPGASTENCIL_FOR_EACH_RADIUS_PARVEC(FPGASTENCIL_REGISTER_KERNEL, kBox, 2)
  FPGASTENCIL_FOR_EACH_RADIUS_PARVEC(FPGASTENCIL_REGISTER_KERNEL, kBox, 3)
#undef FPGASTENCIL_REGISTER_KERNEL
}

const KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry registry;
  return registry;
}

const SpecializedKernel* KernelRegistry::find(
    const TapSet& taps, const AcceleratorConfig& cfg) const {
  if (cfg.dims != taps.dims()) return nullptr;
  StencilShape shape;
  if (matches_canonical_star(taps)) {
    shape = StencilShape::kStar;
  } else if (matches_canonical_box(taps)) {
    shape = StencilShape::kBox;
  } else {
    return nullptr;  // custom tap order: interpreter territory
  }
  return lookup(shape, taps.dims(), taps.radius(), cfg.parvec);
}

const SpecializedKernel* KernelRegistry::lookup(StencilShape shape, int dims,
                                                int radius, int parvec) const {
  for (const SpecializedKernel& k : entries_) {
    if (k.shape == shape && k.dims == dims && k.radius == radius &&
        k.parvec == parvec) {
      return &k;
    }
  }
  return nullptr;
}

}  // namespace fpga_stencil
