#include "stencil/star_stencil.hpp"

#include <span>

#include "common/rng.hpp"

namespace fpga_stencil {

NeighborOffset direction_offset(Direction d, std::int64_t distance) {
  switch (d) {
    case Direction::kWest:
      return {-distance, 0, 0};
    case Direction::kEast:
      return {distance, 0, 0};
    case Direction::kSouth:
      return {0, -distance, 0};
    case Direction::kNorth:
      return {0, distance, 0};
    case Direction::kBelow:
      return {0, 0, -distance};
    case Direction::kAbove:
      return {0, 0, distance};
  }
  FPGASTENCIL_ASSERT(false, "unknown direction");
}

StarStencil::StarStencil(int dims, int radius, float center_coeff,
                         std::vector<std::vector<float>> neighbor_coeffs)
    : dims_(dims),
      radius_(radius),
      center_(center_coeff),
      coeffs_(std::move(neighbor_coeffs)) {
  FPGASTENCIL_EXPECT(dims == 2 || dims == 3, "stencil must be 2D or 3D");
  FPGASTENCIL_EXPECT(radius >= 1, "stencil radius must be >= 1");
  FPGASTENCIL_EXPECT(coeffs_.size() == static_cast<std::size_t>(2 * dims),
                     "need one coefficient row per direction");
  for (const auto& row : coeffs_) {
    FPGASTENCIL_EXPECT(row.size() == static_cast<std::size_t>(radius),
                       "need one coefficient per distance 1..radius");
  }
}

StarStencil StarStencil::make_benchmark(int dims, int radius,
                                        std::uint64_t seed) {
  FPGASTENCIL_EXPECT(dims == 2 || dims == 3, "stencil must be 2D or 3D");
  FPGASTENCIL_EXPECT(radius >= 1, "stencil radius must be >= 1");
  // Draw raw positive weights, then normalize so center + sum(neighbors) = 1.
  // This keeps iterated application bounded (a convex combination of clamped
  // values) for arbitrarily many time steps.
  SplitMix64 rng(seed);
  const int ndir = 2 * dims;
  std::vector<std::vector<float>> raw(static_cast<std::size_t>(ndir));
  double total = 2.0;  // raw weight of the center term
  for (auto& row : raw) {
    row.resize(static_cast<std::size_t>(radius));
    for (float& c : row) {
      c = rng.next_float(0.05f, 1.0f);
      total += c;
    }
  }
  const float scale = static_cast<float>(1.0 / total);
  for (auto& row : raw) {
    for (float& c : row) c *= scale;
  }
  return StarStencil(dims, radius, 2.0f * scale, std::move(raw));
}

StarStencil StarStencil::make_shared_coefficient(int dims, int radius) {
  FPGASTENCIL_EXPECT(dims == 2 || dims == 3, "stencil must be 2D or 3D");
  const int ndir = 2 * dims;
  // One coefficient per direction, shared across distances, normalized as
  // in make_benchmark.
  const double total = 2.0 + ndir * radius * 0.5;
  const float c = static_cast<float>(0.5 / total);
  std::vector<std::vector<float>> rows(
      static_cast<std::size_t>(ndir),
      std::vector<float>(static_cast<std::size_t>(radius), c));
  return StarStencil(dims, radius, static_cast<float>(2.0 / total),
                     std::move(rows));
}

float StarStencil::coeff(Direction d, int i) const {
  FPGASTENCIL_EXPECT(i >= 1 && i <= radius_, "distance out of range");
  const auto di = static_cast<std::size_t>(d);
  FPGASTENCIL_EXPECT(di < coeffs_.size(), "direction out of range for dims");
  return coeffs_[di][static_cast<std::size_t>(i - 1)];
}

float StarStencil::apply_point(const Grid2D<float>& g, std::int64_t x,
                               std::int64_t y) const {
  FPGASTENCIL_ASSERT(dims_ == 2, "2D apply on a 3D stencil");
  float acc = center_ * g.at(x, y);
  for (int i = 1; i <= radius_; ++i) {
    for (Direction d : kDirections2D) {
      const NeighborOffset o = direction_offset(d, i);
      acc += coeff(d, i) * g.at_clamped(x + o.dx, y + o.dy);
    }
  }
  return acc;
}

float StarStencil::apply_point(const Grid3D<float>& g, std::int64_t x,
                               std::int64_t y, std::int64_t z) const {
  FPGASTENCIL_ASSERT(dims_ == 3, "3D apply on a 2D stencil");
  float acc = center_ * g.at(x, y, z);
  for (int i = 1; i <= radius_; ++i) {
    for (Direction d : kDirections3D) {
      const NeighborOffset o = direction_offset(d, i);
      acc += coeff(d, i) * g.at_clamped(x + o.dx, y + o.dy, z + o.dz);
    }
  }
  return acc;
}

TapSet StarStencil::to_taps() const {
  std::vector<Tap> taps;
  taps.reserve(1 + std::size_t(direction_count()) * std::size_t(radius_));
  taps.push_back(Tap{0, 0, 0, center_});
  const auto dirs2 = kDirections2D;
  const auto dirs3 = kDirections3D;
  const std::span<const Direction> dirs =
      dims_ == 2 ? std::span<const Direction>(dirs2)
                 : std::span<const Direction>(dirs3);
  for (int i = 1; i <= radius_; ++i) {
    for (Direction d : dirs) {
      const NeighborOffset o = direction_offset(d, i);
      taps.push_back(Tap{o.dx, o.dy, o.dz, coeff(d, i)});
    }
  }
  return TapSet(dims_, radius_, std::move(taps));
}

}  // namespace fpga_stencil
