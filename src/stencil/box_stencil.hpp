// Box (cubic) stencils: the full (2r+1)^dims neighborhood.
//
// The paper evaluates star stencils, but the architecture generalizes (its
// related work [19] runs a first-order 3D *cubic* stencil on the same kind
// of pipeline). Box stencils stress the design differently: tap count --
// and hence DSP demand -- grows as (2r+1)^dims instead of 2*dims*r+1, so
// the DSP budget collapses the feasible parallelism almost immediately
// (see bench/extension_box_stencil).
//
// Taps are ordered row-major over (dz, dy, dx) ascending; that order is the
// accumulation order (bit-exactness contract, same as everywhere else).
#pragma once

#include <cstdint>

#include "stencil/tap_set.hpp"

namespace fpga_stencil {

/// Full box neighborhood with deterministic per-tap coefficients whose sum
/// is 1 (numerically stable under iteration). `seed` varies coefficients.
TapSet make_box_stencil(int dims, int radius, std::uint64_t seed = 42);

/// The related-work [19] comparison case: a first-order 3D cubic (27-point)
/// stencil with one shared coefficient for all neighbors.
TapSet make_cubic27_stencil();

/// Number of taps in a box stencil: (2r+1)^dims.
std::int64_t box_tap_count(int dims, int radius);

}  // namespace fpga_stencil
