// Star-shaped stencil definitions (paper eq. 1).
//
// A star stencil of radius `rad` updates each cell from the cell itself and
// its neighbors at distances 1..rad along each axis:
//
//   f_c(t+1) = cc*f_c(t) + sum_{i=1..rad} sum_{d in directions} c_{d,i} * f_{d,i}(t)
//
// The paper's implementation keeps one coefficient per *direction* but,
// because floating-point reordering is disallowed, treats every term as a
// distinct multiply -- i.e. it optimizes the worst case where every
// neighbor has its own coefficient. We therefore store one coefficient per
// (direction, distance) pair.
//
// Floating-point evaluation order is part of this type's contract: every
// executor in the library (naive reference, FPGA pipeline simulator, CPU
// baseline in "exact" mode, generated OpenCL source) accumulates terms in
// the identical sequence defined by `Direction` order for each distance
// i = 1..rad, after the center term. This is what makes bit-exact
// cross-validation between the architecture simulator and the reference
// possible.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/expect.hpp"
#include "grid/grid.hpp"
#include "stencil/tap_set.hpp"

namespace fpga_stencil {

/// Axis directions in canonical accumulation order.
/// 2D stencils use West..North; 3D adds Below/Above (z axis).
enum class Direction : std::uint8_t {
  kWest = 0,   ///< x - i
  kEast = 1,   ///< x + i
  kSouth = 2,  ///< y - i
  kNorth = 3,  ///< y + i
  kBelow = 4,  ///< z - i
  kAbove = 5,  ///< z + i
};

inline constexpr std::array<Direction, 4> kDirections2D = {
    Direction::kWest, Direction::kEast, Direction::kSouth, Direction::kNorth};
inline constexpr std::array<Direction, 6> kDirections3D = {
    Direction::kWest,  Direction::kEast,  Direction::kSouth,
    Direction::kNorth, Direction::kBelow, Direction::kAbove};

/// Coefficient offset (dx, dy, dz) for direction `d` at distance `i`.
struct NeighborOffset {
  std::int64_t dx = 0;
  std::int64_t dy = 0;
  std::int64_t dz = 0;
};

NeighborOffset direction_offset(Direction d, std::int64_t distance);

/// Star stencil of parameterizable radius in 2 or 3 dimensions.
class StarStencil {
 public:
  /// Builds a stencil with explicitly given coefficients.
  /// `neighbor_coeffs[d][i-1]` is the coefficient for direction d at
  /// distance i; d indexes the canonical direction order.
  StarStencil(int dims, int radius, float center_coeff,
              std::vector<std::vector<float>> neighbor_coeffs);

  /// Builds the benchmark stencil used throughout the reproduction:
  /// deterministic per-(direction,distance) coefficients whose total sum is
  /// 1, so iterated application stays numerically bounded. `seed` varies
  /// the coefficients for property tests.
  static StarStencil make_benchmark(int dims, int radius,
                                    std::uint64_t seed = 42);

  /// The paper's comparison case: one shared coefficient per direction
  /// (still evaluated as distinct multiplies).
  static StarStencil make_shared_coefficient(int dims, int radius);

  [[nodiscard]] int dims() const { return dims_; }
  [[nodiscard]] int radius() const { return radius_; }
  [[nodiscard]] float center() const { return center_; }

  /// Coefficient for `d` at distance `i` (1-based, i <= radius).
  [[nodiscard]] float coeff(Direction d, int i) const;

  /// Number of directions (4 in 2D, 6 in 3D).
  [[nodiscard]] int direction_count() const { return 2 * dims_; }

  /// Applies the stencil at one 2D point with clamped boundaries, in the
  /// canonical accumulation order. Bit-exact contract anchor.
  [[nodiscard]] float apply_point(const Grid2D<float>& g, std::int64_t x,
                                  std::int64_t y) const;

  /// Applies the stencil at one 3D point with clamped boundaries.
  [[nodiscard]] float apply_point(const Grid3D<float>& g, std::int64_t x,
                                  std::int64_t y, std::int64_t z) const;

  /// Lowers to the ordered TapSet the generic pipeline executes: center
  /// first, then distances 1..radius in canonical direction order --
  /// exactly apply_point's accumulation order, so TapSet execution is
  /// bit-exact with this class.
  [[nodiscard]] TapSet to_taps() const;

 private:
  int dims_;
  int radius_;
  float center_;
  /// Indexed [direction][distance-1].
  std::vector<std::vector<float>> coeffs_;
};

}  // namespace fpga_stencil
