// Naive reference executors for star stencils with clamped boundaries.
//
// These are the golden implementations every optimized path is validated
// against. They iterate cells in plain row-major order and evaluate each
// point via StarStencil::apply_point, i.e. in the canonical accumulation
// order, so bit-exact comparison against the FPGA pipeline simulator is
// meaningful.
#pragma once

#include <cstdint>

#include "grid/grid.hpp"
#include "stencil/star_stencil.hpp"
#include "stencil/tap_set.hpp"

namespace fpga_stencil {

/// One time step: out(x,y) = stencil applied to in at (x,y).
void reference_step(const StarStencil& stencil, const Grid2D<float>& in,
                    Grid2D<float>& out);
void reference_step(const StarStencil& stencil, const Grid3D<float>& in,
                    Grid3D<float>& out);

/// `iterations` time steps with internal ping-pong; `grid` holds the final
/// state on return.
void reference_run(const StarStencil& stencil, Grid2D<float>& grid,
                   int iterations);
void reference_run(const StarStencil& stencil, Grid3D<float>& grid,
                   int iterations);

// --- generic tap-set executors (box stencils, custom shapes) ---
// Accumulation strictly in tap order, every out-of-grid tap resolved by
// the tap set's BoundaryCondition (clamp / periodic / reflective /
// dirichlet; docs/PROGRAMS.md). With the default clamp these are
// bit-exact with the star overloads for StarStencil::to_taps(). These are
// the golden model every boundary kind of the pipeline simulator is
// validated against (tests/boundary_test.cpp).

float apply_taps(const TapSet& taps, const Grid2D<float>& g, std::int64_t x,
                 std::int64_t y);
float apply_taps(const TapSet& taps, const Grid3D<float>& g, std::int64_t x,
                 std::int64_t y, std::int64_t z);

void reference_step(const TapSet& taps, const Grid2D<float>& in,
                    Grid2D<float>& out);
void reference_step(const TapSet& taps, const Grid3D<float>& in,
                    Grid3D<float>& out);

void reference_run(const TapSet& taps, Grid2D<float>& grid, int iterations);
void reference_run(const TapSet& taps, Grid3D<float>& grid, int iterations);

}  // namespace fpga_stencil
