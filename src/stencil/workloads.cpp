#include "stencil/workloads.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace fpga_stencil {

void add_gaussian(Grid2D<float>& g, double cx, double cy, double sigma,
                  float amplitude) {
  FPGASTENCIL_EXPECT(sigma > 0, "sigma must be positive");
  const double inv = 1.0 / (2.0 * sigma * sigma);
  for (std::int64_t y = 0; y < g.ny(); ++y) {
    for (std::int64_t x = 0; x < g.nx(); ++x) {
      const double dx = double(x) - cx;
      const double dy = double(y) - cy;
      g.at(x, y) += amplitude *
                    static_cast<float>(std::exp(-(dx * dx + dy * dy) * inv));
    }
  }
}

void add_gaussian(Grid3D<float>& g, double cx, double cy, double cz,
                  double sigma, float amplitude) {
  FPGASTENCIL_EXPECT(sigma > 0, "sigma must be positive");
  const double inv = 1.0 / (2.0 * sigma * sigma);
  for (std::int64_t z = 0; z < g.nz(); ++z) {
    for (std::int64_t y = 0; y < g.ny(); ++y) {
      for (std::int64_t x = 0; x < g.nx(); ++x) {
        const double dx = double(x) - cx;
        const double dy = double(y) - cy;
        const double dz = double(z) - cz;
        g.at(x, y, z) +=
            amplitude * static_cast<float>(
                            std::exp(-(dx * dx + dy * dy + dz * dz) * inv));
      }
    }
  }
}

void add_plane_wave(Grid2D<float>& g, double kx, double ky,
                    float amplitude) {
  for (std::int64_t y = 0; y < g.ny(); ++y) {
    for (std::int64_t x = 0; x < g.nx(); ++x) {
      g.at(x, y) += amplitude * static_cast<float>(
                                    std::sin(kx * double(x) + ky * double(y)));
    }
  }
}

void add_point_sources(Grid2D<float>& g, int count, float amplitude,
                       std::uint64_t seed) {
  FPGASTENCIL_EXPECT(count >= 0, "count must be non-negative");
  SplitMix64 rng(seed);
  for (int i = 0; i < count; ++i) {
    const std::int64_t x = std::int64_t(rng.next_below(std::uint64_t(g.nx())));
    const std::int64_t y = std::int64_t(rng.next_below(std::uint64_t(g.ny())));
    g.at(x, y) += amplitude;
  }
}

void add_point_sources(Grid3D<float>& g, int count, float amplitude,
                       std::uint64_t seed) {
  FPGASTENCIL_EXPECT(count >= 0, "count must be non-negative");
  SplitMix64 rng(seed);
  for (int i = 0; i < count; ++i) {
    const std::int64_t x = std::int64_t(rng.next_below(std::uint64_t(g.nx())));
    const std::int64_t y = std::int64_t(rng.next_below(std::uint64_t(g.ny())));
    const std::int64_t z = std::int64_t(rng.next_below(std::uint64_t(g.nz())));
    g.at(x, y, z) += amplitude;
  }
}

namespace {

template <typename Grid>
FieldStats stats_of(const Grid& g) {
  FieldStats s;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const float v = g.data()[i];
    s.total += v;
    s.peak = std::max(s.peak, v);
    s.l2 += double(v) * double(v);
  }
  s.l2 = std::sqrt(s.l2);
  return s;
}

}  // namespace

FieldStats field_stats(const Grid2D<float>& g) { return stats_of(g); }
FieldStats field_stats(const Grid3D<float>& g) { return stats_of(g); }

}  // namespace fpga_stencil
