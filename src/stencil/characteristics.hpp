// Computational characteristics of star stencils (paper Table I) and the
// DSP-cost arithmetic of Section V.A.
#pragma once

#include <cstdint>

#include "stencil/tap_set.hpp"

namespace fpga_stencil {

/// Value precision of the stencil data. The paper evaluates float32; the
/// float64 variant models the conclusion-adjacent what-if: doubled memory
/// traffic and ~4 DSPs per fused multiply-add on Arria-10-class devices
/// (double precision is emulated from 27x27 multipliers plus logic).
enum class ValuePrecision : std::uint8_t { kFloat32, kFloat64 };

/// Bytes per value for a precision.
constexpr std::int64_t bytes_per_value(ValuePrecision p) {
  return p == ValuePrecision::kFloat32 ? 4 : 8;
}

/// DSP blocks per fused multiply-add for a precision (Arria-10-class).
constexpr std::int64_t dsps_per_fma(ValuePrecision p) {
  return p == ValuePrecision::kFloat32 ? 1 : 4;
}

/// Per-cell-update cost of a star stencil, assuming distinct coefficients
/// (the paper's worst case) and full spatial reuse for the byte count.
struct StencilCharacteristics {
  int dims = 0;
  int radius = 0;
  std::int64_t fmul_per_cell = 0;   ///< floating multiplies per update
  std::int64_t fadd_per_cell = 0;   ///< floating adds per update
  std::int64_t flop_per_cell = 0;   ///< fmul + fadd (paper: 8r+1 / 12r+1)
  std::int64_t bytes_per_cell = 0;  ///< 1 float read + 1 float write = 8
  double flop_per_byte = 0.0;       ///< Table I's FLOP/Byte column

  /// DSPs per cell update on Arria-10-class devices where one DSP does one
  /// FMA: every multiply fuses with the following add except the last, so
  /// 4*rad+1 (2D) / 6*rad+1 (3D). Paper Section V.A.
  std::int64_t dsp_per_cell = 0;

  /// DSPs per cell update when coefficients are shared per direction: the
  /// multiply count drops but the adds remain, saving exactly one DSP
  /// (Section V.A, shared-coefficient remark).
  std::int64_t dsp_per_cell_shared = 0;

  /// Border handling of the characterized stencil. Clamp (the paper's
  /// generated code and the default) costs nothing extra; the other kinds
  /// run on the generic interpreter, not the specialized kernels, which
  /// is a dispatch fact, not a FLOP-count change -- per-cell arithmetic
  /// is identical for every kind except dirichlet's constant ghost reads.
  BoundaryCondition boundary;
};

/// Closed-form characteristics for a star stencil.
StencilCharacteristics stencil_characteristics(
    int dims, int radius, ValuePrecision precision = ValuePrecision::kFloat32);

}  // namespace fpga_stencil
