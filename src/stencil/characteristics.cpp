#include "stencil/characteristics.hpp"

#include "common/expect.hpp"

namespace fpga_stencil {

StencilCharacteristics stencil_characteristics(int dims, int radius,
                                               ValuePrecision precision) {
  FPGASTENCIL_EXPECT(dims == 2 || dims == 3, "stencil must be 2D or 3D");
  FPGASTENCIL_EXPECT(radius >= 1, "stencil radius must be >= 1");
  StencilCharacteristics c;
  c.dims = dims;
  c.radius = radius;
  const std::int64_t ndir = 2 * dims;  // 4 in 2D, 6 in 3D
  c.fmul_per_cell = ndir * radius + 1;
  c.fadd_per_cell = ndir * radius;
  c.flop_per_cell = c.fmul_per_cell + c.fadd_per_cell;
  // One read + one write per cell update with full spatial reuse.
  c.bytes_per_cell = 2 * bytes_per_value(precision);
  c.flop_per_byte =
      static_cast<double>(c.flop_per_cell) / static_cast<double>(c.bytes_per_cell);
  // Every multiply fuses with the following add except the last one; each
  // fused op costs dsps_per_fma for the precision.
  c.dsp_per_cell = (ndir * radius + 1) * dsps_per_fma(precision);
  c.dsp_per_cell_shared = c.dsp_per_cell - dsps_per_fma(precision);
  return c;
}

}  // namespace fpga_stencil
