#include "stencil/tap_set.hpp"

#include <algorithm>

namespace fpga_stencil {

std::string BoundaryCondition::describe() const {
  if (kind != BoundaryKind::dirichlet) return boundary_kind_name(kind);
  return std::string("dirichlet(") + std::to_string(value) + ")";
}

TapSet::TapSet(int dims, int radius, std::vector<Tap> taps,
               BoundaryCondition boundary)
    : dims_(dims), radius_(radius), taps_(std::move(taps)),
      boundary_(boundary) {
  FPGASTENCIL_EXPECT(dims == 2 || dims == 3, "tap set must be 2D or 3D");
  FPGASTENCIL_EXPECT(radius >= 1, "radius must be >= 1");
  FPGASTENCIL_EXPECT(!taps_.empty(), "tap set must not be empty");
  if (boundary_.kind != BoundaryKind::dirichlet) boundary_.value = 0.0f;
  for (const Tap& t : taps_) {
    FPGASTENCIL_EXPECT(
        std::abs(t.dx) <= radius && std::abs(t.dy) <= radius &&
            std::abs(t.dz) <= radius,
        "tap offset exceeds the declared radius");
    if (dims == 2) {
      FPGASTENCIL_EXPECT(t.dz == 0, "2D tap set cannot have z offsets");
    }
  }
}

std::int64_t TapSet::flat_offset(const Tap& t, std::int64_t bsize_x,
                                 std::int64_t row_cells) const {
  if (dims_ == 2) return t.dy * bsize_x + t.dx;
  return t.dz * row_cells + t.dy * bsize_x + t.dx;
}

std::int64_t TapSet::min_flat_offset(std::int64_t bsize_x,
                                     std::int64_t row_cells) const {
  std::int64_t m = 0;
  for (const Tap& t : taps_) {
    m = std::min(m, flat_offset(t, bsize_x, row_cells));
  }
  return m;
}

std::int64_t TapSet::max_flat_offset(std::int64_t bsize_x,
                                     std::int64_t row_cells) const {
  std::int64_t m = 0;
  for (const Tap& t : taps_) {
    m = std::max(m, flat_offset(t, bsize_x, row_cells));
  }
  return m;
}

std::int64_t TapSet::max_abs_flat_offset(std::int64_t bsize_x,
                                         std::int64_t row_cells) const {
  std::int64_t m = 0;
  for (const Tap& t : taps_) {
    const std::int64_t reach = std::abs(t.dx) + std::abs(t.dy) * bsize_x +
                               std::abs(t.dz) * row_cells;
    m = std::max(m, reach);
  }
  return m;
}

double TapSet::coefficient_sum() const {
  double s = 0.0;
  for (const Tap& t : taps_) s += t.coeff;
  return s;
}

}  // namespace fpga_stencil
