#include "stencil/box_stencil.hpp"

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace fpga_stencil {

std::int64_t box_tap_count(int dims, int radius) {
  FPGASTENCIL_EXPECT(dims == 2 || dims == 3, "box stencil must be 2D or 3D");
  FPGASTENCIL_EXPECT(radius >= 1, "radius must be >= 1");
  const std::int64_t side = 2 * std::int64_t(radius) + 1;
  return dims == 2 ? side * side : side * side * side;
}

TapSet make_box_stencil(int dims, int radius, std::uint64_t seed) {
  const std::int64_t count = box_tap_count(dims, radius);
  SplitMix64 rng(seed);

  std::vector<Tap> taps;
  taps.reserve(static_cast<std::size_t>(count));
  double total = 0.0;
  const int zlo = dims == 3 ? -radius : 0;
  const int zhi = dims == 3 ? radius : 0;
  for (int dz = zlo; dz <= zhi; ++dz) {
    for (int dy = -radius; dy <= radius; ++dy) {
      for (int dx = -radius; dx <= radius; ++dx) {
        // The center gets extra raw weight so it dominates, like a
        // smoothing kernel.
        const bool center = dx == 0 && dy == 0 && dz == 0;
        const float w = center ? 2.0f : rng.next_float(0.05f, 1.0f);
        taps.push_back(Tap{dx, dy, dz, w});
        total += w;
      }
    }
  }
  const float scale = static_cast<float>(1.0 / total);
  for (Tap& t : taps) t.coeff *= scale;
  return TapSet(dims, radius, std::move(taps));
}

TapSet make_cubic27_stencil() {
  std::vector<Tap> taps;
  taps.reserve(27);
  const float neighbor = 0.5f / 26.0f;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const bool center = dx == 0 && dy == 0 && dz == 0;
        taps.push_back(Tap{dx, dy, dz, center ? 0.5f : neighbor});
      }
    }
  }
  return TapSet(3, 1, std::move(taps));
}

}  // namespace fpga_stencil
