// Accelerator configuration: the paper's performance knobs.
//
//   - radius  : stencil radius (compile-time parameter in the paper; a
//               plain field here, since our "synthesis" is instantaneous)
//   - bsize   : spatial block size (x, and y for 3D) -- paper Section V.A
//   - parvec  : vector width, consecutive x-cells updated per cycle
//   - partime : degree of temporal parallelism = number of chained PEs
//
// Derived quantities follow the paper exactly:
//   halo       = partime * radius                  (overlapped blocking)
//   csize      = bsize - 2 * halo                  (eq. 2)
//   SR size    = 2*rad*bsize_x            + parvec (eq. 7, 2D)
//                2*rad*bsize_x*bsize_y    + parvec (eq. 7, 3D)
#pragma once

#include <cstdint>
#include <string>

#include "common/expect.hpp"
#include "common/math_util.hpp"

namespace fpga_stencil {

class Telemetry;  // telemetry/telemetry.hpp; pointer-only here

struct AcceleratorConfig {
  int dims = 2;              ///< 2 or 3
  int radius = 1;            ///< stencil radius ("order" in the paper)
  std::int64_t bsize_x = 0;  ///< spatial block width (vectorized dimension)
  std::int64_t bsize_y = 1;  ///< spatial block height, 3D only (1 for 2D)
  int parvec = 1;            ///< vector width (cells per cycle per PE)
  int partime = 1;           ///< temporal parallelism (chained PEs)

  /// Stream-dimension rows (2D) / planes (3D) of lag per pipeline stage.
  /// 0 means "auto" = radius, which is exact for star stencils; generic
  /// tap sets whose farthest tap reaches past `radius` whole rows (e.g.
  /// box-stencil corners) need radius + 1. The accelerator sets this from
  /// the tap set.
  int stage_lag = 0;

  /// Dispatch gate for the compile-time-specialized kernel library
  /// (src/kernels). When true (the default), stream_block resolves the
  /// tap set against the KernelRegistry and runs the specialized kernel
  /// if the configuration is inside the envelope; when false -- or for
  /// any off-envelope configuration -- the scalar interpreter runs.
  /// Never changes results (specialized kernels are bit-exact with the
  /// interpreter); exists so benchmarks and tests can pin the
  /// interpreter as the baseline/oracle.
  bool use_specialized_kernels = true;

  /// Opt-in observability hook, honored by every execution layer
  /// (StencilAccelerator, run_concurrent, run_block_parallel,
  /// run_resilient, MultiFpgaCluster). Null disables all
  /// instrumentation; the pointee
  /// must outlive the runs. Not a performance knob: it never changes what
  /// is computed.
  Telemetry* telemetry = nullptr;

  [[nodiscard]] int effective_stage_lag() const {
    return stage_lag > 0 ? stage_lag : radius;
  }

  /// Warm-up/drain rows of the streamed dimension per pass: the total
  /// pipeline lag of the PE chain.
  [[nodiscard]] std::int64_t stream_drain() const {
    return std::int64_t(partime) * effective_stage_lag();
  }

  /// Overlapped-blocking halo per side of each blocked dimension.
  [[nodiscard]] std::int64_t halo() const {
    return std::int64_t(partime) * radius;
  }

  /// Valid ("compute") block extent, paper eq. (2).
  [[nodiscard]] std::int64_t csize_x() const { return bsize_x - 2 * halo(); }
  [[nodiscard]] std::int64_t csize_y() const {
    return dims == 3 ? bsize_y - 2 * halo() : 1;
  }

  /// Cells per shift-register "row": one x-row in 2D, one z-plane in 3D.
  /// This is the unit the streaming dimension advances by.
  [[nodiscard]] std::int64_t row_cells() const {
    return dims == 3 ? bsize_x * bsize_y : bsize_x;
  }

  /// Shift-register size in cells, paper eq. (7).
  [[nodiscard]] std::int64_t shift_register_cells() const {
    return 2 * std::int64_t(radius) * row_cells() + parvec;
  }

  /// Cell updates retired per cycle across the whole PE chain.
  [[nodiscard]] std::int64_t updates_per_cycle() const {
    return std::int64_t(parvec) * partime;
  }

  /// Structural validity (block large enough for the halo, vectorization
  /// divides the block, positive knobs). Throws ConfigError on violation.
  void validate() const {
    FPGASTENCIL_EXPECT(dims == 2 || dims == 3, "dims must be 2 or 3");
    FPGASTENCIL_EXPECT(radius >= 1, "radius must be >= 1");
    FPGASTENCIL_EXPECT(parvec >= 1, "parvec must be >= 1");
    FPGASTENCIL_EXPECT(partime >= 1, "partime must be >= 1");
    FPGASTENCIL_EXPECT(bsize_x > 0, "bsize_x must be positive");
    FPGASTENCIL_EXPECT(is_multiple(bsize_x, std::int64_t(parvec)),
                       "bsize_x must be a multiple of parvec");
    FPGASTENCIL_EXPECT(stage_lag >= 0, "stage_lag must be non-negative");
    FPGASTENCIL_EXPECT(csize_x() > 0,
                       "block too small: bsize_x must exceed 2*partime*rad");
    if (dims == 3) {
      FPGASTENCIL_EXPECT(bsize_y > 1, "3D blocks need bsize_y > 1");
      FPGASTENCIL_EXPECT(csize_y() > 0,
                         "block too small: bsize_y must exceed 2*partime*rad");
    } else {
      FPGASTENCIL_EXPECT(bsize_y == 1, "2D blocks must have bsize_y == 1");
    }
  }

  /// The paper's external-memory alignment rule, eq. (6):
  /// (partime * rad) mod 4 == 0, and parvec a multiple of two (memory port
  /// width restriction). The tuner enforces this; the simulator does not
  /// require it.
  [[nodiscard]] bool meets_alignment_rule() const {
    return is_multiple(halo(), std::int64_t(4)) && parvec % 2 == 0;
  }

  [[nodiscard]] std::string describe() const {
    std::string s = std::to_string(dims) + "D rad=" + std::to_string(radius) +
                    " bsize=" + std::to_string(bsize_x);
    if (dims == 3) s += "x" + std::to_string(bsize_y);
    s += " parvec=" + std::to_string(parvec) +
         " partime=" + std::to_string(partime);
    // A resolved lag equal to the radius is the star-stencil default and
    // stays implicit; anything else (box-stencil corners, explicit
    // overrides) must show up so job labels are unambiguous.
    if (stage_lag != 0 && stage_lag != radius) {
      s += " lag=" + std::to_string(stage_lag);
    }
    return s;
  }
};

/// Block decomposition of a concrete grid under a configuration, with the
/// exact streamed-vs-valid cell accounting used by both the functional
/// simulator and the performance model.
struct BlockingPlan {
  AcceleratorConfig config;
  std::int64_t nx = 0, ny = 0, nz = 1;  ///< grid extents (nz==1 for 2D)
  std::int64_t blocks_x = 0;            ///< ceil(nx / csize_x)
  std::int64_t blocks_y = 1;            ///< ceil(ny / csize_y), 3D only
  std::int64_t stream_extent = 0;       ///< rows (2D) / planes (3D) streamed
                                        ///< per pass incl. drain filler
  std::int64_t cells_streamed_per_pass = 0;
  std::int64_t valid_cells = 0;      ///< nx*ny(*nz): real grid cells
  std::int64_t cells_streamed = 0;   ///< over all passes
  std::int64_t vectors_streamed = 0; ///< cells_streamed / parvec = cycles
                                     ///< in the zero-stall pipeline model

  /// Redundancy factor: streamed / valid >= 1. The paper's "redundant
  /// computation to support overlapped blocking".
  [[nodiscard]] double redundancy() const {
    return double(cells_streamed) / double(valid_cells);
  }

  /// Blocks per pass. Each is an independent unit of work (the overlap
  /// halo decouples them), which is what the block-parallel backend
  /// schedules over.
  [[nodiscard]] std::int64_t total_blocks() const {
    return blocks_x * blocks_y;
  }
};

/// One block of a BlockingPlan, resolved to grid coordinates: where the
/// streamed window starts (halo included, so origins can be negative)
/// and where the valid compute region ends. Every executor enumerates
/// blocks through this so they agree on the decomposition cell-for-cell.
struct BlockExtent {
  std::int64_t index = 0;        ///< flat block index: by * blocks_x + bx
  std::int64_t bx = 0, by = 0;   ///< block coordinates (by == 0 for 2D)
  std::int64_t x0 = 0;           ///< global x of block-local 0 (may be < 0)
  std::int64_t y0 = 0;           ///< global y of block-local 0, 3D only
  std::int64_t valid_x_end = 0;  ///< exclusive global end of compute region
  std::int64_t valid_y_end = 0;  ///< 3D only (unused for 2D)
};

/// Resolves flat block `index` (0 .. total_blocks()-1, x fastest) of the
/// plan. The last block of each dimension is clamped to the grid, exactly
/// as on the real accelerator (partial final block, wasted lanes).
BlockExtent block_extent(const BlockingPlan& plan, std::int64_t index);

/// Builds the plan; validates that the grid is compatible (positive sizes).
/// Grids that are not multiples of csize are allowed: the final block is
/// partially wasted, exactly as on the real accelerator.
BlockingPlan make_blocking_plan(const AcceleratorConfig& cfg, std::int64_t nx,
                                std::int64_t ny, std::int64_t nz = 1);

}  // namespace fpga_stencil
