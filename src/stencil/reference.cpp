#include "stencil/reference.hpp"

#include <utility>

namespace fpga_stencil {

void reference_step(const StarStencil& stencil, const Grid2D<float>& in,
                    Grid2D<float>& out) {
  FPGASTENCIL_EXPECT(in.nx() == out.nx() && in.ny() == out.ny(),
                     "in/out shapes differ");
  for (std::int64_t y = 0; y < in.ny(); ++y) {
    for (std::int64_t x = 0; x < in.nx(); ++x) {
      out.at(x, y) = stencil.apply_point(in, x, y);
    }
  }
}

void reference_step(const StarStencil& stencil, const Grid3D<float>& in,
                    Grid3D<float>& out) {
  FPGASTENCIL_EXPECT(
      in.nx() == out.nx() && in.ny() == out.ny() && in.nz() == out.nz(),
      "in/out shapes differ");
  for (std::int64_t z = 0; z < in.nz(); ++z) {
    for (std::int64_t y = 0; y < in.ny(); ++y) {
      for (std::int64_t x = 0; x < in.nx(); ++x) {
        out.at(x, y, z) = stencil.apply_point(in, x, y, z);
      }
    }
  }
}

void reference_run(const StarStencil& stencil, Grid2D<float>& grid,
                   int iterations) {
  Grid2D<float> scratch(grid.nx(), grid.ny());
  for (int t = 0; t < iterations; ++t) {
    reference_step(stencil, grid, scratch);
    std::swap(grid, scratch);
  }
}

void reference_run(const StarStencil& stencil, Grid3D<float>& grid,
                   int iterations) {
  Grid3D<float> scratch(grid.nx(), grid.ny(), grid.nz());
  for (int t = 0; t < iterations; ++t) {
    reference_step(stencil, grid, scratch);
    std::swap(grid, scratch);
  }
}

// --- generic tap-set executors ---

namespace {

/// Modular wrap into [0, n). Offsets are bounded by the radius, so one
/// extra modulus is enough even for i in [-rad, n-1+rad] with tiny n.
std::int64_t wrap_index(std::int64_t i, std::int64_t n) {
  const std::int64_t m = i % n;
  return m < 0 ? m + n : m;
}

/// Mirror about the boundary cell: -k -> k, n-1+k -> n-1-k. Single
/// reflection; callers validate extents > radius so one bounce lands
/// inside the grid (the same precondition the pipeline's shift-register
/// border remap needs).
std::int64_t mirror_index(std::int64_t i, std::int64_t n) {
  if (i < 0) return -i;
  if (i >= n) return 2 * n - 2 - i;
  return i;
}

bool in_range(std::int64_t i, std::int64_t n) { return i >= 0 && i < n; }

}  // namespace

float apply_taps(const TapSet& taps, const Grid2D<float>& g, std::int64_t x,
                 std::int64_t y) {
  FPGASTENCIL_EXPECT(taps.dims() == 2, "2D apply of a 3D tap set");
  const BoundaryCondition& bc = taps.boundary();
  if (bc.kind == BoundaryKind::reflective) {
    FPGASTENCIL_EXPECT(g.nx() > taps.radius() && g.ny() > taps.radius(),
                       "reflective boundaries need extents > radius");
  }
  float acc = 0.0f;
  bool first = true;
  for (const Tap& t : taps.taps()) {
    const std::int64_t tx = x + t.dx;
    const std::int64_t ty = y + t.dy;
    float v;
    switch (bc.kind) {
      case BoundaryKind::clamp:
        v = g.at_clamped(tx, ty);
        break;
      case BoundaryKind::periodic:
        v = g.at(wrap_index(tx, g.nx()), wrap_index(ty, g.ny()));
        break;
      case BoundaryKind::reflective:
        v = g.at(mirror_index(tx, g.nx()), mirror_index(ty, g.ny()));
        break;
      case BoundaryKind::dirichlet:
        v = (in_range(tx, g.nx()) && in_range(ty, g.ny())) ? g.at(tx, ty)
                                                           : bc.value;
        break;
      default:
        v = g.at_clamped(tx, ty);
        break;
    }
    if (first) {
      acc = t.coeff * v;
      first = false;
    } else {
      acc += t.coeff * v;
    }
  }
  return acc;
}

float apply_taps(const TapSet& taps, const Grid3D<float>& g, std::int64_t x,
                 std::int64_t y, std::int64_t z) {
  FPGASTENCIL_EXPECT(taps.dims() == 3, "3D apply of a 2D tap set");
  const BoundaryCondition& bc = taps.boundary();
  if (bc.kind == BoundaryKind::reflective) {
    FPGASTENCIL_EXPECT(g.nx() > taps.radius() && g.ny() > taps.radius() &&
                           g.nz() > taps.radius(),
                       "reflective boundaries need extents > radius");
  }
  float acc = 0.0f;
  bool first = true;
  for (const Tap& t : taps.taps()) {
    const std::int64_t tx = x + t.dx;
    const std::int64_t ty = y + t.dy;
    const std::int64_t tz = z + t.dz;
    float v;
    switch (bc.kind) {
      case BoundaryKind::clamp:
        v = g.at_clamped(tx, ty, tz);
        break;
      case BoundaryKind::periodic:
        v = g.at(wrap_index(tx, g.nx()), wrap_index(ty, g.ny()),
                 wrap_index(tz, g.nz()));
        break;
      case BoundaryKind::reflective:
        v = g.at(mirror_index(tx, g.nx()), mirror_index(ty, g.ny()),
                 mirror_index(tz, g.nz()));
        break;
      case BoundaryKind::dirichlet:
        v = (in_range(tx, g.nx()) && in_range(ty, g.ny()) &&
             in_range(tz, g.nz()))
                ? g.at(tx, ty, tz)
                : bc.value;
        break;
      default:
        v = g.at_clamped(tx, ty, tz);
        break;
    }
    if (first) {
      acc = t.coeff * v;
      first = false;
    } else {
      acc += t.coeff * v;
    }
  }
  return acc;
}

void reference_step(const TapSet& taps, const Grid2D<float>& in,
                    Grid2D<float>& out) {
  FPGASTENCIL_EXPECT(in.nx() == out.nx() && in.ny() == out.ny(),
                     "in/out shapes differ");
  for (std::int64_t y = 0; y < in.ny(); ++y) {
    for (std::int64_t x = 0; x < in.nx(); ++x) {
      out.at(x, y) = apply_taps(taps, in, x, y);
    }
  }
}

void reference_step(const TapSet& taps, const Grid3D<float>& in,
                    Grid3D<float>& out) {
  FPGASTENCIL_EXPECT(
      in.nx() == out.nx() && in.ny() == out.ny() && in.nz() == out.nz(),
      "in/out shapes differ");
  for (std::int64_t z = 0; z < in.nz(); ++z) {
    for (std::int64_t y = 0; y < in.ny(); ++y) {
      for (std::int64_t x = 0; x < in.nx(); ++x) {
        out.at(x, y, z) = apply_taps(taps, in, x, y, z);
      }
    }
  }
}

void reference_run(const TapSet& taps, Grid2D<float>& grid, int iterations) {
  Grid2D<float> scratch(grid.nx(), grid.ny());
  for (int t = 0; t < iterations; ++t) {
    reference_step(taps, grid, scratch);
    std::swap(grid, scratch);
  }
}

void reference_run(const TapSet& taps, Grid3D<float>& grid, int iterations) {
  Grid3D<float> scratch(grid.nx(), grid.ny(), grid.nz());
  for (int t = 0; t < iterations; ++t) {
    reference_step(taps, grid, scratch);
    std::swap(grid, scratch);
  }
}

}  // namespace fpga_stencil
