#include "stencil/reference.hpp"

#include <utility>

namespace fpga_stencil {

void reference_step(const StarStencil& stencil, const Grid2D<float>& in,
                    Grid2D<float>& out) {
  FPGASTENCIL_EXPECT(in.nx() == out.nx() && in.ny() == out.ny(),
                     "in/out shapes differ");
  for (std::int64_t y = 0; y < in.ny(); ++y) {
    for (std::int64_t x = 0; x < in.nx(); ++x) {
      out.at(x, y) = stencil.apply_point(in, x, y);
    }
  }
}

void reference_step(const StarStencil& stencil, const Grid3D<float>& in,
                    Grid3D<float>& out) {
  FPGASTENCIL_EXPECT(
      in.nx() == out.nx() && in.ny() == out.ny() && in.nz() == out.nz(),
      "in/out shapes differ");
  for (std::int64_t z = 0; z < in.nz(); ++z) {
    for (std::int64_t y = 0; y < in.ny(); ++y) {
      for (std::int64_t x = 0; x < in.nx(); ++x) {
        out.at(x, y, z) = stencil.apply_point(in, x, y, z);
      }
    }
  }
}

void reference_run(const StarStencil& stencil, Grid2D<float>& grid,
                   int iterations) {
  Grid2D<float> scratch(grid.nx(), grid.ny());
  for (int t = 0; t < iterations; ++t) {
    reference_step(stencil, grid, scratch);
    std::swap(grid, scratch);
  }
}

void reference_run(const StarStencil& stencil, Grid3D<float>& grid,
                   int iterations) {
  Grid3D<float> scratch(grid.nx(), grid.ny(), grid.nz());
  for (int t = 0; t < iterations; ++t) {
    reference_step(stencil, grid, scratch);
    std::swap(grid, scratch);
  }
}

// --- generic tap-set executors ---

float apply_taps(const TapSet& taps, const Grid2D<float>& g, std::int64_t x,
                 std::int64_t y) {
  FPGASTENCIL_EXPECT(taps.dims() == 2, "2D apply of a 3D tap set");
  float acc = 0.0f;
  bool first = true;
  for (const Tap& t : taps.taps()) {
    const float v = g.at_clamped(x + t.dx, y + t.dy);
    if (first) {
      acc = t.coeff * v;
      first = false;
    } else {
      acc += t.coeff * v;
    }
  }
  return acc;
}

float apply_taps(const TapSet& taps, const Grid3D<float>& g, std::int64_t x,
                 std::int64_t y, std::int64_t z) {
  FPGASTENCIL_EXPECT(taps.dims() == 3, "3D apply of a 2D tap set");
  float acc = 0.0f;
  bool first = true;
  for (const Tap& t : taps.taps()) {
    const float v = g.at_clamped(x + t.dx, y + t.dy, z + t.dz);
    if (first) {
      acc = t.coeff * v;
      first = false;
    } else {
      acc += t.coeff * v;
    }
  }
  return acc;
}

void reference_step(const TapSet& taps, const Grid2D<float>& in,
                    Grid2D<float>& out) {
  FPGASTENCIL_EXPECT(in.nx() == out.nx() && in.ny() == out.ny(),
                     "in/out shapes differ");
  for (std::int64_t y = 0; y < in.ny(); ++y) {
    for (std::int64_t x = 0; x < in.nx(); ++x) {
      out.at(x, y) = apply_taps(taps, in, x, y);
    }
  }
}

void reference_step(const TapSet& taps, const Grid3D<float>& in,
                    Grid3D<float>& out) {
  FPGASTENCIL_EXPECT(
      in.nx() == out.nx() && in.ny() == out.ny() && in.nz() == out.nz(),
      "in/out shapes differ");
  for (std::int64_t z = 0; z < in.nz(); ++z) {
    for (std::int64_t y = 0; y < in.ny(); ++y) {
      for (std::int64_t x = 0; x < in.nx(); ++x) {
        out.at(x, y, z) = apply_taps(taps, in, x, y, z);
      }
    }
  }
}

void reference_run(const TapSet& taps, Grid2D<float>& grid, int iterations) {
  Grid2D<float> scratch(grid.nx(), grid.ny());
  for (int t = 0; t < iterations; ++t) {
    reference_step(taps, grid, scratch);
    std::swap(grid, scratch);
  }
}

void reference_run(const TapSet& taps, Grid3D<float>& grid, int iterations) {
  Grid3D<float> scratch(grid.nx(), grid.ny(), grid.nz());
  for (int t = 0; t < iterations; ++t) {
    reference_step(taps, grid, scratch);
    std::swap(grid, scratch);
  }
}

}  // namespace fpga_stencil
