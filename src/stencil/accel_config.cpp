#include "stencil/accel_config.hpp"

namespace fpga_stencil {

BlockingPlan make_blocking_plan(const AcceleratorConfig& cfg, std::int64_t nx,
                                std::int64_t ny, std::int64_t nz) {
  cfg.validate();
  FPGASTENCIL_EXPECT(nx > 0 && ny > 0 && nz > 0, "grid extents must be positive");
  if (cfg.dims == 2) {
    FPGASTENCIL_EXPECT(nz == 1, "2D plan must have nz == 1");
  }

  BlockingPlan plan;
  plan.config = cfg;
  plan.nx = nx;
  plan.ny = ny;
  plan.nz = nz;
  plan.blocks_x = ceil_div(nx, cfg.csize_x());

  if (cfg.dims == 2) {
    plan.blocks_y = 1;
    // y is streamed: ny real rows plus the chain's drain rows so the last
    // PE can retire row ny-1.
    plan.stream_extent = ny + cfg.stream_drain();
    plan.valid_cells = nx * ny;
  } else {
    plan.blocks_y = ceil_div(ny, cfg.csize_y());
    // z is streamed: nz real planes plus the chain's drain planes.
    plan.stream_extent = nz + cfg.stream_drain();
    plan.valid_cells = nx * ny * nz;
  }

  plan.cells_streamed_per_pass = plan.stream_extent * cfg.row_cells();
  plan.cells_streamed =
      plan.cells_streamed_per_pass * plan.blocks_x * plan.blocks_y;
  plan.vectors_streamed = plan.cells_streamed / cfg.parvec;
  return plan;
}

}  // namespace fpga_stencil
