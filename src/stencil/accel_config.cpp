#include "stencil/accel_config.hpp"

#include <algorithm>

namespace fpga_stencil {

BlockingPlan make_blocking_plan(const AcceleratorConfig& cfg, std::int64_t nx,
                                std::int64_t ny, std::int64_t nz) {
  cfg.validate();
  FPGASTENCIL_EXPECT(nx > 0 && ny > 0 && nz > 0, "grid extents must be positive");
  if (cfg.dims == 2) {
    FPGASTENCIL_EXPECT(nz == 1, "2D plan must have nz == 1");
  }

  BlockingPlan plan;
  plan.config = cfg;
  plan.nx = nx;
  plan.ny = ny;
  plan.nz = nz;
  plan.blocks_x = ceil_div(nx, cfg.csize_x());

  if (cfg.dims == 2) {
    plan.blocks_y = 1;
    // y is streamed: ny real rows plus the chain's drain rows so the last
    // PE can retire row ny-1.
    plan.stream_extent = ny + cfg.stream_drain();
    plan.valid_cells = nx * ny;
  } else {
    plan.blocks_y = ceil_div(ny, cfg.csize_y());
    // z is streamed: nz real planes plus the chain's drain planes.
    plan.stream_extent = nz + cfg.stream_drain();
    plan.valid_cells = nx * ny * nz;
  }

  plan.cells_streamed_per_pass = plan.stream_extent * cfg.row_cells();
  plan.cells_streamed =
      plan.cells_streamed_per_pass * plan.blocks_x * plan.blocks_y;
  plan.vectors_streamed = plan.cells_streamed / cfg.parvec;
  return plan;
}

BlockExtent block_extent(const BlockingPlan& plan, std::int64_t index) {
  FPGASTENCIL_EXPECT(index >= 0 && index < plan.total_blocks(),
                     "block index outside the plan");
  const AcceleratorConfig& cfg = plan.config;
  const std::int64_t halo = cfg.halo();
  BlockExtent b;
  b.index = index;
  b.bx = index % plan.blocks_x;
  b.by = index / plan.blocks_x;
  b.x0 = b.bx * cfg.csize_x() - halo;
  b.valid_x_end = std::min(plan.nx, (b.bx + 1) * cfg.csize_x());
  if (cfg.dims == 3) {
    b.y0 = b.by * cfg.csize_y() - halo;
    b.valid_y_end = std::min(plan.ny, (b.by + 1) * cfg.csize_y());
  }
  return b;
}

}  // namespace fpga_stencil
