// Generic stencil tap sets.
//
// The paper's architecture is presented for star stencils, but nothing in
// the deep-pipeline design is star-specific: any stencil whose taps fit in
// the shift-register window streams the same way (related work [19]
// accelerates a first-order 3D *cubic* stencil on the same architecture).
// A TapSet is the generalization: an *ordered* list of (offset,
// coefficient) taps. The order is the floating-point accumulation order --
// part of the contract, because the library's executors must agree
// bit-for-bit.
//
// StarStencil lowers to a TapSet in its canonical order; BoxStencil emits
// row-major offset order. The ProcessingElement executes any TapSet whose
// offsets are bounded by its radius.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/expect.hpp"

namespace fpga_stencil {

struct Tap {
  std::int64_t dx = 0;
  std::int64_t dy = 0;
  std::int64_t dz = 0;
  float coeff = 0.0f;
};

/// How a tap that reaches outside the grid resolves (docs/PROGRAMS.md).
/// The boundary condition is part of the *stencil*, not the executor: it
/// travels on the TapSet so fingerprints, plan-cache keys, and routing
/// all see it. `clamp` is the paper's generated-code behavior and the
/// default everywhere -- a clamp tap set fingerprints exactly as it did
/// before boundary conditions existed, so warm TuningCache / PlanCache
/// entries survive the upgrade.
enum class BoundaryKind : std::uint8_t {
  clamp = 0,      ///< out-of-grid coordinates clamp per axis (paper default)
  periodic = 1,   ///< coordinates wrap modulo the grid extents
  reflective = 2, ///< mirror about the boundary cell: -k -> k, n-1+k -> n-1-k
  dirichlet = 3,  ///< out-of-grid taps read a fixed value
};

[[nodiscard]] constexpr const char* boundary_kind_name(BoundaryKind k) {
  switch (k) {
    case BoundaryKind::clamp: return "clamp";
    case BoundaryKind::periodic: return "periodic";
    case BoundaryKind::reflective: return "reflective";
    case BoundaryKind::dirichlet: return "dirichlet";
  }
  return "?";
}

/// A boundary condition: the kind plus, for dirichlet, the ghost value
/// every out-of-grid tap reads. The value is ignored (and kept at 0) for
/// the other kinds so value-identity comparisons stay trivial.
struct BoundaryCondition {
  BoundaryKind kind = BoundaryKind::clamp;
  float value = 0.0f;  ///< dirichlet ghost value; 0 otherwise

  [[nodiscard]] static BoundaryCondition clamp() { return {}; }
  [[nodiscard]] static BoundaryCondition periodic() {
    return {BoundaryKind::periodic, 0.0f};
  }
  [[nodiscard]] static BoundaryCondition reflective() {
    return {BoundaryKind::reflective, 0.0f};
  }
  [[nodiscard]] static BoundaryCondition dirichlet(float v) {
    return {BoundaryKind::dirichlet, v};
  }

  [[nodiscard]] bool is_clamp() const { return kind == BoundaryKind::clamp; }
  bool operator==(const BoundaryCondition&) const = default;

  /// "clamp", "periodic", "reflective", or "dirichlet(<value>)" -- the
  /// describe() vocabulary job labels and docs use.
  [[nodiscard]] std::string describe() const;
};

/// Ordered stencil taps. The first tap is conventionally the center, but
/// any shape is legal as long as offsets are within +-radius per axis.
class TapSet {
 public:
  /// `radius` bounds |dx|, |dy|, |dz| of every tap and determines the
  /// blocking halo (per stage) and the shift-register reach. `boundary`
  /// defaults to clamp, the paper's generated-code behavior.
  TapSet(int dims, int radius, std::vector<Tap> taps,
         BoundaryCondition boundary = {});

  [[nodiscard]] int dims() const { return dims_; }
  [[nodiscard]] int radius() const { return radius_; }
  [[nodiscard]] const std::vector<Tap>& taps() const { return taps_; }
  [[nodiscard]] std::size_t size() const { return taps_.size(); }
  [[nodiscard]] const BoundaryCondition& boundary() const { return boundary_; }

  /// Builder-style copy with a different boundary condition: program
  /// nodes stamp the read field's BC onto their taps this way, so the
  /// fingerprint (and hence PlanCache key and cluster route) carries it.
  [[nodiscard]] TapSet with_boundary(BoundaryCondition bc) const {
    TapSet t = *this;
    t.boundary_ = bc;
    if (t.boundary_.kind != BoundaryKind::dirichlet) t.boundary_.value = 0.0f;
    return t;
  }

  /// Flat shift-register offset of tap `t` for a given block geometry
  /// (row_cells = bsize_x in 2D, bsize_x*bsize_y in 3D).
  [[nodiscard]] std::int64_t flat_offset(const Tap& t, std::int64_t bsize_x,
                                         std::int64_t row_cells) const;

  /// Smallest/largest flat offsets over all taps -- the shift-register
  /// window the tap set needs.
  [[nodiscard]] std::int64_t min_flat_offset(std::int64_t bsize_x,
                                             std::int64_t row_cells) const;
  [[nodiscard]] std::int64_t max_flat_offset(std::int64_t bsize_x,
                                             std::int64_t row_cells) const;

  /// Largest flat reach any tap can attain after a reflective border
  /// remap: per axis a tap at distance d can mirror to +d, so the
  /// worst-case reach of one tap is |dx| + |dy|*bsize_x + |dz|*row_cells
  /// (symmetric backward). Equals max_flat_offset for tap sets that
  /// contain their all-positive corner tap (star, box); can exceed it
  /// for asymmetric custom shapes, which is why reflective SR sizing
  /// uses this instead.
  [[nodiscard]] std::int64_t max_abs_flat_offset(std::int64_t bsize_x,
                                                 std::int64_t row_cells) const;

  /// Sum of all coefficients (stability diagnostics).
  [[nodiscard]] double coefficient_sum() const;

  /// FLOPs per cell update: one multiply per tap plus one add per tap
  /// beyond the first.
  [[nodiscard]] std::int64_t flops_per_cell() const {
    return 2 * std::int64_t(taps_.size()) - 1;
  }

  /// DSPs per cell update on Arria-10-class devices: one FMA-capable DSP
  /// per tap (the final multiply has no following add but still occupies
  /// one DSP) -- the generalization of 4*rad+1 / 6*rad+1.
  [[nodiscard]] std::int64_t dsps_per_cell() const {
    return std::int64_t(taps_.size());
  }

 private:
  int dims_;
  int radius_;
  std::vector<Tap> taps_;
  BoundaryCondition boundary_;
};

}  // namespace fpga_stencil
