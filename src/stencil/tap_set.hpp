// Generic stencil tap sets.
//
// The paper's architecture is presented for star stencils, but nothing in
// the deep-pipeline design is star-specific: any stencil whose taps fit in
// the shift-register window streams the same way (related work [19]
// accelerates a first-order 3D *cubic* stencil on the same architecture).
// A TapSet is the generalization: an *ordered* list of (offset,
// coefficient) taps. The order is the floating-point accumulation order --
// part of the contract, because the library's executors must agree
// bit-for-bit.
//
// StarStencil lowers to a TapSet in its canonical order; BoxStencil emits
// row-major offset order. The ProcessingElement executes any TapSet whose
// offsets are bounded by its radius.
#pragma once

#include <cstdint>
#include <vector>

#include "common/expect.hpp"

namespace fpga_stencil {

struct Tap {
  std::int64_t dx = 0;
  std::int64_t dy = 0;
  std::int64_t dz = 0;
  float coeff = 0.0f;
};

/// Ordered stencil taps. The first tap is conventionally the center, but
/// any shape is legal as long as offsets are within +-radius per axis.
class TapSet {
 public:
  /// `radius` bounds |dx|, |dy|, |dz| of every tap and determines the
  /// blocking halo (per stage) and the shift-register reach.
  TapSet(int dims, int radius, std::vector<Tap> taps);

  [[nodiscard]] int dims() const { return dims_; }
  [[nodiscard]] int radius() const { return radius_; }
  [[nodiscard]] const std::vector<Tap>& taps() const { return taps_; }
  [[nodiscard]] std::size_t size() const { return taps_.size(); }

  /// Flat shift-register offset of tap `t` for a given block geometry
  /// (row_cells = bsize_x in 2D, bsize_x*bsize_y in 3D).
  [[nodiscard]] std::int64_t flat_offset(const Tap& t, std::int64_t bsize_x,
                                         std::int64_t row_cells) const;

  /// Smallest/largest flat offsets over all taps -- the shift-register
  /// window the tap set needs.
  [[nodiscard]] std::int64_t min_flat_offset(std::int64_t bsize_x,
                                             std::int64_t row_cells) const;
  [[nodiscard]] std::int64_t max_flat_offset(std::int64_t bsize_x,
                                             std::int64_t row_cells) const;

  /// Sum of all coefficients (stability diagnostics).
  [[nodiscard]] double coefficient_sum() const;

  /// FLOPs per cell update: one multiply per tap plus one add per tap
  /// beyond the first.
  [[nodiscard]] std::int64_t flops_per_cell() const {
    return 2 * std::int64_t(taps_.size()) - 1;
  }

  /// DSPs per cell update on Arria-10-class devices: one FMA-capable DSP
  /// per tap (the final multiply has no following add but still occupies
  /// one DSP) -- the generalization of 4*rad+1 / 6*rad+1.
  [[nodiscard]] std::int64_t dsps_per_cell() const {
    return std::int64_t(taps_.size());
  }

 private:
  int dims_;
  int radius_;
  std::vector<Tap> taps_;
};

}  // namespace fpga_stencil
