// Workload initializers: the physical field shapes the paper's motivating
// applications start from (seismic point sources, thermal hot spots, plane
// waves), shared by examples, benches and tests. All deterministic.
#pragma once

#include "grid/grid.hpp"

namespace fpga_stencil {

/// Gaussian bump of peak `amplitude` centered at (cx, cy) with std `sigma`.
void add_gaussian(Grid2D<float>& g, double cx, double cy, double sigma,
                  float amplitude);
void add_gaussian(Grid3D<float>& g, double cx, double cy, double cz,
                  double sigma, float amplitude);

/// Plane wave amplitude * sin(kx*x + ky*y): the classic dispersion test
/// input (an approximate eigenfunction of any symmetric stencil).
void add_plane_wave(Grid2D<float>& g, double kx, double ky, float amplitude);

/// `count` deterministic point sources of the given amplitude.
void add_point_sources(Grid2D<float>& g, int count, float amplitude,
                       std::uint64_t seed = 42);
void add_point_sources(Grid3D<float>& g, int count, float amplitude,
                       std::uint64_t seed = 42);

/// Field diagnostics used by the physics-flavored examples.
struct FieldStats {
  double total = 0.0;   ///< sum over all cells
  float peak = 0.0f;    ///< maximum value
  double l2 = 0.0;      ///< sqrt(sum of squares)
};
FieldStats field_stats(const Grid2D<float>& g);
FieldStats field_stats(const Grid3D<float>& g);

}  // namespace fpga_stencil
