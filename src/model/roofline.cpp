#include "model/roofline.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace fpga_stencil {

double roofline_attainable_gflops(const DeviceSpec& device,
                                  double flop_per_byte) {
  FPGASTENCIL_EXPECT(flop_per_byte > 0, "intensity must be positive");
  return std::min(device.peak_gflops, flop_per_byte * device.peak_bw_gbps);
}

double roofline_attainable_gflops(const DeviceSpec& device,
                                  const StencilCharacteristics& stencil) {
  return roofline_attainable_gflops(device, stencil.flop_per_byte);
}

bool is_memory_bound(const DeviceSpec& device,
                     const StencilCharacteristics& stencil) {
  return stencil.flop_per_byte < device.flop_per_byte();
}

double roofline_ratio(const DeviceSpec& device,
                      const StencilCharacteristics& stencil, double gcells) {
  FPGASTENCIL_EXPECT(device.peak_bw_gbps > 0, "device has no bandwidth");
  return gcells * double(stencil.bytes_per_cell) / device.peak_bw_gbps;
}

}  // namespace fpga_stencil
