#include "model/performance_model.hpp"

#include <algorithm>

namespace fpga_stencil {
namespace {

constexpr double kBaseEfficiency2D = 0.86;
constexpr double kBaseEfficiency3D = 0.88;
constexpr double kNarrowAlignEff = 0.97;  // accesses <= 32 B coalesce well
constexpr double kWideAlignEff = 0.76;    // >= 64 B accesses split bursts

}  // namespace

double memory_demand_gbps(const AcceleratorConfig& cfg, double fmax_mhz,
                          ValuePrecision precision) {
  // Read stream + write stream, parvec values per kernel cycle each.
  return 2.0 * cfg.parvec * double(bytes_per_value(precision)) * fmax_mhz *
         1e6 / 1e9;
}

double effective_bandwidth_gbps(const AcceleratorConfig& cfg,
                                const DeviceSpec& device, double fmax_mhz,
                                ValuePrecision precision) {
  FPGASTENCIL_EXPECT(device.is_fpga(), "bandwidth model needs an FPGA");
  const double clock_derate =
      device.mem_controller_mhz > 0
          ? std::min(1.0, fmax_mhz / device.mem_controller_mhz)
          : 1.0;
  const std::int64_t access_bytes =
      std::int64_t(cfg.parvec) * bytes_per_value(precision);
  const double align_eff =
      access_bytes <= 32 ? kNarrowAlignEff : kWideAlignEff;
  return device.peak_bw_gbps * clock_derate * align_eff;
}

double pipeline_efficiency(const AcceleratorConfig& cfg,
                           const DeviceSpec& device, double fmax_mhz,
                           ValuePrecision precision) {
  const double base = cfg.dims == 2 ? kBaseEfficiency2D : kBaseEfficiency3D;
  const double demand = memory_demand_gbps(cfg, fmax_mhz, precision);
  const double ebw =
      effective_bandwidth_gbps(cfg, device, fmax_mhz, precision);
  return base * std::min(1.0, ebw / demand);
}

PerformanceEstimate estimate_performance(const AcceleratorConfig& cfg,
                                         const DeviceSpec& device,
                                         double fmax_mhz, std::int64_t nx,
                                         std::int64_t ny, std::int64_t nz,
                                         ValuePrecision precision) {
  FPGASTENCIL_EXPECT(fmax_mhz > 0, "fmax must be positive");
  const BlockingPlan plan = make_blocking_plan(cfg, nx, ny, nz);
  const StencilCharacteristics sc =
      stencil_characteristics(cfg.dims, cfg.radius, precision);

  PerformanceEstimate e;
  e.config = cfg;
  e.fmax_mhz = fmax_mhz;
  e.nx = nx;
  e.ny = ny;
  e.nz = nz;
  e.valid_fraction = double(plan.valid_cells) / double(plan.cells_streamed);
  // One pass = partime time steps; cycles per single step:
  e.cycles_per_step = double(plan.vectors_streamed) / cfg.partime;

  // Layer 1: zero-stall estimate.
  const double updates_per_sec = fmax_mhz * 1e6 * cfg.parvec * cfg.partime *
                                 e.valid_fraction;  // valid updates/s
  e.estimated_gcells = updates_per_sec / 1e9;
  e.estimated_gbps = e.estimated_gcells * double(sc.bytes_per_cell);
  e.estimated_gflops = e.estimated_gcells * double(sc.flop_per_cell);

  // Layer 2: memory-controller efficiency.
  e.pipeline_efficiency =
      pipeline_efficiency(cfg, device, fmax_mhz, precision);
  e.measured_gbps = e.estimated_gbps * e.pipeline_efficiency;
  e.measured_gflops = e.estimated_gflops * e.pipeline_efficiency;
  e.measured_gcells = e.estimated_gcells * e.pipeline_efficiency;

  e.roofline_ratio = device.peak_bw_gbps > 0
                         ? e.measured_gbps / device.peak_bw_gbps
                         : 0.0;
  return e;
}

}  // namespace fpga_stencil
