#include "model/cycle_simulator.hpp"

#include <deque>

#include "common/expect.hpp"

namespace fpga_stencil {
namespace {

constexpr std::int64_t kBurstBytes = 64;

/// DDR bursts needed for an access of `bytes` at `addr`: the number of
/// 64-byte lines the access touches.
std::int64_t bursts_for(std::int64_t addr, std::int64_t bytes) {
  if (bytes <= 0) return 0;
  const std::int64_t first = addr / kBurstBytes;
  const std::int64_t last = (addr + bytes - 1) / kBurstBytes;
  return last - first + 1;
}

struct Request {
  double cost = 0.0;  ///< controller service slots (64-byte bursts)
  bool is_read = false;
};

/// Controller service cost of one access. Accesses narrower than a burst
/// are coalesced by the load/store unit into full-line streams, so their
/// amortized cost is bytes/64. Line-sized (and wider) accesses bypass the
/// coalescer; they cost one slot per 64-byte line they touch -- two when
/// the overlapped-block origin leaves them unaligned. This is the
/// mechanism behind the paper's "larger vectorized accesses ... split by
/// the memory controller at run time".
double access_cost(std::int64_t addr, std::int64_t bytes) {
  if (bytes < kBurstBytes) return double(bytes) / double(kBurstBytes);
  return double(bursts_for(addr, bytes));
}

}  // namespace

CycleStats simulate_block_pass(const CycleSimConfig& sim,
                               const DeviceSpec& device) {
  const AcceleratorConfig& cfg = sim.accel;
  cfg.validate();
  FPGASTENCIL_EXPECT(device.is_fpga(), "cycle simulator needs an FPGA");
  FPGASTENCIL_EXPECT(sim.fmax_mhz > 0, "fmax must be positive");
  FPGASTENCIL_EXPECT(sim.stream_extent > 0, "nothing to stream");

  const std::int64_t row_cells = cfg.row_cells();
  const std::int64_t vec_bytes = std::int64_t(cfg.parvec) * 4;
  const std::int64_t vecs_per_row = row_cells / cfg.parvec;
  const std::int64_t total_vectors = sim.stream_extent * vecs_per_row;
  const std::int64_t halo = cfg.halo();

  // Controller service rate in bursts per *kernel* cycle.
  const double bursts_per_cycle =
      (device.peak_bw_gbps * 1e9 / kBurstBytes) / (sim.fmax_mhz * 1e6);

  // Fixed chain latency: each PE lags rad rows plus a few register stages.
  const std::int64_t latency =
      std::int64_t(cfg.partime) *
      (std::int64_t(cfg.radius) * row_cells / cfg.parvec + 4);

  // Address of the parvec-wide access for flat stream index `flat`.
  // Row-major layout over a grid with row pitch nx; the block origin
  // block_x0 determines burst alignment (overlapped blocks are generally
  // *not* burst aligned -- that is the whole point).
  const auto access_addr = [&](std::int64_t flat) {
    const std::int64_t row = flat / cfg.bsize_x;  // row within the stream
    const std::int64_t x_rel = flat % cfg.bsize_x;
    return (row * sim.nx + sim.block_x0 + x_rel) * 4;
  };

  CycleStats stats;
  stats.ideal_cycles = total_vectors;

  // One shared controller, or one per stream when the input and output
  // buffers live in separate DDR banks (each bank has half the bandwidth
  // but avoids read<->write bus turnaround).
  struct Controller {
    std::deque<Request> queue;
    double budget = 0.0;
    double front_done = 0.0;  // service already applied to the front
    bool front_fresh = true;  // no service applied to the front yet
    bool last_was_read = true;
  };
  Controller ctrl_a, ctrl_b;
  Controller* read_ctrl = &ctrl_a;
  Controller* write_ctrl = sim.separate_rw_banks ? &ctrl_b : &ctrl_a;
  const double rate_per_ctrl =
      sim.separate_rw_banks ? bursts_per_cycle / 2.0 : bursts_per_cycle;
  double bursts_served = 0.0;

  std::int64_t read_issued = 0;     // vectors requested from memory
  std::int64_t data_fifo = 0;       // vectors buffered toward the chain
  std::deque<std::int64_t> chain;   // ready-cycle per in-flight vector
  std::int64_t chain_consumed = 0;  // vectors entered into the chain
  std::int64_t out_fifo = 0;        // vectors awaiting the write kernel
  std::int64_t write_issued = 0;    // output vectors handled
  std::int64_t writes_pending = 0;  // write requests in the controller
  std::int64_t writes_done = 0;
  std::int64_t total_write_reqs = 0;

  std::int64_t cycle = 0;
  const std::int64_t cycle_cap = 100 * total_vectors + 100000;

  while (write_issued < total_vectors || writes_done < total_write_reqs ||
         !chain.empty() || data_fifo > 0 || out_fifo > 0) {
    FPGASTENCIL_ASSERT(cycle < cycle_cap, "cycle simulator did not converge");
    ++cycle;

    // --- controllers: serve requests in order ---
    const auto serve_controller = [&](Controller& ctrl) {
      ctrl.budget += rate_per_ctrl;
      while (!ctrl.queue.empty()) {
        Request& front = ctrl.queue.front();
        // A shared bus pays a turnaround penalty when the request type
        // flips; separate banks never flip. The penalty is folded into
        // the request's first service.
        if (ctrl.front_fresh && !sim.separate_rw_banks &&
            front.is_read != ctrl.last_was_read) {
          ctrl.front_done = -sim.turnaround_cost;
        }
        ctrl.front_fresh = false;
        const double remaining = front.cost - ctrl.front_done;
        if (ctrl.budget + 1e-12 < remaining) {
          // Partial progress; the request completes on a later cycle.
          ctrl.front_done += ctrl.budget;
          ctrl.budget = 0.0;
          break;
        }
        ctrl.budget -= remaining;
        bursts_served += front.cost;
        ctrl.last_was_read = front.is_read;
        if (front.is_read) {
          ++data_fifo;  // one vector's worth of data arrives
        } else {
          ++writes_done;
          --writes_pending;
        }
        ctrl.queue.pop_front();
        ctrl.front_done = 0.0;
        ctrl.front_fresh = true;
      }
    };
    serve_controller(*read_ctrl);
    if (sim.separate_rw_banks) serve_controller(*write_ctrl);

    // --- read kernel: one request per cycle while there is FIFO room ---
    if (read_issued < total_vectors &&
        read_ctrl->queue.size() < sim.max_outstanding &&
        data_fifo + std::int64_t(chain.size()) <
            std::int64_t(sim.channel_capacity)) {
      const std::int64_t addr = access_addr(read_issued * cfg.parvec);
      const double c = access_cost(addr, vec_bytes);
      if (c > 1.0) ++stats.split_accesses;
      read_ctrl->queue.push_back(Request{c, true});
      ++read_issued;
    }

    // --- compute chain: II = 1 when fed and not back-pressured ---
    if (data_fifo > 0 &&
        out_fifo < std::int64_t(sim.channel_capacity)) {
      --data_fifo;
      chain.push_back(cycle + latency);
      ++chain_consumed;
    } else if (chain_consumed < total_vectors) {
      if (data_fifo == 0) {
        ++stats.read_stall_cycles;
      } else {
        ++stats.write_stall_cycles;
      }
    }
    while (!chain.empty() && chain.front() <= cycle) {
      chain.pop_front();
      ++out_fifo;
    }

    // --- write kernel: retire valid vectors, one request per cycle ---
    if (out_fifo > 0 && write_ctrl->queue.size() < sim.max_outstanding) {
      --out_fifo;
      const std::int64_t flat = write_issued * cfg.parvec;
      const std::int64_t stream_idx = flat / row_cells;  // row (2D) / plane
      const std::int64_t rem = flat % row_cells;
      const std::int64_t y_rel = rem / cfg.bsize_x;  // 0 in 2D
      const std::int64_t x_rel = rem % cfg.bsize_x;
      ++write_issued;
      // Valid output exists only past the warm-up stream rows, inside the
      // csize window of every blocked dimension; the access is clipped to
      // the valid byte range (partial vectors at the halo edges).
      const bool stream_ok =
          stream_idx >= halo && stream_idx < sim.stream_extent;
      const bool y_ok = cfg.dims == 2 ||
                        (y_rel >= halo && y_rel < halo + cfg.csize_y());
      if (stream_ok && y_ok) {
        const std::int64_t lo = std::max(x_rel, halo);
        const std::int64_t hi =
            std::min<std::int64_t>(x_rel + cfg.parvec, halo + cfg.csize_x());
        if (lo < hi) {
          // Row-major destination: alignment is set by the block origin;
          // the (large) row pitch only separates rows.
          const std::int64_t out_row =
              (stream_idx - halo) * std::max<std::int64_t>(cfg.bsize_y, 1) +
              y_rel;
          const std::int64_t addr =
              (out_row * sim.nx + sim.block_x0 + lo) * 4;
          const double c = access_cost(addr, (hi - lo) * 4);
          if (c > 1.0) ++stats.split_accesses;
          write_ctrl->queue.push_back(Request{c, false});
          ++writes_pending;
          ++total_write_reqs;
        }
      }
    }
  }

  stats.kernel_cycles = cycle;
  stats.total_bursts = std::int64_t(bursts_served + 0.5);
  return stats;
}

}  // namespace fpga_stencil
