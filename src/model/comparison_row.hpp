// Shared row type for the cross-device comparison tables (paper Tables
// IV/V and Figs. 3/4): one device x stencil-order measurement.
#pragma once

#include <string>

namespace fpga_stencil {

struct ComparisonRow {
  std::string device;
  int radius = 0;
  double gflops = 0.0;
  double gcells = 0.0;
  double power_watts = 0.0;
  double power_efficiency = 0.0;  ///< GFLOP/s per watt
  double roofline_ratio = 0.0;    ///< achieved GB/s over theoretical peak
  bool extrapolated = false;      ///< the paper's hachured rows
};

}  // namespace fpga_stencil
