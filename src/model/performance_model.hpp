// The performance model (paper Section V, inherited from [8]).
//
// Two layers:
//
//   1. The *estimate*: the zero-stall deep pipeline retires parvec cells per
//      cycle per PE, so over a full-grid pass
//
//        estimated GB/s = 8 bytes * fmax * parvec * partime * (valid/streamed)
//
//      where valid/streamed is the exact overlapped-blocking accounting of
//      BlockingPlan (x/y halos plus stream-dimension drain). This is the
//      paper's "Estimated Performance" normalized to the achieved fmax.
//
//   2. The *pipeline efficiency*: what fraction of the estimate survives
//      contact with the external memory controller. The paper attributes
//      the gap (Section VI.A) to wide vectorized accesses being split by
//      the memory controller at run time, costing 3D designs 40-45% while
//      2D designs (narrow accesses) lose only ~15%. We model it
//      mechanistically:
//
//        demand  = 2 * parvec * 4 bytes * fmax          (read + write)
//        ebw     = peak_bw * min(1, fmax/mc_freq) * align_eff
//        eff     = base(dims) * min(1, ebw / demand)
//
//      with align_eff = 0.97 for accesses <= 32 B and 0.76 for 64 B
//      accesses (split bursts), base = 0.86 (2D) / 0.88 (3D). Constants are
//      calibrated against Table III; the CycleSimulator demonstrates the
//      same stall mechanism from first principles.
//
// "Measured" performance in our reproduction is estimate * efficiency; the
// functional StencilAccelerator provides the cell-exact results and raw
// cycle counts that anchor layer 1.
#pragma once

#include "fpga/device_spec.hpp"
#include "stencil/accel_config.hpp"
#include "stencil/characteristics.hpp"

namespace fpga_stencil {

struct PerformanceEstimate {
  AcceleratorConfig config;
  double fmax_mhz = 0.0;
  std::int64_t nx = 0, ny = 0, nz = 1;

  double valid_fraction = 0.0;   ///< valid / streamed cells (<= 1)
  double cycles_per_step = 0.0;  ///< pipeline cycles per stencil iteration

  double estimated_gbps = 0.0;   ///< layer 1 (zero-stall)
  double estimated_gflops = 0.0;
  double estimated_gcells = 0.0;

  double pipeline_efficiency = 0.0;  ///< layer 2 factor ("model accuracy")

  double measured_gbps = 0.0;    ///< estimate * efficiency
  double measured_gflops = 0.0;
  double measured_gcells = 0.0;

  /// measured throughput / theoretical peak memory bandwidth: the paper's
  /// Roofline Ratio column (> 1 only with working temporal blocking).
  double roofline_ratio = 0.0;
};

/// Full performance prediction of `cfg` on FPGA `device` for an
/// nx * ny (* nz) grid at `fmax_mhz`.
PerformanceEstimate estimate_performance(
    const AcceleratorConfig& cfg, const DeviceSpec& device, double fmax_mhz,
    std::int64_t nx, std::int64_t ny, std::int64_t nz = 1,
    ValuePrecision precision = ValuePrecision::kFloat32);

/// Layer-2 factor on its own (exposed for the ablation benches).
double pipeline_efficiency(const AcceleratorConfig& cfg,
                           const DeviceSpec& device, double fmax_mhz,
                           ValuePrecision precision = ValuePrecision::kFloat32);

/// External-memory bytes demanded per second by the streaming pipeline.
double memory_demand_gbps(const AcceleratorConfig& cfg, double fmax_mhz,
                          ValuePrecision precision = ValuePrecision::kFloat32);

/// Effective external bandwidth: peak derated by a sub-mc-frequency kernel
/// clock and by burst splitting for wide unaligned accesses.
double effective_bandwidth_gbps(const AcceleratorConfig& cfg,
                                const DeviceSpec& device, double fmax_mhz,
                                ValuePrecision precision = ValuePrecision::kFloat32);

}  // namespace fpga_stencil
