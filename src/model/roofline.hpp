// The roofline model [Williams et al., CACM 2009] as used by the paper's
// Tables IV/V: attainable performance and the "Roofline Ratio" column,
// which is achieved memory throughput over theoretical peak bandwidth.
// Without temporal blocking the ratio cannot exceed 1; the FPGA's ratios of
// 1.3-19.8 are the paper's headline evidence that temporal blocking works.
#pragma once

#include "fpga/device_spec.hpp"
#include "stencil/characteristics.hpp"

namespace fpga_stencil {

/// Attainable GFLOP/s for an arithmetic intensity (FLOP/byte) on `device`:
/// min(peak_compute, intensity * peak_bandwidth).
double roofline_attainable_gflops(const DeviceSpec& device,
                                  double flop_per_byte);

/// Attainable GFLOP/s for a star stencil without temporal blocking.
double roofline_attainable_gflops(const DeviceSpec& device,
                                  const StencilCharacteristics& stencil);

/// True when the stencil is memory-bound on the device (stencil intensity
/// below the device's compute/bandwidth balance point). The paper's
/// Section IV.B observation: every star stencil of radius 1..4 is
/// memory-bound on every evaluated device.
bool is_memory_bound(const DeviceSpec& device,
                     const StencilCharacteristics& stencil);

/// The paper's Roofline Ratio: achieved memory throughput over theoretical
/// peak bandwidth. `gcells` is achieved billions of cell updates/s.
double roofline_ratio(const DeviceSpec& device,
                      const StencilCharacteristics& stencil, double gcells);

}  // namespace fpga_stencil
