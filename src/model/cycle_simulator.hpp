// Cycle-level timing simulator for one block pass of the deep pipeline.
//
// Demonstrates from first principles the stall mechanism the performance
// model's layer 2 captures with calibrated constants: the read and write
// kernels demand one parvec-wide access per kernel cycle each; the DDR
// controller serves 64-byte bursts at its own clock; accesses that are not
// burst-aligned split into two bursts (the paper's "larger vectorized
// accesses ... being split by the memory controller at run time"). When the
// post-split burst demand exceeds what the controller can deliver, the
// pipeline stalls and efficiency drops -- by ~40-45% for the paper's 64-byte
// 3D accesses, and barely at all for the 16/32-byte 2D accesses.
//
// This is a timing-only model (no data): the functional accelerator
// guarantees *what* is computed; this simulator estimates *how long* the
// streaming takes.
#pragma once

#include <cstdint>

#include "fpga/device_spec.hpp"
#include "stencil/accel_config.hpp"

namespace fpga_stencil {

struct CycleStats {
  std::int64_t kernel_cycles = 0;      ///< simulated cycles to drain a pass
  std::int64_t ideal_cycles = 0;       ///< zero-stall lower bound
  std::int64_t read_stall_cycles = 0;  ///< cycles the chain starved
  std::int64_t write_stall_cycles = 0; ///< cycles the chain back-pressured
  std::int64_t total_bursts = 0;       ///< DDR bursts issued
  std::int64_t split_accesses = 0;     ///< accesses needing two bursts

  [[nodiscard]] double efficiency() const {
    return kernel_cycles > 0 ? double(ideal_cycles) / double(kernel_cycles)
                             : 0.0;
  }
};

struct CycleSimConfig {
  AcceleratorConfig accel;
  std::int64_t nx = 0;         ///< grid row length (address arithmetic)
  std::int64_t stream_extent = 0;  ///< rows (2D) / planes (3D) to stream
  double fmax_mhz = 0.0;
  std::int64_t block_x0 = 0;   ///< global x of the block origin (alignment)
  std::size_t channel_capacity = 512;   ///< vectors buffered on-chip
  std::size_t max_outstanding = 64;     ///< controller request queue depth

  /// Place the input and output buffers in separate DDR banks (the
  /// Nallatech 385A has two): each stream gets half the peak bandwidth but
  /// its own controller, avoiding read/write bus turnaround. When false,
  /// one shared controller serves both streams and pays a turnaround
  /// penalty on every read<->write switch.
  bool separate_rw_banks = false;

  /// Bus-turnaround cost in burst slots for the shared-controller mode.
  double turnaround_cost = 0.25;
};

/// Simulates one block pass cycle by cycle and returns the timing.
CycleStats simulate_block_pass(const CycleSimConfig& sim,
                               const DeviceSpec& device);

}  // namespace fpga_stencil
