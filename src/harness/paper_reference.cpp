#include "harness/paper_reference.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace fpga_stencil::paper {

const std::vector<Table3Row>& table3() {
  // Transcribed from Table III. Memory utilization is reported as
  // bits% | blocks%; logic and DSP as fractions of the Arria 10 GX 1150.
  static const std::vector<Table3Row> rows = {
      // dims rad bsx   bsy pv  pt  in_x   in_y   in_z  est      meas_gbps meas_gflops meas_gcells fmax    logic bits  blocks dsp   power   acc
      {2, 1, 4096, 1,   8, 36, 16096, 16096, 1, 780.500, 673.959, 758.204, 84.245, 343.76, 0.55, 0.38, 0.83, 0.95, 72.530, 0.863},
      {2, 2, 4096, 1,   4, 42, 15712, 15712, 1, 423.173, 359.752, 764.473, 44.969, 322.47, 0.64, 0.75, 1.00, 1.00, 69.611, 0.850},
      {2, 3, 4096, 1,   4, 28, 15712, 15712, 1, 264.863, 225.215, 703.797, 28.152, 302.75, 0.57, 0.75, 1.00, 0.96, 66.139, 0.850},
      {2, 4, 4096, 1,   4, 22, 15680, 15680, 1, 206.061, 174.381, 719.322, 21.798, 301.20, 0.60, 0.78, 1.00, 0.99, 68.925, 0.846},
      {3, 1, 256, 256, 16, 12, 696, 696, 696, 378.345, 230.568, 374.673, 28.821, 286.61, 0.60, 0.94, 1.00, 0.89, 71.628, 0.609},
      {3, 2, 256, 128, 16,  6, 696, 728, 696, 176.713,  97.035, 303.234, 12.129, 262.88, 0.44, 0.73, 0.87, 0.83, 59.664, 0.549},
      {3, 3, 256, 128, 16,  4, 696, 728, 696, 114.667,  63.737, 294.784,  7.967, 255.36, 0.44, 0.81, 0.99, 0.81, 63.183, 0.556},
      {3, 4, 256, 128, 16,  3, 696, 728, 696,  81.597,  44.701, 273.794,  5.588, 242.77, 0.47, 0.85, 1.00, 0.80, 58.572, 0.548},
  };
  return rows;
}

const Table3Row& table3_row(int dims, int radius) {
  for (const Table3Row& r : table3()) {
    if (r.dims == dims && r.radius == radius) return r;
  }
  throw ConfigError("no Table III row for dims=" + std::to_string(dims) +
                    " radius=" + std::to_string(radius));
}

const std::vector<ComparisonRefRow>& table4() {
  static const std::vector<ComparisonRefRow> rows = {
      {"Arria 10 GX 1150", 1, 758.204, 84.245, 10.454, 19.76, false},
      {"Arria 10 GX 1150", 2, 764.473, 44.969, 10.982, 10.55, false},
      {"Arria 10 GX 1150", 3, 703.797, 28.152, 10.641, 6.60, false},
      {"Arria 10 GX 1150", 4, 719.322, 21.798, 10.436, 5.11, false},
      {"Xeon E5-2650 v4", 1, 45.306, 5.034, 0.521, 0.52, false},
      {"Xeon E5-2650 v4", 2, 85.255, 5.015, 0.942, 0.52, false},
      {"Xeon E5-2650 v4", 3, 124.500, 4.980, 1.331, 0.52, false},
      {"Xeon E5-2650 v4", 4, 165.231, 5.007, 1.737, 0.52, false},
      {"Xeon Phi 7210F", 1, 222.804, 24.756, 1.000, 0.50, false},
      {"Xeon Phi 7210F", 2, 398.735, 23.455, 1.774, 0.47, false},
      {"Xeon Phi 7210F", 3, 592.250, 23.690, 2.629, 0.47, false},
      {"Xeon Phi 7210F", 4, 759.198, 23.006, 3.369, 0.46, false},
  };
  return rows;
}

const std::vector<ComparisonRefRow>& table5() {
  static const std::vector<ComparisonRefRow> rows = {
      {"Arria 10 GX 1150", 1, 374.673, 28.821, 5.231, 6.76, false},
      {"Arria 10 GX 1150", 2, 303.234, 12.129, 5.082, 2.85, false},
      {"Arria 10 GX 1150", 3, 294.784, 7.967, 4.666, 1.87, false},
      {"Arria 10 GX 1150", 4, 273.794, 5.588, 4.674, 1.31, false},
      {"Xeon E5-2650 v4", 1, 61.282, 4.714, 0.686, 0.49, false},
      {"Xeon E5-2650 v4", 2, 115.225, 4.609, 1.235, 0.48, false},
      {"Xeon E5-2650 v4", 3, 151.996, 4.108, 1.617, 0.43, false},
      {"Xeon E5-2650 v4", 4, 205.751, 4.199, 2.069, 0.44, false},
      {"Xeon Phi 7210F", 1, 288.990, 22.230, 1.279, 0.44, false},
      {"Xeon Phi 7210F", 2, 549.300, 21.972, 2.428, 0.44, false},
      {"Xeon Phi 7210F", 3, 788.544, 21.312, 3.480, 0.43, false},
      {"Xeon Phi 7210F", 4, 1069.278, 21.822, 4.714, 0.44, false},
      {"GTX 580", 1, 224.822, 17.294, 1.229, 0.72, false},
      {"GTX 580", 2, 358.725, 14.349, 1.960, 0.60, false},
      {"GTX 580", 3, 404.928, 10.944, 2.213, 0.46, false},
      {"GTX 580", 4, 453.446, 9.254, 2.478, 0.38, false},
      {"GTX 980 Ti", 1, 393.322, 30.256, 1.907, 0.72, true},
      {"GTX 980 Ti", 2, 627.582, 25.103, 3.043, 0.60, true},
      {"GTX 980 Ti", 3, 708.414, 19.146, 3.435, 0.46, true},
      {"GTX 980 Ti", 4, 793.295, 16.190, 3.846, 0.38, true},
      {"Tesla P100", 1, 842.381, 64.799, 4.493, 0.72, true},
      {"Tesla P100", 2, 1344.100, 53.764, 7.169, 0.60, true},
      {"Tesla P100", 3, 1517.217, 41.006, 8.092, 0.46, true},
      {"Tesla P100", 4, 1699.008, 34.674, 9.061, 0.38, true},
  };
  return rows;
}

const std::vector<RelatedFpgaWork>& related_fpga_work() {
  static const std::vector<RelatedFpgaWork> rows = {
      {"Shafiq et al. [18]", "Virtex-4 LX200", 4, 2.783, 5.588},
      {"Fu and Clapp [19]", "2x Virtex-5 LX330", 3, 1.540, 7.967},
  };
  return rows;
}

double deviation(double ours, double paper_value) {
  FPGASTENCIL_EXPECT(std::abs(paper_value) > 0, "paper value is zero");
  return std::abs(ours - paper_value) / std::abs(paper_value);
}

}  // namespace fpga_stencil::paper
