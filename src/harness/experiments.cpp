#include "harness/experiments.hpp"

#include "cpu/cpu_device_model.hpp"
#include "fpga/fmax_model.hpp"
#include "fpga/power_model.hpp"
#include "gpu/inplane_gpu.hpp"
#include "harness/paper_reference.hpp"
#include "stencil/characteristics.hpp"

namespace fpga_stencil {

AcceleratorConfig paper_config(int dims, int radius) {
  const paper::Table3Row& r = paper::table3_row(dims, radius);
  AcceleratorConfig cfg;
  cfg.dims = r.dims;
  cfg.radius = r.radius;
  cfg.bsize_x = r.bsize_x;
  cfg.bsize_y = r.bsize_y;
  cfg.parvec = r.parvec;
  cfg.partime = r.partime;
  cfg.validate();
  return cfg;
}

void paper_input_size(int dims, int radius, std::int64_t& nx,
                      std::int64_t& ny, std::int64_t& nz) {
  const paper::Table3Row& r = paper::table3_row(dims, radius);
  nx = r.input_x;
  ny = r.input_y;
  nz = r.input_z;
}

FpgaResultRow fpga_result_row(int dims, int radius,
                              const DeviceSpec& device) {
  FpgaResultRow row;
  row.config = paper_config(dims, radius);
  paper_input_size(dims, radius, row.input_x, row.input_y, row.input_z);
  row.usage = estimate_resources(row.config, device);
  row.fmax_mhz = estimate_fmax_mhz(row.config, device);
  row.perf = estimate_performance(row.config, device, row.fmax_mhz,
                                  row.input_x, row.input_y, row.input_z);
  row.power_watts = estimate_power_watts(row.config, device, row.fmax_mhz);
  return row;
}

ComparisonRow fpga_comparison_row(int dims, int radius,
                                  const DeviceSpec& device) {
  const FpgaResultRow r = fpga_result_row(dims, radius, device);
  ComparisonRow row;
  row.device = device.name;
  row.radius = radius;
  row.gflops = r.perf.measured_gflops;
  row.gcells = r.perf.measured_gcells;
  row.power_watts = r.power_watts;
  row.power_efficiency = row.gflops / row.power_watts;
  row.roofline_ratio = r.perf.roofline_ratio;
  row.extrapolated = false;
  return row;
}

std::vector<ComparisonRow> comparison_table(int dims) {
  FPGASTENCIL_EXPECT(dims == 2 || dims == 3, "dims must be 2 or 3");
  std::vector<ComparisonRow> rows;
  const DeviceSpec fpga = arria10_gx1150();
  for (int rad = 1; rad <= 4; ++rad) {
    rows.push_back(fpga_comparison_row(dims, rad, fpga));
  }
  for (int rad = 1; rad <= 4; ++rad) {
    rows.push_back(yask_comparison_row(xeon_e5_2650v4(), dims, rad));
  }
  for (int rad = 1; rad <= 4; ++rad) {
    rows.push_back(yask_comparison_row(xeon_phi_7210f(), dims, rad));
  }
  if (dims == 3) {
    for (int rad = 1; rad <= 4; ++rad) rows.push_back(gpu_measured_row(rad));
    for (int rad = 1; rad <= 4; ++rad) {
      rows.push_back(gpu_extrapolated_row(gtx_980ti(), rad));
    }
    for (int rad = 1; rad <= 4; ++rad) {
      rows.push_back(gpu_extrapolated_row(tesla_p100(), rad));
    }
  }
  return rows;
}

}  // namespace fpga_stencil
