#include "harness/csv.hpp"

namespace fpga_stencil {

void write_comparison_csv(const std::vector<ComparisonRow>& rows,
                          std::ostream& os) {
  os << "device,radius,gflops,gcells,power_w,gflops_per_w,roofline,"
        "extrapolated\n";
  for (const ComparisonRow& r : rows) {
    os << '"' << r.device << "\"," << r.radius << ',' << r.gflops << ','
       << r.gcells << ',' << r.power_watts << ',' << r.power_efficiency
       << ',' << r.roofline_ratio << ',' << (r.extrapolated ? 1 : 0) << '\n';
  }
}

void write_table3_csv(const DeviceSpec& device, std::ostream& os) {
  os << "dims,radius,bsize_x,bsize_y,parvec,partime,input_x,input_y,input_z,"
        "estimated_gbps,measured_gbps,measured_gflops,measured_gcells,"
        "fmax_mhz,logic_frac,bram_bits_frac,bram_blocks_frac,dsp_frac,"
        "power_w,pipeline_efficiency\n";
  for (int dims : {2, 3}) {
    for (int rad = 1; rad <= 4; ++rad) {
      const FpgaResultRow r = fpga_result_row(dims, rad, device);
      os << dims << ',' << rad << ',' << r.config.bsize_x << ','
         << r.config.bsize_y << ',' << r.config.parvec << ','
         << r.config.partime << ',' << r.input_x << ',' << r.input_y << ','
         << r.input_z << ',' << r.perf.estimated_gbps << ','
         << r.perf.measured_gbps << ',' << r.perf.measured_gflops << ','
         << r.perf.measured_gcells << ',' << r.fmax_mhz << ','
         << r.usage.logic_fraction << ',' << r.usage.bram_bits_fraction
         << ',' << r.usage.bram_block_fraction << ','
         << r.usage.dsp_fraction << ',' << r.power_watts << ','
         << r.perf.pipeline_efficiency << '\n';
    }
  }
}

}  // namespace fpga_stencil
