// Experiment assembly: regenerates the paper's result rows from this
// library's models and simulators. Every bench binary is a thin printer
// around these functions, so tests can pin the numbers directly.
#pragma once

#include <vector>

#include "fpga/device_spec.hpp"
#include "fpga/resource_model.hpp"
#include "model/comparison_row.hpp"
#include "model/performance_model.hpp"
#include "stencil/accel_config.hpp"

namespace fpga_stencil {

/// One regenerated row of Table III.
struct FpgaResultRow {
  AcceleratorConfig config;
  std::int64_t input_x = 0, input_y = 0, input_z = 1;
  ResourceUsage usage;
  double fmax_mhz = 0.0;
  PerformanceEstimate perf;
  double power_watts = 0.0;
};

/// The exact accelerator configuration the paper synthesized for
/// (dims, radius) in Table III.
AcceleratorConfig paper_config(int dims, int radius);

/// The paper's benchmark input size for that configuration (a multiple of
/// the compute block size, Section IV.C).
void paper_input_size(int dims, int radius, std::int64_t& nx,
                      std::int64_t& ny, std::int64_t& nz);

/// Regenerates one Table III row on `device` (normally the Arria 10).
FpgaResultRow fpga_result_row(int dims, int radius, const DeviceSpec& device);

/// The same result in Table IV/V form.
ComparisonRow fpga_comparison_row(int dims, int radius,
                                  const DeviceSpec& device);

/// Full Table IV (dims == 2) or Table V (dims == 3) in the paper's row
/// order: Arria 10, Xeon, Xeon Phi, then (3D only) GTX 580 and the two
/// extrapolated GPUs.
std::vector<ComparisonRow> comparison_table(int dims);

}  // namespace fpga_stencil
