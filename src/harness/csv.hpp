// CSV emission for the regenerated tables, for downstream plotting.
#pragma once

#include <ostream>
#include <vector>

#include "harness/experiments.hpp"
#include "model/comparison_row.hpp"

namespace fpga_stencil {

/// device,radius,gflops,gcells,power_w,gflops_per_w,roofline,extrapolated
void write_comparison_csv(const std::vector<ComparisonRow>& rows,
                          std::ostream& os);

/// One row per Table III configuration with every modeled column.
void write_table3_csv(const DeviceSpec& device, std::ostream& os);

}  // namespace fpga_stencil
