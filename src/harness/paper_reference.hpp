// The paper's published numbers, used to (a) annotate every regenerated
// table with paper-vs-ours deviations and (b) pin the calibrated models in
// tests. Values are transcribed from Tables III, IV and V of the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace fpga_stencil::paper {

/// One row of the paper's Table III (FPGA results).
struct Table3Row {
  int dims = 0;
  int radius = 0;
  std::int64_t bsize_x = 0;
  std::int64_t bsize_y = 1;
  int parvec = 0;
  int partime = 0;
  std::int64_t input_x = 0, input_y = 0, input_z = 1;
  double estimated_gbps = 0.0;
  double measured_gbps = 0.0;
  double measured_gflops = 0.0;
  double measured_gcells = 0.0;
  double fmax_mhz = 0.0;
  double logic_fraction = 0.0;
  double mem_bits_fraction = 0.0;
  double mem_blocks_fraction = 0.0;
  double dsp_fraction = 0.0;
  double power_watts = 0.0;
  double model_accuracy = 0.0;
};

/// All eight rows (2D radius 1..4, then 3D radius 1..4).
const std::vector<Table3Row>& table3();

/// The row for (dims, radius); throws if absent.
const Table3Row& table3_row(int dims, int radius);

/// One row of the paper's Tables IV/V (cross-device comparison).
struct ComparisonRefRow {
  const char* device;
  int radius;
  double gflops;
  double gcells;
  double power_efficiency;
  double roofline_ratio;
  bool extrapolated;
};

/// Table IV: 2D stencils (Arria 10, Xeon, Xeon Phi).
const std::vector<ComparisonRefRow>& table4();

/// Table V: 3D stencils (adds GTX 580 + extrapolated GPUs).
const std::vector<ComparisonRefRow>& table5();

/// Section VI.C comparison values for related FPGA work.
struct RelatedFpgaWork {
  const char* citation;
  const char* device;
  int radius;
  double reported_gcells;  ///< what they report
  double paper_gcells;     ///< what the paper achieves for that case
};
const std::vector<RelatedFpgaWork>& related_fpga_work();

/// Relative deviation |ours - paper| / |paper|.
double deviation(double ours, double paper_value);

}  // namespace fpga_stencil::paper
