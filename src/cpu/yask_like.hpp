// YASK-like CPU stencil baseline.
//
// Mirrors how the paper benchmarks Xeon / Xeon Phi with the YASK framework
// (Section IV.B):
//   * the allocated grid is *bigger* than the input grid so out-of-bound
//     neighbors are read from memory rather than branch-handled -- our
//     padded grids replicate the border into a radius-wide halo, which
//     under the paper's clamp boundary condition yields results bit-exact
//     with the naive reference,
//   * spatial cache blocking with a vectorizable (simd) inner x loop,
//   * OpenMP parallelization over blocks,
//   * a built-in auto-tuner that times candidate block sizes and picks the
//     best (YASK's automatic tuning step).
//
// YASK's vector folding is a register-level layout transform that needs
// AVX-512 scatter/gather tricks; we keep the standard simd-over-x layout
// and document the substitution in DESIGN.md. The measured *shape* --
// memory-bound, GCell/s flat in the radius -- is what the comparison needs.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/grid.hpp"
#include "stencil/star_stencil.hpp"
#include "stencil/tap_set.hpp"

namespace fpga_stencil {

/// 2D grid with a radius-wide replicated halo on every side.
class PaddedGrid2D {
 public:
  PaddedGrid2D(std::int64_t nx, std::int64_t ny, int rad);

  [[nodiscard]] std::int64_t nx() const { return nx_; }
  [[nodiscard]] std::int64_t ny() const { return ny_; }
  [[nodiscard]] int radius() const { return rad_; }
  [[nodiscard]] std::int64_t pitch() const { return pitch_; }

  /// Interior cell access (0 <= x < nx, 0 <= y < ny).
  float& at(std::int64_t x, std::int64_t y) {
    return data_[index(x, y)];
  }
  [[nodiscard]] const float& at(std::int64_t x, std::int64_t y) const {
    return data_[index(x, y)];
  }

  /// Pointer to the interior origin; neighbors at +-i and +-i*pitch() are
  /// always readable thanks to the halo.
  [[nodiscard]] const float* interior() const { return data_.data() + origin_; }
  float* interior() { return data_.data() + origin_; }

  /// Copies border values into the halo (clamp boundary condition).
  void refresh_halo();

  void copy_from(const Grid2D<float>& g);
  void copy_to(Grid2D<float>& g) const;

 private:
  [[nodiscard]] std::size_t index(std::int64_t x, std::int64_t y) const {
    return static_cast<std::size_t>(origin_ + y * pitch_ + x);
  }

  std::int64_t nx_, ny_;
  int rad_;
  std::int64_t pitch_;
  std::int64_t origin_;
  std::vector<float> data_;
};

/// 3D analogue of PaddedGrid2D.
class PaddedGrid3D {
 public:
  PaddedGrid3D(std::int64_t nx, std::int64_t ny, std::int64_t nz, int rad);

  [[nodiscard]] std::int64_t nx() const { return nx_; }
  [[nodiscard]] std::int64_t ny() const { return ny_; }
  [[nodiscard]] std::int64_t nz() const { return nz_; }
  [[nodiscard]] int radius() const { return rad_; }
  [[nodiscard]] std::int64_t pitch_x() const { return pitch_x_; }
  [[nodiscard]] std::int64_t pitch_y() const { return pitch_y_; }

  float& at(std::int64_t x, std::int64_t y, std::int64_t z) {
    return data_[index(x, y, z)];
  }
  [[nodiscard]] const float& at(std::int64_t x, std::int64_t y,
                                std::int64_t z) const {
    return data_[index(x, y, z)];
  }

  [[nodiscard]] const float* interior() const { return data_.data() + origin_; }
  float* interior() { return data_.data() + origin_; }

  void refresh_halo();
  void copy_from(const Grid3D<float>& g);
  void copy_to(Grid3D<float>& g) const;

 private:
  [[nodiscard]] std::size_t index(std::int64_t x, std::int64_t y,
                                  std::int64_t z) const {
    return static_cast<std::size_t>(origin_ + (z * pitch_y_ + y) * pitch_x_ +
                                    x);
  }

  std::int64_t nx_, ny_, nz_;
  int rad_;
  std::int64_t pitch_x_, pitch_y_;
  std::int64_t origin_;
  std::vector<float> data_;
};

struct CpuBlockSize {
  std::int64_t bx = 0;  ///< x block (cache blocking; full rows when >= nx)
  std::int64_t by = 0;
  std::int64_t bz = 1;  ///< 3D only
};

struct CpuRunResult {
  double seconds = 0.0;
  std::int64_t cell_updates = 0;
  double gcells = 0.0;   ///< 1e9 cell updates / s
  double gflops = 0.0;
  CpuBlockSize block;    ///< the block size used
};

/// Blocked, vectorized, OpenMP-parallel stencil executor.
class YaskLikeStencil2D {
 public:
  explicit YaskLikeStencil2D(const StarStencil& stencil);
  /// Generic tap sets (box stencils, custom shapes); taps are accumulated
  /// strictly in order, so results stay bit-exact with the reference.
  explicit YaskLikeStencil2D(const TapSet& taps);

  /// One time step from `in` to `out` with cache blocking.
  void step(const PaddedGrid2D& in, PaddedGrid2D& out,
            const CpuBlockSize& block) const;

  /// `iterations` time steps in place; measures throughput.
  CpuRunResult run(Grid2D<float>& grid, int iterations,
                   const CpuBlockSize& block) const;

  /// YASK-style auto-tuner: times the candidate block sizes on the given
  /// grid and returns the fastest.
  CpuBlockSize auto_tune(std::int64_t nx, std::int64_t ny) const;

 private:
  TapSet taps_;
};

class YaskLikeStencil3D {
 public:
  explicit YaskLikeStencil3D(const StarStencil& stencil);
  /// Generic tap sets (box stencils, custom shapes).
  explicit YaskLikeStencil3D(const TapSet& taps);

  void step(const PaddedGrid3D& in, PaddedGrid3D& out,
            const CpuBlockSize& block) const;
  CpuRunResult run(Grid3D<float>& grid, int iterations,
                   const CpuBlockSize& block) const;
  CpuBlockSize auto_tune(std::int64_t nx, std::int64_t ny,
                         std::int64_t nz) const;

 private:
  TapSet taps_;
};

}  // namespace fpga_stencil
