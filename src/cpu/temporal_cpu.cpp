#include "cpu/temporal_cpu.hpp"

#include <algorithm>

#include "common/stopwatch.hpp"

namespace fpga_stencil {

TemporalCpuResult temporal_blocked_run_2d(const TapSet& taps,
                                          Grid2D<float>& grid, int iterations,
                                          std::int64_t block_y, int t_block) {
  FPGASTENCIL_EXPECT(taps.dims() == 2, "2D run needs a 2D tap set");
  FPGASTENCIL_EXPECT(block_y >= 1 && t_block >= 1, "bad blocking parameters");
  FPGASTENCIL_EXPECT(iterations >= 0, "iterations must be non-negative");
  const std::int64_t nx = grid.nx(), ny = grid.ny();
  const int rad = taps.radius();
  const YaskLikeStencil2D exec(taps);

  TemporalCpuResult result;
  Stopwatch sw;
  Grid2D<float> next(nx, ny);
  int remaining = iterations;
  while (remaining > 0) {
    const int steps = std::min(remaining, t_block);
    const std::int64_t halo = std::int64_t(steps) * rad;
    for (std::int64_t y0 = 0; y0 < ny; y0 += block_y) {
      const std::int64_t rows = std::min(block_y, ny - y0);
      // The local mini-grid is the block plus the overlap halo, *clipped*
      // at the real grid borders: there, the mini-grid's own clamp IS the
      // true boundary condition, while at interior seams the clamp
      // produces garbage that grows `rad` rows per fused step -- strictly
      // inside the halo.
      const std::int64_t lo = std::max<std::int64_t>(0, y0 - halo);
      const std::int64_t hi = std::min(ny, y0 + rows + halo);
      const std::int64_t h = hi - lo;
      Grid2D<float> local(nx, h);
      std::copy_n(grid.data() + lo * nx, std::size_t(nx * h), local.data());
      exec.run(local, steps, CpuBlockSize{nx, h, 1});
      result.cells_computed += nx * h * steps;
      std::copy_n(local.data() + (y0 - lo) * nx, std::size_t(nx * rows),
                  next.data() + y0 * nx);
    }
    std::swap(grid, next);
    remaining -= steps;
  }

  result.run.seconds = sw.seconds();
  result.run.block = CpuBlockSize{nx, block_y, 1};
  result.run.cell_updates = nx * ny * std::int64_t(iterations);
  result.run.gcells =
      result.run.seconds > 0
          ? double(result.run.cell_updates) / result.run.seconds / 1e9
          : 0.0;
  result.run.gflops = result.run.gcells * double(taps.flops_per_cell());
  return result;
}

TemporalCpuResult temporal_blocked_run_3d(const TapSet& taps,
                                          Grid3D<float>& grid, int iterations,
                                          std::int64_t block_z, int t_block) {
  FPGASTENCIL_EXPECT(taps.dims() == 3, "3D run needs a 3D tap set");
  FPGASTENCIL_EXPECT(block_z >= 1 && t_block >= 1, "bad blocking parameters");
  FPGASTENCIL_EXPECT(iterations >= 0, "iterations must be non-negative");
  const std::int64_t nx = grid.nx(), ny = grid.ny(), nz = grid.nz();
  const std::int64_t plane = nx * ny;
  const int rad = taps.radius();
  const YaskLikeStencil3D exec(taps);

  TemporalCpuResult result;
  Stopwatch sw;
  Grid3D<float> next(nx, ny, nz);
  int remaining = iterations;
  while (remaining > 0) {
    const int steps = std::min(remaining, t_block);
    const std::int64_t halo = std::int64_t(steps) * rad;
    for (std::int64_t z0 = 0; z0 < nz; z0 += block_z) {
      const std::int64_t planes = std::min(block_z, nz - z0);
      // Clipped at real grid borders, as in the 2D case.
      const std::int64_t lo = std::max<std::int64_t>(0, z0 - halo);
      const std::int64_t hi = std::min(nz, z0 + planes + halo);
      const std::int64_t h = hi - lo;
      Grid3D<float> local(nx, ny, h);
      std::copy_n(grid.data() + lo * plane, std::size_t(plane * h),
                  local.data());
      exec.run(local, steps, CpuBlockSize{nx, 16, h});
      result.cells_computed += plane * h * steps;
      std::copy_n(local.data() + (z0 - lo) * plane,
                  std::size_t(plane * planes), next.data() + z0 * plane);
    }
    std::swap(grid, next);
    remaining -= steps;
  }

  result.run.seconds = sw.seconds();
  result.run.block = CpuBlockSize{nx, ny, block_z};
  result.run.cell_updates = plane * nz * std::int64_t(iterations);
  result.run.gcells =
      result.run.seconds > 0
          ? double(result.run.cell_updates) / result.run.seconds / 1e9
          : 0.0;
  result.run.gflops = result.run.gcells * double(taps.flops_per_cell());
  return result;
}

}  // namespace fpga_stencil
