// Paper-scale performance model for the Xeon / Xeon Phi comparison rows.
//
// We cannot run YASK on the paper's Xeon E5-2650 v4 or Xeon Phi 7210F; what
// the paper measures there is a *sustained memory bandwidth fraction*: both
// processors are memory-bound for every stencil order, GCell/s is flat in
// the radius, and the roofline ratio hovers around 0.5 (Tables IV/V). We
// therefore model each device by a per-dimensionality sustained-bandwidth
// fraction and an affine package-power fit, both taken from the paper's
// measurements. The YASK-like host baseline (yask_like.hpp) demonstrates
// the same flat-GCell/s shape on real hardware.
#pragma once

#include "fpga/device_spec.hpp"
#include "model/comparison_row.hpp"
#include "stencil/characteristics.hpp"

namespace fpga_stencil {

/// Sustained fraction of theoretical bandwidth YASK achieves on the device
/// (paper-measured: ~0.52 Xeon 2D, ~0.46 Xeon 3D, ~0.475 / 0.44 Xeon Phi).
double yask_sustained_bw_fraction(const DeviceSpec& device, int dims);

/// Package power while running YASK (paper-measured affine fit).
double yask_power_watts(const DeviceSpec& device, int dims, int radius);

/// Full Table IV/V row for a CPU-class device running YASK.
ComparisonRow yask_comparison_row(const DeviceSpec& device, int dims,
                                  int radius);

}  // namespace fpga_stencil
