#include "cpu/yask_like.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/stopwatch.hpp"
#include "stencil/characteristics.hpp"

namespace fpga_stencil {

// ------------------------------------------------------------ PaddedGrid2D

PaddedGrid2D::PaddedGrid2D(std::int64_t nx, std::int64_t ny, int rad)
    : nx_(nx),
      ny_(ny),
      rad_(rad),
      pitch_(nx + 2 * rad),
      origin_(std::int64_t(rad) * (nx + 2 * rad) + rad),
      data_(static_cast<std::size_t>((nx + 2 * rad) * (ny + 2 * rad)), 0.0f) {
  FPGASTENCIL_EXPECT(nx > 0 && ny > 0 && rad >= 1, "bad padded grid shape");
}

void PaddedGrid2D::refresh_halo() {
  // Horizontal extension of every interior row, then vertical replication
  // of whole padded rows: corners end up as the corner cell, which is the
  // clamp boundary condition.
  for (std::int64_t y = 0; y < ny_; ++y) {
    float* row = data_.data() + index(0, y);
    for (int i = 1; i <= rad_; ++i) {
      row[-i] = row[0];
      row[nx_ - 1 + i] = row[nx_ - 1];
    }
  }
  const std::size_t row_bytes = static_cast<std::size_t>(pitch_);
  for (int i = 1; i <= rad_; ++i) {
    std::copy_n(data_.data() + index(-rad_, 0), row_bytes,
                data_.data() + index(-rad_, -i));
    std::copy_n(data_.data() + index(-rad_, ny_ - 1), row_bytes,
                data_.data() + index(-rad_, ny_ - 1 + i));
  }
}

void PaddedGrid2D::copy_from(const Grid2D<float>& g) {
  FPGASTENCIL_EXPECT(g.nx() == nx_ && g.ny() == ny_, "shape mismatch");
  for (std::int64_t y = 0; y < ny_; ++y) {
    std::copy_n(g.data() + y * nx_, static_cast<std::size_t>(nx_),
                data_.data() + index(0, y));
  }
}

void PaddedGrid2D::copy_to(Grid2D<float>& g) const {
  FPGASTENCIL_EXPECT(g.nx() == nx_ && g.ny() == ny_, "shape mismatch");
  for (std::int64_t y = 0; y < ny_; ++y) {
    std::copy_n(data_.data() + index(0, y), static_cast<std::size_t>(nx_),
                g.data() + y * nx_);
  }
}

// ------------------------------------------------------------ PaddedGrid3D

PaddedGrid3D::PaddedGrid3D(std::int64_t nx, std::int64_t ny, std::int64_t nz,
                           int rad)
    : nx_(nx),
      ny_(ny),
      nz_(nz),
      rad_(rad),
      pitch_x_(nx + 2 * rad),
      pitch_y_(ny + 2 * rad),
      origin_((std::int64_t(rad) * (ny + 2 * rad) + rad) * (nx + 2 * rad) +
              rad),
      data_(static_cast<std::size_t>((nx + 2 * rad) * (ny + 2 * rad) *
                                     (nz + 2 * rad)),
            0.0f) {
  FPGASTENCIL_EXPECT(nx > 0 && ny > 0 && nz > 0 && rad >= 1,
                     "bad padded grid shape");
}

void PaddedGrid3D::refresh_halo() {
  // x extension, then y replication of padded rows, then z replication of
  // padded planes -- edges and corners resolve to the clamp condition.
  for (std::int64_t z = 0; z < nz_; ++z) {
    for (std::int64_t y = 0; y < ny_; ++y) {
      float* row = data_.data() + index(0, y, z);
      for (int i = 1; i <= rad_; ++i) {
        row[-i] = row[0];
        row[nx_ - 1 + i] = row[nx_ - 1];
      }
    }
    const std::size_t row_n = static_cast<std::size_t>(pitch_x_);
    for (int i = 1; i <= rad_; ++i) {
      std::copy_n(data_.data() + index(-rad_, 0, z), row_n,
                  data_.data() + index(-rad_, -i, z));
      std::copy_n(data_.data() + index(-rad_, ny_ - 1, z), row_n,
                  data_.data() + index(-rad_, ny_ - 1 + i, z));
    }
  }
  const std::size_t plane_n =
      static_cast<std::size_t>(pitch_x_ * pitch_y_);
  for (int i = 1; i <= rad_; ++i) {
    std::copy_n(data_.data() + index(-rad_, -rad_, 0), plane_n,
                data_.data() + index(-rad_, -rad_, -i));
    std::copy_n(data_.data() + index(-rad_, -rad_, nz_ - 1), plane_n,
                data_.data() + index(-rad_, -rad_, nz_ - 1 + i));
  }
}

void PaddedGrid3D::copy_from(const Grid3D<float>& g) {
  FPGASTENCIL_EXPECT(g.nx() == nx_ && g.ny() == ny_ && g.nz() == nz_,
                     "shape mismatch");
  for (std::int64_t z = 0; z < nz_; ++z) {
    for (std::int64_t y = 0; y < ny_; ++y) {
      std::copy_n(g.data() + (z * ny_ + y) * nx_,
                  static_cast<std::size_t>(nx_), data_.data() + index(0, y, z));
    }
  }
}

void PaddedGrid3D::copy_to(Grid3D<float>& g) const {
  FPGASTENCIL_EXPECT(g.nx() == nx_ && g.ny() == ny_ && g.nz() == nz_,
                     "shape mismatch");
  for (std::int64_t z = 0; z < nz_; ++z) {
    for (std::int64_t y = 0; y < ny_; ++y) {
      std::copy_n(data_.data() + index(0, y, z),
                  static_cast<std::size_t>(nx_),
                  g.data() + (z * ny_ + y) * nx_);
    }
  }
}

// -------------------------------------------------------------- 2D kernel

namespace {

/// Packed coefficients/offsets in the TapSet's accumulation order so the
/// result is bit-exact with the naive reference. The first tap is applied
/// with `=`, the rest with `+=`.
struct PackedTaps {
  std::vector<float> coeffs;
  std::vector<std::int64_t> offsets;
};

PackedTaps pack_taps_2d(const TapSet& taps, std::int64_t pitch) {
  PackedTaps t;
  for (const Tap& tap : taps.taps()) {
    t.coeffs.push_back(tap.coeff);
    t.offsets.push_back(tap.dx + tap.dy * pitch);
  }
  return t;
}

PackedTaps pack_taps_3d(const TapSet& taps, std::int64_t pitch_x,
                        std::int64_t pitch_y) {
  PackedTaps t;
  for (const Tap& tap : taps.taps()) {
    t.coeffs.push_back(tap.coeff);
    t.offsets.push_back(tap.dx + (tap.dy + tap.dz * pitch_y) * pitch_x);
  }
  return t;
}

}  // namespace

YaskLikeStencil2D::YaskLikeStencil2D(const StarStencil& stencil)
    : YaskLikeStencil2D(stencil.to_taps()) {}

YaskLikeStencil2D::YaskLikeStencil2D(const TapSet& taps) : taps_(taps) {
  FPGASTENCIL_EXPECT(taps.dims() == 2, "2D executor needs a 2D tap set");
}

void YaskLikeStencil2D::step(const PaddedGrid2D& in, PaddedGrid2D& out,
                             const CpuBlockSize& block) const {
  FPGASTENCIL_EXPECT(in.nx() == out.nx() && in.ny() == out.ny(),
                     "shape mismatch");
  FPGASTENCIL_EXPECT(in.radius() >= taps_.radius(),
                     "halo smaller than the stencil radius");
  const std::int64_t nx = in.nx(), ny = in.ny(), pitch = in.pitch();
  const std::int64_t by = std::max<std::int64_t>(1, block.by);
  const std::int64_t bx = block.bx > 0 ? block.bx : nx;
  const PackedTaps taps = pack_taps_2d(taps_, pitch);
  const float* src = in.interior();
  float* dst = out.interior();
  const int ntaps = static_cast<int>(taps.coeffs.size());
  const float* cf = taps.coeffs.data();
  const std::int64_t* off = taps.offsets.data();

  const std::int64_t nby = (ny + by - 1) / by;
  const std::int64_t nbx = (nx + bx - 1) / bx;
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t jb = 0; jb < nby; ++jb) {
    for (std::int64_t ib = 0; ib < nbx; ++ib) {
      const std::int64_t y0 = jb * by, y1 = std::min(ny, y0 + by);
      const std::int64_t x0 = ib * bx, x1 = std::min(nx, x0 + bx);
      for (std::int64_t y = y0; y < y1; ++y) {
        const float* row = src + y * pitch;
        float* orow = dst + y * pitch;
#pragma omp simd
        for (std::int64_t x = x0; x < x1; ++x) {
          float acc = cf[0] * row[x + off[0]];
          for (int t = 1; t < ntaps; ++t) acc += cf[t] * row[x + off[t]];
          orow[x] = acc;
        }
      }
    }
  }
}

CpuRunResult YaskLikeStencil2D::run(Grid2D<float>& grid, int iterations,
                                    const CpuBlockSize& block) const {
  PaddedGrid2D a(grid.nx(), grid.ny(), taps_.radius());
  PaddedGrid2D b(grid.nx(), grid.ny(), taps_.radius());
  a.copy_from(grid);

  Stopwatch sw;
  for (int t = 0; t < iterations; ++t) {
    a.refresh_halo();
    step(a, b, block);
    std::swap(a, b);
  }
  CpuRunResult r;
  r.seconds = sw.seconds();
  r.block = block;
  r.cell_updates = grid.nx() * grid.ny() * std::int64_t(iterations);
  r.gcells = r.seconds > 0 ? double(r.cell_updates) / r.seconds / 1e9 : 0.0;
  r.gflops = r.gcells * double(taps_.flops_per_cell());
  a.copy_to(grid);
  return r;
}

CpuBlockSize YaskLikeStencil2D::auto_tune(std::int64_t nx,
                                          std::int64_t ny) const {
  Grid2D<float> probe(nx, ny);
  probe.fill_random(99);
  CpuBlockSize best;
  double best_time = std::numeric_limits<double>::max();
  for (std::int64_t by : {8, 16, 32, 64, 128}) {
    if (by > ny) break;
    Grid2D<float> work = probe;
    const CpuBlockSize cand{nx, by, 1};
    const CpuRunResult r = run(work, 2, cand);
    if (r.seconds < best_time) {
      best_time = r.seconds;
      best = cand;
    }
  }
  if (best.bx == 0) best = CpuBlockSize{nx, ny, 1};
  return best;
}

// -------------------------------------------------------------- 3D kernel

YaskLikeStencil3D::YaskLikeStencil3D(const StarStencil& stencil)
    : YaskLikeStencil3D(stencil.to_taps()) {}

YaskLikeStencil3D::YaskLikeStencil3D(const TapSet& taps) : taps_(taps) {
  FPGASTENCIL_EXPECT(taps.dims() == 3, "3D executor needs a 3D tap set");
}

void YaskLikeStencil3D::step(const PaddedGrid3D& in, PaddedGrid3D& out,
                             const CpuBlockSize& block) const {
  FPGASTENCIL_EXPECT(in.nx() == out.nx() && in.ny() == out.ny() &&
                         in.nz() == out.nz(),
                     "shape mismatch");
  FPGASTENCIL_EXPECT(in.radius() >= taps_.radius(),
                     "halo smaller than the stencil radius");
  const std::int64_t nx = in.nx(), ny = in.ny(), nz = in.nz();
  const std::int64_t px = in.pitch_x(), py = in.pitch_y();
  const std::int64_t by = std::max<std::int64_t>(1, block.by);
  const std::int64_t bz = std::max<std::int64_t>(1, block.bz);
  const PackedTaps taps = pack_taps_3d(taps_, px, py);
  const float* src = in.interior();
  float* dst = out.interior();
  const int ntaps = static_cast<int>(taps.coeffs.size());
  const float* cf = taps.coeffs.data();
  const std::int64_t* off = taps.offsets.data();

  const std::int64_t nbz = (nz + bz - 1) / bz;
  const std::int64_t nby = (ny + by - 1) / by;
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t kb = 0; kb < nbz; ++kb) {
    for (std::int64_t jb = 0; jb < nby; ++jb) {
      const std::int64_t z0 = kb * bz, z1 = std::min(nz, z0 + bz);
      const std::int64_t y0 = jb * by, y1 = std::min(ny, y0 + by);
      for (std::int64_t z = z0; z < z1; ++z) {
        for (std::int64_t y = y0; y < y1; ++y) {
          const float* row = src + (z * py + y) * px;
          float* orow = dst + (z * py + y) * px;
#pragma omp simd
          for (std::int64_t x = 0; x < nx; ++x) {
            float acc = cf[0] * row[x + off[0]];
            for (int t = 1; t < ntaps; ++t) acc += cf[t] * row[x + off[t]];
            orow[x] = acc;
          }
        }
      }
    }
  }
}

CpuRunResult YaskLikeStencil3D::run(Grid3D<float>& grid, int iterations,
                                    const CpuBlockSize& block) const {
  PaddedGrid3D a(grid.nx(), grid.ny(), grid.nz(), taps_.radius());
  PaddedGrid3D b(grid.nx(), grid.ny(), grid.nz(), taps_.radius());
  a.copy_from(grid);

  Stopwatch sw;
  for (int t = 0; t < iterations; ++t) {
    a.refresh_halo();
    step(a, b, block);
    std::swap(a, b);
  }
  CpuRunResult r;
  r.seconds = sw.seconds();
  r.block = block;
  r.cell_updates =
      grid.nx() * grid.ny() * grid.nz() * std::int64_t(iterations);
  r.gcells = r.seconds > 0 ? double(r.cell_updates) / r.seconds / 1e9 : 0.0;
  r.gflops = r.gcells * double(taps_.flops_per_cell());
  a.copy_to(grid);
  return r;
}

CpuBlockSize YaskLikeStencil3D::auto_tune(std::int64_t nx, std::int64_t ny,
                                          std::int64_t nz) const {
  Grid3D<float> probe(nx, ny, nz);
  probe.fill_random(99);
  CpuBlockSize best;
  double best_time = std::numeric_limits<double>::max();
  for (std::int64_t bz : {4, 8, 16}) {
    for (std::int64_t by : {8, 16, 32}) {
      if (by > ny || bz > nz) continue;
      Grid3D<float> work = probe;
      const CpuBlockSize cand{nx, by, bz};
      const CpuRunResult r = run(work, 2, cand);
      if (r.seconds < best_time) {
        best_time = r.seconds;
        best = cand;
      }
    }
  }
  if (best.bx == 0) best = CpuBlockSize{nx, ny, nz};
  return best;
}

}  // namespace fpga_stencil
