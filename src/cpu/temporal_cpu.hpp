// Overlapped temporal cache blocking on the CPU.
//
// Section V.B of the paper: "YASK also supports temporal blocking; however,
// we could not achieve a meaningful performance improvement over what could
// already be achieved without temporal blocking, regardless of the
// hardware" (it only pays on Xeon Phi in cache mode, per Yount & Duran
// [22]). This module implements the FPGA scheme's CPU analogue --
// overlapped blocks that fuse T time steps in cache, recomputing a
// T*radius halo -- so the claim can be measured rather than asserted:
// bench/ablation_cpu_temporal_blocking compares it against the plain
// spatially-blocked executor on the build host.
//
// Results are bit-exact with the naive reference: each block is a clamped
// mini-grid whose edge garbage grows radius cells per fused step, strictly
// inside the recomputed halo (the same overlapped-blocking argument as on
// the FPGA).
#pragma once

#include "cpu/yask_like.hpp"
#include "stencil/tap_set.hpp"

namespace fpga_stencil {

struct TemporalCpuResult {
  CpuRunResult run;            ///< timing of the temporally blocked run
  std::int64_t cells_computed = 0;  ///< incl. recomputed halo cells
  /// Redundant-computation factor: computed / useful updates.
  [[nodiscard]] double redundancy() const {
    return run.cell_updates > 0
               ? double(cells_computed) / double(run.cell_updates)
               : 0.0;
  }
};

/// 2D: blocks of `block_y` rows (full rows in x), `t_block` fused time
/// steps per pass with a t_block*radius overlap halo per side.
TemporalCpuResult temporal_blocked_run_2d(const TapSet& taps,
                                          Grid2D<float>& grid, int iterations,
                                          std::int64_t block_y, int t_block);

/// 3D: blocks of `block_z` planes (full xy planes), analogous halo in z.
TemporalCpuResult temporal_blocked_run_3d(const TapSet& taps,
                                          Grid3D<float>& grid, int iterations,
                                          std::int64_t block_z, int t_block);

}  // namespace fpga_stencil
