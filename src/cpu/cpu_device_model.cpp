#include "cpu/cpu_device_model.hpp"

#include "common/expect.hpp"

namespace fpga_stencil {

double yask_sustained_bw_fraction(const DeviceSpec& device, int dims) {
  FPGASTENCIL_EXPECT(dims == 2 || dims == 3, "dims must be 2 or 3");
  const bool manycore = device.kind == DeviceKind::kManycore;
  if (manycore) return dims == 2 ? 0.475 : 0.44;
  FPGASTENCIL_EXPECT(device.kind == DeviceKind::kCpu,
                     "YASK model covers CPU-class devices");
  return dims == 2 ? 0.52 : 0.46;
}

double yask_power_watts(const DeviceSpec& device, int dims, int radius) {
  FPGASTENCIL_EXPECT(radius >= 1, "radius must be >= 1");
  (void)dims;
  if (device.kind == DeviceKind::kManycore) {
    // Xeon Phi 7210F: 222.8-226.8 W measured across all orders.
    return 222.0 + 1.0 * radius;
  }
  // Xeon E5-2650 v4: 87-99 W, rising gently with arithmetic per cell.
  return 84.0 + 3.0 * radius;
}

ComparisonRow yask_comparison_row(const DeviceSpec& device, int dims,
                                  int radius) {
  const StencilCharacteristics sc = stencil_characteristics(dims, radius);
  const double frac = yask_sustained_bw_fraction(device, dims);

  ComparisonRow row;
  row.device = device.name;
  row.radius = radius;
  // Memory-bound: cell rate = sustained bytes/s over bytes per update.
  row.gcells = device.peak_bw_gbps * frac / double(sc.bytes_per_cell);
  row.gflops = row.gcells * double(sc.flop_per_cell);
  row.power_watts = yask_power_watts(device, dims, radius);
  row.power_efficiency = row.gflops / row.power_watts;
  row.roofline_ratio = frac;
  row.extrapolated = false;
  return row;
}

}  // namespace fpga_stencil
