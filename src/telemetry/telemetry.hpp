// Telemetry facade: one object bundling the metrics registry and the
// tracer, threaded through the execution layers as an opt-in hook.
//
// Attachment points (all nullable; a null hook keeps every hot path
// instrument-free):
//   - AcceleratorConfig::telemetry      -- picked up by StencilAccelerator,
//     run_concurrent, run_block_parallel, run_resilient, MultiFpgaCluster
//   - RunOptions::telemetry (so also ResilienceOptions::base.telemetry)
//     -- per-call override
//
// The runtimes that must count *unconditionally* (the RunStats/ClusterStats
// resilience counters) bind to a function-local Telemetry when none is
// attached, so there is exactly one counting mechanism either way and the
// public stat fields are thin copies of registry counters.
#pragma once

#include <ostream>
#include <string>
#include <string_view>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace fpga_stencil {

class Telemetry {
 public:
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const { return tracer_; }

  /// Snapshot exports; see MetricsSnapshot for the formats.
  void write_metrics_json(std::ostream& os) const {
    metrics_.snapshot().write_json(os);
  }
  void write_metrics_csv(std::ostream& os) const {
    metrics_.snapshot().write_csv(os);
  }
  void write_trace_json(std::ostream& os) const {
    tracer_.write_chrome_trace(os);
  }

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
};

/// Binds the three per-channel instruments under `prefix`
/// ("<prefix>.high_water", "<prefix>.blocked_read_ns",
/// "<prefix>.blocked_write_ns").
ChannelProbe make_channel_probe(Telemetry& telemetry,
                                std::string_view prefix);

/// Default latency-histogram bucket bounds in nanoseconds: 1us .. 10s in
/// decade steps, for pass durations and checkpoint times.
std::vector<std::int64_t> default_latency_bounds_ns();

/// Records one finished pipeline pass under `prefix`:
///   <prefix>.passes            counter
///   <prefix>.cells_written     counter
///   <prefix>.pass_ns           histogram (default_latency_bounds_ns)
///   <prefix>.pass.cells_per_s  gauge, throughput of this pass
void record_pass_metrics(Telemetry& telemetry, std::string_view prefix,
                         std::int64_t cells_written, std::int64_t pass_ns);

/// Records one finished engine job under `prefix`:
///   <prefix>.queue_wait_ns   histogram, admission-to-dispatch wait
///   <prefix>.job_ns          histogram, execution time
///   <prefix>.cells_written   counter
///   <prefix>.job.cells_per_s gauge, throughput of this job
void record_job_metrics(Telemetry& telemetry, std::string_view prefix,
                        std::int64_t queue_ns, std::int64_t run_ns,
                        std::int64_t cells_written);

}  // namespace fpga_stencil
