#include "telemetry/metrics.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "common/json.hpp"

namespace fpga_stencil {

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::int64_t>[bounds_.size() + 1]) {
  FPGASTENCIL_EXPECT(!bounds_.empty(), "histogram needs at least one bound");
  FPGASTENCIL_EXPECT(std::is_sorted(bounds_.begin(), bounds_.end()),
                     "histogram bounds must be ascending");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

std::string_view metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::counter: return "counter";
    case MetricKind::gauge: return "gauge";
    case MetricKind::histogram: return "histogram";
  }
  return "unknown";
}

const MetricSample* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::int64_t MetricsSnapshot::value_or(std::string_view name,
                                       std::int64_t fallback) const {
  const MetricSample* s = find(name);
  return s ? s->value : fallback;
}

void MetricsSnapshot::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("metrics").begin_array();
  for (const MetricSample& s : samples) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("kind").value(metric_kind_name(s.kind));
    if (s.kind == MetricKind::histogram) {
      w.key("count").value(s.value);
      w.key("sum").value(s.sum);
      w.key("bounds").begin_array();
      for (const std::int64_t b : s.bounds) w.value(b);
      w.end_array();
      w.key("buckets").begin_array();
      for (const std::int64_t b : s.buckets) w.value(b);
      w.end_array();
    } else {
      w.key("value").value(s.value);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void MetricsSnapshot::write_csv(std::ostream& os) const {
  os << "metric,kind,value,sum\n";
  for (const MetricSample& s : samples) {
    os << s.name << ',' << metric_kind_name(s.kind) << ',' << s.value << ','
       << (s.kind == MetricKind::histogram ? s.sum : 0) << '\n';
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<std::int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<Histogram>(std::move(bounds)))
              .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.samples.reserve(counters_.size() + gauges_.size() +
                       histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::counter;
    s.value = c->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::gauge;
    s.value = g->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::histogram;
    s.value = h->count();
    s.sum = h->sum();
    s.bounds = h->bounds();
    s.buckets.reserve(s.bounds.size() + 1);
    for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
      s.buckets.push_back(h->bucket_count(i));
    }
    snap.samples.push_back(std::move(s));
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return snap;
}

}  // namespace fpga_stencil
