#include "telemetry/telemetry.hpp"

namespace fpga_stencil {

ChannelProbe make_channel_probe(Telemetry& telemetry,
                                std::string_view prefix) {
  MetricsRegistry& reg = telemetry.metrics();
  const std::string p(prefix);
  ChannelProbe probe;
  probe.high_water = &reg.gauge(p + ".high_water");
  probe.blocked_read_ns = &reg.counter(p + ".blocked_read_ns");
  probe.blocked_write_ns = &reg.counter(p + ".blocked_write_ns");
  return probe;
}

std::vector<std::int64_t> default_latency_bounds_ns() {
  return {1'000,          10'000,         100'000,       1'000'000,
          10'000'000,     100'000'000,    1'000'000'000, 10'000'000'000};
}

void record_pass_metrics(Telemetry& telemetry, std::string_view prefix,
                         std::int64_t cells_written, std::int64_t pass_ns) {
  MetricsRegistry& reg = telemetry.metrics();
  const std::string p(prefix);
  reg.counter(p + ".passes").add(1);
  reg.counter(p + ".cells_written").add(cells_written);
  reg.histogram(p + ".pass_ns", default_latency_bounds_ns())
      .observe(pass_ns);
  if (pass_ns > 0) {
    reg.gauge(p + ".pass.cells_per_s")
        .set(std::int64_t(double(cells_written) * 1e9 / double(pass_ns)));
  }
}

void record_job_metrics(Telemetry& telemetry, std::string_view prefix,
                        std::int64_t queue_ns, std::int64_t run_ns,
                        std::int64_t cells_written) {
  MetricsRegistry& reg = telemetry.metrics();
  const std::string p(prefix);
  reg.histogram(p + ".queue_wait_ns", default_latency_bounds_ns())
      .observe(queue_ns);
  reg.histogram(p + ".job_ns", default_latency_bounds_ns()).observe(run_ns);
  reg.counter(p + ".cells_written").add(cells_written);
  if (run_ns > 0) {
    reg.gauge(p + ".job.cells_per_s")
        .set(std::int64_t(double(cells_written) * 1e9 / double(run_ns)));
  }
}

}  // namespace fpga_stencil
