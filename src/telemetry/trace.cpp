#include "telemetry/trace.hpp"

#include <algorithm>

#include "common/json.hpp"

namespace fpga_stencil {

void Tracer::Span::end() {
  if (!tracer_) return;
  Tracer* t = std::exchange(tracer_, nullptr);
  t->complete(std::move(name_), std::move(category_), tid_, start_ns_,
              t->now_ns() - start_ns_);
}

void Tracer::complete(std::string name, std::string category, int tid,
                      std::int64_t start_ns, std::int64_t duration_ns) {
  Event e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.tid = tid;
  e.phase = 'X';
  e.start_ns = start_ns;
  e.duration_ns = std::max<std::int64_t>(duration_ns, 0);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::instant(std::string name, int tid, std::string category) {
  Event e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.tid = tid;
  e.phase = 'i';
  e.start_ns = now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::set_thread_name(int tid, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing_tid, existing_name] : thread_names_) {
    if (existing_tid == tid) {
      existing_name = std::move(name);
      return;
    }
  }
  thread_names_.emplace_back(tid, std::move(name));
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<std::string> Tracer::event_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(events_.size());
  for (const Event& e : events_) names.push_back(e.name);
  return names;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const auto& [tid, name] : thread_names_) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(1);
    w.key("tid").value(tid);
    w.key("args").begin_object();
    w.key("name").value(name);
    w.end_object();
    w.end_object();
  }
  for (const Event& e : events_) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value(e.category);
    w.key("ph").value(std::string_view(&e.phase, 1));
    w.key("pid").value(1);
    w.key("tid").value(e.tid);
    // trace_event timestamps are microseconds; keep sub-us precision.
    w.key("ts").value(double(e.start_ns) / 1e3);
    if (e.phase == 'X') {
      w.key("dur").value(double(e.duration_ns) / 1e3);
    } else if (e.phase == 'i') {
      w.key("s").value("t");  // instant scoped to its thread
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace fpga_stencil
