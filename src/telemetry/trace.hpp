// Span-based tracer with Chrome trace_event export.
//
// Spans model the pipeline's concurrent structure: each kernel thread of a
// concurrent pass (read, PE 0..n-1, write) opens a span on its own trace
// lane ("tid"), so the exported file opens directly in chrome://tracing or
// https://ui.perfetto.dev and shows the read -> PE chain -> write overlap,
// back-pressure gaps included. Lanes are small caller-chosen integers (the
// stage index), not OS thread ids: deterministic lane order beats raw tids
// for reading a pipeline.
//
// Timestamps come from one shared monotonic epoch (Stopwatch::nanoseconds)
// so spans from different threads line up. Recording a finished span takes
// one mutex-guarded vector push -- spans are per-pass/per-stage, not
// per-vector, so this is far off the hot path.
//
// Export format: the JSON Object Format of the Trace Event spec -- ph "X"
// (complete) events with microsecond ts/dur, plus thread_name metadata.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.hpp"

namespace fpga_stencil {

class Tracer {
 public:
  /// RAII span: records on end() or destruction, whichever comes first.
  /// Movable so it can be created by Tracer::span and kept on the stack of
  /// the traced thread.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept {
      end();
      tracer_ = std::exchange(other.tracer_, nullptr);
      name_ = std::move(other.name_);
      category_ = std::move(other.category_);
      tid_ = other.tid_;
      start_ns_ = other.start_ns_;
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { end(); }

    /// Records the span now; further calls are no-ops.
    void end();

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::string name, std::string category, int tid)
        : tracer_(tracer),
          name_(std::move(name)),
          category_(std::move(category)),
          tid_(tid),
          start_ns_(tracer->now_ns()) {}

    Tracer* tracer_ = nullptr;
    std::string name_;
    std::string category_;
    int tid_ = 0;
    std::int64_t start_ns_ = 0;
  };

  /// Nanoseconds since the tracer's epoch (construction).
  [[nodiscard]] std::int64_t now_ns() const { return epoch_.nanoseconds(); }

  /// Opens a span on lane `tid` starting now.
  [[nodiscard]] Span span(std::string name, int tid,
                          std::string category = "pipeline") {
    return Span(this, std::move(name), std::move(category), tid);
  }

  /// Records a zero-duration marker (ph "i") -- failover events, trips.
  void instant(std::string name, int tid, std::string category = "event");

  /// Records an already-timed span (both ends measured by the caller).
  void complete(std::string name, std::string category, int tid,
                std::int64_t start_ns, std::int64_t duration_ns);

  /// Labels lane `tid` in the trace viewer ("read_kernel", "PE 2", ...).
  void set_thread_name(int tid, std::string name);

  [[nodiscard]] std::size_t event_count() const;
  /// Names of all recorded span/instant events, in record order (used by
  /// self-checks: "does the trace cover every PE?").
  [[nodiscard]] std::vector<std::string> event_names() const;

  /// Writes the whole trace as Chrome trace_event JSON.
  void write_chrome_trace(std::ostream& os) const;

 private:
  struct Event {
    std::string name;
    std::string category;
    int tid = 0;
    char phase = 'X';
    std::int64_t start_ns = 0;
    std::int64_t duration_ns = 0;
  };

  Stopwatch epoch_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::vector<std::pair<int, std::string>> thread_names_;
};

}  // namespace fpga_stencil
