// Thread-safe metrics registry: counters, gauges, and fixed-bucket
// histograms.
//
// Design rules, in order:
//   1. No allocation and no registry lock on the hot path. Instrumented
//      code looks its instrument up once (registry lock, may allocate) and
//      then updates through the returned reference -- a single relaxed
//      atomic RMW per event. References stay valid for the registry's
//      lifetime.
//   2. One counting mechanism. The resilience counters surfaced through
//      RunStats/ClusterStats are *read out of* this registry by the
//      runtimes, not tallied separately (see fault/resilient_runner).
//   3. Snapshots are consistent enough: each value is read atomically;
//      cross-metric skew during concurrent updates is acceptable for
//      observability.
//
// Metric names are dot-separated paths ("channel.2.high_water",
// "resilience.watchdog_trips"); the full vocabulary is documented in
// docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fpga_stencil {

/// Monotonically increasing count (events, nanoseconds, cells).
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-value instrument with a lock-free running-maximum variant for
/// high-water marks.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }

  /// Raises the gauge to `v` if larger (depth high-water marks).
  void max_of(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency/size distribution. Bucket i counts observations
/// with value <= bounds[i] (first matching bucket); the implicit last
/// bucket counts everything above the top bound. Bounds are fixed at
/// registration, so observe() is one atomic increment plus a short scan --
/// no allocation.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t v) {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<std::int64_t>& bounds() const {
    return bounds_;
  }
  /// Valid indices: 0 .. bounds().size() (the last is the overflow bucket).
  [[nodiscard]] std::int64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::int64_t> bounds_;  ///< ascending upper bounds
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

enum class MetricKind { counter, gauge, histogram };

[[nodiscard]] std::string_view metric_kind_name(MetricKind k);

/// One metric's state at snapshot time.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::counter;
  std::int64_t value = 0;  ///< counter/gauge value; histogram observation count
  std::int64_t sum = 0;    ///< histogram only
  std::vector<std::int64_t> bounds;   ///< histogram only
  std::vector<std::int64_t> buckets;  ///< histogram only, bounds.size()+1
};

/// Name-sorted point-in-time copy of a registry.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// nullptr when no metric of that name was registered.
  [[nodiscard]] const MetricSample* find(std::string_view name) const;
  [[nodiscard]] std::int64_t value_or(std::string_view name,
                                      std::int64_t fallback) const;

  /// {"metrics": [{"name":..., "kind":..., ...}, ...]}
  void write_json(std::ostream& os) const;
  /// metric,kind,value,sum -- one row per metric (harness/csv conventions).
  void write_csv(std::ostream& os) const;
};

/// Find-or-create instrument store. Lookups lock; returned references are
/// stable and lock-free to update.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` must be ascending and non-empty; a re-registration under the
  /// same name returns the existing histogram (original bounds win).
  Histogram& histogram(std::string_view name,
                       std::vector<std::int64_t> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  // std::map: deterministic snapshot order, node-stable references.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Pre-resolved instruments for one SyncChannel, updated from inside the
/// channel without touching the registry (see pipeline/sync_channel.hpp).
/// Null members disable the corresponding measurement.
struct ChannelProbe {
  Gauge* high_water = nullptr;        ///< max queued entries observed
  Counter* blocked_read_ns = nullptr;   ///< time readers spent blocked
  Counter* blocked_write_ns = nullptr;  ///< time writers spent blocked
};

}  // namespace fpga_stencil
