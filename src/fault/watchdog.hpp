// Progress watchdog for the concurrent dataflow pipeline.
//
// The write kernel kicks the watchdog every retired vector; if no kick
// arrives within the deadline the pipeline has stopped making progress
// (hung PE, stalled channel) and the timeout callback runs exactly once.
// The callback's job is to unwind, not diagnose: close every channel and
// open the injector's stall gate so all stage threads observe shutdown
// and join promptly.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace fpga_stencil {

class Watchdog {
 public:
  /// Arms immediately; `on_timeout` runs on the watchdog thread if no
  /// kick() lands within `deadline` of arming or of the previous kick.
  Watchdog(std::chrono::milliseconds deadline,
           std::function<void()> on_timeout);

  /// Stops the watchdog thread (without firing) and joins it.
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Records progress, pushing the deadline out.
  void kick();

  /// Disarms without firing; idempotent, called by the destructor.
  void stop();

  /// True once the timeout callback has run.
  [[nodiscard]] bool fired() const;

 private:
  void run();

  std::chrono::milliseconds deadline_;
  std::function<void()> on_timeout_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool kicked_ = false;
  bool stopped_ = false;
  bool fired_ = false;
  std::thread thread_;
};

}  // namespace fpga_stencil
