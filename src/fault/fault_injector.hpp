// Deterministic, seeded fault injection.
//
// A FaultInjector owns one independent splitmix64 stream per fault site
// (seeded from plan.seed ^ site), so whether the k-th arming opportunity
// of a site fires is a pure function of (seed, site, k) -- independent of
// thread interleaving across sites. Fire counts are bounded by the plan's
// per-site budget, which is what lets a campaign be transient: once a
// site's budget is exhausted the replayed pass runs clean.
//
// Stall semantics: the kernel_hang / channel_stall sites do not sleep --
// they park the calling thread on a gate (stall_until_released) that the
// watchdog opens when it unwinds the pass. This keeps the deadlock test
// deterministic and fast, and mirrors the real mechanism: a hung kernel
// only ever ends because the host resets the device.
//
// One injector may be installed process-wide (ScopedFaultInjector) so the
// OpenCL shim and the cluster runtime pick it up without every call site
// threading a pointer through; the deadlock-prone concurrent pipeline
// takes its injector explicitly (RunOptions) because injecting a
// stall without a watchdog would hang a plain run_concurrent call.
#pragma once

#include <array>
#include <condition_variable>
#include <mutex>

#include "common/rng.hpp"
#include "fault/faults.hpp"

namespace fpga_stencil {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// One arming opportunity at `site`: true when the plan says this
  /// occurrence fails (deterministic per site, budget-bounded).
  bool should_fire(FaultSite site);

  /// Deterministic SEU geometry: which lane of a parvec-wide word and
  /// which of its 32 bits to flip.
  std::uint32_t pick_lane(std::uint32_t parvec);
  std::uint32_t pick_bit();

  /// Parks the calling thread until release_stalls(); used by the hang
  /// and stall sites.
  void stall_until_released();
  /// Opens the stall gate (watchdog unwinding a pass).
  void release_stalls();
  /// Re-arms the stall gate for the next pass attempt. Only call when no
  /// thread is parked (i.e. between passes, after joining).
  void reset_stalls();

  [[nodiscard]] std::int64_t fires(FaultSite site) const;
  [[nodiscard]] std::int64_t total_fires() const;
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  /// One line per armed site: "site fired/budget".
  [[nodiscard]] std::string report() const;

 private:
  struct SiteState {
    bool armed = false;
    double probability = 1.0;
    std::int64_t max_fires = 0;  ///< <0 = unlimited
    std::int64_t fired = 0;
    SplitMix64 rng{0};
  };

  FaultPlan plan_;
  mutable std::mutex mu_;
  std::array<SiteState, kFaultSiteCount> sites_;
  SplitMix64 geometry_rng_;  ///< lane/bit picks for SEUs
  std::condition_variable stall_cv_;
  bool stalls_released_ = false;
};

/// The process-wide injector consulted by the OpenCL shim and the cluster
/// runtime; nullptr (the default) means fault-free operation.
FaultInjector* active_fault_injector();

/// RAII installation of a process-wide injector.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector& injector);
  ~ScopedFaultInjector();
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* previous_;
};

/// Shim/cluster helper: throw TransientError when the active injector
/// fires `site`. No-op when no injector is installed.
void maybe_inject_transient(FaultSite site, const char* what);

}  // namespace fpga_stencil
