// Bit-level grid checksums for corruption detection.
//
// FNV-1a over the raw float32 bytes: any single-bit upset anywhere in the
// grid changes the digest, which is all the resilient runner needs -- it
// compares the fault-prone concurrent pass against the synchronous golden
// model (bit-exact by construction, pinned by the tier-1 tests), so a
// digest mismatch proves corruption and triggers a pass replay.
#pragma once

#include <cstddef>
#include <cstdint>

#include "grid/grid.hpp"

namespace fpga_stencil {

std::uint64_t bytes_checksum(const void* data, std::size_t bytes);

std::uint64_t grid_checksum(const Grid2D<float>& g);
std::uint64_t grid_checksum(const Grid3D<float>& g);

}  // namespace fpga_stencil
