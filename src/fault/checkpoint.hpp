// Checkpoint/restart support for long temporal-blocked runs.
//
// The resilient runner snapshots the grid every K passes; when a pass
// fails hard (repeated watchdog trips or checksum mismatches) the run
// restarts from the last checkpoint instead of from t=0. Snapshots live
// in memory by default and can be persisted through grid_io's
// self-describing binary format for cross-process restart.
#pragma once

#include <fstream>
#include <utility>

#include "common/expect.hpp"
#include "grid/grid.hpp"
#include "grid/grid_io.hpp"

namespace fpga_stencil {

template <typename GridT>
class CheckpointStore {
 public:
  /// Snapshots `grid` with `steps_done` stencil iterations applied.
  void save(const GridT& grid, int steps_done) {
    grid_ = grid;
    steps_done_ = steps_done;
    valid_ = true;
  }

  [[nodiscard]] bool has() const { return valid_; }
  [[nodiscard]] int steps_done() const { return steps_done_; }

  /// Restores the snapshot into `grid`; returns the steps it represents.
  int restore(GridT& grid) const {
    FPGASTENCIL_EXPECT(valid_, "restore from an empty checkpoint");
    grid = grid_;
    return steps_done_;
  }

  /// Persists the snapshot (grid_io binary format prefixed by the step
  /// count) for cross-process restart.
  void save_file(const std::string& path) const {
    FPGASTENCIL_EXPECT(valid_, "persist of an empty checkpoint");
    std::ofstream os(path, std::ios::binary);
    FPGASTENCIL_EXPECT(os.good(), "cannot open checkpoint file " + path);
    const std::int64_t steps = steps_done_;
    os.write(reinterpret_cast<const char*>(&steps), sizeof(steps));
    write_binary(grid_, os);
    FPGASTENCIL_EXPECT(os.good(), "checkpoint write failed: " + path);
  }

  void load_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    FPGASTENCIL_EXPECT(is.good(), "cannot open checkpoint file " + path);
    std::int64_t steps = 0;
    is.read(reinterpret_cast<char*>(&steps), sizeof(steps));
    FPGASTENCIL_EXPECT(is.good(), "checkpoint header read failed: " + path);
    if constexpr (std::is_same_v<GridT, Grid2D<float>>) {
      grid_ = read_binary_2d(is);
    } else {
      grid_ = read_binary_3d(is);
    }
    steps_done_ = static_cast<int>(steps);
    valid_ = true;
  }

 private:
  GridT grid_;
  int steps_done_ = 0;
  bool valid_ = false;
};

}  // namespace fpga_stencil
