#include "fault/checksum.hpp"

namespace fpga_stencil {

std::uint64_t bytes_checksum(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

std::uint64_t grid_checksum(const Grid2D<float>& g) {
  return bytes_checksum(g.data(), g.size() * sizeof(float));
}

std::uint64_t grid_checksum(const Grid3D<float>& g) {
  return bytes_checksum(g.data(), g.size() * sizeof(float));
}

}  // namespace fpga_stencil
