// Exponential-backoff-with-jitter retry for transient failures.
//
// Only TransientError is retried: fatal classes (ocl::BuildError,
// ConfigError, ResourceError) propagate immediately, because an invalid or
// oversubscribed design will fail identically on every attempt. Backoff
// delays are jittered by a seeded splitmix64 stream so campaigns stay
// reproducible while still decorrelating concurrent retriers.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/rng.hpp"
#include "fault/faults.hpp"

namespace fpga_stencil {

struct RetryPolicy {
  int max_attempts = 4;                     ///< total tries, including the first
  std::chrono::microseconds base_delay{500};  ///< before the first retry
  double multiplier = 2.0;                  ///< delay growth per retry
  double jitter = 0.5;                      ///< +-fraction of the delay
  std::uint64_t seed = 0x5eedULL;
};

/// Runs `fn`, retrying on TransientError per `policy`. Rethrows the last
/// TransientError once attempts are exhausted; every other exception
/// propagates immediately. `retries`, when non-null, accumulates the
/// number of retries actually taken.
template <typename Fn>
auto retry_transient(const RetryPolicy& policy, Fn&& fn,
                     std::int64_t* retries = nullptr) -> decltype(fn()) {
  SplitMix64 rng(policy.seed);
  double delay_us = double(policy.base_delay.count());
  for (int attempt = 1;; ++attempt) {
    try {
      return std::forward<Fn>(fn)();
    } catch (const TransientError&) {
      if (attempt >= policy.max_attempts) throw;
      if (retries) ++*retries;
      const double jitter_scale =
          1.0 + policy.jitter * (2.0 * double(rng.next_float01()) - 1.0);
      const auto delay =
          std::chrono::microseconds(std::int64_t(delay_us * jitter_scale));
      if (delay.count() > 0) std::this_thread::sleep_for(delay);
      delay_us *= policy.multiplier;
    }
  }
}

}  // namespace fpga_stencil
