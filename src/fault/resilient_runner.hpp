// The resilient host runtime: concurrent dataflow execution that survives
// the whole FaultPlan.
//
// Per pass (up to partime fused time steps):
//   1. Snapshot the pass input, then run the pass through the threaded
//      dataflow pipeline under a progress watchdog. A stalled stage
//      (kernel_hang / channel_stall) trips the watchdog, which unwinds
//      the pipeline; the attempt surfaces as PassAbortedError.
//   2. Verify the output against the synchronous golden model's checksum
//      (bit-exact by construction). A mismatch -- e.g. an injected SEU in
//      a shift-register word that reached a valid output -- rolls the
//      grid back and replays the pass.
//   3. A successful pass advances the run; every checkpoint_interval
//      passes the grid is checkpointed.
// After max_pass_attempts consecutive failures of one pass the device is
// declared lost: the run restores the last checkpoint and finishes on the
// CPU reference path (graceful degradation), still bit-exact.
//
// All resilience events are tallied in the returned RunStats so benches
// and `stencilctl faults` can report the overhead of surviving a plan.
#pragma once

#include <chrono>

#include "core/concurrent_accelerator.hpp"
#include "fault/fault_injector.hpp"

namespace fpga_stencil {

struct ResilienceOptions {
  std::size_t channel_depth = 64;
  /// No-progress deadline of a pass attempt at the write kernel.
  std::chrono::milliseconds watchdog_deadline{500};
  /// Attempts per pass before degrading to the CPU reference path.
  int max_pass_attempts = 3;
  /// Passes between grid checkpoints (K); <=0 disables periodic
  /// checkpoints (only the t=0 snapshot is kept).
  int checkpoint_interval = 4;
  /// Compare every pass against the synchronous golden checksum.
  bool verify_checksums = true;
  /// Fault source; nullptr falls back to the process-wide injector (and
  /// to fault-free execution when none is installed).
  FaultInjector* injector = nullptr;
  /// Observability hook; falls back to AcceleratorConfig::telemetry. The
  /// resilience counters in the returned RunStats are always tallied
  /// through a metrics registry (a run-local one when no hook is
  /// attached), so there is a single counting mechanism.
  Telemetry* telemetry = nullptr;
  /// Reusable scratch storage forwarded to the underlying concurrent
  /// passes (see RunOptions::scratch); the engine's buffer pool threads
  /// through here.
  std::vector<float>* scratch = nullptr;
};

/// Advances `grid` by `iterations` time steps in place, surviving the
/// active fault plan; the result is bit-exact with the naive reference
/// regardless of which faults fired. This is the unified entry point
/// (formerly one overload per grid type), instantiated for Grid2D<float>
/// and Grid3D<float>.
template <typename GridT>
RunStats run_resilient(const TapSet& taps, const AcceleratorConfig& cfg,
                       GridT& grid, int iterations,
                       const ResilienceOptions& options = {});

extern template RunStats run_resilient<Grid2D<float>>(
    const TapSet&, const AcceleratorConfig&, Grid2D<float>&, int,
    const ResilienceOptions&);
extern template RunStats run_resilient<Grid3D<float>>(
    const TapSet&, const AcceleratorConfig&, Grid3D<float>&, int,
    const ResilienceOptions&);

}  // namespace fpga_stencil
