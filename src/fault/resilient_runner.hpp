// The resilient host runtime: concurrent dataflow execution that survives
// the whole FaultPlan.
//
// Per pass (up to partime fused time steps):
//   1. Snapshot the pass input, then run the pass through the threaded
//      dataflow pipeline under a progress watchdog. A stalled stage
//      (kernel_hang / channel_stall) trips the watchdog, which unwinds
//      the pipeline; the attempt surfaces as PassAbortedError.
//   2. Verify the output against the synchronous golden model's checksum
//      (bit-exact by construction). A mismatch -- e.g. an injected SEU in
//      a shift-register word that reached a valid output -- rolls the
//      grid back and replays the pass.
//   3. A successful pass advances the run; every checkpoint_interval
//      passes the grid is checkpointed.
// After max_pass_attempts consecutive failures of one pass the device is
// declared lost: the run restores the last checkpoint and finishes on the
// CPU reference path (graceful degradation), still bit-exact.
//
// All resilience events are tallied in the returned RunStats so benches
// and `stencilctl faults` can report the overhead of surviving a plan.
#pragma once

#include <chrono>

#include "core/concurrent_accelerator.hpp"
#include "fault/fault_injector.hpp"

namespace fpga_stencil {

/// Resilience policy on top of the shared execution knobs. Execution
/// plumbing (channel depth, injector, watchdog, telemetry, scratch) lives
/// in `base` -- the same RunOptions every backend takes -- so the struct
/// adds only what is resilience-specific. Notes on `base`:
///   - base.watchdog_deadline defaults to 500 ms here (a RunOptions
///     defaults to 0 = off): resilience without a deadline could never
///     unwind a stalled pass.
///   - base.injector nullptr falls back to the process-wide injector (and
///     to fault-free execution when none is installed).
///   - base.telemetry falls back to AcceleratorConfig::telemetry. The
///     resilience counters in the returned RunStats are always tallied
///     through a metrics registry (a run-local one when no hook is
///     attached), so there is a single counting mechanism.
//   - base.cancel, when valid, is honored between pass attempts and
//     inside every attempt (the concurrent write kernel polls it); a
//     tripped token escapes the retry loop as CancelledError /
//     DeadlineExceededError -- cancellation is never "absorbed" the way
//     a watchdog trip is.
// The PR 5 reference aliases (opts.channel_depth and friends, deprecated
// one release) are gone; spell the execution knobs through `base`.
struct ResilienceOptions {
  RunOptions base{.watchdog_deadline = std::chrono::milliseconds(500)};
  /// Attempts per pass before degrading to the CPU reference path.
  int max_pass_attempts = 3;
  /// Passes between grid checkpoints (K); <=0 disables periodic
  /// checkpoints (only the t=0 snapshot is kept).
  int checkpoint_interval = 4;
  /// Compare every pass against the synchronous golden checksum.
  bool verify_checksums = true;
};

/// Advances `grid` by `iterations` time steps in place, surviving the
/// active fault plan; the result is bit-exact with the naive reference
/// regardless of which faults fired. This is the unified entry point
/// (formerly one overload per grid type), instantiated for Grid2D<float>
/// and Grid3D<float>.
template <typename GridT>
RunStats run_resilient(const TapSet& taps, const AcceleratorConfig& cfg,
                       GridT& grid, int iterations,
                       const ResilienceOptions& options = {});

extern template RunStats run_resilient<Grid2D<float>>(
    const TapSet&, const AcceleratorConfig&, Grid2D<float>&, int,
    const ResilienceOptions&);
extern template RunStats run_resilient<Grid3D<float>>(
    const TapSet&, const AcceleratorConfig&, Grid3D<float>&, int,
    const ResilienceOptions&);

}  // namespace fpga_stencil
