// Fault model: named fault sites, typed fault errors, and the FaultPlan
// configuration that drives deterministic injection campaigns.
//
// The runtime is instrumented with *fault sites* -- points where a real
// deployment can fail (a transient aoc link error, a stalled channel, an
// SEU bit-flip in a shift-register word, a dropped board). A FaultPlan
// names the sites that should misbehave, with what probability, and how
// often; a seeded FaultInjector (fault_injector.hpp) evaluates the plan
// deterministically so every campaign is reproducible.
//
// Error taxonomy:
//   TransientError     -- retryable (injected link/transfer hiccups); the
//                         retry helpers (retry.hpp) absorb these.
//   PassAbortedError   -- a concurrent pass was unwound by the watchdog;
//                         the resilient runner replays the pass.
// Fatal errors (ocl::BuildError, ConfigError, ResourceError) are never
// retried: a design that does not fit will not fit on the next attempt.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace fpga_stencil {

/// Every instrumented failure point in the runtime.
enum class FaultSite : int {
  shim_build = 0,   ///< Program::build fails transiently (link hiccup)
  shim_enqueue,     ///< kernel launch fails transiently
  shim_transfer,    ///< host<->device buffer transfer fails transiently
  kernel_hang,      ///< a PE stops making progress mid-stream
  channel_stall,    ///< the read kernel's channel write stalls forever
  seu_bit_flip,     ///< single-event upset in a shift-register word
  link_degrade,     ///< inter-board link drops to a fraction of its bandwidth
  board_dropout,    ///< a cluster board dies mid-campaign
};

inline constexpr int kFaultSiteCount = 8;

/// Stable lower_snake_case name (the FaultPlan grammar's site token).
const char* fault_site_name(FaultSite site);

/// Inverse of fault_site_name; nullopt for unknown names.
std::optional<FaultSite> fault_site_from_name(const std::string& name);

/// A retryable failure: the operation may succeed if repeated.
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& what)
      : std::runtime_error(what) {}
};

/// A concurrent pass was aborted (watchdog deadline, stalled stage). The
/// input grid is untouched; the pass can be replayed.
class PassAbortedError : public std::runtime_error {
 public:
  explicit PassAbortedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// How one fault site should misbehave during a campaign.
struct FaultSpec {
  FaultSite site = FaultSite::shim_build;
  double probability = 1.0;  ///< chance each arming opportunity fires
  std::int64_t max_fires = 1;  ///< total budget; <0 means unlimited

  [[nodiscard]] bool unlimited() const { return max_fires < 0; }
};

/// A named, seeded fault campaign: which sites fire, how often.
///
/// Textual grammar (CLI `--plan` / env FPGASTENCIL_FAULT_PLAN), terms
/// separated by commas:
///
///   seed=<u64>                        (default 1)
///   <site>                            (fire once, probability 1)
///   <site>:p=<float>:n=<count|inf>    (options in any order)
///
/// e.g. "seed=42,shim_build:n=2,seu_bit_flip:p=0.5:n=200,board_dropout"
class FaultPlan {
 public:
  std::uint64_t seed = 1;
  std::vector<FaultSpec> specs;

  FaultPlan& add(FaultSite site, double probability = 1.0,
                 std::int64_t max_fires = 1);

  /// Parses the grammar above; throws ConfigError on unknown sites or
  /// malformed terms. The empty string is the empty (fault-free) plan.
  static FaultPlan parse(const std::string& text);

  /// Plan from $FPGASTENCIL_FAULT_PLAN, or the empty plan when unset.
  static FaultPlan from_env();

  [[nodiscard]] bool empty() const { return specs.empty(); }
  [[nodiscard]] std::string describe() const;
};

}  // namespace fpga_stencil
