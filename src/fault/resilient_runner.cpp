#include "fault/resilient_runner.hpp"

#include <algorithm>
#include <type_traits>

#include "common/stopwatch.hpp"
#include "fault/checkpoint.hpp"
#include "fault/checksum.hpp"
#include "stencil/reference.hpp"
#include "telemetry/telemetry.hpp"

namespace fpga_stencil {
namespace {

/// The single counting mechanism for resilience events: every tally goes
/// through metrics-registry counters (the caller's attached Telemetry, or
/// a run-local one when observability is off), and the RunStats fields are
/// filled from the counter deltas at the end -- thin accessors over the
/// registry, not a second set of books.
struct ResilienceCounters {
  Counter& watchdog_trips;
  Counter& checksum_failures;
  Counter& pass_replays;
  Counter& checkpoints_saved;
  Counter& checkpoint_restores;
  Counter& faults_injected;
  Gauge& degraded;
  Histogram& checkpoint_save_ns;

  std::int64_t base_trips, base_checksum, base_replays, base_saved,
      base_restores, base_faults;

  explicit ResilienceCounters(Telemetry& tel)
      : watchdog_trips(tel.metrics().counter("resilience.watchdog_trips")),
        checksum_failures(
            tel.metrics().counter("resilience.checksum_failures")),
        pass_replays(tel.metrics().counter("resilience.pass_replays")),
        checkpoints_saved(
            tel.metrics().counter("resilience.checkpoints_saved")),
        checkpoint_restores(
            tel.metrics().counter("resilience.checkpoint_restores")),
        faults_injected(tel.metrics().counter("resilience.faults_injected")),
        degraded(tel.metrics().gauge("resilience.degraded_to_reference")),
        checkpoint_save_ns(tel.metrics().histogram(
            "resilience.checkpoint_save_ns", default_latency_bounds_ns())),
        base_trips(watchdog_trips.value()),
        base_checksum(checksum_failures.value()),
        base_replays(pass_replays.value()),
        base_saved(checkpoints_saved.value()),
        base_restores(checkpoint_restores.value()),
        base_faults(faults_injected.value()) {}

  /// Copies this run's deltas into the public RunStats fields.
  void fill(RunStats& stats) const {
    stats.watchdog_trips = watchdog_trips.value() - base_trips;
    stats.checksum_failures = checksum_failures.value() - base_checksum;
    stats.pass_replays = pass_replays.value() - base_replays;
    stats.checkpoints_saved = checkpoints_saved.value() - base_saved;
    stats.checkpoint_restores = checkpoint_restores.value() - base_restores;
    stats.faults_injected = faults_injected.value() - base_faults;
    stats.degraded_to_reference = degraded.value() != 0;
  }
};

template <typename GridT>
RunStats run_resilient_impl(const TapSet& taps, const AcceleratorConfig& cfg,
                            GridT& grid, int iterations,
                            const ResilienceOptions& opts) {
  FPGASTENCIL_EXPECT(iterations >= 0, "iterations must be non-negative");
  FPGASTENCIL_EXPECT(opts.max_pass_attempts >= 1,
                     "need at least one pass attempt");
  // Resolve stage lag once so every path below executes the same config.
  // The golden model runs uninstrumented: its verification passes must not
  // pollute the device pipeline's spans and throughput metrics.
  AcceleratorConfig golden_cfg = cfg;
  golden_cfg.telemetry = nullptr;
  StencilAccelerator golden(taps, golden_cfg);
  AcceleratorConfig rcfg = golden.config();
  rcfg.telemetry = cfg.telemetry;

  Telemetry local_telemetry;
  Telemetry* const attached =
      opts.base.telemetry ? opts.base.telemetry : cfg.telemetry;
  Telemetry& tel = attached ? *attached : local_telemetry;
  ResilienceCounters counters(tel);

  FaultInjector* fi =
      opts.base.injector ? opts.base.injector : active_fault_injector();
  const std::int64_t fires_before = fi ? fi->total_fires() : 0;

  // The pass attempts run the concurrent pipeline with the caller's
  // execution knobs, resolved injector, and resolved telemetry hook.
  RunOptions copts = opts.base;
  copts.injector = fi;
  copts.telemetry = attached;
  const CancellationToken* const cancel =
      opts.base.cancel.valid() ? &opts.base.cancel : nullptr;

  RunStats total;
  CheckpointStore<GridT> checkpoint;
  const auto save_checkpoint = [&](const GridT& g, int step) {
    const Stopwatch save_clock;
    checkpoint.save(g, step);
    counters.checkpoint_save_ns.observe(save_clock.nanoseconds());
    counters.checkpoints_saved.add(1);
  };
  save_checkpoint(grid, 0);

  GridT pass_input = grid;
  int done = 0;
  bool device_lost = false;
  while (done < iterations) {
    if (cancel) cancel->throw_if_cancelled();
    const int steps = std::min(iterations - done, rcfg.partime);
    pass_input = grid;

    bool pass_ok = false;
    for (int attempt = 1; attempt <= opts.max_pass_attempts; ++attempt) {
      // Cancellation escapes the retry loop: a tripped token must not be
      // "absorbed" like a watchdog trip. The attempt below rethrows
      // CancelledError past the PassAbortedError handler with the grid at
      // the pass input (attempt output only commits on completion).
      if (cancel) cancel->throw_if_cancelled();
      if (attempt > 1) counters.pass_replays.add(1);
      try {
        const RunStats attempt_stats =
            run_concurrent(taps, rcfg, grid, steps, copts);
        if (opts.verify_checksums) {
          GridT expected = pass_input;
          golden.run(expected, steps, nullptr, cancel);
          if (grid_checksum(expected) != grid_checksum(grid)) {
            // Corruption escaped into the output (SEU in a word whose
            // dependency cone reached a valid cell): roll back, replay.
            counters.checksum_failures.add(1);
            if (attached) {
              attached->tracer().instant("checksum_rollback", 0, "fault");
            }
            grid = pass_input;
            continue;
          }
        }
        total.accumulate(attempt_stats);
        pass_ok = true;
        break;
      } catch (const PassAbortedError&) {
        // Watchdog unwound a stalled pipeline. The pass output is only
        // committed on completion, so the input is intact; restore
        // defensively and replay.
        counters.watchdog_trips.add(1);
        if (attached) {
          attached->tracer().instant("watchdog_trip", 0, "fault");
        }
        grid = pass_input;
      }
    }
    if (!pass_ok) {
      device_lost = true;
      break;
    }

    done += steps;
    if (opts.checkpoint_interval > 0 &&
        total.passes % opts.checkpoint_interval == 0) {
      save_checkpoint(grid, done);
    }
  }

  if (device_lost) {
    // Graceful degradation: the device keeps failing the same pass, so
    // restart from the last checkpoint on the CPU reference path --
    // slower, but bit-exact with everything the device produced.
    done = checkpoint.restore(grid);
    counters.checkpoint_restores.add(1);
    counters.degraded.set(1);
    if (attached) {
      attached->tracer().instant("degraded_to_reference", 0, "fault");
    }
    reference_run(taps, grid, iterations - done);
    total.time_steps = iterations;
  }

  if (fi) counters.faults_injected.add(fi->total_fires() - fires_before);
  counters.fill(total);
  return total;
}

/// The grid type encodes the dimensionality the configuration must match.
template <typename GridT>
constexpr int grid_dims_v = std::is_same_v<GridT, Grid3D<float>> ? 3 : 2;

}  // namespace

template <typename GridT>
RunStats run_resilient(const TapSet& taps, const AcceleratorConfig& cfg,
                       GridT& grid, int iterations,
                       const ResilienceOptions& options) {
  FPGASTENCIL_EXPECT(cfg.dims == grid_dims_v<GridT>,
                     "grid dimensionality does not match the configuration");
  return run_resilient_impl(taps, cfg, grid, iterations, options);
}

template RunStats run_resilient<Grid2D<float>>(const TapSet&,
                                               const AcceleratorConfig&,
                                               Grid2D<float>&, int,
                                               const ResilienceOptions&);
template RunStats run_resilient<Grid3D<float>>(const TapSet&,
                                               const AcceleratorConfig&,
                                               Grid3D<float>&, int,
                                               const ResilienceOptions&);

}  // namespace fpga_stencil
