#include "fault/resilient_runner.hpp"

#include <algorithm>

#include "fault/checkpoint.hpp"
#include "fault/checksum.hpp"
#include "stencil/reference.hpp"

namespace fpga_stencil {
namespace {

template <typename GridT>
RunStats run_resilient_impl(const TapSet& taps, const AcceleratorConfig& cfg,
                            GridT& grid, int iterations,
                            const ResilienceOptions& opts) {
  FPGASTENCIL_EXPECT(iterations >= 0, "iterations must be non-negative");
  FPGASTENCIL_EXPECT(opts.max_pass_attempts >= 1,
                     "need at least one pass attempt");
  // Resolve stage lag once so every path below executes the same config.
  StencilAccelerator golden(taps, cfg);
  const AcceleratorConfig rcfg = golden.config();

  FaultInjector* fi = opts.injector ? opts.injector : active_fault_injector();
  const std::int64_t fires_before = fi ? fi->total_fires() : 0;

  ConcurrentOptions copts;
  copts.channel_depth = opts.channel_depth;
  copts.injector = fi;
  copts.watchdog_deadline = opts.watchdog_deadline;

  RunStats total;
  CheckpointStore<GridT> checkpoint;
  checkpoint.save(grid, 0);
  ++total.checkpoints_saved;

  GridT pass_input = grid;
  int done = 0;
  bool device_lost = false;
  while (done < iterations) {
    const int steps = std::min(iterations - done, rcfg.partime);
    pass_input = grid;

    bool pass_ok = false;
    for (int attempt = 1; attempt <= opts.max_pass_attempts; ++attempt) {
      if (attempt > 1) ++total.pass_replays;
      try {
        const RunStats attempt_stats =
            run_concurrent(taps, rcfg, grid, steps, copts);
        if (opts.verify_checksums) {
          GridT expected = pass_input;
          golden.run(expected, steps);
          if (grid_checksum(expected) != grid_checksum(grid)) {
            // Corruption escaped into the output (SEU in a word whose
            // dependency cone reached a valid cell): roll back, replay.
            ++total.checksum_failures;
            grid = pass_input;
            continue;
          }
        }
        total.accumulate(attempt_stats);
        pass_ok = true;
        break;
      } catch (const PassAbortedError&) {
        // Watchdog unwound a stalled pipeline. The pass output is only
        // committed on completion, so the input is intact; restore
        // defensively and replay.
        ++total.watchdog_trips;
        grid = pass_input;
      }
    }
    if (!pass_ok) {
      device_lost = true;
      break;
    }

    done += steps;
    if (opts.checkpoint_interval > 0 &&
        total.passes % opts.checkpoint_interval == 0) {
      checkpoint.save(grid, done);
      ++total.checkpoints_saved;
    }
  }

  if (device_lost) {
    // Graceful degradation: the device keeps failing the same pass, so
    // restart from the last checkpoint on the CPU reference path --
    // slower, but bit-exact with everything the device produced.
    done = checkpoint.restore(grid);
    ++total.checkpoint_restores;
    reference_run(taps, grid, iterations - done);
    total.time_steps = iterations;
    total.degraded_to_reference = true;
  }

  if (fi) total.faults_injected += fi->total_fires() - fires_before;
  return total;
}

}  // namespace

RunStats run_resilient(const TapSet& taps, const AcceleratorConfig& cfg,
                       Grid2D<float>& grid, int iterations,
                       const ResilienceOptions& options) {
  FPGASTENCIL_EXPECT(cfg.dims == 2, "2D run on a 3D configuration");
  return run_resilient_impl(taps, cfg, grid, iterations, options);
}

RunStats run_resilient(const TapSet& taps, const AcceleratorConfig& cfg,
                       Grid3D<float>& grid, int iterations,
                       const ResilienceOptions& options) {
  FPGASTENCIL_EXPECT(cfg.dims == 3, "3D run on a 2D configuration");
  return run_resilient_impl(taps, cfg, grid, iterations, options);
}

}  // namespace fpga_stencil
