#include "fault/fault_injector.hpp"

#include <atomic>
#include <cstdlib>
#include <sstream>

#include "common/expect.hpp"

namespace fpga_stencil {

namespace {

constexpr std::array<const char*, kFaultSiteCount> kSiteNames = {
    "shim_build",   "shim_enqueue", "shim_transfer", "kernel_hang",
    "channel_stall", "seu_bit_flip", "link_degrade",  "board_dropout",
};

}  // namespace

const char* fault_site_name(FaultSite site) {
  return kSiteNames[static_cast<std::size_t>(site)];
}

std::optional<FaultSite> fault_site_from_name(const std::string& name) {
  for (int i = 0; i < kFaultSiteCount; ++i) {
    if (name == kSiteNames[std::size_t(i)]) return FaultSite(i);
  }
  return std::nullopt;
}

// ------------------------------------------------------------------ plan

FaultPlan& FaultPlan::add(FaultSite site, double probability,
                          std::int64_t max_fires) {
  FPGASTENCIL_EXPECT(probability >= 0.0 && probability <= 1.0,
                     "fault probability must be in [0, 1]");
  specs.push_back({site, probability, max_fires});
  return *this;
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream is(text);
  std::string term;
  while (std::getline(is, term, ',')) {
    // Trim surrounding whitespace.
    const auto b = term.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    term = term.substr(b, term.find_last_not_of(" \t") - b + 1);

    if (term.rfind("seed=", 0) == 0) {
      try {
        plan.seed = std::stoull(term.substr(5));
      } catch (const std::exception&) {
        throw ConfigError("fault plan: bad seed in `" + term + "`");
      }
      continue;
    }

    std::istringstream ts(term);
    std::string field;
    std::getline(ts, field, ':');
    const std::optional<FaultSite> site = fault_site_from_name(field);
    if (!site) {
      throw ConfigError("fault plan: unknown fault site `" + field + "`");
    }
    FaultSpec spec;
    spec.site = *site;
    while (std::getline(ts, field, ':')) {
      try {
        if (field.rfind("p=", 0) == 0) {
          spec.probability = std::stod(field.substr(2));
          FPGASTENCIL_EXPECT(spec.probability >= 0.0 && spec.probability <= 1.0,
                             "fault probability must be in [0, 1]");
        } else if (field.rfind("n=", 0) == 0) {
          const std::string n = field.substr(2);
          spec.max_fires = n == "inf" ? -1 : std::stoll(n);
        } else {
          throw std::invalid_argument("unknown option");
        }
      } catch (const ConfigError&) {
        throw;
      } catch (const std::exception&) {
        throw ConfigError("fault plan: bad option `" + field + "` in `" +
                          term + "`");
      }
    }
    plan.specs.push_back(spec);
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* env = std::getenv("FPGASTENCIL_FAULT_PLAN");
  return env ? parse(env) : FaultPlan{};
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "seed=" << seed;
  for (const FaultSpec& s : specs) {
    os << "," << fault_site_name(s.site) << ":p=" << s.probability << ":n=";
    if (s.unlimited()) {
      os << "inf";
    } else {
      os << s.max_fires;
    }
  }
  return os.str();
}

// -------------------------------------------------------------- injector

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), geometry_rng_(plan_.seed ^ 0x9e3779b9ULL) {
  for (const FaultSpec& s : plan_.specs) {
    SiteState& st = sites_[static_cast<std::size_t>(s.site)];
    st.armed = true;
    st.probability = s.probability;
    st.max_fires = s.max_fires;
    st.rng = SplitMix64(plan_.seed ^ (0x100 + std::uint64_t(s.site)));
  }
}

bool FaultInjector::should_fire(FaultSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& st = sites_[static_cast<std::size_t>(site)];
  if (!st.armed) return false;
  if (!(st.max_fires < 0) && st.fired >= st.max_fires) return false;
  if (st.probability < 1.0 && st.rng.next_float01() >= st.probability) {
    return false;
  }
  ++st.fired;
  return true;
}

std::uint32_t FaultInjector::pick_lane(std::uint32_t parvec) {
  std::lock_guard<std::mutex> lock(mu_);
  return std::uint32_t(geometry_rng_.next_below(parvec));
}

std::uint32_t FaultInjector::pick_bit() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::uint32_t(geometry_rng_.next_below(32));
}

void FaultInjector::stall_until_released() {
  std::unique_lock<std::mutex> lock(mu_);
  stall_cv_.wait(lock, [&] { return stalls_released_; });
}

void FaultInjector::release_stalls() {
  std::lock_guard<std::mutex> lock(mu_);
  stalls_released_ = true;
  stall_cv_.notify_all();
}

void FaultInjector::reset_stalls() {
  std::lock_guard<std::mutex> lock(mu_);
  stalls_released_ = false;
}

std::int64_t FaultInjector::fires(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_[static_cast<std::size_t>(site)].fired;
}

std::int64_t FaultInjector::total_fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  for (const SiteState& st : sites_) total += st.fired;
  return total;
}

std::string FaultInjector::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (int i = 0; i < kFaultSiteCount; ++i) {
    const SiteState& st = sites_[std::size_t(i)];
    if (!st.armed) continue;
    os << kSiteNames[std::size_t(i)] << " " << st.fired << "/";
    if (st.max_fires < 0) {
      os << "inf";
    } else {
      os << st.max_fires;
    }
    os << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------- global

namespace {
std::atomic<FaultInjector*> g_active_injector{nullptr};
}  // namespace

FaultInjector* active_fault_injector() {
  return g_active_injector.load(std::memory_order_acquire);
}

ScopedFaultInjector::ScopedFaultInjector(FaultInjector& injector)
    : previous_(g_active_injector.exchange(&injector,
                                           std::memory_order_acq_rel)) {}

ScopedFaultInjector::~ScopedFaultInjector() {
  g_active_injector.store(previous_, std::memory_order_release);
}

void maybe_inject_transient(FaultSite site, const char* what) {
  FaultInjector* fi = active_fault_injector();
  if (fi && fi->should_fire(site)) {
    throw TransientError(std::string("injected ") + fault_site_name(site) +
                         " fault: " + what);
  }
}

}  // namespace fpga_stencil
