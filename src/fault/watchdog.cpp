#include "fault/watchdog.hpp"

namespace fpga_stencil {

Watchdog::Watchdog(std::chrono::milliseconds deadline,
                   std::function<void()> on_timeout)
    : deadline_(deadline),
      on_timeout_(std::move(on_timeout)),
      thread_([this] { run(); }) {}

Watchdog::~Watchdog() {
  stop();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::kick() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    kicked_ = true;
  }
  cv_.notify_one();
}

void Watchdog::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  cv_.notify_one();
}

bool Watchdog::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

void Watchdog::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopped_) {
    if (cv_.wait_for(lock, deadline_,
                     [&] { return stopped_ || kicked_; })) {
      kicked_ = false;  // progress observed; re-arm
    } else {
      fired_ = true;
      lock.unlock();
      on_timeout_();
      return;  // fires at most once
    }
  }
}

}  // namespace fpga_stencil
