#include "engine/engine_cluster.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/expect.hpp"
#include "engine/plan_cache.hpp"

namespace fpga_stencil {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
}

}  // namespace

EngineCluster::EngineCluster(ClusterOptions options)
    : options_(std::move(options)),
      telemetry_(options_.telemetry ? options_.telemetry : &own_telemetry_),
      router_(std::max(options_.shards, 1), options_.vnodes_per_shard) {
  FPGASTENCIL_EXPECT(options_.shards >= 1, "cluster needs at least one shard");
  engines_.reserve(std::size_t(options_.shards));
  for (int k = 0; k < options_.shards; ++k) {
    EngineOptions eo = options_.engine;
    eo.telemetry = telemetry_;
    eo.metrics_prefix = "engine.shard" + std::to_string(k);
    engines_.push_back(std::make_shared<StencilEngine>(std::move(eo)));
  }
  telemetry_->metrics().gauge("cluster.shards").set(options_.shards);
}

EngineCluster::~EngineCluster() {
  // Drain before members unwind: terminal hooks still reference tenant
  // states and the telemetry sink, so every job must be finished first.
  drain();
}

std::uint64_t EngineCluster::route_key(const JobSpec& spec) {
  // Same identity vocabulary as the per-shard PlanCache key: a stream of
  // jobs that would share a cached plan shares a route, which is the
  // whole point of fingerprint affinity.
  //
  // Program jobs route by the program fingerprint (the DAG of node
  // fingerprints): repeated submissions of one program land on one shard
  // and reuse its per-node plans/tuning. The placeholder taps/grid below
  // mix in constants, keeping the key stable per program.
  std::uint64_t h = kFnvOffset;
  if (spec.program) fnv_mix(h, spec.program->fingerprint());
  fnv_mix(h, tap_set_fingerprint(spec.taps));
  fnv_mix(h, std::uint64_t(spec.config.dims));
  fnv_mix(h, std::uint64_t(spec.config.radius));
  fnv_mix(h, std::uint64_t(spec.config.parvec));
  fnv_mix(h, std::uint64_t(spec.config.partime));
  fnv_mix(h, std::uint64_t(spec.config.bsize_x));
  fnv_mix(h, std::uint64_t(spec.config.bsize_y));
  fnv_mix(h, spec.config.use_specialized_kernels ? 1 : 0);
  const std::int64_t nx =
      std::visit([](const auto& g) { return g.nx(); }, spec.grid);
  const std::int64_t ny =
      std::visit([](const auto& g) { return g.ny(); }, spec.grid);
  const std::int64_t nz =
      spec.is_3d() ? std::get<Grid3D<float>>(spec.grid).nz() : 1;
  fnv_mix(h, std::uint64_t(nx));
  fnv_mix(h, std::uint64_t(ny));
  fnv_mix(h, std::uint64_t(nz));
  return h;
}

int EngineCluster::route_shard(const JobSpec& spec) const {
  return router_.route(route_key(spec));
}

EngineCluster::TenantState& EngineCluster::tenant_state(
    const std::string& tenant) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    const auto q = options_.quotas.find(tenant);
    const TenantQuota& quota =
        q != options_.quotas.end() ? q->second : options_.default_quota;
    it = tenants_.emplace(tenant, std::make_unique<TenantState>(quota)).first;
  }
  return *it->second;
}

std::string EngineCluster::tenant_metric(const std::string& tenant,
                                         const char* suffix) const {
  return "cluster.tenant." + tenant + "." + suffix;
}

void EngineCluster::acquire_quota(TenantState& ts, const std::string& tenant) {
  // Inflight cap first: it releases on job completion, so a blocking
  // tenant parks on the cv rather than spinning.
  {
    std::unique_lock<std::mutex> lock(ts.mu);
    if (ts.quota.max_inflight > 0 && ts.inflight >= ts.quota.max_inflight) {
      if (!ts.quota.block) {
        telemetry_->metrics().counter("cluster.quota_rejected").add(1);
        telemetry_->metrics()
            .counter("cluster.quota_rejected_inflight")
            .add(1);
        telemetry_->metrics().counter(tenant_metric(tenant, "rejected")).add(1);
        throw QuotaExceededError(
            "tenant '" + tenant + "' is at its inflight cap (" +
                std::to_string(ts.quota.max_inflight) +
                "); retry when one of its jobs finishes",
            std::chrono::nanoseconds(0));
      }
      ts.cv.wait(lock, [&] { return ts.inflight < ts.quota.max_inflight; });
    }
    ++ts.inflight;
    telemetry_->metrics()
        .gauge(tenant_metric(tenant, "inflight"))
        .set(ts.inflight);
  }
  // Then the rate limit. Failure here must hand back the inflight slot.
  if (ts.bucket.limited() && !ts.bucket.try_acquire()) {
    if (!ts.quota.block) {
      const std::chrono::nanoseconds after = ts.bucket.time_until();
      release_quota(ts);
      telemetry_->metrics().counter("cluster.quota_rejected").add(1);
      telemetry_->metrics().counter("cluster.quota_rejected_rate").add(1);
      telemetry_->metrics().counter(tenant_metric(tenant, "rejected")).add(1);
      throw QuotaExceededError(
          "tenant '" + tenant + "' is over its rate limit (" +
              std::to_string(ts.quota.rate_per_s) + "/s)",
          after);
    }
    do {
      std::this_thread::sleep_for(std::min<std::chrono::nanoseconds>(
          ts.bucket.time_until(), std::chrono::milliseconds(10)));
    } while (!ts.bucket.try_acquire());
  }
}

void EngineCluster::release_quota(TenantState& ts) {
  {
    std::lock_guard<std::mutex> lock(ts.mu);
    --ts.inflight;
  }
  ts.cv.notify_one();
}

JobHandle EngineCluster::submit(JobSpec spec) {
  validate_job_spec(spec);
  if (spec.tenant.empty()) spec.tenant = "default";
  const std::string tenant = spec.tenant;
  TenantState& ts = tenant_state(tenant);
  acquire_quota(ts, tenant);

  try {
    telemetry_->metrics().counter("cluster.jobs_submitted").add(1);
    telemetry_->metrics().counter(tenant_metric(tenant, "submitted")).add(1);

    // Quota release rides the terminal hook: the slot frees the moment
    // the job reaches a terminal state, whichever shard ran it.
    std::function<void(JobStatus)> user_cb = std::move(spec.on_terminal);
    Telemetry* telemetry = telemetry_;
    std::string status_metric_base = tenant_metric(tenant, "");
    spec.on_terminal = [this, &ts, telemetry,
                        base = std::move(status_metric_base),
                        cb = std::move(user_cb)](JobStatus s) {
      release_quota(ts);
      telemetry->metrics().counter(base + job_status_name(s)).add(1);
      if (cb) cb(s);
    };

    const std::uint64_t key = route_key(spec);
    std::shared_ptr<detail::JobState> state =
        StencilEngine::make_job_state(std::move(spec));

    // Admission races a concurrent drain_shard: the router said shard k,
    // but k stopped before admit landed. The state survives the throw,
    // so re-route and try again -- bounded because a drained shard is
    // already out of the ring when its engine rejects.
    for (int attempt = 0; attempt <= options_.shards; ++attempt) {
      int k = -1;
      try {
        k = router_.route(key);
      } catch (const NoShardAvailableError&) {
        throw EngineStoppedError(
            "cluster has no available shards; submissions are closed");
      }
      std::shared_ptr<StencilEngine> engine;
      {
        std::lock_guard<std::mutex> lock(shards_mu_);
        engine = engines_[std::size_t(k)];
      }
      try {
        return engine->admit(state);
      } catch (const EngineStoppedError&) {
        telemetry_->metrics().counter("cluster.submit_reroutes").add(1);
        continue;
      }
    }
    throw EngineStoppedError(
        "cluster could not place the job on any available shard");
  } catch (...) {
    // Not admitted anywhere: the terminal hook will never run, so the
    // quota slot comes back here.
    release_quota(ts);
    throw;
  }
}

JobResult EngineCluster::run(JobSpec spec) {
  JobHandle handle = submit(std::move(spec));
  return std::move(handle.wait());
}

StencilEngine& EngineCluster::shard(int k) {
  FPGASTENCIL_EXPECT(k >= 0 && k < options_.shards, "shard out of range");
  std::lock_guard<std::mutex> lock(shards_mu_);
  return *engines_[std::size_t(k)];
}

void EngineCluster::drain_shard(int shard) {
  FPGASTENCIL_EXPECT(shard >= 0 && shard < options_.shards,
                     "shard out of range");
  // Out of the ring first, so new submissions route elsewhere while the
  // shard finishes what it already accepted.
  router_.set_available(shard, false);
  std::shared_ptr<StencilEngine> engine;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    engine = engines_[std::size_t(shard)];
  }
  engine->drain();
  telemetry_->metrics().counter("cluster.shard_drains").add(1);
  telemetry_->tracer().instant("cluster.shard_drained", shard, "cluster");
}

void EngineCluster::reload_shard(int shard) {
  FPGASTENCIL_EXPECT(shard >= 0 && shard < options_.shards,
                     "shard out of range");
  EngineOptions eo = options_.engine;
  eo.telemetry = telemetry_;
  eo.metrics_prefix = "engine.shard" + std::to_string(shard);
  auto fresh = std::make_shared<StencilEngine>(std::move(eo));
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    // The old engine dies when its last in-flight handle lets go.
    engines_[std::size_t(shard)] = std::move(fresh);
  }
  router_.set_available(shard, true);
  telemetry_->metrics().counter("cluster.shard_reloads").add(1);
  telemetry_->tracer().instant("cluster.shard_reloaded", shard, "cluster");
}

void EngineCluster::drain() {
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    draining_ = true;
  }
  for (int k = 0; k < options_.shards; ++k) {
    router_.set_available(k, false);
  }
  std::vector<std::shared_ptr<StencilEngine>> engines;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    engines = engines_;
  }
  for (const auto& engine : engines) engine->drain();
}

void EngineCluster::wait_idle() {
  std::vector<std::shared_ptr<StencilEngine>> engines;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    engines = engines_;
  }
  for (const auto& engine : engines) engine->wait_idle();
}

std::int64_t EngineCluster::tenant_inflight(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  std::lock_guard<std::mutex> tlock(it->second->mu);
  return it->second->inflight;
}

}  // namespace fpga_stencil
