// The one entry point over the single-board execution paths.
//
// Callers describe WHAT to run (taps, config, grid, iterations) and HOW
// in a single RunOptions; run() routes to the matching backend instead of
// every CLI and bench hand-picking accelerator classes:
//
//   options.backend          routed to
//   -----------------------  ------------------------------------------
//   sync_sim                 StencilAccelerator::run
//   concurrent               run_concurrent
//   block_parallel           run_block_parallel
//   resilient                run_resilient (options become .base; the
//                            500 ms watchdog default is restored when
//                            options left the deadline at 0, since a
//                            resilient run without a deadline could
//                            never unwind a stalled pass)
//   cluster                  engine-only; throws ConfigError here --
//                            multi-board jobs need the StencilEngine's
//                            boards/device/link vocabulary
//   automatic                resolve_backend() below
//
// Every route is bit-exact with every other (pinned by tests), so the
// choice is purely a performance/resilience decision. For queueing,
// plan caching, and buffer pooling across many jobs, use StencilEngine;
// run() is the direct, call-site-blocking form of the same routing.
#pragma once

#include "core/run_options.hpp"
#include "core/stencil_accelerator.hpp"

namespace fpga_stencil {

/// The routing decision run() would take, exposed so callers (stencilctl)
/// can report which backend a RunOptions resolves to. `automatic`
/// resolves to: resilient when an injector is set; block_parallel when
/// at least 2 workers are requested (or available) AND the blocking plan
/// yields >= 2 blocks per worker; else sync_sim.
ExecutionBackend resolve_backend(const TapSet& taps,
                                 const AcceleratorConfig& cfg,
                                 std::int64_t nx, std::int64_t ny,
                                 std::int64_t nz, const RunOptions& options);

/// Advances `grid` by `iterations` time steps in place on the backend
/// `options` selects. Instantiated for Grid2D<float> and Grid3D<float>.
template <typename GridT>
RunStats run(const TapSet& taps, const AcceleratorConfig& cfg, GridT& grid,
             int iterations, const RunOptions& options = {});

extern template RunStats run<Grid2D<float>>(const TapSet&,
                                            const AcceleratorConfig&,
                                            Grid2D<float>&, int,
                                            const RunOptions&);
extern template RunStats run<Grid3D<float>>(const TapSet&,
                                            const AcceleratorConfig&,
                                            Grid3D<float>&, int,
                                            const RunOptions&);

}  // namespace fpga_stencil
