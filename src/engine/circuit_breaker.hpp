// Per-backend circuit breaker for the engine's router.
//
// A backend that keeps failing (fault-injected pipeline, bug in a
// threaded runtime) should not keep eating jobs: after `threshold`
// consecutive failures the breaker *opens* for that backend and the
// router sends its jobs to the synchronous simulator instead -- slower,
// but sequential and dependency-free, the fallback of last resort. After
// `cooldown` the breaker goes *half-open*: exactly one probe job is let
// through; success closes the breaker (normal routing resumes), failure
// reopens it for another cooldown.
//
//   closed --(threshold consecutive failures)--> open
//   open   --(cooldown elapsed)--> half-open (one probe admitted)
//   half-open --(probe succeeds)--> closed
//   half-open --(probe fails)--> open
//
// Only the concurrent, block-parallel, and resilient backends are
// breakable. sync_sim is the fallback (rerouting it to itself is
// meaningless) and cluster jobs are never rerouted: a multi-board job's
// result vocabulary (ClusterStats) has no single-board equivalent.
//
// Failure classification is the caller's job: cancellations, deadline
// expiries, and configuration errors say nothing about backend health
// and must not be reported here (see StencilEngine::execute).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "core/run_options.hpp"

namespace fpga_stencil {

enum class BreakerState : int { closed = 0, open = 1, half_open = 2 };

[[nodiscard]] const char* breaker_state_name(BreakerState s);

class CircuitBreaker {
 public:
  /// `threshold` consecutive failures open a backend's breaker; a
  /// threshold <= 0 disables the breaker entirely (route() is identity).
  CircuitBreaker(int threshold, std::chrono::milliseconds cooldown);

  struct Decision {
    ExecutionBackend backend = ExecutionBackend::sync_sim;
    bool rerouted = false;  ///< true when the breaker overrode `requested`
  };

  /// The backend a job asking for `requested` should actually run on.
  /// Must be a concrete backend (automatic already resolved).
  [[nodiscard]] Decision route(ExecutionBackend requested);

  /// Reports the outcome of a job on the backend it actually ran on.
  void on_success(ExecutionBackend used);
  void on_failure(ExecutionBackend used);

  [[nodiscard]] BreakerState state(ExecutionBackend b) const;
  /// closed -> open transitions (including half-open probes that failed).
  [[nodiscard]] std::int64_t trips() const;
  /// Jobs sent to the fallback backend instead of the one they asked for.
  [[nodiscard]] std::int64_t reroutes() const;
  [[nodiscard]] bool enabled() const { return threshold_ > 0; }

  /// The backends the breaker tracks (gauge export, docs).
  [[nodiscard]] static constexpr std::array<ExecutionBackend, 3>
  breakable_backends() {
    return {ExecutionBackend::concurrent, ExecutionBackend::block_parallel,
            ExecutionBackend::resilient};
  }

 private:
  struct Entry {
    BreakerState state = BreakerState::closed;
    int consecutive_failures = 0;
    bool probe_in_flight = false;
    std::chrono::steady_clock::time_point opened_at{};
  };

  static bool breakable(ExecutionBackend b);
  Entry& entry(ExecutionBackend b);

  const int threshold_;
  const std::chrono::milliseconds cooldown_;
  mutable std::mutex mu_;
  std::array<Entry, 6> entries_;  ///< indexed by ExecutionBackend value
  std::int64_t trips_ = 0;
  std::int64_t reroutes_ = 0;
};

}  // namespace fpga_stencil
