#include "engine/shard_router.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace fpga_stencil {
namespace {

/// SplitMix64 finalizer: a full-avalanche 64-bit mix. Vnode positions and
/// key lookups go through the same mixer so neither clusters on the ring.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardRouter::ShardRouter(int shards, int vnodes_per_shard) : shards_(shards) {
  FPGASTENCIL_EXPECT(shards >= 1, "router needs at least one shard");
  FPGASTENCIL_EXPECT(vnodes_per_shard >= 1, "vnodes_per_shard must be >= 1");
  ring_.reserve(std::size_t(shards) * std::size_t(vnodes_per_shard));
  for (int s = 0; s < shards; ++s) {
    for (int v = 0; v < vnodes_per_shard; ++v) {
      // Two rounds decorrelate (shard, vnode) lattices from one another.
      const std::uint64_t h =
          mix64(mix64(std::uint64_t(s) << 32 | std::uint64_t(v)));
      ring_.push_back({h, s});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash < b.hash || (a.hash == b.hash && a.shard < b.shard);
  });
  available_.assign(std::size_t(shards), true);
}

int ShardRouter::route(std::uint64_t key) const {
  const std::uint64_t h = mix64(key);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.hash < v; });
  for (std::size_t step = 0; step < ring_.size(); ++step) {
    if (it == ring_.end()) it = ring_.begin();  // wrap the ring
    if (available_[std::size_t(it->shard)]) return it->shard;
    ++it;
  }
  throw NoShardAvailableError("no shard available to route to");
}

void ShardRouter::set_available(int shard, bool available) {
  FPGASTENCIL_EXPECT(shard >= 0 && shard < shards_, "shard out of range");
  std::lock_guard<std::mutex> lock(mu_);
  available_[std::size_t(shard)] = available;
}

bool ShardRouter::available(int shard) const {
  FPGASTENCIL_EXPECT(shard >= 0 && shard < shards_, "shard out of range");
  std::lock_guard<std::mutex> lock(mu_);
  return available_[std::size_t(shard)];
}

int ShardRouter::available_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return int(std::count(available_.begin(), available_.end(), true));
}

}  // namespace fpga_stencil
