// EngineCluster: the multi-tenant serving tier over N StencilEngine
// shards (docs/SERVING.md).
//
// One process, N independent engine shards -- each with its own worker
// pool, PlanCache, BufferPool, and circuit breaker -- behind a
// consistent-hash router keyed by plan fingerprint, so every job stream
// that shares a plan hits the same shard's hot caches. In front of the
// router sits tenant admission: per-tenant inflight caps and token-bucket
// rate limits, enforced before a job touches any shard, with either
// blocking backpressure or QuotaExceededError carrying a retry-after
// hint. QoS class and priority ride inside the JobSpec and are honored
// by each shard's weighted admission queue.
//
//   EngineCluster cluster({.shards = 4});
//   JobSpec spec(taps, cfg, std::move(grid), iters);
//   spec.tenant = "alice";
//   spec.qos = QosClass::interactive;
//   JobHandle h = cluster.submit(std::move(spec));   // the one front door
//
// Shards share the cluster's Telemetry under distinct metric prefixes
// ("engine.shard<k>.*"), plus cluster-level counters ("cluster.*",
// "cluster.tenant.<tenant>.*") -- nothing collides in one registry.
//
// Operability: drain_shard(k) routes new work away, finishes everything
// the shard accepted (zero jobs lost -- a submission racing the drain is
// re-routed to another shard), and leaves it out of rotation;
// reload_shard(k) swaps in a fresh engine (cold caches, clean breaker)
// and restores it. The whole-cluster drain() is the graceful stop.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/token_bucket.hpp"
#include "engine/shard_router.hpp"
#include "engine/stencil_engine.hpp"

namespace fpga_stencil {

/// Per-tenant admission limits. The default-constructed quota is
/// unlimited; a tenant missing from ClusterOptions::quotas gets
/// ClusterOptions::default_quota.
struct TenantQuota {
  /// Max jobs this tenant may have queued+running across all shards;
  /// 0 = unlimited.
  int max_inflight = 0;
  /// Sustained submissions per second (token bucket); 0 = unlimited.
  double rate_per_s = 0.0;
  /// Bucket depth; 0 defaults to max(rate_per_s, 1).
  double burst = 0.0;
  /// Over quota: true = block the submitter until admission is possible
  /// (backpressure), false = throw QuotaExceededError with retry-after.
  bool block = false;
};

/// Submission rejected by tenant admission (quota, not capacity: the
/// cluster is healthy, this tenant is over its limits). retry_after() is
/// the earliest a retry can succeed -- 0 for inflight caps, where the
/// trigger is one of the tenant's own jobs finishing, not a clock.
class QuotaExceededError : public std::runtime_error {
 public:
  QuotaExceededError(const std::string& what, std::chrono::nanoseconds after)
      : std::runtime_error(what), retry_after_(after) {}
  [[nodiscard]] std::chrono::nanoseconds retry_after() const {
    return retry_after_;
  }

 private:
  std::chrono::nanoseconds retry_after_;
};

struct ClusterOptions {
  /// Engine shards (>= 1). Each is an independent StencilEngine.
  int shards = 2;
  /// Template for every shard; telemetry and metrics_prefix are
  /// overridden per shard (shared registry, "engine.shard<k>" prefixes).
  EngineOptions engine;
  /// Ring smoothing; see ShardRouter.
  int vnodes_per_shard = 64;
  /// Per-tenant limits; tenants not listed get default_quota.
  std::map<std::string, TenantQuota> quotas;
  TenantQuota default_quota;  ///< unlimited unless configured
  /// Shared observability sink; null = cluster-local. Must outlive the
  /// cluster. Shards and cluster counters all record here.
  Telemetry* telemetry = nullptr;
};

class EngineCluster {
 public:
  explicit EngineCluster(ClusterOptions options = {});
  /// Drains every shard (accepted jobs all finish).
  ~EngineCluster();

  EngineCluster(const EngineCluster&) = delete;
  EngineCluster& operator=(const EngineCluster&) = delete;

  /// The client-facing front door: validates the spec (same path as
  /// StencilEngine::submit), applies the tenant's quota, routes by plan
  /// fingerprint, and admits to the owning shard. Throws ConfigError for
  /// bad specs, QuotaExceededError over quota (non-blocking tenants),
  /// EngineOverloadedError from a full shard queue under reject
  /// admission, EngineStoppedError when no shard is available.
  JobHandle submit(JobSpec spec);

  /// Synchronous convenience: submit + wait. Rethrows the job's error.
  /// Deprecated for one release (the PR 8/9 shim convention): submit()
  /// is the one front door, and everything the serving tier defines --
  /// QoS, quotas, chunk sinks, program jobs with multi-field results --
  /// is specified in terms of the handle that submit() returns. Spell it
  /// `JobHandle h = cluster.submit(std::move(spec)); h.wait();`.
  [[deprecated(
      "use submit() + JobHandle::wait(); run() is removed next "
      "release")]] JobResult
  run(JobSpec spec);

  /// Routes new work away from shard k, then blocks until everything it
  /// accepted finished. The shard stays out of rotation (reload_shard
  /// brings it back). Safe under concurrent submissions: a job racing
  /// the drain is re-admitted to another shard, never lost.
  void drain_shard(int shard);

  /// Replaces shard k with a fresh engine (cold PlanCache/BufferPool,
  /// closed breaker) and puts it back in rotation. The old engine object
  /// stays alive until its last in-flight handle is gone.
  void reload_shard(int shard);

  /// Graceful stop: drains every shard; subsequent submissions throw
  /// EngineStoppedError. Idempotent.
  void drain();

  /// Blocks until every shard is idle (no queued or running jobs).
  void wait_idle();

  [[nodiscard]] int shards() const { return options_.shards; }
  /// The live engine behind shard k (stats/telemetry introspection).
  [[nodiscard]] StencilEngine& shard(int k);
  [[nodiscard]] const ShardRouter& router() const { return router_; }

  /// The consistent-hash key submit() routes this spec by: plan identity
  /// (tap-set fingerprint + blocking knobs + grid extents), the same
  /// vocabulary the per-shard PlanCache keys on.
  [[nodiscard]] static std::uint64_t route_key(const JobSpec& spec);
  /// The shard route_key currently lands on (test/ops introspection).
  [[nodiscard]] int route_shard(const JobSpec& spec) const;

  /// This tenant's jobs currently queued or running across all shards.
  [[nodiscard]] std::int64_t tenant_inflight(const std::string& tenant) const;

  [[nodiscard]] Telemetry& telemetry() { return *telemetry_; }
  [[nodiscard]] const ClusterOptions& options() const { return options_; }

 private:
  struct TenantState {
    explicit TenantState(const TenantQuota& q)
        : quota(q), bucket(q.rate_per_s, q.burst) {}
    const TenantQuota quota;
    TokenBucket bucket;
    std::mutex mu;
    std::condition_variable cv;  ///< blocking tenants wait for inflight
    std::int64_t inflight = 0;
  };

  TenantState& tenant_state(const std::string& tenant);
  /// Inflight + rate admission for one submission; throws
  /// QuotaExceededError (non-blocking) or blocks until admitted.
  void acquire_quota(TenantState& ts, const std::string& tenant);
  void release_quota(TenantState& ts);
  [[nodiscard]] std::string tenant_metric(const std::string& tenant,
                                          const char* suffix) const;

  ClusterOptions options_;
  Telemetry own_telemetry_;
  Telemetry* telemetry_;
  ShardRouter router_;

  mutable std::mutex shards_mu_;  ///< guards engines_ slot swaps
  std::vector<std::shared_ptr<StencilEngine>> engines_;
  bool draining_ = false;

  mutable std::mutex tenants_mu_;  ///< guards the tenant map shape
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;
};

}  // namespace fpga_stencil
