#include "engine/run.hpp"

#include <chrono>
#include <type_traits>

#include "common/expect.hpp"
#include "core/block_parallel_accelerator.hpp"
#include "core/concurrent_accelerator.hpp"
#include "fault/resilient_runner.hpp"
#include "tune/host_autotuner.hpp"

namespace fpga_stencil {

ExecutionBackend resolve_backend(const TapSet& taps,
                                 const AcceleratorConfig& cfg,
                                 std::int64_t nx, std::int64_t ny,
                                 std::int64_t nz, const RunOptions& options) {
  if (options.backend != ExecutionBackend::automatic) return options.backend;
  // An injector routes to the resilient runner, never the bare pipeline:
  // an injected stall without a watchdog would deadlock the pass.
  if (options.injector != nullptr) return ExecutionBackend::resilient;
  const AcceleratorConfig resolved = resolve_stage_lag(taps, cfg);
  const BlockingPlan plan = make_blocking_plan(resolved, nx, ny, nz);
  const std::int64_t workers = requested_block_workers(options.workers);
  // Fan out only when every worker gets at least two blocks; below that
  // the sync simulator's single sweep beats spawning a starved pool.
  if (workers >= 2 && plan.total_blocks() >= 2 * workers) {
    return ExecutionBackend::block_parallel;
  }
  return ExecutionBackend::sync_sim;
}

namespace {

template <typename GridT>
RunStats run_impl(const TapSet& taps, const AcceleratorConfig& cfg,
                  GridT& grid, int iterations, const RunOptions& options) {
  constexpr bool is_3d = std::is_same_v<GridT, Grid3D<float>>;
  const std::int64_t nz = [&] {
    if constexpr (is_3d) {
      return grid.nz();
    } else {
      return std::int64_t{1};
    }
  }();
  // Autotune first so backend resolution and every executor below see the
  // tuned geometry. The free-run path has no plan cache, so cached_only is
  // the sensible steady-state mode here (a TuningCache hit is a map
  // lookup); `search` probes on every call unless a cache file absorbs it.
  AcceleratorConfig tuned_cfg = cfg;
  if (options.autotune != AutotuneMode::off) {
    HostAutotuner& tuner = options.tuner != nullptr
                               ? *options.tuner
                               : HostAutotuner::process_default();
    if (const std::optional<AutotuneOutcome> outcome = tuner.resolve(
            taps, cfg, grid.nx(), grid.ny(), nz, options.autotune,
            options.cancel.valid() ? &options.cancel : nullptr)) {
      tuned_cfg = outcome->config;
      tuned_cfg.telemetry = cfg.telemetry;
    }
  }
  const AcceleratorConfig& rcfg = tuned_cfg;
  const ExecutionBackend backend =
      resolve_backend(taps, rcfg, grid.nx(), grid.ny(), nz, options);
  switch (backend) {
    case ExecutionBackend::automatic:
      break;  // resolved above; unreachable
    case ExecutionBackend::sync_sim: {
      AcceleratorConfig scfg = rcfg;
      if (options.telemetry) scfg.telemetry = options.telemetry;
      StencilAccelerator accel(taps, scfg);
      return accel.run(grid, iterations, options.scratch,
                       options.cancel.valid() ? &options.cancel : nullptr);
    }
    case ExecutionBackend::concurrent:
      return run_concurrent(taps, rcfg, grid, iterations, options);
    case ExecutionBackend::block_parallel:
      return run_block_parallel(taps, rcfg, grid, iterations, options);
    case ExecutionBackend::resilient: {
      ResilienceOptions ropts;
      ropts.base = options;
      if (ropts.base.watchdog_deadline.count() == 0) {
        // Default resilience policy: a run without a deadline could never
        // unwind a stalled pass.
        ropts.base.watchdog_deadline = std::chrono::milliseconds(500);
      }
      return run_resilient(taps, rcfg, grid, iterations, ropts);
    }
    case ExecutionBackend::cluster:
      throw ConfigError(
          "cluster backend is engine-only: submit a JobSpec with boards > 1 "
          "to a StencilEngine");
  }
  throw ConfigError("unknown execution backend");
}

}  // namespace

template <typename GridT>
RunStats run(const TapSet& taps, const AcceleratorConfig& cfg, GridT& grid,
             int iterations, const RunOptions& options) {
  return run_impl(taps, cfg, grid, iterations, options);
}

template RunStats run<Grid2D<float>>(const TapSet&, const AcceleratorConfig&,
                                     Grid2D<float>&, int, const RunOptions&);
template RunStats run<Grid3D<float>>(const TapSet&, const AcceleratorConfig&,
                                     Grid3D<float>&, int, const RunOptions&);

}  // namespace fpga_stencil
