// Job vocabulary of the StencilEngine: what a caller submits (JobSpec),
// what comes back (JobResult), and the future-style handle between them.
//
// A job is one complete stencil computation -- tap set + configuration +
// input grid + iteration count -- plus routing and QoS hints. The engine
// owns the grid for the duration (the spec *moves* in) and hands it back
// through the result, so concurrent jobs never alias storage.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <variant>

#include "cluster/multi_fpga.hpp"
#include "core/run_options.hpp"
#include "core/stencil_accelerator.hpp"
#include "fault/resilient_runner.hpp"
#include "fpga/device_spec.hpp"
#include "grid/grid.hpp"
#include "stencil/accel_config.hpp"
#include "stencil/tap_set.hpp"

namespace fpga_stencil {

/// Execution paths the engine can route a job to: the engine-level name
/// of the shared backend vocabulary (core/run_options.hpp). Under
/// `automatic` the engine picks cluster if boards > 1, resilient if an
/// injector is set, block_parallel if the plan yields at least two
/// blocks per worker, else the synchronous simulator.
using Backend = ExecutionBackend;

/// Either grid dimensionality, by value. The engine works on whichever
/// alternative the spec carries; cfg.dims must agree (validated at submit).
using GridVariant = std::variant<Grid2D<float>, Grid3D<float>>;

/// One unit of work. Construct with the required fields, then adjust the
/// public knobs before submitting. The grid moves into the spec and the
/// spec moves into the engine.
struct JobSpec {
  JobSpec(TapSet taps_, AcceleratorConfig config_, Grid2D<float> grid_,
          int iterations_)
      : taps(std::move(taps_)),
        config(config_),
        grid(std::move(grid_)),
        iterations(iterations_) {}
  JobSpec(TapSet taps_, AcceleratorConfig config_, Grid3D<float> grid_,
          int iterations_)
      : taps(std::move(taps_)),
        config(config_),
        grid(std::move(grid_)),
        iterations(iterations_) {}

  TapSet taps;
  AcceleratorConfig config;
  GridVariant grid;
  int iterations = 0;

  Backend backend = Backend::automatic;
  /// Dataflow knobs (concurrent / resilient backends).
  std::size_t channel_depth = 64;
  /// Block-parallel worker threads; 0 = hardware_concurrency. Routing
  /// note: Backend::automatic picks block_parallel only when the cached
  /// plan yields >= 2 blocks per worker (see docs/PARALLEL.md).
  int workers = 0;
  /// Per-job fault source. Routing note: under Backend::automatic an
  /// injector routes to the resilient backend -- injecting a stall into
  /// the bare concurrent pipeline without a watchdog would deadlock.
  FaultInjector* injector = nullptr;
  std::chrono::milliseconds watchdog_deadline{0};
  /// Resilient-backend policy (attempts, checkpoints, checksums). Its
  /// injector/telemetry/scratch fields are overridden by the engine.
  ResilienceOptions resilience;
  /// Cluster-backend shape; boards > 1 routes automatic jobs there.
  int boards = 1;
  DeviceSpec device;  ///< cluster only; name empty = arria10_gx1150()
  LinkSpec link;      ///< cluster only
  /// Free-form tag echoed in the result (demo campaigns, debugging).
  std::string label;

  [[nodiscard]] bool is_3d() const {
    return std::holds_alternative<Grid3D<float>>(grid);
  }
};

/// What a finished job hands back.
struct JobResult {
  GridVariant grid;  ///< the advanced grid (moved back out of the engine)
  RunStats stats;
  ClusterStats cluster;      ///< cluster backend only; default otherwise
  Backend backend = Backend::sync_sim;  ///< path actually taken
  bool plan_cache_hit = false;
  std::uint64_t kernel_fingerprint = 0;  ///< from the cached plan
  std::int64_t queue_ns = 0;  ///< admission to dispatch
  std::int64_t run_ns = 0;    ///< dispatch to completion
  std::string label;

  JobResult() : grid(Grid2D<float>(1, 1)) {}

  [[nodiscard]] Grid2D<float>& grid2d() {
    return std::get<Grid2D<float>>(grid);
  }
  [[nodiscard]] const Grid2D<float>& grid2d() const {
    return std::get<Grid2D<float>>(grid);
  }
  [[nodiscard]] Grid3D<float>& grid3d() {
    return std::get<Grid3D<float>>(grid);
  }
  [[nodiscard]] const Grid3D<float>& grid3d() const {
    return std::get<Grid3D<float>>(grid);
  }
};

enum class JobStatus { queued, running, done, failed };

/// Submission rejected by a full admission queue under
/// EngineOptions::Admission::reject.
class EngineOverloadedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

/// Shared between the engine's worker and every JobHandle copy.
struct JobState {
  explicit JobState(JobSpec s) : spec(std::move(s)) {}

  std::mutex mu;
  std::condition_variable cv;
  JobStatus status = JobStatus::queued;
  JobSpec spec;               ///< consumed by the worker at dispatch
  JobResult result;           ///< valid once status == done
  std::exception_ptr error;   ///< set when status == failed
  std::chrono::steady_clock::time_point enqueue_time;
};

}  // namespace detail

/// Future-style handle to a submitted job. Copyable; all copies observe
/// the same job. wait() blocks until the job finishes and either returns
/// the result or rethrows the job's exception -- a failed job never
/// silently yields a grid.
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  [[nodiscard]] JobStatus status() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->status;
  }

  [[nodiscard]] bool finished() const {
    const JobStatus s = status();
    return s == JobStatus::done || s == JobStatus::failed;
  }

  /// Blocks until the job completes. Rethrows the job's exception on
  /// failure. The reference stays valid while any handle copy lives.
  JobResult& wait() {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] {
      return state_->status == JobStatus::done ||
             state_->status == JobStatus::failed;
    });
    if (state_->status == JobStatus::failed) {
      std::rethrow_exception(state_->error);
    }
    return state_->result;
  }

  /// wait() with a deadline; false if still running when it expires.
  bool wait_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(state_->mu);
    return state_->cv.wait_for(lock, timeout, [&] {
      return state_->status == JobStatus::done ||
             state_->status == JobStatus::failed;
    });
  }

 private:
  friend class StencilEngine;
  explicit JobHandle(std::shared_ptr<detail::JobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::JobState> state_;
};

}  // namespace fpga_stencil
