// Job vocabulary of the StencilEngine: what a caller submits (JobSpec),
// what comes back (JobResult), and the future-style handle between them.
//
// A job is one complete stencil computation -- tap set + configuration +
// input grid + iteration count -- plus routing and QoS hints. The engine
// owns the grid for the duration (the spec *moves* in) and hands it back
// through the result, so concurrent jobs never alias storage.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <variant>

#include "cluster/multi_fpga.hpp"
#include "common/expect.hpp"
#include "core/run_options.hpp"
#include "core/stencil_accelerator.hpp"
#include "fault/resilient_runner.hpp"
#include "fpga/device_spec.hpp"
#include "grid/grid.hpp"
#include "program/program_spec.hpp"
#include "stencil/accel_config.hpp"
#include "stencil/tap_set.hpp"

namespace fpga_stencil {

/// Execution paths the engine can route a job to: the engine-level name
/// of the shared backend vocabulary (core/run_options.hpp). Under
/// `automatic` the engine picks cluster if boards > 1, resilient if an
/// injector is set, block_parallel if the plan yields at least two
/// blocks per worker, else the synchronous simulator.
using Backend = ExecutionBackend;

// GridVariant (either grid dimensionality, by value) lives in
// program/program_spec.hpp now that jobs and program fields share it.

/// QoS service classes for the weighted admission queue (docs/SERVING.md).
/// Lower value = more favored; the queue serves classes by weighted
/// round-robin so batch floods cannot starve interactive work while
/// batch still drains at its guaranteed share.
enum class QosClass : int {
  interactive = 0,  ///< latency-sensitive, highest scheduling weight
  standard = 1,     ///< the default
  batch = 2,        ///< throughput work, lowest weight (never starved)
};

inline constexpr int kQosClassCount = 3;

[[nodiscard]] constexpr const char* qos_class_name(QosClass c) {
  switch (c) {
    case QosClass::interactive: return "interactive";
    case QosClass::standard: return "standard";
    case QosClass::batch: return "batch";
  }
  return "?";
}

/// One contiguous band of a finished grid, streamed to JobSpec::sink:
/// whole rows for 2D (start/count index y), whole z-planes for 3D
/// (start/count index z) -- both are contiguous in the row-major layouts.
/// `data` points into the result grid and is valid only during the
/// callback; copy out anything you keep.
struct ResultChunk {
  int dims = 2;
  std::int64_t nx = 0, ny = 0, nz = 1;
  /// Field the band belongs to: empty for single-stencil jobs; the field
  /// name for program jobs, which stream every non-work field in
  /// declaration order (`index` stays continuous across fields and `last`
  /// marks the final band of the final field).
  std::string field;
  std::int64_t index = 0;  ///< chunk ordinal, 0-based
  std::int64_t start = 0;  ///< first row (2D) / plane (3D) of the band
  std::int64_t count = 0;  ///< rows / planes in the band
  const float* data = nullptr;
  std::size_t values = 0;  ///< floats at `data` (count * row/plane stride)
  bool last = false;       ///< no further chunks follow
};

/// Receives result bands in order on the worker thread, after the job's
/// computation finished and before the handle turns terminal.
using ChunkSink = std::function<void(const ResultChunk&)>;

enum class JobStatus;  // defined below (terminal-state vocabulary)

/// One unit of work. Construct with the required fields, then adjust the
/// public knobs before submitting. The grid moves into the spec and the
/// spec moves into the engine.
struct JobSpec {
  JobSpec(TapSet taps_, AcceleratorConfig config_, Grid2D<float> grid_,
          int iterations_)
      : taps(std::move(taps_)),
        config(config_),
        grid(std::move(grid_)),
        iterations(iterations_) {}
  JobSpec(TapSet taps_, AcceleratorConfig config_, Grid3D<float> grid_,
          int iterations_)
      : taps(std::move(taps_)),
        config(config_),
        grid(std::move(grid_)),
        iterations(iterations_) {}
  /// Program job: submits a whole multi-field stencil program through the
  /// same front door (docs/PROGRAMS.md). The single-stencil members are
  /// inert placeholders for these jobs.
  explicit JobSpec(std::shared_ptr<const ProgramSpec> program_)
      : taps(2, 1, {Tap{0, 0, 0, 1.0f}}),
        config(),
        grid(Grid2D<float>(1, 1)),
        iterations(0) {
    program = std::move(program_);
  }

  TapSet taps;
  AcceleratorConfig config;
  GridVariant grid;
  int iterations = 0;

  /// Multi-field stencil program (docs/PROGRAMS.md). When set, the engine
  /// ignores taps/config/grid/iterations above and instead plans and runs
  /// every program node via ProgramExecutor; the result carries the final
  /// state of every field in JobResult::fields, and a sink receives each
  /// non-work field as its own chunk run (ResultChunk::field). Held by
  /// shared_ptr so large initial fields are never copied through the
  /// admission queue.
  std::shared_ptr<const ProgramSpec> program;

  Backend backend = Backend::automatic;
  /// Dataflow knobs (concurrent / resilient backends).
  std::size_t channel_depth = 64;
  /// Block-parallel worker threads; 0 = hardware_concurrency. Routing
  /// note: Backend::automatic picks block_parallel only when the cached
  /// plan yields >= 2 blocks per worker (see docs/PARALLEL.md).
  int workers = 0;
  /// Per-job fault source. Routing note: under Backend::automatic an
  /// injector routes to the resilient backend -- injecting a stall into
  /// the bare concurrent pipeline without a watchdog would deadlock.
  FaultInjector* injector = nullptr;
  std::chrono::milliseconds watchdog_deadline{0};
  /// Per-job deadline measured from submit(); 0 = none. Enforced
  /// cooperatively by whichever worker/backend runs the job (the job's
  /// CancellationToken trips itself past the deadline), so a job that
  /// overruns -- or never leaves the queue in time -- lands in
  /// JobStatus::deadline_exceeded. Independent of watchdog_deadline,
  /// which bounds *progress stalls*, not total latency.
  std::chrono::milliseconds deadline{0};
  /// Resilient-backend policy (attempts, checkpoints, checksums). Its
  /// injector/telemetry/scratch fields are overridden by the engine.
  ResilienceOptions resilience;
  /// Cluster-backend shape; boards > 1 routes automatic jobs there.
  int boards = 1;
  DeviceSpec device;  ///< cluster only; name empty = arria10_gx1150()
  LinkSpec link;      ///< cluster only
  /// Free-form tag echoed in the result (demo campaigns, debugging).
  std::string label;

  // ---- Serving-tier identity and delivery (docs/SERVING.md). These are
  // plain JobSpec fields so the single submit() path carries everything:
  // EngineCluster enforces tenant quotas from them, a bare StencilEngine
  // uses qos/priority for scheduling and ignores tenancy.

  /// Billing / quota identity. EngineCluster applies this tenant's
  /// inflight and rate caps at admission; empty means "default".
  std::string tenant = "default";
  /// Service class for the weighted admission queue.
  QosClass qos = QosClass::standard;
  /// Tie-breaker within the class: higher runs first, FIFO among equals.
  int priority = 0;
  /// Chunked result delivery for huge grids: when set, the finished grid
  /// is streamed through this sink in contiguous bands (ResultChunk)
  /// before the handle turns terminal.
  ChunkSink sink;
  /// With a sink: drop the result grid after delivery (the JobResult
  /// carries a 1x1 placeholder). The server never holds client-sized
  /// output longer than the stream takes.
  bool sink_only = false;
  /// Target floats per chunk; bands round up to whole rows/planes.
  std::int64_t chunk_values = 1 << 16;
  /// Invoked exactly once on the worker thread when the job reaches a
  /// terminal state -- after the state is recorded, before handle waiters
  /// are notified. EngineCluster chains its quota release through this;
  /// user callbacks must not block or throw.
  std::function<void(JobStatus)> on_terminal;

  [[nodiscard]] bool is_3d() const {
    return std::holds_alternative<Grid3D<float>>(grid);
  }
};

/// The one validated admission path: every submit surface --
/// StencilEngine::submit and EngineCluster::submit -- funnels specs
/// through here, so a spec that clears one front door clears them all.
/// Cheap shape checks only (throwing ConfigError at the call site); full
/// plan validation still happens in the worker and surfaces through the
/// handle.
inline void validate_job_spec(const JobSpec& spec) {
  FPGASTENCIL_EXPECT(spec.iterations >= 0, "iterations must be non-negative");
  FPGASTENCIL_EXPECT(spec.boards >= 1, "boards must be >= 1");
  FPGASTENCIL_EXPECT(int(spec.qos) >= 0 && int(spec.qos) < kQosClassCount,
                     "qos class out of range");
  FPGASTENCIL_EXPECT(spec.chunk_values > 0, "chunk_values must be positive");
  FPGASTENCIL_EXPECT(!spec.sink_only || spec.sink,
                     "sink_only requires a chunk sink");
  // Non-clamp boundary conditions and programs run on the in-process
  // single-board backends only: the concurrent pipeline's geometry reader
  // returns zeros outside the grid (clamp semantics are patched in the
  // PEs), and the multi-FPGA cluster is a timing model that never touches
  // cell data -- neither can honor periodic/reflective/dirichlet wraps.
  const bool single_board_only =
      spec.program != nullptr || !spec.taps.boundary().is_clamp();
  if (single_board_only) {
    FPGASTENCIL_EXPECT(
        spec.backend == Backend::automatic ||
            spec.backend == Backend::sync_sim ||
            spec.backend == Backend::block_parallel,
        "programs and non-clamp boundaries support only the automatic, "
        "sync_sim and block_parallel backends");
    FPGASTENCIL_EXPECT(
        spec.injector == nullptr,
        "programs and non-clamp boundaries do not take a fault injector");
    FPGASTENCIL_EXPECT(spec.boards == 1,
                       "programs and non-clamp boundaries are single-board");
  }
  if (spec.program) {
    spec.program->validate();  // full DAG/shape validation at the front door
  } else {
    FPGASTENCIL_EXPECT(spec.config.dims == (spec.is_3d() ? 3 : 2),
                       "grid dimensionality does not match the configuration");
  }
}

/// What a finished job hands back.
struct JobResult {
  GridVariant grid;  ///< the advanced grid (moved back out of the engine)
  RunStats stats;
  ClusterStats cluster;      ///< cluster backend only; default otherwise
  Backend backend = Backend::sync_sim;  ///< path actually taken
  /// True when the circuit breaker overrode the requested backend (the
  /// job ran on the sync_sim fallback; `backend` reflects the override).
  bool rerouted = false;
  bool plan_cache_hit = false;
  /// True when the plan's geometry came from the host autotuner
  /// (EngineOptions::autotune != off and the tuner resolved a winner).
  bool plan_tuned = false;
  std::uint64_t kernel_fingerprint = 0;  ///< from the cached plan
  std::int64_t queue_ns = 0;  ///< admission to dispatch
  std::int64_t run_ns = 0;    ///< dispatch to completion
  std::string label;
  std::string tenant;  ///< echoed from the spec
  QosClass qos = QosClass::standard;
  /// Engine-wide dispatch order (0-based): the position at which a
  /// worker picked this job off the admission queue. Scheduling tests
  /// pin priority/QoS ordering on it.
  std::int64_t dispatch_seq = -1;
  /// Chunks streamed through JobSpec::sink (0 when no sink was set).
  std::int64_t chunks_delivered = 0;

  // ---- Program jobs only (JobSpec::program; docs/PROGRAMS.md). `grid`
  // holds its 1x1 placeholder for these; the data lives in `fields`.

  /// Final state of every program field (work fields included), in
  /// declaration order. Empty for single-stencil jobs.
  std::vector<std::pair<std::string, GridVariant>> fields;
  std::int64_t program_nodes_executed = 0;  ///< node runs = nodes * steps
  std::int64_t program_steps = 0;           ///< timesteps advanced

  /// Program-field accessors (throws std::out_of_range on a bad name).
  [[nodiscard]] const GridVariant& field(std::string_view name) const {
    for (const auto& f : fields) {
      if (f.first == name) return f.second;
    }
    throw std::out_of_range("no such program field: " + std::string(name));
  }

  JobResult() : grid(Grid2D<float>(1, 1)) {}

  [[nodiscard]] Grid2D<float>& grid2d() {
    return std::get<Grid2D<float>>(grid);
  }
  [[nodiscard]] const Grid2D<float>& grid2d() const {
    return std::get<Grid2D<float>>(grid);
  }
  [[nodiscard]] Grid3D<float>& grid3d() {
    return std::get<Grid3D<float>>(grid);
  }
  [[nodiscard]] const Grid3D<float>& grid3d() const {
    return std::get<Grid3D<float>>(grid);
  }
};

/// The job lifecycle state machine (docs/LIFECYCLE.md):
///
///   queued --> running --> done | failed | cancelled | deadline_exceeded
///   queued ---------------------> cancelled | deadline_exceeded
///
/// done/failed/cancelled/deadline_exceeded are terminal; a handle's wait()
/// rethrows the job's error for every terminal state except done.
enum class JobStatus {
  queued,
  running,
  done,
  failed,
  cancelled,           ///< JobHandle::cancel() (or engine shutdown) tripped it
  deadline_exceeded,   ///< JobSpec::deadline expired before completion
};

[[nodiscard]] constexpr bool job_status_terminal(JobStatus s) {
  return s == JobStatus::done || s == JobStatus::failed ||
         s == JobStatus::cancelled || s == JobStatus::deadline_exceeded;
}

[[nodiscard]] constexpr const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::queued: return "queued";
    case JobStatus::running: return "running";
    case JobStatus::done: return "done";
    case JobStatus::failed: return "failed";
    case JobStatus::cancelled: return "cancelled";
    case JobStatus::deadline_exceeded: return "deadline_exceeded";
  }
  return "?";
}

/// Submission rejected by a full admission queue under
/// EngineOptions::Admission::reject.
class EngineOverloadedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Submission rejected because the engine left the running state
/// (drain(), shutdown(), or destruction in progress).
class EngineStoppedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

/// Shared between the engine's worker and every JobHandle copy.
struct JobState {
  explicit JobState(JobSpec s) : spec(std::move(s)) {}

  std::mutex mu;
  std::condition_variable cv;
  JobStatus status = JobStatus::queued;
  JobSpec spec;               ///< consumed by the worker at dispatch
  JobResult result;           ///< valid once status == done
  /// Set for every non-done terminal state; wait() rethrows it.
  std::exception_ptr error;
  std::chrono::steady_clock::time_point enqueue_time;
  /// Created at submit (deadline-armed when spec.deadline > 0); shared
  /// with the executing backend, tripped by JobHandle::cancel().
  CancellationToken token;
  /// Engine-wide dispatch order, stamped when a worker dequeues the job.
  std::int64_t dispatch_seq = -1;
};

}  // namespace detail

/// Future-style handle to a submitted job. Copyable; all copies observe
/// the same job. wait() blocks until the job finishes and either returns
/// the result or rethrows the job's exception -- a failed job never
/// silently yields a grid.
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  [[nodiscard]] JobStatus status() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->status;
  }

  [[nodiscard]] bool finished() const {
    return job_status_terminal(status());
  }

  /// Requests cooperative cancellation. Non-blocking and idempotent: the
  /// job unwinds at block granularity (docs/LIFECYCLE.md) and lands in
  /// JobStatus::cancelled -- or keeps its terminal state if it already
  /// finished; cancelling a done job does not un-finish it. Use
  /// wait()/wait_or_cancel() to observe the outcome.
  void cancel() { state_->token.request_cancel(); }

  /// Blocks until the job reaches a terminal state. Returns the result
  /// for a done job; rethrows the job's error otherwise (failure,
  /// CancelledError, DeadlineExceededError) -- a job that did not finish
  /// never silently yields a grid. The reference stays valid while any
  /// handle copy lives -- lvalue-qualified so `submit(...).wait()` cannot
  /// compile: the temporary handle may be the last owner of the state the
  /// reference points into.
  JobResult& wait() & {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return job_status_terminal(state_->status); });
    if (state_->status != JobStatus::done) {
      std::rethrow_exception(state_->error);
    }
    return state_->result;
  }

  /// wait() with a timeout; false if the job is not terminal when it
  /// expires. An expired wait_for does NOT stop the job -- it keeps
  /// running (and still holds its queue slot and buffers); compose with
  /// cancel() or use wait_or_cancel() to bound the job itself.
  bool wait_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(state_->mu);
    return state_->cv.wait_for(lock, timeout, [&] {
      return job_status_terminal(state_->status);
    });
  }

  /// wait_for composed with cancel-on-timeout: waits up to `timeout`; if
  /// the job is still live, requests cancellation and blocks until the
  /// cooperative unwind completes (bounded by one block's streaming
  /// time). Never throws; returns the terminal status -- done when the
  /// job beat the timeout (or finished during the race), cancelled /
  /// deadline_exceeded / failed otherwise.
  JobStatus wait_or_cancel(std::chrono::milliseconds timeout) {
    if (!wait_for(timeout)) cancel();
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return job_status_terminal(state_->status); });
    return state_->status;
  }

 private:
  friend class StencilEngine;
  explicit JobHandle(std::shared_ptr<detail::JobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::JobState> state_;
};

}  // namespace fpga_stencil
