#include "engine/plan_cache.hpp"

#include <bit>

#include "codegen/kernel_generator.hpp"
#include "core/stencil_accelerator.hpp"
#include "kernels/kernel_registry.hpp"
#include "tune/host_autotuner.hpp"

namespace fpga_stencil {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_mix(std::uint64_t& h, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (8 * byte)) & 0xffu;
    h *= kFnvPrime;
  }
}

std::uint64_t fnv_bytes(const std::string& s) {
  std::uint64_t h = kFnvOffset;
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t tap_set_fingerprint(const TapSet& taps) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, std::uint64_t(taps.dims()));
  fnv_mix(h, std::uint64_t(taps.radius()));
  for (const Tap& t : taps.taps()) {
    fnv_mix(h, std::uint64_t(t.dx));
    fnv_mix(h, std::uint64_t(t.dy));
    fnv_mix(h, std::uint64_t(t.dz));
    fnv_mix(h, std::bit_cast<std::uint32_t>(t.coeff));
  }
  // The boundary condition is part of the stencil's value identity, but
  // clamp -- the default and the only kind that existed before PR 10 --
  // is deliberately NOT mixed in: a clamp tap set must fingerprint
  // exactly as it always has, so warm TuningCache / PlanCache entries
  // (keyed by this value) survive the upgrade.
  const BoundaryCondition& bc = taps.boundary();
  if (!bc.is_clamp()) {
    fnv_mix(h, std::uint64_t(bc.kind));
    fnv_mix(h, std::bit_cast<std::uint32_t>(bc.value));
  }
  return h;
}

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

PlanCache::Key PlanCache::make_key(const TapSet& taps,
                                   const AcceleratorConfig& cfg,
                                   std::int64_t nx, std::int64_t ny,
                                   std::int64_t nz, AutotuneMode mode) {
  Key k;
  k.taps_fp = tap_set_fingerprint(taps);
  k.dims = cfg.dims;
  k.radius = cfg.radius;
  k.parvec = cfg.parvec;
  k.partime = cfg.partime;
  k.stage_lag = cfg.stage_lag;
  k.bsize_x = cfg.bsize_x;
  k.bsize_y = cfg.bsize_y;
  k.nx = nx;
  k.ny = ny;
  k.nz = nz;
  k.use_specialized_kernels = cfg.use_specialized_kernels;
  k.autotune_mode = int(mode);
  return k;
}

std::shared_ptr<const CachedPlan> PlanCache::lookup_or_build(
    const TapSet& taps, const AcceleratorConfig& cfg, std::int64_t nx,
    std::int64_t ny, std::int64_t nz, bool* hit, const PlanAutotune& autotune) {
  const AutotuneMode mode =
      autotune.tuner != nullptr ? autotune.mode : AutotuneMode::off;
  const Key key = make_key(taps, cfg, nx, ny, nz, mode);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->key == key) {
        entries_.splice(entries_.begin(), entries_, it);
        ++hits_;
        if (hit) *hit = true;
        return entries_.front().plan;
      }
    }
  }
  // Build outside the lock: validation + codegen can be slow, and a
  // ConfigError must not leave the cache locked or poisoned. Two threads
  // may race to build the same key; the loser's insert below dedups.
  auto plan = std::make_shared<CachedPlan>();
  // The cached config must be hook-free: the key deliberately ignores the
  // telemetry pointer (not a performance knob), so whatever hook the first
  // builder carried must not leak into every later job sharing the plan.
  AcceleratorConfig clean = cfg;
  clean.telemetry = nullptr;
  // Tuning happens here -- once per cached plan, outside the lock, in the
  // submitting worker's thread with its cancellation token -- exactly like
  // specialized-kernel resolution below. Jobs that hit the cache never pay
  // a probe.
  if (mode != AutotuneMode::off) {
    if (const std::optional<AutotuneOutcome> tuned = autotune.tuner->resolve(
            taps, clean, nx, ny, nz, mode, autotune.cancel)) {
      clean = tuned->config;
      plan->tuned = true;
      plan->tuned_from_cache = tuned->from_cache;
      plan->tuned_mcells = tuned->tuned_mcells;
      plan->tuned_baseline_mcells = tuned->baseline_mcells;
      plan->tuner_candidates_probed = tuned->candidates_probed;
      plan->tuner_search_ns = tuned->search_ns;
    }
  }
  plan->config = resolve_stage_lag(taps, clean);
  plan->blocking = make_blocking_plan(plan->config, nx, ny, nz);
  const std::string source =
      generate_tap_kernel_source(taps, {plan->config, false});
  plan->kernel_fingerprint = fnv_bytes(source);
  plan->kernel_source_bytes = std::int64_t(source.size());
  // Resolve the dispatch target once per plan; stream_block re-derives
  // the same answer per block (same registry, same structural match), so
  // the handle is a cached fact about the plan, not a side channel.
  // Specialized kernels hard-code the clamp border chains; every other
  // boundary condition runs on the generic interpreter.
  if (plan->config.use_specialized_kernels && taps.boundary().is_clamp()) {
    plan->specialized_kernel = KernelRegistry::instance().find(taps,
                                                              plan->config);
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  if (hit) *hit = false;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->key == key) {  // a racing builder beat us; adopt its plan
      entries_.splice(entries_.begin(), entries_, it);
      return entries_.front().plan;
    }
  }
  entries_.push_front(Entry{key, plan});
  while (entries_.size() > capacity_) {
    entries_.pop_back();
    ++evictions_;
  }
  return plan;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::int64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::int64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::int64_t PlanCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace fpga_stencil
