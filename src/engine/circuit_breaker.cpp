#include "engine/circuit_breaker.hpp"

namespace fpga_stencil {

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::closed: return "closed";
    case BreakerState::open: return "open";
    case BreakerState::half_open: return "half_open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(int threshold,
                               std::chrono::milliseconds cooldown)
    : threshold_(threshold), cooldown_(cooldown) {}

bool CircuitBreaker::breakable(ExecutionBackend b) {
  return b == ExecutionBackend::concurrent ||
         b == ExecutionBackend::block_parallel ||
         b == ExecutionBackend::resilient;
}

CircuitBreaker::Entry& CircuitBreaker::entry(ExecutionBackend b) {
  return entries_[std::size_t(b)];
}

CircuitBreaker::Decision CircuitBreaker::route(ExecutionBackend requested) {
  if (!enabled() || !breakable(requested)) return {requested, false};
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(requested);
  switch (e.state) {
    case BreakerState::closed:
      return {requested, false};
    case BreakerState::open:
      if (std::chrono::steady_clock::now() - e.opened_at >= cooldown_) {
        // Cooldown over: this job is the half-open probe.
        e.state = BreakerState::half_open;
        e.probe_in_flight = true;
        return {requested, false};
      }
      ++reroutes_;
      return {ExecutionBackend::sync_sim, true};
    case BreakerState::half_open:
      if (!e.probe_in_flight) {
        e.probe_in_flight = true;
        return {requested, false};
      }
      // One probe at a time; everyone else stays on the fallback.
      ++reroutes_;
      return {ExecutionBackend::sync_sim, true};
  }
  return {requested, false};
}

void CircuitBreaker::on_success(ExecutionBackend used) {
  if (!enabled() || !breakable(used)) return;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(used);
  // A success is proof of health whatever the state (the probe closing a
  // half-open breaker, or a straggler finishing after the trip).
  e.state = BreakerState::closed;
  e.consecutive_failures = 0;
  e.probe_in_flight = false;
}

void CircuitBreaker::on_failure(ExecutionBackend used) {
  if (!enabled() || !breakable(used)) return;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(used);
  e.probe_in_flight = false;
  if (e.state == BreakerState::half_open) {
    // The probe failed: back to open for another cooldown.
    e.state = BreakerState::open;
    e.opened_at = std::chrono::steady_clock::now();
    ++trips_;
    return;
  }
  ++e.consecutive_failures;
  if (e.state == BreakerState::closed &&
      e.consecutive_failures >= threshold_) {
    e.state = BreakerState::open;
    e.opened_at = std::chrono::steady_clock::now();
    ++trips_;
  }
}

BreakerState CircuitBreaker::state(ExecutionBackend b) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_[std::size_t(b)].state;
}

std::int64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

std::int64_t CircuitBreaker::reroutes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reroutes_;
}

}  // namespace fpga_stencil
