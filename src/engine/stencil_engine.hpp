// StencilEngine: one session object serving many stencil jobs.
//
// Before this subsystem every entry point was a free function that paid
// full setup per call -- validate the configuration, resolve the stage
// lag, build the blocking plan, allocate a scratch grid -- and callers
// wanting concurrency had to thread their own pool. The engine is the
// session API over the same executors:
//
//   StencilEngine engine;                         // owns a worker pool
//   JobHandle h = engine.submit(std::move(spec)); // bounded admission
//   JobResult& r = h.wait();                      // future-style
//
// Internally: an LRU PlanCache keyed by (tap-set fingerprint, config,
// grid extents) front-loads validation/planning/kernel-fingerprinting
// once per distinct spec; a BufferPool recycles scratch storage across
// jobs (zero allocation growth after warm-up); a router dispatches each
// job to the synchronous simulator, the concurrent dataflow pipeline,
// the resilient runner, or the multi-FPGA cluster behind one seam.
//
// Observability: the engine tallies <prefix>.jobs_{submitted,completed,
// failed,rejected}, <prefix>.plan_cache_{hit,miss}, a <prefix>.queue_depth
// gauge (plus high-water), and per-job latency histograms -- into the
// attached Telemetry when EngineOptions::telemetry is set, else into an
// engine-local registry that stats() snapshots either way. The prefix
// defaults to "engine"; engines sharing one registry (EngineCluster
// shards) each get their own so counters never collide. Per-job fault
// injectors pass straight through to the executors, preserving the
// fault-injection semantics of the underlying runtimes.
//
// Failure isolation: a job that throws (ConfigError, exhausted resilient
// attempts, ...) marks only its own handle failed; workers, cache, and
// pool keep serving subsequent jobs.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/class_queue.hpp"
#include "engine/circuit_breaker.hpp"
#include "engine/job.hpp"
#include "engine/plan_cache.hpp"
#include "telemetry/telemetry.hpp"

namespace fpga_stencil {

struct EngineOptions {
  /// Worker threads executing jobs (min 1).
  int workers = 4;
  /// Bounded admission queue: jobs accepted but not yet dispatched.
  std::size_t queue_capacity = 64;
  /// What submit() does when the queue is full.
  enum class Admission {
    block,   ///< wait for space (backpressure propagates to the caller)
    reject,  ///< throw EngineOverloadedError immediately
  };
  Admission admission = Admission::block;
  /// Distinct (taps, config, extents) plans kept hot.
  std::size_t plan_cache_capacity = 32;
  /// Idle scratch buffers retained for reuse.
  std::size_t pool_max_retained = 64;
  /// Engine-level observability hook; null uses an engine-local registry.
  /// Either way stats() reads the same counters. Must outlive the engine.
  Telemetry* telemetry = nullptr;
  /// Start with workers parked: submissions queue but nothing dispatches
  /// until resume(). Deterministic backpressure tests rely on this.
  bool start_paused = false;
  /// Consecutive backend failures that open that backend's circuit
  /// breaker (jobs reroute to sync_sim until a half-open probe succeeds);
  /// 0 disables the breaker. Cancellations, deadline expiries, and
  /// ConfigErrors never count (they say nothing about backend health).
  int breaker_threshold = 3;
  /// Open -> half-open cooldown before a probe job is admitted.
  std::chrono::milliseconds breaker_cooldown{250};
  /// Prefix for every metric/span this engine records ("<prefix>.jobs_
  /// submitted", ...). Give each engine sharing one MetricsRegistry a
  /// distinct prefix or their counters collide -- EngineCluster sets
  /// "engine.shard<k>" per shard; a standalone engine keeps "engine".
  std::string metrics_prefix = "engine";
  /// Weighted round-robin shares of the admission queue per QosClass
  /// (interactive, standard, batch). See common/class_queue.hpp.
  std::array<int, kQosClassCount> class_weights{8, 4, 1};
  /// Empirical autotuning of plan geometry (docs/TUNING.md). `off` keeps
  /// the requested geometry; `cached_only` adopts a TuningCache winner
  /// when present but never probes; `search` probes once per cached plan
  /// (in the submitting worker, outside the admission lock) and persists
  /// the winner. Resolution happens during plan-cache builds only --
  /// cache-hit submissions never pay anything.
  AutotuneMode autotune = AutotuneMode::off;
  /// TuningCache file for the engine-owned tuner: "auto" resolves
  /// $FPGASTENCIL_TUNING_CACHE (unset -> in-memory), "" forces in-memory,
  /// anything else is a literal path. Ignored when autotune == off.
  std::string tuning_cache_path = "auto";
  /// Probe-slab budget override for the engine-owned tuner; 0 keeps the
  /// HostAutotuner default (see HostAutotunerOptions::probe_cells).
  std::int64_t autotune_probe_cells = 0;
};

/// Engine lifecycle (docs/LIFECYCLE.md). `paused` is orthogonal: a paused
/// engine is still running (accepting submissions), just not dispatching.
///
///   running --drain()/shutdown()--> draining --(idle)--> stopped
///
/// draining and stopped both reject submit() with EngineStoppedError;
/// the transition is one-way (no restart -- construct a new engine).
enum class EngineState { running, draining, stopped };

[[nodiscard]] constexpr const char* engine_state_name(EngineState s) {
  switch (s) {
    case EngineState::running: return "running";
    case EngineState::draining: return "draining";
    case EngineState::stopped: return "stopped";
  }
  return "?";
}

/// Point-in-time engine counters (monotonic over the engine's lifetime).
struct EngineStats {
  std::int64_t jobs_submitted = 0;
  std::int64_t jobs_completed = 0;
  std::int64_t jobs_failed = 0;
  std::int64_t jobs_rejected = 0;
  std::int64_t jobs_cancelled = 0;
  std::int64_t deadline_exceeded = 0;
  std::int64_t breaker_trips = 0;
  std::int64_t breaker_reroutes = 0;
  std::int64_t plan_cache_hits = 0;
  std::int64_t plan_cache_misses = 0;
  std::int64_t pool_acquires = 0;
  std::int64_t pool_allocations = 0;
  std::int64_t pool_reuses = 0;
  std::int64_t queue_high_water = 0;
  /// Autotuner activity (all zero when EngineOptions::autotune == off).
  /// tuner_cache_hits counts jobs served by an already-tuned plan -- from
  /// the plan cache or the TuningCache -- so after warm-up every job
  /// lands here; tuner_cache_misses counts plan builds that had to probe.
  std::int64_t tuner_cache_hits = 0;
  std::int64_t tuner_cache_misses = 0;
  std::int64_t tuner_search_runs = 0;
  std::int64_t tuner_search_candidates = 0;
  std::int64_t tuner_search_ns = 0;

  [[nodiscard]] double cache_hit_rate() const {
    const std::int64_t lookups = plan_cache_hits + plan_cache_misses;
    return lookups > 0 ? double(plan_cache_hits) / double(lookups) : 0.0;
  }
};

class StencilEngine {
 public:
  explicit StencilEngine(EngineOptions options = {});

  /// Finishes every accepted job (resuming paused workers), then joins
  /// the pool. Jobs already submitted are never dropped. Equivalent to
  /// drain() when the engine is still running.
  ~StencilEngine();

  StencilEngine(const StencilEngine&) = delete;
  StencilEngine& operator=(const StencilEngine&) = delete;

  /// Queues one job through the shared validated path (validate_job_spec;
  /// cheap spec errors throw ConfigError here, plan validation errors
  /// surface through the handle). The job is scheduled by its QosClass
  /// weight and priority. A full queue blocks or throws
  /// EngineOverloadedError per EngineOptions::admission.
  JobHandle submit(JobSpec spec);

  /// Synchronous convenience: submit + wait. Rethrows the job's error.
  JobResult run(JobSpec spec);

  /// Parks the workers after their current job; queued jobs stay queued.
  void pause();
  /// Unparks the workers.
  void resume();

  /// Blocks until no job is queued or running. Workers must not be
  /// paused (a paused engine never drains).
  void wait_idle();

  /// Graceful stop: rejects new submissions (EngineStoppedError), unparks
  /// the workers, and blocks until every accepted job reaches a terminal
  /// state. Idempotent; the engine ends in EngineState::stopped.
  void drain();

  /// drain() with a patience bound: waits up to `deadline` for accepted
  /// jobs to finish on their own, then requests cancellation on every job
  /// still queued or running and waits for the cooperative unwind (bounded
  /// by one block's streaming time per running job). Returns true when the
  /// engine drained gracefully, false when it had to cancel stragglers.
  bool shutdown(std::chrono::milliseconds deadline);

  [[nodiscard]] EngineState state() const;
  /// Breaker state for one backend (BreakerState::closed for unbreakable
  /// backends or when the breaker is disabled).
  [[nodiscard]] BreakerState breaker_state(Backend b) const {
    return breaker_.state(b);
  }

  /// Drops cached plans and pooled buffers (cold-start benchmarking).
  void clear_caches();

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] const PlanCache& plan_cache() const { return plans_; }
  [[nodiscard]] const BufferPool& buffer_pool() const { return pool_; }
  /// The engine-owned autotuner, or null when autotune == off.
  [[nodiscard]] HostAutotuner* autotuner() { return tuner_.get(); }
  /// The registry/tracer the engine records into (attached or local).
  [[nodiscard]] Telemetry& telemetry() { return *telemetry_; }
  [[nodiscard]] const EngineOptions& options() const { return options_; }

 private:
  friend class EngineCluster;

  /// The admission seam shared with EngineCluster: the spec is already
  /// materialized (token armed) so a shard that turned out to be stopped
  /// throws EngineStoppedError *without consuming the state* and the
  /// cluster re-routes the same job to another shard -- drain loses
  /// nothing. submit() is make_job_state + admit.
  static std::shared_ptr<detail::JobState> make_job_state(JobSpec spec);
  JobHandle admit(std::shared_ptr<detail::JobState> state);

  void worker_loop(int worker_id);
  void execute(detail::JobState& job, int worker_id);
  void finish(detail::JobState& job, JobResult result);
  void fail(detail::JobState& job, std::exception_ptr error);
  /// Finalizes a cancelled / deadline-exceeded job: stores the error,
  /// bumps the counters, observes cancel latency (trip -> terminal).
  void finish_cancelled(detail::JobState& job, bool deadline);
  /// Runs the spec's on_terminal hook (exactly once per job, after the
  /// terminal state is recorded).
  void notify_terminal(detail::JobState& job);
  /// Streams the finished grid through spec.sink in contiguous bands.
  static void deliver_chunks(const JobSpec& spec, JobResult& result);
  void begin_drain();
  void export_breaker_gauges();
  /// "<metrics_prefix>.<suffix>".
  [[nodiscard]] std::string m(const char* suffix) const;

  EngineOptions options_;
  Telemetry own_telemetry_;
  Telemetry* telemetry_;  ///< options_.telemetry or &own_telemetry_

  PlanCache plans_;
  BufferPool pool_;
  CircuitBreaker breaker_;
  /// Created in the constructor when options_.autotune != off; shared by
  /// every worker (HostAutotuner is thread-safe). Never touched on the
  /// plan-cache-hit path.
  std::unique_ptr<HostAutotuner> tuner_;

  mutable std::mutex mu_;
  std::condition_variable dispatch_cv_;  ///< workers: work available / stop
  std::condition_variable space_cv_;     ///< submitters: queue has room
  std::condition_variable idle_cv_;      ///< wait_idle: drained
  /// QoS-aware admission queue: weighted round-robin across classes,
  /// priority-then-FIFO within one (common/class_queue.hpp).
  WeightedClassQueue<std::shared_ptr<detail::JobState>> queue_;
  /// Jobs currently executing; shutdown() cancels through these.
  std::vector<std::shared_ptr<detail::JobState>> running_;
  int active_ = 0;  ///< jobs currently executing (== running_.size())
  bool paused_ = false;
  EngineState state_ = EngineState::running;
  bool stopping_ = false;  ///< destructor: workers exit when queue empty
  std::int64_t queue_high_water_ = 0;
  std::int64_t dispatch_seq_ = 0;  ///< next JobResult::dispatch_seq

  std::vector<std::thread> workers_;
};

}  // namespace fpga_stencil
