// StencilEngine: one session object serving many stencil jobs.
//
// Before this subsystem every entry point was a free function that paid
// full setup per call -- validate the configuration, resolve the stage
// lag, build the blocking plan, allocate a scratch grid -- and callers
// wanting concurrency had to thread their own pool. The engine is the
// session API over the same executors:
//
//   StencilEngine engine;                         // owns a worker pool
//   JobHandle h = engine.submit(std::move(spec)); // bounded admission
//   JobResult& r = h.wait();                      // future-style
//
// Internally: an LRU PlanCache keyed by (tap-set fingerprint, config,
// grid extents) front-loads validation/planning/kernel-fingerprinting
// once per distinct spec; a BufferPool recycles scratch storage across
// jobs (zero allocation growth after warm-up); a router dispatches each
// job to the synchronous simulator, the concurrent dataflow pipeline,
// the resilient runner, or the multi-FPGA cluster behind one seam.
//
// Observability: the engine tallies engine.jobs_{submitted,completed,
// failed,rejected}, engine.plan_cache_{hit,miss}, an engine.queue_depth
// gauge (plus high-water), and per-job latency histograms -- into the
// attached Telemetry when EngineOptions::telemetry is set, else into an
// engine-local registry that stats() snapshots either way. Per-job fault
// injectors pass straight through to the executors, preserving the
// fault-injection semantics of the underlying runtimes.
//
// Failure isolation: a job that throws (ConfigError, exhausted resilient
// attempts, ...) marks only its own handle failed; workers, cache, and
// pool keep serving subsequent jobs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/buffer_pool.hpp"
#include "engine/job.hpp"
#include "engine/plan_cache.hpp"
#include "telemetry/telemetry.hpp"

namespace fpga_stencil {

struct EngineOptions {
  /// Worker threads executing jobs (min 1).
  int workers = 4;
  /// Bounded admission queue: jobs accepted but not yet dispatched.
  std::size_t queue_capacity = 64;
  /// What submit() does when the queue is full.
  enum class Admission {
    block,   ///< wait for space (backpressure propagates to the caller)
    reject,  ///< throw EngineOverloadedError immediately
  };
  Admission admission = Admission::block;
  /// Distinct (taps, config, extents) plans kept hot.
  std::size_t plan_cache_capacity = 32;
  /// Idle scratch buffers retained for reuse.
  std::size_t pool_max_retained = 64;
  /// Engine-level observability hook; null uses an engine-local registry.
  /// Either way stats() reads the same counters. Must outlive the engine.
  Telemetry* telemetry = nullptr;
  /// Start with workers parked: submissions queue but nothing dispatches
  /// until resume(). Deterministic backpressure tests rely on this.
  bool start_paused = false;
};

/// Point-in-time engine counters (monotonic over the engine's lifetime).
struct EngineStats {
  std::int64_t jobs_submitted = 0;
  std::int64_t jobs_completed = 0;
  std::int64_t jobs_failed = 0;
  std::int64_t jobs_rejected = 0;
  std::int64_t plan_cache_hits = 0;
  std::int64_t plan_cache_misses = 0;
  std::int64_t pool_acquires = 0;
  std::int64_t pool_allocations = 0;
  std::int64_t pool_reuses = 0;
  std::int64_t queue_high_water = 0;

  [[nodiscard]] double cache_hit_rate() const {
    const std::int64_t lookups = plan_cache_hits + plan_cache_misses;
    return lookups > 0 ? double(plan_cache_hits) / double(lookups) : 0.0;
  }
};

class StencilEngine {
 public:
  explicit StencilEngine(EngineOptions options = {});

  /// Finishes every accepted job (resuming paused workers), then joins
  /// the pool. Jobs already submitted are never dropped.
  ~StencilEngine();

  StencilEngine(const StencilEngine&) = delete;
  StencilEngine& operator=(const StencilEngine&) = delete;

  /// Queues one job. Cheap spec errors (dims/grid mismatch, negative
  /// iterations) throw ConfigError here; plan validation errors surface
  /// through the handle. A full queue blocks or throws
  /// EngineOverloadedError per EngineOptions::admission.
  JobHandle submit(JobSpec spec);

  /// submit() for each spec, in order; same admission semantics per job.
  std::vector<JobHandle> submit_batch(std::vector<JobSpec> specs);

  /// Synchronous convenience: submit + wait. Rethrows the job's error.
  JobResult run(JobSpec spec);

  /// Parks the workers after their current job; queued jobs stay queued.
  void pause();
  /// Unparks the workers.
  void resume();

  /// Blocks until no job is queued or running. Workers must not be
  /// paused (a paused engine never drains).
  void wait_idle();

  /// Drops cached plans and pooled buffers (cold-start benchmarking).
  void clear_caches();

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] const PlanCache& plan_cache() const { return plans_; }
  [[nodiscard]] const BufferPool& buffer_pool() const { return pool_; }
  /// The registry/tracer the engine records into (attached or local).
  [[nodiscard]] Telemetry& telemetry() { return *telemetry_; }
  [[nodiscard]] const EngineOptions& options() const { return options_; }

 private:
  void worker_loop(int worker_id);
  void execute(detail::JobState& job, int worker_id);
  void finish(detail::JobState& job, JobResult result);
  void fail(detail::JobState& job, std::exception_ptr error);

  EngineOptions options_;
  Telemetry own_telemetry_;
  Telemetry* telemetry_;  ///< options_.telemetry or &own_telemetry_

  PlanCache plans_;
  BufferPool pool_;

  mutable std::mutex mu_;
  std::condition_variable dispatch_cv_;  ///< workers: work available / stop
  std::condition_variable space_cv_;     ///< submitters: queue has room
  std::condition_variable idle_cv_;      ///< wait_idle: drained
  std::deque<std::shared_ptr<detail::JobState>> queue_;
  int active_ = 0;  ///< jobs currently executing
  bool paused_ = false;
  bool stopping_ = false;
  std::int64_t queue_high_water_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace fpga_stencil
