// Consistent-hash ring over engine shards, keyed by plan fingerprint.
//
// The serving tier wants two properties from its router (docs/SERVING.md):
//
//   1. *Affinity*: all jobs sharing a plan land on the same shard, so that
//      shard's PlanCache holds the plan hot and its BufferPool retains
//      right-sized scratch. Hashing the plan fingerprint gives this.
//   2. *Minimal disruption*: draining one shard must remap only the keys
//      that shard owned -- every other key keeps its shard (and its warm
//      caches). A consistent-hash ring gives this; a simple `key % N`
//      would reshuffle nearly everything.
//
// Each shard owns `vnodes_per_shard` pseudo-random points on a 64-bit
// ring; a key routes to the first point clockwise from its hash whose
// shard is available. The ring itself is immutable after construction --
// drain/reload only toggles availability -- so lookups are a binary
// search plus a short clockwise walk.
//
// Thread-safe: availability flips under a mutex that lookups also take
// (routing is a few hundred ns against jobs that run for microseconds+).
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace fpga_stencil {

/// Thrown by route() when every shard is unavailable (cluster drained).
class NoShardAvailableError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ShardRouter {
 public:
  /// `shards` >= 1 ring members, all initially available. More vnodes
  /// smooth the key distribution at the cost of a larger ring.
  explicit ShardRouter(int shards, int vnodes_per_shard = 64);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// The shard owning `key`: first available ring point clockwise from
  /// hash(key). Deterministic for a fixed availability set. Throws
  /// NoShardAvailableError when no shard is available.
  [[nodiscard]] int route(std::uint64_t key) const;

  /// Marks a shard (un)available; unavailable shards are skipped by the
  /// clockwise walk, which is exactly the "remap only the drained
  /// shard's keys" property.
  void set_available(int shard, bool available);

  [[nodiscard]] bool available(int shard) const;
  [[nodiscard]] int available_count() const;
  [[nodiscard]] int shards() const { return shards_; }

 private:
  struct Point {
    std::uint64_t hash;
    int shard;
  };

  const int shards_;
  std::vector<Point> ring_;  ///< sorted by hash, immutable after build
  mutable std::mutex mu_;
  std::vector<bool> available_;
};

}  // namespace fpga_stencil
