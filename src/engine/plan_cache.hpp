// LRU cache of validated execution plans.
//
// On a real system every distinct (stencil, knob set) pair is a separate
// `aoc` bitstream, and even re-validating a configuration and rebuilding
// its BlockingPlan per job is wasted work under a job stream that reuses a
// handful of specs. The cache front-loads that cost once per distinct
// (taps, config, grid extents) key: stage-lag resolution + validation
// (resolve_stage_lag), the blocking plan, and the generated kernel source's
// fingerprint -- the stand-in for "which bitstream would this job need".
//
// Keys fingerprint the tap set by *value* (offsets + coefficient bits), so
// two TapSet objects with identical taps share a plan while a changed
// coefficient misses. Values are shared_ptr<const CachedPlan>: eviction
// never invalidates a plan a running job still holds.
//
// Thread-safe; tests cover eviction order and key sensitivity directly
// (tests/plan_cache_test.cpp).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>

#include "core/run_options.hpp"
#include "stencil/accel_config.hpp"
#include "stencil/tap_set.hpp"

namespace fpga_stencil {

struct SpecializedKernel;  // kernels/kernel_registry.hpp; pointer-only here
class CancellationToken;   // common/cancellation.hpp; pointer-only here

/// FNV-1a over the tap set's value identity: dims, radius, and each tap's
/// offsets and coefficient bit pattern (accumulation order included --
/// reordered taps are a different stencil bit-wise).
[[nodiscard]] std::uint64_t tap_set_fingerprint(const TapSet& taps);

/// A validated, ready-to-dispatch plan for one (stencil, config, grid).
struct CachedPlan {
  AcceleratorConfig config;  ///< stage lag resolved, validated against taps
  BlockingPlan blocking;     ///< decomposition for the keyed extents
  std::uint64_t kernel_fingerprint = 0;  ///< FNV-1a of the generated source
  std::int64_t kernel_source_bytes = 0;  ///< size of that source

  /// Resolved KernelRegistry handle: the specialized kernel stream_block
  /// will dispatch this plan's blocks to, or null when the configuration
  /// is off-envelope (or opted out) and runs on the scalar interpreter.
  /// Points into the process-lifetime registry, so sharing the plan
  /// across jobs and threads is safe.
  const SpecializedKernel* specialized_kernel = nullptr;

  /// Autotuning provenance (zeroed when the plan was built with
  /// AutotuneMode::off or the tuner declined). `tuned` means `config`'s
  /// geometry came from the HostAutotuner; like specialized_kernel it is
  /// resolved once per plan, never on the job hot path.
  bool tuned = false;
  bool tuned_from_cache = false;  ///< TuningCache hit (no probes ran)
  double tuned_mcells = 0.0;
  double tuned_baseline_mcells = 0.0;
  std::int64_t tuner_candidates_probed = 0;
  std::int64_t tuner_search_ns = 0;
};

/// Autotuning request threaded through lookup_or_build. With a null tuner
/// or mode == off the build keeps the requested geometry. Otherwise the
/// *build path* (outside the cache lock -- probing under the admission
/// lock is forbidden) asks the tuner to resolve the plan's geometry, so a
/// probe search runs at most once per cached plan and runs in the
/// submitting worker, honoring that job's cancellation/deadline token.
struct PlanAutotune {
  AutotuneMode mode = AutotuneMode::off;
  HostAutotuner* tuner = nullptr;            ///< null -> no tuning
  const CancellationToken* cancel = nullptr;  ///< honored during probes
};

class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 32);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The plan for (taps, cfg, extents), building and inserting it on a
  /// miss (evicting the least recently used entry at capacity). `hit`,
  /// when non-null, reports whether the entry already existed. Building
  /// throws ConfigError for invalid configurations -- nothing is cached
  /// for a key that fails validation; a cancelled autotune search
  /// propagates (CancelledError/DeadlineExceededError) and caches
  /// nothing. Pass nz == 1 for 2D grids.
  [[nodiscard]] std::shared_ptr<const CachedPlan> lookup_or_build(
      const TapSet& taps, const AcceleratorConfig& cfg, std::int64_t nx,
      std::int64_t ny, std::int64_t nz = 1, bool* hit = nullptr,
      const PlanAutotune& autotune = {});

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::int64_t hits() const;
  [[nodiscard]] std::int64_t misses() const;
  [[nodiscard]] std::int64_t evictions() const;

  /// Drops every entry (counters are kept).
  void clear();

 private:
  struct Key {
    std::uint64_t taps_fp = 0;
    int dims = 0, radius = 0, parvec = 0, partime = 0, stage_lag = 0;
    std::int64_t bsize_x = 0, bsize_y = 0;
    std::int64_t nx = 0, ny = 0, nz = 1;
    // Part of the key (unlike telemetry): it changes which code executes
    // the plan's blocks, and the cached specialized_kernel must agree.
    bool use_specialized_kernels = true;
    // Also part of the key: an untuned plan built under `off` must not be
    // served to a `search` submission for the same spec (and vice versa).
    int autotune_mode = 0;
    bool operator==(const Key&) const = default;
  };
  struct Entry {
    Key key;
    std::shared_ptr<const CachedPlan> plan;
  };

  static Key make_key(const TapSet& taps, const AcceleratorConfig& cfg,
                      std::int64_t nx, std::int64_t ny, std::int64_t nz,
                      AutotuneMode mode);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> entries_;  ///< front = most recently used
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace fpga_stencil
