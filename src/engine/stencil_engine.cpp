#include "engine/stencil_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/expect.hpp"
#include "common/stopwatch.hpp"
#include "core/block_parallel_accelerator.hpp"
#include "core/concurrent_accelerator.hpp"
#include "program/program_executor.hpp"
#include "tune/host_autotuner.hpp"

namespace fpga_stencil {
namespace {

/// Cells in whichever grid the variant holds.
std::int64_t grid_cells(const GridVariant& g) {
  return std::visit([](const auto& grid) { return std::int64_t(grid.size()); },
                    g);
}

/// Cancel-latency buckets: trip -> terminal is bounded by one block's
/// streaming time, so the interesting range is microseconds to tens of
/// milliseconds -- much finer than the decade-per-bucket job latencies.
std::vector<std::int64_t> cancel_latency_bounds_ns() {
  return {1'000,      10'000,      50'000,      100'000,      500'000,
          1'000'000,  5'000'000,   10'000'000,  50'000'000,   100'000'000,
          500'000'000, 1'000'000'000, 10'000'000'000};
}

/// Streams one grid through spec.sink in contiguous bands -- whole rows
/// (2D) or whole z-planes (3D), both contiguous in the row-major layouts,
/// so each chunk is one pointer + length into the grid with no staging
/// copies. `chunk` carries the field identity and the running ordinal
/// across calls; `final_grid` marks the stream's overall last band.
void stream_grid_bands(const GridVariant& grid, const JobSpec& spec,
                       ResultChunk& chunk, bool final_grid) {
  std::int64_t stride = 0, total = 0;
  const float* base = nullptr;
  if (grid.index() == 0) {
    const Grid2D<float>& g = std::get<Grid2D<float>>(grid);
    chunk.dims = 2;
    chunk.nx = g.nx();
    chunk.ny = g.ny();
    chunk.nz = 1;
    stride = g.nx();
    total = g.ny();
    base = g.data();
  } else {
    const Grid3D<float>& g = std::get<Grid3D<float>>(grid);
    chunk.dims = 3;
    chunk.nx = g.nx();
    chunk.ny = g.ny();
    chunk.nz = g.nz();
    stride = g.nx() * g.ny();
    total = g.nz();
    base = g.data();
  }
  const std::int64_t per_chunk =
      std::max<std::int64_t>(1, spec.chunk_values / std::max<std::int64_t>(
                                                        stride, 1));
  for (std::int64_t start = 0; start < total; start += per_chunk) {
    chunk.start = start;
    chunk.count = std::min(per_chunk, total - start);
    chunk.data = base + start * stride;
    chunk.values = std::size_t(chunk.count * stride);
    chunk.last = final_grid && start + chunk.count >= total;
    spec.sink(chunk);
    ++chunk.index;
  }
}

/// Program-job delivery: every non-work field streams in declaration
/// order as its own chunk run (ResultChunk::field names it); the ordinal
/// stays continuous across fields and `last` marks the final band of the
/// final deliverable field.
void deliver_program_chunks(const JobSpec& spec, JobResult& result) {
  const ProgramSpec& program = *spec.program;
  std::size_t last_deliverable = program.fields.size();
  for (std::size_t i = 0; i < program.fields.size(); ++i) {
    if (!program.fields[i].work) last_deliverable = i;
  }
  ResultChunk chunk;
  for (std::size_t i = 0; i < result.fields.size(); ++i) {
    if (program.fields[i].work) continue;
    chunk.field = result.fields[i].first;
    stream_grid_bands(result.fields[i].second, spec, chunk,
                      i == last_deliverable);
  }
  result.chunks_delivered = chunk.index;
  if (spec.sink_only) {
    // The stream was the delivery; free the server-side field copies now.
    result.fields.clear();
  }
}

}  // namespace

StencilEngine::StencilEngine(EngineOptions options)
    : options_(std::move(options)),
      telemetry_(options_.telemetry ? options_.telemetry : &own_telemetry_),
      plans_(options_.plan_cache_capacity),
      pool_(options_.pool_max_retained),
      breaker_(options_.breaker_threshold, options_.breaker_cooldown),
      queue_(std::vector<int>(options_.class_weights.begin(),
                              options_.class_weights.end())),
      paused_(options_.start_paused) {
  if (options_.metrics_prefix.empty()) options_.metrics_prefix = "engine";
  if (options_.autotune != AutotuneMode::off) {
    HostAutotunerOptions topts;
    topts.cache_path = options_.tuning_cache_path;
    topts.probe_cells = options_.autotune_probe_cells;
    tuner_ = std::make_unique<HostAutotuner>(std::move(topts));
  }
  const int workers = std::max(1, options_.workers);
  workers_.reserve(std::size_t(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

StencilEngine::~StencilEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == EngineState::running) state_ = EngineState::draining;
    stopping_ = true;
    paused_ = false;  // a parked pool must still drain accepted jobs
  }
  dispatch_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    state_ = EngineState::stopped;
  }
}

std::string StencilEngine::m(const char* suffix) const {
  return options_.metrics_prefix + "." + suffix;
}

std::shared_ptr<detail::JobState> StencilEngine::make_job_state(JobSpec spec) {
  // Cheap shape checks fail fast at the call site; full plan validation
  // happens in the worker and surfaces through the handle.
  validate_job_spec(spec);
  auto state = std::make_shared<detail::JobState>(std::move(spec));
  // The token is born at submit so a per-job deadline covers queue time:
  // a job that never leaves the queue in time still expires.
  state->token = state->spec.deadline.count() > 0
                     ? CancellationToken::with_timeout(state->spec.deadline)
                     : CancellationToken::make();
  return state;
}

JobHandle StencilEngine::admit(std::shared_ptr<detail::JobState> state) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (options_.admission == EngineOptions::Admission::reject) {
      if (queue_.size() >= options_.queue_capacity &&
          state_ == EngineState::running) {
        telemetry_->metrics().counter(m("jobs_rejected")).add(1);
        throw EngineOverloadedError(
            "engine admission queue is full (" +
            std::to_string(options_.queue_capacity) + " jobs)");
      }
    } else {
      space_cv_.wait(lock, [&] {
        return queue_.size() < options_.queue_capacity ||
               state_ != EngineState::running;
      });
    }
    if (state_ != EngineState::running) {
      telemetry_->metrics().counter(m("jobs_rejected")).add(1);
      throw EngineStoppedError(std::string("engine is ") +
                               engine_state_name(state_) +
                               "; submissions are closed");
    }
    state->enqueue_time = std::chrono::steady_clock::now();
    queue_.push(std::size_t(state->spec.qos), state->spec.priority, state);
    queue_high_water_ =
        std::max(queue_high_water_, std::int64_t(queue_.size()));
    telemetry_->metrics().counter(m("jobs_submitted")).add(1);
    telemetry_->metrics().gauge(m("queue_depth"))
        .set(std::int64_t(queue_.size()));
  }
  dispatch_cv_.notify_one();
  return JobHandle(std::move(state));
}

JobHandle StencilEngine::submit(JobSpec spec) {
  return admit(make_job_state(std::move(spec)));
}

JobResult StencilEngine::run(JobSpec spec) {
  JobHandle handle = submit(std::move(spec));
  return std::move(handle.wait());
}

void StencilEngine::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void StencilEngine::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  dispatch_cv_.notify_all();
}

void StencilEngine::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

void StencilEngine::begin_drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == EngineState::running) state_ = EngineState::draining;
    paused_ = false;  // a parked pool must still drain accepted jobs
  }
  dispatch_cv_.notify_all();
  space_cv_.notify_all();  // blocked submitters wake and see the state
}

void StencilEngine::drain() {
  begin_drain();
  wait_idle();
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == EngineState::draining) state_ = EngineState::stopped;
}

bool StencilEngine::shutdown(std::chrono::milliseconds deadline) {
  begin_drain();
  bool graceful = true;
  {
    std::unique_lock<std::mutex> lock(mu_);
    graceful = idle_cv_.wait_for(
        lock, deadline, [&] { return queue_.empty() && active_ == 0; });
    if (!graceful) {
      // Patience exhausted: cancel everything still in flight. Queued
      // jobs finalize as cancelled at dispatch; running jobs unwind
      // cooperatively at block granularity.
      queue_.for_each([](std::shared_ptr<detail::JobState>& job) {
        job->token.request_cancel();
      });
      for (const auto& job : running_) job->token.request_cancel();
    }
  }
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == EngineState::draining) state_ = EngineState::stopped;
  }
  return graceful;
}

EngineState StencilEngine::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

void StencilEngine::clear_caches() {
  plans_.clear();
  pool_.clear();
}

EngineStats StencilEngine::stats() const {
  EngineStats s;
  const MetricsSnapshot snap = telemetry_->metrics().snapshot();
  s.jobs_submitted = snap.value_or(m("jobs_submitted"), 0);
  s.jobs_completed = snap.value_or(m("jobs_completed"), 0);
  s.jobs_failed = snap.value_or(m("jobs_failed"), 0);
  s.jobs_rejected = snap.value_or(m("jobs_rejected"), 0);
  s.plan_cache_hits = plans_.hits();
  s.plan_cache_misses = plans_.misses();
  s.jobs_cancelled = snap.value_or(m("jobs_cancelled"), 0);
  s.deadline_exceeded = snap.value_or(m("deadline_exceeded"), 0);
  s.breaker_trips = breaker_.trips();
  s.breaker_reroutes = breaker_.reroutes();
  s.pool_acquires = pool_.acquires();
  s.pool_allocations = pool_.allocations();
  s.pool_reuses = pool_.reuses();
  s.tuner_cache_hits = snap.value_or(m("tuner.cache_hit"), 0);
  s.tuner_cache_misses = snap.value_or(m("tuner.cache_miss"), 0);
  s.tuner_search_runs = snap.value_or(m("tuner.search_runs"), 0);
  s.tuner_search_candidates = snap.value_or(m("tuner.search_candidates"), 0);
  s.tuner_search_ns = snap.value_or(m("tuner.search_ns"), 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.queue_high_water = queue_high_water_;
  }
  return s;
}

void StencilEngine::worker_loop(int worker_id) {
  for (;;) {
    std::shared_ptr<detail::JobState> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      dispatch_cv_.wait(lock,
                        [&] { return stopping_ || (!paused_ && !queue_.empty()); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;  // woken by pause()/resume() races; re-wait
      }
      job = queue_.pop();
      job->dispatch_seq = dispatch_seq_++;
      ++active_;
      running_.push_back(job);
      telemetry_->metrics().gauge(m("queue_depth"))
          .set(std::int64_t(queue_.size()));
    }
    space_cv_.notify_one();

    // A job whose token tripped while queued (cancel() on a queued
    // handle, deadline expiring in the queue, forced shutdown) never
    // starts executing: finalize it straight from the queue.
    if (job->token.cancel_requested()) {
      finish_cancelled(*job, job->token.cause() == CancelCause::deadline);
    } else {
      {
        std::lock_guard<std::mutex> job_lock(job->mu);
        job->status = JobStatus::running;
      }
      execute(*job, worker_id);
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      running_.erase(std::find(running_.begin(), running_.end(), job));
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void StencilEngine::execute(detail::JobState& job, int worker_id) {
  JobSpec& spec = job.spec;
  const std::int64_t queue_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - job.enqueue_time)
          .count();
  const auto span = telemetry_->tracer().span(
      m("job") + (spec.label.empty() ? "" : ":" + spec.label), worker_id,
      options_.metrics_prefix);
  const Stopwatch run_clock;
  Backend backend_used = Backend::automatic;  // set once routing resolves
  try {
    // One executor per job: the shared node runner over this engine's
    // plan cache, pool, tuner and telemetry (src/program). Single-stencil
    // jobs and program nodes resolve plans (with identical cache/tuner
    // accounting) and run the single-board backends through this seam, so
    // a single-stencil job really is the one-node-program special case.
    ProgramExecutor::Services services;
    services.plans = &plans_;
    services.pool = &pool_;
    services.tuner = tuner_.get();
    services.autotune = options_.autotune;
    services.telemetry = telemetry_;
    services.metrics_prefix = options_.metrics_prefix;
    services.backend = spec.backend;
    services.workers = spec.workers;
    ProgramExecutor exec(std::move(services));

    if (spec.program) {
      // Program job: the whole DAG advances as one QoS unit on this
      // worker. The breaker stays out of the loop (per-node routing is
      // the executor's, and ConfigErrors say nothing about backends).
      ProgramOutcome outcome = exec.run(*spec.program, &job.token, worker_id);
      JobResult result;
      result.backend = spec.backend;  // per-node routing may differ
      result.plan_cache_hit = outcome.all_plans_cached;
      result.plan_tuned = outcome.any_plan_tuned;
      result.kernel_fingerprint = outcome.fingerprint;
      result.label = spec.label;
      result.tenant = spec.tenant;
      result.qos = spec.qos;
      result.dispatch_seq = job.dispatch_seq;
      result.queue_ns = queue_ns;
      result.stats = outcome.stats;
      result.fields = std::move(outcome.fields);
      result.program_nodes_executed = outcome.nodes_executed;
      result.program_steps = outcome.steps_executed;
      if (spec.sink) deliver_program_chunks(spec, result);
      result.run_ns = run_clock.nanoseconds();
      record_job_metrics(*telemetry_, options_.metrics_prefix, queue_ns,
                         result.run_ns, result.stats.cells_written);
      telemetry_->metrics().counter(m("jobs_completed")).add(1);
      finish(job, std::move(result));
      return;
    }

    const std::int64_t nx =
        std::visit([](const auto& g) { return g.nx(); }, spec.grid);
    const std::int64_t ny =
        std::visit([](const auto& g) { return g.ny(); }, spec.grid);
    const std::int64_t nz =
        spec.is_3d() ? std::get<Grid3D<float>>(spec.grid).nz() : 1;

    bool hit = false;
    const std::shared_ptr<const CachedPlan> plan = exec.resolve_plan(
        spec.taps, spec.config, nx, ny, nz, &job.token, &hit);

    // Routing. An automatic job with an injector goes to the resilient
    // runner, never the bare concurrent pipeline: an injected stall
    // without a watchdog would deadlock the pass. A fault-free
    // single-board job fans out over overlapped blocks when the cached
    // plan yields enough block-level work to keep every worker busy
    // (>= 2 blocks per worker); smaller jobs stay on the sync simulator,
    // whose single sweep beats spawning a starved pool.
    Backend backend = spec.backend;
    if (backend == Backend::automatic) {
      if (spec.boards > 1) {
        backend = Backend::cluster;
      } else if (spec.injector != nullptr) {
        backend = Backend::resilient;
      } else {
        backend = exec.route(*plan);
      }
    }

    // The circuit breaker gets the last word: a backend with an open
    // breaker hands its jobs to the sync_sim fallback until a half-open
    // probe proves it healthy again.
    const CircuitBreaker::Decision routed = breaker_.route(backend);
    backend = routed.backend;
    backend_used = backend;
    if (routed.rerouted) {
      telemetry_->metrics().counter(m("breaker_rerouted")).add(1);
      telemetry_->tracer().instant(m("breaker_reroute"), worker_id,
                                   options_.metrics_prefix);
    }

    // The cached config is hook-free; restore this job's telemetry hook.
    AcceleratorConfig cfg = plan->config;
    cfg.telemetry = spec.config.telemetry;

    JobResult result;
    result.backend = backend;
    result.rerouted = routed.rerouted;
    result.plan_cache_hit = hit;
    result.plan_tuned = plan->tuned;
    result.kernel_fingerprint = plan->kernel_fingerprint;
    result.label = spec.label;
    result.tenant = spec.tenant;
    result.qos = spec.qos;
    result.dispatch_seq = job.dispatch_seq;
    result.queue_ns = queue_ns;

    const std::int64_t cells = grid_cells(spec.grid);
    std::visit(
        [&](auto& grid) {
          switch (backend) {
            case Backend::automatic:  // resolved above; unreachable
            case Backend::sync_sim:
            case Backend::block_parallel: {
              // The shared single-board arms (src/program): identical to
              // what every program node runs through.
              NodeRunOptions nopts;
              nopts.injector = spec.injector;
              nopts.watchdog_deadline = spec.watchdog_deadline;
              result.stats =
                  exec.run_planned(spec.taps, cfg, backend, grid,
                                   spec.iterations, &job.token, nopts);
              break;
            }
            case Backend::concurrent: {
              BufferPool::Lease lease(pool_, std::size_t(cells));
              RunOptions ropts;
              ropts.channel_depth = spec.channel_depth;
              ropts.injector = spec.injector;
              ropts.watchdog_deadline = spec.watchdog_deadline;
              ropts.scratch = &lease.buffer();
              ropts.cancel = job.token;
              result.stats =
                  run_concurrent(spec.taps, cfg, grid, spec.iterations, ropts);
              break;
            }
            case Backend::resilient: {
              BufferPool::Lease lease(pool_, std::size_t(cells));
              ResilienceOptions ropts = spec.resilience;
              ropts.base.channel_depth = spec.channel_depth;
              if (spec.injector) ropts.base.injector = spec.injector;
              if (spec.watchdog_deadline.count() > 0) {
                ropts.base.watchdog_deadline = spec.watchdog_deadline;
              }
              ropts.base.scratch = &lease.buffer();
              ropts.base.cancel = job.token;
              result.stats =
                  run_resilient(spec.taps, cfg, grid, spec.iterations, ropts);
              break;
            }
            case Backend::cluster: {
              // The cluster is a timing model (no block loop to poll);
              // honor a pre-run trip, then run to completion.
              job.token.throw_if_cancelled();
              const DeviceSpec device =
                  spec.device.name.empty() ? arria10_gx1150() : spec.device;
              MultiFpgaCluster cluster(spec.boards, spec.taps, cfg, device,
                                       spec.link);
              result.cluster = cluster.run(grid, spec.iterations);
              // The cluster reports modeled timing, not streaming counts;
              // synthesize the valid-cell work for the job metrics.
              result.stats.passes = result.cluster.passes;
              result.stats.time_steps = spec.iterations;
              result.stats.cells_written = cells * spec.iterations;
              break;
            }
          }
        },
        spec.grid);

    result.grid = std::move(spec.grid);
    if (spec.sink) deliver_chunks(spec, result);
    result.run_ns = run_clock.nanoseconds();
    record_job_metrics(*telemetry_, options_.metrics_prefix, queue_ns,
                       result.run_ns, result.stats.cells_written);
    telemetry_->metrics().counter(m("jobs_completed")).add(1);
    breaker_.on_success(backend_used);
    export_breaker_gauges();
    finish(job, std::move(result));
  } catch (const DeadlineExceededError&) {
    finish_cancelled(job, /*deadline=*/true);
  } catch (const CancelledError&) {
    finish_cancelled(job, /*deadline=*/false);
  } catch (const ConfigError&) {
    // A bad spec is the caller's fault, not the backend's: fail the job
    // without charging the breaker.
    telemetry_->metrics().counter(m("jobs_failed")).add(1);
    telemetry_->tracer().instant(m("job_failed"), worker_id,
                                 options_.metrics_prefix);
    fail(job, std::current_exception());
  } catch (...) {
    telemetry_->metrics().counter(m("jobs_failed")).add(1);
    telemetry_->tracer().instant(m("job_failed"), worker_id,
                                 options_.metrics_prefix);
    if (backend_used != Backend::automatic) breaker_.on_failure(backend_used);
    export_breaker_gauges();
    fail(job, std::current_exception());
  }
}

void StencilEngine::deliver_chunks(const JobSpec& spec, JobResult& result) {
  ResultChunk chunk;  // field stays empty: single-stencil stream
  stream_grid_bands(result.grid, spec, chunk, /*final_grid=*/true);
  result.chunks_delivered = chunk.index;
  if (spec.sink_only) {
    // The stream was the delivery; free the server-side copy now.
    result.grid = Grid2D<float>(1, 1);
  }
}

void StencilEngine::finish_cancelled(detail::JobState& job, bool deadline) {
  // Cancel latency: token trip -> job terminal. For a pre-cancelled
  // queued job this is dominated by dispatch delay; for a running job it
  // is the cooperative unwind (bounded by one block's streaming time).
  const std::int64_t latency_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - job.token.cancelled_at())
          .count();
  telemetry_->metrics()
      .histogram(m("cancel_latency_ns"), cancel_latency_bounds_ns())
      .observe(std::max<std::int64_t>(latency_ns, 0));
  telemetry_->metrics()
      .counter(deadline ? m("deadline_exceeded") : m("jobs_cancelled"))
      .add(1);
  std::exception_ptr error =
      deadline ? std::make_exception_ptr(
                     DeadlineExceededError("job deadline exceeded"))
               : std::make_exception_ptr(CancelledError("job cancelled"));
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.error = std::move(error);
    job.status =
        deadline ? JobStatus::deadline_exceeded : JobStatus::cancelled;
  }
  notify_terminal(job);
  job.cv.notify_all();
}

void StencilEngine::export_breaker_gauges() {
  // 0 = closed, 1 = open, 2 = half_open (docs/OBSERVABILITY.md).
  for (const Backend b : CircuitBreaker::breakable_backends()) {
    telemetry_->metrics()
        .gauge(m("breaker_state.") + backend_name(b))
        .set(std::int64_t(breaker_.state(b)));
  }
}

void StencilEngine::notify_terminal(detail::JobState& job) {
  // Runs after the terminal state is recorded and before waiters are
  // released (spurious wakeups aside), so "wait() returned" implies the
  // hook already ran -- EngineCluster's quota release depends on that.
  if (!job.spec.on_terminal) return;
  JobStatus status;
  {
    std::lock_guard<std::mutex> lock(job.mu);
    status = job.status;
  }
  job.spec.on_terminal(status);
}

void StencilEngine::finish(detail::JobState& job, JobResult result) {
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.result = std::move(result);
    job.status = JobStatus::done;
  }
  notify_terminal(job);
  job.cv.notify_all();
}

void StencilEngine::fail(detail::JobState& job, std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.error = std::move(error);
    job.status = JobStatus::failed;
  }
  notify_terminal(job);
  job.cv.notify_all();
}

}  // namespace fpga_stencil
