// Row-major 2D and 3D grid containers.
//
// Conventions follow the paper: x is the fastest-varying (vectorized)
// dimension, y the next, and z (3D only) the slowest. 2D stencils stream the
// y dimension; 3D stencils stream the z dimension.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/expect.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace fpga_stencil {

/// Dense row-major 2D grid: index (x, y) -> data[y * nx + x].
template <typename T>
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(std::int64_t nx, std::int64_t ny, T fill = T{})
      : nx_(nx), ny_(ny), data_(checked_size(nx, ny), fill) {}

  /// Adopts `storage` as the backing store (resized to nx*ny; existing
  /// capacity is kept, cell contents are unspecified). This is the
  /// buffer-pool hook: scratch grids recycled across jobs enter and leave
  /// through here without reallocating.
  Grid2D(std::int64_t nx, std::int64_t ny, std::vector<T>&& storage)
      : nx_(nx), ny_(ny), data_(std::move(storage)) {
    data_.resize(checked_size(nx, ny));
  }

  /// Gives the backing store back (e.g. to a buffer pool); the grid is
  /// empty afterwards.
  [[nodiscard]] std::vector<T> release_storage() {
    nx_ = ny_ = 0;
    return std::move(data_);
  }

  [[nodiscard]] std::int64_t nx() const { return nx_; }
  [[nodiscard]] std::int64_t ny() const { return ny_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  T& at(std::int64_t x, std::int64_t y) { return data_[index(x, y)]; }
  const T& at(std::int64_t x, std::int64_t y) const {
    return data_[index(x, y)];
  }

  /// Reads with the paper's boundary condition: out-of-bound coordinates
  /// fall back on the border cell.
  [[nodiscard]] const T& at_clamped(std::int64_t x, std::int64_t y) const {
    return at(clamp_index(x, 0, nx_ - 1), clamp_index(y, 0, ny_ - 1));
  }

  [[nodiscard]] bool in_bounds(std::int64_t x, std::int64_t y) const {
    return x >= 0 && x < nx_ && y >= 0 && y < ny_;
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  /// Fills with deterministic pseudo-random values in [lo, hi).
  void fill_random(std::uint64_t seed, T lo = T(0), T hi = T(1)) {
    SplitMix64 rng(seed);
    for (T& v : data_) v = static_cast<T>(rng.next_float(float(lo), float(hi)));
  }

  /// Fills with a smooth deterministic pattern (useful for diffusion-style
  /// examples where random noise would obscure the physics).
  void fill_pattern(std::uint64_t seed = 1) {
    SplitMix64 rng(seed);
    const float px = rng.next_float(0.01f, 0.1f);
    const float py = rng.next_float(0.01f, 0.1f);
    for (std::int64_t y = 0; y < ny_; ++y) {
      for (std::int64_t x = 0; x < nx_; ++x) {
        at(x, y) = static_cast<T>(1.0f + 0.5f * float(x) * px +
                                  0.25f * float(y) * py);
      }
    }
  }

 private:
  static std::size_t checked_size(std::int64_t nx, std::int64_t ny) {
    FPGASTENCIL_EXPECT(nx > 0 && ny > 0, "grid dimensions must be positive");
    return static_cast<std::size_t>(nx * ny);
  }

  [[nodiscard]] std::size_t index(std::int64_t x, std::int64_t y) const {
    return static_cast<std::size_t>(y * nx_ + x);
  }

  std::int64_t nx_ = 0;
  std::int64_t ny_ = 0;
  std::vector<T> data_;
};

/// Dense row-major 3D grid: index (x, y, z) -> data[(z * ny + y) * nx + x].
template <typename T>
class Grid3D {
 public:
  Grid3D() = default;
  Grid3D(std::int64_t nx, std::int64_t ny, std::int64_t nz, T fill = T{})
      : nx_(nx), ny_(ny), nz_(nz), data_(checked_size(nx, ny, nz), fill) {}

  /// Adopts `storage` as the backing store; see Grid2D for the contract.
  Grid3D(std::int64_t nx, std::int64_t ny, std::int64_t nz,
         std::vector<T>&& storage)
      : nx_(nx), ny_(ny), nz_(nz), data_(std::move(storage)) {
    data_.resize(checked_size(nx, ny, nz));
  }

  [[nodiscard]] std::vector<T> release_storage() {
    nx_ = ny_ = nz_ = 0;
    return std::move(data_);
  }

  [[nodiscard]] std::int64_t nx() const { return nx_; }
  [[nodiscard]] std::int64_t ny() const { return ny_; }
  [[nodiscard]] std::int64_t nz() const { return nz_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  T& at(std::int64_t x, std::int64_t y, std::int64_t z) {
    return data_[index(x, y, z)];
  }
  const T& at(std::int64_t x, std::int64_t y, std::int64_t z) const {
    return data_[index(x, y, z)];
  }

  [[nodiscard]] const T& at_clamped(std::int64_t x, std::int64_t y,
                                    std::int64_t z) const {
    return at(clamp_index(x, 0, nx_ - 1), clamp_index(y, 0, ny_ - 1),
              clamp_index(z, 0, nz_ - 1));
  }

  [[nodiscard]] bool in_bounds(std::int64_t x, std::int64_t y,
                               std::int64_t z) const {
    return x >= 0 && x < nx_ && y >= 0 && y < ny_ && z >= 0 && z < nz_;
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void fill_random(std::uint64_t seed, T lo = T(0), T hi = T(1)) {
    SplitMix64 rng(seed);
    for (T& v : data_) v = static_cast<T>(rng.next_float(float(lo), float(hi)));
  }

  void fill_pattern(std::uint64_t seed = 1) {
    SplitMix64 rng(seed);
    const float px = rng.next_float(0.01f, 0.1f);
    const float py = rng.next_float(0.01f, 0.1f);
    const float pz = rng.next_float(0.01f, 0.1f);
    for (std::int64_t z = 0; z < nz_; ++z) {
      for (std::int64_t y = 0; y < ny_; ++y) {
        for (std::int64_t x = 0; x < nx_; ++x) {
          at(x, y, z) = static_cast<T>(1.0f + 0.5f * float(x) * px +
                                       0.25f * float(y) * py +
                                       0.125f * float(z) * pz);
        }
      }
    }
  }

 private:
  static std::size_t checked_size(std::int64_t nx, std::int64_t ny,
                                  std::int64_t nz) {
    FPGASTENCIL_EXPECT(nx > 0 && ny > 0 && nz > 0,
                       "grid dimensions must be positive");
    return static_cast<std::size_t>(nx * ny * nz);
  }

  [[nodiscard]] std::size_t index(std::int64_t x, std::int64_t y,
                                  std::int64_t z) const {
    return static_cast<std::size_t>((z * ny_ + y) * nx_ + x);
  }

  std::int64_t nx_ = 0;
  std::int64_t ny_ = 0;
  std::int64_t nz_ = 0;
  std::vector<T> data_;
};

}  // namespace fpga_stencil
