#include "grid/grid_compare.hpp"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace fpga_stencil {
namespace {

/// Distance in representable floats between a and b (same-sign finite
/// values); returns UINT32_MAX for NaN or opposite-sign comparisons that are
/// not exactly equal.
std::uint32_t ulp_distance(float a, float b) {
  if (a == b) return 0;  // covers +0 vs -0
  if (std::isnan(a) || std::isnan(b)) return UINT32_MAX;
  const auto ia = std::bit_cast<std::int32_t>(a);
  const auto ib = std::bit_cast<std::int32_t>(b);
  if ((ia < 0) != (ib < 0)) return UINT32_MAX;
  const std::int64_t d = std::int64_t(ia) - std::int64_t(ib);
  const std::int64_t mag = d < 0 ? -d : d;
  return mag > UINT32_MAX ? UINT32_MAX : static_cast<std::uint32_t>(mag);
}

struct Recorder {
  CompareResult result;

  /// Records one cell comparison; `bad` is the caller's tolerance verdict.
  void record(float va, float vb, bool bad, std::int64_t x, std::int64_t y,
              std::int64_t z) {
    const double abs_err = std::abs(double(va) - double(vb));
    const double denom = std::max(std::abs(double(va)), std::abs(double(vb)));
    const double rel_err = denom > 0 ? abs_err / denom : 0.0;
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, rel_err);
    if (bad) {
      if (result.mismatches == 0) {
        result.first_bad_x = x;
        result.first_bad_y = y;
        result.first_bad_z = z;
      }
      ++result.mismatches;
    }
  }
};

template <typename BadFn>
CompareResult compare2(const Grid2D<float>& a, const Grid2D<float>& b,
                       BadFn bad) {
  FPGASTENCIL_EXPECT(a.nx() == b.nx() && a.ny() == b.ny(),
                     "grid shapes differ");
  Recorder rec;
  for (std::int64_t y = 0; y < a.ny(); ++y) {
    for (std::int64_t x = 0; x < a.nx(); ++x) {
      const float va = a.at(x, y);
      const float vb = b.at(x, y);
      rec.record(va, vb, bad(va, vb), x, y, -1);
    }
  }
  return rec.result;
}

template <typename BadFn>
CompareResult compare3(const Grid3D<float>& a, const Grid3D<float>& b,
                       BadFn bad) {
  FPGASTENCIL_EXPECT(a.nx() == b.nx() && a.ny() == b.ny() && a.nz() == b.nz(),
                     "grid shapes differ");
  Recorder rec;
  for (std::int64_t z = 0; z < a.nz(); ++z) {
    for (std::int64_t y = 0; y < a.ny(); ++y) {
      for (std::int64_t x = 0; x < a.nx(); ++x) {
        const float va = a.at(x, y, z);
        const float vb = b.at(x, y, z);
        rec.record(va, vb, bad(va, vb), x, y, z);
      }
    }
  }
  return rec.result;
}

bool exact_bad(float va, float vb) {
  if (std::isnan(va) && std::isnan(vb)) return false;
  return !(va == vb);
}

}  // namespace

std::string CompareResult::summary() const {
  std::ostringstream os;
  if (identical()) {
    os << "identical (max_abs_err=" << max_abs_error << ")";
  } else {
    os << mismatches << " mismatches, first at (" << first_bad_x << ","
       << first_bad_y;
    if (first_bad_z >= 0) os << "," << first_bad_z;
    os << "), max_abs_err=" << max_abs_error
       << ", max_rel_err=" << max_rel_error;
  }
  return os.str();
}

CompareResult compare_exact(const Grid2D<float>& a, const Grid2D<float>& b) {
  return compare2(a, b, exact_bad);
}

CompareResult compare_exact(const Grid3D<float>& a, const Grid3D<float>& b) {
  return compare3(a, b, exact_bad);
}

CompareResult compare_ulps(const Grid2D<float>& a, const Grid2D<float>& b,
                           std::uint32_t max_ulps) {
  return compare2(
      a, b, [max_ulps](float x, float y) { return ulp_distance(x, y) > max_ulps; });
}

CompareResult compare_ulps(const Grid3D<float>& a, const Grid3D<float>& b,
                           std::uint32_t max_ulps) {
  return compare3(
      a, b, [max_ulps](float x, float y) { return ulp_distance(x, y) > max_ulps; });
}

CompareResult compare_relative(const Grid2D<float>& a, const Grid2D<float>& b,
                               double rel_tol) {
  return compare2(a, b, [rel_tol](float x, float y) {
    const double denom = std::max(std::abs(double(x)), std::abs(double(y)));
    return std::abs(double(x) - double(y)) > rel_tol * std::max(denom, 1e-30);
  });
}

CompareResult compare_relative(const Grid3D<float>& a, const Grid3D<float>& b,
                               double rel_tol) {
  return compare3(a, b, [rel_tol](float x, float y) {
    const double denom = std::max(std::abs(double(x)), std::abs(double(y)));
    return std::abs(double(x) - double(y)) > rel_tol * std::max(denom, 1e-30);
  });
}

}  // namespace fpga_stencil
