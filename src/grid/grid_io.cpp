#include "grid/grid_io.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

namespace fpga_stencil {
namespace {

constexpr char kMagic2D[8] = {'F', 'S', 'G', 'R', 'D', '2', 'D', '\0'};
constexpr char kMagic3D[8] = {'F', 'S', 'G', 'R', 'D', '3', 'D', '\0'};

int to_gray(float v, float lo, float hi) {
  const float t = std::clamp((v - lo) / (hi - lo), 0.0f, 1.0f);
  return static_cast<int>(t * 255.0f + 0.5f);
}

void write_i64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::int64_t read_i64(std::istream& is) {
  std::int64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  FPGASTENCIL_EXPECT(bool(is), "truncated grid snapshot");
  return v;
}

}  // namespace

void write_pgm(const Grid2D<float>& g, std::ostream& os, float lo, float hi) {
  FPGASTENCIL_EXPECT(hi > lo, "pgm range must be non-empty");
  os << "P2\n" << g.nx() << " " << g.ny() << "\n255\n";
  for (std::int64_t y = 0; y < g.ny(); ++y) {
    for (std::int64_t x = 0; x < g.nx(); ++x) {
      os << to_gray(g.at(x, y), lo, hi) << (x + 1 == g.nx() ? '\n' : ' ');
    }
  }
}

void write_pgm_slice(const Grid3D<float>& g, std::int64_t z, std::ostream& os,
                     float lo, float hi) {
  FPGASTENCIL_EXPECT(z >= 0 && z < g.nz(), "slice out of range");
  FPGASTENCIL_EXPECT(hi > lo, "pgm range must be non-empty");
  os << "P2\n" << g.nx() << " " << g.ny() << "\n255\n";
  for (std::int64_t y = 0; y < g.ny(); ++y) {
    for (std::int64_t x = 0; x < g.nx(); ++x) {
      os << to_gray(g.at(x, y, z), lo, hi) << (x + 1 == g.nx() ? '\n' : ' ');
    }
  }
}

void write_csv(const Grid2D<float>& g, std::ostream& os) {
  const auto old_precision = os.precision(9);
  for (std::int64_t y = 0; y < g.ny(); ++y) {
    for (std::int64_t x = 0; x < g.nx(); ++x) {
      os << g.at(x, y) << (x + 1 == g.nx() ? '\n' : ',');
    }
  }
  os.precision(old_precision);
}

void write_binary(const Grid2D<float>& g, std::ostream& os) {
  os.write(kMagic2D, sizeof(kMagic2D));
  write_i64(os, g.nx());
  write_i64(os, g.ny());
  os.write(reinterpret_cast<const char*>(g.data()),
           std::streamsize(g.size() * sizeof(float)));
}

void write_binary(const Grid3D<float>& g, std::ostream& os) {
  os.write(kMagic3D, sizeof(kMagic3D));
  write_i64(os, g.nx());
  write_i64(os, g.ny());
  write_i64(os, g.nz());
  os.write(reinterpret_cast<const char*>(g.data()),
           std::streamsize(g.size() * sizeof(float)));
}

Grid2D<float> read_binary_2d(std::istream& is) {
  char magic[8] = {};
  is.read(magic, sizeof(magic));
  FPGASTENCIL_EXPECT(bool(is) && std::memcmp(magic, kMagic2D, 8) == 0,
                     "not a 2D grid snapshot");
  const std::int64_t nx = read_i64(is);
  const std::int64_t ny = read_i64(is);
  Grid2D<float> g(nx, ny);
  is.read(reinterpret_cast<char*>(g.data()),
          std::streamsize(g.size() * sizeof(float)));
  FPGASTENCIL_EXPECT(bool(is), "truncated grid snapshot");
  return g;
}

Grid3D<float> read_binary_3d(std::istream& is) {
  char magic[8] = {};
  is.read(magic, sizeof(magic));
  FPGASTENCIL_EXPECT(bool(is) && std::memcmp(magic, kMagic3D, 8) == 0,
                     "not a 3D grid snapshot");
  const std::int64_t nx = read_i64(is);
  const std::int64_t ny = read_i64(is);
  const std::int64_t nz = read_i64(is);
  Grid3D<float> g(nx, ny, nz);
  is.read(reinterpret_cast<char*>(g.data()),
          std::streamsize(g.size() * sizeof(float)));
  FPGASTENCIL_EXPECT(bool(is), "truncated grid snapshot");
  return g;
}

}  // namespace fpga_stencil
