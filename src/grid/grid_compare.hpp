// Grid comparison utilities for validation.
//
// The accelerator is required to match the naive reference *bit-exactly*
// (identical floating-point operation order per output cell), so the primary
// comparator counts exact mismatches. A ULP-tolerant comparator is provided
// for comparing against implementations with a different summation order
// (the YASK-like CPU baseline).
#pragma once

#include <cstdint>
#include <string>

#include "grid/grid.hpp"

namespace fpga_stencil {

struct CompareResult {
  std::uint64_t mismatches = 0;   ///< cells exceeding the tolerance
  double max_abs_error = 0.0;     ///< worst absolute difference
  double max_rel_error = 0.0;     ///< worst relative difference
  std::int64_t first_bad_x = -1;  ///< coordinates of the first mismatch
  std::int64_t first_bad_y = -1;
  std::int64_t first_bad_z = -1;

  [[nodiscard]] bool identical() const { return mismatches == 0; }
  [[nodiscard]] std::string summary() const;
};

/// Exact (bitwise for non-NaN values) comparison.
CompareResult compare_exact(const Grid2D<float>& a, const Grid2D<float>& b);
CompareResult compare_exact(const Grid3D<float>& a, const Grid3D<float>& b);

/// Comparison tolerating `max_ulps` units-in-last-place of divergence.
CompareResult compare_ulps(const Grid2D<float>& a, const Grid2D<float>& b,
                           std::uint32_t max_ulps);
CompareResult compare_ulps(const Grid3D<float>& a, const Grid3D<float>& b,
                           std::uint32_t max_ulps);

/// Relative-tolerance comparison for differently-ordered reductions.
CompareResult compare_relative(const Grid2D<float>& a, const Grid2D<float>& b,
                               double rel_tol);
CompareResult compare_relative(const Grid3D<float>& a, const Grid3D<float>& b,
                               double rel_tol);

}  // namespace fpga_stencil
