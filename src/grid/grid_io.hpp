// Grid serialization: portable text/binary formats for examples, tooling,
// and cross-run comparison.
//
//   * PGM (P2 ASCII): quick-look grayscale images of 2D grids / 3D slices,
//     viewable by any image tool.
//   * CSV: one row per grid row (2D) for spreadsheet-scale debugging.
//   * Raw binary: exact float32 round-trip with a small self-describing
//     header (magic, dims, extents) -- the library's native snapshot format.
#pragma once

#include <iosfwd>
#include <string>

#include "grid/grid.hpp"

namespace fpga_stencil {

/// Writes a 2D grid as an ASCII PGM image, mapping [lo, hi] to 0..255
/// (values outside the range clamp).
void write_pgm(const Grid2D<float>& g, std::ostream& os, float lo, float hi);

/// One z-slice of a 3D grid as PGM.
void write_pgm_slice(const Grid3D<float>& g, std::int64_t z, std::ostream& os,
                     float lo, float hi);

/// CSV with one line per row, full float precision.
void write_csv(const Grid2D<float>& g, std::ostream& os);

/// Self-describing binary snapshots (exact float32 round trip).
void write_binary(const Grid2D<float>& g, std::ostream& os);
void write_binary(const Grid3D<float>& g, std::ostream& os);
Grid2D<float> read_binary_2d(std::istream& is);
Grid3D<float> read_binary_3d(std::istream& is);

}  // namespace fpga_stencil
