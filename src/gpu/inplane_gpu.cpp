#include "gpu/inplane_gpu.hpp"

#include <array>

#include "common/expect.hpp"
#include "stencil/characteristics.hpp"

namespace fpga_stencil {
namespace {

/// GTX 580 in-plane results from [10] as quoted in the paper's Table V.
constexpr std::array<double, 4> kGtx580Gcells = {17.294, 14.349, 10.944,
                                                 9.254};

constexpr double kPowerFractionOfTdp = 0.75;

ComparisonRow make_row(const DeviceSpec& device, int radius, double gcells,
                       bool extrapolated) {
  const StencilCharacteristics sc = stencil_characteristics(3, radius);
  ComparisonRow row;
  row.device = device.name;
  row.radius = radius;
  row.gcells = gcells;
  row.gflops = gcells * double(sc.flop_per_cell);
  row.power_watts = kPowerFractionOfTdp * device.tdp_watts;
  row.power_efficiency = row.gflops / row.power_watts;
  row.roofline_ratio =
      gcells * double(sc.bytes_per_cell) / device.peak_bw_gbps;
  row.extrapolated = extrapolated;
  return row;
}

}  // namespace

double gtx580_inplane_gcells(int radius) {
  FPGASTENCIL_EXPECT(radius >= 1 && radius <= 4,
                     "in-plane dataset covers radius 1..4");
  return kGtx580Gcells[static_cast<std::size_t>(radius - 1)];
}

ComparisonRow gpu_measured_row(int radius) {
  return make_row(gtx_580(), radius, gtx580_inplane_gcells(radius),
                  /*extrapolated=*/false);
}

ComparisonRow gpu_extrapolated_row(const DeviceSpec& device, int radius) {
  FPGASTENCIL_EXPECT(device.kind == DeviceKind::kGpu,
                     "extrapolation targets GPUs");
  const DeviceSpec base = gtx_580();
  const double scale = device.peak_bw_gbps / base.peak_bw_gbps;
  return make_row(device, radius, gtx580_inplane_gcells(radius) * scale,
                  /*extrapolated=*/true);
}

}  // namespace fpga_stencil
