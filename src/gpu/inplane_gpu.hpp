// GPU comparison data and extrapolation (paper Section IV.B / Table V).
//
// The paper compares its 3D results with Tang et al.'s "in-plane" GPU
// implementation [10], measured on a GTX 580, and *extrapolates* those
// numbers to a GTX 980 Ti and a Tesla P100 "based on the ratio of the
// theoretical external memory bandwidth of these devices compared to GTX
// 580", with power estimated as 75% of TDP. Because the in-plane method is
// memory-bound at every order, and because the paper assumes the reported
// cell rates carry over to the distinct-coefficient formulation, the
// arithmetic below is exactly the paper's.
//
// The GTX 580 GCell/s dataset is published input data, same as the paper
// treats it.
#pragma once

#include "fpga/device_spec.hpp"
#include "model/comparison_row.hpp"

namespace fpga_stencil {

/// Tang et al. [10] measured 3D star-stencil cell rates on a GTX 580
/// (GCell/s), radius 1..4 as quoted by the paper's Table V.
double gtx580_inplane_gcells(int radius);

/// Table V row for the GTX 580 itself (measured dataset, not extrapolated).
ComparisonRow gpu_measured_row(int radius);

/// Table V row for `device`, extrapolated from the GTX 580 by peak
/// bandwidth ratio; power = 75% of TDP.
ComparisonRow gpu_extrapolated_row(const DeviceSpec& device, int radius);

}  // namespace fpga_stencil
