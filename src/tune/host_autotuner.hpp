// Empirical host autotuner: measured-throughput plan search.
//
// The model-based tuner next door (tune/tuner.*) ranks configurations
// against an FPGA's DSP/bandwidth budget. This one answers a different
// question: of the block geometries and temporal depths that all compute
// the same bit-exact result, which is fastest *on this host*? It
// enumerates candidates seeded by the cache hierarchy
// (core/plan_candidates), measures each with short timed probes through
// the real stream_block path on a calibration slab, and returns the
// argmax with its measured Mcell/s. The requested ("paper default")
// geometry is always probed too, so tuning can never lose to it on the
// probe workload.
//
// Winners persist in a TuningCache keyed by (stencil fingerprint,
// extents-class, host fingerprint): one search per machine per workload
// class, every later process -- and every later plan-cache build -- reads
// the answer back. See docs/TUNING.md for the probe protocol, the cache
// format, and how to pin a plan manually.
//
// Thread-safe: concurrent resolve() calls may race to probe the same key
// (each lands the same winner modulo timing noise); the cache write is
// atomic either way.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/cancellation.hpp"
#include "core/plan_candidates.hpp"
#include "core/run_options.hpp"
#include "stencil/tap_set.hpp"
#include "tune/tuning_cache.hpp"

namespace fpga_stencil {

struct HostAutotunerOptions {
  /// TuningCache file. "auto" resolves $FPGASTENCIL_TUNING_CACHE (unset ->
  /// in-memory only); "" is in-memory only; anything else is a literal
  /// path.
  std::string cache_path = "auto";
  /// Calibration-slab budget: the probe grid keeps the blocked extents of
  /// the real grid but shortens the streamed dimension to roughly this
  /// many cells. 0 keeps the default (shrunk under sanitizer builds so
  /// instrumented suites stay fast).
  std::int64_t probe_cells = 0;
  /// Timed repeats per candidate (best-of); 0 keeps the default.
  int probe_repeats = 0;
  /// Candidate enumeration knobs (cache sizes default to host_profile()).
  PlanCandidateOptions candidates;
};

/// One resolved tuning decision.
struct AutotuneOutcome {
  AcceleratorConfig config;      ///< the plan to run (geometry possibly
                                 ///< swapped; parvec/stencil untouched)
  double tuned_mcells = 0.0;     ///< probe throughput of `config`
  double baseline_mcells = 0.0;  ///< probe throughput of the request
  bool from_cache = false;       ///< served from the TuningCache
  bool searched = false;         ///< this call ran the probe search
  std::int64_t candidates_probed = 0;
  std::int64_t search_ns = 0;    ///< wall time of the search (0 on cache hit)

  [[nodiscard]] double gain() const {
    return baseline_mcells > 0.0 ? tuned_mcells / baseline_mcells : 1.0;
  }
};

class HostAutotuner {
 public:
  explicit HostAutotuner(HostAutotunerOptions options = {});

  HostAutotuner(const HostAutotuner&) = delete;
  HostAutotuner& operator=(const HostAutotuner&) = delete;

  /// Resolves the plan to run for (taps, base, extents) under `mode`:
  ///   off         -> nullopt (caller keeps `base`)
  ///   cached_only -> the cached winner, or nullopt on a cache miss
  ///   search      -> the cached winner, or probe-search + persist
  /// The returned config is `base` with only bsize_x/bsize_y/partime
  /// changed, re-validated; a cached entry that no longer validates
  /// against this request is ignored (and re-searched under `search`).
  /// A tripped `cancel` token aborts mid-search with CancelledError /
  /// DeadlineExceededError -- nothing is cached.
  std::optional<AutotuneOutcome> resolve(const TapSet& taps,
                                         const AcceleratorConfig& base,
                                         std::int64_t nx, std::int64_t ny,
                                         std::int64_t nz, AutotuneMode mode,
                                         const CancellationToken* cancel =
                                             nullptr);

  /// Unconditional probe search (no cache read; the result is persisted).
  /// Outcome.config is the measured argmax over enumerate_plan_candidates.
  AutotuneOutcome search(const TapSet& taps, const AcceleratorConfig& base,
                         std::int64_t nx, std::int64_t ny, std::int64_t nz,
                         const CancellationToken* cancel = nullptr);

  /// One timed probe: measured Mcell/s of `cfg` on the calibration slab
  /// derived from (nx, ny, nz). Deterministic slab content; best-of
  /// repeats after one warm-up run.
  [[nodiscard]] double probe(const TapSet& taps, const AcceleratorConfig& cfg,
                             std::int64_t nx, std::int64_t ny, std::int64_t nz,
                             const CancellationToken* cancel = nullptr) const;

  [[nodiscard]] TuningCache& cache() { return cache_; }
  [[nodiscard]] const HostAutotunerOptions& options() const {
    return options_;
  }

  /// Key parts (docs/TUNING.md). The stencil fingerprint covers shape
  /// identity (tap offsets + coefficients), dims, radius, and the parvec
  /// envelope; the extents-class quantizes grid extents so one search
  /// serves similar grids.
  [[nodiscard]] static std::string stencil_fingerprint(
      const TapSet& taps, const AcceleratorConfig& base);
  [[nodiscard]] static std::string extents_class(int dims, std::int64_t nx,
                                                 std::int64_t ny,
                                                 std::int64_t nz);

  /// Shared default instance (cache_path "auto") for the free run() path;
  /// constructed on first use, process lifetime.
  static HostAutotuner& process_default();

 private:
  HostAutotunerOptions options_;
  TuningCache cache_;
};

}  // namespace fpga_stencil
