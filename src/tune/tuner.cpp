#include "tune/tuner.hpp"

#include <algorithm>

#include "fpga/fmax_model.hpp"

namespace fpga_stencil {
namespace {

/// Nearest positive multiple of `unit` to `target` (at least one unit).
std::int64_t snap_to_multiple(std::int64_t target, std::int64_t unit) {
  const std::int64_t down = round_down(target, unit);
  const std::int64_t up = down + unit;
  if (down <= 0) return up;
  return (target - down) <= (up - target) ? down : up;
}

}  // namespace

void TunerOptions::apply_defaults() {
  if (bsize_x_candidates.empty()) {
    bsize_x_candidates =
        dims == 2 ? std::vector<std::int64_t>{4096}
                  : std::vector<std::int64_t>{256, 128};
  }
  if (dims == 3 && bsize_y_candidates.empty()) {
    bsize_y_candidates = {256, 128};
  }
  if (dims == 2) bsize_y_candidates = {1};
}

std::vector<TunedConfig> enumerate_configs(const DeviceSpec& device,
                                           TunerOptions options) {
  FPGASTENCIL_EXPECT(device.is_fpga(), "tuner targets FPGAs");
  FPGASTENCIL_EXPECT(options.nx > 0 && options.ny > 0 && options.nz > 0,
                     "tuner needs a target grid");
  options.apply_defaults();

  const std::int64_t partotal =
      max_total_parallelism(device, options.dims, options.radius);

  std::vector<TunedConfig> results;
  for (std::int64_t bx : options.bsize_x_candidates) {
    for (std::int64_t by : options.bsize_y_candidates) {
      for (int parvec = 2; parvec <= options.max_parvec; parvec *= 2) {
        if (bx % parvec != 0) continue;
        const int max_pt = static_cast<int>(
            std::min<std::int64_t>(partotal / parvec, options.max_partime));
        for (int partime = 1; partime <= max_pt; ++partime) {
          AcceleratorConfig cfg;
          cfg.dims = options.dims;
          cfg.radius = options.radius;
          cfg.bsize_x = bx;
          cfg.bsize_y = options.dims == 3 ? by : 1;
          cfg.parvec = parvec;
          cfg.partime = partime;

          // Structural feasibility: halo must leave a positive compute
          // block, and the block cannot exceed the grid dimension (a block
          // wider than the grid wastes the whole point of blocking).
          if (cfg.csize_x() <= 0) break;  // larger partime only gets worse
          if (options.dims == 3 && cfg.csize_y() <= 0) break;

          const bool aligned = cfg.meets_alignment_rule();
          if (!aligned && options.alignment == AlignmentRule::kRequire) {
            continue;
          }

          const ResourceUsage usage = estimate_resources(cfg, device);
          if (!usage.fits()) continue;

          // Section IV.C: size the benchmark grid as a multiple of the
          // compute block so the final spatial block is fully used.
          std::int64_t nx = options.nx, ny = options.ny;
          if (options.snap_input_to_csize) {
            nx = snap_to_multiple(nx, cfg.csize_x());
            if (options.dims == 3) ny = snap_to_multiple(ny, cfg.csize_y());
          }

          TunedConfig tc;
          tc.config = cfg;
          tc.usage = usage;
          tc.fmax_mhz = estimate_fmax_mhz(cfg, device);
          tc.perf = estimate_performance(cfg, device, tc.fmax_mhz, nx, ny,
                                         options.nz);
          tc.meets_alignment = aligned;
          tc.score = tc.perf.measured_gbps;
          if (!aligned && options.alignment == AlignmentRule::kPrefer) {
            tc.score *= 0.9;  // unaligned accesses waste bandwidth
          }
          results.push_back(tc);
        }
      }
    }
  }

  std::sort(results.begin(), results.end(),
            [](const TunedConfig& a, const TunedConfig& b) {
              return a.score > b.score;
            });
  return results;
}

TunedConfig best_config(const DeviceSpec& device, TunerOptions options) {
  auto all = enumerate_configs(device, std::move(options));
  if (all.empty()) {
    throw ResourceError(
        "no feasible accelerator configuration fits on " + device.name);
  }
  return all.front();
}

AcceleratorConfig scale_first_order_config(
    const AcceleratorConfig& first_order, int radius) {
  FPGASTENCIL_EXPECT(first_order.radius == 1,
                     "heuristic scales a first-order configuration");
  FPGASTENCIL_EXPECT(radius >= 1, "radius must be >= 1");
  AcceleratorConfig cfg = first_order;
  cfg.radius = radius;
  cfg.partime = std::max(1, first_order.partime / radius);
  return cfg;
}

}  // namespace fpga_stencil
