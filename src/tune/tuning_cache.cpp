#include "tune/tuning_cache.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/json.hpp"

namespace fpga_stencil {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// A sibling temp path unique to this process + write: the final
/// ::rename() is atomic only within one filesystem, so the temp file must
/// live next to the target.
std::string temp_path_for(const std::string& path) {
  static std::atomic<std::uint64_t> seq{0};
  long pid = 0;
#if defined(__unix__) || defined(__APPLE__)
  pid = long(::getpid());
#endif
  return path + ".tmp." + std::to_string(pid) + "." +
         std::to_string(seq.fetch_add(1));
}

}  // namespace

TuningCache::TuningCache(std::string path) : path_(std::move(path)) {}

void TuningCache::merge_from_disk_locked(
    std::map<std::string, TunedPlanEntry>& into) {
  if (path_.empty()) return;
  const std::string text = read_file(path_);
  if (text.empty()) return;
  const std::optional<JsonValue> doc = json_parse(text);
  if (!doc || !doc->is_object()) return;  // corrupt: treat as empty
  const JsonValue* version = doc->find("schema_version");
  if (!version || version->as_int64(-1) != kSchemaVersion) return;
  const JsonValue* entries = doc->find("entries");
  if (!entries || !entries->is_array()) return;
  for (const JsonValue& e : entries->items) {
    if (!e.is_object()) continue;
    const JsonValue* key = e.find("key");
    if (!key || !key->is_string() || key->str_v.empty()) continue;
    if (into.count(key->str_v)) continue;  // memory is fresher
    TunedPlanEntry entry;
    const JsonValue* bx = e.find("bsize_x");
    const JsonValue* pt = e.find("partime");
    if (!bx || !bx->is_number() || !pt || !pt->is_number()) continue;
    entry.bsize_x = bx->as_int64();
    entry.bsize_y = e.find("bsize_y") ? e.find("bsize_y")->as_int64(1) : 1;
    entry.partime = int(pt->as_int64());
    if (const JsonValue* v = e.find("tuned_mcells")) {
      entry.tuned_mcells = v->as_double();
    }
    if (const JsonValue* v = e.find("baseline_mcells")) {
      entry.baseline_mcells = v->as_double();
    }
    if (const JsonValue* v = e.find("candidates_probed")) {
      entry.candidates_probed = v->as_int64();
    }
    if (entry.bsize_x <= 0 || entry.bsize_y <= 0 || entry.partime <= 0) {
      continue;  // nonsense geometry: skip the entry, keep the rest
    }
    into.emplace(key->str_v, entry);
  }
}

void TuningCache::save_locked() {
  if (path_.empty()) return;
  std::ostringstream body;
  JsonWriter w(body);
  w.begin_object();
  w.key("schema_version").value(kSchemaVersion);
  w.key("entries").begin_array();
  for (const auto& [key, e] : entries_) {
    w.begin_object();
    w.key("key").value(key);
    w.key("bsize_x").value(e.bsize_x);
    w.key("bsize_y").value(e.bsize_y);
    w.key("partime").value(e.partime);
    w.key("tuned_mcells").value(e.tuned_mcells);
    w.key("baseline_mcells").value(e.baseline_mcells);
    w.key("candidates_probed").value(e.candidates_probed);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const std::string tmp = temp_path_for(path_);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // unwritable location: in-memory entries still serve
    out << body.str() << "\n";
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return;
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
  }
}

std::optional<TunedPlanEntry> TuningCache::find(const TuningKey& key) {
  const std::string flat = key.flat();
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = entries_.find(flat); it != entries_.end()) {
    return it->second;
  }
  // Miss in memory: another process sharing this file may have published
  // the entry since our last read (or this is the first read).
  if (!path_.empty()) {
    merge_from_disk_locked(entries_);
    if (const auto it = entries_.find(flat); it != entries_.end()) {
      return it->second;
    }
  }
  return std::nullopt;
}

void TuningCache::put(const TuningKey& key, const TunedPlanEntry& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[key.flat()] = entry;
  // Merge what is currently on disk (parallel searches of *different*
  // keys both survive; for the same key our fresh measurement wins), then
  // publish atomically.
  std::map<std::string, TunedPlanEntry> merged = entries_;
  merged.erase(key.flat());
  merge_from_disk_locked(merged);
  merged[key.flat()] = entry;
  entries_ = std::move(merged);
  save_locked();
}

std::size_t TuningCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void TuningCache::clear_memory() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace fpga_stencil
