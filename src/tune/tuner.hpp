// Design-space exploration: the paper's Section V.A tuning flow.
//
// The search space is bounded by the DSP budget (eq. 4):
//     partotal = floor(#DSPs / dsps_per_cell_update)
//     partime * parvec <= partotal                       (eq. 5)
// with parvec restricted to multiples of two (memory port widths) and
// (partime * rad) mod 4 == 0 preferred for external-memory alignment
// (eq. 6). Candidate block sizes follow the paper: 4096 for 2D, and
// 256x256 / 256x128 / 128x128 for 3D. Every candidate is checked against
// the full resource model (DSP, Block-RAM bits *and* blocks, logic), its
// fmax and performance are predicted, and candidates are ranked by
// predicted measured throughput.
//
// The paper's eq. (6) is a preference, not a law of physics: their own
// Section VI.A projection runs 5th/6th-order 3D stencils at partime = 2
// (which violates eq. 6 for odd radii). `AlignmentRule` encodes the three
// sensible policies.
#pragma once

#include <vector>

#include "fpga/device_spec.hpp"
#include "fpga/resource_model.hpp"
#include "model/performance_model.hpp"
#include "stencil/accel_config.hpp"

namespace fpga_stencil {

enum class AlignmentRule {
  kRequire,  ///< drop configs violating eq. (6)
  kPrefer,   ///< keep them but penalize predicted throughput by 10%
  kIgnore,   ///< no penalty (what-if exploration)
};

struct TunerOptions {
  int dims = 2;
  int radius = 1;
  std::int64_t nx = 0, ny = 0, nz = 1;  ///< target grid for the estimate
  std::vector<std::int64_t> bsize_x_candidates;  ///< default per paper
  std::vector<std::int64_t> bsize_y_candidates;  ///< 3D only
  int max_parvec = 32;
  int max_partime = 128;
  AlignmentRule alignment = AlignmentRule::kPrefer;

  /// The paper's Section IV.C methodology: the benchmark input for each
  /// candidate is the multiple of that candidate's compute block size
  /// nearest the requested grid, so the last block wastes nothing. When
  /// false, every candidate is scored on the exact requested grid.
  bool snap_input_to_csize = true;

  /// Fills bsize candidates with the paper's defaults when empty:
  /// 2D {4096}; 3D x {256, 128}, y {256, 128}.
  void apply_defaults();
};

struct TunedConfig {
  AcceleratorConfig config;
  ResourceUsage usage;
  double fmax_mhz = 0.0;
  PerformanceEstimate perf;
  bool meets_alignment = true;
  double score = 0.0;  ///< predicted measured GB/s after alignment penalty
};

/// Every feasible configuration, best score first.
std::vector<TunedConfig> enumerate_configs(const DeviceSpec& device,
                                           TunerOptions options);

/// The top configuration; throws ResourceError when nothing fits.
TunedConfig best_config(const DeviceSpec& device, TunerOptions options);

/// The paper's quick heuristic: take the tuned first-order configuration
/// and divide its partime by the radius (Section V.A). Returns the scaled
/// configuration (not necessarily optimal -- Table III found better 2D
/// configs by full search, and exactly this one for 3D).
AcceleratorConfig scale_first_order_config(const AcceleratorConfig& first_order,
                                           int radius);

}  // namespace fpga_stencil
