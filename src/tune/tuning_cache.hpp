// On-disk cache of empirically tuned plans: the probe search runs once
// per (stencil fingerprint, extents-class, host fingerprint) per machine,
// and every later process adopts the stored winner.
//
// Format (docs/TUNING.md): one JSON object, schema-versioned, written
// through the common JsonWriter and read back with json_parse:
//
//   { "schema_version": 1,
//     "entries": [ { "key": "<stencil>|<extents>|<host>",
//                    "bsize_x": 144, "bsize_y": 144, "partime": 4,
//                    "tuned_mcells": 151.2, "baseline_mcells": 123.4,
//                    "candidates_probed": 18 }, ... ] }
//
// Durability rules:
//   * Writes go to a unique temp file in the same directory, then
//     ::rename() over the target -- readers never observe a torn file,
//     and concurrent engines sharing one path each publish a complete
//     document (last writer wins; put() merges the on-disk entries first
//     so parallel searches of different keys both survive).
//   * Corrupted / truncated / version-mismatched files are ignored and
//     rebuilt on the next put() -- never an error, just a re-search.
//   * The host fingerprint lives inside the key, so a new machine,
//     compiler, or -march flag silently invalidates every entry.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace fpga_stencil {

/// Identity of one tuning decision. All three parts are opaque strings
/// produced by HostAutotuner (stencil_fingerprint / extents_class) and
/// HostProfile::fingerprint.
struct TuningKey {
  std::string stencil_fp;
  std::string extents_class;
  std::string host_fp;

  /// The flat "<stencil>|<extents>|<host>" form stored in the file.
  [[nodiscard]] std::string flat() const {
    return stencil_fp + "|" + extents_class + "|" + host_fp;
  }
};

/// The stored winner: geometry deltas against the requested config (the
/// knobs tuning may change) plus the measurements that justified them.
struct TunedPlanEntry {
  std::int64_t bsize_x = 0;
  std::int64_t bsize_y = 1;
  int partime = 1;
  double tuned_mcells = 0.0;     ///< measured throughput of the winner
  double baseline_mcells = 0.0;  ///< measured throughput of the request
  std::int64_t candidates_probed = 0;
};

class TuningCache {
 public:
  static constexpr std::int64_t kSchemaVersion = 1;

  /// `path` is the backing JSON file; empty keeps the cache in-memory
  /// only (tests, ephemeral sessions). The file is loaded lazily and
  /// leniently: unreadable or invalid content is treated as empty.
  explicit TuningCache(std::string path = {});

  TuningCache(const TuningCache&) = delete;
  TuningCache& operator=(const TuningCache&) = delete;

  /// The entry for `key`, consulting memory first and then re-reading the
  /// backing file (another process may have published a search result
  /// since we last looked).
  [[nodiscard]] std::optional<TunedPlanEntry> find(const TuningKey& key);

  /// Inserts/overwrites and persists: merges the current on-disk entries,
  /// writes a temp file, renames it over `path`. Disk failures are
  /// swallowed (the in-memory entry still serves this process).
  void put(const TuningKey& key, const TunedPlanEntry& entry);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t size() const;

  /// Drops the in-memory entries (the file, if any, is untouched).
  void clear_memory();

 private:
  /// Parses `path_` and merges its entries under entries already in
  /// `into` (memory wins -- it is at least as fresh as what this process
  /// read before). Missing/corrupt/mismatched files merge nothing.
  void merge_from_disk_locked(std::map<std::string, TunedPlanEntry>& into);
  void save_locked();

  const std::string path_;
  mutable std::mutex mu_;
  std::map<std::string, TunedPlanEntry> entries_;
};

}  // namespace fpga_stencil
