#include "tune/host_autotuner.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/math_util.hpp"
#include "common/stopwatch.hpp"
#include "core/host_profile.hpp"
#include "core/stencil_accelerator.hpp"
#include "grid/grid.hpp"

namespace fpga_stencil {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_mix(std::uint64_t& h, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (8 * byte)) & 0xffu;
    h *= kFnvPrime;
  }
}

/// Same value-identity hash the engine's PlanCache uses for tap sets
/// (offsets + coefficient bits, order included). Re-derived here because
/// the tuner sits below the engine in the link order.
std::uint64_t taps_value_hash(const TapSet& taps) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, std::uint64_t(taps.dims()));
  fnv_mix(h, std::uint64_t(taps.radius()));
  for (const Tap& t : taps.taps()) {
    fnv_mix(h, std::uint64_t(t.dx));
    fnv_mix(h, std::uint64_t(t.dy));
    fnv_mix(h, std::uint64_t(t.dz));
    fnv_mix(h, std::bit_cast<std::uint32_t>(t.coeff));
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[std::size_t(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return s;
}

/// Nearest power of two: one search serves every grid in the same decade
/// of each extent (a 500^3 and a 512^3 grid want the same geometry).
std::int64_t extent_bucket(std::int64_t v) {
  if (v <= 1) return 1;
  const int exp = int(std::llround(std::log2(double(v))));
  return std::int64_t(1) << std::max(exp, 0);
}

HostAutotunerOptions resolve_options(HostAutotunerOptions o) {
  if (o.cache_path == "auto") {
    const char* env = std::getenv("FPGASTENCIL_TUNING_CACHE");
    o.cache_path = env != nullptr ? env : "";
  }
#if defined(FPGASTENCIL_SANITIZE_BUILD)
  // Sanitizer builds run every instruction ~10x slower; shrink the probe
  // protocol so tuning-labeled suites stay fast. Ranking quality does not
  // matter under sanitizers -- the suites check plumbing and exactness.
  if (o.probe_cells <= 0) o.probe_cells = 16 * 1024;
  if (o.probe_repeats <= 0) o.probe_repeats = 1;
  o.candidates.max_candidates = std::min<std::size_t>(
      o.candidates.max_candidates, 6);
#else
  if (o.probe_cells <= 0) o.probe_cells = 512 * 1024;
  if (o.probe_repeats <= 0) o.probe_repeats = 2;
#endif
  return o;
}

}  // namespace

HostAutotuner::HostAutotuner(HostAutotunerOptions options)
    : options_(resolve_options(std::move(options))),
      cache_(options_.cache_path) {}

std::string HostAutotuner::stencil_fingerprint(const TapSet& taps,
                                               const AcceleratorConfig& base) {
  // Everything tuning may NOT change is part of the identity: the stencil
  // itself, dims/radius, the vector width envelope, and whether the
  // specialized kernel library is in play (it changes which code runs).
  std::ostringstream os;
  os << hex64(taps_value_hash(taps)) << "-d" << base.dims << "r" << base.radius
     << "v" << base.parvec << "l" << base.stage_lag
     << (base.use_specialized_kernels ? "" : "-generic");
  return os.str();
}

std::string HostAutotuner::extents_class(int dims, std::int64_t nx,
                                         std::int64_t ny, std::int64_t nz) {
  std::ostringstream os;
  os << "x" << extent_bucket(nx) << "y" << extent_bucket(ny);
  if (dims == 3) os << "z" << extent_bucket(nz);
  return os.str();
}

double HostAutotuner::probe(const TapSet& taps, const AcceleratorConfig& cfg,
                            std::int64_t nx, std::int64_t ny, std::int64_t nz,
                            const CancellationToken* cancel) const {
  AcceleratorConfig pcfg = cfg;
  pcfg.telemetry = nullptr;  // probes are not the workload; keep them silent
  const AcceleratorConfig rcfg = resolve_stage_lag(taps, pcfg);
  const BlockingPlan full = make_blocking_plan(rcfg, nx, ny, nz);

  // Calibration slab: keep the blocked extents (block count, partial-block
  // waste, and per-block cache behavior all match the real grid), shorten
  // only the streamed dimension to the probe budget. The measurement is
  // seconds per *streamed* cell, which is geometry- but not length-
  // dependent, so the full-grid throughput below is a rescale, not an
  // extrapolation of warm-up effects.
  const std::int64_t row_area = rcfg.dims == 3 ? nx * ny : nx;
  const std::int64_t want =
      rcfg.stream_drain() +
      std::max<std::int64_t>(4, ceil_div(options_.probe_cells, row_area));
  const int iters = rcfg.partime;  // exactly one pass at full temporal depth

  double best_seconds = 0.0;
  std::int64_t streamed = 0;
  const auto measure = [&](auto& init, auto& work) {
    for (int rep = 0; rep <= options_.probe_repeats; ++rep) {
      if (cancel != nullptr) cancel->throw_if_cancelled();
      work = init;
      StencilAccelerator accel(taps, rcfg);
      const Stopwatch clock;
      const RunStats stats = accel.run(work, iters, nullptr, cancel);
      const double sec = double(clock.nanoseconds()) / 1e9;
      // rep 0 is the warm-up (page faults, frequency ramp); keep best-of
      // for the timed repeats.
      if (rep > 0 && (best_seconds == 0.0 || sec < best_seconds)) {
        best_seconds = sec;
      }
      streamed = stats.cells_streamed;
    }
  };

  if (rcfg.dims == 2) {
    const std::int64_t slab_ny = std::min(ny, want);
    Grid2D<float> init(nx, slab_ny);
    init.fill_random(0x70be, -1.0f, 1.0f);
    Grid2D<float> work(nx, slab_ny);
    measure(init, work);
  } else {
    const std::int64_t slab_nz = std::min(nz, want);
    Grid3D<float> init(nx, ny, slab_nz);
    init.fill_random(0x70be, -1.0f, 1.0f);
    Grid3D<float> work(nx, ny, slab_nz);
    measure(init, work);
  }
  if (best_seconds <= 0.0 || streamed <= 0) return 0.0;

  // Rescale to the target grid: one full pass streams full.cells_streamed
  // cells and advances `partime` time steps.
  const double sec_per_streamed_cell = best_seconds / double(streamed);
  const double step_seconds =
      sec_per_streamed_cell * double(full.cells_streamed) /
      double(rcfg.partime);
  return step_seconds > 0.0 ? double(full.valid_cells) / step_seconds / 1e6
                            : 0.0;
}

AutotuneOutcome HostAutotuner::search(const TapSet& taps,
                                      const AcceleratorConfig& base,
                                      std::int64_t nx, std::int64_t ny,
                                      std::int64_t nz,
                                      const CancellationToken* cancel) {
  const Stopwatch clock;
  const std::vector<AcceleratorConfig> candidates =
      enumerate_plan_candidates(base, nx, ny, nz, options_.candidates);

  AutotuneOutcome out;
  out.searched = true;
  out.candidates_probed = std::int64_t(candidates.size());
  double best = -1.0;
  std::size_t best_index = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double mcells = probe(taps, candidates[i], nx, ny, nz, cancel);
    if (i == 0) out.baseline_mcells = mcells;  // the request itself
    if (mcells > best) {
      best = mcells;
      best_index = i;
    }
  }
  out.config = candidates[best_index];
  out.tuned_mcells = best;
  out.search_ns = clock.nanoseconds();

  TunedPlanEntry entry;
  entry.bsize_x = out.config.bsize_x;
  entry.bsize_y = out.config.bsize_y;
  entry.partime = out.config.partime;
  entry.tuned_mcells = out.tuned_mcells;
  entry.baseline_mcells = out.baseline_mcells;
  entry.candidates_probed = out.candidates_probed;
  cache_.put({stencil_fingerprint(taps, base),
              extents_class(base.dims, nx, ny, nz),
              host_profile().fingerprint()},
             entry);
  return out;
}

std::optional<AutotuneOutcome> HostAutotuner::resolve(
    const TapSet& taps, const AcceleratorConfig& base, std::int64_t nx,
    std::int64_t ny, std::int64_t nz, AutotuneMode mode,
    const CancellationToken* cancel) {
  if (mode == AutotuneMode::off) return std::nullopt;

  const TuningKey key{stencil_fingerprint(taps, base),
                      extents_class(base.dims, nx, ny, nz),
                      host_profile().fingerprint()};
  if (const std::optional<TunedPlanEntry> entry = cache_.find(key)) {
    AcceleratorConfig cfg = base;
    cfg.bsize_x = entry->bsize_x;
    cfg.bsize_y = entry->bsize_y;
    cfg.partime = entry->partime;
    bool valid = true;
    try {
      cfg.validate();
    } catch (const ConfigError&) {
      valid = false;  // stale entry (e.g. hand-edited): ignore it
    }
    if (valid) {
      AutotuneOutcome out;
      out.config = cfg;
      out.tuned_mcells = entry->tuned_mcells;
      out.baseline_mcells = entry->baseline_mcells;
      out.from_cache = true;
      out.candidates_probed = entry->candidates_probed;
      return out;
    }
  }
  if (mode == AutotuneMode::cached_only) return std::nullopt;
  return search(taps, base, nx, ny, nz, cancel);
}

HostAutotuner& HostAutotuner::process_default() {
  static HostAutotuner instance{};
  return instance;
}

}  // namespace fpga_stencil
