// HLS-style shift register.
//
// On the FPGA the spatial-blocking buffer is a shift register inferred into
// Block RAM: every cycle `parvec` new cells enter at the tail and the whole
// register shifts by `parvec`; the stencil taps fixed logical offsets. This
// class reproduces those semantics exactly while storing the data in a ring
// buffer, so a shift is O(parvec) instead of O(size).
//
// Logical index convention: 0 is the oldest element, size()-1 the newest.
// After shift_in(v[0..p)), tap(size()-p+i) == v[i].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/expect.hpp"

namespace fpga_stencil {

template <typename T>
class ShiftRegister {
 public:
  /// `size` total cells, shifted by `shift_width` cells per cycle.
  ShiftRegister(std::int64_t size, std::int64_t shift_width)
      : size_(size), shift_width_(shift_width),
        data_(static_cast<std::size_t>(size), T{}) {
    FPGASTENCIL_EXPECT(size > 0, "shift register must be non-empty");
    FPGASTENCIL_EXPECT(shift_width > 0 && shift_width <= size,
                       "shift width must be in [1, size]");
  }

  [[nodiscard]] std::int64_t size() const { return size_; }
  [[nodiscard]] std::int64_t shift_width() const { return shift_width_; }

  /// One pipeline cycle: shifts by shift_width and loads `values` at the
  /// tail (logical indices [size - shift_width, size)).
  void shift_in(std::span<const T> values) {
    FPGASTENCIL_ASSERT(std::int64_t(values.size()) == shift_width_,
                       "shift_in width mismatch");
    // The ring's head marks the oldest element; overwriting the oldest
    // shift_width slots and advancing the head is exactly a shift.
    for (std::int64_t i = 0; i < shift_width_; ++i) {
      data_[static_cast<std::size_t>(physical(i))] = values[size_t(i)];
    }
    head_ += shift_width_;
    if (head_ >= size_) head_ -= size_;
  }

  /// Reads the element at logical index `i` (0 = oldest).
  [[nodiscard]] const T& tap(std::int64_t i) const {
    FPGASTENCIL_ASSERT(i >= 0 && i < size_, "tap index out of range");
    return data_[static_cast<std::size_t>(physical(i))];
  }

  /// Resets contents to T{} (block-pass boundaries).
  void clear() {
    std::fill(data_.begin(), data_.end(), T{});
    head_ = 0;
  }

 private:
  [[nodiscard]] std::int64_t physical(std::int64_t logical) const {
    std::int64_t p = head_ + logical;
    if (p >= size_) p -= size_;
    return p;
  }

  std::int64_t size_;
  std::int64_t shift_width_;
  std::int64_t head_ = 0;
  std::vector<T> data_;
};

}  // namespace fpga_stencil
