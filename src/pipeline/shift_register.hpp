// HLS-style shift register.
//
// On the FPGA the spatial-blocking buffer is a shift register inferred into
// Block RAM: every cycle `parvec` new cells enter at the tail and the whole
// register shifts by `parvec`; the stencil taps fixed logical offsets. This
// class reproduces those semantics exactly while storing the data in a ring
// buffer, so a shift is O(parvec) instead of O(size).
//
// Logical index convention: 0 is the oldest element, size()-1 the newest.
// After shift_in(v[0..p)), tap(size()-p+i) == v[i].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/expect.hpp"

namespace fpga_stencil {

template <typename T>
class ShiftRegister {
 public:
  /// `size` total cells, shifted by `shift_width` cells per cycle.
  ShiftRegister(std::int64_t size, std::int64_t shift_width)
      : size_(size), shift_width_(shift_width),
        data_(static_cast<std::size_t>(size), T{}) {
    FPGASTENCIL_EXPECT(size > 0, "shift register must be non-empty");
    FPGASTENCIL_EXPECT(shift_width > 0 && shift_width <= size,
                       "shift width must be in [1, size]");
  }

  [[nodiscard]] std::int64_t size() const { return size_; }
  [[nodiscard]] std::int64_t shift_width() const { return shift_width_; }

  /// One pipeline cycle: shifts by shift_width and loads `values` at the
  /// tail (logical indices [size - shift_width, size)).
  void shift_in(std::span<const T> values) {
    FPGASTENCIL_ASSERT(std::int64_t(values.size()) == shift_width_,
                       "shift_in width mismatch");
    // The ring's head marks the oldest element; overwriting the oldest
    // shift_width slots and advancing the head is exactly a shift.
    for (std::int64_t i = 0; i < shift_width_; ++i) {
      data_[static_cast<std::size_t>(physical(i))] = values[size_t(i)];
    }
    head_ += shift_width_;
    if (head_ >= size_) head_ -= size_;
  }

  /// Reads the element at logical index `i` (0 = oldest).
  [[nodiscard]] const T& tap(std::int64_t i) const {
    FPGASTENCIL_ASSERT(i >= 0 && i < size_, "tap index out of range");
    return data_[static_cast<std::size_t>(physical(i))];
  }

  /// Resets contents to T{} (block-pass boundaries).
  void clear() {
    std::fill(data_.begin(), data_.end(), T{});
    head_ = 0;
  }

 private:
  [[nodiscard]] std::int64_t physical(std::int64_t logical) const {
    std::int64_t p = head_ + logical;
    if (p >= size_) p -= size_;
    return p;
  }

  std::int64_t size_;
  std::int64_t shift_width_;
  std::int64_t head_ = 0;
  std::vector<T> data_;
};

/// Structure-of-arrays shift-register variant: a ring of `depth` whole
/// planes (one z-plane in 3D, one x-row in 2D) over caller-owned storage.
///
/// ShiftRegister models the FPGA's cell-granular window: one flat ring,
/// taps addressed by flat logical offset, a bounds check per access. The
/// specialized kernels (src/kernels) instead retire a whole plane per
/// streamed index and address taps as `plane base + row offset + dx`, so
/// the natural layout is plane-granular: plane p of the stream lives in
/// ring slot p mod depth, and a window of the last `depth` planes is
/// always resident. Retiring plane p implicitly evicts plane p - depth --
/// there is no shift, which is what makes the per-lane inner loops
/// contiguous and vectorizable.
///
/// Non-owning: `storage` must hold depth * plane_cells elements and
/// outlive the view (the kernels carve these out of the thread-local
/// KernelWorkspace slab).
template <typename T>
class PlanarShiftRegister {
 public:
  PlanarShiftRegister(T* storage, std::int64_t depth, std::int64_t plane_cells)
      : storage_(storage), depth_(depth), plane_cells_(plane_cells) {
    FPGASTENCIL_EXPECT(storage != nullptr, "planar SR needs storage");
    FPGASTENCIL_EXPECT(depth > 0, "planar SR depth must be positive");
    FPGASTENCIL_EXPECT(plane_cells > 0, "planar SR planes must be non-empty");
  }

  [[nodiscard]] std::int64_t depth() const { return depth_; }
  [[nodiscard]] std::int64_t plane_cells() const { return plane_cells_; }

  /// Slot of stream plane `stream_index` (>= 0). Writing slot p evicts
  /// plane p - depth; reading is valid for the last `depth` planes
  /// written, which the kernels' clamped window accesses never leave.
  [[nodiscard]] T* plane(std::int64_t stream_index) {
    FPGASTENCIL_ASSERT(stream_index >= 0, "planar SR index negative");
    return storage_ + (stream_index % depth_) * plane_cells_;
  }
  [[nodiscard]] const T* plane(std::int64_t stream_index) const {
    FPGASTENCIL_ASSERT(stream_index >= 0, "planar SR index negative");
    return storage_ + (stream_index % depth_) * plane_cells_;
  }

 private:
  T* storage_;
  std::int64_t depth_;
  std::int64_t plane_cells_;
};

}  // namespace fpga_stencil
