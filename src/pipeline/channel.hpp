// On-chip channel: the bounded FIFO connecting read kernel, PEs, and write
// kernel (Intel OpenCL `channel` / `pipe`).
//
// The functional accelerator path chains PEs synchronously and does not
// stall, but the cycle-level simulator uses these channels with finite
// capacity to model back-pressure from the memory controller.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "common/expect.hpp"

namespace fpga_stencil {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity) : capacity_(capacity) {
    FPGASTENCIL_EXPECT(capacity > 0, "channel capacity must be positive");
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return fifo_.size(); }
  [[nodiscard]] bool empty() const { return fifo_.empty(); }
  [[nodiscard]] bool full() const { return fifo_.size() >= capacity_; }

  /// Non-blocking write: returns false when full (producer must stall).
  bool try_write(T value) {
    if (full()) return false;
    fifo_.push_back(std::move(value));
    ++total_writes_;
    return true;
  }

  /// Non-blocking read: empty optional when the FIFO is empty.
  std::optional<T> try_read() {
    if (fifo_.empty()) return std::nullopt;
    T v = std::move(fifo_.front());
    fifo_.pop_front();
    return v;
  }

  /// Lifetime statistics (cycle-simulator occupancy accounting).
  [[nodiscard]] std::uint64_t total_writes() const { return total_writes_; }

 private:
  std::size_t capacity_;
  std::deque<T> fifo_;
  std::uint64_t total_writes_ = 0;
};

}  // namespace fpga_stencil
