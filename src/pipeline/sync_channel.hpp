// Thread-safe blocking channel: the concurrent-execution counterpart of
// Channel<T>. Semantics match Intel OpenCL channels: bounded FIFO,
// blocking read/write, plus a close() for orderly pipeline shutdown
// (hardware autorun kernels never terminate; host software needs to).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/expect.hpp"

namespace fpga_stencil {

template <typename T>
class SyncChannel {
 public:
  explicit SyncChannel(std::size_t capacity) : capacity_(capacity) {
    FPGASTENCIL_EXPECT(capacity > 0, "channel capacity must be positive");
  }

  /// Blocks until there is room. Writing to a closed channel throws.
  void write(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return fifo_.size() < capacity_ || closed_; });
    FPGASTENCIL_ASSERT(!closed_, "write to a closed channel");
    fifo_.push_back(std::move(value));
    not_empty_.notify_one();
  }

  /// Blocks until a value arrives; empty optional once the channel is
  /// closed and drained.
  std::optional<T> read() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !fifo_.empty() || closed_; });
    if (fifo_.empty()) return std::nullopt;
    T v = std::move(fifo_.front());
    fifo_.pop_front();
    not_full_.notify_one();
    return v;
  }

  /// Ends the stream: readers drain what is buffered, then see nullopt.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> fifo_;
  bool closed_ = false;
};

}  // namespace fpga_stencil
