// Thread-safe blocking channel: the concurrent-execution counterpart of
// Channel<T>. Semantics match Intel OpenCL channels: bounded FIFO,
// blocking read/write, plus a close() for orderly pipeline shutdown
// (hardware autorun kernels never terminate; host software needs to).
//
// Fault behaviour: writing to a closed channel throws the typed
// ChannelClosedError -- including writers that were *blocked* on a full
// channel when close() landed -- so the watchdog can unwind a stalled
// pipeline by closing every channel and have all stage threads observe a
// recoverable exception instead of aborting the process. The timed
// variants (try_write_for / read_for) report timeout vs. closed through
// ChannelStatus without throwing, which is what the watchdog-driven
// drain loops want.
//
// Telemetry: attach_probe() hands the channel pre-resolved instruments
// (depth high-water mark, blocked-read/write nanoseconds). Updates are
// single relaxed atomic RMWs and the blocked-time clock is read only on
// the paths that actually block, so an unprobed channel pays nothing and a
// probed one pays almost nothing.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "common/expect.hpp"
#include "common/stopwatch.hpp"
#include "telemetry/metrics.hpp"

namespace fpga_stencil {

/// A write raced with pipeline shutdown: the channel was closed before or
/// while the writer was blocked. Recoverable -- the stage thread unwinds.
class ChannelClosedError : public std::runtime_error {
 public:
  explicit ChannelClosedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Outcome of a timed channel operation.
enum class ChannelStatus {
  ok,        ///< the value was transferred
  timed_out, ///< the deadline passed with the channel still full/empty
  closed,    ///< the channel is closed (and drained, for reads)
};

template <typename T>
class SyncChannel {
 public:
  explicit SyncChannel(std::size_t capacity) : capacity_(capacity) {
    FPGASTENCIL_EXPECT(capacity > 0, "channel capacity must be positive");
  }

  /// Installs telemetry instruments. Not thread-safe against concurrent
  /// channel operations: attach before the pipeline threads start.
  void attach_probe(const ChannelProbe& probe) { probe_ = probe; }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Blocks until there is room. Throws ChannelClosedError if the channel
  /// is closed, including while blocked waiting for room.
  void write(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto room = [&] { return fifo_.size() < capacity_ || closed_; };
    if (!room()) {
      if (probe_.blocked_write_ns) {
        const Stopwatch blocked;
        not_full_.wait(lock, room);
        probe_.blocked_write_ns->add(blocked.nanoseconds());
      } else {
        not_full_.wait(lock, room);
      }
    }
    if (closed_) {
      throw ChannelClosedError("write to a closed channel");
    }
    fifo_.push_back(std::move(value));
    note_depth();
    not_empty_.notify_one();
  }

  /// Timed write: ok on transfer, closed if the channel closed first,
  /// timed_out if the deadline passed with the channel still full. The
  /// value is consumed only on ok.
  template <typename Rep, typename Period>
  ChannelStatus try_write_for(T& value,
                              std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool ready = not_full_.wait_for(
        lock, timeout, [&] { return fifo_.size() < capacity_ || closed_; });
    if (closed_) return ChannelStatus::closed;
    if (!ready) return ChannelStatus::timed_out;
    fifo_.push_back(std::move(value));
    note_depth();
    not_empty_.notify_one();
    return ChannelStatus::ok;
  }

  /// Blocks until a value arrives; empty optional once the channel is
  /// closed and drained.
  std::optional<T> read() {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto available = [&] { return !fifo_.empty() || closed_; };
    if (!available()) {
      if (probe_.blocked_read_ns) {
        const Stopwatch blocked;
        not_empty_.wait(lock, available);
        probe_.blocked_read_ns->add(blocked.nanoseconds());
      } else {
        not_empty_.wait(lock, available);
      }
    }
    if (fifo_.empty()) return std::nullopt;
    T v = std::move(fifo_.front());
    fifo_.pop_front();
    not_full_.notify_one();
    return v;
  }

  /// Timed read: ok fills `out`; closed means closed-and-drained;
  /// timed_out means the deadline passed with the channel still empty.
  template <typename Rep, typename Period>
  ChannelStatus read_for(T& out, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool ready = not_empty_.wait_for(
        lock, timeout, [&] { return !fifo_.empty() || closed_; });
    if (!fifo_.empty()) {
      out = std::move(fifo_.front());
      fifo_.pop_front();
      not_full_.notify_one();
      return ChannelStatus::ok;
    }
    return ready ? ChannelStatus::closed : ChannelStatus::timed_out;
  }

  /// Ends the stream: readers drain what is buffered, then see nullopt;
  /// writers (blocked or future) get ChannelClosedError. Idempotent.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  /// Called with the lock held after every push.
  void note_depth() {
    if (probe_.high_water) {
      probe_.high_water->max_of(std::int64_t(fifo_.size()));
    }
  }

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> fifo_;
  bool closed_ = false;
  ChannelProbe probe_;
};

}  // namespace fpga_stencil
