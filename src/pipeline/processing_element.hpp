// One Processing Element: a single temporal stage of the deep pipeline.
//
// The compute kernel of the paper (Fig. 2) is an autorun kernel replicated
// `partime` times; each replica advances its spatial block by one time step
// and streams the result to the next replica. A PE holds a shift register
// sized to the stencil's tap window (paper eq. 7 for star stencils); every
// cycle it shifts in one `parvec`-wide input vector and emits one output
// vector lagging `stage_lag` rows (2D) / planes (3D) behind.
//
// The PE executes any ordered TapSet (star, box, custom) whose offsets are
// bounded by the configuration's radius. Floating-point accumulation
// follows the tap order exactly, which is what makes the simulator
// bit-exact against the naive reference.
//
// Stream alignment contract (stage k, 0-based, L = effective_stage_lag):
//   input  stream row r carries global stream-dim index  r - k*L
//   output stream row r carries global stream-dim index  r - (k+1)*L
// so the write kernel behind stage partime-1 sees a total lag of
// partime*L rows, matching the drain rows the read kernel appends.
//
// Boundary conditions are applied *inside* the PE exactly as the paper's
// generated code does: every tap coordinate is clamped to the grid per
// axis, and the clamped coordinate's shift-register tap is selected.
// Clamping always moves a coordinate toward the center, so for any in-grid
// center the selected tap provably stays inside the register.
//
// Cells whose *center* is outside the grid (block halo sticking out of the
// grid, warm-up/drain filler) produce zeros; overlapped blocking guarantees
// no valid output ever depends on them.
#pragma once

#include <span>

#include "pipeline/shift_register.hpp"
#include "stencil/accel_config.hpp"
#include "stencil/star_stencil.hpp"
#include "stencil/tap_set.hpp"

namespace fpga_stencil {

/// Per-block-pass context handed to every PE by the orchestrator (in the
/// OpenCL design this travels through a narrow side channel).
struct BlockContext {
  std::int64_t block_x0 = 0;  ///< global x of block-local x_rel == 0
  std::int64_t block_y0 = 0;  ///< global y of block-local y_rel == 0 (3D)
  std::int64_t nx = 0;        ///< grid extents
  std::int64_t ny = 0;
  std::int64_t nz = 1;
  bool passthrough = false;   ///< stage disabled in a tail pass: delay only
};

class ProcessingElement {
 public:
  /// Generic construction from an ordered tap set. `stage` is the 0-based
  /// position in the chain (autorun compute id). The configuration's
  /// effective stage lag must cover the tap set's forward reach.
  ProcessingElement(const TapSet& taps, const AcceleratorConfig& cfg,
                    int stage);

  /// Star-stencil convenience: executes stencil.to_taps().
  ProcessingElement(const StarStencil& stencil, const AcceleratorConfig& cfg,
                    int stage);

  /// Resets the shift register and adopts a new block context.
  void begin_block(const BlockContext& ctx);

  /// One pipeline cycle: consumes `in` (parvec cells at stream position q)
  /// and produces `out` (parvec cells, lagging stage_lag stream rows).
  void process_vector(std::int64_t q, std::span<const float> in,
                      std::span<float> out);

  [[nodiscard]] int stage() const { return stage_; }
  [[nodiscard]] const AcceleratorConfig& config() const { return cfg_; }

  /// The ordered tap set this PE executes (the KernelRegistry's dispatch
  /// hook matches it structurally against the canonical star/box orders).
  [[nodiscard]] const TapSet& taps() const { return taps_; }

  /// Actual shift-register size for this tap set; equals the paper's
  /// eq. (7) for star stencils, larger for box stencils (corner reach).
  [[nodiscard]] std::int64_t shift_register_size() const {
    return sr_.size();
  }

 private:
  [[nodiscard]] float compute_lane(std::int64_t lane,
                                   std::int64_t center_flat) const;

  TapSet taps_;
  AcceleratorConfig cfg_;
  int stage_;
  std::int64_t row_cells_;    ///< bsize_x (2D) or bsize_x*bsize_y (3D)
  std::int64_t lag_cells_;    ///< effective_stage_lag * row_cells
  std::int64_t center_base_;  ///< SR logical index of the center, lane 0
  ShiftRegister<float> sr_;
  BlockContext ctx_;

  /// Per-tap data in accumulation order: unclamped flat offsets (interior
  /// fast path), coefficients, and axis offsets (border path).
  std::vector<std::int64_t> flat_offsets_;
  std::vector<float> coeffs_;
};

}  // namespace fpga_stencil
