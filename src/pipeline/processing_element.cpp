#include "pipeline/processing_element.hpp"

namespace fpga_stencil {
namespace {

/// Forward shift-register reach of a tap set under a configuration.
/// For reflective boundaries a border remap can flip any tap to its
/// mirror, so the reach is the abs-valued worst case (equal to the
/// plain max for star/box sets, larger only for asymmetric shapes).
std::int64_t forward_reach(const TapSet& taps, const AcceleratorConfig& cfg) {
  const std::int64_t max_flat =
      taps.max_flat_offset(cfg.bsize_x, cfg.row_cells());
  if (taps.boundary().kind != BoundaryKind::reflective) return max_flat;
  return std::max(max_flat,
                  taps.max_abs_flat_offset(cfg.bsize_x, cfg.row_cells()));
}

/// Backward reach (non-positive), mirrored for reflective boundaries.
std::int64_t backward_reach(const TapSet& taps, const AcceleratorConfig& cfg) {
  const std::int64_t min_flat =
      taps.min_flat_offset(cfg.bsize_x, cfg.row_cells());
  if (taps.boundary().kind != BoundaryKind::reflective) return min_flat;
  return std::min(min_flat,
                  -taps.max_abs_flat_offset(cfg.bsize_x, cfg.row_cells()));
}

/// Shift-register size for a tap set under a configuration: the window
/// from the oldest tap the center needs back to the newest loaded cell.
std::int64_t sr_size_for(const TapSet& taps, const AcceleratorConfig& cfg) {
  const std::int64_t row_cells = cfg.row_cells();
  const std::int64_t lag_cells =
      std::int64_t(cfg.effective_stage_lag()) * row_cells;
  const std::int64_t max_flat = forward_reach(taps, cfg);
  FPGASTENCIL_EXPECT(
      max_flat <= lag_cells,
      "stage lag too small for the tap set's forward reach; set "
      "AcceleratorConfig::stage_lag = ceil(max_flat / row_cells)");
  return lag_cells - backward_reach(taps, cfg) + cfg.parvec;
}

/// Single-bounce mirror about the boundary cell (reflective BC).
std::int64_t mirror_index(std::int64_t i, std::int64_t n) {
  if (i < 0) return -i;
  if (i >= n) return 2 * n - 2 - i;
  return i;
}

}  // namespace

ProcessingElement::ProcessingElement(const TapSet& taps,
                                     const AcceleratorConfig& cfg, int stage)
    : taps_(taps),
      cfg_(cfg),
      stage_(stage),
      row_cells_(cfg.row_cells()),
      lag_cells_(std::int64_t(cfg.effective_stage_lag()) * cfg.row_cells()),
      center_base_(-backward_reach(taps, cfg)),
      sr_(sr_size_for(taps, cfg), cfg.parvec) {
  cfg_.validate();
  FPGASTENCIL_EXPECT(stage >= 0 && stage < cfg.partime,
                     "stage must be in [0, partime)");
  FPGASTENCIL_EXPECT(taps.dims() == cfg.dims && taps.radius() <= cfg.radius,
                     "tap set and configuration disagree");

  flat_offsets_.reserve(taps_.size());
  coeffs_.reserve(taps_.size());
  for (const Tap& t : taps_.taps()) {
    flat_offsets_.push_back(taps_.flat_offset(t, cfg.bsize_x, row_cells_));
    coeffs_.push_back(t.coeff);
  }
}

ProcessingElement::ProcessingElement(const StarStencil& stencil,
                                     const AcceleratorConfig& cfg, int stage)
    : ProcessingElement(stencil.to_taps(), cfg, stage) {
  FPGASTENCIL_EXPECT(
      stencil.dims() == cfg.dims && stencil.radius() == cfg.radius,
      "stencil and configuration disagree");
}

void ProcessingElement::begin_block(const BlockContext& ctx) {
  sr_.clear();
  ctx_ = ctx;
}

void ProcessingElement::process_vector(std::int64_t q,
                                       std::span<const float> in,
                                       std::span<float> out) {
  FPGASTENCIL_ASSERT(std::int64_t(in.size()) == cfg_.parvec &&
                         std::int64_t(out.size()) == cfg_.parvec,
                     "vector width mismatch");
  sr_.shift_in(in);

  // Flat block-local stream index of the center lane 0: the newest loaded
  // cells are [q*parvec, (q+1)*parvec), and the center lags stage_lag rows.
  const std::int64_t center_flat0 = q * cfg_.parvec - lag_cells_;
  if (center_flat0 < 0) {
    // Pipeline warm-up: the register does not yet hold a full window.
    for (std::int64_t l = 0; l < cfg_.parvec; ++l) out[size_t(l)] = 0.0f;
    return;
  }

  if (ctx_.passthrough) {
    // Tail-pass delay stage: emit the lag-delayed input unchanged so the
    // stream alignment (stage_lag rows per stage) is preserved.
    for (std::int64_t l = 0; l < cfg_.parvec; ++l) {
      out[size_t(l)] = sr_.tap(center_base_ + l);
    }
    return;
  }

  for (std::int64_t l = 0; l < cfg_.parvec; ++l) {
    out[size_t(l)] = compute_lane(l, center_flat0 + l);
  }
}

float ProcessingElement::compute_lane(std::int64_t lane,
                                      std::int64_t center_flat) const {
  const int rad = cfg_.radius;
  const int lag = cfg_.effective_stage_lag();
  const std::int64_t sr_center = center_base_ + lane;
  const BoundaryCondition& bc = taps_.boundary();
  const std::size_t n = taps_.size();
  const float* cf = coeffs_.data();

  // Periodic boundaries never take a border select-chain: the read
  // kernel feeds a wrap-extended stream (block_streamer pre-pads the
  // streamed dimension and wraps every fetch modulo the grid), so each
  // lane's neighbors sit at the *plain* tap offsets -- including ghost
  // rows, whose computed values the later stages consume. Every lane,
  // ghost or not, runs the interior fast path.
  if (bc.kind == BoundaryKind::periodic) {
    const std::int64_t* off = flat_offsets_.data();
    float acc = cf[0] * sr_.tap(sr_center + off[0]);
    for (std::size_t t = 1; t < n; ++t) {
      acc += cf[t] * sr_.tap(sr_center + off[t]);
    }
    return acc;
  }

  // Decompose the block-local flat index into coordinates and recover the
  // center's global position (the collapsed-loop index arithmetic of the
  // paper's exit-condition optimization). Input stream row r of stage k
  // carries global row r - k*lag.
  std::int64_t xg, yg, zg = 0;
  if (cfg_.dims == 2) {
    const std::int64_t row = center_flat / cfg_.bsize_x;
    xg = ctx_.block_x0 + center_flat % cfg_.bsize_x;
    yg = row - std::int64_t(stage_) * lag;
    if (xg < 0 || xg >= ctx_.nx || yg < 0 || yg >= ctx_.ny) return 0.0f;
  } else {
    const std::int64_t plane = center_flat / row_cells_;
    const std::int64_t rem = center_flat % row_cells_;
    xg = ctx_.block_x0 + rem % cfg_.bsize_x;
    yg = ctx_.block_y0 + rem / cfg_.bsize_x;
    zg = plane - std::int64_t(stage_) * lag;
    if (xg < 0 || xg >= ctx_.nx || yg < 0 || yg >= ctx_.ny || zg < 0 ||
        zg >= ctx_.nz) {
      return 0.0f;
    }
  }

  // Interior fast path: no border remap possible, use precomputed offsets.
  const bool interior =
      xg >= rad && xg < ctx_.nx - rad && yg >= rad && yg < ctx_.ny - rad &&
      (cfg_.dims == 2 || (zg >= rad && zg < ctx_.nz - rad));
  if (interior) {
    const std::int64_t* off = flat_offsets_.data();
    float acc = cf[0] * sr_.tap(sr_center + off[0]);
    for (std::size_t t = 1; t < n; ++t) {
      acc += cf[t] * sr_.tap(sr_center + off[t]);
    }
    return acc;
  }

  // Border path: resolve each tap per axis by the boundary condition and
  // select the remapped coordinate's shift-register cell (the generated
  // boundary-condition code of the paper, generalized from clamp to the
  // BC select-chains). Dirichlet taps that leave the grid read the fixed
  // ghost value instead of the register.
  const auto& taps = taps_.taps();
  float acc = 0.0f;
  for (std::size_t t = 0; t < n; ++t) {
    const Tap& tap = taps[t];
    float v;
    if (bc.kind == BoundaryKind::dirichlet) {
      const std::int64_t tx = xg + tap.dx;
      const std::int64_t ty = yg + tap.dy;
      const std::int64_t tz = zg + tap.dz;
      const bool inside =
          tx >= 0 && tx < ctx_.nx && ty >= 0 && ty < ctx_.ny &&
          (cfg_.dims == 2 || (tz >= 0 && tz < ctx_.nz));
      if (inside) {
        std::int64_t delta = tap.dx + tap.dy * cfg_.bsize_x;
        if (cfg_.dims == 3) delta += tap.dz * row_cells_;
        v = sr_.tap(sr_center + delta);
      } else {
        v = bc.value;
      }
    } else if (bc.kind == BoundaryKind::reflective) {
      std::int64_t delta =
          mirror_index(xg + tap.dx, ctx_.nx) - xg +
          (mirror_index(yg + tap.dy, ctx_.ny) - yg) * cfg_.bsize_x;
      if (cfg_.dims == 3) {
        delta += (mirror_index(zg + tap.dz, ctx_.nz) - zg) * row_cells_;
      }
      v = sr_.tap(sr_center + delta);
    } else {
      std::int64_t delta =
          clamp_index(xg + tap.dx, 0, ctx_.nx - 1) - xg +
          (clamp_index(yg + tap.dy, 0, ctx_.ny - 1) - yg) * cfg_.bsize_x;
      if (cfg_.dims == 3) {
        delta += (clamp_index(zg + tap.dz, 0, ctx_.nz - 1) - zg) * row_cells_;
      }
      v = sr_.tap(sr_center + delta);
    }
    if (t == 0) {
      acc = cf[0] * v;
    } else {
      acc += cf[t] * v;
    }
  }
  return acc;
}

}  // namespace fpga_stencil
