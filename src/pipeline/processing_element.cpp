#include "pipeline/processing_element.hpp"

namespace fpga_stencil {
namespace {

/// Shift-register size for a tap set under a configuration: the window
/// from the oldest tap the center needs back to the newest loaded cell.
std::int64_t sr_size_for(const TapSet& taps, const AcceleratorConfig& cfg) {
  const std::int64_t row_cells = cfg.row_cells();
  const std::int64_t lag_cells =
      std::int64_t(cfg.effective_stage_lag()) * row_cells;
  const std::int64_t max_flat =
      taps.max_flat_offset(cfg.bsize_x, row_cells);
  FPGASTENCIL_EXPECT(
      max_flat <= lag_cells,
      "stage lag too small for the tap set's forward reach; set "
      "AcceleratorConfig::stage_lag = ceil(max_flat / row_cells)");
  return lag_cells - taps.min_flat_offset(cfg.bsize_x, row_cells) +
         cfg.parvec;
}

}  // namespace

ProcessingElement::ProcessingElement(const TapSet& taps,
                                     const AcceleratorConfig& cfg, int stage)
    : taps_(taps),
      cfg_(cfg),
      stage_(stage),
      row_cells_(cfg.row_cells()),
      lag_cells_(std::int64_t(cfg.effective_stage_lag()) * cfg.row_cells()),
      center_base_(-taps.min_flat_offset(cfg.bsize_x, cfg.row_cells())),
      sr_(sr_size_for(taps, cfg), cfg.parvec) {
  cfg_.validate();
  FPGASTENCIL_EXPECT(stage >= 0 && stage < cfg.partime,
                     "stage must be in [0, partime)");
  FPGASTENCIL_EXPECT(taps.dims() == cfg.dims && taps.radius() <= cfg.radius,
                     "tap set and configuration disagree");

  flat_offsets_.reserve(taps_.size());
  coeffs_.reserve(taps_.size());
  for (const Tap& t : taps_.taps()) {
    flat_offsets_.push_back(taps_.flat_offset(t, cfg.bsize_x, row_cells_));
    coeffs_.push_back(t.coeff);
  }
}

ProcessingElement::ProcessingElement(const StarStencil& stencil,
                                     const AcceleratorConfig& cfg, int stage)
    : ProcessingElement(stencil.to_taps(), cfg, stage) {
  FPGASTENCIL_EXPECT(
      stencil.dims() == cfg.dims && stencil.radius() == cfg.radius,
      "stencil and configuration disagree");
}

void ProcessingElement::begin_block(const BlockContext& ctx) {
  sr_.clear();
  ctx_ = ctx;
}

void ProcessingElement::process_vector(std::int64_t q,
                                       std::span<const float> in,
                                       std::span<float> out) {
  FPGASTENCIL_ASSERT(std::int64_t(in.size()) == cfg_.parvec &&
                         std::int64_t(out.size()) == cfg_.parvec,
                     "vector width mismatch");
  sr_.shift_in(in);

  // Flat block-local stream index of the center lane 0: the newest loaded
  // cells are [q*parvec, (q+1)*parvec), and the center lags stage_lag rows.
  const std::int64_t center_flat0 = q * cfg_.parvec - lag_cells_;
  if (center_flat0 < 0) {
    // Pipeline warm-up: the register does not yet hold a full window.
    for (std::int64_t l = 0; l < cfg_.parvec; ++l) out[size_t(l)] = 0.0f;
    return;
  }

  if (ctx_.passthrough) {
    // Tail-pass delay stage: emit the lag-delayed input unchanged so the
    // stream alignment (stage_lag rows per stage) is preserved.
    for (std::int64_t l = 0; l < cfg_.parvec; ++l) {
      out[size_t(l)] = sr_.tap(center_base_ + l);
    }
    return;
  }

  for (std::int64_t l = 0; l < cfg_.parvec; ++l) {
    out[size_t(l)] = compute_lane(l, center_flat0 + l);
  }
}

float ProcessingElement::compute_lane(std::int64_t lane,
                                      std::int64_t center_flat) const {
  const int rad = cfg_.radius;
  const int lag = cfg_.effective_stage_lag();
  const std::int64_t sr_center = center_base_ + lane;

  // Decompose the block-local flat index into coordinates and recover the
  // center's global position (the collapsed-loop index arithmetic of the
  // paper's exit-condition optimization). Input stream row r of stage k
  // carries global row r - k*lag.
  std::int64_t xg, yg, zg = 0;
  if (cfg_.dims == 2) {
    const std::int64_t row = center_flat / cfg_.bsize_x;
    xg = ctx_.block_x0 + center_flat % cfg_.bsize_x;
    yg = row - std::int64_t(stage_) * lag;
    if (xg < 0 || xg >= ctx_.nx || yg < 0 || yg >= ctx_.ny) return 0.0f;
  } else {
    const std::int64_t plane = center_flat / row_cells_;
    const std::int64_t rem = center_flat % row_cells_;
    xg = ctx_.block_x0 + rem % cfg_.bsize_x;
    yg = ctx_.block_y0 + rem / cfg_.bsize_x;
    zg = plane - std::int64_t(stage_) * lag;
    if (xg < 0 || xg >= ctx_.nx || yg < 0 || yg >= ctx_.ny || zg < 0 ||
        zg >= ctx_.nz) {
      return 0.0f;
    }
  }

  const std::size_t n = taps_.size();
  const float* cf = coeffs_.data();

  // Interior fast path: no clamping possible, use precomputed offsets.
  const bool interior =
      xg >= rad && xg < ctx_.nx - rad && yg >= rad && yg < ctx_.ny - rad &&
      (cfg_.dims == 2 || (zg >= rad && zg < ctx_.nz - rad));
  if (interior) {
    const std::int64_t* off = flat_offsets_.data();
    float acc = cf[0] * sr_.tap(sr_center + off[0]);
    for (std::size_t t = 1; t < n; ++t) {
      acc += cf[t] * sr_.tap(sr_center + off[t]);
    }
    return acc;
  }

  // Border path: clamp each tap per axis and select the clamped
  // coordinate's shift-register cell (the generated boundary-condition
  // code of the paper).
  const auto& taps = taps_.taps();
  float acc = 0.0f;
  for (std::size_t t = 0; t < n; ++t) {
    const Tap& tap = taps[t];
    std::int64_t delta =
        clamp_index(xg + tap.dx, 0, ctx_.nx - 1) - xg +
        (clamp_index(yg + tap.dy, 0, ctx_.ny - 1) - yg) * cfg_.bsize_x;
    if (cfg_.dims == 3) {
      delta += (clamp_index(zg + tap.dz, 0, ctx_.nz - 1) - zg) * row_cells_;
    }
    const float v = sr_.tap(sr_center + delta);
    if (t == 0) {
      acc = cf[0] * v;
    } else {
      acc += cf[t] * v;
    }
  }
  return acc;
}

}  // namespace fpga_stencil
