// Small integer-math helpers shared by the blocking planner, resource
// models, and performance model.
#pragma once

#include <cstdint>
#include <type_traits>

namespace fpga_stencil {

/// Ceiling division for non-negative integers.
template <typename T>
constexpr T ceil_div(T a, T b) {
  static_assert(std::is_integral_v<T>);
  return (a + b - 1) / b;
}

/// Rounds `a` up to the nearest multiple of `m` (m > 0).
template <typename T>
constexpr T round_up(T a, T m) {
  static_assert(std::is_integral_v<T>);
  return ceil_div(a, m) * m;
}

/// Rounds `a` down to the nearest multiple of `m` (m > 0).
template <typename T>
constexpr T round_down(T a, T m) {
  static_assert(std::is_integral_v<T>);
  return (a / m) * m;
}

/// True if `a` is an exact multiple of `m`.
template <typename T>
constexpr bool is_multiple(T a, T m) {
  return m != 0 && a % m == 0;
}

/// Clamps an index into [lo, hi]. This is the paper's boundary condition:
/// "all out-of-bound neighboring cells correctly fall back on the cell that
/// is on the border."
constexpr std::int64_t clamp_index(std::int64_t i, std::int64_t lo,
                                   std::int64_t hi) {
  return i < lo ? lo : (i > hi ? hi : i);
}

/// True if `v` is a power of two (v > 0).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace fpga_stencil
