// Fixed-width numeric formatting used by the table renderer and benches.
#pragma once

#include <cstdint>
#include <string>

namespace fpga_stencil {

/// Formats `v` with `prec` digits after the decimal point ("123.456").
std::string format_fixed(double v, int prec);

/// Formats a percentage with no decimals ("85%").
std::string format_percent(double fraction);

/// Formats large integers with thousands separators ("16,096").
std::string format_grouped(std::uint64_t v);

/// Formats bytes in a human scale ("1.25 MiB").
std::string format_bytes(std::uint64_t bytes);

/// "WxH" / "WxHxD" dimension strings.
std::string format_dims2(std::uint64_t x, std::uint64_t y);
std::string format_dims3(std::uint64_t x, std::uint64_t y, std::uint64_t z);

}  // namespace fpga_stencil
