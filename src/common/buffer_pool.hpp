// Pool of float buffers recycled across engine jobs and worker threads.
//
// Every job needs a scratch grid the size of its input for the executor's
// ping-pong buffering (StencilAccelerator::run and run_concurrent both
// allocate one per call when not handed storage), and every block-parallel
// worker needs a pair of lane buffers (RunOptions::pool). Under a stream
// of jobs that allocation dominates setup for small grids, so the engine
// leases backing stores from this pool instead: a released vector keeps
// its capacity, and the next job of the same (or smaller) footprint runs
// allocation-free. The pool is what makes "zero buffer growth after
// warm-up" a testable property (see EngineStats and tests/engine_test).
// Lives in common/ so execution layers below the engine can lease from it.
//
// Thread-safe; acquire picks the smallest retained buffer whose capacity
// fits the request (best fit), so mixed job sizes don't pathologically
// pin large buffers on small jobs.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace fpga_stencil {

class BufferPool {
 public:
  /// Retains at most `max_retained` idle buffers; releases beyond that
  /// free their memory immediately.
  explicit BufferPool(std::size_t max_retained = 64)
      : max_retained_(max_retained) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer resized to `size`; contents unspecified. Reuses a retained
  /// buffer when one with sufficient capacity exists, else allocates.
  [[nodiscard]] std::vector<float> acquire(std::size_t size);

  /// Returns a buffer to the pool (capacity kept, contents ignored).
  /// Empty vectors -- e.g. storage lost to an aborted pass -- are dropped.
  void release(std::vector<float> buffer);

  /// RAII lease: acquires on construction, releases on destruction.
  class Lease {
   public:
    Lease(BufferPool& pool, std::size_t size)
        : pool_(&pool), buffer_(pool.acquire(size)) {}
    ~Lease() {
      if (pool_) pool_->release(std::move(buffer_));
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] std::vector<float>& buffer() { return buffer_; }

   private:
    BufferPool* pool_;
    std::vector<float> buffer_;
  };

  /// Total acquire() calls.
  [[nodiscard]] std::int64_t acquires() const;
  /// Acquires that had to allocate a new backing store. Constant across a
  /// warm steady state -- the no-growth invariant tests pin this.
  [[nodiscard]] std::int64_t allocations() const;
  /// Acquires served from a retained buffer.
  [[nodiscard]] std::int64_t reuses() const;
  /// Buffers acquired but not yet released (leases in flight). Zero on an
  /// idle engine -- the chaos campaign's no-leak invariant. Releases of
  /// empty vectors (storage lost to an aborted/cancelled pass) still
  /// count: the lease came back, only its capacity was dropped.
  [[nodiscard]] std::int64_t outstanding() const;
  /// Buffers currently idle in the pool.
  [[nodiscard]] std::size_t retained() const;
  /// Bytes of capacity currently idle in the pool.
  [[nodiscard]] std::int64_t retained_bytes() const;

  /// Drops every retained buffer (benchmarks measuring cold setup).
  void clear();

 private:
  const std::size_t max_retained_;
  mutable std::mutex mu_;
  std::vector<std::vector<float>> free_;
  std::int64_t acquires_ = 0;
  std::int64_t allocations_ = 0;
  std::int64_t reuses_ = 0;
  std::int64_t releases_ = 0;
};

}  // namespace fpga_stencil
