// Deterministic pseudo-random number generation for grid initialization.
//
// Benchmarks and tests must be reproducible across runs and machines, so we
// use a fixed splitmix64 generator rather than std::random_device-seeded
// engines.
#pragma once

#include <cstdint>

namespace fpga_stencil {

/// splitmix64: tiny, fast, well-distributed, and fully deterministic.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform float in [0, 1).
  constexpr float next_float01() {
    return static_cast<float>(next_u64() >> 40) * (1.0f / 16777216.0f);
  }

  /// Uniform float in [lo, hi).
  constexpr float next_float(float lo, float hi) {
    return lo + (hi - lo) * next_float01();
  }

  /// Uniform integer in [0, n).
  constexpr std::uint64_t next_below(std::uint64_t n) {
    return next_u64() % n;
  }

 private:
  std::uint64_t state_;
};

}  // namespace fpga_stencil
