#include "common/buffer_pool.hpp"

#include <algorithm>

namespace fpga_stencil {

std::vector<float> BufferPool::acquire(std::size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  ++acquires_;
  // Best fit: the smallest retained buffer that already has the capacity.
  std::size_t best = free_.size();
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].capacity() < size) continue;
    if (best == free_.size() ||
        free_[i].capacity() < free_[best].capacity()) {
      best = i;
    }
  }
  if (best < free_.size()) {
    std::vector<float> buffer = std::move(free_[best]);
    free_.erase(free_.begin() + std::ptrdiff_t(best));
    buffer.resize(size);
    ++reuses_;
    return buffer;
  }
  ++allocations_;
  return std::vector<float>(size);
}

void BufferPool::release(std::vector<float> buffer) {
  std::lock_guard<std::mutex> lock(mu_);
  ++releases_;  // counts even drops: the lease itself came back
  if (buffer.capacity() == 0) return;
  if (free_.size() >= max_retained_) return;  // drop: frees on destruction
  free_.push_back(std::move(buffer));
}

std::int64_t BufferPool::acquires() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquires_;
}

std::int64_t BufferPool::allocations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return allocations_;
}

std::int64_t BufferPool::reuses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reuses_;
}

std::int64_t BufferPool::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquires_ - releases_;
}

std::size_t BufferPool::retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

std::int64_t BufferPool::retained_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t bytes = 0;
  for (const auto& b : free_) {
    bytes += std::int64_t(b.capacity()) * std::int64_t(sizeof(float));
  }
  return bytes;
}

void BufferPool::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  free_.clear();
}

}  // namespace fpga_stencil
