// Minimal JSON emission, validation, and parsing, dependency-free.
//
// JsonWriter is a streaming emitter with automatic comma/nesting
// management, enough for the telemetry exports (metric snapshots, Chrome
// trace_event files) and the machine-readable bench artifacts
// (BENCH_*.json). json_is_valid is a strict RFC 8259 recursive-descent
// checker used by tests and CLI self-checks to prove emitted documents are
// well-formed without pulling in a parser library. JsonValue/json_parse is
// the read side: a small DOM for documents the library itself wrote
// (TuningCache files), returning nullopt instead of throwing so corrupted
// input degrades to "no data".
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fpga_stencil {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view s);

/// Strict well-formedness check of a complete JSON document.
bool json_is_valid(std::string_view text);

/// Parsed JSON document node. Deliberately small: ordered object members,
/// doubles for every number (the documents we read back carry nothing a
/// double cannot hold), and `\uXXXX` escapes decoded only for the ASCII
/// range (everything the JsonWriter ever emits).
struct JsonValue {
  enum class Type { null, boolean, number, string, array, object };

  Type type = Type::null;
  bool bool_v = false;
  double num_v = 0.0;
  std::string str_v;
  std::vector<JsonValue> items;  ///< array elements
  std::vector<std::pair<std::string, JsonValue>> members;  ///< object, ordered

  [[nodiscard]] bool is_object() const { return type == Type::object; }
  [[nodiscard]] bool is_array() const { return type == Type::array; }
  [[nodiscard]] bool is_number() const { return type == Type::number; }
  [[nodiscard]] bool is_string() const { return type == Type::string; }

  /// Member lookup (objects only); null when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Typed accessors with fallbacks; wrong-typed nodes yield the fallback.
  [[nodiscard]] double as_double(double fallback = 0.0) const;
  [[nodiscard]] std::int64_t as_int64(std::int64_t fallback = 0) const;
  [[nodiscard]] std::string as_string(std::string fallback = {}) const;
  [[nodiscard]] bool as_bool(bool fallback = false) const;
};

/// Parses a complete JSON document; nullopt on any syntax error (the
/// caller treats a corrupt document exactly like a missing one).
std::optional<JsonValue> json_parse(std::string_view text);

/// Streaming JSON writer. Usage:
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("name").value("x");
///   w.key("rows").begin_array();
///   w.value(1).value(2);
///   w.end_array();
///   w.end_object();
/// Emits 2-space-indented output. Misuse (value without key inside an
/// object, unbalanced end_*) throws std::logic_error.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the member key; the next call must produce its value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(std::int64_t(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

 private:
  enum class Scope { object, array };
  void before_value();
  void newline_indent();

  std::ostream& os_;
  std::vector<Scope> stack_;
  bool first_in_scope_ = true;
  bool key_pending_ = false;
};

}  // namespace fpga_stencil
