// Minimal JSON emission and validation, dependency-free.
//
// JsonWriter is a streaming emitter with automatic comma/nesting
// management, enough for the telemetry exports (metric snapshots, Chrome
// trace_event files) and the machine-readable bench artifacts
// (BENCH_*.json). json_is_valid is a strict RFC 8259 recursive-descent
// checker used by tests and CLI self-checks to prove emitted documents are
// well-formed without pulling in a parser library.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fpga_stencil {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view s);

/// Strict well-formedness check of a complete JSON document.
bool json_is_valid(std::string_view text);

/// Streaming JSON writer. Usage:
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("name").value("x");
///   w.key("rows").begin_array();
///   w.value(1).value(2);
///   w.end_array();
///   w.end_object();
/// Emits 2-space-indented output. Misuse (value without key inside an
/// object, unbalanced end_*) throws std::logic_error.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the member key; the next call must produce its value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(std::int64_t(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

 private:
  enum class Scope { object, array };
  void before_value();
  void newline_indent();

  std::ostream& os_;
  std::vector<Scope> stack_;
  bool first_in_scope_ = true;
  bool key_pending_ = false;
};

}  // namespace fpga_stencil
