#include "common/table.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace fpga_stencil {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  FPGASTENCIL_EXPECT(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  FPGASTENCIL_EXPECT(cells.size() <= header_.size(),
                     "row has more cells than header columns");
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  auto print_rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << "| " << cell << std::string(width[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };

  print_rule();
  print_cells(header_);
  print_rule();
  for (const Row& row : rows_) {
    if (row.rule_before) print_rule();
    print_cells(row.cells);
  }
  print_rule();
}

}  // namespace fpga_stencil
