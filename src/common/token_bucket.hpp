// Token bucket: the rate-limit half of per-tenant quotas.
//
// A bucket holds at most `burst` tokens and refills continuously at
// `rate_per_s`. Each admitted job costs one token; when the bucket is
// empty the caller is over its sustained rate and the bucket reports how
// long until the next token matures -- the retry-after hint the serving
// tier hands back to rejected tenants (docs/SERVING.md).
//
// Time is passed in explicitly (steady_clock time points) so tests drive
// the refill deterministically without sleeping; the zero-argument
// overloads read the clock for production callers. A rate of 0 means
// unlimited: every acquire succeeds and never consumes anything, so an
// unconfigured tenant costs one branch.
//
// Thread-safe; one mutex per bucket (a bucket guards one tenant's rate,
// not a hot per-cell path).
#pragma once

#include <algorithm>
#include <chrono>
#include <mutex>

namespace fpga_stencil {

class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  /// `rate_per_s` tokens mature per second up to `burst` held at once.
  /// burst <= 0 defaults to max(rate_per_s, 1). rate_per_s <= 0 means
  /// unlimited. A fresh bucket starts full (a quiet tenant may burst).
  explicit TokenBucket(double rate_per_s = 0.0, double burst = 0.0)
      : rate_(rate_per_s),
        burst_(burst > 0.0 ? burst : std::max(rate_per_s, 1.0)),
        tokens_(burst_),
        last_(Clock::now()) {}

  TokenBucket(const TokenBucket&) = delete;
  TokenBucket& operator=(const TokenBucket&) = delete;

  /// Takes `n` tokens if available at `now`; false leaves the bucket
  /// untouched (no partial debit, no debt).
  [[nodiscard]] bool try_acquire_at(Clock::time_point now, double n = 1.0) {
    if (rate_ <= 0.0) return true;
    std::lock_guard<std::mutex> lock(mu_);
    refill(now);
    if (tokens_ + 1e-9 < n) return false;
    tokens_ -= n;
    return true;
  }

  [[nodiscard]] bool try_acquire(double n = 1.0) {
    return try_acquire_at(Clock::now(), n);
  }

  /// How long past `now` until `n` tokens will have matured; zero when
  /// they already have. This is the retry-after hint: the earliest
  /// moment a retry *can* succeed (competing tenants permitting).
  [[nodiscard]] std::chrono::nanoseconds time_until_at(Clock::time_point now,
                                                       double n = 1.0) const {
    if (rate_ <= 0.0) return std::chrono::nanoseconds(0);
    std::lock_guard<std::mutex> lock(mu_);
    const double have =
        std::min(burst_, tokens_ + elapsed_seconds(last_, now) * rate_);
    if (have + 1e-9 >= n) return std::chrono::nanoseconds(0);
    const double secs = (n - have) / rate_;
    return std::chrono::nanoseconds(
        std::chrono::nanoseconds::rep(secs * 1e9) + 1);
  }

  [[nodiscard]] std::chrono::nanoseconds time_until(double n = 1.0) const {
    return time_until_at(Clock::now(), n);
  }

  [[nodiscard]] double rate_per_s() const { return rate_; }
  [[nodiscard]] double burst() const { return burst_; }
  /// false = a zero-rate bucket that admits everything.
  [[nodiscard]] bool limited() const { return rate_ > 0.0; }

 private:
  static double elapsed_seconds(Clock::time_point from, Clock::time_point to) {
    if (to <= from) return 0.0;  // callers may pass out-of-order clocks
    return std::chrono::duration<double>(to - from).count();
  }

  void refill(Clock::time_point now) {
    tokens_ = std::min(burst_, tokens_ + elapsed_seconds(last_, now) * rate_);
    if (now > last_) last_ = now;
  }

  const double rate_;
  const double burst_;
  mutable std::mutex mu_;
  double tokens_;
  Clock::time_point last_;
};

}  // namespace fpga_stencil
