// WeightedClassQueue: the QoS scheduling half of the admission queue.
//
// Items arrive tagged with a service class (0 = most favored) and an
// integer priority within that class. pop() serves classes by weighted
// round-robin -- per refill round, class k may dequeue up to weight[k]
// items -- so a flood of batch work cannot starve interactive jobs, yet
// batch still drains at its guaranteed share (no absolute starvation,
// unlike strict priority). Within one class, higher `priority` first,
// FIFO among equals, which preserves the engine's submit-order
// guarantee for same-class same-priority jobs.
//
// The container is intentionally NOT internally synchronized: it lives
// inside StencilEngine behind the engine mutex, exactly like the plain
// std::deque it replaces. for_each exists so drain/shutdown can sweep
// cancellation over everything still parked.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <vector>

namespace fpga_stencil {

template <typename T>
class WeightedClassQueue {
 public:
  /// One weight per class; weight[k] <= 0 is clamped to 1. Class count is
  /// fixed at construction (out-of-range pushes clamp to the last class).
  explicit WeightedClassQueue(std::vector<int> weights = {1})
      : weights_(std::move(weights)) {
    if (weights_.empty()) weights_.push_back(1);
    for (int& w : weights_) {
      if (w <= 0) w = 1;
    }
    classes_.resize(weights_.size());
    credits_.assign(weights_.size(), 0);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t num_classes() const { return classes_.size(); }

  void push(std::size_t cls, int priority, T item) {
    if (cls >= classes_.size()) cls = classes_.size() - 1;
    classes_[cls][priority].push_back(std::move(item));
    ++size_;
  }

  /// Dequeues per the weighted round-robin policy. Precondition: !empty().
  T pop() {
    // Two sweeps at most: if every non-empty class exhausted its credit,
    // refill and go again -- the refill makes progress by construction.
    for (int sweep = 0; sweep < 2; ++sweep) {
      for (std::size_t k = 0; k < classes_.size(); ++k) {
        if (classes_[k].empty() || credits_[k] <= 0) continue;
        --credits_[k];
        return pop_from_class(k);
      }
      for (std::size_t k = 0; k < classes_.size(); ++k) {
        credits_[k] = weights_[k];
      }
    }
    // Unreachable when !empty(): the post-refill sweep always finds work.
    return pop_from_class(first_non_empty());
  }

  /// Visits every queued item (scheduling order within class, classes in
  /// index order). The sweep drain/shutdown uses to cancel stragglers.
  void for_each(const std::function<void(T&)>& fn) {
    for (auto& cls : classes_) {
      for (auto& [prio, dq] : cls) {
        for (T& item : dq) fn(item);
      }
    }
  }

  void clear() {
    for (auto& cls : classes_) cls.clear();
    size_ = 0;
  }

 private:
  T pop_from_class(std::size_t k) {
    auto it = classes_[k].begin();  // highest priority (descending map)
    T item = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) classes_[k].erase(it);
    --size_;
    return item;
  }

  [[nodiscard]] std::size_t first_non_empty() const {
    for (std::size_t k = 0; k < classes_.size(); ++k) {
      if (!classes_[k].empty()) return k;
    }
    return 0;
  }

  std::vector<int> weights_;
  std::vector<int> credits_;
  /// Per class: priority -> FIFO of items, highest priority first.
  std::vector<std::map<int, std::deque<T>, std::greater<int>>> classes_;
  std::size_t size_ = 0;
};

}  // namespace fpga_stencil
