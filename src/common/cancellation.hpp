// Cooperative cancellation: a shared token observed by every execution
// path at block (or finer) granularity.
//
// A CancellationToken is a copyable handle to shared cancel state; all
// copies observe the same request. Cancellation is *cooperative*: nothing
// is interrupted pre-emptively. The streaming core checks the token every
// few hundred vectors (core/block_streamer), the block-parallel workers
// check it before claiming each block, the concurrent write kernel polls
// it between channel reads, and the resilient runner checks it between
// pass attempts -- so a cancelled run unwinds at block granularity with
// all worker threads joined and all pooled buffers released, never
// mid-write into shared state.
//
// Deadlines ride the same mechanism: a token built with with_deadline /
// with_timeout trips itself the first time anyone checks it past the
// deadline, so per-job deadlines are enforced by exactly the code that
// already honors cancel(). The cause distinguishes the two
// (CancelCause::cancelled vs CancelCause::deadline), and the matching
// error types let callers unwind both with one catch (DeadlineExceededError
// derives from CancelledError) while still telling them apart.
//
// A default-constructed token is *null*: it never cancels and costs one
// pointer test to check, so fault-free paths stay hot.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace fpga_stencil {

/// Why a token tripped. `none` means it has not tripped.
enum class CancelCause : int { none = 0, cancelled = 1, deadline = 2 };

/// A run was cancelled cooperatively; the job's output is discarded. The
/// input grid of the pass being unwound is never half-written (output
/// only commits on pass completion), so non-cancelled work is unaffected.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

/// The token's deadline expired before the run finished. Derives from
/// CancelledError so one handler unwinds both; the engine maps the types
/// to distinct terminal job states.
class DeadlineExceededError : public CancelledError {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : CancelledError(what) {}
};

class CancellationToken {
 public:
  /// Null token: valid() is false and cancel_requested() is always false.
  CancellationToken() = default;

  /// A live token with no deadline; trips only via request_cancel().
  [[nodiscard]] static CancellationToken make() {
    CancellationToken t;
    t.state_ = std::make_shared<State>();
    return t;
  }

  /// A live token that additionally trips itself (cause = deadline) the
  /// first time it is checked at or after `deadline`.
  [[nodiscard]] static CancellationToken with_deadline(
      std::chrono::steady_clock::time_point deadline) {
    CancellationToken t = make();
    t.state_->has_deadline = true;
    t.state_->deadline = deadline;
    return t;
  }

  [[nodiscard]] static CancellationToken with_timeout(
      std::chrono::milliseconds timeout) {
    return with_deadline(std::chrono::steady_clock::now() + timeout);
  }

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// True once the token has tripped (explicit cancel or expired
  /// deadline). Deadline expiry is latched here on first observation, so
  /// cause() and cancelled_at() are stable afterwards.
  [[nodiscard]] bool cancel_requested() const {
    if (!state_) return false;
    if (state_->cause.load(std::memory_order_acquire) !=
        int(CancelCause::none)) {
      return true;
    }
    if (state_->has_deadline &&
        std::chrono::steady_clock::now() >= state_->deadline) {
      trip(*state_, CancelCause::deadline, state_->deadline);
      return true;
    }
    return false;
  }

  [[nodiscard]] CancelCause cause() const {
    if (!state_) return CancelCause::none;
    return CancelCause(state_->cause.load(std::memory_order_acquire));
  }

  /// Requests cooperative cancellation; idempotent, thread-safe. A token
  /// that already tripped (either cause) keeps its first cause.
  void request_cancel() const {
    if (!state_) return;
    trip(*state_, CancelCause::cancelled, std::chrono::steady_clock::now());
  }

  /// Throws CancelledError / DeadlineExceededError if the token tripped.
  /// The cancellation seam every execution path calls.
  void throw_if_cancelled() const {
    if (!cancel_requested()) return;
    if (cause() == CancelCause::deadline) {
      throw DeadlineExceededError("job deadline exceeded");
    }
    throw CancelledError("job cancelled");
  }

  /// When the token tripped: the request_cancel() call time, or the
  /// deadline itself for deadline trips. Meaningful only after
  /// cancel_requested() returned true (cancel-latency measurements).
  [[nodiscard]] std::chrono::steady_clock::time_point cancelled_at() const {
    if (!state_) return {};
    return std::chrono::steady_clock::time_point(std::chrono::nanoseconds(
        state_->cancelled_at_ns.load(std::memory_order_acquire)));
  }

 private:
  struct State {
    std::atomic<int> cause{int(CancelCause::none)};
    std::atomic<std::int64_t> cancelled_at_ns{0};
    bool has_deadline = false;  ///< set before the token is shared
    std::chrono::steady_clock::time_point deadline{};
  };

  /// First trip wins. The timestamp latches before the cause so a reader
  /// that observes cause != none always finds a nonzero cancelled_at.
  static void trip(State& s, CancelCause cause,
                   std::chrono::steady_clock::time_point when) {
    std::int64_t expected_ns = 0;
    s.cancelled_at_ns.compare_exchange_strong(
        expected_ns,
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            when.time_since_epoch())
            .count(),
        std::memory_order_acq_rel);
    int expected = int(CancelCause::none);
    s.cause.compare_exchange_strong(expected, int(cause),
                                    std::memory_order_acq_rel);
  }

  std::shared_ptr<State> state_;
};

}  // namespace fpga_stencil
