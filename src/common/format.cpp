#include "common/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace fpga_stencil {

std::string format_fixed(double v, int prec) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", prec, v);
  return std::string(buf.data());
}

std::string format_percent(double fraction) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%.0f%%", fraction * 100.0);
  return std::string(buf.data());
}

std::string format_grouped(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < kUnits.size()) {
    v /= 1024.0;
    ++unit;
  }
  return format_fixed(v, unit == 0 ? 0 : 2) + " " + kUnits[unit];
}

std::string format_dims2(std::uint64_t x, std::uint64_t y) {
  return std::to_string(x) + "x" + std::to_string(y);
}

std::string format_dims3(std::uint64_t x, std::uint64_t y, std::uint64_t z) {
  return format_dims2(x, y) + "x" + std::to_string(z);
}

}  // namespace fpga_stencil
