#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace fpga_stencil {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------

void JsonWriter::newline_indent() {
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_value() {
  if (stack_.empty()) return;  // top-level document value
  if (stack_.back() == Scope::object) {
    if (!key_pending_) {
      throw std::logic_error("JsonWriter: object value requires a key()");
    }
    key_pending_ = false;
    return;  // key() already emitted separator and indent
  }
  if (!first_in_scope_) os_ << ',';
  newline_indent();
  first_in_scope_ = false;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Scope::object) {
    throw std::logic_error("JsonWriter: key() outside an object");
  }
  if (key_pending_) throw std::logic_error("JsonWriter: dangling key()");
  if (!first_in_scope_) os_ << ',';
  newline_indent();
  first_in_scope_ = false;
  os_ << '"' << json_escape(k) << "\": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Scope::object);
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::object || key_pending_) {
    throw std::logic_error("JsonWriter: unbalanced end_object()");
  }
  const bool empty = first_in_scope_;
  stack_.pop_back();
  if (!empty) newline_indent();
  os_ << '}';
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Scope::array);
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::array) {
    throw std::logic_error("JsonWriter: unbalanced end_array()");
  }
  const bool empty = first_in_scope_;
  stack_.pop_back();
  if (!empty) newline_indent();
  os_ << ']';
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN literals
    os_ << "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

// ---------------------------------------------------------------------
// json_is_valid: strict recursive-descent checker
// ---------------------------------------------------------------------

namespace {

struct JsonChecker {
  std::string_view s;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  [[nodiscard]] bool eof() const { return pos >= s.size(); }
  [[nodiscard]] char peek() const { return s[pos]; }

  void skip_ws() {
    while (!eof() && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                      s[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (eof() || s[pos] != c) return false;
    ++pos;
    return true;
  }

  bool literal(std::string_view lit) {
    if (s.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = s[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (eof()) return false;
        const char e = s[pos++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(s[pos]))) {
              return false;
            }
            ++pos;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(s[pos]))) {
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(s[pos]))) ++pos;
    return true;
  }

  bool number() {
    consume('-');
    if (consume('0')) {
      // leading zero must not be followed by more digits
      if (!eof() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
        return false;
      }
    } else if (!digits()) {
      return false;
    }
    if (consume('.') && !digits()) return false;
    if (!eof() && (s[pos] == 'e' || s[pos] == 'E')) {
      ++pos;
      if (!eof() && (s[pos] == '+' || s[pos] == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (eof()) return false;
    bool ok = false;
    switch (peek()) {
      case '{': ok = object(); break;
      case '[': ok = array(); break;
      case '"': ok = string(); break;
      case 't': ok = literal("true"); break;
      case 'f': ok = literal("false"); break;
      case 'n': ok = literal("null"); break;
      default: ok = number(); break;
    }
    --depth;
    return ok;
  }

  bool object() {
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
};

}  // namespace

bool json_is_valid(std::string_view text) {
  JsonChecker c{text};
  if (!c.value()) return false;
  c.skip_ws();
  return c.eof();
}

// ---------------------------------------------------------------------
// JsonValue / json_parse: small DOM over the same grammar
// ---------------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::object) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::as_double(double fallback) const {
  return type == Type::number ? num_v : fallback;
}

std::int64_t JsonValue::as_int64(std::int64_t fallback) const {
  return type == Type::number ? static_cast<std::int64_t>(num_v) : fallback;
}

std::string JsonValue::as_string(std::string fallback) const {
  return type == Type::string ? str_v : std::move(fallback);
}

bool JsonValue::as_bool(bool fallback) const {
  return type == Type::boolean ? bool_v : fallback;
}

namespace {

struct JsonParser {
  std::string_view s;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  [[nodiscard]] bool eof() const { return pos >= s.size(); }

  void skip_ws() {
    while (!eof() && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                      s[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (eof() || s[pos] != c) return false;
    ++pos;
    return true;
  }

  bool literal(std::string_view lit) {
    if (s.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  bool string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (!eof()) {
      const char c = s[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return false;
      const char e = s[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(s[pos]))) {
              return false;
            }
            const char h = s[pos++];
            code = code * 16 +
                   unsigned(h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          // The writer only ever \u-escapes control characters; decode the
          // ASCII range and substitute '?' for anything wider rather than
          // growing a UTF-16 transcoder here.
          out += code < 0x80 ? char(code) : '?';
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool number(double& out) {
    const std::size_t start = pos;
    JsonChecker shape{s, pos};
    if (!shape.number()) return false;
    pos = shape.pos;
    out = std::strtod(std::string(s.substr(start, pos - start)).c_str(),
                      nullptr);
    return true;
  }

  bool value(JsonValue& out) {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (eof()) return false;
    bool ok = false;
    switch (s[pos]) {
      case '{': ok = object(out); break;
      case '[': ok = array(out); break;
      case '"':
        out.type = JsonValue::Type::string;
        ok = string(out.str_v);
        break;
      case 't':
        out.type = JsonValue::Type::boolean;
        out.bool_v = true;
        ok = literal("true");
        break;
      case 'f':
        out.type = JsonValue::Type::boolean;
        out.bool_v = false;
        ok = literal("false");
        break;
      case 'n':
        out.type = JsonValue::Type::null;
        ok = literal("null");
        break;
      default:
        out.type = JsonValue::Type::number;
        ok = number(out.num_v);
        break;
    }
    --depth;
    return ok;
  }

  bool object(JsonValue& out) {
    out.type = JsonValue::Type::object;
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      JsonValue member;
      if (!value(member)) return false;
      out.members.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array(JsonValue& out) {
    out.type = JsonValue::Type::array;
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue item;
      if (!value(item)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  JsonParser p{text};
  JsonValue root;
  if (!p.value(root)) return std::nullopt;
  p.skip_ws();
  if (!p.eof()) return std::nullopt;
  return root;
}

}  // namespace fpga_stencil
