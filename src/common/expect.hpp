// Error-handling helpers used across the library.
//
// The library reports contract violations (bad configurations, out-of-range
// parameters) by throwing std::invalid_argument / std::logic_error via the
// FPGASTENCIL_EXPECT macros, so that host code -- like a real OpenCL host
// program reacting to a failed kernel build -- can recover and try another
// configuration.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fpga_stencil {

/// Thrown when a requested accelerator configuration cannot be realized on
/// the modeled device (the moral equivalent of a failed place-and-route).
class ResourceError : public std::runtime_error {
 public:
  explicit ResourceError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a configuration violates a structural constraint of the
/// architecture (e.g. a block too small for the requested halo).
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::string& what) : std::invalid_argument(what) {}
};

namespace detail {

template <typename Exception>
[[noreturn]] inline void raise(const char* cond, const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement `" << cond << "` failed";
  if (!msg.empty()) os << ": " << msg;
  throw Exception(os.str());
}

}  // namespace detail
}  // namespace fpga_stencil

/// Validates a configuration precondition; throws ConfigError on failure.
#define FPGASTENCIL_EXPECT(cond, msg)                                   \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::fpga_stencil::detail::raise<::fpga_stencil::ConfigError>(       \
          #cond, __FILE__, __LINE__, (msg));                            \
    }                                                                   \
  } while (0)

/// Validates an internal invariant; throws std::logic_error on failure.
#define FPGASTENCIL_ASSERT(cond, msg)                                   \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::fpga_stencil::detail::raise<::std::logic_error>(                \
          #cond, __FILE__, __LINE__, (msg));                            \
    }                                                                   \
  } while (0)
