// Wall-clock stopwatch for host-side measurements (CPU baseline, simulator
// microbenchmarks).
#pragma once

#include <chrono>
#include <cstdint>

namespace fpga_stencil {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed monotonic nanoseconds since construction or the last reset().
  /// Integer all the way: span timestamps and blocked-time counters must
  /// not round-trip through a double of seconds.
  [[nodiscard]] std::int64_t nanoseconds() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fpga_stencil
