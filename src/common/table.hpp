// Plain-text table renderer used by every bench binary to print paper-style
// tables (Table I..V rows) with aligned columns.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace fpga_stencil {

/// Accumulates rows of string cells and renders them with per-column
/// alignment. Intentionally minimal: the bench binaries are the only users.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; the row may be shorter than the header (missing cells
  /// render empty) but must not be longer.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Renders with a header rule and column separators.
  void render(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace fpga_stencil
