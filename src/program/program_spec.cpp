#include "program/program_spec.hpp"

#include <algorithm>
#include <bit>

#include "common/expect.hpp"
#include "engine/plan_cache.hpp"  // tap_set_fingerprint

namespace fpga_stencil {

std::int64_t grid_variant_nx(const GridVariant& g) {
  return std::visit([](const auto& grid) { return grid.nx(); }, g);
}

std::int64_t grid_variant_ny(const GridVariant& g) {
  return std::visit([](const auto& grid) { return grid.ny(); }, g);
}

std::int64_t grid_variant_nz(const GridVariant& g) {
  return std::holds_alternative<Grid3D<float>>(g)
             ? std::get<Grid3D<float>>(g).nz()
             : 1;
}

int grid_variant_dims(const GridVariant& g) {
  return std::holds_alternative<Grid3D<float>>(g) ? 3 : 2;
}

std::int64_t grid_variant_cells(const GridVariant& g) {
  return std::visit(
      [](const auto& grid) { return std::int64_t(grid.size()); }, g);
}

const float* grid_variant_data(const GridVariant& g) {
  return std::visit([](const auto& grid) { return grid.data(); }, g);
}

const FieldSpec* ProgramSpec::find_field(std::string_view name) const {
  for (const FieldSpec& f : fields) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

int ProgramSpec::field_index(std::string_view name) const {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == name) return int(i);
  }
  return -1;
}

int ProgramSpec::node_index(std::string_view name) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].name == name) return int(i);
  }
  return -1;
}

int ProgramSpec::dims() const {
  FPGASTENCIL_EXPECT(!fields.empty(), "program has no fields");
  return grid_variant_dims(fields.front().data);
}

TapSet ProgramSpec::stamped_taps(std::size_t i) const {
  const KernelNode& node = nodes.at(i);
  const FieldSpec* in = find_field(node.reads);
  FPGASTENCIL_EXPECT(in != nullptr, "node '" + node.name +
                                        "' reads unknown field '" +
                                        node.reads + "'");
  return node.taps.with_boundary(in->boundary);
}

std::vector<std::vector<bool>> ProgramSpec::dependency_closure() const {
  const std::size_t n = nodes.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::string& dep : nodes[i].after) {
      const int j = node_index(dep);
      FPGASTENCIL_EXPECT(j >= 0, "node '" + nodes[i].name +
                                     "' depends on unknown node '" + dep +
                                     "'");
      adj[i].push_back(std::size_t(j));
    }
  }
  // Iterative DFS from each node; terminates even on (invalid) cyclic
  // input, so validate() can call this before acyclicity is established.
  std::vector<std::vector<bool>> closure(n, std::vector<bool>(n, false));
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < n; ++i) {
    stack.assign(adj[i].begin(), adj[i].end());
    while (!stack.empty()) {
      const std::size_t j = stack.back();
      stack.pop_back();
      if (closure[i][j]) continue;
      closure[i][j] = true;
      stack.insert(stack.end(), adj[j].begin(), adj[j].end());
    }
  }
  return closure;
}

std::vector<std::size_t> ProgramSpec::schedule() const {
  const std::size_t n = nodes.size();
  std::vector<int> indegree(n, 0);
  std::vector<std::vector<std::size_t>> dependents(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::string& dep : nodes[i].after) {
      const int j = node_index(dep);
      FPGASTENCIL_EXPECT(j >= 0, "node '" + nodes[i].name +
                                     "' depends on unknown node '" + dep +
                                     "'");
      ++indegree[i];
      dependents[std::size_t(j)].push_back(i);
    }
  }
  // Kahn's algorithm with ties broken by declaration index, so the
  // schedule -- and therefore every floating-point combine order -- is a
  // pure function of the spec.
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> emitted(n, false);
  for (std::size_t emitted_count = 0; emitted_count < n;) {
    std::size_t pick = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!emitted[i] && indegree[i] == 0) {
        pick = i;
        break;
      }
    }
    FPGASTENCIL_EXPECT(pick < n,
                       "program dependency graph has a cycle (every "
                       "unscheduled node still has unmet `after` edges)");
    emitted[pick] = true;
    order.push_back(pick);
    ++emitted_count;
    for (const std::size_t d : dependents[pick]) --indegree[d];
  }
  return order;
}

void ProgramSpec::validate() const {
  FPGASTENCIL_EXPECT(!fields.empty(), "program needs at least one field");
  FPGASTENCIL_EXPECT(!nodes.empty(), "program needs at least one node");
  FPGASTENCIL_EXPECT(steps >= 0, "program steps must be non-negative");

  const int d = dims();
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const FieldSpec& f = fields[i];
    FPGASTENCIL_EXPECT(!f.name.empty(), "field names must be non-empty");
    FPGASTENCIL_EXPECT(field_index(f.name) == int(i),
                       "duplicate field name '" + f.name + "'");
    FPGASTENCIL_EXPECT(grid_variant_dims(f.data) == d,
                       "field '" + f.name +
                           "' mixes dimensionalities with the program");
  }

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const KernelNode& node = nodes[i];
    FPGASTENCIL_EXPECT(!node.name.empty(), "node names must be non-empty");
    FPGASTENCIL_EXPECT(node_index(node.name) == int(i),
                       "duplicate node name '" + node.name + "'");
    FPGASTENCIL_EXPECT(node.iterations >= 0,
                       "node '" + node.name +
                           "' iterations must be non-negative");
    const FieldSpec* in = find_field(node.reads);
    const FieldSpec* out = find_field(node.writes);
    FPGASTENCIL_EXPECT(in != nullptr, "node '" + node.name +
                                          "' reads unknown field '" +
                                          node.reads + "'");
    FPGASTENCIL_EXPECT(out != nullptr, "node '" + node.name +
                                           "' writes unknown field '" +
                                           node.writes + "'");
    FPGASTENCIL_EXPECT(node.config.dims == d && node.taps.dims() == d,
                       "node '" + node.name +
                           "' disagrees with the program dimensionality");
    FPGASTENCIL_EXPECT(node.taps.radius() <= node.config.radius,
                       "node '" + node.name +
                           "' tap radius exceeds its configured radius");
    FPGASTENCIL_EXPECT(
        grid_variant_nx(in->data) == grid_variant_nx(out->data) &&
            grid_variant_ny(in->data) == grid_variant_ny(out->data) &&
            grid_variant_nz(in->data) == grid_variant_nz(out->data),
        "node '" + node.name + "' maps field '" + node.reads +
            "' onto differently-shaped field '" + node.writes + "'");
    if (in->boundary.kind == BoundaryKind::reflective) {
      const std::int64_t r = node.taps.radius();
      FPGASTENCIL_EXPECT(
          grid_variant_nx(in->data) > r && grid_variant_ny(in->data) > r &&
              (d == 2 || grid_variant_nz(in->data) > r),
          "reflective field '" + in->name +
              "' needs every extent > the reading node's radius");
    }
    for (const std::string& dep : node.after) {
      FPGASTENCIL_EXPECT(node_index(dep) >= 0,
                         "node '" + node.name +
                             "' depends on unknown node '" + dep + "'");
      FPGASTENCIL_EXPECT(dep != node.name,
                         "node '" + node.name + "' depends on itself");
    }
  }

  (void)schedule();  // throws on a cycle
  const std::vector<std::vector<bool>> closure = dependency_closure();

  // Writer rules: every pair of writers of one field must be ordered by
  // the dependency relation (their combine order is then a pure function
  // of the DAG); at most one assign writer, preceding every add.
  for (const FieldSpec& f : fields) {
    std::vector<std::size_t> writers;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].writes == f.name) writers.push_back(i);
    }
    int assign_writer = -1;
    for (const std::size_t w : writers) {
      if (nodes[w].combine != CombineOp::assign) continue;
      FPGASTENCIL_EXPECT(assign_writer < 0,
                         "field '" + f.name +
                             "' has multiple assign writers ('" +
                             nodes[std::size_t(assign_writer)].name +
                             "', '" + nodes[w].name + "')");
      assign_writer = int(w);
    }
    for (std::size_t a = 0; a < writers.size(); ++a) {
      for (std::size_t b = a + 1; b < writers.size(); ++b) {
        const std::size_t wa = writers[a], wb = writers[b];
        FPGASTENCIL_EXPECT(
            closure[wa][wb] || closure[wb][wa],
            "writers '" + nodes[wa].name + "' and '" + nodes[wb].name +
                "' of field '" + f.name +
                "' are not ordered by `after` edges");
      }
      if (assign_writer >= 0 && writers[a] != std::size_t(assign_writer)) {
        FPGASTENCIL_EXPECT(
            closure[writers[a]][std::size_t(assign_writer)],
            "assign writer '" + nodes[std::size_t(assign_writer)].name +
                "' of field '" + f.name +
                "' must precede add writer '" + nodes[writers[a]].name +
                "'");
      }
    }
  }

  // Reader rules: a node that depends on one writer of its input field
  // must be ordered against all of them (else the value it reads depends
  // on tie-breaks); a work field is scratch, so reading it without
  // depending on a writer reads stale data -- rejected.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const FieldSpec& f = *find_field(nodes[i].reads);
    bool depends_on_writer = false;
    for (std::size_t w = 0; w < nodes.size(); ++w) {
      if (nodes[w].writes == f.name && closure[i][w]) {
        depends_on_writer = true;
        break;
      }
    }
    if (depends_on_writer) {
      for (std::size_t w = 0; w < nodes.size(); ++w) {
        if (nodes[w].writes != f.name || w == i) continue;
        FPGASTENCIL_EXPECT(closure[i][w] || closure[w][i],
                           "node '" + nodes[i].name + "' reads field '" +
                               f.name +
                               "' but is not ordered against its writer '" +
                               nodes[w].name + "'");
      }
    }
    if (f.work) {
      FPGASTENCIL_EXPECT(depends_on_writer,
                         "node '" + nodes[i].name + "' reads work field '" +
                             f.name + "' before it is written");
    }
  }
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_mix(std::uint64_t& h, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (8 * byte)) & 0xffu;
    h *= kFnvPrime;
  }
}

void fnv_mix_str(std::uint64_t& h, const std::string& s) {
  fnv_mix(h, std::uint64_t(s.size()));
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t ProgramSpec::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, std::uint64_t(fields.size()));
  for (const FieldSpec& f : fields) {
    fnv_mix_str(h, f.name);
    fnv_mix(h, std::uint64_t(grid_variant_dims(f.data)));
    fnv_mix(h, std::uint64_t(grid_variant_nx(f.data)));
    fnv_mix(h, std::uint64_t(grid_variant_ny(f.data)));
    fnv_mix(h, std::uint64_t(grid_variant_nz(f.data)));
    fnv_mix(h, std::uint64_t(f.boundary.kind));
    fnv_mix(h, std::bit_cast<std::uint32_t>(f.boundary.value));
    fnv_mix(h, f.work ? 1 : 0);
  }
  fnv_mix(h, std::uint64_t(nodes.size()));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const KernelNode& node = nodes[i];
    fnv_mix_str(h, node.name);
    fnv_mix(h, tap_set_fingerprint(stamped_taps(i)));
    fnv_mix(h, std::uint64_t(node.config.dims));
    fnv_mix(h, std::uint64_t(node.config.radius));
    fnv_mix(h, std::uint64_t(node.config.parvec));
    fnv_mix(h, std::uint64_t(node.config.partime));
    fnv_mix(h, std::uint64_t(node.config.stage_lag));
    fnv_mix(h, std::uint64_t(node.config.bsize_x));
    fnv_mix(h, std::uint64_t(node.config.bsize_y));
    fnv_mix(h, node.config.use_specialized_kernels ? 1 : 0);
    fnv_mix_str(h, node.reads);
    fnv_mix_str(h, node.writes);
    fnv_mix(h, std::uint64_t(node.combine));
    fnv_mix(h, std::uint64_t(node.iterations));
    fnv_mix(h, std::uint64_t(node.after.size()));
    for (const std::string& dep : node.after) {
      fnv_mix(h, std::uint64_t(node_index(dep)));
    }
  }
  return h;
}

ProgramSpec single_stencil_program(TapSet taps, AcceleratorConfig config,
                                   GridVariant grid, int iterations) {
  ProgramSpec program;
  FieldSpec field;
  field.name = "u";
  field.boundary = taps.boundary();
  field.data = std::move(grid);
  program.fields.push_back(std::move(field));
  KernelNode node{.name = "stencil",
                  .taps = std::move(taps),
                  .config = config,
                  .reads = "u",
                  .writes = "u",
                  .combine = CombineOp::assign,
                  .iterations = iterations,
                  .after = {}};
  program.nodes.push_back(std::move(node));
  program.steps = 1;
  return program;
}

namespace detail {

void combine_field(CombineOp op, bool initialized, const float* front,
                   const float* result, float* back, std::int64_t cells) {
  if (op == CombineOp::assign) {
    std::copy(result, result + cells, back);
  } else if (!initialized) {
    for (std::int64_t i = 0; i < cells; ++i) back[i] = front[i] + result[i];
  } else {
    for (std::int64_t i = 0; i < cells; ++i) back[i] += result[i];
  }
}

std::vector<bool> reads_back_flags(const ProgramSpec& program) {
  const std::vector<std::vector<bool>> closure = program.dependency_closure();
  std::vector<bool> flags(program.nodes.size(), false);
  for (std::size_t i = 0; i < program.nodes.size(); ++i) {
    for (std::size_t w = 0; w < program.nodes.size(); ++w) {
      if (closure[i][w] &&
          program.nodes[w].writes == program.nodes[i].reads) {
        flags[i] = true;
        break;
      }
    }
  }
  return flags;
}

}  // namespace detail

}  // namespace fpga_stencil
