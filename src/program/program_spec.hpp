// Stencil program IR: multi-field DAGs with boundary conditions
// (docs/PROGRAMS.md).
//
// A ProgramSpec names a set of grid fields -- each with its own initial
// data and BoundaryCondition -- and a DAG of KernelNodes, each applying
// one tap set to one field and combining the result into another. The
// program advances all fields together for `steps` timesteps; within a
// step the nodes run in a deterministic topological order of the
// explicit `after` edges. This is the vocabulary coupled multi-field
// workloads (FDTD E/H updates, damped wave equations) submit through the
// one front door: JobSpec carries a shared_ptr<const ProgramSpec> and
// StencilEngine / EngineCluster execute it via ProgramExecutor.
//
// Semantics per timestep (the contract ProgramExecutor and the golden
// reference model both implement, bit-for-bit):
//   - every field has a `front` buffer: its state at the start of the
//     step, immutable until the step ends;
//   - a node writing field f targets f's `back` buffer. The first writer
//     initializes it (assign: back = result; add: back = front + result,
//     elementwise in index order); later writers must be `add` and do
//     back += result;
//   - a node reading field f reads back(f) when it transitively depends
//     (via `after`) on a writer of f this step, else front(f);
//   - at the end of the step every written field swaps back into front.
// Validation (ProgramSpec::validate) rejects every program whose result
// would depend on scheduling tie-breaks rather than declared edges.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "grid/grid.hpp"
#include "stencil/accel_config.hpp"
#include "stencil/tap_set.hpp"

namespace fpga_stencil {

/// Either grid dimensionality, by value. Engine jobs and program fields
/// work on whichever alternative is held; cfg.dims must agree.
using GridVariant = std::variant<Grid2D<float>, Grid3D<float>>;

/// Extents of whichever grid the variant holds (nz == 1 for 2D).
[[nodiscard]] std::int64_t grid_variant_nx(const GridVariant& g);
[[nodiscard]] std::int64_t grid_variant_ny(const GridVariant& g);
[[nodiscard]] std::int64_t grid_variant_nz(const GridVariant& g);
[[nodiscard]] int grid_variant_dims(const GridVariant& g);
[[nodiscard]] std::int64_t grid_variant_cells(const GridVariant& g);
[[nodiscard]] const float* grid_variant_data(const GridVariant& g);

/// How a node's result lands in its output field's back buffer.
enum class CombineOp : std::uint8_t {
  assign,  ///< back = result (at most one per field per step, first)
  add,     ///< back += result (back = front + result for the first writer)
};

[[nodiscard]] constexpr const char* combine_op_name(CombineOp op) {
  return op == CombineOp::assign ? "assign" : "add";
}

/// One named grid the program evolves.
struct FieldSpec {
  std::string name;
  /// Initial state; the extents are the field's shape for the whole run.
  GridVariant data;
  /// Resolves every out-of-grid tap of every node that reads this field;
  /// stamped onto the node's TapSet before planning, so fingerprints and
  /// PlanCache keys carry it.
  BoundaryCondition boundary{};
  /// Scratch field: participates in the computation but is excluded from
  /// chunked result delivery (JobSpec::sink). Still returned in
  /// JobResult::fields.
  bool work = false;
};

/// One stencil application: read one field through a tap set, combine the
/// result into another (possibly the same) field.
struct KernelNode {
  std::string name;
  /// The stencil. Its BoundaryCondition is ignored as written -- the read
  /// field's boundary is stamped on before planning (stamped_taps()).
  TapSet taps;
  /// Per-node accelerator geometry (dims must match the fields').
  AcceleratorConfig config;
  std::string reads;   ///< input field name
  std::string writes;  ///< output field name
  CombineOp combine = CombineOp::assign;
  /// Fused time steps of this node per program step (the temporal-blocking
  /// depth handed to the backend); usually 1 for coupled systems.
  int iterations = 1;
  /// Nodes that must complete earlier in the same step (DAG edges).
  std::vector<std::string> after;
};

/// A validated multi-field stencil program.
struct ProgramSpec {
  std::vector<FieldSpec> fields;
  std::vector<KernelNode> nodes;
  /// Program timesteps: every node runs once per step (in DAG order).
  int steps = 1;

  [[nodiscard]] const FieldSpec* find_field(std::string_view name) const;
  [[nodiscard]] int field_index(std::string_view name) const;  ///< -1 if absent
  [[nodiscard]] int node_index(std::string_view name) const;   ///< -1 if absent
  /// Dimensionality of the program (all fields agree; validated).
  [[nodiscard]] int dims() const;

  /// Node `i`'s taps with the read field's BoundaryCondition stamped on --
  /// the tap set that is actually planned and executed.
  [[nodiscard]] TapSet stamped_taps(std::size_t i) const;

  /// Full structural validation; throws ConfigError with a message naming
  /// the offending field/node on the first violation. Checks: non-empty
  /// unique names, known field references, dims/extent agreement, acyclic
  /// `after` edges, writer ordering (all writers of one field totally
  /// ordered by the dependency relation; at most one assign writer and it
  /// precedes every add), reader determinism (a reader that depends on one
  /// writer is ordered against all of them), work fields never read before
  /// a depended-on write, and reflective fields with extents > radius.
  void validate() const;

  /// Deterministic topological order of `nodes` (Kahn's algorithm, ties
  /// broken by declaration index). Throws ConfigError on a cycle.
  [[nodiscard]] std::vector<std::size_t> schedule() const;

  /// closure[i][j]: node i transitively depends on node j via `after`.
  /// Drives read-front-vs-back resolution and the validation rules above.
  [[nodiscard]] std::vector<std::vector<bool>> dependency_closure() const;

  /// Program identity: FNV over the field shapes/boundaries and the DAG
  /// of node fingerprints (taps + geometry + edges). The PlanCache key of
  /// the whole program, and what EngineCluster routes program jobs by.
  /// Deliberately excludes `steps` and field *values*, mirroring how
  /// single-stencil route keys exclude iterations and grid contents.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Adapter collapsing the classic single-stencil job shape onto the
/// program IR: one field ("u", carrying the tap set's own boundary
/// condition), one assign node ("stencil") reading and writing it with
/// all `iterations` fused, one program step. Running this program is
/// equivalent (bit-for-bit) to the corresponding direct run -- the
/// equivalence test in tests/program_test.cpp pins it.
[[nodiscard]] ProgramSpec single_stencil_program(TapSet taps,
                                                 AcceleratorConfig config,
                                                 GridVariant grid,
                                                 int iterations);

namespace detail {

/// Elementwise combine of one node's result into a field's back buffer --
/// shared verbatim by ProgramExecutor and the reference model so both
/// accumulate in the same index order (bit-exactness contract).
/// `initialized` says whether an earlier writer already populated `back`
/// this step; `front` is the step-start state (used by the first `add`).
void combine_field(CombineOp op, bool initialized, const float* front,
                   const float* result, float* back, std::int64_t cells);

/// For each node: whether it reads its input field's back buffer (it
/// transitively depends on a writer of that field this step) rather than
/// front. Shared by ProgramExecutor and the reference model so both
/// resolve reads identically.
[[nodiscard]] std::vector<bool> reads_back_flags(const ProgramSpec& program);

}  // namespace detail

}  // namespace fpga_stencil
