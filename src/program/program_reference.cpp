#include "program/program_reference.hpp"

#include <utility>

#include "stencil/reference.hpp"

namespace fpga_stencil {
namespace {

/// Per-field working state: `front` is the step-start value (immutable
/// within a step), `back` collects this step's writes.
struct FieldState {
  std::vector<float> front;
  std::vector<float> back;
  bool written = false;  ///< some writer populated `back` this step
  std::int64_t nx = 0, ny = 0, nz = 1;
};

/// Advances a copy of `src` by `iterations` applications of `taps` on the
/// naive reference executor; returns the advanced storage.
std::vector<float> reference_node_run(const TapSet& taps, int dims,
                                      const FieldState& f,
                                      const std::vector<float>& src,
                                      int iterations) {
  std::vector<float> buf(src);
  if (dims == 2) {
    Grid2D<float> g(f.nx, f.ny, std::move(buf));
    reference_run(taps, g, iterations);
    return g.release_storage();
  }
  Grid3D<float> g(f.nx, f.ny, f.nz, std::move(buf));
  reference_run(taps, g, iterations);
  return g.release_storage();
}

}  // namespace

std::vector<std::pair<std::string, GridVariant>> reference_run_program(
    const ProgramSpec& program) {
  program.validate();
  const std::vector<std::size_t> order = program.schedule();
  const std::vector<bool> reads_back = detail::reads_back_flags(program);
  const int dims = program.dims();

  std::vector<FieldState> states(program.fields.size());
  for (std::size_t i = 0; i < program.fields.size(); ++i) {
    const FieldSpec& f = program.fields[i];
    FieldState& s = states[i];
    s.nx = grid_variant_nx(f.data);
    s.ny = grid_variant_ny(f.data);
    s.nz = grid_variant_nz(f.data);
    const float* data = grid_variant_data(f.data);
    s.front.assign(data, data + grid_variant_cells(f.data));
  }

  std::vector<TapSet> stamped;
  stamped.reserve(program.nodes.size());
  for (std::size_t i = 0; i < program.nodes.size(); ++i) {
    stamped.push_back(program.stamped_taps(i));
  }

  for (int step = 0; step < program.steps; ++step) {
    for (const std::size_t idx : order) {
      const KernelNode& node = program.nodes[idx];
      FieldState& in = states[std::size_t(program.field_index(node.reads))];
      FieldState& out =
          states[std::size_t(program.field_index(node.writes))];
      const std::vector<float>& src = reads_back[idx] ? in.back : in.front;
      const std::vector<float> result =
          reference_node_run(stamped[idx], dims, in, src, node.iterations);
      if (out.back.size() != out.front.size()) {
        out.back.resize(out.front.size());
      }
      detail::combine_field(node.combine, out.written, out.front.data(),
                            result.data(), out.back.data(),
                            std::int64_t(out.front.size()));
      out.written = true;
    }
    for (FieldState& s : states) {
      if (s.written) {
        std::swap(s.front, s.back);
        s.written = false;
      }
    }
  }

  std::vector<std::pair<std::string, GridVariant>> result;
  result.reserve(program.fields.size());
  for (std::size_t i = 0; i < program.fields.size(); ++i) {
    FieldState& s = states[i];
    if (dims == 2) {
      result.emplace_back(program.fields[i].name,
                          Grid2D<float>(s.nx, s.ny, std::move(s.front)));
    } else {
      result.emplace_back(
          program.fields[i].name,
          Grid3D<float>(s.nx, s.ny, s.nz, std::move(s.front)));
    }
  }
  return result;
}

}  // namespace fpga_stencil
