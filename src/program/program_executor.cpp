#include "program/program_executor.hpp"

#include <algorithm>
#include <utility>

#include "common/cancellation.hpp"
#include "common/expect.hpp"
#include "core/block_parallel_accelerator.hpp"
#include "telemetry/telemetry.hpp"
#include "tune/host_autotuner.hpp"

namespace fpga_stencil {
namespace {

/// Everything resolved once per node before the timestep loop starts:
/// the boundary-stamped taps, the plan's config with the node's telemetry
/// hook restored, and the routed backend. Reused across all steps, so
/// plan-cache/tuner accounting ticks once per node per program run.
struct ResolvedNode {
  // TapSet has no default ctor; the placeholder is overwritten by
  // stamped_taps before any use.
  TapSet taps{2, 1, {Tap{0, 0, 0, 1.0f}}};
  AcceleratorConfig cfg;
  std::shared_ptr<const CachedPlan> plan;
  ExecutionBackend backend = ExecutionBackend::sync_sim;
  int in_field = 0;
  int out_field = 0;
};

/// Per-field runtime state. front/back are pool leases so every byte a
/// program touches comes from (and returns to) the engine's BufferPool.
struct FieldState {
  std::unique_ptr<BufferPool::Lease> front;
  std::unique_ptr<BufferPool::Lease> back;
  bool written = false;
  std::int64_t nx = 0, ny = 0, nz = 1, cells = 0;
};

}  // namespace

ProgramExecutor::ProgramExecutor(Services services)
    : services_(std::move(services)) {
  FPGASTENCIL_EXPECT(services_.plans != nullptr,
                     "ProgramExecutor requires a PlanCache");
  FPGASTENCIL_EXPECT(services_.pool != nullptr,
                     "ProgramExecutor requires a BufferPool");
  FPGASTENCIL_EXPECT(services_.telemetry != nullptr,
                     "ProgramExecutor requires a Telemetry sink");
}

std::string ProgramExecutor::m(const char* suffix) const {
  return services_.metrics_prefix + "." + suffix;
}

std::shared_ptr<const CachedPlan> ProgramExecutor::resolve_plan(
    const TapSet& taps, const AcceleratorConfig& cfg, std::int64_t nx,
    std::int64_t ny, std::int64_t nz, const CancellationToken* token,
    bool* hit_out) {
  bool hit = false;
  const PlanAutotune autotune{services_.autotune, services_.tuner, token};
  const std::shared_ptr<const CachedPlan> plan =
      services_.plans->lookup_or_build(taps, cfg, nx, ny, nz, &hit, autotune);
  MetricsRegistry& metrics = services_.telemetry->metrics();
  metrics.counter(hit ? m("plan_cache_hit") : m("plan_cache_miss")).add(1);
  if (plan->tuned) {
    // tuner.cache_hit counts every lookup served by an already-tuned plan
    // (plan-cache hit, or a build whose winner came from the TuningCache);
    // tuner.cache_miss counts the builds that probed.
    const bool probed = !hit && !plan->tuned_from_cache;
    metrics.counter(probed ? m("tuner.cache_miss") : m("tuner.cache_hit"))
        .add(1);
    if (probed) {
      metrics.counter(m("tuner.search_runs")).add(1);
      metrics.counter(m("tuner.search_candidates"))
          .add(plan->tuner_candidates_probed);
      metrics.counter(m("tuner.search_ns")).add(plan->tuner_search_ns);
    }
    if (plan->tuned_baseline_mcells > 0.0) {
      metrics.gauge(m("tuner.gain_milli"))
          .set(std::int64_t(plan->tuned_mcells / plan->tuned_baseline_mcells *
                            1000.0));
    }
  }
  if (hit_out) *hit_out = hit;
  return plan;
}

ExecutionBackend ProgramExecutor::route(const CachedPlan& plan) const {
  ExecutionBackend backend = services_.backend;
  if (backend == ExecutionBackend::automatic) {
    const std::int64_t p = requested_block_workers(services_.workers);
    backend = (p >= 2 && plan.blocking.total_blocks() >= 2 * p)
                  ? ExecutionBackend::block_parallel
                  : ExecutionBackend::sync_sim;
  }
  return backend;
}

namespace {

template <typename GridT>
RunStats run_planned_impl(const ProgramExecutor::Services& services,
                          const TapSet& taps, const AcceleratorConfig& cfg,
                          ExecutionBackend backend, GridT& grid,
                          int iterations, const CancellationToken* token,
                          const NodeRunOptions& opts) {
  FPGASTENCIL_EXPECT(backend == ExecutionBackend::sync_sim ||
                         backend == ExecutionBackend::block_parallel,
                     "run_planned handles the single-board backends only");
  BufferPool::Lease lease(*services.pool, grid.size());
  if (backend == ExecutionBackend::block_parallel) {
    RunOptions ropts;
    ropts.workers = services.workers;
    ropts.injector = opts.injector;
    ropts.watchdog_deadline = opts.watchdog_deadline;
    ropts.scratch = &lease.buffer();
    ropts.pool = services.pool;  // per-worker lane scratch
    if (token) ropts.cancel = *token;
    return run_block_parallel(taps, cfg, grid, iterations, ropts);
  }
  StencilAccelerator accel(taps, cfg);
  return accel.run(grid, iterations, &lease.buffer(), token);
}

}  // namespace

RunStats ProgramExecutor::run_planned(const TapSet& taps,
                                      const AcceleratorConfig& cfg,
                                      ExecutionBackend backend,
                                      Grid2D<float>& grid, int iterations,
                                      const CancellationToken* token,
                                      const NodeRunOptions& opts) {
  return run_planned_impl(services_, taps, cfg, backend, grid, iterations,
                          token, opts);
}

RunStats ProgramExecutor::run_planned(const TapSet& taps,
                                      const AcceleratorConfig& cfg,
                                      ExecutionBackend backend,
                                      Grid3D<float>& grid, int iterations,
                                      const CancellationToken* token,
                                      const NodeRunOptions& opts) {
  return run_planned_impl(services_, taps, cfg, backend, grid, iterations,
                          token, opts);
}

ProgramOutcome ProgramExecutor::run(const ProgramSpec& program,
                                    const CancellationToken* token,
                                    int worker_id) {
  program.validate();
  const std::vector<std::size_t> order = program.schedule();
  const std::vector<bool> reads_back = detail::reads_back_flags(program);
  const int dims = program.dims();

  ProgramOutcome out;
  out.fingerprint = program.fingerprint();

  std::vector<FieldState> states(program.fields.size());
  for (std::size_t i = 0; i < program.fields.size(); ++i) {
    const FieldSpec& f = program.fields[i];
    FieldState& s = states[i];
    s.nx = grid_variant_nx(f.data);
    s.ny = grid_variant_ny(f.data);
    s.nz = grid_variant_nz(f.data);
    s.cells = grid_variant_cells(f.data);
    s.front =
        std::make_unique<BufferPool::Lease>(*services_.pool, std::size_t(s.cells));
    s.back =
        std::make_unique<BufferPool::Lease>(*services_.pool, std::size_t(s.cells));
    const float* data = grid_variant_data(f.data);
    std::copy(data, data + s.cells, s.front->buffer().data());
  }

  // Resolve every node plan once, in schedule order; the timestep loop
  // reuses the handles, so a program run costs exactly one plan-cache
  // lookup (and at most one autotune probe) per node, however many steps
  // it advances.
  std::vector<ResolvedNode> resolved(program.nodes.size());
  for (const std::size_t idx : order) {
    const KernelNode& node = program.nodes[idx];
    ResolvedNode& rn = resolved[idx];
    rn.in_field = program.field_index(node.reads);
    rn.out_field = program.field_index(node.writes);
    const FieldState& in = states[std::size_t(rn.in_field)];
    rn.taps = program.stamped_taps(idx);
    bool hit = false;
    rn.plan =
        resolve_plan(rn.taps, node.config, in.nx, in.ny, in.nz, token, &hit);
    out.all_plans_cached = out.all_plans_cached && hit;
    out.any_plan_tuned = out.any_plan_tuned || rn.plan->tuned;
    // The cached config is hook-free; restore the node's telemetry hook.
    rn.cfg = rn.plan->config;
    rn.cfg.telemetry = node.config.telemetry;
    rn.backend = route(*rn.plan);
  }

  Tracer& tracer = services_.telemetry->tracer();
  const std::string span_base = m("program.node") + ":";
  for (int step = 0; step < program.steps; ++step) {
    if (token) token->throw_if_cancelled();
    for (const std::size_t idx : order) {
      const KernelNode& node = program.nodes[idx];
      const ResolvedNode& rn = resolved[idx];
      FieldState& in = states[std::size_t(rn.in_field)];
      FieldState& dst = states[std::size_t(rn.out_field)];
      const Tracer::Span span = tracer.span(span_base + node.name, worker_id,
                                            services_.metrics_prefix);

      // Copy the resolved input into a pooled grid and advance it.
      BufferPool::Lease work(*services_.pool, std::size_t(in.cells));
      const std::vector<float>& src =
          (reads_back[idx] ? in.back : in.front)->buffer();
      std::vector<float> storage = std::move(work.buffer());
      storage.assign(src.begin(), src.end());
      if (dims == 2) {
        Grid2D<float> g(in.nx, in.ny, std::move(storage));
        out.stats.accumulate(run_planned(rn.taps, rn.cfg, rn.backend, g,
                                         node.iterations, token));
        detail::combine_field(node.combine, dst.written,
                              dst.front->buffer().data(), g.data(),
                              dst.back->buffer().data(), dst.cells);
        work.buffer() = g.release_storage();
      } else {
        Grid3D<float> g(in.nx, in.ny, in.nz, std::move(storage));
        out.stats.accumulate(run_planned(rn.taps, rn.cfg, rn.backend, g,
                                         node.iterations, token));
        detail::combine_field(node.combine, dst.written,
                              dst.front->buffer().data(), g.data(),
                              dst.back->buffer().data(), dst.cells);
        work.buffer() = g.release_storage();
      }
      dst.written = true;
      ++out.nodes_executed;
    }
    for (FieldState& s : states) {
      if (s.written) {
        std::swap(s.front, s.back);
        s.written = false;
      }
    }
    ++out.steps_executed;
  }

  MetricsRegistry& metrics = services_.telemetry->metrics();
  metrics.counter(m("program.nodes_scheduled")).add(out.nodes_executed);
  metrics.counter(m("program.steps")).add(out.steps_executed);

  // Move the final field states out of their leases; the leases then
  // return (empty) to the pool, keeping outstanding() balanced.
  out.fields.reserve(program.fields.size());
  for (std::size_t i = 0; i < program.fields.size(); ++i) {
    FieldState& s = states[i];
    std::vector<float> storage = std::move(s.front->buffer());
    if (dims == 2) {
      out.fields.emplace_back(program.fields[i].name,
                              Grid2D<float>(s.nx, s.ny, std::move(storage)));
    } else {
      out.fields.emplace_back(
          program.fields[i].name,
          Grid3D<float>(s.nx, s.ny, s.nz, std::move(storage)));
    }
  }
  return out;
}

}  // namespace fpga_stencil
