// ProgramExecutor: runs a validated ProgramSpec through the engine's
// machinery -- PlanCache, BufferPool, HostAutotuner, Telemetry -- inside
// the worker thread that dispatched the program job (docs/PROGRAMS.md).
//
// The executor is also the *shared node runner*: resolve_plan (plan-cache
// lookup with the full tuner metric accounting) and run_planned (the
// sync_sim / block_parallel execution arms over pooled scratch) are the
// single implementation both the classic single-stencil job path in
// StencilEngine::execute and every program node run through. Collapsing
// the two paths is what makes "a single-stencil job is a one-node
// program" true at the machinery level, not just the API level.
//
// Execution model: all node plans are resolved once up front (one
// plan-cache lookup -- and hence at most one tuner probe and exactly one
// tuner.cache_hit/miss tick -- per node per program run, regardless of
// `steps`), then the per-timestep schedule loops: each node copies its
// resolved input buffer into a pooled grid, advances it on its routed
// backend, and combines the result into the output field's back buffer;
// written fields swap at the end of the step. Every buffer is a
// BufferPool lease, so a program job leaks nothing even when a node
// throws mid-step.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/buffer_pool.hpp"
#include "core/run_options.hpp"
#include "core/stencil_accelerator.hpp"
#include "engine/plan_cache.hpp"
#include "program/program_spec.hpp"

namespace fpga_stencil {

class Telemetry;
class HostAutotuner;
class CancellationToken;
class FaultInjector;

/// What running a whole program yields.
struct ProgramOutcome {
  /// Componentwise sum of every node run's RunStats.
  RunStats stats;
  /// Final state of every field, in declaration order.
  std::vector<std::pair<std::string, GridVariant>> fields;
  std::int64_t nodes_executed = 0;  ///< node runs = nodes * steps
  std::int64_t steps_executed = 0;
  bool all_plans_cached = true;  ///< every node's plan lookup was a hit
  bool any_plan_tuned = false;   ///< some node adopted a tuned geometry
  std::uint64_t fingerprint = 0;  ///< ProgramSpec::fingerprint()
};

/// Per-run knobs of the shared node runner that only the single-stencil
/// path uses (program nodes pass the defaults).
struct NodeRunOptions {
  FaultInjector* injector = nullptr;
  std::chrono::milliseconds watchdog_deadline{0};
};

class ProgramExecutor {
 public:
  /// Engine services the executor borrows; all pointees must outlive it.
  /// StencilEngine builds one per program job from its own members.
  struct Services {
    PlanCache* plans = nullptr;
    BufferPool* pool = nullptr;
    HostAutotuner* tuner = nullptr;           ///< null when autotune == off
    AutotuneMode autotune = AutotuneMode::off;
    Telemetry* telemetry = nullptr;           ///< required
    std::string metrics_prefix = "engine";
    /// Requested backend: automatic (route per node by the engine's
    /// 2-blocks-per-worker policy), sync_sim, or block_parallel. Program
    /// jobs never run on the concurrent/resilient/cluster backends
    /// (validate_job_spec rejects them at the front door).
    ExecutionBackend backend = ExecutionBackend::automatic;
    /// Block-parallel worker threads (JobSpec::workers passthrough).
    int workers = 0;
  };

  explicit ProgramExecutor(Services services);

  /// Plan-cache lookup with the engine's full metric accounting:
  /// <prefix>.plan_cache_{hit,miss}, and -- for tuned plans --
  /// <prefix>.tuner.cache_{hit,miss} (one tick per lookup: exactly one
  /// per node per program run), tuner.search_* on probing builds, and the
  /// tuner.gain_milli gauge.
  std::shared_ptr<const CachedPlan> resolve_plan(
      const TapSet& taps, const AcceleratorConfig& cfg, std::int64_t nx,
      std::int64_t ny, std::int64_t nz, const CancellationToken* token,
      bool* hit);

  /// Resolves Services::backend against a concrete plan: `automatic`
  /// becomes block_parallel when the plan yields >= 2 blocks per worker,
  /// else sync_sim (the engine's single-board routing policy).
  [[nodiscard]] ExecutionBackend route(const CachedPlan& plan) const;

  /// Runs one planned stencil in place on `grid` over pooled scratch.
  /// `backend` must be sync_sim or block_parallel. `cfg` is the plan's
  /// resolved config with the caller's telemetry hook restored.
  RunStats run_planned(const TapSet& taps, const AcceleratorConfig& cfg,
                       ExecutionBackend backend, Grid2D<float>& grid,
                       int iterations, const CancellationToken* token,
                       const NodeRunOptions& opts = NodeRunOptions());
  RunStats run_planned(const TapSet& taps, const AcceleratorConfig& cfg,
                       ExecutionBackend backend, Grid3D<float>& grid,
                       int iterations, const CancellationToken* token,
                       const NodeRunOptions& opts = NodeRunOptions());

  /// Runs the whole program: validate, resolve every node plan once,
  /// execute `steps` timesteps in DAG order. Emits
  /// <prefix>.program.nodes_scheduled / <prefix>.program.steps counters
  /// and a "<prefix>.program.node:<name>" span per node run
  /// (docs/OBSERVABILITY.md). Throws ConfigError / CancelledError /
  /// DeadlineExceededError like any job body.
  ProgramOutcome run(const ProgramSpec& program,
                     const CancellationToken* token, int worker_id);

 private:
  [[nodiscard]] std::string m(const char* suffix) const;

  Services services_;
};

}  // namespace fpga_stencil
