// Golden model for stencil programs: the multi-field generalization of
// stencil/reference.hpp.
//
// Runs every node of a ProgramSpec on the naive CPU tap-set executors
// (reference_run over the node's boundary-stamped taps), with the exact
// front/back-buffer and combine semantics of program_spec.hpp --
// including the shared detail::combine_field accumulation order -- so a
// program executed through ProgramExecutor (and hence through the engine
// on any backend) must match this model bit-for-bit. The program tests
// and the stencilctl program campaigns both check against it.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "program/program_spec.hpp"

namespace fpga_stencil {

/// Final state of every field after `program.steps` timesteps, in field
/// declaration order. Validates the program first (throws ConfigError).
[[nodiscard]] std::vector<std::pair<std::string, GridVariant>>
reference_run_program(const ProgramSpec& program);

}  // namespace fpga_stencil
