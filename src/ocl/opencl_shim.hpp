// Miniature OpenCL-style host runtime ("Intel FPGA SDK for OpenCL" shim).
//
// Reproduces the host-side experience of the paper's flow without silicon:
//
//   * Platform/Device discovery (the board catalog),
//   * offline "compilation" via Program::build("-DRAD=3 -DPAR_TIME=4 ...");
//     macro parsing, configuration validation, and a resource fit against
//     the device model -- an oversubscribed design throws BuildError just
//     like a failed aoc place-and-route, and a successful build yields an
//     aoc-style area/fmax report,
//   * Buffers and a CommandQueue with blocking transfers,
//   * kernel launch returning a profiling Event whose device time is the
//     *modeled* FPGA execution time (cycles at the modeled fmax through the
//     pipeline-efficiency model), while the data itself is produced by the
//     bit-exact functional accelerator.
//
// Build macros understood (all integers):
//   DIM (2|3), RAD, BSIZE_X, BSIZE_Y (3D), PAR_VEC, PAR_TIME
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/retry.hpp"
#include "fpga/device_spec.hpp"
#include "fpga/resource_model.hpp"
#include "grid/grid.hpp"
#include "stencil/accel_config.hpp"
#include "stencil/star_stencil.hpp"
#include "stencil/tap_set.hpp"

namespace fpga_stencil::ocl {

/// Thrown when "offline compilation" fails: bad options, invalid
/// configuration, or a design that does not fit the device.
class BuildError : public std::runtime_error {
 public:
  explicit BuildError(const std::string& what) : std::runtime_error(what) {}
};

/// Parsed `-DNAME=VALUE` build options.
class BuildOptions {
 public:
  /// Parses a `-DNAME=VALUE ...` option string; unknown -D macros are kept,
  /// non -D tokens are rejected (mirroring aoc's strictness about typos).
  static BuildOptions parse(const std::string& options);

  [[nodiscard]] bool has(const std::string& name) const;
  /// Integer macro value; throws BuildError when absent or non-numeric.
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int_or(const std::string& name,
                                        std::int64_t fallback) const;

  /// Translates the macro set into an accelerator configuration.
  [[nodiscard]] AcceleratorConfig to_config() const;

 private:
  std::map<std::string, std::string> macros_;
};

class Device {
 public:
  explicit Device(DeviceSpec spec) : spec_(std::move(spec)) {}
  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] const std::string& name() const { return spec_.name; }

 private:
  DeviceSpec spec_;
};

class Platform {
 public:
  /// The vendor platform with the catalog's FPGA boards.
  static Platform intel_fpga_sdk();

  [[nodiscard]] const std::vector<Device>& devices() const { return devices_; }
  /// First device whose name contains `substr`; throws if none.
  [[nodiscard]] const Device& device_by_name(const std::string& substr) const;

 private:
  std::vector<Device> devices_;
};

class Context {
 public:
  explicit Context(Device device) : device_(std::move(device)) {}
  [[nodiscard]] const Device& device() const { return device_; }

 private:
  Device device_;
};

/// Device-global-memory buffer (byte-addressed, like cl_mem).
class Buffer {
 public:
  Buffer(const Context& ctx, std::size_t bytes);
  [[nodiscard]] std::size_t size() const { return storage_.size(); }

  std::byte* data() { return storage_.data(); }
  [[nodiscard]] const std::byte* data() const { return storage_.data(); }

 private:
  std::vector<std::byte> storage_;
};

/// aoc-style area/timing report of a successful build.
struct BuildReport {
  AcceleratorConfig config;
  ResourceUsage usage;
  double fmax_mhz = 0.0;
  [[nodiscard]] std::string summary() const;
};

class Program {
 public:
  /// Offline compilation: parse options, validate, fit, predict fmax.
  /// Throws BuildError on a fatal problem (bad options, no fit) and
  /// TransientError when the active fault injector simulates a toolchain
  /// or link hiccup -- the latter is worth retrying, the former is not.
  static Program build(const Context& ctx, const std::string& options);

  /// build() under retry_transient: absorbs injected shim_build faults
  /// with exponential backoff, counts retries into `retries` (when
  /// non-null), and rethrows BuildError immediately.
  static Program build_with_retry(const Context& ctx,
                                  const std::string& options,
                                  const RetryPolicy& policy = {},
                                  std::int64_t* retries = nullptr);

  [[nodiscard]] const BuildReport& report() const { return report_; }
  [[nodiscard]] const AcceleratorConfig& config() const {
    return report_.config;
  }

 private:
  Program() = default;
  BuildReport report_;
};

/// Kernel-execution profiling info (CL_PROFILING_COMMAND_START/END).
struct Event {
  double device_seconds = 0.0;  ///< modeled FPGA kernel time
  double host_seconds = 0.0;    ///< wall time of the functional simulation
  std::int64_t device_cycles = 0;  ///< modeled pipeline cycles

  [[nodiscard]] double device_ms() const { return device_seconds * 1e3; }
};

class CommandQueue {
 public:
  explicit CommandQueue(const Context& ctx) : ctx_(&ctx) {}

  /// Blocking host-to-device / device-to-host transfers.
  void enqueue_write_buffer(Buffer& dst, const void* src, std::size_t bytes);
  void enqueue_read_buffer(const Buffer& src, void* dst, std::size_t bytes);

  /// Launches the read->PE-chain->write kernel trio for `iterations` time
  /// steps of a 2D grid stored row-major in `in` (nx*ny float32). The
  /// result lands in `out`. The stencil supplies the coefficient kernel
  /// arguments and must agree with the program's DIM/RAD macros.
  Event enqueue_stencil_2d(const Program& program, const StarStencil& stencil,
                           const Buffer& in, Buffer& out, std::int64_t nx,
                           std::int64_t ny, int iterations);

  /// 3D variant (nx*ny*nz float32, z-major slowest).
  Event enqueue_stencil_3d(const Program& program, const StarStencil& stencil,
                           const Buffer& in, Buffer& out, std::int64_t nx,
                           std::int64_t ny, std::int64_t nz, int iterations);

  /// Generic tap-set launches (box stencils, custom shapes): the tap set
  /// supplies the coefficient arguments; its radius must not exceed the
  /// program's RAD macro.
  Event enqueue_stencil_taps_2d(const Program& program, const TapSet& taps,
                                const Buffer& in, Buffer& out,
                                std::int64_t nx, std::int64_t ny,
                                int iterations);
  Event enqueue_stencil_taps_3d(const Program& program, const TapSet& taps,
                                const Buffer& in, Buffer& out,
                                std::int64_t nx, std::int64_t ny,
                                std::int64_t nz, int iterations);

  /// All work here is synchronous; finish() exists for API fidelity.
  void finish() {}

 private:
  const Context* ctx_;
};

}  // namespace fpga_stencil::ocl
