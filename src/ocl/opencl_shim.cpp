#include "ocl/opencl_shim.hpp"

#include <cstring>
#include <sstream>

#include "common/format.hpp"
#include "common/stopwatch.hpp"
#include "fault/fault_injector.hpp"
#include "core/stencil_accelerator.hpp"
#include "fpga/fmax_model.hpp"
#include "model/performance_model.hpp"

namespace fpga_stencil::ocl {

// ---------------------------------------------------------------- options

BuildOptions BuildOptions::parse(const std::string& options) {
  BuildOptions out;
  std::istringstream is(options);
  std::string tok;
  while (is >> tok) {
    if (tok.rfind("-D", 0) != 0 || tok.size() <= 2) {
      throw BuildError("unrecognized build option: `" + tok +
                       "` (only -DNAME=VALUE is supported)");
    }
    const std::string body = tok.substr(2);
    const std::size_t eq = body.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == body.size()) {
      throw BuildError("malformed macro definition: `" + tok + "`");
    }
    out.macros_[body.substr(0, eq)] = body.substr(eq + 1);
  }
  return out;
}

bool BuildOptions::has(const std::string& name) const {
  return macros_.count(name) != 0;
}

std::int64_t BuildOptions::get_int(const std::string& name) const {
  const auto it = macros_.find(name);
  if (it == macros_.end()) {
    throw BuildError("required macro -D" + name + " is missing");
  }
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw BuildError("macro -D" + name + "=" + it->second +
                     " is not an integer");
  }
}

std::int64_t BuildOptions::get_int_or(const std::string& name,
                                      std::int64_t fallback) const {
  return has(name) ? get_int(name) : fallback;
}

AcceleratorConfig BuildOptions::to_config() const {
  AcceleratorConfig cfg;
  cfg.dims = static_cast<int>(get_int("DIM"));
  cfg.radius = static_cast<int>(get_int("RAD"));
  cfg.bsize_x = get_int("BSIZE_X");
  cfg.bsize_y = cfg.dims == 3 ? get_int("BSIZE_Y") : 1;
  cfg.parvec = static_cast<int>(get_int("PAR_VEC"));
  cfg.partime = static_cast<int>(get_int("PAR_TIME"));
  return cfg;
}

// --------------------------------------------------------------- platform

Platform Platform::intel_fpga_sdk() {
  Platform p;
  p.devices_.emplace_back(arria10_gx1150());
  p.devices_.emplace_back(stratix_v_gxa7());
  p.devices_.emplace_back(stratix10_gx2800());
  p.devices_.emplace_back(stratix10_mx2100());
  return p;
}

const Device& Platform::device_by_name(const std::string& substr) const {
  for (const Device& d : devices_) {
    if (d.name().find(substr) != std::string::npos) return d;
  }
  throw BuildError("no device matching `" + substr + "` on this platform");
}

// ----------------------------------------------------------------- buffer

Buffer::Buffer(const Context& ctx, std::size_t bytes) : storage_(bytes) {
  (void)ctx;
  FPGASTENCIL_EXPECT(bytes > 0, "zero-sized buffer");
}

// ---------------------------------------------------------------- program

std::string BuildReport::summary() const {
  std::ostringstream os;
  os << "kernel configuration: " << config.describe() << "\n"
     << "fmax: " << format_fixed(fmax_mhz, 2) << " MHz\n"
     << "DSP blocks: " << usage.dsps << " ("
     << format_percent(usage.dsp_fraction) << ")\n"
     << "RAM bits: " << usage.bram_bits << " ("
     << format_percent(usage.bram_bits_fraction) << ")\n"
     << "RAM blocks: " << usage.bram_blocks << " ("
     << format_percent(usage.bram_block_fraction) << ")\n"
     << "logic: " << format_percent(usage.logic_fraction) << "\n";
  return os.str();
}

Program Program::build(const Context& ctx, const std::string& options) {
  // A real aoc link/program step can fail transiently; the injector
  // models that before any fatal validation is attempted.
  maybe_inject_transient(FaultSite::shim_build, "offline compilation");
  const BuildOptions opts = BuildOptions::parse(options);
  AcceleratorConfig cfg;
  try {
    cfg = opts.to_config();
    cfg.validate();
  } catch (const ConfigError& e) {
    throw BuildError(std::string("kernel configuration invalid: ") + e.what());
  }
  try {
    check_fit(cfg, ctx.device().spec());
  } catch (const ResourceError& e) {
    throw BuildError(std::string("design does not fit: ") + e.what());
  }

  Program p;
  p.report_.config = cfg;
  p.report_.usage = estimate_resources(cfg, ctx.device().spec());
  p.report_.fmax_mhz = estimate_fmax_mhz(cfg, ctx.device().spec());
  return p;
}

Program Program::build_with_retry(const Context& ctx,
                                  const std::string& options,
                                  const RetryPolicy& policy,
                                  std::int64_t* retries) {
  return retry_transient(
      policy, [&] { return build(ctx, options); }, retries);
}

// ------------------------------------------------------------------ queue

void CommandQueue::enqueue_write_buffer(Buffer& dst, const void* src,
                                        std::size_t bytes) {
  maybe_inject_transient(FaultSite::shim_transfer, "host-to-device transfer");
  FPGASTENCIL_EXPECT(bytes <= dst.size(), "write exceeds buffer size");
  std::memcpy(dst.data(), src, bytes);
}

void CommandQueue::enqueue_read_buffer(const Buffer& src, void* dst,
                                       std::size_t bytes) {
  maybe_inject_transient(FaultSite::shim_transfer, "device-to-host transfer");
  FPGASTENCIL_EXPECT(bytes <= src.size(), "read exceeds buffer size");
  std::memcpy(dst, src.data(), bytes);
}

namespace {

/// Shared launch epilogue: modeled device timing for a finished run.
Event make_event(const Program& program, const DeviceSpec& device,
                 const RunStats& stats, double host_seconds) {
  Event ev;
  ev.host_seconds = host_seconds;
  ev.device_cycles = stats.vectors_processed;
  const double fmax_hz = program.report().fmax_mhz * 1e6;
  const AcceleratorConfig& cfg = program.config();
  const double zero_stall_seconds = double(stats.vectors_processed) / fmax_hz;
  ev.device_seconds =
      zero_stall_seconds /
      pipeline_efficiency(cfg, device, program.report().fmax_mhz);
  return ev;
}

void check_kernel_args(const Program& program, const StarStencil& stencil) {
  const AcceleratorConfig& cfg = program.config();
  if (stencil.dims() != cfg.dims || stencil.radius() != cfg.radius) {
    throw BuildError(
        "kernel argument mismatch: stencil coefficients are for " +
        std::to_string(stencil.dims()) + "D radius " +
        std::to_string(stencil.radius()) + " but the program was built for " +
        cfg.describe());
  }
}

void check_kernel_args(const Program& program, const TapSet& taps) {
  const AcceleratorConfig& cfg = program.config();
  if (taps.dims() != cfg.dims || taps.radius() > cfg.radius) {
    throw BuildError(
        "kernel argument mismatch: tap set is " + std::to_string(taps.dims()) +
        "D radius " + std::to_string(taps.radius()) +
        " but the program was built for " + cfg.describe());
  }
}

}  // namespace

Event CommandQueue::enqueue_stencil_2d(const Program& program,
                                       const StarStencil& stencil,
                                       const Buffer& in, Buffer& out,
                                       std::int64_t nx, std::int64_t ny,
                                       int iterations) {
  maybe_inject_transient(FaultSite::shim_enqueue, "kernel launch");
  check_kernel_args(program, stencil);
  FPGASTENCIL_EXPECT(program.config().dims == 2,
                     "2D launch of a 3D program");
  const std::size_t bytes = std::size_t(nx) * std::size_t(ny) * sizeof(float);
  FPGASTENCIL_EXPECT(bytes <= in.size() && bytes <= out.size(),
                     "grid does not fit in the buffers");

  Grid2D<float> grid(nx, ny);
  std::memcpy(grid.data(), in.data(), bytes);

  Stopwatch sw;
  StencilAccelerator accel(stencil, program.config());
  const RunStats stats = accel.run(grid, iterations);
  const double host_seconds = sw.seconds();

  std::memcpy(out.data(), grid.data(), bytes);
  return make_event(program, ctx_->device().spec(), stats, host_seconds);
}

Event CommandQueue::enqueue_stencil_3d(const Program& program,
                                       const StarStencil& stencil,
                                       const Buffer& in, Buffer& out,
                                       std::int64_t nx, std::int64_t ny,
                                       std::int64_t nz, int iterations) {
  maybe_inject_transient(FaultSite::shim_enqueue, "kernel launch");
  check_kernel_args(program, stencil);
  FPGASTENCIL_EXPECT(program.config().dims == 3,
                     "3D launch of a 2D program");
  const std::size_t bytes =
      std::size_t(nx) * std::size_t(ny) * std::size_t(nz) * sizeof(float);
  FPGASTENCIL_EXPECT(bytes <= in.size() && bytes <= out.size(),
                     "grid does not fit in the buffers");

  Grid3D<float> grid(nx, ny, nz);
  std::memcpy(grid.data(), in.data(), bytes);

  Stopwatch sw;
  StencilAccelerator accel(stencil, program.config());
  const RunStats stats = accel.run(grid, iterations);
  const double host_seconds = sw.seconds();

  std::memcpy(out.data(), grid.data(), bytes);
  return make_event(program, ctx_->device().spec(), stats, host_seconds);
}

Event CommandQueue::enqueue_stencil_taps_2d(const Program& program,
                                            const TapSet& taps,
                                            const Buffer& in, Buffer& out,
                                            std::int64_t nx, std::int64_t ny,
                                            int iterations) {
  maybe_inject_transient(FaultSite::shim_enqueue, "kernel launch");
  check_kernel_args(program, taps);
  FPGASTENCIL_EXPECT(program.config().dims == 2, "2D launch of a 3D program");
  const std::size_t bytes = std::size_t(nx) * std::size_t(ny) * sizeof(float);
  FPGASTENCIL_EXPECT(bytes <= in.size() && bytes <= out.size(),
                     "grid does not fit in the buffers");

  Grid2D<float> grid(nx, ny);
  std::memcpy(grid.data(), in.data(), bytes);

  Stopwatch sw;
  StencilAccelerator accel(taps, program.config());
  const RunStats stats = accel.run(grid, iterations);
  const double host_seconds = sw.seconds();

  std::memcpy(out.data(), grid.data(), bytes);
  return make_event(program, ctx_->device().spec(), stats, host_seconds);
}

Event CommandQueue::enqueue_stencil_taps_3d(const Program& program,
                                            const TapSet& taps,
                                            const Buffer& in, Buffer& out,
                                            std::int64_t nx, std::int64_t ny,
                                            std::int64_t nz, int iterations) {
  maybe_inject_transient(FaultSite::shim_enqueue, "kernel launch");
  check_kernel_args(program, taps);
  FPGASTENCIL_EXPECT(program.config().dims == 3, "3D launch of a 2D program");
  const std::size_t bytes =
      std::size_t(nx) * std::size_t(ny) * std::size_t(nz) * sizeof(float);
  FPGASTENCIL_EXPECT(bytes <= in.size() && bytes <= out.size(),
                     "grid does not fit in the buffers");

  Grid3D<float> grid(nx, ny, nz);
  std::memcpy(grid.data(), in.data(), bytes);

  Stopwatch sw;
  StencilAccelerator accel(taps, program.config());
  const RunStats stats = accel.run(grid, iterations);
  const double host_seconds = sw.seconds();

  std::memcpy(out.data(), grid.data(), bytes);
  return make_event(program, ctx_->device().spec(), stats, host_seconds);
}

}  // namespace fpga_stencil::ocl
