// Host-side plan candidate enumeration for the empirical autotuner.
//
// The paper tunes (bsize, parvec, partime) against an FPGA resource model
// (src/tune/tuner.*). On the host the binding constraint is the cache
// hierarchy instead: each PE's rolling shift-register window
// (2*rad*row_cells + parvec cells, eq. 7) must stay resident while a
// block streams, and the overlapped-tiling halo (2*partime*rad per
// blocked dimension, eq. 2) charges redundant cells for every block. This
// module enumerates the geometry variants worth probing -- block extents
// and temporal depth; parvec and the stencil itself are part of the
// request and never change -- seeded by a cache model and pruned by a
// redundancy bound. The requested ("paper default") configuration is
// always candidate [0], so an argmax over measured throughput can never
// lose to it.
//
// Every candidate validates and runs on the same executors, so tuning
// picks among bit-exact-equivalent plans (pinned by tests).
#pragma once

#include <cstdint>
#include <vector>

#include "stencil/accel_config.hpp"

namespace fpga_stencil {

struct PlanCandidateOptions {
  /// Cache sizes seeding the model; 0 means "use host_profile()".
  std::int64_t l1_bytes = 0;
  std::int64_t l2_bytes = 0;
  std::int64_t llc_bytes = 0;
  /// Overlapped-tiling redundancy bound: candidates whose per-pass
  /// streamed/valid ratio exceeds this are pruned (the paper-default
  /// request is exempt -- it is kept even when it violates the bound).
  double max_redundancy = 4.0;
  /// Probe budget: at most this many candidates, best model score first
  /// (after the request at [0]).
  std::size_t max_candidates = 20;
  /// Temporal depths to consider; empty means {1, 2, 4, 8} plus the
  /// requested partime.
  std::vector<int> partime_candidates;
};

/// Cache-model cost of one candidate geometry on `nx x ny x nz`: streamed
/// cells per time step advanced (redundancy + drain + partial-block
/// waste), scaled by a penalty for the cache level the PE chain's rolling
/// windows spill to. Lower is better. Exposed so benches can report the
/// model's ranking next to measured throughput.
double plan_candidate_cost(const AcceleratorConfig& cfg, std::int64_t nx,
                           std::int64_t ny, std::int64_t nz,
                           const PlanCandidateOptions& opts = {});

/// Geometry variants of `base` worth probing on this host for a grid of
/// `nx x ny x nz`: element [0] is `base` itself (validated); the rest
/// vary bsize_x / bsize_y / partime only, are all valid, and are ordered
/// by ascending model cost. Throws ConfigError when `base` itself is
/// invalid.
std::vector<AcceleratorConfig> enumerate_plan_candidates(
    const AcceleratorConfig& base, std::int64_t nx, std::int64_t ny,
    std::int64_t nz = 1, const PlanCandidateOptions& opts = {});

}  // namespace fpga_stencil
