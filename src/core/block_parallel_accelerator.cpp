#include "core/block_parallel_accelerator.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <exception>
#include <optional>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/stopwatch.hpp"
#include "core/block_streamer.hpp"
#include "fault/fault_injector.hpp"
#include "fault/watchdog.hpp"
#include "telemetry/telemetry.hpp"

namespace fpga_stencil {

int requested_block_workers(int workers) {
  if (workers > 0) return workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int resolved_block_workers(const RunOptions& options,
                           const BlockingPlan& plan) {
  const std::int64_t requested = requested_block_workers(options.workers);
  return static_cast<int>(
      std::max<std::int64_t>(1, std::min(requested, plan.total_blocks())));
}

namespace {

/// State the coordinator publishes to the pool for one pass. The start
/// barrier makes the plain fields visible to the workers; the finish
/// barrier hands them back (so only next_block is ever contended).
template <typename GridT>
struct PassState {
  const GridT* in = nullptr;
  GridT* out = nullptr;
  int steps = 0;
  std::atomic<std::int64_t> next_block{0};
  bool done = false;  ///< set before the start barrier to retire the pool
};

template <typename GridT>
RunStats run_block_parallel_impl(const TapSet& taps,
                                 const AcceleratorConfig& cfg0, GridT& grid,
                                 int iterations, const RunOptions& opts) {
  constexpr bool is_3d = std::is_same_v<GridT, Grid3D<float>>;
  FPGASTENCIL_EXPECT(cfg0.dims == (is_3d ? 3 : 2),
                     "grid dimensionality does not match the configuration");
  FPGASTENCIL_EXPECT(iterations >= 0, "iterations must be non-negative");
  AcceleratorConfig cfg = resolve_stage_lag(taps, cfg0);
  if (opts.telemetry) cfg.telemetry = opts.telemetry;
  Telemetry* const tel = cfg.telemetry;

  const BlockingPlan plan = [&] {
    if constexpr (is_3d) {
      return make_blocking_plan(cfg, grid.nx(), grid.ny(), grid.nz());
    } else {
      return make_blocking_plan(cfg, grid.nx(), grid.ny());
    }
  }();
  const int workers = resolved_block_workers(opts, plan);

  RunStats stats;
  if (iterations == 0) return stats;

  GridT scratch = [&] {
    if constexpr (is_3d) {
      return opts.scratch ? GridT(grid.nx(), grid.ny(), grid.nz(),
                                  std::move(*opts.scratch))
                          : GridT(grid.nx(), grid.ny(), grid.nz());
    } else {
      return opts.scratch
                 ? GridT(grid.nx(), grid.ny(), std::move(*opts.scratch))
                 : GridT(grid.nx(), grid.ny());
    }
  }();

  const std::size_t pool_size = static_cast<std::size_t>(workers);
  PassState<GridT> pass;
  std::barrier<> start(workers + 1);
  std::barrier<> finish(workers + 1);
  std::vector<RunStats> worker_stats(pool_size);
  std::vector<std::int64_t> worker_busy_ns(pool_size, 0);
  std::vector<std::exception_ptr> worker_errors(pool_size);

  // Cooperative unwind machinery. `aborted` stops every worker's claim
  // loop; the watchdog (when armed) sets it and opens the injector's
  // stall gate so a hung worker wakes, claims nothing more, and reaches
  // the finish barrier -- the two-barrier pass protocol never deadlocks.
  FaultInjector* const fi = opts.injector;
  if (fi) fi->reset_stalls();  // re-arm the gate; no thread is parked yet
  const CancellationToken* const cancel =
      opts.cancel.valid() ? &opts.cancel : nullptr;
  std::atomic<bool> aborted{false};
  const auto unwind = [&] {
    aborted.store(true, std::memory_order_release);
    if (tel) tel->tracer().instant("block_parallel_unwind", 0,
                                   "block_parallel");
    if (fi) fi->release_stalls();
  };
  std::optional<Watchdog> dog;
  if (opts.watchdog_deadline.count() > 0) {
    dog.emplace(opts.watchdog_deadline, unwind);
  }

  const auto worker_fn = [&](int w) {
    // Private pipeline replica: own PE chain (shift-register state is
    // per-block, reset by begin_block) and own ping-pong lane buffers.
    std::vector<ProcessingElement> pes;
    std::optional<BufferPool::Lease> lease;
    std::vector<float> local_lanes;
    std::span<float> va;
    std::span<float> vb;
    try {
      pes.reserve(std::size_t(cfg.partime));
      for (int k = 0; k < cfg.partime; ++k) pes.emplace_back(taps, cfg, k);
      const std::size_t lane = std::size_t(cfg.parvec);
      if (opts.pool) {
        lease.emplace(*opts.pool, 2 * lane);
        va = std::span<float>(lease->buffer()).first(lane);
        vb = std::span<float>(lease->buffer()).subspan(lane, lane);
      } else {
        local_lanes.resize(2 * lane);
        va = std::span<float>(local_lanes).first(lane);
        vb = std::span<float>(local_lanes).subspan(lane, lane);
      }
    } catch (...) {
      // The worker must keep participating in the barriers even when its
      // setup failed, or the coordinator would deadlock; it just claims
      // no blocks. The error surfaces after the run.
      worker_errors[std::size_t(w)] = std::current_exception();
    }
    for (;;) {
      start.arrive_and_wait();
      if (pass.done) return;
      if (!worker_errors[std::size_t(w)]) {
        const Stopwatch busy_clock;
        Tracer::Span span;
        if (tel) {
          span = tel->tracer().span("block_parallel.worker", w,
                                    "block_parallel");
        }
        try {
          for (;;) {
            if (aborted.load(std::memory_order_acquire)) break;
            if (cancel) cancel->throw_if_cancelled();
            if (fi && fi->should_fire(FaultSite::kernel_hang)) {
              // Park on the stall gate exactly like a hung PE; only the
              // watchdog's unwind releases it. Claim nothing afterwards.
              fi->stall_until_released();
              if (aborted.load(std::memory_order_acquire)) break;
            }
            const std::int64_t b =
                pass.next_block.fetch_add(1, std::memory_order_relaxed);
            if (b >= plan.total_blocks()) break;
            stream_block(pes, plan, block_extent(plan, b), *pass.in,
                         *pass.out, pass.steps, va, vb,
                         worker_stats[std::size_t(w)], cancel);
            if (dog) dog->kick();
          }
        } catch (...) {
          // Cancellation or a streaming error: stop the siblings too so
          // the pass unwinds at block granularity, then report through
          // the per-worker slot (first worker by index wins the rethrow).
          aborted.store(true, std::memory_order_release);
          if (fi) fi->release_stalls();
          worker_errors[std::size_t(w)] = std::current_exception();
        }
        if (tel) span.end();
        worker_busy_ns[std::size_t(w)] += busy_clock.nanoseconds();
      }
      finish.arrive_and_wait();
    }
  };

  const Stopwatch run_clock;
  std::vector<std::thread> pool_threads;
  pool_threads.reserve(std::size_t(workers));
  for (int w = 0; w < workers; ++w) pool_threads.emplace_back(worker_fn, w);

  GridT* cur = &grid;
  GridT* nxt = &scratch;
  int remaining = iterations;
  std::int64_t written_so_far = 0;
  bool failed = false;
  while (remaining > 0 && !failed) {
    pass.in = cur;
    pass.out = nxt;
    pass.steps = std::min(remaining, cfg.partime);
    pass.next_block.store(0, std::memory_order_relaxed);
    const Stopwatch pass_clock;
    start.arrive_and_wait();   // release the pass to the pool
    finish.arrive_and_wait();  // every block of the pass has retired
    for (const std::exception_ptr& e : worker_errors) {
      if (e) failed = true;
    }
    if (aborted.load(std::memory_order_acquire)) failed = true;
    if (failed) break;
    std::swap(cur, nxt);
    remaining -= pass.steps;
    stats.time_steps += pass.steps;
    ++stats.passes;
    if (tel) {
      std::int64_t written = 0;
      for (const RunStats& ws : worker_stats) written += ws.cells_written;
      record_pass_metrics(*tel, "block_parallel", written - written_so_far,
                          pass_clock.nanoseconds());
      written_so_far = written;
    }
  }
  pass.done = true;
  start.arrive_and_wait();  // retire the pool
  if (dog) dog->stop();
  for (std::thread& t : pool_threads) t.join();
  if (failed) {
    // Unwound mid-run (cancel, deadline, watchdog trip, or a worker
    // error). Leave the caller's grid holding the last *completed* pass
    // -- the aborted pass only touched the scratch side -- and drop the
    // scratch storage (opts.scratch stays empty, the documented abort
    // contract; the pool lease still flows back through the caller).
    if (cur != &grid) std::swap(grid, scratch);
    for (const std::exception_ptr& e : worker_errors) {
      if (e) std::rethrow_exception(e);  // first worker by index wins
    }
    // No worker recorded an error: the watchdog unwound a stalled pass
    // (the hung worker parked on the gate, its siblings drained the
    // remaining blocks).
    throw PassAbortedError(
        "block-parallel pass unwound by watchdog (no progress within "
        "deadline)");
  }
  for (const std::exception_ptr& e : worker_errors) {
    if (e) std::rethrow_exception(e);  // first worker by index wins
  }

  // Merge in worker-index order so the aggregate is deterministic too.
  for (const RunStats& ws : worker_stats) {
    stats.cells_streamed += ws.cells_streamed;
    stats.cells_written += ws.cells_written;
    stats.vectors_processed += ws.vectors_processed;
    stats.block_passes += ws.block_passes;
  }

  if (cur != &grid) std::swap(grid, scratch);
  if (opts.scratch) *opts.scratch = scratch.release_storage();

  if (tel) {
    MetricsRegistry& m = tel->metrics();
    m.gauge("block_parallel.workers").set(workers);
    m.counter("block_parallel.blocks").add(stats.block_passes);
    const std::int64_t run_ns = run_clock.nanoseconds();
    if (run_ns > 0) {
      m.gauge("block_parallel.blocks_per_s")
          .set(stats.block_passes * 1'000'000'000 / run_ns);
    }
    // Redundant work actually incurred (streamed/written, eq. 2), in
    // thousandths -- the registry is integer-only.
    m.gauge("block_parallel.redundancy_milli")
        .set(std::int64_t(stats.redundancy() * 1000.0));
    Histogram& busy = m.histogram("block_parallel.worker_busy_ns",
                                  default_latency_bounds_ns());
    for (const std::int64_t ns : worker_busy_ns) busy.observe(ns);
  }
  return stats;
}

}  // namespace

template <typename GridT>
RunStats run_block_parallel(const TapSet& taps, const AcceleratorConfig& cfg,
                            GridT& grid, int iterations,
                            const RunOptions& options) {
  return run_block_parallel_impl(taps, cfg, grid, iterations, options);
}

template RunStats run_block_parallel<Grid2D<float>>(const TapSet&,
                                                    const AcceleratorConfig&,
                                                    Grid2D<float>&, int,
                                                    const RunOptions&);
template RunStats run_block_parallel<Grid3D<float>>(const TapSet&,
                                                    const AcceleratorConfig&,
                                                    Grid3D<float>&, int,
                                                    const RunOptions&);

}  // namespace fpga_stencil
