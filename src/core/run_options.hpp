// The single options struct and backend vocabulary shared by every
// single-board execution path.
//
// PR 3 left three overlapping knob bundles (RunOptions, ConcurrentOptions,
// ResilienceOptions duplicating half of RunOptions); this header collapses
// them: RunOptions is the one struct, ResilienceOptions embeds it as
// `base` (fault/resilient_runner.hpp), and ExecutionBackend names the
// paths the unified `run()` entry point (engine/run.hpp) and the
// StencilEngine route between. Fields a given backend does not use are
// simply ignored, so one struct can describe any routing outcome.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

#include "common/cancellation.hpp"

namespace fpga_stencil {

class BufferPool;     // common/buffer_pool.hpp; pointer-only here
class FaultInjector;  // fault/fault_injector.hpp; pointer-only here
class HostAutotuner;  // tune/host_autotuner.hpp; pointer-only here
class Telemetry;      // telemetry/telemetry.hpp; pointer-only here

/// Empirical plan-autotuning policy (docs/TUNING.md). Tuning only swaps
/// the block geometry / temporal depth among plans the executors already
/// run bit-exactly; it never changes what is computed.
enum class AutotuneMode {
  off,          ///< run the requested geometry as-is (the default)
  cached_only,  ///< adopt a tuned plan when the TuningCache already has
                ///< one for this (stencil, extents-class, host); never
                ///< probe -- a miss keeps the requested geometry
  search,       ///< probe-search candidates on first use, persist the
                ///< winner, then behave like cached_only
};

[[nodiscard]] constexpr const char* autotune_mode_name(AutotuneMode m) {
  switch (m) {
    case AutotuneMode::off: return "off";
    case AutotuneMode::cached_only: return "cached_only";
    case AutotuneMode::search: return "search";
  }
  return "?";
}

/// Execution paths a stencil job can be routed to. The StencilEngine
/// aliases this as `Backend` (engine/job.hpp).
enum class ExecutionBackend {
  automatic,       ///< router picks; see resolve_backend (engine/run.hpp)
                   ///< and docs/PARALLEL.md for the policy
  sync_sim,        ///< StencilAccelerator: single-threaded reference sweep
  concurrent,      ///< run_concurrent: one thread per pipeline stage
  block_parallel,  ///< run_block_parallel: worker pool over overlapped blocks
  resilient,       ///< run_resilient: watchdog/checksum/checkpoint
  cluster,         ///< MultiFpgaCluster; StencilEngine jobs only
};

[[nodiscard]] constexpr const char* backend_name(ExecutionBackend b) {
  switch (b) {
    case ExecutionBackend::automatic: return "automatic";
    case ExecutionBackend::sync_sim: return "sync_sim";
    case ExecutionBackend::concurrent: return "concurrent";
    case ExecutionBackend::block_parallel: return "block_parallel";
    case ExecutionBackend::resilient: return "resilient";
    case ExecutionBackend::cluster: return "cluster";
  }
  return "?";
}

/// Knobs of the single-board execution paths. Every backend reads the
/// subset it understands and ignores the rest.
struct RunOptions {
  /// Which path executes the job; `automatic` lets the router decide
  /// (resilient when an injector is set, block-parallel when the plan
  /// yields at least two blocks per worker, else the sync simulator).
  ExecutionBackend backend = ExecutionBackend::automatic;
  /// Per-channel vector capacity (the OpenCL `depth` attribute);
  /// concurrent/resilient backends.
  std::size_t channel_depth = 64;
  /// Block-parallel worker threads; 0 means std::thread::hardware_concurrency.
  /// The pool never spawns more workers than the plan has blocks.
  int workers = 0;
  /// Fault sites are armed only when an injector is supplied.
  FaultInjector* injector = nullptr;
  /// No-progress deadline at the write kernel; 0 disables the watchdog.
  std::chrono::milliseconds watchdog_deadline{0};
  /// Observability hook; falls back to AcceleratorConfig::telemetry when
  /// null. With a hook attached every pass records kernel spans (one trace
  /// lane per pipeline stage or worker), channel depth high-water marks
  /// and blocked-time counters, and per-pass cell throughput.
  Telemetry* telemetry = nullptr;
  /// Reusable backing store for the internal ping-pong scratch grid: when
  /// non-null its storage is adopted for the run and returned on normal
  /// completion (the engine's buffer pool threads through here). An
  /// aborted pass drops the storage; the vector is left empty.
  std::vector<float>* scratch = nullptr;
  /// Lease source for per-worker lane scratch (block-parallel backend);
  /// null keeps the allocate-per-worker behavior.
  BufferPool* pool = nullptr;
  /// Cooperative cancellation/deadline token. Every backend checks it at
  /// block (or finer) granularity and unwinds with CancelledError /
  /// DeadlineExceededError; a default (null) token never cancels. See
  /// docs/LIFECYCLE.md for the exact check points and guarantees.
  CancellationToken cancel{};
  /// Plan autotuning: when not `off`, the run swaps the requested block
  /// geometry / partime for the measured-best plan of this host before
  /// executing (docs/TUNING.md). Results are bit-exact either way.
  AutotuneMode autotune = AutotuneMode::off;
  /// Autotuner to resolve tuned plans through; null with autotune != off
  /// uses a process-wide default (HostAutotuner::process_default()). The
  /// StencilEngine always passes its own.
  HostAutotuner* tuner = nullptr;
};

}  // namespace fpga_stencil
