// The stencil accelerator: the paper's primary contribution, as a
// functional architecture simulator.
//
// Mirrors Fig. 2 of the paper: a read kernel streams overlapped spatial
// blocks from "external memory" (the input grid), a chain of `partime`
// Processing Elements advances each block one time step per stage, and a
// write kernel retires the valid (non-halo) cells to the output grid.
//
//   * 1.5D blocking for 2D stencils: block in x (bsize_x), stream y.
//   * 2.5D blocking for 3D stencils: block in x/y, stream z.
//   * Overlapped blocking: each pass streams bsize-wide blocks that overlap
//     by 2*partime*rad; no halo exchange between PEs is ever needed.
//   * The whole pass is driven by a single collapsed loop over a global
//     vector index (the paper's loop-collapse / exit-condition
//     optimization); block/row/lane coordinates are decomposed from it.
//
// The accelerator executes any ordered TapSet (the paper's star stencils
// via StarStencil, box stencils via make_box_stencil, or custom shapes).
// One `run_pass` advances the grid by up to `partime` time steps; `run`
// chains ceil(iterations / partime) passes, disabling trailing PEs
// (delay-only pass-through) on the final partial pass.
//
// The output is bit-exact against the naive reference (`reference_run`)
// for any configuration and grid size: the integration test suite pins
// this for star and box stencils alike.
#pragma once

#include <cstdint>
#include <vector>

#include "common/cancellation.hpp"
#include "grid/grid.hpp"
#include "pipeline/processing_element.hpp"
#include "stencil/accel_config.hpp"
#include "stencil/star_stencil.hpp"
#include "stencil/tap_set.hpp"

namespace fpga_stencil {

/// Execution statistics of one `run` call, in the zero-stall pipeline model
/// (one vector per cycle). The performance model layers memory-controller
/// behaviour on top of these raw counts.
struct RunStats {
  int passes = 0;
  std::int64_t time_steps = 0;          ///< total stencil iterations applied
  std::int64_t cells_streamed = 0;      ///< incl. halos, warm-up and drain
  std::int64_t cells_written = 0;       ///< valid cells retired
  std::int64_t vectors_processed = 0;   ///< == pipeline cycles, zero-stall
  std::int64_t block_passes = 0;        ///< blocks streamed across all passes

  // Resilience counters, populated by the fault-aware execution paths
  // (fault/resilient_runner, ocl retry wrappers); all zero in fault-free
  // runs, so benches can report resilience overhead directly.
  std::int64_t faults_injected = 0;     ///< injector fires observed this run
  std::int64_t transient_retries = 0;   ///< backoff retries of shim calls
  std::int64_t watchdog_trips = 0;      ///< passes unwound by the watchdog
  std::int64_t checksum_failures = 0;   ///< corrupted passes detected
  std::int64_t pass_replays = 0;        ///< pass attempts repeated
  std::int64_t checkpoints_saved = 0;
  std::int64_t checkpoint_restores = 0;
  bool degraded_to_reference = false;   ///< fell back to the CPU golden path

  /// Redundant work factor actually incurred (streamed / written).
  [[nodiscard]] double redundancy() const {
    return cells_written > 0 ? double(cells_streamed) / double(cells_written)
                             : 0.0;
  }

  /// Folds the streaming/resilience counters of another run (e.g. one
  /// pass attempt) into this aggregate.
  void accumulate(const RunStats& other) {
    passes += other.passes;
    time_steps += other.time_steps;
    cells_streamed += other.cells_streamed;
    cells_written += other.cells_written;
    vectors_processed += other.vectors_processed;
    block_passes += other.block_passes;
    faults_injected += other.faults_injected;
    transient_retries += other.transient_retries;
    watchdog_trips += other.watchdog_trips;
    checksum_failures += other.checksum_failures;
    pass_replays += other.pass_replays;
    checkpoints_saved += other.checkpoints_saved;
    checkpoint_restores += other.checkpoint_restores;
    degraded_to_reference = degraded_to_reference || other.degraded_to_reference;
  }
};

/// Validates `cfg` and resolves an automatic (0) stage_lag to the tap
/// set's forward reach in whole rows: radius for star stencils, radius+1
/// for shapes whose farthest tap crosses a row boundary (box corners).
/// This is the exact derivation every executor and the engine's plan
/// cache share, so a cached plan equals what StencilAccelerator runs.
AcceleratorConfig resolve_stage_lag(const TapSet& taps,
                                    AcceleratorConfig cfg);

class StencilAccelerator {
 public:
  /// Generic construction: executes `taps` under `cfg`. If cfg.stage_lag
  /// is 0 (auto) it is derived from the tap set's forward reach (equal to
  /// the radius for star stencils, radius+1 rows for box corners).
  StencilAccelerator(const TapSet& taps, const AcceleratorConfig& cfg);

  /// Star-stencil convenience (the paper's benchmarks).
  StencilAccelerator(const StarStencil& stencil, const AcceleratorConfig& cfg);

  /// Advances `grid` by `iterations` time steps in place (2D configs
  /// only). `scratch`, when non-null, donates its storage for the internal
  /// ping-pong grid and receives it back on return (buffer-pool reuse
  /// across runs); null keeps the original allocate-per-run behavior.
  /// A non-null `cancel` token is polled at sub-block granularity; a
  /// tripped token throws CancelledError / DeadlineExceededError with
  /// `grid` still holding the last *completed* pass (never a partial one)
  /// and `scratch` left empty (the aborted pass drops its storage).
  RunStats run(Grid2D<float>& grid, int iterations,
               std::vector<float>* scratch = nullptr,
               const CancellationToken* cancel = nullptr);

  /// Advances `grid` by `iterations` time steps in place (3D configs only).
  RunStats run(Grid3D<float>& grid, int iterations,
               std::vector<float>* scratch = nullptr,
               const CancellationToken* cancel = nullptr);

  /// The configuration as actually executed (stage_lag resolved).
  [[nodiscard]] const AcceleratorConfig& config() const { return cfg_; }
  [[nodiscard]] const TapSet& taps() const { return taps_; }

 private:
  /// One pass of `steps <= partime` time steps over the whole grid.
  void run_pass(const Grid2D<float>& in, Grid2D<float>& out, int steps,
                RunStats& stats, const CancellationToken* cancel);
  void run_pass(const Grid3D<float>& in, Grid3D<float>& out, int steps,
                RunStats& stats, const CancellationToken* cancel);

  TapSet taps_;
  AcceleratorConfig cfg_;
  std::vector<ProcessingElement> pes_;
  // Ping-pong vector buffers reused across cycles.
  std::vector<float> vec_a_, vec_b_;
};

}  // namespace fpga_stencil
