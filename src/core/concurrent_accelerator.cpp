#include "core/concurrent_accelerator.hpp"

#include <atomic>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.hpp"
#include "fault/watchdog.hpp"
#include "pipeline/sync_channel.hpp"
#include "telemetry/telemetry.hpp"

namespace fpga_stencil {
namespace {

using Vec = std::vector<float>;

/// SEU model: flips one deterministic-geometry bit of one lane of the
/// vector about to enter the PE's shift register.
void inject_bit_flip(FaultInjector& fi, Vec& v) {
  const std::uint32_t lane = fi.pick_lane(std::uint32_t(v.size()));
  std::uint32_t bits;
  std::memcpy(&bits, &v[lane], sizeof(bits));
  bits ^= 1u << fi.pick_bit();
  std::memcpy(&v[lane], &bits, sizeof(bits));
}

/// Everything one pass needs, independent of dimensionality: the block
/// contexts in streaming order, the per-block vector count, and callbacks
/// implementing the read/write kernels' data movement.
struct PassGeometry {
  std::vector<BlockContext> blocks;
  std::int64_t vectors_per_block = 0;
  /// Fills `out` with the input vector for (block, q).
  std::function<void(std::size_t, std::int64_t, float*)> read;
  /// Retires the output vector for (block, q); returns cells written.
  std::function<int(std::size_t, std::int64_t, const float*)> write;
};

/// One pass of `steps` time steps, executed as a true dataflow: a reader
/// thread, one thread per PE, and the calling thread as the write kernel.
///
/// With a watchdog armed, a stalled stage (injected hang/stall, or any
/// future bug) is unwound rather than deadlocking: the timeout closes
/// every channel and opens the injector's stall gate, each stage thread
/// observes end-of-stream / ChannelClosedError and exits, and the pass
/// throws PassAbortedError after joining all threads.
void run_pass_concurrent(const TapSet& taps, const AcceleratorConfig& cfg,
                         const PassGeometry& geo, int steps,
                         const RunOptions& opts, RunStats& stats) {
  const int stages = cfg.partime;
  FaultInjector* fi = opts.injector;
  if (fi) fi->reset_stalls();

  // Trace lanes: 0 = read kernel, 1..stages = PEs, stages+1 = write kernel.
  Telemetry* const tel = opts.telemetry;
  const int write_lane = stages + 1;
  if (tel) {
    Tracer& tr = tel->tracer();
    tr.set_thread_name(0, "read_kernel");
    for (int k = 0; k < stages; ++k) {
      tr.set_thread_name(k + 1, "PE" + std::to_string(k));
    }
    tr.set_thread_name(write_lane, "write_kernel");
  }

  std::vector<std::unique_ptr<SyncChannel<Vec>>> channels;
  channels.reserve(std::size_t(stages) + 1);
  for (int i = 0; i <= stages; ++i) {
    channels.push_back(std::make_unique<SyncChannel<Vec>>(opts.channel_depth));
    if (tel) {
      channels.back()->attach_probe(
          make_channel_probe(*tel, "channel." + std::to_string(i)));
    }
  }

  std::atomic<bool> aborted{false};
  const auto unwind = [&] {
    aborted.store(true, std::memory_order_release);
    if (tel) tel->tracer().instant("pipeline_unwind", write_lane);
    if (fi) fi->release_stalls();
    for (auto& ch : channels) ch->close();
  };

  std::optional<Watchdog> dog;
  if (opts.watchdog_deadline.count() > 0) {
    dog.emplace(opts.watchdog_deadline, unwind);
  }

  std::vector<std::thread> threads;
  threads.reserve(std::size_t(stages) + 1);

  Tracer::Span pass_span;
  if (tel) pass_span = tel->tracer().span("pass", write_lane);
  const Stopwatch pass_clock;
  const std::int64_t written_before = stats.cells_written;

  // Read kernel.
  threads.emplace_back([&] {
    Tracer::Span span;
    if (tel) span = tel->tracer().span("read_kernel", 0);
    try {
      for (std::size_t b = 0; b < geo.blocks.size(); ++b) {
        for (std::int64_t q = 0; q < geo.vectors_per_block; ++q) {
          if (aborted.load(std::memory_order_acquire)) return;
          Vec v(std::size_t(cfg.parvec));
          geo.read(b, q, v.data());
          if (fi && fi->should_fire(FaultSite::channel_stall)) {
            fi->stall_until_released();
            // Woken by the watchdog's unwind, not a real release: exit
            // without touching further fault sites, so an aborted attempt
            // consumes only the stall's own budget.
            if (aborted.load(std::memory_order_acquire)) return;
          }
          channels[0]->write(std::move(v));
        }
      }
      channels[0]->close();
    } catch (const ChannelClosedError&) {
      // Pipeline shutdown raced our write; nothing to clean up.
    }
  });

  // Compute PEs: each an autorun-style loop over its input channel.
  for (int k = 0; k < stages; ++k) {
    threads.emplace_back([&, k] {
      Tracer::Span span;
      Counter* vectors = nullptr;
      if (tel) {
        span = tel->tracer().span("PE" + std::to_string(k), k + 1);
        vectors =
            &tel->metrics().counter("pe." + std::to_string(k) + ".vectors");
      }
      try {
        ProcessingElement pe(taps, cfg, k);
        Vec out(std::size_t(cfg.parvec));
        for (std::size_t b = 0; b < geo.blocks.size(); ++b) {
          BlockContext ctx = geo.blocks[b];
          ctx.passthrough = k >= steps;
          pe.begin_block(ctx);
          for (std::int64_t q = 0; q < geo.vectors_per_block; ++q) {
            std::optional<Vec> in = channels[std::size_t(k)]->read();
            if (!in.has_value()) {
              // Upstream ended early: the pass is being unwound.
              channels[std::size_t(k) + 1]->close();
              return;
            }
            if (fi && fi->should_fire(FaultSite::kernel_hang)) {
              fi->stall_until_released();
              if (aborted.load(std::memory_order_acquire)) {
                channels[std::size_t(k) + 1]->close();
                return;
              }
            }
            if (fi && fi->should_fire(FaultSite::seu_bit_flip)) {
              inject_bit_flip(*fi, *in);
            }
            pe.process_vector(q, *in, out);
            if (vectors) vectors->add(1);
            channels[std::size_t(k) + 1]->write(out);
          }
        }
        channels[std::size_t(k) + 1]->close();
      } catch (const ChannelClosedError&) {
        // Downstream closed under us; exit, the write kernel reports.
      }
    });
  }

  // Write kernel runs on the calling thread. With a cancellation token
  // attached it polls the token between bounded channel reads, so a
  // cancel/deadline trips within one poll interval even while the
  // pipeline is streaming normally.
  const CancellationToken* const cancel =
      opts.cancel.valid() ? &opts.cancel : nullptr;
  constexpr std::chrono::milliseconds kCancelPoll{5};
  Tracer::Span write_span;
  if (tel) write_span = tel->tracer().span("write_kernel", write_lane);
  bool underrun = false;
  bool cancelled = false;
  for (std::size_t b = 0; b < geo.blocks.size() && !underrun && !cancelled;
       ++b) {
    for (std::int64_t q = 0; q < geo.vectors_per_block; ++q) {
      std::optional<Vec> v;
      if (cancel) {
        Vec tmp;
        for (;;) {
          if (cancel->cancel_requested()) {
            cancelled = true;
            break;
          }
          const ChannelStatus st =
              channels[std::size_t(stages)]->read_for(tmp, kCancelPoll);
          if (st == ChannelStatus::ok) {
            v = std::move(tmp);
            break;
          }
          if (st == ChannelStatus::closed) break;  // leaves v empty
        }
        if (cancelled) break;
      } else {
        v = channels[std::size_t(stages)]->read();
      }
      if (!v.has_value()) {
        underrun = true;
        break;
      }
      if (dog) dog->kick();
      stats.cells_written += geo.write(b, q, v->data());
      stats.cells_streamed += cfg.parvec;
    }
    if (!underrun && !cancelled) {
      stats.vectors_processed += geo.vectors_per_block;
      ++stats.block_passes;
    }
  }
  write_span.end();

  // Make sure every stage observes shutdown before joining.
  if (underrun || cancelled) unwind();
  if (dog) dog->stop();
  for (std::thread& t : threads) t.join();
  pass_span.end();

  if (tel) {
    if (underrun) tel->metrics().counter("pipeline.underruns").add(1);
    record_pass_metrics(*tel, "pipeline",
                        stats.cells_written - written_before,
                        pass_clock.nanoseconds());
  }

  if (cancelled) {
    // The pass output never committed (it lives in the scratch side the
    // caller discards on unwind), so the caller-visible grid still holds
    // the last completed pass.
    cancel->throw_if_cancelled();
  }
  if (underrun) {
    throw PassAbortedError(
        dog && dog->fired()
            ? "concurrent pass unwound by watchdog (no progress within "
              "deadline)"
            : "concurrent pass aborted: pipeline underrun");
  }
}

RunStats run_concurrent_impl(const TapSet& taps, const AcceleratorConfig& cfg,
                             Grid2D<float>& grid, int iterations,
                             const RunOptions& options) {
  FPGASTENCIL_EXPECT(cfg.dims == 2, "2D run on a 3D configuration");
  FPGASTENCIL_EXPECT(iterations >= 0, "iterations must be non-negative");
  // Resolve the stage lag exactly as StencilAccelerator does.
  AcceleratorConfig rcfg = resolve_stage_lag(taps, cfg);
  RunOptions ropts = options;
  if (!ropts.telemetry) ropts.telemetry = rcfg.telemetry;

  RunStats stats;
  Grid2D<float> scratch =
      ropts.scratch
          ? Grid2D<float>(grid.nx(), grid.ny(), std::move(*ropts.scratch))
          : Grid2D<float>(grid.nx(), grid.ny());
  int remaining = iterations;
  while (remaining > 0) {
    if (ropts.cancel.valid()) ropts.cancel.throw_if_cancelled();
    const int steps = std::min(remaining, rcfg.partime);
    const BlockingPlan plan = make_blocking_plan(rcfg, grid.nx(), grid.ny());
    const std::int64_t halo = rcfg.halo();
    const std::int64_t drain = rcfg.stream_drain();
    const std::int64_t csize = rcfg.csize_x();
    const Grid2D<float>& in = grid;
    Grid2D<float>& out = scratch;

    PassGeometry geo;
    geo.vectors_per_block = plan.cells_streamed_per_pass / rcfg.parvec;
    for (std::int64_t bx = 0; bx < plan.blocks_x; ++bx) {
      BlockContext ctx;
      ctx.block_x0 = bx * csize - halo;
      ctx.nx = in.nx();
      ctx.ny = in.ny();
      geo.blocks.push_back(ctx);
    }
    geo.read = [&, halo, csize](std::size_t b, std::int64_t q, float* v) {
      const std::int64_t block_x0 = std::int64_t(b) * csize - halo;
      const std::int64_t flat = q * rcfg.parvec;
      const std::int64_t y = flat / rcfg.bsize_x;
      const std::int64_t xr = flat % rcfg.bsize_x;
      for (std::int64_t l = 0; l < rcfg.parvec; ++l) {
        const std::int64_t xg = block_x0 + xr + l;
        v[l] = (xg >= 0 && xg < in.nx() && y < in.ny()) ? in.at(xg, y) : 0.0f;
      }
    };
    geo.write = [&, halo, drain, csize](std::size_t b, std::int64_t q,
                                        const float* v) {
      const std::int64_t block_x0 = std::int64_t(b) * csize - halo;
      const std::int64_t valid_x_end =
          std::min(in.nx(), (std::int64_t(b) + 1) * csize);
      const std::int64_t flat = q * rcfg.parvec;
      const std::int64_t yg = flat / rcfg.bsize_x - drain;
      if (yg < 0 || yg >= in.ny()) return 0;
      int written = 0;
      for (std::int64_t l = 0; l < rcfg.parvec; ++l) {
        const std::int64_t x_rel = flat % rcfg.bsize_x + l;
        const std::int64_t xg = block_x0 + x_rel;
        if (x_rel >= halo && x_rel < halo + csize && xg < valid_x_end) {
          out.at(xg, yg) = v[l];
          ++written;
        }
      }
      return written;
    };

    run_pass_concurrent(taps, rcfg, geo, steps, ropts, stats);
    std::swap(grid, scratch);
    remaining -= steps;
    stats.time_steps += steps;
    ++stats.passes;
  }
  if (ropts.scratch) *ropts.scratch = scratch.release_storage();
  return stats;
}

RunStats run_concurrent_impl(const TapSet& taps, const AcceleratorConfig& cfg,
                             Grid3D<float>& grid, int iterations,
                             const RunOptions& options) {
  FPGASTENCIL_EXPECT(cfg.dims == 3, "3D run on a 2D configuration");
  FPGASTENCIL_EXPECT(iterations >= 0, "iterations must be non-negative");
  AcceleratorConfig rcfg = resolve_stage_lag(taps, cfg);
  RunOptions ropts = options;
  if (!ropts.telemetry) ropts.telemetry = rcfg.telemetry;

  RunStats stats;
  Grid3D<float> scratch =
      ropts.scratch
          ? Grid3D<float>(grid.nx(), grid.ny(), grid.nz(),
                          std::move(*ropts.scratch))
          : Grid3D<float>(grid.nx(), grid.ny(), grid.nz());
  int remaining = iterations;
  while (remaining > 0) {
    if (ropts.cancel.valid()) ropts.cancel.throw_if_cancelled();
    const int steps = std::min(remaining, rcfg.partime);
    const BlockingPlan plan =
        make_blocking_plan(rcfg, grid.nx(), grid.ny(), grid.nz());
    const std::int64_t halo = rcfg.halo();
    const std::int64_t drain = rcfg.stream_drain();
    const std::int64_t csx = rcfg.csize_x();
    const std::int64_t csy = rcfg.csize_y();
    const std::int64_t plane = rcfg.row_cells();
    const Grid3D<float>& in = grid;
    Grid3D<float>& out = scratch;

    PassGeometry geo;
    geo.vectors_per_block = plan.cells_streamed_per_pass / rcfg.parvec;
    for (std::int64_t by = 0; by < plan.blocks_y; ++by) {
      for (std::int64_t bx = 0; bx < plan.blocks_x; ++bx) {
        BlockContext ctx;
        ctx.block_x0 = bx * csx - halo;
        ctx.block_y0 = by * csy - halo;
        ctx.nx = in.nx();
        ctx.ny = in.ny();
        ctx.nz = in.nz();
        geo.blocks.push_back(ctx);
      }
    }
    geo.read = [&, plane](std::size_t b, std::int64_t q, float* v) {
      const BlockContext& ctx = geo.blocks[b];
      const std::int64_t flat = q * rcfg.parvec;
      const std::int64_t z = flat / plane;
      const std::int64_t rem = flat % plane;
      const std::int64_t yg = ctx.block_y0 + rem / rcfg.bsize_x;
      const std::int64_t xr = rem % rcfg.bsize_x;
      const bool row_ok = z < in.nz() && yg >= 0 && yg < in.ny();
      for (std::int64_t l = 0; l < rcfg.parvec; ++l) {
        const std::int64_t xg = ctx.block_x0 + xr + l;
        v[l] = (row_ok && xg >= 0 && xg < in.nx()) ? in.at(xg, yg, z) : 0.0f;
      }
    };
    geo.write = [&, halo, drain, csx, csy, plane](
                    std::size_t b, std::int64_t q, const float* v) {
      const BlockContext& ctx = geo.blocks[b];
      const std::int64_t valid_x_end =
          std::min(in.nx(), ctx.block_x0 + halo + csx);
      const std::int64_t valid_y_end =
          std::min(in.ny(), ctx.block_y0 + halo + csy);
      const std::int64_t flat = q * rcfg.parvec;
      const std::int64_t zg = flat / plane - drain;
      if (zg < 0 || zg >= in.nz()) return 0;
      const std::int64_t rem = flat % plane;
      const std::int64_t y_rel = rem / rcfg.bsize_x;
      const std::int64_t yg = ctx.block_y0 + y_rel;
      if (y_rel < halo || y_rel >= halo + csy || yg >= valid_y_end) return 0;
      int written = 0;
      for (std::int64_t l = 0; l < rcfg.parvec; ++l) {
        const std::int64_t x_rel = rem % rcfg.bsize_x + l;
        const std::int64_t xg = ctx.block_x0 + x_rel;
        if (x_rel >= halo && x_rel < halo + csx && xg < valid_x_end) {
          out.at(xg, yg, zg) = v[l];
          ++written;
        }
      }
      return written;
    };

    run_pass_concurrent(taps, rcfg, geo, steps, ropts, stats);
    std::swap(grid, scratch);
    remaining -= steps;
    stats.time_steps += steps;
    ++stats.passes;
  }
  if (ropts.scratch) *ropts.scratch = scratch.release_storage();
  return stats;
}

}  // namespace

template <typename GridT>
RunStats run_concurrent(const TapSet& taps, const AcceleratorConfig& cfg,
                        GridT& grid, int iterations,
                        const RunOptions& options) {
  return run_concurrent_impl(taps, cfg, grid, iterations, options);
}

template RunStats run_concurrent<Grid2D<float>>(const TapSet&,
                                                const AcceleratorConfig&,
                                                Grid2D<float>&, int,
                                                const RunOptions&);
template RunStats run_concurrent<Grid3D<float>>(const TapSet&,
                                                const AcceleratorConfig&,
                                                Grid3D<float>&, int,
                                                const RunOptions&);

}  // namespace fpga_stencil
