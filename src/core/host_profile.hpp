// The execution host, as the autotuner and bench artifacts see it: core
// count, cache hierarchy sizes, and the toolchain/arch flags that change
// generated code. The fingerprint keys TuningCache entries (a tuned plan
// is a fact about one machine + one build) and stamps every BENCH_*.json
// so cross-host numbers are comparable.
#pragma once

#include <cstdint>
#include <string>

namespace fpga_stencil {

class JsonWriter;  // common/json.hpp; reference-only here

struct HostProfile {
  int cores = 1;                ///< std::thread::hardware_concurrency
  std::int64_t l1_bytes = 0;    ///< per-core L1 data cache
  std::int64_t l2_bytes = 0;    ///< per-core (or per-cluster) L2
  std::int64_t llc_bytes = 0;   ///< last-level cache (L3, or L2 when no L3)
  bool native_arch = false;     ///< built with FPGASTENCIL_NATIVE_ARCH
  std::string compiler;         ///< e.g. "gcc 13.2.0"

  /// Stable identity string, e.g. "c8-l1:32k-l2:512k-llc:16384k-portable-
  /// gcc_13.2.0". Two hosts (or two builds) with equal fingerprints may
  /// share tuned plans; anything else invalidates them.
  [[nodiscard]] std::string fingerprint() const;
};

/// The detected profile of this process's host, probed once (sysconf /
/// /sys cache topology with conservative fallbacks when the kernel hides
/// them) and cached for the process lifetime.
const HostProfile& host_profile();

/// Emits `"host": {...}` (cores, cache sizes, native_arch, compiler,
/// fingerprint) into an open JSON object -- the block every BENCH_*.json
/// exporter records since schema_version 2.
void write_host_profile(JsonWriter& w);

}  // namespace fpga_stencil
