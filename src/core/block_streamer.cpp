#include "core/block_streamer.hpp"

#include <string>
#include <utility>

#include "common/stopwatch.hpp"
#include "kernels/kernel_registry.hpp"
#include "kernels/kernel_workspace.hpp"
#include "telemetry/telemetry.hpp"

namespace fpga_stencil {
namespace {

/// Cancellation poll cadence: every 512 vectors, plus q = 0 so an
/// already-tripped token aborts before the block does any work. Cheap
/// (one branch per vector) yet far finer than the one-block-time bound
/// the engine promises for cancel().
constexpr std::int64_t kCancelCheckMask = 511;

/// Modular wrap into [0, n) for periodic fetches.
std::int64_t wrap_index(std::int64_t i, std::int64_t n) {
  const std::int64_t m = i % n;
  return m < 0 ? m + n : m;
}

/// Runs the block on a registry kernel if this configuration has one.
/// Returns false (off-envelope or dispatch disabled) when the caller
/// must fall back to the interpreter. Telemetry, when attached: hit/miss
/// counters plus a per-kernel retired-cell throughput gauge.
template <typename GridT>
bool try_specialized(std::vector<ProcessingElement>& pes,
                     const BlockingPlan& plan, const BlockExtent& blk,
                     const GridT& in, GridT& out, int steps, RunStats& stats,
                     const CancellationToken* cancel) {
  const AcceleratorConfig& cfg = plan.config;
  if (!cfg.use_specialized_kernels || pes.empty()) return false;
  const TapSet& taps = pes.front().taps();
  // Specialized kernels hard-code the clamp border select-chains
  // (kernels/run_specialized_impl.hpp); every other boundary condition
  // takes the generic interpreter below.
  if (!taps.boundary().is_clamp()) return false;
  const SpecializedKernel* kernel = KernelRegistry::instance().find(taps, cfg);
  if (kernel == nullptr) return false;
  Telemetry* const tel = cfg.telemetry;
  if (tel) tel->metrics().counter("kernels.dispatch_specialized").add(1);

  // Coefficients travel as runtime data in tap (= accumulation) order;
  // one specialized instantiation serves every coefficient set.
  std::vector<float>& cf = tls_kernel_workspace().coefficients();
  cf.resize(taps.size());
  for (std::size_t i = 0; i < taps.size(); ++i) {
    cf[i] = taps.taps()[i].coeff;
  }

  const std::int64_t written_before = stats.cells_written;
  const Stopwatch clock;
  if constexpr (std::is_same_v<GridT, Grid2D<float>>) {
    kernel->run_2d(plan, blk, in, out, steps, cf.data(), stats, cancel);
  } else {
    kernel->run_3d(plan, blk, in, out, steps, cf.data(), stats, cancel);
  }
  if (tel) {
    const std::int64_t ns = clock.nanoseconds();
    const std::int64_t cells = stats.cells_written - written_before;
    if (ns > 0) {
      tel->metrics()
          .gauge(std::string("kernels.") + kernel->name + ".cells_per_s")
          .set(cells * 1'000'000'000 / ns);
    }
  }
  return true;
}

}  // namespace

void stream_block(std::vector<ProcessingElement>& pes,
                  const BlockingPlan& plan, const BlockExtent& blk,
                  const Grid2D<float>& in, Grid2D<float>& out, int steps,
                  std::span<float> va, std::span<float> vb, RunStats& stats,
                  const CancellationToken* cancel) {
  if (try_specialized(pes, plan, blk, in, out, steps, stats, cancel)) return;
  if (plan.config.telemetry) {
    plan.config.telemetry->metrics().counter("kernels.dispatch_fallback")
        .add(1);
  }
  stream_block_generic(pes, plan, blk, in, out, steps, va, vb, stats, cancel);
}

void stream_block(std::vector<ProcessingElement>& pes,
                  const BlockingPlan& plan, const BlockExtent& blk,
                  const Grid3D<float>& in, Grid3D<float>& out, int steps,
                  std::span<float> va, std::span<float> vb, RunStats& stats,
                  const CancellationToken* cancel) {
  if (try_specialized(pes, plan, blk, in, out, steps, stats, cancel)) return;
  if (plan.config.telemetry) {
    plan.config.telemetry->metrics().counter("kernels.dispatch_fallback")
        .add(1);
  }
  stream_block_generic(pes, plan, blk, in, out, steps, va, vb, stats, cancel);
}

void stream_block_generic(std::vector<ProcessingElement>& pes,
                          const BlockingPlan& plan, const BlockExtent& blk,
                          const Grid2D<float>& in, Grid2D<float>& out,
                          int steps, std::span<float> va, std::span<float> vb,
                          RunStats& stats, const CancellationToken* cancel) {
  const AcceleratorConfig& cfg = plan.config;
  const std::int64_t halo = cfg.halo();
  const std::int64_t drain = cfg.stream_drain();
  const std::int64_t csize = cfg.csize_x();
  // Periodic boundaries wrap-extend the stream instead of taking a border
  // select-chain in the PEs: every fetch wraps modulo the grid, and the
  // streamed dimension is pre-padded with `drain` ghost rows so row 0's
  // backward influence cone (up to partime*radius rows) is fed with real
  // wrapped data before the first retired row emerges. The write index
  // shifts by the same pre-pad, so retired coordinates are unchanged.
  const bool periodic = !pes.empty() && pes.front().taps().boundary().kind ==
                                            BoundaryKind::periodic;
  const std::int64_t prepad = periodic ? drain : 0;
  const std::int64_t vectors_per_block =
      (plan.cells_streamed_per_pass + prepad * cfg.bsize_x) / cfg.parvec;

  BlockContext ctx;
  ctx.block_x0 = blk.x0;
  ctx.nx = in.nx();
  ctx.ny = in.ny();
  for (auto& pe : pes) {
    ctx.passthrough = pe.stage() >= steps;
    pe.begin_block(ctx);
  }

  // The collapsed loop: one global vector index drives the read kernel,
  // every PE, and the write kernel for this block pass.
  for (std::int64_t q = 0; q < vectors_per_block; ++q) {
    if (cancel && (q & kCancelCheckMask) == 0) cancel->throw_if_cancelled();
    // --- read kernel: fetch parvec cells (zero outside the grid) ---
    const std::int64_t flat_in = q * cfg.parvec;
    const std::int64_t y_in = flat_in / cfg.bsize_x;
    const std::int64_t x_rel_in = flat_in % cfg.bsize_x;
    if (periodic) {
      const std::int64_t ys = wrap_index(y_in - prepad, in.ny());
      for (std::int64_t l = 0; l < cfg.parvec; ++l) {
        const std::int64_t xs = wrap_index(blk.x0 + x_rel_in + l, in.nx());
        va[size_t(l)] = in.at(xs, ys);
      }
    } else {
      for (std::int64_t l = 0; l < cfg.parvec; ++l) {
        const std::int64_t xg = blk.x0 + x_rel_in + l;
        va[size_t(l)] = (xg >= 0 && xg < in.nx() && y_in < in.ny())
                            ? in.at(xg, y_in)
                            : 0.0f;
      }
    }
    stats.cells_streamed += cfg.parvec;

    // --- compute: chain of PEs ---
    std::span<float> cur = va;
    std::span<float> nxt = vb;
    for (auto& pe : pes) {
      pe.process_vector(q, cur, nxt);
      std::swap(cur, nxt);
    }

    // --- write kernel: retire valid cells ---
    const std::int64_t yg = y_in - drain - prepad;  // total chain lag
    if (yg < 0 || yg >= in.ny()) continue;
    for (std::int64_t l = 0; l < cfg.parvec; ++l) {
      const std::int64_t x_rel = x_rel_in + l;
      const std::int64_t xg = blk.x0 + x_rel;
      if (x_rel >= halo && x_rel < halo + csize && xg < blk.valid_x_end) {
        out.at(xg, yg) = cur[size_t(l)];
        ++stats.cells_written;
      }
    }
  }
  stats.vectors_processed += vectors_per_block;
  ++stats.block_passes;
}

void stream_block_generic(std::vector<ProcessingElement>& pes,
                          const BlockingPlan& plan, const BlockExtent& blk,
                          const Grid3D<float>& in, Grid3D<float>& out,
                          int steps, std::span<float> va, std::span<float> vb,
                          RunStats& stats, const CancellationToken* cancel) {
  const AcceleratorConfig& cfg = plan.config;
  const std::int64_t halo = cfg.halo();
  const std::int64_t drain = cfg.stream_drain();
  const std::int64_t csx = cfg.csize_x();
  const std::int64_t csy = cfg.csize_y();
  const std::int64_t plane = cfg.row_cells();
  // Periodic wrap-extended stream: see the 2D overload. The streamed
  // dimension here is z, so the pre-pad is `drain` ghost planes.
  const bool periodic = !pes.empty() && pes.front().taps().boundary().kind ==
                                            BoundaryKind::periodic;
  const std::int64_t prepad = periodic ? drain : 0;
  const std::int64_t vectors_per_block =
      (plan.cells_streamed_per_pass + prepad * plane) / cfg.parvec;

  BlockContext ctx;
  ctx.block_x0 = blk.x0;
  ctx.block_y0 = blk.y0;
  ctx.nx = in.nx();
  ctx.ny = in.ny();
  ctx.nz = in.nz();
  for (auto& pe : pes) {
    ctx.passthrough = pe.stage() >= steps;
    pe.begin_block(ctx);
  }

  for (std::int64_t q = 0; q < vectors_per_block; ++q) {
    if (cancel && (q & kCancelCheckMask) == 0) cancel->throw_if_cancelled();
    // --- read kernel ---
    const std::int64_t flat_in = q * cfg.parvec;
    const std::int64_t z_in = flat_in / plane;
    const std::int64_t rem_in = flat_in % plane;
    const std::int64_t y_rel_in = rem_in / cfg.bsize_x;
    const std::int64_t x_rel_in = rem_in % cfg.bsize_x;
    const std::int64_t yg_in = blk.y0 + y_rel_in;
    if (periodic) {
      const std::int64_t zs = wrap_index(z_in - prepad, in.nz());
      const std::int64_t ys = wrap_index(yg_in, in.ny());
      for (std::int64_t l = 0; l < cfg.parvec; ++l) {
        const std::int64_t xs = wrap_index(blk.x0 + x_rel_in + l, in.nx());
        va[size_t(l)] = in.at(xs, ys, zs);
      }
    } else {
      const bool row_in_grid = z_in < in.nz() && yg_in >= 0 && yg_in < in.ny();
      for (std::int64_t l = 0; l < cfg.parvec; ++l) {
        const std::int64_t xg = blk.x0 + x_rel_in + l;
        va[size_t(l)] = (row_in_grid && xg >= 0 && xg < in.nx())
                            ? in.at(xg, yg_in, z_in)
                            : 0.0f;
      }
    }
    stats.cells_streamed += cfg.parvec;

    // --- compute ---
    std::span<float> cur = va;
    std::span<float> nxt = vb;
    for (auto& pe : pes) {
      pe.process_vector(q, cur, nxt);
      std::swap(cur, nxt);
    }

    // --- write kernel ---
    const std::int64_t zg = z_in - drain - prepad;
    if (zg < 0 || zg >= in.nz()) continue;
    const std::int64_t y_rel = y_rel_in;
    const std::int64_t yg = blk.y0 + y_rel;
    if (y_rel < halo || y_rel >= halo + csy || yg >= blk.valid_y_end) continue;
    for (std::int64_t l = 0; l < cfg.parvec; ++l) {
      const std::int64_t x_rel = x_rel_in + l;
      const std::int64_t xg = blk.x0 + x_rel;
      if (x_rel >= halo && x_rel < halo + csx && xg < blk.valid_x_end) {
        out.at(xg, yg, zg) = cur[size_t(l)];
        ++stats.cells_written;
      }
    }
  }
  stats.vectors_processed += vectors_per_block;
  ++stats.block_passes;
}

}  // namespace fpga_stencil
