// Concurrent dataflow execution of the accelerator.
//
// On silicon, the read kernel, every autorun PE, and the write kernel run
// *simultaneously*, connected by channels. StencilAccelerator emulates that
// pipeline with an equivalent (and faster) synchronous sweep; this module
// executes the real thing -- one host thread per kernel, blocking
// SyncChannels between them -- to demonstrate that the design is free of
// ordering assumptions beyond the channel protocol. Output is bit-exact
// with both the synchronous simulator and the naive reference (pinned by
// tests).
//
// Use StencilAccelerator for speed; use this to study the dataflow.
//
// Fault tolerance: with a ConcurrentOptions carrying a FaultInjector the
// pass exercises the kernel_hang / channel_stall / seu_bit_flip sites,
// and a watchdog (deadline > 0) unwinds a stalled pass by closing every
// channel -- stage threads observe ChannelClosedError / end-of-stream and
// join, and the pass throws PassAbortedError with the input grid intact
// (pass output is only committed on a complete pass). The injector is
// deliberately explicit here rather than read from the process-wide
// registry: injecting a stall without a watchdog would deadlock.
#pragma once

#include <chrono>

#include "core/stencil_accelerator.hpp"
#include "fault/fault_injector.hpp"

namespace fpga_stencil {

/// Knobs of the threaded dataflow execution. This is the single options
/// struct of the unified `run_concurrent` entry point (the former
/// `ConcurrentOptions`; that name remains as an alias).
struct RunOptions {
  /// Per-channel vector capacity (the OpenCL `depth` attribute).
  std::size_t channel_depth = 64;
  /// Fault sites are armed only when an injector is supplied.
  FaultInjector* injector = nullptr;
  /// No-progress deadline at the write kernel; 0 disables the watchdog.
  std::chrono::milliseconds watchdog_deadline{0};
  /// Observability hook; falls back to AcceleratorConfig::telemetry when
  /// null. With a hook attached every pass records kernel spans (one trace
  /// lane per pipeline stage), channel depth high-water marks and
  /// blocked-time counters, and per-pass cell throughput.
  Telemetry* telemetry = nullptr;
  /// Reusable backing store for the internal ping-pong scratch grid: when
  /// non-null its storage is adopted for the run and returned on normal
  /// completion (the engine's buffer pool threads through here). An
  /// aborted pass drops the storage; the vector is left empty.
  std::vector<float>* scratch = nullptr;
};

/// Legacy name of RunOptions, kept so existing call sites keep compiling.
using ConcurrentOptions = RunOptions;

/// Advances `grid` by `iterations` time steps in place using one thread
/// per pipeline stage. Throws PassAbortedError if the watchdog unwinds a
/// stalled pass (the grid then still holds the last completed pass).
/// Instantiated for Grid2D<float> and Grid3D<float>.
template <typename GridT>
RunStats run_concurrent(const TapSet& taps, const AcceleratorConfig& cfg,
                        GridT& grid, int iterations,
                        const RunOptions& options = {});

extern template RunStats run_concurrent<Grid2D<float>>(
    const TapSet&, const AcceleratorConfig&, Grid2D<float>&, int,
    const RunOptions&);
extern template RunStats run_concurrent<Grid3D<float>>(
    const TapSet&, const AcceleratorConfig&, Grid3D<float>&, int,
    const RunOptions&);

/// Deprecated shims over the unified entry point (the original
/// channel-depth-only interface). Intentionally without a default depth:
/// a four-argument call resolves to the RunOptions template above.
[[deprecated(
    "use run_concurrent(taps, cfg, grid, iters, RunOptions{.channel_depth = "
    "depth})")]]
RunStats run_concurrent(const TapSet& taps, const AcceleratorConfig& cfg,
                        Grid2D<float>& grid, int iterations,
                        std::size_t channel_depth);

[[deprecated(
    "use run_concurrent(taps, cfg, grid, iters, RunOptions{.channel_depth = "
    "depth})")]]
RunStats run_concurrent(const TapSet& taps, const AcceleratorConfig& cfg,
                        Grid3D<float>& grid, int iterations,
                        std::size_t channel_depth);

}  // namespace fpga_stencil
