// Concurrent dataflow execution of the accelerator.
//
// On silicon, the read kernel, every autorun PE, and the write kernel run
// *simultaneously*, connected by channels. StencilAccelerator emulates that
// pipeline with an equivalent (and faster) synchronous sweep; this module
// executes the real thing -- one host thread per kernel, blocking
// SyncChannels between them -- to demonstrate that the design is free of
// ordering assumptions beyond the channel protocol. Output is bit-exact
// with both the synchronous simulator and the naive reference (pinned by
// tests).
//
// Use StencilAccelerator for speed; use this to study the dataflow.
//
// Fault tolerance: with a ConcurrentOptions carrying a FaultInjector the
// pass exercises the kernel_hang / channel_stall / seu_bit_flip sites,
// and a watchdog (deadline > 0) unwinds a stalled pass by closing every
// channel -- stage threads observe ChannelClosedError / end-of-stream and
// join, and the pass throws PassAbortedError with the input grid intact
// (pass output is only committed on a complete pass). The injector is
// deliberately explicit here rather than read from the process-wide
// registry: injecting a stall without a watchdog would deadlock.
#pragma once

#include <chrono>

#include "core/stencil_accelerator.hpp"
#include "fault/fault_injector.hpp"

namespace fpga_stencil {

/// Knobs of the threaded dataflow execution.
struct ConcurrentOptions {
  /// Per-channel vector capacity (the OpenCL `depth` attribute).
  std::size_t channel_depth = 64;
  /// Fault sites are armed only when an injector is supplied.
  FaultInjector* injector = nullptr;
  /// No-progress deadline at the write kernel; 0 disables the watchdog.
  std::chrono::milliseconds watchdog_deadline{0};
  /// Observability hook; falls back to AcceleratorConfig::telemetry when
  /// null. With a hook attached every pass records kernel spans (one trace
  /// lane per pipeline stage), channel depth high-water marks and
  /// blocked-time counters, and per-pass cell throughput.
  Telemetry* telemetry = nullptr;
};

/// Advances `grid` by `iterations` time steps in place using one thread
/// per pipeline stage. Throws PassAbortedError if the watchdog unwinds a
/// stalled pass (the grid then still holds the last completed pass).
RunStats run_concurrent(const TapSet& taps, const AcceleratorConfig& cfg,
                        Grid2D<float>& grid, int iterations,
                        const ConcurrentOptions& options);

RunStats run_concurrent(const TapSet& taps, const AcceleratorConfig& cfg,
                        Grid3D<float>& grid, int iterations,
                        const ConcurrentOptions& options);

/// Fault-free convenience overloads (the original interface).
RunStats run_concurrent(const TapSet& taps, const AcceleratorConfig& cfg,
                        Grid2D<float>& grid, int iterations,
                        std::size_t channel_depth = 64);

RunStats run_concurrent(const TapSet& taps, const AcceleratorConfig& cfg,
                        Grid3D<float>& grid, int iterations,
                        std::size_t channel_depth = 64);

}  // namespace fpga_stencil
