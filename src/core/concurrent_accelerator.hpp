// Concurrent dataflow execution of the accelerator.
//
// On silicon, the read kernel, every autorun PE, and the write kernel run
// *simultaneously*, connected by channels. StencilAccelerator emulates that
// pipeline with an equivalent (and faster) synchronous sweep; this module
// executes the real thing -- one host thread per kernel, blocking
// SyncChannels between them -- to demonstrate that the design is free of
// ordering assumptions beyond the channel protocol. Output is bit-exact
// with both the synchronous simulator and the naive reference (pinned by
// tests).
//
// Use StencilAccelerator for speed; use this to study the dataflow.
//
// Fault tolerance: with a RunOptions carrying a FaultInjector the
// pass exercises the kernel_hang / channel_stall / seu_bit_flip sites,
// and a watchdog (deadline > 0) unwinds a stalled pass by closing every
// channel -- stage threads observe ChannelClosedError / end-of-stream and
// join, and the pass throws PassAbortedError with the input grid intact
// (pass output is only committed on a complete pass). The injector is
// deliberately explicit here rather than read from the process-wide
// registry: injecting a stall without a watchdog would deadlock.
//
// RunOptions itself lives in core/run_options.hpp: it is the one options
// struct shared by every single-board backend (see also engine/run.hpp
// for the routing entry point).
#pragma once

#include "core/run_options.hpp"
#include "core/stencil_accelerator.hpp"
#include "fault/fault_injector.hpp"

namespace fpga_stencil {

/// Advances `grid` by `iterations` time steps in place using one thread
/// per pipeline stage. Throws PassAbortedError if the watchdog unwinds a
/// stalled pass (the grid then still holds the last completed pass).
/// Instantiated for Grid2D<float> and Grid3D<float>.
template <typename GridT>
RunStats run_concurrent(const TapSet& taps, const AcceleratorConfig& cfg,
                        GridT& grid, int iterations,
                        const RunOptions& options = {});

extern template RunStats run_concurrent<Grid2D<float>>(
    const TapSet&, const AcceleratorConfig&, Grid2D<float>&, int,
    const RunOptions&);
extern template RunStats run_concurrent<Grid3D<float>>(
    const TapSet&, const AcceleratorConfig&, Grid3D<float>&, int,
    const RunOptions&);

}  // namespace fpga_stencil
