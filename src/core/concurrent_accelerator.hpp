// Concurrent dataflow execution of the accelerator.
//
// On silicon, the read kernel, every autorun PE, and the write kernel run
// *simultaneously*, connected by channels. StencilAccelerator emulates that
// pipeline with an equivalent (and faster) synchronous sweep; this module
// executes the real thing -- one host thread per kernel, blocking
// SyncChannels between them -- to demonstrate that the design is free of
// ordering assumptions beyond the channel protocol. Output is bit-exact
// with both the synchronous simulator and the naive reference (pinned by
// tests).
//
// Use StencilAccelerator for speed; use this to study the dataflow.
#pragma once

#include "core/stencil_accelerator.hpp"

namespace fpga_stencil {

/// Advances `grid` by `iterations` time steps in place using one thread
/// per pipeline stage. `channel_depth` is the per-channel vector capacity
/// (the OpenCL `depth` attribute).
RunStats run_concurrent(const TapSet& taps, const AcceleratorConfig& cfg,
                        Grid2D<float>& grid, int iterations,
                        std::size_t channel_depth = 64);

RunStats run_concurrent(const TapSet& taps, const AcceleratorConfig& cfg,
                        Grid3D<float>& grid, int iterations,
                        std::size_t channel_depth = 64);

}  // namespace fpga_stencil
