// Block-parallel execution: host-side parallelism from overlapped tiling.
//
// Overlapped spatial blocking (paper eq. 2) pads every block with a halo
// of partime*rad cells per side, which makes each block's full
// partime-step chain completely independent within a pass: no halo
// exchange, no ordering constraints between blocks. On the FPGA that
// independence buys redundancy-free synchronization between PEs; on the
// host it buys thread-level parallelism. This backend executes the exact
// BlockingPlan of the synchronous simulator but fans the blocks of each
// pass out over a pool of worker threads:
//
//   * One worker = one private PE chain + one pair of lane buffers
//     (leased from RunOptions::pool when set), so workers share nothing
//     but the two grids and the block cursor.
//   * Work stealing: workers claim flat block indices from a shared
//     atomic cursor, so an uneven last block never idles the pool.
//   * Passes are barriers: pass k+1 reads cells that pass k wrote into
//     neighbouring blocks' halo regions, so every block of a pass
//     retires before the grids ping-pong and the next pass starts.
//   * Determinism: each block writes only its own compute region
//     (disjoint by construction of the plan) through the same
//     stream_block() core as StencilAccelerator, so the output is
//     bit-exact with the sync simulator -- and therefore with the naive
//     reference -- for ANY worker count. Pinned by
//     tests/block_parallel_test.cpp, including under TSan.
//
// Scaling trade: more workers want more blocks (smaller bsize), but
// smaller blocks raise the redundancy factor streamed/valid (eq. 2).
// docs/PARALLEL.md quantifies the trade; the router only picks this
// backend when the plan yields at least two blocks per worker.
#pragma once

#include "core/run_options.hpp"
#include "core/stencil_accelerator.hpp"

namespace fpga_stencil {

/// Worker count a RunOptions asks for: `workers` when positive, else
/// std::thread::hardware_concurrency() (always >= 1). The routing rule
/// (>= 2 blocks per worker) uses this uncapped request.
[[nodiscard]] int requested_block_workers(int workers);

/// Workers a block-parallel run of `plan` actually spawns: the request
/// clamped to the plan's block count, so no worker is born idle.
[[nodiscard]] int resolved_block_workers(const RunOptions& options,
                                         const BlockingPlan& plan);

/// Advances `grid` by `iterations` time steps in place on a worker pool.
/// Bit-exact with StencilAccelerator::run for the same inputs regardless
/// of options.workers. Instantiated for Grid2D<float> and Grid3D<float>.
template <typename GridT>
RunStats run_block_parallel(const TapSet& taps, const AcceleratorConfig& cfg,
                            GridT& grid, int iterations,
                            const RunOptions& options = {});

extern template RunStats run_block_parallel<Grid2D<float>>(
    const TapSet&, const AcceleratorConfig&, Grid2D<float>&, int,
    const RunOptions&);
extern template RunStats run_block_parallel<Grid3D<float>>(
    const TapSet&, const AcceleratorConfig&, Grid3D<float>&, int,
    const RunOptions&);

}  // namespace fpga_stencil
