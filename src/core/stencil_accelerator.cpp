#include "core/stencil_accelerator.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "common/stopwatch.hpp"
#include "core/block_streamer.hpp"
#include "telemetry/telemetry.hpp"

namespace fpga_stencil {

AcceleratorConfig resolve_stage_lag(const TapSet& taps,
                                    AcceleratorConfig cfg) {
  cfg.validate();
  FPGASTENCIL_EXPECT(taps.dims() == cfg.dims && taps.radius() <= cfg.radius,
                     "tap set and configuration disagree on dims/radius");
  if (cfg.stage_lag == 0) {
    std::int64_t max_flat = taps.max_flat_offset(cfg.bsize_x, cfg.row_cells());
    // Reflective borders can mirror any tap to its abs-valued image, so
    // the shift register's forward reach is the abs worst case (equal to
    // the plain max for star/box sets, larger only for asymmetric shapes).
    if (taps.boundary().kind == BoundaryKind::reflective) {
      max_flat = std::max(max_flat,
                          taps.max_abs_flat_offset(cfg.bsize_x,
                                                   cfg.row_cells()));
    }
    const std::int64_t rows = ceil_div(
        std::max<std::int64_t>(max_flat, 1), cfg.row_cells());
    cfg.stage_lag = static_cast<int>(std::max<std::int64_t>(rows, 1));
  }
  return cfg;
}

StencilAccelerator::StencilAccelerator(const TapSet& taps,
                                       const AcceleratorConfig& cfg)
    : taps_(taps), cfg_(resolve_stage_lag(taps, cfg)) {
  FPGASTENCIL_EXPECT(taps.dims() == cfg_.dims && taps.radius() <= cfg_.radius,
                     "tap set and configuration disagree on dims/radius");
  pes_.reserve(static_cast<std::size_t>(cfg_.partime));
  for (int k = 0; k < cfg_.partime; ++k) {
    pes_.emplace_back(taps_, cfg_, k);
  }
  vec_a_.resize(static_cast<std::size_t>(cfg_.parvec));
  vec_b_.resize(static_cast<std::size_t>(cfg_.parvec));
}

StencilAccelerator::StencilAccelerator(const StarStencil& stencil,
                                       const AcceleratorConfig& cfg)
    : StencilAccelerator(stencil.to_taps(), cfg) {
  FPGASTENCIL_EXPECT(
      stencil.dims() == cfg.dims && stencil.radius() == cfg.radius,
      "stencil and configuration disagree on dims/radius");
}

RunStats StencilAccelerator::run(Grid2D<float>& grid, int iterations,
                                 std::vector<float>* scratch_storage,
                                 const CancellationToken* cancel) {
  FPGASTENCIL_EXPECT(cfg_.dims == 2, "2D run on a 3D configuration");
  FPGASTENCIL_EXPECT(iterations >= 0, "iterations must be non-negative");
  RunStats stats;
  Grid2D<float> scratch =
      scratch_storage
          ? Grid2D<float>(grid.nx(), grid.ny(), std::move(*scratch_storage))
          : Grid2D<float>(grid.nx(), grid.ny());
  int remaining = iterations;
  while (remaining > 0) {
    const int steps = std::min(remaining, cfg_.partime);
    const std::int64_t written_before = stats.cells_written;
    Tracer::Span span;
    if (cfg_.telemetry) span = cfg_.telemetry->tracer().span("sync_pass", 0, "sync");
    const Stopwatch pass_clock;
    run_pass(grid, scratch, steps, stats, cancel);
    if (cfg_.telemetry) {
      span.end();
      record_pass_metrics(*cfg_.telemetry, "sync",
                          stats.cells_written - written_before,
                          pass_clock.nanoseconds());
    }
    std::swap(grid, scratch);
    remaining -= steps;
    stats.time_steps += steps;
    ++stats.passes;
  }
  if (scratch_storage) *scratch_storage = scratch.release_storage();
  return stats;
}

RunStats StencilAccelerator::run(Grid3D<float>& grid, int iterations,
                                 std::vector<float>* scratch_storage,
                                 const CancellationToken* cancel) {
  FPGASTENCIL_EXPECT(cfg_.dims == 3, "3D run on a 2D configuration");
  FPGASTENCIL_EXPECT(iterations >= 0, "iterations must be non-negative");
  RunStats stats;
  Grid3D<float> scratch =
      scratch_storage
          ? Grid3D<float>(grid.nx(), grid.ny(), grid.nz(),
                          std::move(*scratch_storage))
          : Grid3D<float>(grid.nx(), grid.ny(), grid.nz());
  int remaining = iterations;
  while (remaining > 0) {
    const int steps = std::min(remaining, cfg_.partime);
    const std::int64_t written_before = stats.cells_written;
    Tracer::Span span;
    if (cfg_.telemetry) span = cfg_.telemetry->tracer().span("sync_pass", 0, "sync");
    const Stopwatch pass_clock;
    run_pass(grid, scratch, steps, stats, cancel);
    if (cfg_.telemetry) {
      span.end();
      record_pass_metrics(*cfg_.telemetry, "sync",
                          stats.cells_written - written_before,
                          pass_clock.nanoseconds());
    }
    std::swap(grid, scratch);
    remaining -= steps;
    stats.time_steps += steps;
    ++stats.passes;
  }
  if (scratch_storage) *scratch_storage = scratch.release_storage();
  return stats;
}

void StencilAccelerator::run_pass(const Grid2D<float>& in, Grid2D<float>& out,
                                  int steps, RunStats& stats,
                                  const CancellationToken* cancel) {
  const BlockingPlan plan = make_blocking_plan(cfg_, in.nx(), in.ny());
  for (std::int64_t b = 0; b < plan.total_blocks(); ++b) {
    stream_block(pes_, plan, block_extent(plan, b), in, out, steps,
                 std::span<float>(vec_a_), std::span<float>(vec_b_), stats,
                 cancel);
  }
}

void StencilAccelerator::run_pass(const Grid3D<float>& in, Grid3D<float>& out,
                                  int steps, RunStats& stats,
                                  const CancellationToken* cancel) {
  const BlockingPlan plan = make_blocking_plan(cfg_, in.nx(), in.ny(), in.nz());
  for (std::int64_t b = 0; b < plan.total_blocks(); ++b) {
    stream_block(pes_, plan, block_extent(plan, b), in, out, steps,
                 std::span<float>(vec_a_), std::span<float>(vec_b_), stats,
                 cancel);
  }
}

}  // namespace fpga_stencil
