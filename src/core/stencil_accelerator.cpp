#include "core/stencil_accelerator.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "common/stopwatch.hpp"
#include "telemetry/telemetry.hpp"

namespace fpga_stencil {

AcceleratorConfig resolve_stage_lag(const TapSet& taps,
                                    AcceleratorConfig cfg) {
  cfg.validate();
  FPGASTENCIL_EXPECT(taps.dims() == cfg.dims && taps.radius() <= cfg.radius,
                     "tap set and configuration disagree on dims/radius");
  if (cfg.stage_lag == 0) {
    const std::int64_t max_flat =
        taps.max_flat_offset(cfg.bsize_x, cfg.row_cells());
    const std::int64_t rows = ceil_div(
        std::max<std::int64_t>(max_flat, 1), cfg.row_cells());
    cfg.stage_lag = static_cast<int>(std::max<std::int64_t>(rows, 1));
  }
  return cfg;
}

StencilAccelerator::StencilAccelerator(const TapSet& taps,
                                       const AcceleratorConfig& cfg)
    : taps_(taps), cfg_(resolve_stage_lag(taps, cfg)) {
  FPGASTENCIL_EXPECT(taps.dims() == cfg_.dims && taps.radius() <= cfg_.radius,
                     "tap set and configuration disagree on dims/radius");
  pes_.reserve(static_cast<std::size_t>(cfg_.partime));
  for (int k = 0; k < cfg_.partime; ++k) {
    pes_.emplace_back(taps_, cfg_, k);
  }
  vec_a_.resize(static_cast<std::size_t>(cfg_.parvec));
  vec_b_.resize(static_cast<std::size_t>(cfg_.parvec));
}

StencilAccelerator::StencilAccelerator(const StarStencil& stencil,
                                       const AcceleratorConfig& cfg)
    : StencilAccelerator(stencil.to_taps(), cfg) {
  FPGASTENCIL_EXPECT(
      stencil.dims() == cfg.dims && stencil.radius() == cfg.radius,
      "stencil and configuration disagree on dims/radius");
}

RunStats StencilAccelerator::run(Grid2D<float>& grid, int iterations,
                                 std::vector<float>* scratch_storage) {
  FPGASTENCIL_EXPECT(cfg_.dims == 2, "2D run on a 3D configuration");
  FPGASTENCIL_EXPECT(iterations >= 0, "iterations must be non-negative");
  RunStats stats;
  Grid2D<float> scratch =
      scratch_storage
          ? Grid2D<float>(grid.nx(), grid.ny(), std::move(*scratch_storage))
          : Grid2D<float>(grid.nx(), grid.ny());
  int remaining = iterations;
  while (remaining > 0) {
    const int steps = std::min(remaining, cfg_.partime);
    const std::int64_t written_before = stats.cells_written;
    Tracer::Span span;
    if (cfg_.telemetry) span = cfg_.telemetry->tracer().span("sync_pass", 0, "sync");
    const Stopwatch pass_clock;
    run_pass(grid, scratch, steps, stats);
    if (cfg_.telemetry) {
      span.end();
      record_pass_metrics(*cfg_.telemetry, "sync",
                          stats.cells_written - written_before,
                          pass_clock.nanoseconds());
    }
    std::swap(grid, scratch);
    remaining -= steps;
    stats.time_steps += steps;
    ++stats.passes;
  }
  if (scratch_storage) *scratch_storage = scratch.release_storage();
  return stats;
}

RunStats StencilAccelerator::run(Grid3D<float>& grid, int iterations,
                                 std::vector<float>* scratch_storage) {
  FPGASTENCIL_EXPECT(cfg_.dims == 3, "3D run on a 2D configuration");
  FPGASTENCIL_EXPECT(iterations >= 0, "iterations must be non-negative");
  RunStats stats;
  Grid3D<float> scratch =
      scratch_storage
          ? Grid3D<float>(grid.nx(), grid.ny(), grid.nz(),
                          std::move(*scratch_storage))
          : Grid3D<float>(grid.nx(), grid.ny(), grid.nz());
  int remaining = iterations;
  while (remaining > 0) {
    const int steps = std::min(remaining, cfg_.partime);
    const std::int64_t written_before = stats.cells_written;
    Tracer::Span span;
    if (cfg_.telemetry) span = cfg_.telemetry->tracer().span("sync_pass", 0, "sync");
    const Stopwatch pass_clock;
    run_pass(grid, scratch, steps, stats);
    if (cfg_.telemetry) {
      span.end();
      record_pass_metrics(*cfg_.telemetry, "sync",
                          stats.cells_written - written_before,
                          pass_clock.nanoseconds());
    }
    std::swap(grid, scratch);
    remaining -= steps;
    stats.time_steps += steps;
    ++stats.passes;
  }
  if (scratch_storage) *scratch_storage = scratch.release_storage();
  return stats;
}

void StencilAccelerator::run_pass(const Grid2D<float>& in, Grid2D<float>& out,
                                  int steps, RunStats& stats) {
  const BlockingPlan plan = make_blocking_plan(cfg_, in.nx(), in.ny());
  const std::int64_t halo = cfg_.halo();
  const std::int64_t drain = cfg_.stream_drain();
  const std::int64_t csize = cfg_.csize_x();
  const std::int64_t vectors_per_pass =
      plan.cells_streamed_per_pass / cfg_.parvec;
  std::span<float> va(vec_a_);
  std::span<float> vb(vec_b_);

  for (std::int64_t bx = 0; bx < plan.blocks_x; ++bx) {
    const std::int64_t block_x0 = bx * csize - halo;
    const std::int64_t valid_x_end = std::min(in.nx(), (bx + 1) * csize);

    BlockContext ctx;
    ctx.block_x0 = block_x0;
    ctx.nx = in.nx();
    ctx.ny = in.ny();
    for (auto& pe : pes_) {
      ctx.passthrough = pe.stage() >= steps;
      pe.begin_block(ctx);
    }

    // The collapsed loop: one global vector index drives the read kernel,
    // every PE, and the write kernel for this block pass.
    for (std::int64_t q = 0; q < vectors_per_pass; ++q) {
      // --- read kernel: fetch parvec cells (zero outside the grid) ---
      const std::int64_t flat_in = q * cfg_.parvec;
      const std::int64_t y_in = flat_in / cfg_.bsize_x;
      const std::int64_t x_rel_in = flat_in % cfg_.bsize_x;
      for (std::int64_t l = 0; l < cfg_.parvec; ++l) {
        const std::int64_t xg = block_x0 + x_rel_in + l;
        va[size_t(l)] = (xg >= 0 && xg < in.nx() && y_in < in.ny())
                            ? in.at(xg, y_in)
                            : 0.0f;
      }
      stats.cells_streamed += cfg_.parvec;

      // --- compute: chain of PEs ---
      std::span<float> cur = va;
      std::span<float> nxt = vb;
      for (auto& pe : pes_) {
        pe.process_vector(q, cur, nxt);
        std::swap(cur, nxt);
      }

      // --- write kernel: retire valid cells ---
      const std::int64_t yg = y_in - drain;  // total chain lag
      if (yg < 0 || yg >= in.ny()) continue;
      for (std::int64_t l = 0; l < cfg_.parvec; ++l) {
        const std::int64_t x_rel = x_rel_in + l;
        const std::int64_t xg = block_x0 + x_rel;
        if (x_rel >= halo && x_rel < halo + csize && xg < valid_x_end) {
          out.at(xg, yg) = cur[size_t(l)];
          ++stats.cells_written;
        }
      }
    }
    stats.vectors_processed += vectors_per_pass;
    ++stats.block_passes;
  }
}

void StencilAccelerator::run_pass(const Grid3D<float>& in, Grid3D<float>& out,
                                  int steps, RunStats& stats) {
  const BlockingPlan plan = make_blocking_plan(cfg_, in.nx(), in.ny(), in.nz());
  const std::int64_t halo = cfg_.halo();
  const std::int64_t drain = cfg_.stream_drain();
  const std::int64_t csx = cfg_.csize_x();
  const std::int64_t csy = cfg_.csize_y();
  const std::int64_t plane = cfg_.row_cells();
  const std::int64_t vectors_per_pass =
      plan.cells_streamed_per_pass / cfg_.parvec;
  std::span<float> va(vec_a_);
  std::span<float> vb(vec_b_);

  for (std::int64_t by = 0; by < plan.blocks_y; ++by) {
    for (std::int64_t bx = 0; bx < plan.blocks_x; ++bx) {
      const std::int64_t block_x0 = bx * csx - halo;
      const std::int64_t block_y0 = by * csy - halo;
      const std::int64_t valid_x_end = std::min(in.nx(), (bx + 1) * csx);
      const std::int64_t valid_y_end = std::min(in.ny(), (by + 1) * csy);

      BlockContext ctx;
      ctx.block_x0 = block_x0;
      ctx.block_y0 = block_y0;
      ctx.nx = in.nx();
      ctx.ny = in.ny();
      ctx.nz = in.nz();
      for (auto& pe : pes_) {
        ctx.passthrough = pe.stage() >= steps;
        pe.begin_block(ctx);
      }

      for (std::int64_t q = 0; q < vectors_per_pass; ++q) {
        // --- read kernel ---
        const std::int64_t flat_in = q * cfg_.parvec;
        const std::int64_t z_in = flat_in / plane;
        const std::int64_t rem_in = flat_in % plane;
        const std::int64_t y_rel_in = rem_in / cfg_.bsize_x;
        const std::int64_t x_rel_in = rem_in % cfg_.bsize_x;
        const std::int64_t yg_in = block_y0 + y_rel_in;
        const bool row_in_grid =
            z_in < in.nz() && yg_in >= 0 && yg_in < in.ny();
        for (std::int64_t l = 0; l < cfg_.parvec; ++l) {
          const std::int64_t xg = block_x0 + x_rel_in + l;
          va[size_t(l)] = (row_in_grid && xg >= 0 && xg < in.nx())
                              ? in.at(xg, yg_in, z_in)
                              : 0.0f;
        }
        stats.cells_streamed += cfg_.parvec;

        // --- compute ---
        std::span<float> cur = va;
        std::span<float> nxt = vb;
        for (auto& pe : pes_) {
          pe.process_vector(q, cur, nxt);
          std::swap(cur, nxt);
        }

        // --- write kernel ---
        const std::int64_t zg = z_in - drain;
        if (zg < 0 || zg >= in.nz()) continue;
        const std::int64_t y_rel = y_rel_in;
        const std::int64_t yg = block_y0 + y_rel;
        if (y_rel < halo || y_rel >= halo + csy || yg >= valid_y_end) continue;
        for (std::int64_t l = 0; l < cfg_.parvec; ++l) {
          const std::int64_t x_rel = x_rel_in + l;
          const std::int64_t xg = block_x0 + x_rel;
          if (x_rel >= halo && x_rel < halo + csx && xg < valid_x_end) {
            out.at(xg, yg, zg) = cur[size_t(l)];
            ++stats.cells_written;
          }
        }
      }
      stats.vectors_processed += vectors_per_pass;
      ++stats.block_passes;
    }
  }
}

}  // namespace fpga_stencil
