// The per-block streaming core: read kernel -> PE chain -> write kernel
// for one overlapped block, driven by the collapsed global vector index.
//
// This is the code that used to live inline in
// StencilAccelerator::run_pass. It is factored out because two executors
// stream blocks: the synchronous simulator (one block after another) and
// the block-parallel backend (blocks fanned out over a worker pool).
// Both call these functions, so their outputs are bit-exact with each
// other by construction, not by coincidence.
//
// stream_block is a dispatcher since PR 7: when the configuration's tap
// set and parvec are inside the KernelRegistry envelope (and
// cfg.use_specialized_kernels, the default), the block runs on a
// compile-time-specialized vectorized kernel (src/kernels); otherwise it
// runs on the scalar interpreter below. The two paths are bit-exact, so
// every backend (sync, block-parallel, resilient, engine) gets the
// speedup without a semantic change. stream_block_generic exposes the
// interpreter directly -- it is the semantic reference the kernels are
// tested against and the baseline the dispatch microbench measures.
//
// A call touches only its arguments: the PE chain and the lane buffers
// `va`/`vb` (each cfg.parvec floats) must be private to the caller
// (thread), while `in`/`out` may be shared across concurrent calls --
// reads are unrestricted and each block writes only its own disjoint
// compute region. (The specialized path additionally uses a
// thread-local scratch slab internal to src/kernels.)
//
// Cancellation: a non-null `cancel` token is checked every few hundred
// vectors (interpreter) / every streamed plane (specialized); a tripped
// token aborts the block by throwing CancelledError /
// DeadlineExceededError. The block's partial writes land only in `out`
// (the pass's scratch side), which the caller discards on unwind, so the
// caller-visible grid is never left half-written.
#pragma once

#include <span>
#include <vector>

#include "common/cancellation.hpp"
#include "core/stencil_accelerator.hpp"

namespace fpga_stencil {

/// Streams one 2D block (1.5D blocking: x blocked, y streamed) through
/// `pes` for a pass of `steps <= partime` time steps, retiring valid
/// cells of the block's compute region into `out`. Dispatches to a
/// specialized kernel when the registry has one for this configuration.
void stream_block(std::vector<ProcessingElement>& pes,
                  const BlockingPlan& plan, const BlockExtent& blk,
                  const Grid2D<float>& in, Grid2D<float>& out, int steps,
                  std::span<float> va, std::span<float> vb, RunStats& stats,
                  const CancellationToken* cancel = nullptr);

/// Streams one 3D block (2.5D blocking: x/y blocked, z streamed).
void stream_block(std::vector<ProcessingElement>& pes,
                  const BlockingPlan& plan, const BlockExtent& blk,
                  const Grid3D<float>& in, Grid3D<float>& out, int steps,
                  std::span<float> va, std::span<float> vb, RunStats& stats,
                  const CancellationToken* cancel = nullptr);

/// The scalar interpreter, bypassing the KernelRegistry unconditionally.
/// Semantic reference for tests/kernels_test.cpp and baseline for
/// bench/microbench_kernel_dispatch.cpp.
void stream_block_generic(std::vector<ProcessingElement>& pes,
                          const BlockingPlan& plan, const BlockExtent& blk,
                          const Grid2D<float>& in, Grid2D<float>& out,
                          int steps, std::span<float> va, std::span<float> vb,
                          RunStats& stats,
                          const CancellationToken* cancel = nullptr);
void stream_block_generic(std::vector<ProcessingElement>& pes,
                          const BlockingPlan& plan, const BlockExtent& blk,
                          const Grid3D<float>& in, Grid3D<float>& out,
                          int steps, std::span<float> va, std::span<float> vb,
                          RunStats& stats,
                          const CancellationToken* cancel = nullptr);

}  // namespace fpga_stencil
