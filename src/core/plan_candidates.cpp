#include "core/plan_candidates.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "common/math_util.hpp"
#include "core/host_profile.hpp"

namespace fpga_stencil {
namespace {

constexpr std::int64_t kCellBytes = sizeof(float);

std::int64_t round_up(std::int64_t v, std::int64_t multiple) {
  return ceil_div(v, multiple) * multiple;
}

PlanCandidateOptions with_host_caches(PlanCandidateOptions opts) {
  const HostProfile& host = host_profile();
  if (opts.l1_bytes <= 0) opts.l1_bytes = host.l1_bytes;
  if (opts.l2_bytes <= 0) opts.l2_bytes = host.l2_bytes;
  if (opts.llc_bytes <= 0) opts.llc_bytes = host.llc_bytes;
  return opts;
}

/// Relative per-cell cost of streaming when the PE chain's rolling
/// windows live at a given cache level. The exact ratios do not matter --
/// the model only seeds/ranks candidates, measurement decides -- but they
/// must grow with distance from the core or the model would happily pick
/// giant blocks.
double spill_penalty(std::int64_t window_bytes,
                     const PlanCandidateOptions& opts) {
  if (window_bytes <= opts.l1_bytes) return 1.0;
  if (window_bytes <= opts.l2_bytes) return 1.12;
  if (window_bytes <= opts.llc_bytes) return 1.5;
  return 2.5;
}

}  // namespace

double plan_candidate_cost(const AcceleratorConfig& cfg, std::int64_t nx,
                           std::int64_t ny, std::int64_t nz,
                           const PlanCandidateOptions& opts) {
  const PlanCandidateOptions o = with_host_caches(opts);
  const BlockingPlan plan = make_blocking_plan(cfg, nx, ny, nz);
  // One pass advances up to `partime` steps; cells_streamed covers one
  // pass over every block, so this is the streamed traffic per time step
  // advanced (halo redundancy, drain filler, and partial-block waste all
  // included).
  const double streamed_per_step =
      double(plan.cells_streamed) /
      (double(plan.valid_cells) * double(cfg.partime));
  // Each of the `partime` chained PEs keeps its own rolling window
  // (eq. 7) hot while a block streams.
  const std::int64_t window_bytes =
      cfg.shift_register_cells() * kCellBytes * cfg.partime;
  return streamed_per_step * spill_penalty(window_bytes, o);
}

std::vector<AcceleratorConfig> enumerate_plan_candidates(
    const AcceleratorConfig& base, std::int64_t nx, std::int64_t ny,
    std::int64_t nz, const PlanCandidateOptions& opts) {
  base.validate();
  const PlanCandidateOptions o = with_host_caches(opts);
  const std::int64_t pv = base.parvec;

  std::vector<int> partimes = o.partime_candidates;
  if (partimes.empty()) partimes = {1, 2, 4, 8};
  partimes.push_back(base.partime);

  // Geometry ladders around the useful range: wide blocks amortize the
  // halo, narrow ones keep the rolling windows cache-resident. Values are
  // rounded up to the vector width below; the grid bounds cap them.
  std::vector<std::int64_t> xs =
      base.dims == 2
          ? std::vector<std::int64_t>{256, 512, 1024, 2048, 4096, 8192, 16384}
          : std::vector<std::int64_t>{32, 48, 64, 96, 128, 144, 192, 256, 320};
  xs.push_back(base.bsize_x);
  std::vector<std::int64_t> ys =
      base.dims == 3
          ? std::vector<std::int64_t>{8, 16, 32, 48, 64, 96, 128, 192, 256}
          : std::vector<std::int64_t>{1};
  if (base.dims == 3) ys.push_back(base.bsize_y);

  struct Scored {
    AcceleratorConfig cfg;
    double cost = 0.0;
  };
  std::vector<Scored> scored;
  std::set<std::tuple<std::int64_t, std::int64_t, int>> seen;
  seen.insert({base.bsize_x, base.bsize_y, base.partime});

  for (const int pt : partimes) {
    for (const std::int64_t x : xs) {
      for (const std::int64_t y : ys) {
        AcceleratorConfig cfg = base;
        cfg.partime = pt;
        const std::int64_t halo = std::int64_t(pt) * cfg.radius;
        // A block wider than one-block grid coverage only adds halo waste.
        const std::int64_t max_x = round_up(nx + 2 * halo, pv);
        cfg.bsize_x = std::min(round_up(x, pv), max_x);
        cfg.bsize_y = base.dims == 3 ? std::min(y, ny + 2 * halo) : 1;
        if (!seen.insert({cfg.bsize_x, cfg.bsize_y, cfg.partime}).second) {
          continue;
        }
        try {
          cfg.validate();
        } catch (const ConfigError&) {
          continue;  // e.g. block too small for this halo
        }
        const BlockingPlan plan = make_blocking_plan(cfg, nx, ny, nz);
        if (plan.redundancy() > o.max_redundancy) continue;
        scored.push_back({cfg, plan_candidate_cost(cfg, nx, ny, nz, o)});
      }
    }
  }

  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.cost < b.cost; });

  std::vector<AcceleratorConfig> out;
  out.reserve(std::min(scored.size(), o.max_candidates) + 1);
  out.push_back(base);  // the request is always candidate [0]: argmax floor
  for (const Scored& s : scored) {
    if (out.size() > o.max_candidates) break;
    out.push_back(s.cfg);
  }
  return out;
}

}  // namespace fpga_stencil
