#include "core/host_profile.hpp"

#include <fstream>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/json.hpp"

namespace fpga_stencil {
namespace {

/// "32K" / "512K" / "16384K" / "1M" -> bytes; 0 on anything else.
std::int64_t parse_size_string(const std::string& s) {
  if (s.empty()) return 0;
  std::int64_t v = 0;
  std::size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + (s[i] - '0');
    ++i;
  }
  if (i == 0) return 0;
  if (i < s.size() && (s[i] == 'K' || s[i] == 'k')) v *= 1024;
  if (i < s.size() && (s[i] == 'M' || s[i] == 'm')) v *= 1024 * 1024;
  return v;
}

std::string read_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in) std::getline(in, line);
  return line;
}

/// Walks /sys/devices/system/cpu/cpu0/cache/index*/; fills whatever the
/// kernel exposes. Data/unified caches only (the probe pipeline streams
/// data; the instruction footprint is negligible).
void probe_sysfs_caches(HostProfile& p) {
  for (int index = 0; index < 8; ++index) {
    const std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(index);
    const std::string type = read_line(base + "/type");
    if (type.empty()) break;  // no more cache levels
    if (type != "Data" && type != "Unified") continue;
    const int level = int(parse_size_string(read_line(base + "/level")));
    const std::int64_t size = parse_size_string(read_line(base + "/size"));
    if (size <= 0) continue;
    if (level == 1) p.l1_bytes = size;
    if (level == 2) p.l2_bytes = size;
    if (level >= 3) p.llc_bytes = size;
  }
}

HostProfile detect() {
  HostProfile p;
  const unsigned hc = std::thread::hardware_concurrency();
  p.cores = hc > 0 ? int(hc) : 1;

#if defined(_SC_LEVEL1_DCACHE_SIZE)
  if (const long v = ::sysconf(_SC_LEVEL1_DCACHE_SIZE); v > 0) {
    p.l1_bytes = v;
  }
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
  if (const long v = ::sysconf(_SC_LEVEL2_CACHE_SIZE); v > 0) p.l2_bytes = v;
#endif
#if defined(_SC_LEVEL3_CACHE_SIZE)
  if (const long v = ::sysconf(_SC_LEVEL3_CACHE_SIZE); v > 0) p.llc_bytes = v;
#endif
  if (p.l1_bytes == 0 || p.l2_bytes == 0 || p.llc_bytes == 0) {
    probe_sysfs_caches(p);
  }
  // Conservative defaults where the kernel hides the topology (containers,
  // exotic arches): a small cache model only costs the tuner a few extra
  // probes, so err small.
  if (p.l1_bytes <= 0) p.l1_bytes = 32 * 1024;
  if (p.l2_bytes <= 0) p.l2_bytes = 512 * 1024;
  if (p.llc_bytes <= 0) p.llc_bytes = 8 * 1024 * 1024;
  if (p.llc_bytes < p.l2_bytes) p.llc_bytes = p.l2_bytes;

#if defined(FPGASTENCIL_HOST_NATIVE_ARCH)
  p.native_arch = true;
#endif

#if defined(__clang__)
  p.compiler = std::string("clang ") + std::to_string(__clang_major__) + "." +
               std::to_string(__clang_minor__) + "." +
               std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  p.compiler = std::string("gcc ") + std::to_string(__GNUC__) + "." +
               std::to_string(__GNUC_MINOR__) + "." +
               std::to_string(__GNUC_PATCHLEVEL__);
#else
  p.compiler = "unknown";
#endif
  return p;
}

}  // namespace

std::string HostProfile::fingerprint() const {
  std::ostringstream os;
  os << "c" << cores << "-l1:" << l1_bytes / 1024 << "k-l2:" << l2_bytes / 1024
     << "k-llc:" << llc_bytes / 1024 << "k-"
     << (native_arch ? "native" : "portable") << "-";
  for (const char c : compiler) os << (c == ' ' ? '_' : c);
  return os.str();
}

const HostProfile& host_profile() {
  static const HostProfile profile = detect();
  return profile;
}

void write_host_profile(JsonWriter& w) {
  const HostProfile& p = host_profile();
  w.key("host").begin_object();
  w.key("cores").value(p.cores);
  w.key("l1_kib").value(p.l1_bytes / 1024);
  w.key("l2_kib").value(p.l2_bytes / 1024);
  w.key("llc_kib").value(p.llc_bytes / 1024);
  w.key("native_arch").value(p.native_arch);
  w.key("compiler").value(p.compiler);
  w.key("fingerprint").value(p.fingerprint());
  w.end_object();
}

}  // namespace fpga_stencil
