#include "cluster/multi_fpga.hpp"

#include <algorithm>
#include <string>

#include "core/stencil_accelerator.hpp"
#include "fault/fault_injector.hpp"
#include "fpga/fmax_model.hpp"
#include "model/performance_model.hpp"
#include "telemetry/telemetry.hpp"

namespace fpga_stencil {

namespace {
/// Bandwidth penalty of a pass on a degraded interconnect.
constexpr double kLinkDegradeFactor = 4.0;

/// Single counting mechanism for cluster fault events: tallies go through
/// metrics-registry counters (the attached Telemetry, or a run-local one)
/// and the ClusterStats fields are filled from the deltas at the end.
struct ClusterCounters {
  Counter& dropouts;
  Counter& replays;
  Counter& degraded;
  std::int64_t base_dropouts, base_replays, base_degraded;

  explicit ClusterCounters(Telemetry& tel)
      : dropouts(tel.metrics().counter("cluster.board_dropouts")),
        replays(tel.metrics().counter("cluster.pass_replays")),
        degraded(tel.metrics().counter("cluster.link_degraded_passes")),
        base_dropouts(dropouts.value()),
        base_replays(replays.value()),
        base_degraded(degraded.value()) {}

  void fill(ClusterStats& stats) const {
    stats.board_dropouts = dropouts.value() - base_dropouts;
    stats.pass_replays = replays.value() - base_replays;
    stats.link_degraded_passes = degraded.value() - base_degraded;
  }
};

/// Publishes the modeled steady-state throughput of one board's slab.
void record_board_throughput(Telemetry* tel, int board,
                             std::int64_t cells_per_pass, int steps,
                             double pass_seconds) {
  if (!tel || pass_seconds <= 0) return;
  tel->metrics()
      .gauge("cluster.board." + std::to_string(board) + ".cells_per_s")
      .set(std::int64_t(double(cells_per_pass) * double(steps) /
                        pass_seconds));
}
}  // namespace

MultiFpgaCluster::MultiFpgaCluster(int boards, const TapSet& taps,
                                   const AcceleratorConfig& cfg,
                                   const DeviceSpec& device,
                                   const LinkSpec& link)
    : boards_(boards),
      alive_(boards),
      taps_(taps),
      cfg_(cfg),
      device_(device),
      link_(link),
      fmax_mhz_(estimate_fmax_mhz(cfg, device)) {
  FPGASTENCIL_EXPECT(boards >= 1, "cluster needs at least one board");
  FPGASTENCIL_EXPECT(link.bandwidth_gbps > 0 && link.latency_us >= 0,
                     "bad link specification");
  cfg_.validate();
}

double MultiFpgaCluster::board_pass_seconds(std::int64_t nx, std::int64_t ny,
                                            std::int64_t slab_rows) const {
  // The board streams its extended slab exactly like a single-device pass
  // over a grid whose streamed extent is the slab.
  const BlockingPlan plan =
      cfg_.dims == 2 ? make_blocking_plan(cfg_, nx, slab_rows)
                     : make_blocking_plan(cfg_, nx, ny, slab_rows);
  const double eff = pipeline_efficiency(cfg_, device_, fmax_mhz_);
  return double(plan.vectors_streamed) / (fmax_mhz_ * 1e6) / eff;
}

ClusterStats MultiFpgaCluster::run(Grid2D<float>& grid, int iterations) {
  FPGASTENCIL_EXPECT(cfg_.dims == 2, "2D run on a 3D configuration");
  FPGASTENCIL_EXPECT(iterations >= 0, "iterations must be non-negative");
  const std::int64_t nx = grid.nx(), ny = grid.ny();
  FPGASTENCIL_EXPECT(boards_ <= ny, "more boards than grid rows");
  const int rad = cfg_.radius;
  FaultInjector* fi = active_fault_injector();

  Telemetry local_telemetry;
  Telemetry* const attached = cfg_.telemetry;
  Telemetry& tel = attached ? *attached : local_telemetry;
  ClusterCounters counters(tel);

  StencilAccelerator accel(taps_, cfg_);
  ClusterStats stats;
  stats.boards = boards_;

  Grid2D<float> next(nx, ny);
  int remaining = iterations;
  while (remaining > 0) {
    const int steps = std::min(remaining, cfg_.partime);
    const std::int64_t halo = std::int64_t(steps) * rad;

    // One pass over all surviving boards. A board can die mid-pass
    // (board_dropout): the slabs are re-partitioned across the survivors
    // and the whole pass replayed -- overlapped-halo slicing makes the
    // output independent of the partition, so this stays bit-exact.
    double slowest_board = 0.0;
    std::int64_t halo_bytes = 0;
    bool replay = true;
    while (replay) {
      replay = false;
      slowest_board = 0.0;
      halo_bytes = 0;
      const std::int64_t slab = ceil_div<std::int64_t>(ny, alive_);
      for (int b = 0; b < alive_; ++b) {
        if (alive_ > 1 && fi && fi->should_fire(FaultSite::board_dropout)) {
          --alive_;
          counters.dropouts.add(1);
          counters.replays.add(1);
          if (attached) {
            attached->tracer().instant("board_dropout", 0, "cluster");
          }
          replay = true;
          break;
        }
        const std::int64_t y0 = b * slab;
        if (y0 >= ny) break;
        const std::int64_t rows = std::min(slab, ny - y0);
        // Halo exchange: the extended slab carries steps*rad rows of
        // neighbor data per interior side (clipped at real grid borders,
        // where the clamp boundary condition applies instead).
        const std::int64_t lo = std::max<std::int64_t>(0, y0 - halo);
        const std::int64_t hi = std::min(ny, y0 + rows + halo);
        Grid2D<float> local(nx, hi - lo);
        std::copy_n(grid.data() + lo * nx, std::size_t(nx * (hi - lo)),
                    local.data());
        accel.run(local, steps);
        std::copy_n(local.data() + (y0 - lo) * nx, std::size_t(nx * rows),
                    next.data() + y0 * nx);

        if (b > 0) halo_bytes += 2 * halo * nx * 4;
        const double board_secs = board_pass_seconds(nx, ny, hi - lo);
        record_board_throughput(attached, b, rows * nx, steps, board_secs);
        slowest_board = std::max(slowest_board, board_secs);
      }
    }
    std::swap(grid, next);
    stats.halo_bytes_exchanged += halo_bytes;

    double exchange =
        alive_ > 1 ? link_.latency_us * 1e-6 +
                         double(halo * nx * 4) / (link_.bandwidth_gbps * 1e9)
                   : 0.0;
    if (alive_ > 1 && fi && fi->should_fire(FaultSite::link_degrade)) {
      exchange *= kLinkDegradeFactor;
      counters.degraded.add(1);
      if (attached) {
        attached->tracer().instant("link_degrade", 0, "cluster");
      }
    }
    stats.compute_seconds += slowest_board;
    stats.exchange_seconds += exchange;
    remaining -= steps;
    ++stats.passes;
  }
  stats.total_seconds = stats.compute_seconds + stats.exchange_seconds;
  counters.fill(stats);
  return stats;
}

ClusterStats MultiFpgaCluster::run(Grid3D<float>& grid, int iterations) {
  FPGASTENCIL_EXPECT(cfg_.dims == 3, "3D run on a 2D configuration");
  FPGASTENCIL_EXPECT(iterations >= 0, "iterations must be non-negative");
  const std::int64_t nx = grid.nx(), ny = grid.ny(), nz = grid.nz();
  const std::int64_t plane = nx * ny;
  FPGASTENCIL_EXPECT(boards_ <= nz, "more boards than grid planes");
  const int rad = cfg_.radius;
  FaultInjector* fi = active_fault_injector();

  Telemetry local_telemetry;
  Telemetry* const attached = cfg_.telemetry;
  Telemetry& tel = attached ? *attached : local_telemetry;
  ClusterCounters counters(tel);

  StencilAccelerator accel(taps_, cfg_);
  ClusterStats stats;
  stats.boards = boards_;

  Grid3D<float> next(nx, ny, nz);
  int remaining = iterations;
  while (remaining > 0) {
    const int steps = std::min(remaining, cfg_.partime);
    const std::int64_t halo = std::int64_t(steps) * rad;

    // See the 2D run for the dropout/re-partition argument.
    double slowest_board = 0.0;
    std::int64_t halo_bytes = 0;
    bool replay = true;
    while (replay) {
      replay = false;
      slowest_board = 0.0;
      halo_bytes = 0;
      const std::int64_t slab = ceil_div<std::int64_t>(nz, alive_);
      for (int b = 0; b < alive_; ++b) {
        if (alive_ > 1 && fi && fi->should_fire(FaultSite::board_dropout)) {
          --alive_;
          counters.dropouts.add(1);
          counters.replays.add(1);
          if (attached) {
            attached->tracer().instant("board_dropout", 0, "cluster");
          }
          replay = true;
          break;
        }
        const std::int64_t z0 = b * slab;
        if (z0 >= nz) break;
        const std::int64_t planes = std::min(slab, nz - z0);
        const std::int64_t lo = std::max<std::int64_t>(0, z0 - halo);
        const std::int64_t hi = std::min(nz, z0 + planes + halo);
        Grid3D<float> local(nx, ny, hi - lo);
        std::copy_n(grid.data() + lo * plane, std::size_t(plane * (hi - lo)),
                    local.data());
        accel.run(local, steps);
        std::copy_n(local.data() + (z0 - lo) * plane,
                    std::size_t(plane * planes), next.data() + z0 * plane);

        if (b > 0) halo_bytes += 2 * halo * plane * 4;
        const double board_secs = board_pass_seconds(nx, ny, hi - lo);
        record_board_throughput(attached, b, planes * plane, steps,
                                board_secs);
        slowest_board = std::max(slowest_board, board_secs);
      }
    }
    std::swap(grid, next);
    stats.halo_bytes_exchanged += halo_bytes;

    double exchange =
        alive_ > 1
            ? link_.latency_us * 1e-6 +
                  double(halo * plane * 4) / (link_.bandwidth_gbps * 1e9)
            : 0.0;
    if (alive_ > 1 && fi && fi->should_fire(FaultSite::link_degrade)) {
      exchange *= kLinkDegradeFactor;
      counters.degraded.add(1);
      if (attached) {
        attached->tracer().instant("link_degrade", 0, "cluster");
      }
    }
    stats.compute_seconds += slowest_board;
    stats.exchange_seconds += exchange;
    remaining -= steps;
    ++stats.passes;
  }
  stats.total_seconds = stats.compute_seconds + stats.exchange_seconds;
  counters.fill(stats);
  return stats;
}

namespace {

/// Shared timing arithmetic of the temporal chain; the computation itself
/// is delegated to a single StencilAccelerator (the math of a chain of
/// boards is the math of a longer PE chain).
ClusterStats temporal_chain_stats(int boards, const AcceleratorConfig& cfg,
                                  const DeviceSpec& device,
                                  const LinkSpec& link, std::int64_t nx,
                                  std::int64_t ny, std::int64_t nz,
                                  int iterations) {
  FPGASTENCIL_EXPECT(boards >= 1, "chain needs at least one board");
  FPGASTENCIL_EXPECT(link.bandwidth_gbps > 0 && link.latency_us >= 0,
                     "bad link specification");
  const double fmax = estimate_fmax_mhz(cfg, device);
  const double eff = pipeline_efficiency(cfg, device, fmax);
  const BlockingPlan plan = cfg.dims == 2
                                ? make_blocking_plan(cfg, nx, ny)
                                : make_blocking_plan(cfg, nx, ny, nz);
  const double board_seconds =
      double(plan.vectors_streamed) / (fmax * 1e6) / eff;
  const double grid_bytes = double(plan.valid_cells) * 4.0;
  const double link_seconds =
      boards > 1 ? link.latency_us * 1e-6 + grid_bytes /
                                                (link.bandwidth_gbps * 1e9)
                 : 0.0;
  // Boards are rate-matched in steady state; the slower of compute and
  // inter-board streaming sets the macro-pipeline stage time.
  const double stage_seconds = std::max(board_seconds, link_seconds);

  const std::int64_t steps_per_super = std::int64_t(boards) * cfg.partime;
  const std::int64_t super_passes =
      ceil_div<std::int64_t>(std::max(iterations, 0), steps_per_super);

  ClusterStats stats;
  stats.boards = boards;
  stats.passes = static_cast<int>(super_passes);
  // Pipeline fill: the first grid takes `boards` stages end to end.
  stats.compute_seconds =
      double(super_passes + boards - 1) * board_seconds;
  // Exchange shows up only when streaming is slower than computing.
  stats.exchange_seconds =
      double(super_passes + boards - 1) * (stage_seconds - board_seconds);
  stats.halo_bytes_exchanged =
      boards > 1 ? std::int64_t(grid_bytes) * (boards - 1) * super_passes
                 : 0;
  stats.total_seconds =
      double(super_passes + boards - 1) * stage_seconds;
  return stats;
}

}  // namespace

ClusterStats model_temporal_chain(int boards, const AcceleratorConfig& cfg,
                                  const DeviceSpec& device,
                                  const LinkSpec& link, std::int64_t nx,
                                  std::int64_t ny, std::int64_t nz,
                                  int iterations) {
  return temporal_chain_stats(boards, cfg, device, link, nx, ny, nz,
                              iterations);
}

ClusterStats run_temporal_chain(int boards, const TapSet& taps,
                                const AcceleratorConfig& cfg,
                                const DeviceSpec& device,
                                const LinkSpec& link, Grid2D<float>& grid,
                                int iterations) {
  ClusterStats stats = temporal_chain_stats(
      boards, cfg, device, link, grid.nx(), grid.ny(), 1, iterations);
  StencilAccelerator accel(taps, cfg);
  accel.run(grid, iterations);
  return stats;
}

ClusterStats run_temporal_chain(int boards, const TapSet& taps,
                                const AcceleratorConfig& cfg,
                                const DeviceSpec& device,
                                const LinkSpec& link, Grid3D<float>& grid,
                                int iterations) {
  ClusterStats stats =
      temporal_chain_stats(boards, cfg, device, link, grid.nx(), grid.ny(),
                           grid.nz(), iterations);
  StencilAccelerator accel(taps, cfg);
  accel.run(grid, iterations);
  return stats;
}

ClusterStats model_cluster_run(int boards, const AcceleratorConfig& cfg,
                               const DeviceSpec& device, const LinkSpec& link,
                               std::int64_t nx, std::int64_t ny,
                               std::int64_t nz, int iterations) {
  FPGASTENCIL_EXPECT(boards >= 1, "cluster needs at least one board");
  FPGASTENCIL_EXPECT(iterations >= 0, "iterations must be non-negative");
  cfg.validate();
  const std::int64_t stream_extent = cfg.dims == 2 ? ny : nz;
  FPGASTENCIL_EXPECT(boards <= stream_extent,
                     "more boards than streamed rows");
  const std::int64_t row_bytes = (cfg.dims == 2 ? nx : nx * ny) * 4;
  const std::int64_t slab = ceil_div<std::int64_t>(stream_extent, boards);
  const double fmax = estimate_fmax_mhz(cfg, device);
  const double eff = pipeline_efficiency(cfg, device, fmax);

  ClusterStats stats;
  stats.boards = boards;
  int remaining = iterations;
  while (remaining > 0) {
    const int steps = std::min(remaining, cfg.partime);
    const std::int64_t halo = std::int64_t(steps) * cfg.radius;

    double slowest = 0.0;
    for (int b = 0; b < boards; ++b) {
      const std::int64_t s0 = b * slab;
      if (s0 >= stream_extent) break;
      const std::int64_t rows = std::min(slab, stream_extent - s0);
      const std::int64_t lo = std::max<std::int64_t>(0, s0 - halo);
      const std::int64_t hi = std::min(stream_extent, s0 + rows + halo);
      const BlockingPlan plan =
          cfg.dims == 2 ? make_blocking_plan(cfg, nx, hi - lo)
                        : make_blocking_plan(cfg, nx, ny, hi - lo);
      slowest = std::max(
          slowest, double(plan.vectors_streamed) / (fmax * 1e6) / eff);
      if (b > 0) stats.halo_bytes_exchanged += 2 * halo * row_bytes;
    }
    stats.compute_seconds += slowest;
    stats.exchange_seconds +=
        boards > 1 ? link.latency_us * 1e-6 + double(halo * row_bytes) /
                                                  (link.bandwidth_gbps * 1e9)
                   : 0.0;
    remaining -= steps;
    ++stats.passes;
  }
  stats.total_seconds = stats.compute_seconds + stats.exchange_seconds;
  return stats;
}

}  // namespace fpga_stencil
