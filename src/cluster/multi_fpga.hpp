// Multi-FPGA scale-out of the stencil accelerator.
//
// The paper's related work [19] already paired two FPGAs; the natural
// scale-out of the deep-pipeline design is spatial partitioning: slice the
// grid along the streamed dimension (y in 2D, z in 3D), give each board its
// own accelerator, and exchange a halo of partime*rad rows between
// neighboring boards before every pass (one pass = partime fused time
// steps, so the per-pass halo is the whole temporal-blocking footprint).
//
// Functionally this is the overlapped-block argument once more: each board
// computes its slab extended by the exchanged halo; slab-edge garbage
// grows radius rows per fused step, strictly inside the halo, and at real
// grid borders the clamp boundary condition applies. The simulator is
// bit-exact against the single-device accelerator and the naive reference.
//
// Timing: boards run their passes concurrently, so wall time per pass is
// the slowest board's modeled compute time plus the halo-exchange time
// over the inter-board link (bandwidth + latency). The scaling bench shows
// where PCIe-class links cap strong scaling and serial links do not.
#pragma once

#include <cstdint>
#include <vector>

#include "fpga/device_spec.hpp"
#include "grid/grid.hpp"
#include "stencil/accel_config.hpp"
#include "stencil/tap_set.hpp"

namespace fpga_stencil {

/// Inter-board interconnect model.
struct LinkSpec {
  double bandwidth_gbps = 8.0;   ///< per direction (PCIe gen3 x8 class)
  double latency_us = 5.0;       ///< per message
};

/// Timing/traffic statistics of a multi-FPGA run (modeled; the computation
/// itself is executed bit-exactly).
struct ClusterStats {
  int boards = 0;
  int passes = 0;
  std::int64_t halo_bytes_exchanged = 0;   ///< total over all passes/links
  double compute_seconds = 0.0;            ///< modeled, slowest board summed
  double exchange_seconds = 0.0;           ///< modeled link time summed
  double total_seconds = 0.0;

  // Failover counters (active fault injector only; zero otherwise).
  int board_dropouts = 0;        ///< boards lost during the run
  int pass_replays = 0;          ///< passes re-run after a mid-pass dropout
  int link_degraded_passes = 0;  ///< passes on a degraded interconnect

  [[nodiscard]] double exchange_fraction() const {
    return total_seconds > 0 ? exchange_seconds / total_seconds : 0.0;
  }
};

// ---------------------------------------------------------------------
// Temporal pipelining across boards (the related-work [19] arrangement):
// instead of slicing the grid, chain the boards -- board b advances the
// whole grid from time b*partime to (b+1)*partime, streaming its output
// directly into board b+1's read kernel. One "super-pass" applies
// boards*partime time steps; with P super-passes in flight the boards
// form a macro-pipeline and the steady-state rate is one grid pass per
// board-pass time. No halos, no redundant computation -- but the chain
// depth (and the on-board Block RAM) caps how far it scales, exactly the
// trade the paper makes *inside* one device with partime.
// ---------------------------------------------------------------------

/// Executes `iterations` time steps on `grid` through a chain of `boards`
/// identical accelerators (bit-exact), and models the wall time of the
/// macro-pipeline in steady state (grid passes overlap across boards).
ClusterStats run_temporal_chain(int boards, const TapSet& taps,
                                const AcceleratorConfig& cfg,
                                const DeviceSpec& device,
                                const LinkSpec& link, Grid2D<float>& grid,
                                int iterations);
ClusterStats run_temporal_chain(int boards, const TapSet& taps,
                                const AcceleratorConfig& cfg,
                                const DeviceSpec& device,
                                const LinkSpec& link, Grid3D<float>& grid,
                                int iterations);

/// Pure timing model of the temporal chain at arbitrary (paper) scale.
ClusterStats model_temporal_chain(int boards, const AcceleratorConfig& cfg,
                                  const DeviceSpec& device,
                                  const LinkSpec& link, std::int64_t nx,
                                  std::int64_t ny, std::int64_t nz,
                                  int iterations);

/// Pure timing model of a cluster run at arbitrary (paper) scale: the same
/// per-pass arithmetic as MultiFpgaCluster::run without executing the
/// computation. `nz` is ignored for 2D configurations.
ClusterStats model_cluster_run(int boards, const AcceleratorConfig& cfg,
                               const DeviceSpec& device, const LinkSpec& link,
                               std::int64_t nx, std::int64_t ny,
                               std::int64_t nz, int iterations);

/// A row of boards, each an instance of the paper's accelerator, slicing
/// the grid along the streamed dimension.
///
/// Failover: when the process-wide fault injector (fault/fault_injector)
/// arms board_dropout, a board can die mid-pass; the cluster removes it,
/// re-partitions the slabs across the survivors, and replays the pass --
/// overlapped-halo partitioning is value-transparent, so the output stays
/// bit-exact at any board count. link_degrade faults model an interconnect
/// running at a fraction of its bandwidth for a pass. Dropouts persist for
/// the lifetime of the cluster object (a dead board stays dead).
class MultiFpgaCluster {
 public:
  /// `boards` identical devices running `taps` under `cfg` (stage lag
  /// resolved as in StencilAccelerator), connected by `link`.
  MultiFpgaCluster(int boards, const TapSet& taps,
                   const AcceleratorConfig& cfg, const DeviceSpec& device,
                   const LinkSpec& link);

  /// Advances `grid` by `iterations` time steps in place (bit-exact) and
  /// returns the modeled cluster timing. 2D configurations slice y.
  ClusterStats run(Grid2D<float>& grid, int iterations);

  /// 3D configurations slice z.
  ClusterStats run(Grid3D<float>& grid, int iterations);

  [[nodiscard]] int boards() const { return boards_; }
  /// Boards still alive after any injected dropouts.
  [[nodiscard]] int alive_boards() const { return alive_; }
  [[nodiscard]] const AcceleratorConfig& config() const { return cfg_; }

 private:
  /// Modeled seconds for one board to stream `slab_rows` of a grid pass.
  [[nodiscard]] double board_pass_seconds(std::int64_t nx, std::int64_t ny,
                                          std::int64_t slab_rows) const;

  int boards_;
  int alive_;
  TapSet taps_;
  AcceleratorConfig cfg_;
  DeviceSpec device_;
  LinkSpec link_;
  double fmax_mhz_;
};

}  // namespace fpga_stencil
