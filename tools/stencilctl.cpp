// stencilctl: command-line front end to the library.
//
//   stencilctl devices
//       list the FPGA catalog with Table II characteristics
//   stencilctl explore --dims D --radius R [--device NAME] [--nx N --ny N --nz N] [--top K]
//       Section V.A design-space exploration (model-based, ranked
//       against the FPGA resource/bandwidth budget)
//   stencilctl tune [--dims D] [--radius R] [--full] [--json FILE]
//                   [--cache FILE] [--probe-cells C] [--serve]
//       empirical host autotuning (docs/TUNING.md): sweep the
//       star/box x 2D/3D x radius 1-4 envelope, search block geometry x
//       temporal depth by measured-throughput probes, and print
//       paper-default vs tuned Mcell/s per point; tuned runs are
//       verified bit-exact against the default geometry; --json exports
//       the gain scorecard (BENCH_PR9.json schema); --serve instead
//       drives an autotune=search StencilEngine and self-checks the
//       tuner.* telemetry (one search, every post-warm-up job a
//       tuner.cache_hit)
//   stencilctl model  --dims D --radius R --bsize-x B [--bsize-y B] --parvec V --partime T [--device NAME]
//       resource / fmax / power / performance prediction for one config
//   stencilctl codegen --dims D --radius R --bsize-x B [--bsize-y B] --parvec V --partime T [--box]
//       emit the OpenCL-C kernel source to stdout
//   stencilctl simulate --dims D --radius R --bsize-x B [--bsize-y B] --parvec V --partime T
//                       [--nx N --ny N --nz N] [--iters I] [--box]
//                       [--backend NAME] [--workers W]
//       run the job through the unified run() router (sync / concurrent /
//       block-parallel / resilient) and verify vs the naive reference
//   stencilctl blockpar [--nx N --ny N --nz N] [--radius R] [--parvec V]
//                       [--partime T] [--bsize-x B --bsize-y B] [--iters I]
//                       [--workers LIST] [--generic] [--json FILE]
//       scale one overlapped-blocking job across host worker counts
//       through the block-parallel backend; self-check: every run
//       bit-exact vs the synchronous sweep, and (on hosts with enough
//       cores) the top worker count reaches 3/8 of linear speedup;
//       --json exports the scaling scorecard (BENCH_PR5.json)
//   stencilctl faults [--plan SPEC] [--boards B] [--nx N --ny N] [--iters I]
//       run a seeded fault campaign (default: one of every recoverable
//       fault class) through the shim, the resilient concurrent runtime,
//       and the cluster failover path, and print the resilience counters
//   stencilctl metrics [config flags] [--format table|json|csv] [--out FILE]
//       run the threaded dataflow pipeline with telemetry attached and
//       report the metrics snapshot (channel high-water marks, blocked
//       time, per-pass throughput)
//   stencilctl trace [config flags] [--out trace.json]
//       same instrumented run, exported as Chrome trace_event JSON
//       (open in chrome://tracing or https://ui.perfetto.dev)
//   stencilctl engine [--jobs N] [--workers W] [--iters I] [--json FILE]
//       drive a mixed 2D/3D job campaign through one StencilEngine
//       session (plan cache + buffer pool + backend router) and
//       self-check: every job bit-exact vs the naive reference, at least
//       one plan-cache hit, no failed jobs; --json exports the per-job
//       latency scorecard (BENCH_PR3.json)
//   stencilctl serve [--jobs N] [--shards S] [--workers W] [--seed S]
//                    [--iters I] [--window W] [--json FILE]
//       the serving-tier campaign (docs/SERVING.md): N mixed jobs
//       (star/box x 2D/3D x radius 1-4) from a skewed five-tenant mix
//       (QoS classes, a rate-capped tenant, a blocking inflight-capped
//       tenant, a fault-seeded tenant) through an EngineCluster of S
//       shards; one shard is drained and reloaded mid-campaign.
//       Self-checks: exact accounting (every submission rejected or
//       terminal), zero failed/hung jobs, every survivor bit-exact,
//       chunked deliveries reassemble exactly, >= 1 quota rejection,
//       per-shard plan-cache hit rate > 0.9, shard balance bounded,
//       zero leaked pool leases, and the faulty tenant never degrades
//       clean tenants' p99 (vs a clean calibration phase); the scale
//       probe's 3/8-linear speedup gate is only checked when the host
//       has enough cores (recorded as speedup_gate_checked, like
//       blockpar); --json exports the per-class/per-tenant latency
//       scorecard (BENCH_PR8.json)
//   stencilctl chaos [--jobs N] [--workers W] [--seed S] [--json FILE]
//       the robustness campaign (docs/LIFECYCLE.md): first a
//       deterministic circuit-breaker proof (fault-injected concurrent
//       jobs trip the breaker open, jobs reroute to the sync fallback,
//       a post-cooldown probe closes it again), then N mixed jobs with
//       seeded random cancellations and deadlines; self-check: zero
//       hangs, zero unexpected failures, zero leaked pool buffers,
//       every surviving job bit-exact; --json exports cancel-latency
//       percentiles and breaker counters (BENCH_PR6.json)
//   stencilctl program [--n2d N] [--n3d N] [--steps S] [--steps3d S]
//                      [--shards S] [--workers W] [--json FILE]
//       the multi-field program campaigns (docs/PROGRAMS.md): a 2D FDTD
//       E/H update (dirichlet walls) and a 3D damped wave equation
//       (reflective walls, work-field leapfrog), each a ProgramSpec DAG
//       submitted through EngineCluster::submit. Self-checks: every
//       field bit-exact vs the multi-field golden model, chunked
//       per-field delivery reassembles exactly, repeated submissions
//       route to one shard and hit the per-node plan cache, zero leaked
//       pool leases; --json exports the campaign scorecard
//       (BENCH_PR10.json)
//
// Exit status: 0 on success, 1 on verification/model failure, 2 on usage.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/multi_fpga.hpp"
#include "codegen/kernel_generator.hpp"
#include "common/format.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "core/block_parallel_accelerator.hpp"
#include "core/concurrent_accelerator.hpp"
#include "core/host_profile.hpp"
#include "core/plan_candidates.hpp"
#include "core/stencil_accelerator.hpp"
#include "engine/engine_cluster.hpp"
#include "engine/run.hpp"
#include "engine/stencil_engine.hpp"
#include "fault/fault_injector.hpp"
#include "fault/resilient_runner.hpp"
#include "telemetry/telemetry.hpp"
#include "fpga/fmax_model.hpp"
#include "fpga/power_model.hpp"
#include "grid/grid_compare.hpp"
#include "kernels/kernel_registry.hpp"
#include "model/performance_model.hpp"
#include "ocl/opencl_shim.hpp"
#include "program/program_reference.hpp"
#include "program/program_spec.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/reference.hpp"
#include "tune/host_autotuner.hpp"
#include "tune/tuner.hpp"

using namespace fpga_stencil;

namespace {

struct Args {
  std::map<std::string, std::string> kv;
  bool box = false;
  bool generic = false;  // force the interpreter (no specialized kernels)
  bool full = false;     // tune: acceptance sizes instead of CI-small
  bool serve = false;    // tune: engine telemetry self-check mode

  [[nodiscard]] std::int64_t get(const std::string& key,
                                 std::int64_t fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : std::stoll(it->second);
  }
  [[nodiscard]] std::string get_str(const std::string& key,
                                    const std::string& fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return kv.count(key) != 0;
  }
};

Args parse_args(int argc, char** argv, int start) {
  Args a;
  for (int i = start; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw ConfigError("expected --flag, got `" + key + "`");
    }
    key = key.substr(2);
    if (key == "box") {
      a.box = true;
      continue;
    }
    if (key == "generic") {
      a.generic = true;
      continue;
    }
    if (key == "full") {
      a.full = true;
      continue;
    }
    if (key == "serve") {
      a.serve = true;
      continue;
    }
    if (i + 1 >= argc) throw ConfigError("missing value for --" + key);
    a.kv[key] = argv[++i];
  }
  return a;
}

DeviceSpec device_from(const Args& a) {
  const std::string name = a.get_str("device", "Arria 10");
  for (const DeviceSpec& d :
       {arria10_gx1150(), stratix_v_gxa7(), stratix10_gx2800(),
        stratix10_mx2100()}) {
    if (d.name.find(name) != std::string::npos) return d;
  }
  throw ConfigError("unknown device `" + name + "`");
}

AcceleratorConfig config_from(const Args& a) {
  AcceleratorConfig cfg;
  cfg.dims = static_cast<int>(a.get("dims", 2));
  cfg.radius = static_cast<int>(a.get("radius", 1));
  cfg.bsize_x = a.get("bsize-x", cfg.dims == 2 ? 4096 : 256);
  cfg.bsize_y = cfg.dims == 3 ? a.get("bsize-y", 128) : 1;
  cfg.parvec = static_cast<int>(a.get("parvec", 4));
  cfg.partime = static_cast<int>(a.get("partime", 4));
  cfg.validate();
  return cfg;
}

int cmd_devices() {
  TextTable t({"Device", "GFLOP/s", "GB/s", "FLOP/Byte", "DSPs", "M20Ks",
               "TDP W"});
  for (const DeviceSpec& d :
       {arria10_gx1150(), stratix_v_gxa7(), stratix10_gx2800(),
        stratix10_mx2100()}) {
    t.add_row({d.name, format_fixed(d.peak_gflops, 0),
               format_fixed(d.peak_bw_gbps, 1),
               format_fixed(d.flop_per_byte(), 1), std::to_string(d.dsps),
               std::to_string(d.m20k_blocks), format_fixed(d.tdp_watts, 0)});
  }
  t.render(std::cout);
  return 0;
}

int cmd_explore(const Args& a) {
  TunerOptions o;
  o.dims = static_cast<int>(a.get("dims", 2));
  o.radius = static_cast<int>(a.get("radius", 1));
  o.nx = a.get("nx", o.dims == 2 ? 16096 : 696);
  o.ny = a.get("ny", o.dims == 2 ? 16096 : 728);
  o.nz = o.dims == 3 ? a.get("nz", 696) : 1;
  const DeviceSpec dev = device_from(a);
  const auto configs = enumerate_configs(dev, o);
  const std::size_t top = std::size_t(a.get("top", 5));
  std::cout << configs.size() << " feasible configurations on " << dev.name
            << "; top " << std::min(top, configs.size()) << ":\n";
  TextTable t({"rank", "config", "aligned", "pred GB/s", "GFLOP/s", "fmax",
               "DSP", "BRAM blk"});
  for (std::size_t i = 0; i < configs.size() && i < top; ++i) {
    const TunedConfig& c = configs[i];
    t.add_row({std::to_string(i + 1), c.config.describe(),
               c.meets_alignment ? "yes" : "no",
               format_fixed(c.perf.measured_gbps, 1),
               format_fixed(c.perf.measured_gflops, 1),
               format_fixed(c.fmax_mhz, 1),
               format_percent(c.usage.dsp_fraction),
               format_percent(c.usage.bram_block_fraction)});
  }
  t.render(std::cout);
  return configs.empty() ? 1 : 0;
}

int cmd_model(const Args& a) {
  const AcceleratorConfig cfg = config_from(a);
  const DeviceSpec dev = device_from(a);
  const ResourceUsage u = estimate_resources(cfg, dev);
  const double fmax = estimate_fmax_mhz(cfg, dev);
  const std::int64_t nx = a.get("nx", cfg.dims == 2 ? 16096 : 696);
  const std::int64_t ny = a.get("ny", cfg.dims == 2 ? 16096 : 728);
  const std::int64_t nz = cfg.dims == 3 ? a.get("nz", 696) : 1;
  const PerformanceEstimate e =
      estimate_performance(cfg, dev, fmax, nx, ny, nz);

  std::cout << "configuration: " << cfg.describe() << " on " << dev.name
            << "\n"
            << "fits: " << (u.fits() ? "yes" : "NO") << "\n"
            << "  DSP          " << u.dsps << " ("
            << format_percent(u.dsp_fraction) << ")\n"
            << "  BRAM bits    " << format_percent(u.bram_bits_fraction)
            << ", blocks " << format_percent(u.bram_block_fraction) << "\n"
            << "  logic        " << format_percent(u.logic_fraction) << "\n"
            << "fmax:  " << format_fixed(fmax, 1) << " MHz\n"
            << "power: "
            << format_fixed(estimate_power_watts(cfg, dev, fmax), 1)
            << " W\n"
            << "performance on " << nx << "x" << ny
            << (cfg.dims == 3 ? "x" + std::to_string(nz) : "") << ":\n"
            << "  estimated  " << format_fixed(e.estimated_gbps, 1)
            << " GB/s\n"
            << "  pipeline efficiency "
            << format_percent(e.pipeline_efficiency) << "\n"
            << "  predicted  " << format_fixed(e.measured_gbps, 1)
            << " GB/s = " << format_fixed(e.measured_gflops, 1)
            << " GFLOP/s = " << format_fixed(e.measured_gcells, 2)
            << " GCell/s\n"
            << "  roofline ratio " << format_fixed(e.roofline_ratio, 2)
            << "x of " << format_fixed(dev.peak_bw_gbps, 1) << " GB/s peak\n";
  return u.fits() ? 0 : 1;
}

int cmd_codegen(const Args& a) {
  const AcceleratorConfig cfg = config_from(a);
  if (a.box) {
    const TapSet box = make_box_stencil(cfg.dims, cfg.radius);
    std::cout << generate_tap_kernel_source(box, {cfg, true});
  } else {
    std::cout << generate_kernel_source({cfg, true});
  }
  return 0;
}

/// --backend flag -> ExecutionBackend; `automatic` defers to the router.
ExecutionBackend backend_from(const Args& a) {
  const std::string name = a.get_str("backend", "automatic");
  for (const ExecutionBackend b :
       {ExecutionBackend::automatic, ExecutionBackend::sync_sim,
        ExecutionBackend::concurrent, ExecutionBackend::block_parallel,
        ExecutionBackend::resilient, ExecutionBackend::cluster}) {
    if (name == backend_name(b)) return b;
  }
  throw ConfigError("unknown --backend `" + name + "`");
}

int cmd_simulate(const Args& a) {
  const AcceleratorConfig cfg = config_from(a);
  const std::int64_t nx = a.get("nx", 200);
  const std::int64_t ny = a.get("ny", cfg.dims == 2 ? 100 : 60);
  const std::int64_t nz = cfg.dims == 3 ? a.get("nz", 30) : 1;
  const int iters = static_cast<int>(a.get("iters", cfg.partime + 1));
  const TapSet taps =
      a.box ? make_box_stencil(cfg.dims, cfg.radius)
            : StarStencil::make_benchmark(cfg.dims, cfg.radius).to_taps();

  RunOptions opts;
  opts.backend = backend_from(a);
  opts.workers = static_cast<int>(a.get("workers", 0));
  const ExecutionBackend resolved =
      resolve_backend(taps, cfg, nx, ny, nz, opts);

  Stopwatch sw;
  CompareResult cmp;
  RunStats stats;
  if (cfg.dims == 2) {
    Grid2D<float> g(nx, ny);
    g.fill_random(1);
    Grid2D<float> want = g;
    stats = run(taps, cfg, g, iters, opts);
    reference_run(taps, want, iters);
    cmp = compare_exact(g, want);
  } else {
    Grid3D<float> g(nx, ny, nz);
    g.fill_random(1);
    Grid3D<float> want = g;
    stats = run(taps, cfg, g, iters, opts);
    reference_run(taps, want, iters);
    cmp = compare_exact(g, want);
  }

  std::cout << "simulated " << cfg.describe() << " on " << nx << "x" << ny
            << (cfg.dims == 3 ? "x" + std::to_string(nz) : "") << " for "
            << iters << " iterations via " << backend_name(resolved)
            << " backend (" << format_fixed(sw.seconds(), 2)
            << " s host time)\n"
            << "  passes " << stats.passes << ", cells streamed "
            << stats.cells_streamed << ", redundancy "
            << format_fixed(stats.redundancy(), 3) << "x, pipeline cycles "
            << stats.vectors_processed << "\n"
            << "  verification vs naive reference: " << cmp.summary()
            << "\n";
  return cmp.identical() ? 0 : 1;
}

/// Shared workload of `metrics` and `trace`: the threaded dataflow
/// pipeline (the only engine where channels and stage overlap exist) with
/// the telemetry hook attached through AcceleratorConfig.
RunStats run_instrumented(const Args& a, Telemetry& telemetry,
                          std::ostream& os) {
  AcceleratorConfig cfg = config_from(a);
  cfg.telemetry = &telemetry;
  const std::int64_t nx = a.get("nx", 200);
  const std::int64_t ny = a.get("ny", cfg.dims == 2 ? 100 : 60);
  const std::int64_t nz = cfg.dims == 3 ? a.get("nz", 30) : 1;
  const int iters = static_cast<int>(a.get("iters", cfg.partime + 1));
  const std::size_t depth = std::size_t(a.get("depth", 64));
  const TapSet taps =
      a.box ? make_box_stencil(cfg.dims, cfg.radius)
            : StarStencil::make_benchmark(cfg.dims, cfg.radius).to_taps();

  RunStats stats;
  RunOptions opts;
  opts.backend = ExecutionBackend::concurrent;
  opts.channel_depth = depth;
  if (cfg.dims == 2) {
    Grid2D<float> g(nx, ny);
    g.fill_random(1);
    stats = run(taps, cfg, g, iters, opts);
  } else {
    Grid3D<float> g(nx, ny, nz);
    g.fill_random(1);
    stats = run(taps, cfg, g, iters, opts);
  }
  os << "instrumented concurrent run: " << cfg.describe() << " on " << nx
     << "x" << ny << (cfg.dims == 3 ? "x" + std::to_string(nz) : "")
     << " for " << iters << " iterations (" << stats.passes << " passes)\n";
  return stats;
}

int cmd_metrics(const Args& a) {
  Telemetry telemetry;
  run_instrumented(a, telemetry, std::cout);
  const MetricsSnapshot snap = telemetry.metrics().snapshot();

  const std::string format = a.get_str("format", "table");
  const std::string out = a.get_str("out", "");
  std::ofstream file;
  if (!out.empty()) {
    file.open(out);
    if (!file) throw ConfigError("cannot open --out file `" + out + "`");
  }
  std::ostream& os = out.empty() ? std::cout : file;

  if (format == "json") {
    snap.write_json(os);
  } else if (format == "csv") {
    snap.write_csv(os);
  } else if (format == "table") {
    TextTable t({"metric", "kind", "value", "sum"});
    for (const MetricSample& s : snap.samples) {
      t.add_row({s.name, std::string(metric_kind_name(s.kind)),
                 std::to_string(s.value),
                 s.kind == MetricKind::histogram ? std::to_string(s.sum)
                                                 : ""});
    }
    t.render(os);
  } else {
    throw ConfigError("unknown --format `" + format +
                      "` (want table|json|csv)");
  }
  if (!out.empty()) {
    std::cout << snap.samples.size() << " metrics written to " << out
              << "\n";
  }
  // A healthy pipeline run must have moved data through the channels.
  return snap.value_or("channel.0.high_water", 0) > 0 &&
                 snap.value_or("pipeline.cells_written", 0) > 0
             ? 0
             : 1;
}

int cmd_trace(const Args& a) {
  Telemetry telemetry;
  run_instrumented(a, telemetry, std::cout);
  const AcceleratorConfig cfg = config_from(a);

  std::ostringstream json;
  telemetry.tracer().write_chrome_trace(json);
  if (!json_is_valid(json.str())) {
    std::cerr << "stencilctl: internal error: trace JSON failed "
                 "validation\n";
    return 1;
  }

  const std::string out = a.get_str("out", "trace.json");
  std::ofstream file(out);
  if (!file) throw ConfigError("cannot open --out file `" + out + "`");
  file << json.str();

  // Self-check: the trace must cover every pipeline stage.
  const std::vector<std::string> names = telemetry.tracer().event_names();
  const auto covered = [&](const std::string& want) {
    return std::find(names.begin(), names.end(), want) != names.end();
  };
  bool all_stages = covered("read_kernel") && covered("write_kernel");
  for (int k = 0; k < cfg.partime; ++k) {
    all_stages = all_stages && covered("PE" + std::to_string(k));
  }
  std::cout << telemetry.tracer().event_count() << " trace events written"
            << " to " << out << " (open in chrome://tracing or "
            << "https://ui.perfetto.dev)\n"
            << "  stage coverage: "
            << (all_stages ? "read kernel, every PE, write kernel"
                           : "INCOMPLETE")
            << "\n";
  return all_stages ? 0 : 1;
}

// The default demo campaign: at least one budgeted fault at every
// recoverable site, so every resilience mechanism (shim retry, watchdog
// replay, checksum rollback, cluster failover) exercises once and the
// replayed attempts run clean.
constexpr const char* kDefaultFaultPlan =
    "seed=42,shim_build:n=2,shim_transfer:n=1,shim_enqueue:n=1,"
    "channel_stall:n=1,kernel_hang:n=1,seu_bit_flip:n=150,"
    "board_dropout:n=1,link_degrade:n=2";

int cmd_faults(const Args& a) {
  // Plan resolution: --plan beats the environment beats the demo default.
  FaultPlan plan;
  if (a.has("plan")) {
    plan = FaultPlan::parse(a.get_str("plan", ""));
  } else {
    plan = FaultPlan::from_env();
    if (plan.empty()) plan = FaultPlan::parse(kDefaultFaultPlan);
  }

  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = static_cast<int>(a.get("radius", 2));
  cfg.bsize_x = a.get("bsize-x", 48);
  cfg.parvec = static_cast<int>(a.get("parvec", 4));
  cfg.partime = static_cast<int>(a.get("partime", 3));
  cfg.validate();
  const std::int64_t nx = a.get("nx", 96);
  const std::int64_t ny = a.get("ny", 48);
  const int iters = static_cast<int>(a.get("iters", 4 * cfg.partime));
  const int boards = static_cast<int>(a.get("boards", 4));
  const DeviceSpec dev = device_from(a);

  const StarStencil star = StarStencil::make_benchmark(2, cfg.radius);
  const TapSet taps = star.to_taps();
  Grid2D<float> initial(nx, ny);
  initial.fill_random(7);
  Grid2D<float> want = initial;
  reference_run(taps, want, iters);

  FaultInjector injector(plan);
  ScopedFaultInjector scope(injector);
  std::cout << "fault campaign: " << plan.describe() << "\n"
            << "workload: " << cfg.describe() << ", " << nx << "x" << ny
            << ", " << iters << " iterations, " << boards << " boards on "
            << dev.name << "\n\n";
  bool all_exact = true;

  // Stage 1: the OpenCL host flow under retry (shim_* fault sites).
  std::int64_t build_retries = 0;
  std::int64_t transfer_retries = 0;
  {
    const ocl::Platform platform = ocl::Platform::intel_fpga_sdk();
    const ocl::Context ctx(platform.device_by_name(dev.name));
    const std::string opts = "-DDIM=2 -DRAD=" + std::to_string(cfg.radius) +
                             " -DBSIZE_X=" + std::to_string(cfg.bsize_x) +
                             " -DPAR_VEC=" + std::to_string(cfg.parvec) +
                             " -DPAR_TIME=" + std::to_string(cfg.partime);
    RetryPolicy policy;
    policy.base_delay = std::chrono::microseconds(100);
    const ocl::Program program =
        ocl::Program::build_with_retry(ctx, opts, policy, &build_retries);
    const std::size_t bytes = std::size_t(nx) * std::size_t(ny) * 4;
    ocl::Buffer in(ctx, bytes);
    ocl::Buffer out(ctx, bytes);
    ocl::CommandQueue queue(ctx);
    Grid2D<float> got(nx, ny);
    retry_transient(
        policy,
        [&] { queue.enqueue_write_buffer(in, initial.data(), bytes); },
        &transfer_retries);
    retry_transient(
        policy,
        [&] { queue.enqueue_stencil_2d(program, star, in, out, nx, ny, iters); },
        &transfer_retries);
    retry_transient(
        policy, [&] { queue.enqueue_read_buffer(out, got.data(), bytes); },
        &transfer_retries);
    const CompareResult cmp = compare_exact(got, want);
    all_exact = all_exact && cmp.identical();
    std::cout << "[shim]      " << cmp.summary() << " (build retries "
              << build_retries << ", enqueue/transfer retries "
              << transfer_retries << ")\n";
  }

  // Stage 2: the resilient concurrent runtime (hang/stall/SEU sites).
  RunStats rstats;
  {
    ResilienceOptions opts;
    opts.base.watchdog_deadline = std::chrono::milliseconds(250);
    opts.base.injector = &injector;
    opts.max_pass_attempts = 5;
    opts.checkpoint_interval = 2;
    Grid2D<float> got = initial;
    rstats = run_resilient(taps, cfg, got, iters, opts);
    const CompareResult cmp = compare_exact(got, want);
    all_exact = all_exact && cmp.identical();
    std::cout << "[resilient] " << cmp.summary() << " (watchdog trips "
              << rstats.watchdog_trips << ", checksum failures "
              << rstats.checksum_failures << ", pass replays "
              << rstats.pass_replays << ")\n";
  }

  // Stage 3: cluster failover (board_dropout / link_degrade sites).
  ClusterStats cstats;
  {
    MultiFpgaCluster cluster(boards, taps, cfg, dev, LinkSpec{});
    Grid2D<float> got = initial;
    cstats = cluster.run(got, iters);
    const CompareResult cmp = compare_exact(got, want);
    all_exact = all_exact && cmp.identical();
    std::cout << "[cluster]   " << cmp.summary() << " ("
              << cluster.alive_boards() << "/" << boards
              << " boards alive, pass replays " << cstats.pass_replays
              << ", degraded-link passes " << cstats.link_degraded_passes
              << ")\n";
  }

  std::cout << "\nresilience counters\n";
  TextTable t({"counter", "value"});
  t.add_row({"faults injected", std::to_string(injector.total_fires())});
  t.add_row({"shim build retries", std::to_string(build_retries)});
  t.add_row({"shim transfer/enqueue retries", std::to_string(transfer_retries)});
  t.add_row({"watchdog trips", std::to_string(rstats.watchdog_trips)});
  t.add_row({"checksum failures", std::to_string(rstats.checksum_failures)});
  t.add_row({"pass replays (device)", std::to_string(rstats.pass_replays)});
  t.add_row({"checkpoints saved", std::to_string(rstats.checkpoints_saved)});
  t.add_row({"checkpoint restores", std::to_string(rstats.checkpoint_restores)});
  t.add_row({"degraded to reference",
             rstats.degraded_to_reference ? "yes" : "no"});
  t.add_row({"board dropouts", std::to_string(cstats.board_dropouts)});
  t.add_row({"cluster pass replays", std::to_string(cstats.pass_replays)});
  t.add_row({"link-degraded passes", std::to_string(cstats.link_degraded_passes)});
  t.render(std::cout);
  std::cout << "\ninjector report\n" << injector.report();
  const bool fired = plan.empty() || injector.total_fires() > 0;
  std::cout << "\ncampaign " << (all_exact && fired ? "survived" : "FAILED")
            << ": "
            << (all_exact ? "all outputs bit-exact vs naive reference"
                          : "output NOT bit-exact vs naive reference");
  if (!fired) {
    std::cout << " (planned faults never fired -- nothing was exercised)";
  }
  std::cout << "\n";
  return all_exact && fired ? 0 : 1;
}

// The engine demo campaign: a stream of mixed 2D/3D jobs through one
// StencilEngine session. Eight job kinds cycle: star/box 2D and star 3D
// on the synchronous simulator, the same specs again (plan-cache hits),
// one job on the threaded dataflow backend, one fault-injected job routed
// to the resilient runner, and one 3-board cluster job -- all sharing
// three distinct plans, so the steady-state cache hit rate approaches 1.
int cmd_engine(const Args& a) {
  const int jobs = static_cast<int>(a.get("jobs", 64));
  const int iters = static_cast<int>(a.get("iters", 3));
  if (jobs < 1) throw ConfigError("--jobs must be >= 1");

  EngineOptions eopts;
  eopts.workers = static_cast<int>(a.get("workers", 4));
  eopts.queue_capacity = std::size_t(a.get("queue", 128));

  AcceleratorConfig c2;
  c2.dims = 2;
  c2.radius = 1;
  c2.bsize_x = 32;
  c2.parvec = 4;
  c2.partime = 2;
  AcceleratorConfig c3;
  c3.dims = 3;
  c3.radius = 1;
  c3.bsize_x = 16;
  c3.bsize_y = 8;
  c3.parvec = 4;
  c3.partime = 2;
  const TapSet star2 = StarStencil::make_benchmark(2, 1, 5).to_taps();
  const TapSet box2 = make_box_stencil(2, 1, 21);
  const TapSet star3 = StarStencil::make_benchmark(3, 1, 9).to_taps();
  const auto fresh2 = [] {
    Grid2D<float> g(48, 20);
    g.fill_random(3);
    return g;
  };
  const auto fresh3 = [] {
    Grid3D<float> g(20, 14, 10);
    g.fill_random(4);
    return g;
  };
  Grid2D<float> want_star2 = fresh2();
  reference_run(star2, want_star2, iters);
  Grid2D<float> want_box2 = fresh2();
  reference_run(box2, want_box2, iters);
  Grid3D<float> want_star3 = fresh3();
  reference_run(star3, want_star3, iters);

  // One budgeted hang: the first resilient job survives a watchdog trip,
  // later ones run clean (exercises injector pass-through, not chaos).
  FaultInjector injector(FaultPlan::parse("seed=3,kernel_hang:n=1"));

  StencilEngine engine(eopts);
  std::vector<JobHandle> handles;
  std::vector<int> kinds;
  handles.reserve(std::size_t(jobs));
  for (int i = 0; i < jobs; ++i) {
    const int kind = i % 8;
    kinds.push_back(kind);
    JobSpec spec = [&]() -> JobSpec {
      switch (kind) {
        case 1:
        case 7: return {box2, c2, fresh2(), iters};
        case 2:
        case 6: return {star3, c3, fresh3(), iters};
        default: return {star2, c2, fresh2(), iters};
      }
    }();
    if (kind == 3) spec.backend = Backend::concurrent;
    if (kind == 4) spec.injector = &injector;  // routes to resilient
    if (kind == 5) spec.boards = 3;            // routes to cluster
    spec.label = "job-" + std::to_string(i);
    handles.push_back(engine.submit(std::move(spec)));
  }

  int completed = 0;
  int exact = 0;
  struct JobRow {
    std::string label;
    Backend backend;
    int dims;
    std::int64_t nx, ny, nz;
    bool cache_hit;
    bool exact;
    std::int64_t queue_ns, run_ns, cells_written;
  };
  std::vector<JobRow> rows;
  for (int i = 0; i < jobs; ++i) {
    JobResult& r = handles[std::size_t(i)].wait();
    ++completed;
    bool ok = false;
    JobRow row;
    switch (kinds[std::size_t(i)]) {
      case 1:
      case 7: ok = compare_exact(r.grid2d(), want_box2).identical(); break;
      case 2:
      case 6: ok = compare_exact(r.grid3d(), want_star3).identical(); break;
      default: ok = compare_exact(r.grid2d(), want_star2).identical(); break;
    }
    exact += ok ? 1 : 0;
    row.label = r.label;
    row.backend = r.backend;
    row.dims = std::holds_alternative<Grid3D<float>>(r.grid) ? 3 : 2;
    row.nx = std::visit([](const auto& g) { return g.nx(); }, r.grid);
    row.ny = std::visit([](const auto& g) { return g.ny(); }, r.grid);
    row.nz = row.dims == 3 ? r.grid3d().nz() : 1;
    row.cache_hit = r.plan_cache_hit;
    row.exact = ok;
    row.queue_ns = r.queue_ns;
    row.run_ns = r.run_ns;
    row.cells_written = r.stats.cells_written;
    rows.push_back(std::move(row));
  }
  const EngineStats stats = engine.stats();

  std::cout << "engine campaign: " << jobs << " jobs through "
            << eopts.workers << " workers (" << iters
            << " iterations each)\n";
  TextTable t({"counter", "value"});
  t.add_row({"jobs completed", std::to_string(completed)});
  t.add_row({"jobs bit-exact", std::to_string(exact)});
  t.add_row({"jobs failed", std::to_string(stats.jobs_failed)});
  t.add_row({"plan-cache hits", std::to_string(stats.plan_cache_hits)});
  t.add_row({"plan-cache misses", std::to_string(stats.plan_cache_misses)});
  t.add_row({"cache hit rate",
             format_fixed(stats.cache_hit_rate() * 100.0, 1) + "%"});
  t.add_row({"pool allocations", std::to_string(stats.pool_allocations)});
  t.add_row({"pool reuses", std::to_string(stats.pool_reuses)});
  t.add_row({"queue high-water", std::to_string(stats.queue_high_water)});
  t.add_row({"faults injected", std::to_string(injector.total_fires())});
  t.render(std::cout);

  const std::string json_path = a.get_str("json", "");
  if (!json_path.empty()) {
    std::ostringstream body;
    JsonWriter w(body);
    w.begin_object();
    w.key("schema_version").value(2);
    w.key("bench").value("engine_demo_campaign");
    write_host_profile(w);
    w.key("paper").value(
        "High-Performance High-Order Stencil Computation on FPGAs Using "
        "OpenCL");
    w.key("engine").begin_object();
    w.key("workers").value(eopts.workers);
    w.key("queue_capacity").value(std::int64_t(eopts.queue_capacity));
    w.key("plan_cache_capacity")
        .value(std::int64_t(eopts.plan_cache_capacity));
    w.end_object();
    w.key("jobs").begin_array();
    for (const JobRow& row : rows) {
      w.begin_object();
      w.key("label").value(row.label);
      w.key("backend").value(backend_name(row.backend));
      w.key("dims").value(row.dims);
      w.key("nx").value(row.nx);
      w.key("ny").value(row.ny);
      w.key("nz").value(row.nz);
      w.key("iters").value(iters);
      w.key("plan_cache_hit").value(row.cache_hit);
      w.key("exact").value(row.exact);
      w.key("queue_ns").value(row.queue_ns);
      w.key("run_ns").value(row.run_ns);
      w.key("cells_written").value(row.cells_written);
      w.end_object();
    }
    w.end_array();
    w.key("summary").begin_object();
    w.key("jobs").value(jobs);
    w.key("completed").value(completed);
    w.key("failed").value(stats.jobs_failed);
    w.key("cache_hit_rate").value(stats.cache_hit_rate());
    w.key("plan_cache_hits").value(stats.plan_cache_hits);
    w.key("plan_cache_misses").value(stats.plan_cache_misses);
    w.key("pool_allocations").value(stats.pool_allocations);
    w.key("pool_reuses").value(stats.pool_reuses);
    w.key("queue_high_water").value(stats.queue_high_water);
    w.end_object();
    w.end_object();
    if (!json_is_valid(body.str())) {
      std::cerr << "stencilctl: internal error: engine JSON failed "
                   "validation\n";
      return 1;
    }
    std::ofstream file(json_path);
    if (!file) throw ConfigError("cannot open --json file `" + json_path + "`");
    file << body.str() << "\n";
    std::cout << rows.size() << " job records written to " << json_path
              << "\n";
  }

  // Self-check: the campaign passes only if the session served every job
  // correctly and actually exercised the plan cache.
  const bool ok = completed == jobs && exact == jobs &&
                  stats.jobs_failed == 0 && stats.plan_cache_hits >= 1;
  std::cout << "campaign " << (ok ? "passed" : "FAILED") << ": " << exact
            << "/" << jobs << " bit-exact, hit rate "
            << format_fixed(stats.cache_hit_rate() * 100.0, 1) << "%\n";
  return ok ? 0 : 1;
}

// The block-parallel scaling campaign: one fixed overlapped-blocking job,
// a timed synchronous baseline (whose output doubles as the exactness
// oracle), then the same job through the block-parallel backend at each
// requested worker count. Self-checks: every run bit-exact with the sync
// sweep; and when the host actually has as many cores as the largest
// worker count, the best speedup must reach 3/8 of linear (3x at 8
// workers, the acceptance bar) -- on smaller hosts the scaling gate is
// recorded as unchecked rather than failed, since host parallelism
// cannot manifest without cores.
int cmd_blockpar(const Args& a) {
  AcceleratorConfig cfg;
  cfg.dims = static_cast<int>(a.get("dims", 3));
  cfg.radius = static_cast<int>(a.get("radius", 2));
  cfg.parvec = static_cast<int>(a.get("parvec", 4));
  cfg.partime = static_cast<int>(a.get("partime", 4));
  cfg.bsize_x = a.get("bsize-x", 136);
  cfg.bsize_y = cfg.dims == 3 ? a.get("bsize-y", 136) : 1;
  cfg.use_specialized_kernels = !a.generic;
  cfg.validate();
  const std::int64_t nx = a.get("nx", 512);
  const std::int64_t ny = a.get("ny", 512);
  const std::int64_t nz = cfg.dims == 3 ? a.get("nz", 512) : 1;
  const int iters = static_cast<int>(a.get("iters", cfg.partime));
  const std::int64_t cells = nx * ny * nz;

  std::vector<int> worker_counts;
  {
    std::stringstream ss(a.get_str("workers", "1,2,4,8"));
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      const int w = std::stoi(tok);
      if (w < 1) throw ConfigError("--workers entries must be >= 1");
      worker_counts.push_back(w);
    }
    if (worker_counts.empty()) throw ConfigError("--workers list is empty");
  }
  const int max_workers =
      *std::max_element(worker_counts.begin(), worker_counts.end());

  const TapSet taps =
      a.box ? make_box_stencil(cfg.dims, cfg.radius)
            : StarStencil::make_benchmark(cfg.dims, cfg.radius).to_taps();
  const AcceleratorConfig rcfg = resolve_stage_lag(taps, cfg);
  const BlockingPlan plan = cfg.dims == 3
                                ? make_blocking_plan(rcfg, nx, ny, nz)
                                : make_blocking_plan(rcfg, nx, ny);
  const std::int64_t blocks = plan.total_blocks();

  std::cout << "block-parallel campaign: " << cfg.describe() << " on " << nx
            << "x" << ny << (cfg.dims == 3 ? "x" + std::to_string(nz) : "")
            << " for " << iters << " iterations, " << blocks
            << " blocks/pass, workers {";
  for (std::size_t i = 0; i < worker_counts.size(); ++i) {
    std::cout << (i ? "," : "") << worker_counts[i];
  }
  std::cout << "}, "
            << (cfg.use_specialized_kernels ? "specialized kernels"
                                            : "interpreter (--generic)")
            << "\n";

  struct Row {
    int workers = 0;
    int resolved = 0;
    std::int64_t blocks = 0;
    double wall = 0.0;
    double cells_per_s = 0.0;
    double blocks_per_s = 0.0;
    double speedup = 0.0;
    bool exact = false;
  };
  std::vector<Row> rows;
  double baseline_wall = 0.0;
  double baseline_cells_per_s = 0.0;
  double redundancy = 0.0;
  bool all_exact = true;

  const auto campaign = [&](auto initial) {
    auto oracle = initial;
    {
      StencilAccelerator accel(taps, cfg);
      const Stopwatch sw;
      accel.run(oracle, iters);
      baseline_wall = sw.seconds();
    }
    baseline_cells_per_s = double(cells) * iters / baseline_wall;
    for (const int w : worker_counts) {
      auto g = initial;
      RunOptions opts;
      opts.workers = w;
      const Stopwatch sw;
      const RunStats stats = run_block_parallel(taps, cfg, g, iters, opts);
      Row row;
      row.workers = w;
      row.resolved = resolved_block_workers(opts, plan);
      row.blocks = stats.block_passes;
      row.wall = sw.seconds();
      row.cells_per_s = double(cells) * iters / row.wall;
      row.blocks_per_s = double(stats.block_passes) / row.wall;
      row.speedup = baseline_wall / row.wall;
      row.exact = compare_exact(g, oracle).identical();
      all_exact = all_exact && row.exact;
      redundancy = stats.redundancy();
      rows.push_back(row);
    }
  };
  if (cfg.dims == 2) {
    Grid2D<float> initial(nx, ny);
    initial.fill_random(1);
    campaign(std::move(initial));
  } else {
    Grid3D<float> initial(nx, ny, nz);
    initial.fill_random(1);
    campaign(std::move(initial));
  }

  TextTable t({"workers", "resolved", "blocks", "wall s", "Mcells/s",
               "blocks/s", "speedup", "exact"});
  t.add_row({"sync", "-", std::to_string(blocks * ((iters + cfg.partime - 1) /
                                                   cfg.partime)),
             format_fixed(baseline_wall, 3),
             format_fixed(baseline_cells_per_s / 1e6, 1), "-", "1.00",
             "yes"});
  for (const Row& r : rows) {
    t.add_row({std::to_string(r.workers), std::to_string(r.resolved),
               std::to_string(r.blocks), format_fixed(r.wall, 3),
               format_fixed(r.cells_per_s / 1e6, 1),
               format_fixed(r.blocks_per_s, 1), format_fixed(r.speedup, 2),
               r.exact ? "yes" : "NO"});
  }
  t.render(std::cout);

  double best_speedup = 0.0;
  for (const Row& r : rows) best_speedup = std::max(best_speedup, r.speedup);
  const unsigned hc = std::thread::hardware_concurrency();
  const bool gate_checked = hc >= unsigned(max_workers);
  const bool gate_ok =
      !gate_checked || best_speedup >= 0.375 * double(max_workers);
  std::cout << "redundancy " << format_fixed(redundancy, 3)
            << "x, best speedup " << format_fixed(best_speedup, 2) << "x ("
            << hc << " hardware threads; scaling gate "
            << (gate_checked ? (gate_ok ? "passed" : "FAILED") : "skipped")
            << ")\n";

  const std::string json_path = a.get_str("json", "");
  if (!json_path.empty()) {
    std::ostringstream body;
    JsonWriter w(body);
    w.begin_object();
    w.key("schema_version").value(2);
    w.key("bench").value("block_parallel_scaling");
    write_host_profile(w);
    w.key("paper").value(
        "High-Performance High-Order Stencil Computation on FPGAs Using "
        "OpenCL");
    w.key("workload").begin_object();
    w.key("dims").value(cfg.dims);
    w.key("nx").value(nx);
    w.key("ny").value(ny);
    w.key("nz").value(nz);
    w.key("radius").value(cfg.radius);
    w.key("parvec").value(cfg.parvec);
    w.key("partime").value(cfg.partime);
    w.key("bsize_x").value(cfg.bsize_x);
    w.key("bsize_y").value(cfg.bsize_y);
    w.key("iters").value(iters);
    w.key("blocks").value(blocks);
    w.end_object();
    w.key("baseline").begin_object();
    w.key("backend").value(backend_name(ExecutionBackend::sync_sim));
    w.key("wall_seconds").value(baseline_wall);
    w.key("cells_per_s").value(baseline_cells_per_s);
    w.end_object();
    w.key("runs").begin_array();
    for (const Row& r : rows) {
      w.begin_object();
      w.key("workers").value(r.workers);
      w.key("resolved_workers").value(r.resolved);
      w.key("blocks").value(r.blocks);
      w.key("wall_seconds").value(r.wall);
      w.key("cells_per_s").value(r.cells_per_s);
      w.key("blocks_per_s").value(r.blocks_per_s);
      w.key("speedup_vs_sync").value(r.speedup);
      w.key("exact").value(r.exact);
      w.end_object();
    }
    w.end_array();
    w.key("summary").begin_object();
    w.key("runs").value(std::int64_t(rows.size()));
    w.key("exact_runs").value(std::int64_t(std::count_if(
        rows.begin(), rows.end(), [](const Row& r) { return r.exact; })));
    w.key("max_workers").value(max_workers);
    w.key("best_speedup").value(best_speedup);
    w.key("redundancy").value(redundancy);
    w.key("hardware_concurrency").value(std::int64_t(hc));
    w.key("speedup_gate_checked").value(gate_checked);
    w.end_object();
    w.end_object();
    if (!json_is_valid(body.str())) {
      std::cerr << "stencilctl: internal error: blockpar JSON failed "
                   "validation\n";
      return 1;
    }
    std::ofstream file(json_path);
    if (!file) {
      throw ConfigError("cannot open --json file `" + json_path + "`");
    }
    file << body.str() << "\n";
    std::cout << rows.size() << " run records written to " << json_path
              << "\n";
  }

  std::cout << "campaign "
            << (all_exact && gate_ok ? "passed" : "FAILED") << ": "
            << (all_exact ? "all runs bit-exact vs sync sweep"
                          : "run NOT bit-exact vs sync sweep")
            << "\n";
  return all_exact && gate_ok ? 0 : 1;
}

// The chaos campaign: the end-to-end robustness proof for cooperative
// cancellation, per-job deadlines, the engine lifecycle, and the
// circuit breaker. Two phases through one engine session:
//
//   Phase A (deterministic): `breaker_threshold` consecutive
//   fault-injected failures on the explicit concurrent backend trip its
//   breaker open; a clean concurrent job then visibly reroutes to the
//   sync fallback (and stays bit-exact); after the cooldown a probe job
//   runs on the concurrent backend again and closes the breaker.
//
//   Phase B (seeded random): --jobs mixed jobs -- 2D star/box, 3D star,
//   explicit block-parallel, resilient-with-injector -- with ~15%
//   random deadlines (tight and loose) and ~20% random cancellations,
//   plus one guaranteed mid-run cancel and one guaranteed
//   impossible deadline. Every handle is collected with
//   wait_or_cancel(30 s), so a hang anywhere would fail the campaign
//   rather than wedge it.
//
// Self-checks: every phase-B job reaches a terminal state; zero
// unexpected failures; every *done* job bit-exact vs the naive
// reference; at least one cancellation and one deadline expiry
// observed; the breaker tripped, rerouted, and recovered; and after
// drain() the buffer pool has zero outstanding leases (nothing leaked
// across hundreds of unwinds). --json exports the scorecard
// (BENCH_PR6.json) including cancel-latency p50/p99 from the
// engine.cancel_latency_ns histogram.
int cmd_chaos(const Args& a) {
  const int jobs = static_cast<int>(a.get("jobs", 220));
  const std::uint64_t seed = std::uint64_t(a.get("seed", 42));
  if (jobs < 1) throw ConfigError("--jobs must be >= 1");

  EngineOptions eopts;
  eopts.workers = static_cast<int>(a.get("workers", 4));
  eopts.queue_capacity = std::size_t(jobs) + 16;
  eopts.breaker_threshold = 3;
  eopts.breaker_cooldown = std::chrono::milliseconds(200);

  AcceleratorConfig c2;
  c2.dims = 2;
  c2.radius = 1;
  c2.bsize_x = 32;
  c2.parvec = 4;
  c2.partime = 2;
  AcceleratorConfig c3;
  c3.dims = 3;
  c3.radius = 1;
  c3.bsize_x = 16;
  c3.bsize_y = 8;
  c3.parvec = 4;
  c3.partime = 2;
  const TapSet star2 = StarStencil::make_benchmark(2, 1, 5).to_taps();
  const TapSet box2 = make_box_stencil(2, 1, 21);
  const TapSet star3 = StarStencil::make_benchmark(3, 1, 9).to_taps();
  const auto fresh2 = [] {
    Grid2D<float> g(48, 20);
    g.fill_random(3);
    return g;
  };
  const auto fresh3 = [] {
    Grid3D<float> g(20, 14, 10);
    g.fill_random(4);
    return g;
  };
  const auto fresh_wide = [] {  // enough blocks for the parallel pool
    Grid2D<float> g(128, 96);
    g.fill_random(6);
    return g;
  };
  const auto fresh_slow = [] {  // long enough to be mid-run when hit
    Grid2D<float> g(256, 192);
    g.fill_random(9);
    return g;
  };
  const int iters = 4;
  const int wide_iters = 8;
  // Per-kind expected outputs (every job of a kind starts from the same
  // seeded grid, so one reference run per kind serves the whole fleet).
  Grid2D<float> want_star2 = fresh2();
  reference_run(star2, want_star2, iters);
  Grid2D<float> want_box2 = fresh2();
  reference_run(box2, want_box2, iters);
  Grid3D<float> want_star3 = fresh3();
  reference_run(star3, want_star3, iters);
  Grid2D<float> want_wide = fresh_wide();
  reference_run(star2, want_wide, wide_iters);

  StencilEngine engine(eopts);
  const Stopwatch campaign_clock;
  int checks_failed = 0;
  const auto check = [&](bool ok, const std::string& what) {
    std::cout << (ok ? "  [ok]   " : "  [FAIL] ") << what << "\n";
    if (!ok) ++checks_failed;
  };

  // ---- Phase A: the breaker must trip, reroute, and recover. --------
  std::cout << "phase A: circuit breaker (threshold "
            << eopts.breaker_threshold << ", cooldown "
            << eopts.breaker_cooldown.count() << " ms)\n";
  std::deque<FaultInjector> injectors;
  int phase_a_failed = 0;
  for (int i = 0; i < eopts.breaker_threshold; ++i) {
    FaultInjector fi(FaultPlan::parse(
        "seed=" + std::to_string(seed + std::uint64_t(i) + 1) +
        ",kernel_hang:p=1:n=inf"));
    JobSpec spec(star2, c2, fresh2(), iters);
    spec.backend = Backend::concurrent;  // explicit: no resilient rescue
    spec.injector = &fi;
    spec.watchdog_deadline = std::chrono::milliseconds(40);
    spec.label = "breaker-fault-" + std::to_string(i);
    JobHandle h = engine.submit(std::move(spec));
    (void)h.wait_or_cancel(std::chrono::milliseconds(30000));
    engine.wait_idle();  // injector lives on this stack frame
    if (h.status() == JobStatus::failed) ++phase_a_failed;
  }
  check(phase_a_failed == eopts.breaker_threshold,
        "fault-injected concurrent jobs failed (" +
            std::to_string(phase_a_failed) + "/" +
            std::to_string(eopts.breaker_threshold) + ")");
  check(engine.breaker_state(Backend::concurrent) == BreakerState::open,
        "concurrent breaker tripped open");

  JobSpec reroute_spec(star2, c2, fresh2(), iters);
  reroute_spec.backend = Backend::concurrent;
  reroute_spec.label = "breaker-reroute";
  JobResult rerouted = engine.run(std::move(reroute_spec));
  check(rerouted.rerouted && rerouted.backend == Backend::sync_sim,
        "open breaker rerouted a concurrent job to sync_sim");
  check(compare_exact(rerouted.grid2d(), want_star2).identical(),
        "rerouted job stayed bit-exact");

  std::this_thread::sleep_for(eopts.breaker_cooldown +
                              std::chrono::milliseconds(50));
  JobSpec probe_spec(star2, c2, fresh2(), iters);
  probe_spec.backend = Backend::concurrent;
  probe_spec.label = "breaker-probe";
  JobResult probe = engine.run(std::move(probe_spec));
  const bool recovered =
      !probe.rerouted && probe.backend == Backend::concurrent &&
      engine.breaker_state(Backend::concurrent) == BreakerState::closed;
  check(recovered, "post-cooldown probe ran on concurrent and closed "
                   "the breaker");
  check(compare_exact(probe.grid2d(), want_star2).identical(),
        "probe job stayed bit-exact");

  // ---- Phase B: mixed jobs under random cancels and deadlines. ------
  std::cout << "phase B: " << jobs << " mixed jobs, seed " << seed
            << " (random cancels + deadlines)\n";
  SplitMix64 rng(seed);
  enum Kind { kStar2, kBox2, kStar3, kWidePar, kResilient, kConcurrent };
  struct ChaosJob {
    JobHandle handle;
    int kind = 0;
    bool cancel_planned = false;
    bool has_deadline = false;
  };
  std::vector<ChaosJob> fleet;
  fleet.reserve(std::size_t(jobs) + 2);
  int cancels_requested = 0;
  int deadlines_assigned = 0;
  int faulted_jobs = 0;

  for (int i = 0; i < jobs; ++i) {
    const int kind = int(rng.next_below(6));
    JobSpec spec = [&]() -> JobSpec {
      switch (kind) {
        case kBox2: return {box2, c2, fresh2(), iters};
        case kStar3: return {star3, c3, fresh3(), iters};
        case kWidePar: return {star2, c2, fresh_wide(), wide_iters};
        default: return {star2, c2, fresh2(), iters};
      }
    }();
    if (kind == kWidePar) {
      spec.backend = Backend::block_parallel;
      spec.workers = 4;
    }
    if (kind == kConcurrent) spec.backend = Backend::concurrent;
    if (kind == kResilient) {
      // One budgeted, survivable hang per resilient job; the runner
      // absorbs it (watchdog trip + replay), so the job still finishes
      // bit-exact. Injectors outlive their jobs in the deque.
      injectors.emplace_back(FaultPlan::parse(
          "seed=" + std::to_string(seed + std::uint64_t(i)) +
          ",kernel_hang:n=1"));
      spec.injector = &injectors.back();
      spec.backend = Backend::resilient;
      spec.resilience.base.watchdog_deadline =
          std::chrono::milliseconds(40);
      ++faulted_jobs;
    }
    ChaosJob job;
    job.kind = kind;
    if (rng.next_float01() < 0.15f) {
      // Mostly-loose deadlines keep the done/expired mix interesting
      // without starving the bit-exactness sample.
      spec.deadline = rng.next_float01() < 0.3f
                          ? std::chrono::milliseconds(1)
                          : std::chrono::milliseconds(5000);
      job.has_deadline = true;
      ++deadlines_assigned;
    }
    job.cancel_planned = rng.next_float01() < 0.2f;
    spec.label = "chaos-" + std::to_string(i);
    job.handle = engine.submit(std::move(spec));
    fleet.push_back(std::move(job));
  }

  // Two guaranteed extremes: a long block-parallel job cancelled while
  // streaming, and a job whose deadline cannot possibly be met.
  {
    JobSpec spec(star2, c2, fresh_slow(), 5000);
    spec.backend = Backend::block_parallel;
    spec.workers = 4;
    spec.label = "chaos-guaranteed-cancel";
    ChaosJob job;
    job.kind = kWidePar;
    job.cancel_planned = true;
    job.handle = engine.submit(std::move(spec));
    fleet.push_back(std::move(job));
  }
  {
    JobSpec spec(star2, c2, fresh_slow(), 5000);
    spec.deadline = std::chrono::milliseconds(1);
    spec.label = "chaos-guaranteed-deadline";
    ChaosJob job;
    job.kind = kStar2;
    job.has_deadline = true;
    job.handle = engine.submit(std::move(spec));
    fleet.push_back(std::move(job));
  }

  // The canceller: sweep the fleet while it executes, cancelling the
  // planned ~20% with a small jitter so cancels land on queued jobs,
  // running jobs, and already-finished jobs alike.
  std::thread canceller([&] {
    SplitMix64 crng(seed ^ 0x9e3779b97f4a7c15ULL);
    for (ChaosJob& job : fleet) {
      if (!job.cancel_planned) continue;
      std::this_thread::sleep_for(
          std::chrono::microseconds(crng.next_below(2000)));
      job.handle.cancel();
      ++cancels_requested;
    }
  });
  canceller.join();

  int done = 0, cancelled = 0, deadline_exceeded = 0, failed = 0;
  int bit_exact = 0, hung = 0;
  for (ChaosJob& job : fleet) {
    const JobStatus status =
        job.handle.wait_or_cancel(std::chrono::milliseconds(30000));
    switch (status) {
      case JobStatus::done: {
        ++done;
        JobResult& r = job.handle.wait();
        bool ok = false;
        switch (job.kind) {
          case kBox2: ok = compare_exact(r.grid2d(), want_box2).identical();
                      break;
          case kStar3: ok = compare_exact(r.grid3d(), want_star3).identical();
                       break;
          case kWidePar: ok = compare_exact(r.grid2d(), want_wide).identical();
                         break;
          default: ok = compare_exact(r.grid2d(), want_star2).identical();
                   break;
        }
        bit_exact += ok ? 1 : 0;
        break;
      }
      case JobStatus::cancelled: ++cancelled; break;
      case JobStatus::deadline_exceeded: ++deadline_exceeded; break;
      case JobStatus::failed: ++failed; break;
      default: ++hung; break;  // non-terminal after wait_or_cancel: a hang
    }
  }
  engine.drain();
  const double wall_seconds = campaign_clock.seconds();
  const EngineStats stats = engine.stats();
  const std::int64_t outstanding = engine.buffer_pool().outstanding();
  const int total = int(fleet.size());

  // Cancel-latency percentiles from the engine histogram.
  const MetricsSnapshot snap = engine.telemetry().metrics().snapshot();
  const MetricSample* lat = snap.find("engine.cancel_latency_ns");
  std::int64_t lat_count = 0, lat_p50 = 0, lat_p99 = 0;
  if (lat != nullptr && lat->value > 0) {
    lat_count = lat->value;
    const auto percentile = [&](double q) -> std::int64_t {
      std::int64_t cum = 0;
      const std::int64_t want_rank =
          std::int64_t(q * double(lat_count) + 0.5);
      for (std::size_t b = 0; b < lat->buckets.size(); ++b) {
        cum += lat->buckets[b];
        if (cum >= want_rank) {
          // Overflow bucket reports the largest finite bound.
          return b < lat->bounds.size() ? lat->bounds[b]
                                        : lat->bounds.back();
        }
      }
      return lat->bounds.back();
    };
    lat_p50 = percentile(0.50);
    lat_p99 = percentile(0.99);
  }

  std::cout << "phase B results (" << format_fixed(wall_seconds, 2)
            << " s wall)\n";
  TextTable t({"outcome", "count"});
  t.add_row({"done", std::to_string(done)});
  t.add_row({"bit-exact", std::to_string(bit_exact)});
  t.add_row({"cancelled", std::to_string(cancelled)});
  t.add_row({"deadline exceeded", std::to_string(deadline_exceeded)});
  t.add_row({"failed", std::to_string(failed)});
  t.add_row({"cancel latency p50 (us)", std::to_string(lat_p50 / 1000)});
  t.add_row({"cancel latency p99 (us)", std::to_string(lat_p99 / 1000)});
  t.add_row({"breaker trips", std::to_string(stats.breaker_trips)});
  t.add_row({"breaker reroutes", std::to_string(stats.breaker_reroutes)});
  t.add_row({"pool outstanding", std::to_string(outstanding)});
  t.render(std::cout);

  check(hung == 0, "every job reached a terminal state (no hangs)");
  check(done + cancelled + deadline_exceeded + failed == total,
        "status counts sum to the fleet size");
  check(failed == 0, "zero unexpected failures");
  check(bit_exact == done, "every surviving job bit-exact (" +
                               std::to_string(bit_exact) + "/" +
                               std::to_string(done) + ")");
  check(cancelled >= 1, "at least one cancellation observed");
  check(deadline_exceeded >= 1, "at least one deadline expiry observed");
  check(outstanding == 0, "buffer pool has zero outstanding leases");
  check(stats.breaker_trips >= 1 && stats.breaker_reroutes >= 1,
        "breaker tripped and rerouted");
  check(engine.state() == EngineState::stopped, "engine drained to stopped");

  const std::string json_path = a.get_str("json", "");
  if (!json_path.empty()) {
    std::ostringstream body;
    JsonWriter w(body);
    w.begin_object();
    w.key("schema_version").value(2);
    w.key("bench").value("chaos_campaign");
    write_host_profile(w);
    w.key("paper").value(
        "High-Performance High-Order Stencil Computation on FPGAs Using "
        "OpenCL");
    w.key("engine").begin_object();
    w.key("workers").value(eopts.workers);
    w.key("queue_capacity").value(std::int64_t(eopts.queue_capacity));
    w.key("breaker_threshold").value(eopts.breaker_threshold);
    w.key("breaker_cooldown_ms")
        .value(std::int64_t(eopts.breaker_cooldown.count()));
    w.end_object();
    w.key("campaign").begin_object();
    w.key("jobs").value(total);
    w.key("seed").value(std::int64_t(seed));
    w.key("cancels_requested").value(cancels_requested);
    w.key("deadlines_assigned").value(deadlines_assigned + 1);
    w.key("faulted_jobs").value(faulted_jobs);
    w.key("wall_seconds").value(wall_seconds);
    w.end_object();
    w.key("results").begin_object();
    w.key("done").value(done);
    w.key("cancelled").value(cancelled);
    w.key("deadline_exceeded").value(deadline_exceeded);
    w.key("failed").value(failed);
    w.key("bit_exact").value(bit_exact);
    w.key("hung").value(hung);
    w.end_object();
    w.key("cancel_latency_ns").begin_object();
    w.key("count").value(lat_count);
    w.key("p50").value(lat_p50);
    w.key("p99").value(lat_p99);
    w.end_object();
    w.key("breaker").begin_object();
    w.key("trips").value(stats.breaker_trips);
    w.key("reroutes").value(stats.breaker_reroutes);
    w.key("recovered").value(recovered);
    w.end_object();
    w.key("pool").begin_object();
    w.key("outstanding").value(outstanding);
    w.key("allocations").value(stats.pool_allocations);
    w.key("reuses").value(stats.pool_reuses);
    w.end_object();
    w.end_object();
    if (!json_is_valid(body.str())) {
      std::cerr << "stencilctl: internal error: chaos JSON failed "
                   "validation\n";
      return 1;
    }
    std::ofstream file(json_path);
    if (!file) throw ConfigError("cannot open --json file `" + json_path + "`");
    file << body.str() << "\n";
    std::cout << "chaos scorecard written to " << json_path << "\n";
  }

  std::cout << "chaos campaign "
            << (checks_failed == 0 ? "passed" : "FAILED") << " ("
            << checks_failed << " self-checks failed)\n";
  return checks_failed == 0 ? 0 : 1;
}

// The serving-tier campaign: the end-to-end proof for the sharded
// multi-tenant tier (docs/SERVING.md). One EngineCluster, a skewed
// five-tenant mix over sixteen job kinds, a mid-campaign drain+reload of
// shard 1, and exact accounting of every submission. Three phases:
//
//   Scale probe: a fixed mixed batch through a 1-shard/1-worker cluster
//   and then through the full topology. Like blockpar, the 3/8-linear
//   speedup gate is only *checked* when the host really has
//   shards*workers cores; on smaller hosts it is recorded as unchecked
//   (speedup_gate_checked=false) instead of failing.
//
//   Calibration: a clean alpha/beta-only slice, fully collected, whose
//   per-class p99 becomes the isolation baseline.
//
//   Main: the remaining jobs with all five tenants -- gamma is
//   rate-capped (rejections expected and counted), delta is
//   inflight-capped with blocking backpressure, mallory carries a
//   seeded fault injector (kernel hangs survived by the resilient
//   backend + watchdog). A sliding submission window bounds memory;
//   shard 1 is drained at 40% and reloaded at 70% of the phase.
int cmd_serve(const Args& a) {
  const std::int64_t jobs = a.get("jobs", 100000);
  const int shards = static_cast<int>(a.get("shards", 3));
  const int workers = static_cast<int>(a.get("workers", 2));
  const int iters = static_cast<int>(a.get("iters", 2));
  const std::uint64_t seed = std::uint64_t(a.get("seed", 8));
  const std::int64_t window_cap = a.get("window", 256);
  if (jobs < 100) throw ConfigError("--jobs must be >= 100");
  if (shards < 1) throw ConfigError("--shards must be >= 1");
  if (workers < 1) throw ConfigError("--workers must be >= 1");
  if (window_cap < 8) throw ConfigError("--window must be >= 8");

  // ---- The sixteen job kinds: star/box x 2D/3D x radius 1..4. -------
  struct Kind {
    std::string name;
    TapSet taps;
    AcceleratorConfig cfg;
    bool is_3d = false;
    std::int64_t nx = 0, ny = 0, nz = 1;
    unsigned gseed = 0;
    Grid2D<float> want2{1, 1};
    Grid3D<float> want3{1, 1, 1};
  };
  std::vector<Kind> kinds;
  for (const int dims : {2, 3}) {
    for (int radius = 1; radius <= 4; ++radius) {
      for (int box = 0; box < 2; ++box) {
        const int id = int(kinds.size());
        AcceleratorConfig cfg;
        cfg.dims = dims;
        cfg.radius = radius;
        cfg.parvec = 4;
        cfg.partime = radius == 1 ? 2 : 1;
        cfg.bsize_x = dims == 2 ? 32 : 16;
        cfg.bsize_y = dims == 3 ? (radius >= 3 ? 16 : 8) : 1;
        cfg.validate();
        TapSet taps =
            box != 0
                ? make_box_stencil(dims, radius, std::uint64_t(21 + id))
                : StarStencil::make_benchmark(dims, radius,
                                              std::uint64_t(5 + id))
                      .to_taps();
        Kind k{std::string(box != 0 ? "box" : "star") +
                   std::to_string(dims) + "d-r" + std::to_string(radius),
               std::move(taps),
               cfg,
               dims == 3,
               // High-radius 3D boxes have up to 9^3 taps; a smaller grid
               // keeps their per-job cost in line with the other kinds.
               dims == 2 ? 48 : (radius >= 3 ? 16 : 20),
               dims == 2 ? 20 : (radius >= 3 ? 12 : 14),
               dims == 2 ? 1 : (radius >= 3 ? 8 : 10),
               unsigned(10 + id),
               Grid2D<float>(1, 1),
               Grid3D<float>(1, 1, 1)};
        if (k.is_3d) {
          Grid3D<float> g(k.nx, k.ny, k.nz);
          g.fill_random(k.gseed);
          k.want3 = std::move(g);
          reference_run(k.taps, k.want3, iters);
        } else {
          Grid2D<float> g(k.nx, k.ny);
          g.fill_random(k.gseed);
          k.want2 = std::move(g);
          reference_run(k.taps, k.want2, iters);
        }
        kinds.push_back(std::move(k));
      }
    }
  }
  const auto spec_for = [&](const Kind& k) -> JobSpec {
    if (k.is_3d) {
      Grid3D<float> g(k.nx, k.ny, k.nz);
      g.fill_random(k.gseed);
      return {k.taps, k.cfg, std::move(g), iters};
    }
    Grid2D<float> g(k.nx, k.ny);
    g.fill_random(k.gseed);
    return {k.taps, k.cfg, std::move(g), iters};
  };

  // ---- The tenant mix (skewed, with one bad actor). -----------------
  struct TenantDef {
    const char* name;
    QosClass qos;
    const char* role;
  };
  enum { kAlpha = 0, kBeta, kGamma, kDelta, kMallory, kTenantCount };
  const std::array<TenantDef, kTenantCount> tenants = {{
      {"alpha", QosClass::standard, "clean bulk (50%)"},
      {"beta", QosClass::interactive, "latency-sensitive (25%)"},
      {"gamma", QosClass::batch, "rate-capped (15%)"},
      {"delta", QosClass::standard, "inflight-capped, blocking (5%)"},
      {"mallory", QosClass::batch, "seeded kernel hangs (5%)"},
  }};

  ClusterOptions copts;
  copts.shards = shards;
  copts.engine.workers = workers;
  copts.engine.queue_capacity = std::size_t(window_cap) + 64;
  copts.quotas["gamma"] =
      TenantQuota{/*max_inflight=*/0, /*rate_per_s=*/200.0, /*burst=*/20.0,
                  /*block=*/false};
  copts.quotas["delta"] =
      TenantQuota{/*max_inflight=*/8, /*rate_per_s=*/0.0, /*burst=*/0.0,
                  /*block=*/true};

  // Survivable faults for mallory only: the resilient backend's watchdog
  // recovers each hang, so even mallory's jobs must terminate done.
  FaultInjector mallory_faults(FaultPlan::parse(
      "seed=" + std::to_string(seed) + ",kernel_hang:p=0.05:n=12"));

  int checks_failed = 0;
  const auto check = [&](bool ok, const std::string& what) {
    std::cout << (ok ? "  [ok]   " : "  [FAIL] ") << what << "\n";
    if (!ok) ++checks_failed;
  };
  const auto pct = [](std::vector<std::int64_t>& v,
                      double q) -> std::int64_t {
    if (v.empty()) return 0;
    const auto idx = std::ptrdiff_t(q * double(v.size() - 1) + 0.5);
    std::nth_element(v.begin(), v.begin() + idx, v.end());
    return v[std::size_t(idx)];
  };

  // ---- Scale probe (own clusters, not part of the accounting). ------
  const unsigned hc = std::thread::hardware_concurrency();
  const int needed_cores = shards * workers;
  const std::int64_t probe_jobs =
      std::clamp<std::int64_t>(jobs / 250, 64, 400);
  const auto probe_wall = [&](int pshards, int pworkers) {
    ClusterOptions po;
    po.shards = pshards;
    po.engine.workers = pworkers;
    po.engine.queue_capacity = std::size_t(probe_jobs) + 16;
    EngineCluster probe(po);
    const Stopwatch sw;
    std::vector<JobHandle> hs;
    hs.reserve(std::size_t(probe_jobs));
    for (std::int64_t i = 0; i < probe_jobs; ++i) {
      hs.push_back(probe.submit(spec_for(kinds[std::size_t(i) %
                                               kinds.size()])));
    }
    for (JobHandle& h : hs) {
      (void)h.wait_or_cancel(std::chrono::milliseconds(180000));
    }
    return sw.seconds();
  };
  std::cout << "scale probe: " << probe_jobs << " mixed jobs, 1x1 vs "
            << shards << "x" << workers << " (host has " << hc
            << " hardware threads)\n";
  const double probe_single = probe_wall(1, 1);
  const double probe_cluster = probe_wall(shards, workers);
  const double probe_speedup =
      probe_cluster > 0.0 ? probe_single / probe_cluster : 0.0;
  const bool gate_checked = hc >= unsigned(needed_cores);
  const bool gate_ok =
      !gate_checked || probe_speedup >= 0.375 * double(needed_cores);
  std::cout << "  speedup " << format_fixed(probe_speedup, 2)
            << "x; 3/8-linear gate "
            << (gate_checked ? (gate_ok ? "passed" : "FAILED")
                             : "skipped (not enough cores)")
            << "\n";

  // ---- The campaign proper. -----------------------------------------
  EngineCluster cluster(copts);
  const Stopwatch campaign_clock;
  SplitMix64 rng(seed);

  struct Pending {
    JobHandle handle;
    int kind;
    int tenant;
    bool calib;
    std::shared_ptr<std::vector<float>> sunk;
  };
  std::deque<Pending> window;

  std::int64_t attempted = 0, submitted_ok = 0, rejected = 0;
  std::int64_t done = 0, failed = 0, hung = 0, bit_exact = 0;
  std::int64_t sink_jobs = 0, sink_exact = 0, chunks_delivered = 0;
  std::array<std::int64_t, kTenantCount> t_submitted{}, t_rejected{},
      t_done{};
  std::array<std::vector<std::int64_t>, kQosClassCount> lat_main, lat_calib;
  std::array<std::vector<std::int64_t>, kTenantCount> lat_tenant;

  const auto collect_one = [&] {
    Pending p = std::move(window.front());
    window.pop_front();
    const JobStatus s =
        p.handle.wait_or_cancel(std::chrono::milliseconds(180000));
    if (s == JobStatus::failed) {
      ++failed;
      return;
    }
    if (s != JobStatus::done) {
      ++hung;
      return;
    }
    ++done;
    ++t_done[std::size_t(p.tenant)];
    JobResult& r = p.handle.wait();
    const Kind& k = kinds[std::size_t(p.kind)];
    bool ok = false;
    if (p.sunk) {
      ++sink_jobs;
      chunks_delivered += r.chunks_delivered;
      const float* want = k.is_3d ? k.want3.data() : k.want2.data();
      const auto n = std::size_t(k.is_3d ? k.want3.size() : k.want2.size());
      ok = p.sunk->size() == n &&
           std::equal(p.sunk->begin(), p.sunk->end(), want);
      sink_exact += ok ? 1 : 0;
    } else {
      ok = k.is_3d ? compare_exact(r.grid3d(), k.want3).identical()
                   : compare_exact(r.grid2d(), k.want2).identical();
    }
    bit_exact += ok ? 1 : 0;
    const std::int64_t lat = r.queue_ns + r.run_ns;
    auto& per_class = p.calib ? lat_calib : lat_main;
    per_class[std::size_t(tenants[std::size_t(p.tenant)].qos)].push_back(
        lat);
    if (!p.calib) lat_tenant[std::size_t(p.tenant)].push_back(lat);
  };

  const auto submit_one = [&](int tenant, int kind, bool calib) {
    ++attempted;
    JobSpec spec = spec_for(kinds[std::size_t(kind)]);
    spec.tenant = tenants[std::size_t(tenant)].name;
    spec.qos = tenants[std::size_t(tenant)].qos;
    spec.priority = int(rng.next_u64() % 4);
    std::shared_ptr<std::vector<float>> sunk;
    if (!calib && attempted % 97 == 0) {
      // ~1% of main-phase jobs stream their result in bands instead of
      // returning a grid; the bands must reassemble bit-exactly.
      sunk = std::make_shared<std::vector<float>>();
      spec.sink = [sunk](const ResultChunk& c) {
        sunk->insert(sunk->end(), c.data, c.data + c.values);
      };
      spec.sink_only = true;
      spec.chunk_values = 256;
    }
    if (tenant == kMallory) {
      // The watchdog bounds each hang's head-of-line blocking: one hung
      // worker recovers well inside the isolation gate's envelope, but
      // the deadline stays far above any clean job's contended runtime
      // so healthy work is never falsely tripped.
      spec.injector = &mallory_faults;
      spec.watchdog_deadline = std::chrono::milliseconds(250);
    }
    try {
      JobHandle h = cluster.submit(std::move(spec));
      window.push_back(
          Pending{std::move(h), kind, tenant, calib, std::move(sunk)});
      ++submitted_ok;
      ++t_submitted[std::size_t(tenant)];
    } catch (const QuotaExceededError&) {
      ++rejected;
      ++t_rejected[std::size_t(tenant)];
    }
    while (std::int64_t(window.size()) >= window_cap) collect_one();
  };

  // Phase 1: quota proof. Back-to-back gamma submissions overrun the
  // 20-token burst deterministically, whatever the host's speed.
  const std::int64_t proof_jobs = 30;
  std::cout << "phase 1: quota proof (" << proof_jobs
            << " back-to-back gamma submissions against burst 20)\n";
  for (std::int64_t i = 0; i < proof_jobs; ++i) {
    submit_one(kGamma, int(rng.next_u64() % kinds.size()), false);
  }

  // Phase 2: clean calibration slice, fully collected before the mixed
  // phase so its percentiles are an interference-free baseline.
  // The baseline must run at the same steady-state windowed load as the
  // main phase (several full windows), or its p99 reflects an empty
  // queue and the isolation gate compares unlike regimes.
  const std::int64_t calib_jobs = std::min(
      std::clamp<std::int64_t>(jobs / 10, 4 * window_cap, 5000),
      (jobs - proof_jobs) / 2);
  std::cout << "phase 2: calibration (" << calib_jobs
            << " clean alpha/beta jobs)\n";
  for (std::int64_t i = 0; i < calib_jobs; ++i) {
    submit_one(i % 2 == 0 ? kAlpha : kBeta,
               int(rng.next_u64() % kinds.size()), true);
  }
  while (!window.empty()) collect_one();

  // Phase 3: the mixed campaign with drain/reload of shard 1 mid-way.
  const std::int64_t main_jobs = jobs - proof_jobs - calib_jobs;
  const std::int64_t drain_at = main_jobs * 2 / 5;
  const std::int64_t reload_at = main_jobs * 7 / 10;
  std::cout << "phase 3: " << main_jobs << " mixed jobs, five tenants"
            << (shards > 1 ? ", drain shard 1 at 40%, reload at 70%" : "")
            << "\n";
  for (std::int64_t m = 0; m < main_jobs; ++m) {
    if (shards > 1 && m == drain_at) cluster.drain_shard(1);
    if (shards > 1 && m == reload_at) cluster.reload_shard(1);
    const std::uint64_t mix = rng.next_u64() % 100;
    const int tenant = mix < 50   ? kAlpha
                       : mix < 75 ? kBeta
                       : mix < 90 ? kGamma
                       : mix < 95 ? kDelta
                                  : kMallory;
    submit_one(tenant, int(rng.next_u64() % kinds.size()), false);
  }
  while (!window.empty()) collect_one();
  const double wall_seconds = campaign_clock.seconds();
  cluster.drain();

  // ---- Post-campaign accounting. ------------------------------------
  const MetricsSnapshot snap = cluster.telemetry().metrics().snapshot();
  std::vector<std::int64_t> shard_completed;
  std::vector<double> shard_hit_rate;
  std::int64_t pool_outstanding = 0;
  double min_hit_rate = 1.0;
  std::int64_t shard_total = 0, shard_max = 0;
  for (int k = 0; k < shards; ++k) {
    // Snapshot totals survive the mid-campaign reload (the fresh engine
    // keeps the shard's metrics prefix); stats() would not.
    const std::int64_t completed = snap.value_or(
        "engine.shard" + std::to_string(k) + ".jobs_completed", 0);
    shard_completed.push_back(completed);
    shard_total += completed;
    shard_max = std::max(shard_max, completed);
    const EngineStats st = cluster.shard(k).stats();
    shard_hit_rate.push_back(st.cache_hit_rate());
    if (completed > 0) min_hit_rate = std::min(min_hit_rate,
                                               st.cache_hit_rate());
    pool_outstanding += cluster.shard(k).buffer_pool().outstanding();
  }
  const double balance_bound = 3.0;
  const double balance_ratio =
      shard_total > 0
          ? double(shard_max) / (double(shard_total) / double(shards))
          : 0.0;

  // Isolation: clean classes in the mixed phase vs their calibration
  // baseline. Self-normalized (6x or +250 ms, whichever is looser) so
  // the gate measures interference, not absolute host speed.
  const auto iso_bound = [](std::int64_t calib_p99) {
    return std::max(calib_p99 * 6, calib_p99 + std::int64_t(250000000));
  };
  const std::int64_t calib_p99_inter =
      pct(lat_calib[std::size_t(QosClass::interactive)], 0.99);
  const std::int64_t calib_p99_std =
      pct(lat_calib[std::size_t(QosClass::standard)], 0.99);
  const std::int64_t main_p99_inter =
      pct(lat_main[std::size_t(QosClass::interactive)], 0.99);
  const std::int64_t main_p99_std =
      pct(lat_main[std::size_t(QosClass::standard)], 0.99);
  const bool iso_inter = main_p99_inter <= iso_bound(calib_p99_inter);
  const bool iso_std = main_p99_std <= iso_bound(calib_p99_std);

  std::cout << "campaign wall " << format_fixed(wall_seconds, 2) << " s, "
            << format_fixed(double(done) / wall_seconds, 0) << " jobs/s\n";
  TextTable classes_table(
      {"class", "jobs", "p50 us", "p99 us", "p999 us", "jobs/s"});
  for (int c = 0; c < kQosClassCount; ++c) {
    auto& v = lat_main[std::size_t(c)];
    classes_table.add_row(
        {qos_class_name(QosClass(c)), std::to_string(v.size()),
         std::to_string(pct(v, 0.50) / 1000),
         std::to_string(pct(v, 0.99) / 1000),
         std::to_string(pct(v, 0.999) / 1000),
         format_fixed(double(v.size()) / wall_seconds, 1)});
  }
  classes_table.render(std::cout);
  TextTable tenant_table(
      {"tenant", "role", "submitted", "rejected", "done", "p99 us"});
  for (int t = 0; t < kTenantCount; ++t) {
    tenant_table.add_row(
        {tenants[std::size_t(t)].name, tenants[std::size_t(t)].role,
         std::to_string(t_submitted[std::size_t(t)]),
         std::to_string(t_rejected[std::size_t(t)]),
         std::to_string(t_done[std::size_t(t)]),
         std::to_string(pct(lat_tenant[std::size_t(t)], 0.99) / 1000)});
  }
  tenant_table.render(std::cout);
  TextTable shard_table({"shard", "completed", "hit rate"});
  for (int k = 0; k < shards; ++k) {
    shard_table.add_row(
        {std::to_string(k),
         std::to_string(shard_completed[std::size_t(k)]),
         format_percent(shard_hit_rate[std::size_t(k)])});
  }
  shard_table.render(std::cout);

  check(attempted == jobs,
        "every requested job was attempted (" + std::to_string(attempted) +
            "/" + std::to_string(jobs) + ")");
  check(submitted_ok + rejected == attempted,
        "accounting: submitted + rejected == attempted");
  check(done + failed + hung == submitted_ok,
        "accounting: every admitted job reached exactly one outcome");
  check(failed == 0, "zero failed jobs");
  check(hung == 0, "zero hung jobs");
  check(bit_exact == done, "every completed job bit-exact (" +
                               std::to_string(bit_exact) + "/" +
                               std::to_string(done) + ")");
  check(sink_jobs >= 1 && sink_exact == sink_jobs,
        "chunked deliveries reassembled exactly (" +
            std::to_string(sink_exact) + "/" + std::to_string(sink_jobs) +
            " over " + std::to_string(chunks_delivered) + " chunks)");
  check(rejected >= 1, "quota admission produced at least one rejection");
  check(mallory_faults.total_fires() >= 1,
        "seeded faults actually fired (" +
            std::to_string(mallory_faults.total_fires()) + ")");
  check(min_hit_rate > 0.9,
        "per-shard plan-cache hit rate > 0.9 (min " +
            format_fixed(min_hit_rate * 100.0, 1) + "%)");
  check(balance_ratio <= balance_bound,
        "shard balance max/mean " + format_fixed(balance_ratio, 2) +
            " within " + format_fixed(balance_bound, 1));
  check(pool_outstanding == 0, "zero leaked buffer-pool leases");
  check(iso_inter && iso_std,
        "faulty tenant never degraded clean p99 (interactive " +
            std::to_string(main_p99_inter / 1000) + " us vs calib " +
            std::to_string(calib_p99_inter / 1000) + " us)");
  if (shards > 1) {
    check(snap.value_or("cluster.shard_drains", 0) >= 1 &&
              snap.value_or("cluster.shard_reloads", 0) >= 1,
          "mid-campaign drain + reload exercised");
  }
  check(gate_ok, gate_checked
                     ? "scale probe reached 3/8-linear speedup"
                     : "scale probe gate skipped (host too small; "
                       "recorded unchecked)");

  const std::string json_path = a.get_str("json", "");
  if (!json_path.empty()) {
    std::ostringstream body;
    JsonWriter w(body);
    w.begin_object();
    w.key("schema_version").value(2);
    w.key("bench").value("serving_campaign");
    write_host_profile(w);
    w.key("paper").value(
        "High-Performance High-Order Stencil Computation on FPGAs Using "
        "OpenCL");
    w.key("cluster").begin_object();
    w.key("shards").value(shards);
    w.key("workers_per_shard").value(workers);
    w.key("vnodes_per_shard").value(copts.vnodes_per_shard);
    w.key("queue_capacity").value(std::int64_t(copts.engine.queue_capacity));
    w.key("class_weights").begin_array();
    for (const int cw : copts.engine.class_weights) w.value(cw);
    w.end_array();
    w.end_object();
    w.key("campaign").begin_object();
    w.key("jobs_attempted").value(attempted);
    w.key("quota_proof_jobs").value(proof_jobs);
    w.key("calibration_jobs").value(calib_jobs);
    w.key("main_jobs").value(main_jobs);
    w.key("job_kinds").value(std::int64_t(kinds.size()));
    w.key("iters").value(iters);
    w.key("seed").value(std::int64_t(seed));
    w.key("window").value(window_cap);
    w.key("wall_seconds").value(wall_seconds);
    w.end_object();
    w.key("results").begin_object();
    w.key("submitted").value(submitted_ok);
    w.key("rejected").value(rejected);
    w.key("done").value(done);
    w.key("failed").value(failed);
    w.key("hung").value(hung);
    w.key("bit_exact").value(bit_exact);
    w.key("sink_jobs").value(sink_jobs);
    w.key("sink_exact").value(sink_exact);
    w.key("chunks_delivered").value(chunks_delivered);
    w.key("faults_fired").value(mallory_faults.total_fires());
    w.end_object();
    w.key("classes").begin_array();
    for (int c = 0; c < kQosClassCount; ++c) {
      auto& v = lat_main[std::size_t(c)];
      w.begin_object();
      w.key("name").value(qos_class_name(QosClass(c)));
      w.key("jobs").value(std::int64_t(v.size()));
      w.key("p50_ns").value(pct(v, 0.50));
      w.key("p99_ns").value(pct(v, 0.99));
      w.key("p999_ns").value(pct(v, 0.999));
      w.key("jobs_per_s").value(double(v.size()) / wall_seconds);
      w.end_object();
    }
    w.end_array();
    w.key("tenants").begin_array();
    for (int t = 0; t < kTenantCount; ++t) {
      w.begin_object();
      w.key("name").value(tenants[std::size_t(t)].name);
      w.key("class").value(qos_class_name(tenants[std::size_t(t)].qos));
      w.key("role").value(tenants[std::size_t(t)].role);
      w.key("submitted").value(t_submitted[std::size_t(t)]);
      w.key("rejected").value(t_rejected[std::size_t(t)]);
      w.key("done").value(t_done[std::size_t(t)]);
      w.key("p50_ns").value(pct(lat_tenant[std::size_t(t)], 0.50));
      w.key("p99_ns").value(pct(lat_tenant[std::size_t(t)], 0.99));
      w.end_object();
    }
    w.end_array();
    w.key("shards").begin_array();
    for (int k = 0; k < shards; ++k) {
      w.begin_object();
      w.key("shard").value(k);
      w.key("jobs_completed").value(shard_completed[std::size_t(k)]);
      w.key("cache_hit_rate").value(shard_hit_rate[std::size_t(k)]);
      w.end_object();
    }
    w.end_array();
    w.key("balance").begin_object();
    w.key("max_over_mean").value(balance_ratio);
    w.key("bound").value(balance_bound);
    w.end_object();
    w.key("isolation").begin_object();
    w.key("calib_interactive_p99_ns").value(calib_p99_inter);
    w.key("main_interactive_p99_ns").value(main_p99_inter);
    w.key("calib_standard_p99_ns").value(calib_p99_std);
    w.key("main_standard_p99_ns").value(main_p99_std);
    w.key("passed").value(iso_inter && iso_std);
    w.end_object();
    w.key("router").begin_object();
    w.key("reroutes").value(snap.value_or("cluster.submit_reroutes", 0));
    w.key("shard_drains").value(snap.value_or("cluster.shard_drains", 0));
    w.key("shard_reloads").value(snap.value_or("cluster.shard_reloads", 0));
    w.end_object();
    w.key("pool").begin_object();
    w.key("outstanding").value(pool_outstanding);
    w.end_object();
    w.key("scale_probe").begin_object();
    w.key("probe_jobs").value(probe_jobs);
    w.key("single_wall_seconds").value(probe_single);
    w.key("cluster_wall_seconds").value(probe_cluster);
    w.key("speedup").value(probe_speedup);
    w.key("needed_cores").value(needed_cores);
    w.key("hardware_concurrency").value(std::int64_t(hc));
    w.key("speedup_gate_checked").value(gate_checked);
    w.key("speedup_gate_ok").value(gate_ok);
    w.end_object();
    w.end_object();
    if (!json_is_valid(body.str())) {
      std::cerr << "stencilctl: internal error: serve JSON failed "
                   "validation\n";
      return 1;
    }
    std::ofstream file(json_path);
    if (!file) throw ConfigError("cannot open --json file `" + json_path + "`");
    file << body.str() << "\n";
    std::cout << "serving scorecard written to " << json_path << "\n";
  }

  std::cout << "serving campaign "
            << (checks_failed == 0 ? "passed" : "FAILED") << " ("
            << checks_failed << " self-checks failed)\n";
  return checks_failed == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// tune: empirical host autotuning (PR 9; docs/TUNING.md). Sweeps the
// kernel envelope measuring paper-default vs empirically searched block
// geometry with real runs (the tuner's short probes only pick the plan),
// verifies bit-exactness at every point, and with --json exports the
// BENCH_PR9.json "autotune" scorecard. --serve runs the engine
// integration self-check instead: one search on the first job, then a
// tuner.cache_hit for every later job on the same spec.

TapSet tune_taps(StencilShape shape, int dims, int radius) {
  if (shape == StencilShape::kStar) {
    return StarStencil::make_benchmark(dims, radius, 99).to_taps();
  }
  return make_box_stencil(dims, radius, 99);
}

/// The geometry the repository's benches run with when the user does not
/// choose (2D 4096-wide blocks, 3D 256x128, four chained PEs).
AcceleratorConfig tune_default_config(int dims, int radius) {
  AcceleratorConfig cfg;
  cfg.dims = dims;
  cfg.radius = radius;
  cfg.parvec = 4;
  cfg.partime = 4;
  cfg.bsize_x = dims == 2 ? 4096 : 256;
  cfg.bsize_y = dims == 3 ? 128 : 1;
  return cfg;
}

std::string tune_geometry(const AcceleratorConfig& cfg) {
  std::ostringstream os;
  os << "b" << cfg.bsize_x;
  if (cfg.dims == 3) os << "x" << cfg.bsize_y;
  os << ",t" << cfg.partime;
  return os.str();
}

bool tune_same_geometry(const AcceleratorConfig& a,
                        const AcceleratorConfig& b) {
  return a.bsize_x == b.bsize_x && a.bsize_y == b.bsize_y &&
         a.partime == b.partime;
}

double tune_mcells(std::int64_t cells, int iters, double seconds) {
  return seconds > 0.0 ? double(cells) * iters / seconds / 1e6 : 0.0;
}

template <typename GridT>
double tune_time_run(const TapSet& taps, const AcceleratorConfig& cfg,
                     GridT& grid, int iters) {
  StencilAccelerator accel(taps, cfg);
  const Stopwatch clock;
  (void)accel.run(grid, iters);
  return double(clock.nanoseconds()) / 1e9;
}

struct TunePoint {
  std::string name;
  StencilShape shape = StencilShape::kStar;
  int dims = 2, radius = 1, parvec = 4;
  std::int64_t nx = 0, ny = 0, nz = 1;
  int iters = 0;
  std::string default_config, model_config, tuned_config;
  double default_mcells = 0.0;
  double model_mcells = 0.0;
  double tuned_mcells = 0.0;
  double probe_tuned_mcells = 0.0;
  double probe_baseline_mcells = 0.0;
  std::int64_t candidates_probed = 0;
  std::int64_t search_ns = 0;
  bool exact = true;
  [[nodiscard]] double gain() const {
    return default_mcells > 0.0 ? tuned_mcells / default_mcells : 0.0;
  }
  [[nodiscard]] double model_gain() const {
    return default_mcells > 0.0 ? model_mcells / default_mcells : 0.0;
  }
};

template <typename GridT>
TunePoint tune_point(HostAutotuner& tuner, StencilShape shape, int radius,
                     const GridT& init) {
  constexpr int dims = std::is_same_v<GridT, Grid3D<float>> ? 3 : 2;
  const TapSet taps = tune_taps(shape, dims, radius);
  const AcceleratorConfig base = tune_default_config(dims, radius);

  TunePoint r;
  r.shape = shape;
  r.dims = dims;
  r.radius = radius;
  r.parvec = base.parvec;
  r.nx = init.nx();
  r.ny = init.ny();
  if constexpr (dims == 3) r.nz = init.nz();
  r.iters = base.partime;
  r.name = std::string(stencil_shape_name(shape)) + "_" +
           std::to_string(dims) + "d_r" + std::to_string(radius);
  const std::int64_t cells = r.nx * r.ny * r.nz;

  // Search first (its probes never touch the measurement grids), then
  // measure the winner with a real run on the target grid.
  const AutotuneOutcome found = tuner.search(taps, base, r.nx, r.ny, r.nz);
  r.probe_tuned_mcells = found.tuned_mcells;
  r.probe_baseline_mcells = found.baseline_mcells;
  r.candidates_probed = found.candidates_probed;
  r.search_ns = found.search_ns;

  // What a model-only tuner would pick: the lowest-cost non-default
  // candidate from the cache-model seeding.
  const std::vector<AcceleratorConfig> candidates =
      enumerate_plan_candidates(base, r.nx, r.ny, r.nz);
  const AcceleratorConfig model_cfg =
      candidates.size() > 1 ? candidates[1] : base;

  r.default_config = tune_geometry(base);
  r.model_config = tune_geometry(model_cfg);
  r.tuned_config = tune_geometry(found.config);

  GridT reference = init;
  r.default_mcells = tune_mcells(
      cells, r.iters, tune_time_run(taps, base, reference, r.iters));

  const auto measure_vs_reference = [&](const AcceleratorConfig& cfg,
                                        double& out_mcells) {
    if (tune_same_geometry(cfg, base)) {
      out_mcells = r.default_mcells;  // same plan: same bits, same speed
      return;
    }
    GridT alt = init;
    out_mcells = tune_mcells(cells, r.iters,
                             tune_time_run(taps, cfg, alt, r.iters));
    r.exact = r.exact && compare_exact(alt, reference).identical();
  };
  measure_vs_reference(model_cfg, r.model_mcells);
  measure_vs_reference(found.config, r.tuned_mcells);
  return r;
}

/// --serve: engine-integration self-check. One engine with
/// autotune=search serves J identical jobs; the first job's plan build
/// runs the (only) search, every later job must account as a
/// tuner.cache_hit, and every result must be bit-exact with the untuned
/// paper-default geometry.
int cmd_tune_serve(const Args& a) {
  const int jobs = static_cast<int>(a.get("jobs", 12));
  const int iters = 4;
  if (jobs < 2) throw ConfigError("--jobs must be >= 2");

  EngineOptions eopts;
  eopts.workers = static_cast<int>(a.get("workers", 2));
  eopts.autotune = AutotuneMode::search;
  eopts.tuning_cache_path = a.get_str("cache", "");
  eopts.autotune_probe_cells = a.get("probe-cells", 16 * 1024);

  const TapSet taps = StarStencil::make_benchmark(2, 2, 7).to_taps();
  const AcceleratorConfig cfg = tune_default_config(2, 2);
  Grid2D<float> init(96, 64);
  init.fill_random(41, -1.0f, 1.0f);
  Grid2D<float> want = init;
  StencilAccelerator(taps, cfg).run(want, iters);

  StencilEngine engine(eopts);
  // Warm-up job: populates the plan cache, so it is the only job whose
  // build may probe.
  int exact = 0;
  int tuned = 0;
  {
    JobSpec spec{taps, cfg, Grid2D<float>(init), iters};
    spec.label = "tune-warmup";
    // Hold the handle across the result read: wait() hands out a
    // reference into handle-owned state.
    JobHandle warm = engine.submit(std::move(spec));
    JobResult& r = warm.wait();
    exact += compare_exact(r.grid2d(), want).identical() ? 1 : 0;
    tuned += r.plan_tuned ? 1 : 0;
  }
  std::vector<JobHandle> handles;
  handles.reserve(std::size_t(jobs - 1));
  for (int i = 1; i < jobs; ++i) {
    JobSpec spec{taps, cfg, Grid2D<float>(init), iters};
    spec.label = "tune-" + std::to_string(i);
    handles.push_back(engine.submit(std::move(spec)));
  }
  for (JobHandle& h : handles) {
    JobResult& r = h.wait();
    exact += compare_exact(r.grid2d(), want).identical() ? 1 : 0;
    tuned += r.plan_tuned ? 1 : 0;
  }
  const EngineStats s = engine.stats();

  TextTable t({"counter", "value"});
  t.add_row({"jobs", std::to_string(jobs)});
  t.add_row({"jobs bit-exact", std::to_string(exact)});
  t.add_row({"jobs on tuned plan", std::to_string(tuned)});
  t.add_row({"tuner.search_runs", std::to_string(s.tuner_search_runs)});
  t.add_row({"tuner.cache_miss", std::to_string(s.tuner_cache_misses)});
  t.add_row({"tuner.cache_hit", std::to_string(s.tuner_cache_hits)});
  t.add_row({"tuner.search_candidates",
             std::to_string(s.tuner_search_candidates)});
  t.render(std::cout);

  // Every post-warm-up job must be a tuner cache hit.
  const bool ok = exact == jobs && tuned == jobs &&
                  s.tuner_search_runs == 1 && s.tuner_cache_misses == 1 &&
                  s.tuner_cache_hits == std::int64_t(jobs) - 1;
  std::cout << "tune --serve self-check " << (ok ? "passed" : "FAILED")
            << "\n";
  return ok ? 0 : 1;
}

int cmd_tune(const Args& a) {
  if (a.serve) return cmd_tune_serve(a);

  const bool full = a.full;
  const std::int64_t n2d = a.get("n2d", full ? 4096 : 256);
  const std::int64_t n3d = a.get("n3d", full ? 160 : 48);
  const std::int64_t accept_n = a.get("accept-n", full ? 512 : 64);
  const std::string json_path = a.get_str("json", "");

  HostAutotunerOptions topts;
  topts.cache_path = a.get_str("cache", "");
  topts.probe_cells = a.get("probe-cells", full ? 512 * 1024 : 32 * 1024);
  topts.probe_repeats = full ? 2 : 1;
  HostAutotuner tuner(topts);

  Grid2D<float> init2(n2d, n2d / 2);
  init2.fill_random(31, -1.0f, 1.0f);
  Grid3D<float> init3(n3d, n3d, n3d);
  init3.fill_random(32, -1.0f, 1.0f);

  bool ok = true;
  std::vector<TunePoint> envelope;
  TextTable t({"point", "default Mc/s", "tuned Mc/s", "tuned geom", "gain",
               "probes", "exact"});
  for (StencilShape shape : {StencilShape::kStar, StencilShape::kBox}) {
    for (int dims : {2, 3}) {
      for (int rad = 1; rad <= 4; ++rad) {
        const TunePoint r = dims == 2
                                ? tune_point(tuner, shape, rad, init2)
                                : tune_point(tuner, shape, rad, init3);
        ok = ok && r.exact;
        t.add_row({r.name, format_fixed(r.default_mcells, 1),
                   format_fixed(r.tuned_mcells, 1), r.tuned_config,
                   "x" + format_fixed(r.gain(), 2),
                   std::to_string(r.candidates_probed),
                   r.exact ? "yes" : "NO"});
        envelope.push_back(r);
      }
    }
  }
  t.render(std::cout);

  // Acceptance point: the PR 7 acceptance workload (3D star r4,
  // parvec 16, partime 4, bsize 144x144) at accept_n^3.
  AcceleratorConfig acfg;
  acfg.dims = 3;
  acfg.radius = 4;
  acfg.parvec = 16;
  acfg.partime = 4;
  acfg.bsize_x = 144;
  acfg.bsize_y = 144;
  const TapSet ataps = tune_taps(StencilShape::kStar, 3, 4);
  Grid3D<float> ainit(accept_n, accept_n, accept_n);
  ainit.fill_random(33, -1.0f, 1.0f);
  const int aiters = acfg.partime;
  const std::int64_t acells = ainit.nx() * ainit.ny() * ainit.nz();

  const AutotuneOutcome afound =
      tuner.search(ataps, acfg, ainit.nx(), ainit.ny(), ainit.nz());
  Grid3D<float> areference = ainit;
  const double a_default = tune_mcells(
      acells, aiters, tune_time_run(ataps, acfg, areference, aiters));
  double a_tuned = a_default;
  bool a_exact = true;
  if (!tune_same_geometry(afound.config, acfg)) {
    Grid3D<float> alt = ainit;
    a_tuned = tune_mcells(
        acells, aiters, tune_time_run(ataps, afound.config, alt, aiters));
    a_exact = compare_exact(alt, areference).identical();
  }
  ok = ok && a_exact;
  const double a_gain = a_default > 0.0 ? a_tuned / a_default : 0.0;
  std::cout << "acceptance " << acfg.describe() << " grid " << accept_n
            << "^3: default " << format_fixed(a_default, 1)
            << " Mcell/s, tuned " << format_fixed(a_tuned, 1) << " Mcell/s ("
            << tune_geometry(afound.config) << "), gain x"
            << format_fixed(a_gain, 2) << ", exact "
            << (a_exact ? "yes" : "NO") << "\n";

  std::vector<double> gains;
  gains.reserve(envelope.size());
  for (const TunePoint& r : envelope) gains.push_back(r.gain());
  std::sort(gains.begin(), gains.end());
  const double min_gain = gains.empty() ? 0.0 : gains.front();
  const double max_gain = gains.empty() ? 0.0 : gains.back();
  const double med_gain = gains.empty() ? 0.0 : gains[gains.size() / 2];
  std::cout << "envelope gains: min x" << format_fixed(min_gain, 2)
            << ", median x" << format_fixed(med_gain, 2) << ", max x"
            << format_fixed(max_gain, 2) << "\n";

  if (!json_path.empty()) {
    std::ostringstream body;
    JsonWriter w(body);
    w.begin_object();
    w.key("schema_version").value(2);
    w.key("bench").value("autotune");
    write_host_profile(w);
    w.key("paper").value(
        "High-Performance High-Order Stencil Computation on FPGAs Using "
        "OpenCL");
    w.key("mode").value(full ? "full" : "reduced");
    w.key("probe_cells").value(topts.probe_cells);
    w.key("envelope").begin_array();
    for (const TunePoint& r : envelope) {
      w.begin_object();
      w.key("name").value(r.name);
      w.key("shape").value(stencil_shape_name(r.shape));
      w.key("dims").value(r.dims);
      w.key("radius").value(r.radius);
      w.key("parvec").value(r.parvec);
      w.key("nx").value(r.nx);
      w.key("ny").value(r.ny);
      w.key("nz").value(r.nz);
      w.key("iters").value(r.iters);
      w.key("default_config").value(r.default_config);
      w.key("model_config").value(r.model_config);
      w.key("tuned_config").value(r.tuned_config);
      w.key("default_mcells_per_s").value(r.default_mcells);
      w.key("model_mcells_per_s").value(r.model_mcells);
      w.key("tuned_mcells_per_s").value(r.tuned_mcells);
      w.key("probe_tuned_mcells_per_s").value(r.probe_tuned_mcells);
      w.key("probe_baseline_mcells_per_s").value(r.probe_baseline_mcells);
      w.key("gain").value(r.gain());
      w.key("model_gain").value(r.model_gain());
      w.key("candidates_probed").value(r.candidates_probed);
      w.key("search_ns").value(r.search_ns);
      w.key("exact").value(r.exact);
      w.end_object();
    }
    w.end_array();
    w.key("acceptance").begin_object();
    w.key("config").value(acfg.describe());
    w.key("tuned_config").value(tune_geometry(afound.config));
    w.key("nx").value(ainit.nx());
    w.key("ny").value(ainit.ny());
    w.key("nz").value(ainit.nz());
    w.key("iters").value(aiters);
    w.key("default_mcells_per_s").value(a_default);
    w.key("tuned_mcells_per_s").value(a_tuned);
    w.key("gain").value(a_gain);
    w.key("candidates_probed").value(afound.candidates_probed);
    w.key("search_ns").value(afound.search_ns);
    w.key("exact").value(a_exact);
    w.end_object();
    w.key("summary").begin_object();
    w.key("points").value(std::int64_t(envelope.size()));
    w.key("exact_points")
        .value(std::int64_t(std::count_if(
            envelope.begin(), envelope.end(),
            [](const TunePoint& r) { return r.exact; })));
    w.key("min_gain").value(min_gain);
    w.key("median_gain").value(med_gain);
    w.key("max_gain").value(max_gain);
    w.end_object();
    w.end_object();
    if (!json_is_valid(body.str())) {
      std::cerr << "stencilctl: internal error: tune JSON failed "
                   "validation\n";
      return 1;
    }
    std::ofstream file(json_path);
    if (!file) throw ConfigError("cannot open --json file `" + json_path + "`");
    file << body.str() << "\n";
    std::cout << "autotune scorecard written to " << json_path << "\n";
  }

  if (!ok) {
    std::cerr << "SELF-CHECK FAILED: a tuned geometry diverged from the "
                 "paper-default result\n";
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// stencilctl program: the multi-field program campaigns (docs/PROGRAMS.md).
// Two coupled workloads through the one EngineCluster::submit front door:
// a self-checking 2D FDTD E/H update (three fields, four nodes, mixed
// dirichlet/clamp boundaries) and a 3D damped wave equation (reflective
// walls, a work field assembled by two ordered writers). Self-checks per
// campaign: every field bit-exact vs the multi-field golden model
// (reference_run_program), chunked per-field delivery reassembles exactly,
// a repeated submission routes to the same shard (program-fingerprint
// affinity) and hits the per-node plan cache, and no pool lease leaks.

/// The flagship 2D FDTD-style E/H update: ez carries dirichlet(0) walls
/// (fields vanish at the boundary), the H fields clamp. The two curl
/// halves of the ez update read the H fields written earlier in the same
/// step, so the DAG exercises back-buffer reads and ordered writers.
ProgramSpec make_fdtd2d_program(std::int64_t nx, std::int64_t ny, int steps) {
  ProgramSpec p;
  Grid2D<float> ez(nx, ny);
  ez.fill_random(101, -1.0f, 1.0f);
  Grid2D<float> hx(nx, ny);
  hx.fill_random(102, -0.5f, 0.5f);
  Grid2D<float> hy(nx, ny);
  hy.fill_random(103, -0.5f, 0.5f);
  p.fields = {
      FieldSpec{"ez", std::move(ez), BoundaryCondition::dirichlet(0.0f)},
      FieldSpec{"hx", std::move(hx), BoundaryCondition::clamp()},
      FieldSpec{"hy", std::move(hy), BoundaryCondition::clamp()},
  };
  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = 1;
  cfg.parvec = 4;
  cfg.partime = 1;
  cfg.bsize_x = 64;
  cfg.bsize_y = 1;
  cfg.validate();
  p.nodes = {
      KernelNode{"hx_up", TapSet(2, 1, {Tap{0, 0, 0, -0.5f}, Tap{0, 1, 0, 0.5f}}),
                 cfg, "ez", "hx", CombineOp::add, 1, {}},
      KernelNode{"hy_up", TapSet(2, 1, {Tap{0, 0, 0, 0.5f}, Tap{1, 0, 0, -0.5f}}),
                 cfg, "ez", "hy", CombineOp::add, 1, {}},
      KernelNode{"ez_x", TapSet(2, 1, {Tap{0, 0, 0, 0.5f}, Tap{-1, 0, 0, -0.5f}}),
                 cfg, "hy", "ez", CombineOp::add, 1, {"hy_up"}},
      KernelNode{"ez_y", TapSet(2, 1, {Tap{0, 0, 0, -0.5f}, Tap{0, -1, 0, 0.5f}}),
                 cfg, "hx", "ez", CombineOp::add, 1, {"hx_up", "ez_x"}},
  };
  p.steps = steps;
  p.validate();
  return p;
}

/// The 3D damped wave equation u_next = (2 - gamma)u + c lap(u) -
/// (1 - gamma)u_prev on reflective walls, leapfrogged through a work
/// field: two ordered writers assemble u_next, then identity nodes
/// rotate u -> u_prev and u_next -> u for the next step.
ProgramSpec make_wave3d_program(std::int64_t nx, std::int64_t ny,
                                std::int64_t nz, int steps) {
  const float kC = 0.0625f, kGamma = 0.0625f;
  ProgramSpec p;
  Grid3D<float> u(nx, ny, nz);
  u.fill_random(201, -1.0f, 1.0f);
  Grid3D<float> u_prev = u;  // starts at rest: u(t=0) == u(t=-1)
  p.fields = {
      FieldSpec{"u_prev", std::move(u_prev), BoundaryCondition::clamp()},
      FieldSpec{"u", std::move(u), BoundaryCondition::reflective()},
      FieldSpec{"u_next", Grid3D<float>(nx, ny, nz), BoundaryCondition::clamp(),
                /*work=*/true},
  };
  AcceleratorConfig cfg;
  cfg.dims = 3;
  cfg.radius = 1;
  cfg.parvec = 4;
  cfg.partime = 1;
  cfg.bsize_x = 32;
  cfg.bsize_y = 32;
  cfg.validate();
  const TapSet wave(3, 1,
                    {Tap{0, 0, 0, 2.0f - kGamma - 6.0f * kC},
                     Tap{-1, 0, 0, kC}, Tap{1, 0, 0, kC}, Tap{0, -1, 0, kC},
                     Tap{0, 1, 0, kC}, Tap{0, 0, -1, kC}, Tap{0, 0, 1, kC}});
  const TapSet center(3, 1, {Tap{0, 0, 0, -(1.0f - kGamma)}});
  const TapSet identity(3, 1, {Tap{0, 0, 0, 1.0f}});
  p.nodes = {
      KernelNode{"laplace", wave, cfg, "u", "u_next", CombineOp::assign, 1, {}},
      KernelNode{"damp", center, cfg, "u_prev", "u_next", CombineOp::add, 1,
                 {"laplace"}},
      KernelNode{"rot_prev", identity, cfg, "u", "u_prev", CombineOp::assign, 1,
                 {}},
      KernelNode{"rot_u", identity, cfg, "u_next", "u", CombineOp::assign, 1,
                 {"damp"}},
  };
  p.steps = steps;
  p.validate();
  return p;
}

struct ProgramCampaignRow {
  std::string name;
  int dims = 2;
  std::int64_t nx = 0, ny = 0, nz = 1;
  int fields = 0, nodes = 0, steps = 0;
  std::int64_t nodes_scheduled = 0;
  std::int64_t chunks_delivered = 0;
  bool exact = false;         ///< result fields match the golden model
  bool chunks_exact = false;  ///< reassembled chunk stream matches too
  bool second_run_cache_hit = false;
  bool route_stable = false;  ///< both submissions routed to one shard
  double wall_seconds = 0.0;
  double mcups = 0.0;  ///< million cell-updates (cells*nodes*steps) per sec
};

ProgramCampaignRow run_program_campaign(
    EngineCluster& cluster, const std::string& name,
    std::shared_ptr<const ProgramSpec> program) {
  ProgramCampaignRow row;
  row.name = name;
  row.dims = program->dims();
  row.nx = grid_variant_nx(program->fields.front().data);
  row.ny = grid_variant_ny(program->fields.front().data);
  row.nz = grid_variant_nz(program->fields.front().data);
  row.fields = static_cast<int>(program->fields.size());
  row.nodes = static_cast<int>(program->nodes.size());
  row.steps = program->steps;

  const auto want = reference_run_program(*program);

  // First submission: chunked per-field delivery into a reassembly map.
  std::vector<std::pair<std::string, std::vector<float>>> assembled;
  JobSpec spec(program);
  spec.tenant = "program";
  spec.label = name;
  spec.chunk_values = 1 << 14;
  spec.sink = [&](const ResultChunk& c) {
    if (assembled.empty() || assembled.back().first != c.field) {
      assembled.emplace_back(c.field, std::vector<float>());
    }
    assembled.back().second.insert(assembled.back().second.end(), c.data,
                                   c.data + c.values);
  };
  const int shard_first = cluster.route_shard(spec);
  Stopwatch clock;
  JobHandle h1 = cluster.submit(std::move(spec));
  JobResult& r1 = h1.wait();
  row.wall_seconds = clock.seconds();
  row.nodes_scheduled = r1.program_nodes_executed;
  row.chunks_delivered = r1.chunks_delivered;
  const double updates = double(grid_variant_cells(program->fields[0].data)) *
                         double(row.nodes) * double(row.steps);
  row.mcups = updates / 1e6 / std::max(row.wall_seconds, 1e-9);

  // Exactness vs the golden model: the result fields and the reassembled
  // chunk stream (non-work fields, declaration order) must both match.
  row.exact = r1.fields.size() == want.size();
  for (std::size_t i = 0; row.exact && i < want.size(); ++i) {
    row.exact = r1.fields[i].first == want[i].first &&
                std::equal(grid_variant_data(r1.fields[i].second),
                           grid_variant_data(r1.fields[i].second) +
                               grid_variant_cells(r1.fields[i].second),
                           grid_variant_data(want[i].second));
  }
  row.chunks_exact = true;
  std::size_t next = 0;
  for (const auto& w : want) {
    const FieldSpec* f = program->find_field(w.first);
    if (f->work) continue;  // work fields are never streamed
    if (next >= assembled.size() || assembled[next].first != w.first ||
        std::int64_t(assembled[next].second.size()) !=
            grid_variant_cells(w.second) ||
        !std::equal(assembled[next].second.begin(),
                    assembled[next].second.end(),
                    grid_variant_data(w.second))) {
      row.chunks_exact = false;
      break;
    }
    ++next;
  }
  row.chunks_exact = row.chunks_exact && next == assembled.size();

  // Second submission: program-fingerprint affinity routes it to the same
  // shard, where every node's plan is already cached.
  JobSpec again(program);
  again.tenant = "program";
  again.label = name + "#2";
  row.route_stable = cluster.route_shard(again) == shard_first;
  JobHandle h2 = cluster.submit(std::move(again));
  JobResult& r2 = h2.wait();
  row.second_run_cache_hit = r2.plan_cache_hit;
  for (std::size_t i = 0; row.exact && i < want.size(); ++i) {
    row.exact = std::equal(grid_variant_data(r2.fields[i].second),
                           grid_variant_data(r2.fields[i].second) +
                               grid_variant_cells(r2.fields[i].second),
                           grid_variant_data(want[i].second));
  }
  return row;
}

int cmd_program(const Args& a) {
  const std::int64_t n2d = a.get("n2d", 160);
  const std::int64_t n3d = a.get("n3d", 40);
  const int steps = static_cast<int>(a.get("steps", 32));
  const int steps3d = static_cast<int>(a.get("steps3d", (steps + 1) / 2));
  ClusterOptions copts;
  copts.shards = static_cast<int>(a.get("shards", 2));
  copts.engine.workers = static_cast<int>(a.get("workers", 4));
  EngineCluster cluster(copts);

  std::vector<ProgramCampaignRow> rows;
  rows.push_back(run_program_campaign(
      cluster, "fdtd2d",
      std::make_shared<const ProgramSpec>(
          make_fdtd2d_program(n2d, (n2d * 3) / 4, steps))));
  rows.push_back(run_program_campaign(
      cluster, "wave3d",
      std::make_shared<const ProgramSpec>(
          make_wave3d_program(n3d, n3d, std::max<std::int64_t>(n3d / 2, 8),
                              steps3d))));

  cluster.wait_idle();
  std::int64_t leaked = 0;
  for (int k = 0; k < cluster.shards(); ++k) {
    leaked += cluster.shard(k).buffer_pool().outstanding();
  }

  TextTable t({"campaign", "grid", "fields", "nodes", "steps", "chunks",
               "exact", "affinity", "Mcup/s"});
  bool ok = leaked == 0;
  for (const ProgramCampaignRow& r : rows) {
    const bool row_ok = r.exact && r.chunks_exact && r.second_run_cache_hit &&
                        r.route_stable &&
                        r.nodes_scheduled ==
                            std::int64_t(r.nodes) * std::int64_t(r.steps);
    ok = ok && row_ok;
    std::string grid = std::to_string(r.nx) + "x" + std::to_string(r.ny);
    if (r.dims == 3) grid += "x" + std::to_string(r.nz);
    t.add_row({r.name, grid, std::to_string(r.fields),
               std::to_string(r.nodes), std::to_string(r.steps),
               std::to_string(r.chunks_delivered),
               r.exact && r.chunks_exact ? "yes" : "NO",
               r.second_run_cache_hit && r.route_stable ? "yes" : "NO",
               format_fixed(r.mcups, 1)});
  }
  t.render(std::cout);
  std::cout << (leaked == 0 ? "zero leaked pool leases\n"
                            : "LEAKED POOL LEASES\n");

  const std::string json_path = a.get_str("json", "");
  if (!json_path.empty()) {
    std::ostringstream body;
    JsonWriter w(body);
    w.begin_object();
    w.key("schema_version").value(2);
    w.key("bench").value("program_campaign");
    write_host_profile(w);
    w.key("paper").value(
        "High-Performance High-Order Stencil Computation on FPGAs Using "
        "OpenCL");
    w.key("cluster").begin_object();
    w.key("shards").value(copts.shards);
    w.key("workers").value(copts.engine.workers);
    w.end_object();
    w.key("campaigns").begin_array();
    for (const ProgramCampaignRow& r : rows) {
      w.begin_object();
      w.key("name").value(r.name);
      w.key("dims").value(r.dims);
      w.key("nx").value(r.nx);
      w.key("ny").value(r.ny);
      w.key("nz").value(r.nz);
      w.key("fields").value(r.fields);
      w.key("nodes").value(r.nodes);
      w.key("steps").value(r.steps);
      w.key("nodes_scheduled").value(r.nodes_scheduled);
      w.key("chunks_delivered").value(r.chunks_delivered);
      w.key("exact").value(r.exact);
      w.key("chunks_exact").value(r.chunks_exact);
      w.key("second_run_cache_hit").value(r.second_run_cache_hit);
      w.key("route_stable").value(r.route_stable);
      w.key("wall_seconds").value(r.wall_seconds);
      w.key("mcups").value(r.mcups);
      w.end_object();
    }
    w.end_array();
    w.key("summary").begin_object();
    w.key("campaigns").value(std::int64_t(rows.size()));
    w.key("all_exact").value(ok);
    w.key("leaked_leases").value(leaked);
    w.end_object();
    w.end_object();
    if (!json_is_valid(body.str())) {
      std::cerr << "stencilctl: internal error: program JSON failed "
                   "validation\n";
      return 1;
    }
    std::ofstream file(json_path);
    if (!file) throw ConfigError("cannot open --json file `" + json_path + "`");
    file << body.str() << "\n";
    std::cout << rows.size() << " campaign records written to " << json_path
              << "\n";
  }

  std::cout << "program campaigns " << (ok ? "passed" : "FAILED") << "\n";
  return ok ? 0 : 1;
}

int usage() {
  std::cerr
      << "usage: stencilctl "
         "<devices|explore|tune|model|codegen|simulate|blockpar|faults|"
         "metrics|trace|engine|serve|chaos|program> [flags]\n"
         "  common flags: --dims 2|3 --radius R --bsize-x B --bsize-y B\n"
         "                --parvec V --partime T --device NAME\n"
         "                --nx N --ny N --nz N --iters I --top K --box\n"
         "  simulate flags: --backend automatic|sync_sim|concurrent|\n"
         "                  block_parallel|resilient --workers W\n"
         "  blockpar flags: --workers LIST (e.g. 1,2,4,8)\n"
         "                  --generic (force the interpreter path)\n"
         "                  --json BENCH_PR5.json\n"
         "  faults flags: --plan SPEC (else $FPGASTENCIL_FAULT_PLAN, else a\n"
         "                demo campaign) --boards B\n"
         "  metrics flags: --format table|json|csv --out FILE --depth D\n"
         "  trace flags:   --out trace.json --depth D\n"
         "  engine flags:  --jobs N --workers W --iters I --queue Q\n"
         "                 --json BENCH_PR3.json\n"
         "  serve flags:   --jobs N --shards S --workers W --iters I\n"
         "                 --seed S --window W --json BENCH_PR8.json\n"
         "  chaos flags:   --jobs N --workers W --seed S\n"
         "                 --json BENCH_PR6.json\n"
         "  program flags: --n2d N --n3d N --steps S --steps3d S\n"
         "                 --shards S --workers W --json BENCH_PR10.json\n"
         "  explore flags: --dims D --radius R --device NAME --top K\n"
         "  tune flags:    --full --json BENCH_PR9.json --cache FILE\n"
         "                 --probe-cells C --n2d N --n3d N --accept-n N\n"
         "                 --serve (engine telemetry self-check)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const Args a = parse_args(argc, argv, 2);
    if (cmd == "devices") return cmd_devices();
    if (cmd == "explore") return cmd_explore(a);
    if (cmd == "tune") return cmd_tune(a);
    if (cmd == "model") return cmd_model(a);
    if (cmd == "codegen") return cmd_codegen(a);
    if (cmd == "simulate") return cmd_simulate(a);
    if (cmd == "blockpar") return cmd_blockpar(a);
    if (cmd == "faults") return cmd_faults(a);
    if (cmd == "metrics") return cmd_metrics(a);
    if (cmd == "trace") return cmd_trace(a);
    if (cmd == "engine") return cmd_engine(a);
    if (cmd == "serve") return cmd_serve(a);
    if (cmd == "chaos") return cmd_chaos(a);
    if (cmd == "program") return cmd_program(a);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "stencilctl: " << e.what() << "\n";
    return 2;
  }
}
