// stencilctl: command-line front end to the library.
//
//   stencilctl devices
//       list the FPGA catalog with Table II characteristics
//   stencilctl tune   --dims D --radius R [--device NAME] [--nx N --ny N --nz N] [--top K]
//       Section V.A design-space exploration, ranked configurations
//   stencilctl model  --dims D --radius R --bsize-x B [--bsize-y B] --parvec V --partime T [--device NAME]
//       resource / fmax / power / performance prediction for one config
//   stencilctl codegen --dims D --radius R --bsize-x B [--bsize-y B] --parvec V --partime T [--box]
//       emit the OpenCL-C kernel source to stdout
//   stencilctl simulate --dims D --radius R --bsize-x B [--bsize-y B] --parvec V --partime T
//                       [--nx N --ny N --nz N] [--iters I] [--box]
//       run the bit-exact architecture simulator and verify vs the reference
//   stencilctl faults [--plan SPEC] [--boards B] [--nx N --ny N] [--iters I]
//       run a seeded fault campaign (default: one of every recoverable
//       fault class) through the shim, the resilient concurrent runtime,
//       and the cluster failover path, and print the resilience counters
//   stencilctl metrics [config flags] [--format table|json|csv] [--out FILE]
//       run the threaded dataflow pipeline with telemetry attached and
//       report the metrics snapshot (channel high-water marks, blocked
//       time, per-pass throughput)
//   stencilctl trace [config flags] [--out trace.json]
//       same instrumented run, exported as Chrome trace_event JSON
//       (open in chrome://tracing or https://ui.perfetto.dev)
//
// Exit status: 0 on success, 1 on verification/model failure, 2 on usage.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "cluster/multi_fpga.hpp"
#include "codegen/kernel_generator.hpp"
#include "common/format.hpp"
#include "common/json.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "core/concurrent_accelerator.hpp"
#include "core/stencil_accelerator.hpp"
#include "fault/fault_injector.hpp"
#include "fault/resilient_runner.hpp"
#include "telemetry/telemetry.hpp"
#include "fpga/fmax_model.hpp"
#include "fpga/power_model.hpp"
#include "grid/grid_compare.hpp"
#include "model/performance_model.hpp"
#include "ocl/opencl_shim.hpp"
#include "stencil/box_stencil.hpp"
#include "stencil/reference.hpp"
#include "tune/tuner.hpp"

using namespace fpga_stencil;

namespace {

struct Args {
  std::map<std::string, std::string> kv;
  bool box = false;

  [[nodiscard]] std::int64_t get(const std::string& key,
                                 std::int64_t fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : std::stoll(it->second);
  }
  [[nodiscard]] std::string get_str(const std::string& key,
                                    const std::string& fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return kv.count(key) != 0;
  }
};

Args parse_args(int argc, char** argv, int start) {
  Args a;
  for (int i = start; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw ConfigError("expected --flag, got `" + key + "`");
    }
    key = key.substr(2);
    if (key == "box") {
      a.box = true;
      continue;
    }
    if (i + 1 >= argc) throw ConfigError("missing value for --" + key);
    a.kv[key] = argv[++i];
  }
  return a;
}

DeviceSpec device_from(const Args& a) {
  const std::string name = a.get_str("device", "Arria 10");
  for (const DeviceSpec& d :
       {arria10_gx1150(), stratix_v_gxa7(), stratix10_gx2800(),
        stratix10_mx2100()}) {
    if (d.name.find(name) != std::string::npos) return d;
  }
  throw ConfigError("unknown device `" + name + "`");
}

AcceleratorConfig config_from(const Args& a) {
  AcceleratorConfig cfg;
  cfg.dims = static_cast<int>(a.get("dims", 2));
  cfg.radius = static_cast<int>(a.get("radius", 1));
  cfg.bsize_x = a.get("bsize-x", cfg.dims == 2 ? 4096 : 256);
  cfg.bsize_y = cfg.dims == 3 ? a.get("bsize-y", 128) : 1;
  cfg.parvec = static_cast<int>(a.get("parvec", 4));
  cfg.partime = static_cast<int>(a.get("partime", 4));
  cfg.validate();
  return cfg;
}

int cmd_devices() {
  TextTable t({"Device", "GFLOP/s", "GB/s", "FLOP/Byte", "DSPs", "M20Ks",
               "TDP W"});
  for (const DeviceSpec& d :
       {arria10_gx1150(), stratix_v_gxa7(), stratix10_gx2800(),
        stratix10_mx2100()}) {
    t.add_row({d.name, format_fixed(d.peak_gflops, 0),
               format_fixed(d.peak_bw_gbps, 1),
               format_fixed(d.flop_per_byte(), 1), std::to_string(d.dsps),
               std::to_string(d.m20k_blocks), format_fixed(d.tdp_watts, 0)});
  }
  t.render(std::cout);
  return 0;
}

int cmd_tune(const Args& a) {
  TunerOptions o;
  o.dims = static_cast<int>(a.get("dims", 2));
  o.radius = static_cast<int>(a.get("radius", 1));
  o.nx = a.get("nx", o.dims == 2 ? 16096 : 696);
  o.ny = a.get("ny", o.dims == 2 ? 16096 : 728);
  o.nz = o.dims == 3 ? a.get("nz", 696) : 1;
  const DeviceSpec dev = device_from(a);
  const auto configs = enumerate_configs(dev, o);
  const std::size_t top = std::size_t(a.get("top", 5));
  std::cout << configs.size() << " feasible configurations on " << dev.name
            << "; top " << std::min(top, configs.size()) << ":\n";
  TextTable t({"rank", "config", "aligned", "pred GB/s", "GFLOP/s", "fmax",
               "DSP", "BRAM blk"});
  for (std::size_t i = 0; i < configs.size() && i < top; ++i) {
    const TunedConfig& c = configs[i];
    t.add_row({std::to_string(i + 1), c.config.describe(),
               c.meets_alignment ? "yes" : "no",
               format_fixed(c.perf.measured_gbps, 1),
               format_fixed(c.perf.measured_gflops, 1),
               format_fixed(c.fmax_mhz, 1),
               format_percent(c.usage.dsp_fraction),
               format_percent(c.usage.bram_block_fraction)});
  }
  t.render(std::cout);
  return configs.empty() ? 1 : 0;
}

int cmd_model(const Args& a) {
  const AcceleratorConfig cfg = config_from(a);
  const DeviceSpec dev = device_from(a);
  const ResourceUsage u = estimate_resources(cfg, dev);
  const double fmax = estimate_fmax_mhz(cfg, dev);
  const std::int64_t nx = a.get("nx", cfg.dims == 2 ? 16096 : 696);
  const std::int64_t ny = a.get("ny", cfg.dims == 2 ? 16096 : 728);
  const std::int64_t nz = cfg.dims == 3 ? a.get("nz", 696) : 1;
  const PerformanceEstimate e =
      estimate_performance(cfg, dev, fmax, nx, ny, nz);

  std::cout << "configuration: " << cfg.describe() << " on " << dev.name
            << "\n"
            << "fits: " << (u.fits() ? "yes" : "NO") << "\n"
            << "  DSP          " << u.dsps << " ("
            << format_percent(u.dsp_fraction) << ")\n"
            << "  BRAM bits    " << format_percent(u.bram_bits_fraction)
            << ", blocks " << format_percent(u.bram_block_fraction) << "\n"
            << "  logic        " << format_percent(u.logic_fraction) << "\n"
            << "fmax:  " << format_fixed(fmax, 1) << " MHz\n"
            << "power: "
            << format_fixed(estimate_power_watts(cfg, dev, fmax), 1)
            << " W\n"
            << "performance on " << nx << "x" << ny
            << (cfg.dims == 3 ? "x" + std::to_string(nz) : "") << ":\n"
            << "  estimated  " << format_fixed(e.estimated_gbps, 1)
            << " GB/s\n"
            << "  pipeline efficiency "
            << format_percent(e.pipeline_efficiency) << "\n"
            << "  predicted  " << format_fixed(e.measured_gbps, 1)
            << " GB/s = " << format_fixed(e.measured_gflops, 1)
            << " GFLOP/s = " << format_fixed(e.measured_gcells, 2)
            << " GCell/s\n"
            << "  roofline ratio " << format_fixed(e.roofline_ratio, 2)
            << "x of " << format_fixed(dev.peak_bw_gbps, 1) << " GB/s peak\n";
  return u.fits() ? 0 : 1;
}

int cmd_codegen(const Args& a) {
  const AcceleratorConfig cfg = config_from(a);
  if (a.box) {
    const TapSet box = make_box_stencil(cfg.dims, cfg.radius);
    std::cout << generate_tap_kernel_source(box, {cfg, true});
  } else {
    std::cout << generate_kernel_source({cfg, true});
  }
  return 0;
}

int cmd_simulate(const Args& a) {
  const AcceleratorConfig cfg = config_from(a);
  const std::int64_t nx = a.get("nx", 200);
  const std::int64_t ny = a.get("ny", cfg.dims == 2 ? 100 : 60);
  const std::int64_t nz = cfg.dims == 3 ? a.get("nz", 30) : 1;
  const int iters = static_cast<int>(a.get("iters", cfg.partime + 1));

  Stopwatch sw;
  CompareResult cmp;
  RunStats stats;
  if (cfg.dims == 2) {
    Grid2D<float> g(nx, ny);
    g.fill_random(1);
    Grid2D<float> want = g;
    if (a.box) {
      const TapSet taps = make_box_stencil(2, cfg.radius);
      StencilAccelerator accel(taps, cfg);
      stats = accel.run(g, iters);
      reference_run(taps, want, iters);
    } else {
      const StarStencil s = StarStencil::make_benchmark(2, cfg.radius);
      StencilAccelerator accel(s, cfg);
      stats = accel.run(g, iters);
      reference_run(s, want, iters);
    }
    cmp = compare_exact(g, want);
  } else {
    Grid3D<float> g(nx, ny, nz);
    g.fill_random(1);
    Grid3D<float> want = g;
    if (a.box) {
      const TapSet taps = make_box_stencil(3, cfg.radius);
      StencilAccelerator accel(taps, cfg);
      stats = accel.run(g, iters);
      reference_run(taps, want, iters);
    } else {
      const StarStencil s = StarStencil::make_benchmark(3, cfg.radius);
      StencilAccelerator accel(s, cfg);
      stats = accel.run(g, iters);
      reference_run(s, want, iters);
    }
    cmp = compare_exact(g, want);
  }

  std::cout << "simulated " << cfg.describe() << " on " << nx << "x" << ny
            << (cfg.dims == 3 ? "x" + std::to_string(nz) : "") << " for "
            << iters << " iterations (" << format_fixed(sw.seconds(), 2)
            << " s host time)\n"
            << "  passes " << stats.passes << ", cells streamed "
            << stats.cells_streamed << ", redundancy "
            << format_fixed(stats.redundancy(), 3) << "x, pipeline cycles "
            << stats.vectors_processed << "\n"
            << "  verification vs naive reference: " << cmp.summary()
            << "\n";
  return cmp.identical() ? 0 : 1;
}

/// Shared workload of `metrics` and `trace`: the threaded dataflow
/// pipeline (the only engine where channels and stage overlap exist) with
/// the telemetry hook attached through AcceleratorConfig.
RunStats run_instrumented(const Args& a, Telemetry& telemetry,
                          std::ostream& os) {
  AcceleratorConfig cfg = config_from(a);
  cfg.telemetry = &telemetry;
  const std::int64_t nx = a.get("nx", 200);
  const std::int64_t ny = a.get("ny", cfg.dims == 2 ? 100 : 60);
  const std::int64_t nz = cfg.dims == 3 ? a.get("nz", 30) : 1;
  const int iters = static_cast<int>(a.get("iters", cfg.partime + 1));
  const std::size_t depth = std::size_t(a.get("depth", 64));
  const TapSet taps =
      a.box ? make_box_stencil(cfg.dims, cfg.radius)
            : StarStencil::make_benchmark(cfg.dims, cfg.radius).to_taps();

  RunStats stats;
  if (cfg.dims == 2) {
    Grid2D<float> g(nx, ny);
    g.fill_random(1);
    stats = run_concurrent(taps, cfg, g, iters, depth);
  } else {
    Grid3D<float> g(nx, ny, nz);
    g.fill_random(1);
    stats = run_concurrent(taps, cfg, g, iters, depth);
  }
  os << "instrumented concurrent run: " << cfg.describe() << " on " << nx
     << "x" << ny << (cfg.dims == 3 ? "x" + std::to_string(nz) : "")
     << " for " << iters << " iterations (" << stats.passes << " passes)\n";
  return stats;
}

int cmd_metrics(const Args& a) {
  Telemetry telemetry;
  run_instrumented(a, telemetry, std::cout);
  const MetricsSnapshot snap = telemetry.metrics().snapshot();

  const std::string format = a.get_str("format", "table");
  const std::string out = a.get_str("out", "");
  std::ofstream file;
  if (!out.empty()) {
    file.open(out);
    if (!file) throw ConfigError("cannot open --out file `" + out + "`");
  }
  std::ostream& os = out.empty() ? std::cout : file;

  if (format == "json") {
    snap.write_json(os);
  } else if (format == "csv") {
    snap.write_csv(os);
  } else if (format == "table") {
    TextTable t({"metric", "kind", "value", "sum"});
    for (const MetricSample& s : snap.samples) {
      t.add_row({s.name, std::string(metric_kind_name(s.kind)),
                 std::to_string(s.value),
                 s.kind == MetricKind::histogram ? std::to_string(s.sum)
                                                 : ""});
    }
    t.render(os);
  } else {
    throw ConfigError("unknown --format `" + format +
                      "` (want table|json|csv)");
  }
  if (!out.empty()) {
    std::cout << snap.samples.size() << " metrics written to " << out
              << "\n";
  }
  // A healthy pipeline run must have moved data through the channels.
  return snap.value_or("channel.0.high_water", 0) > 0 &&
                 snap.value_or("pipeline.cells_written", 0) > 0
             ? 0
             : 1;
}

int cmd_trace(const Args& a) {
  Telemetry telemetry;
  run_instrumented(a, telemetry, std::cout);
  const AcceleratorConfig cfg = config_from(a);

  std::ostringstream json;
  telemetry.tracer().write_chrome_trace(json);
  if (!json_is_valid(json.str())) {
    std::cerr << "stencilctl: internal error: trace JSON failed "
                 "validation\n";
    return 1;
  }

  const std::string out = a.get_str("out", "trace.json");
  std::ofstream file(out);
  if (!file) throw ConfigError("cannot open --out file `" + out + "`");
  file << json.str();

  // Self-check: the trace must cover every pipeline stage.
  const std::vector<std::string> names = telemetry.tracer().event_names();
  const auto covered = [&](const std::string& want) {
    return std::find(names.begin(), names.end(), want) != names.end();
  };
  bool all_stages = covered("read_kernel") && covered("write_kernel");
  for (int k = 0; k < cfg.partime; ++k) {
    all_stages = all_stages && covered("PE" + std::to_string(k));
  }
  std::cout << telemetry.tracer().event_count() << " trace events written"
            << " to " << out << " (open in chrome://tracing or "
            << "https://ui.perfetto.dev)\n"
            << "  stage coverage: "
            << (all_stages ? "read kernel, every PE, write kernel"
                           : "INCOMPLETE")
            << "\n";
  return all_stages ? 0 : 1;
}

// The default demo campaign: at least one budgeted fault at every
// recoverable site, so every resilience mechanism (shim retry, watchdog
// replay, checksum rollback, cluster failover) exercises once and the
// replayed attempts run clean.
constexpr const char* kDefaultFaultPlan =
    "seed=42,shim_build:n=2,shim_transfer:n=1,shim_enqueue:n=1,"
    "channel_stall:n=1,kernel_hang:n=1,seu_bit_flip:n=150,"
    "board_dropout:n=1,link_degrade:n=2";

int cmd_faults(const Args& a) {
  // Plan resolution: --plan beats the environment beats the demo default.
  FaultPlan plan;
  if (a.has("plan")) {
    plan = FaultPlan::parse(a.get_str("plan", ""));
  } else {
    plan = FaultPlan::from_env();
    if (plan.empty()) plan = FaultPlan::parse(kDefaultFaultPlan);
  }

  AcceleratorConfig cfg;
  cfg.dims = 2;
  cfg.radius = static_cast<int>(a.get("radius", 2));
  cfg.bsize_x = a.get("bsize-x", 48);
  cfg.parvec = static_cast<int>(a.get("parvec", 4));
  cfg.partime = static_cast<int>(a.get("partime", 3));
  cfg.validate();
  const std::int64_t nx = a.get("nx", 96);
  const std::int64_t ny = a.get("ny", 48);
  const int iters = static_cast<int>(a.get("iters", 4 * cfg.partime));
  const int boards = static_cast<int>(a.get("boards", 4));
  const DeviceSpec dev = device_from(a);

  const StarStencil star = StarStencil::make_benchmark(2, cfg.radius);
  const TapSet taps = star.to_taps();
  Grid2D<float> initial(nx, ny);
  initial.fill_random(7);
  Grid2D<float> want = initial;
  reference_run(taps, want, iters);

  FaultInjector injector(plan);
  ScopedFaultInjector scope(injector);
  std::cout << "fault campaign: " << plan.describe() << "\n"
            << "workload: " << cfg.describe() << ", " << nx << "x" << ny
            << ", " << iters << " iterations, " << boards << " boards on "
            << dev.name << "\n\n";
  bool all_exact = true;

  // Stage 1: the OpenCL host flow under retry (shim_* fault sites).
  std::int64_t build_retries = 0;
  std::int64_t transfer_retries = 0;
  {
    const ocl::Platform platform = ocl::Platform::intel_fpga_sdk();
    const ocl::Context ctx(platform.device_by_name(dev.name));
    const std::string opts = "-DDIM=2 -DRAD=" + std::to_string(cfg.radius) +
                             " -DBSIZE_X=" + std::to_string(cfg.bsize_x) +
                             " -DPAR_VEC=" + std::to_string(cfg.parvec) +
                             " -DPAR_TIME=" + std::to_string(cfg.partime);
    RetryPolicy policy;
    policy.base_delay = std::chrono::microseconds(100);
    const ocl::Program program =
        ocl::Program::build_with_retry(ctx, opts, policy, &build_retries);
    const std::size_t bytes = std::size_t(nx) * std::size_t(ny) * 4;
    ocl::Buffer in(ctx, bytes);
    ocl::Buffer out(ctx, bytes);
    ocl::CommandQueue queue(ctx);
    Grid2D<float> got(nx, ny);
    retry_transient(
        policy,
        [&] { queue.enqueue_write_buffer(in, initial.data(), bytes); },
        &transfer_retries);
    retry_transient(
        policy,
        [&] { queue.enqueue_stencil_2d(program, star, in, out, nx, ny, iters); },
        &transfer_retries);
    retry_transient(
        policy, [&] { queue.enqueue_read_buffer(out, got.data(), bytes); },
        &transfer_retries);
    const CompareResult cmp = compare_exact(got, want);
    all_exact = all_exact && cmp.identical();
    std::cout << "[shim]      " << cmp.summary() << " (build retries "
              << build_retries << ", enqueue/transfer retries "
              << transfer_retries << ")\n";
  }

  // Stage 2: the resilient concurrent runtime (hang/stall/SEU sites).
  RunStats rstats;
  {
    ResilienceOptions opts;
    opts.watchdog_deadline = std::chrono::milliseconds(250);
    opts.max_pass_attempts = 5;
    opts.checkpoint_interval = 2;
    opts.injector = &injector;
    Grid2D<float> got = initial;
    rstats = run_resilient(taps, cfg, got, iters, opts);
    const CompareResult cmp = compare_exact(got, want);
    all_exact = all_exact && cmp.identical();
    std::cout << "[resilient] " << cmp.summary() << " (watchdog trips "
              << rstats.watchdog_trips << ", checksum failures "
              << rstats.checksum_failures << ", pass replays "
              << rstats.pass_replays << ")\n";
  }

  // Stage 3: cluster failover (board_dropout / link_degrade sites).
  ClusterStats cstats;
  {
    MultiFpgaCluster cluster(boards, taps, cfg, dev, LinkSpec{});
    Grid2D<float> got = initial;
    cstats = cluster.run(got, iters);
    const CompareResult cmp = compare_exact(got, want);
    all_exact = all_exact && cmp.identical();
    std::cout << "[cluster]   " << cmp.summary() << " ("
              << cluster.alive_boards() << "/" << boards
              << " boards alive, pass replays " << cstats.pass_replays
              << ", degraded-link passes " << cstats.link_degraded_passes
              << ")\n";
  }

  std::cout << "\nresilience counters\n";
  TextTable t({"counter", "value"});
  t.add_row({"faults injected", std::to_string(injector.total_fires())});
  t.add_row({"shim build retries", std::to_string(build_retries)});
  t.add_row({"shim transfer/enqueue retries", std::to_string(transfer_retries)});
  t.add_row({"watchdog trips", std::to_string(rstats.watchdog_trips)});
  t.add_row({"checksum failures", std::to_string(rstats.checksum_failures)});
  t.add_row({"pass replays (device)", std::to_string(rstats.pass_replays)});
  t.add_row({"checkpoints saved", std::to_string(rstats.checkpoints_saved)});
  t.add_row({"checkpoint restores", std::to_string(rstats.checkpoint_restores)});
  t.add_row({"degraded to reference",
             rstats.degraded_to_reference ? "yes" : "no"});
  t.add_row({"board dropouts", std::to_string(cstats.board_dropouts)});
  t.add_row({"cluster pass replays", std::to_string(cstats.pass_replays)});
  t.add_row({"link-degraded passes", std::to_string(cstats.link_degraded_passes)});
  t.render(std::cout);
  std::cout << "\ninjector report\n" << injector.report();
  const bool fired = plan.empty() || injector.total_fires() > 0;
  std::cout << "\ncampaign " << (all_exact && fired ? "survived" : "FAILED")
            << ": "
            << (all_exact ? "all outputs bit-exact vs naive reference"
                          : "output NOT bit-exact vs naive reference");
  if (!fired) {
    std::cout << " (planned faults never fired -- nothing was exercised)";
  }
  std::cout << "\n";
  return all_exact && fired ? 0 : 1;
}

int usage() {
  std::cerr
      << "usage: stencilctl "
         "<devices|tune|model|codegen|simulate|faults|metrics|trace> "
         "[flags]\n"
         "  common flags: --dims 2|3 --radius R --bsize-x B --bsize-y B\n"
         "                --parvec V --partime T --device NAME\n"
         "                --nx N --ny N --nz N --iters I --top K --box\n"
         "  faults flags: --plan SPEC (else $FPGASTENCIL_FAULT_PLAN, else a\n"
         "                demo campaign) --boards B\n"
         "  metrics flags: --format table|json|csv --out FILE --depth D\n"
         "  trace flags:   --out trace.json --depth D\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const Args a = parse_args(argc, argv, 2);
    if (cmd == "devices") return cmd_devices();
    if (cmd == "tune") return cmd_tune(a);
    if (cmd == "model") return cmd_model(a);
    if (cmd == "codegen") return cmd_codegen(a);
    if (cmd == "simulate") return cmd_simulate(a);
    if (cmd == "faults") return cmd_faults(a);
    if (cmd == "metrics") return cmd_metrics(a);
    if (cmd == "trace") return cmd_trace(a);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "stencilctl: " << e.what() << "\n";
    return 2;
  }
}
